// Package soctap is a test-architecture optimization and test-scheduling
// library for core-based systems-on-chip with core-level expansion of
// compressed test patterns. It reproduces the method of Larsson,
// Larsson, Chakrabarty, Eles and Peng, "Test-Architecture Optimization
// and Test Scheduling for SOCs with Core-Level Expansion of Compressed
// Test Patterns" (DATE 2008).
//
// The flow, end to end:
//
//	soc    := soctap.D695()                   // or build/parse your own
//	result, err := soctap.Optimize(soc, 32, soctap.Options{
//	        Style: soctap.StyleTDCPerCore,    // the paper's proposed scheme
//	})
//	// result.TestTime, result.Volume, result.Partition, result.Schedule ...
//	err = soctap.VerifyPlan(result)           // bit-level functional check
//
// The package is a thin facade over the internal packages:
//
//   - internal/cube     — sparse test cubes, the synthetic ATPG model,
//     static compaction
//   - internal/soc      — core/SOC models, benchmark designs, file format
//   - internal/wrapper  — IEEE-1500-style wrapper-chain design
//   - internal/selenc   — selective encoding of scan slices (codec)
//   - internal/decomp   — behavioral decompressor and hardware cost
//   - internal/dictenc  — dictionary codec (technique selection)
//   - internal/tam      — TAM partitions and architectures
//   - internal/sched    — test scheduling (greedy, optimal, preemptive,
//     power-constrained)
//   - internal/core     — per-core (w,m) exploration and the SOC-level
//     co-optimizer (the paper's contribution)
//   - internal/baselines — proxies for the prior work compared against
//   - internal/sim      — cycle-accurate end-to-end verification
//   - internal/ate      — tester memory/bandwidth model
//   - internal/power    — WTC scan-power estimation
//   - internal/truncate — ATE-memory truncation planning
//   - internal/atevec   — SOC-level ATE vector image composition
//   - internal/misr     — response compaction with X-masking
package soctap

import (
	"context"
	"io"
	"net/http"

	"soctap/internal/ate"
	"soctap/internal/atevec"
	"soctap/internal/baselines"
	"soctap/internal/core"
	"soctap/internal/cube"
	"soctap/internal/power"
	"soctap/internal/sched"
	"soctap/internal/sim"
	"soctap/internal/soc"
	"soctap/internal/tam"
	"soctap/internal/telemetry"
	"soctap/internal/truncate"
)

// Core is one wrapped embedded core: terminals, scan structure, and test
// set shape.
type Core = soc.Core

// SOC is a core-based system-on-chip.
type SOC = soc.SOC

// Partition is the widths of the TAM buses.
type Partition = tam.Partition

// Schedule is a complete SOC test schedule.
type Schedule = sched.Schedule

// Config is one core-level test configuration (direct or compressed).
type Config = core.Config

// Table is a per-core lookup table of best configurations by TAM width.
type Table = core.Table

// TableOptions controls per-core lookup-table construction.
type TableOptions = core.TableOptions

// Options controls SOC-level optimization.
type Options = core.Options

// Result is a complete SOC test plan.
type Result = core.Result

// CoreChoice reports the configuration chosen for one core.
type CoreChoice = core.CoreChoice

// Plan is the serializable form of a Result (Result.Plan / WritePlan)
// — the JSON the tooling and the socserve daemon hand to clients.
type Plan = core.PlanJSON

// Cache memoizes per-core lookup tables across optimizer runs.
type Cache = core.Cache

// Style selects the test-access architecture style (Figure 4 of the
// paper).
type Style = core.Style

// Architecture styles.
const (
	// StyleNoTDC tests cores directly over TAM wires (Fig. 4a).
	StyleNoTDC = core.StyleNoTDC
	// StyleTDCPerTAM places one decompressor at the head of each TAM
	// (Fig. 4b).
	StyleTDCPerTAM = core.StyleTDCPerTAM
	// StyleTDCPerCore places a decompressor at every core — the paper's
	// proposed scheme (Fig. 4c).
	StyleTDCPerCore = core.StyleTDCPerCore
)

// TechSelection is a per-core compression-technique selection table
// (direct vs selective encoding vs dictionary), the ATS'08 follow-up
// extension.
type TechSelection = core.TechSelection

// Codec identifiers recorded in Config.Codec.
const (
	CodecDirect = core.CodecDirect
	CodecSelEnc = core.CodecSelEnc
	CodecDict   = core.CodecDict
)

// Tester is an ATE configuration (channels, memory depth, frequency).
type Tester = ate.Tester

// TelemetrySink is the root of one instrumentation domain: race-safe
// subsystem counters plus a hierarchical phase-span tree. A nil sink
// disables everything it hands out at zero cost, so instrumentation can
// stay wired in permanently. Attach one to a run via
// Options.Telemetry = sink.Root().
type TelemetrySink = telemetry.Sink

// TelemetrySpan is one node of a sink's phase tree.
type TelemetrySpan = telemetry.Span

// TelemetrySnapshot is a point-in-time copy of a sink — counters, wall
// timings, and the span tree — renderable as deterministic JSON
// (WriteJSON) or human text (Render).
type TelemetrySnapshot = telemetry.Snapshot

// TelemetryHistogram is a log2-bucketed latency distribution with
// p50/p90/p99 quantiles in the snapshot. A nil histogram records
// nothing at zero cost; a live one is lock-free and allocation-free.
// Observation counts are worker-count deterministic like counters;
// the observed values are wall clock.
type TelemetryHistogram = telemetry.Histogram

// TelemetryEvent is one typed event on a sink's live bus: a span
// ending, a counter delta, a gauge high-water raise, or a run
// lifecycle mark. Marshals as one-line JSON for NDJSON streams.
type TelemetryEvent = telemetry.Event

// TelemetrySubscription is a live tap on a sink's event bus. The bus
// never blocks publishers: events beyond the subscription's buffer are
// dropped and counted (Dropped).
type TelemetrySubscription = telemetry.Subscription

// TelemetryServer is a running observability HTTP server (see
// StartTelemetryServer).
type TelemetryServer = telemetry.Server

// NewTelemetry creates an enabled telemetry sink:
//
//	sink := soctap.NewTelemetry()
//	res, err := soctap.Optimize(s, 32, soctap.Options{Telemetry: sink.Root()})
//	sink.Snapshot().WriteJSON(os.Stdout)
func NewTelemetry() *TelemetrySink { return telemetry.New() }

// NewTelemetryHandler returns the observability endpoint for the sink —
// /metrics (OpenMetrics text), /healthz, /events (live NDJSON, filter
// with ?kinds=span,counter,gauge,run) and /debug/pprof — for mounting
// into an existing HTTP mux.
func NewTelemetryHandler(s *TelemetrySink) http.Handler { return telemetry.NewHandler(s) }

// StartTelemetryServer serves NewTelemetryHandler on addr (":0" picks
// a free port; Addr reports it) in the background. Shutdown ends open
// /events streams and stops the listener; a nil server shuts down as a
// no-op. This is what the -metrics-addr flag of socopt and repro does.
func StartTelemetryServer(addr string, s *TelemetrySink) (*TelemetryServer, error) {
	return telemetry.StartServer(addr, s)
}

// BaselineResult is a prior-work proxy evaluation.
type BaselineResult = baselines.Result

// Optimize designs a test architecture and schedule for the SOC under a
// total TAM width budget using the paper's co-optimization heuristic.
func Optimize(s *SOC, wtam int, opts Options) (*Result, error) {
	return core.Optimize(s, wtam, opts)
}

// OptimizeContext is Optimize governed by ctx: a cancelled run returns
// ctx.Err() promptly (cancellation is observed at every table
// evaluation point and every candidate schedule) with no goroutines
// leaked, and an uncancelled run is bit-identical to Optimize. A nil
// ctx behaves like context.Background().
func OptimizeContext(ctx context.Context, s *SOC, wtam int, opts Options) (*Result, error) {
	return core.OptimizeContext(ctx, s, wtam, opts)
}

// BuildTable constructs the per-core lookup table of Section 2 of the
// paper: best configurations at every TAM width, with and without the
// decompressor.
func BuildTable(c *Core, opts TableOptions) (*Table, error) {
	return core.BuildTable(c, opts)
}

// BuildTableContext is BuildTable governed by ctx (see OptimizeContext
// for the cancellation contract).
func BuildTableContext(ctx context.Context, c *Core, opts TableOptions) (*Table, error) {
	return core.BuildTableContext(ctx, c, opts)
}

// SweepTDC evaluates every wrapper-chain count m in [lo, hi] with the
// decompressor enabled — the analysis behind Figures 2 and 3. The sweep
// fans out over one worker per CPU; results are identical to a
// sequential sweep.
func SweepTDC(c *Core, lo, hi int) ([]Config, error) {
	return core.SweepTDC(c, lo, hi)
}

// SweepTDCWorkers is SweepTDC with an explicit worker bound (zero means
// one worker per CPU, 1 is fully sequential).
func SweepTDCWorkers(c *Core, lo, hi, workers int) ([]Config, error) {
	return core.SweepTDCWorkers(c, lo, hi, workers)
}

// SweepTDCContext is SweepTDCWorkers governed by ctx (see
// OptimizeContext for the cancellation contract).
func SweepTDCContext(ctx context.Context, c *Core, lo, hi, workers int) ([]Config, error) {
	return core.SweepTDCContext(ctx, c, lo, hi, workers)
}

// EvalTDC evaluates one compressed configuration (m wrapper chains,
// ceil(log2(m+1))+2 TAM wires).
func EvalTDC(c *Core, m int) (Config, error) { return core.EvalTDC(c, m) }

// EvalNoTDC evaluates one direct configuration (m TAM wires driving m
// wrapper chains).
func EvalNoTDC(c *Core, m int) (Config, error) { return core.EvalNoTDC(c, m) }

// EvalDict evaluates one dictionary-compressed configuration (m wrapper
// chains, dictWords dictionary entries).
func EvalDict(c *Core, m, dictWords int) (Config, error) { return core.EvalDict(c, m, dictWords) }

// SelectTechniques builds the per-core technique-selection table over
// direct access, selective encoding and dictionary coding.
func SelectTechniques(c *Core, opts TableOptions, dictSizes []int) (*TechSelection, error) {
	return core.SelectTechniques(c, opts, dictSizes)
}

// WritePlan serializes a result as indented JSON for downstream tooling.
func WritePlan(w io.Writer, r *Result) error { return r.WritePlan(w) }

// VerifyPlan confirms an optimization result by cycle-accurate
// simulation: schedule consistency, exact compressed volumes, and
// bit-exact stimulus delivery.
func VerifyPlan(r *Result) error { return sim.VerifyPlan(r) }

// ParseSOC reads a design description in the library's ITC'02-inspired
// text format.
func ParseSOC(r io.Reader) (*SOC, error) { return soc.Parse(r) }

// WriteSOC writes a design description in the format read by ParseSOC.
func WriteSOC(w io.Writer, s *SOC) error { return soc.Write(w, s) }

// VectorImage is the composed SOC-level ATE vector image of a plan.
type VectorImage = atevec.Image

// VectorStats summarizes a vector image's ATE footprint.
type VectorStats = atevec.Stats

// BuildVectorImage re-encodes every core's stimuli under its chosen
// configuration and lays the streams out on the scheduled buses — the
// artifact an ATE program generator consumes.
func BuildVectorImage(r *Result) (*VectorImage, error) { return atevec.Build(r) }

// PowerEstimate is a weighted-transition-count scan-power estimate.
type PowerEstimate = power.Estimate

// FillStrategy selects how don't-care bits are resolved for power
// estimation.
type FillStrategy = power.FillStrategy

// Fill strategies for ScanInPower.
const (
	FillZero      = power.FillZero
	FillSlice     = power.FillSlice
	FillAlternate = power.FillAlternate
)

// ScanInPower estimates scan-in switching activity (WTC) for a core
// through m wrapper chains under a fill strategy; feeds power-aware
// scheduling.
func ScanInPower(c *Core, m int, fill FillStrategy) (*PowerEstimate, error) {
	return power.ScanInPower(c, m, fill)
}

// Truncation is an ATE-memory truncation plan: per-core kept pattern
// counts maximizing estimated test quality within a memory budget.
type Truncation = truncate.Result

// PatternCost reports the ATE storage (bits) of pattern j of core c;
// nil means uncompressed storage.
type PatternCost = truncate.PatternCost

// TruncateForATE plans test-data truncation under an ATE memory budget
// (total bits), keeping each core's highest-value leading patterns.
func TruncateForATE(s *SOC, budgetBits int64, cost PatternCost) (*Truncation, error) {
	return truncate.Plan(s, budgetBits, cost)
}

// PatternBits returns the exact compressed size in bits of every test
// pattern of the core under selective encoding with m wrapper chains —
// a PatternCost building block for compressed truncation planning.
func PatternBits(c *Core, m int) ([]int64, error) { return core.PatternBits(c, m) }

// CubeSet is a core's test set: partially specified test patterns.
type CubeSet = cube.Set

// CompactTestSet statically compacts a cube set by greedily merging
// compatible cubes, the standard ATPG post-processing step before test
// planning. Coverage is preserved: every original cube is contained in
// some merged cube.
func CompactTestSet(s *CubeSet) *CubeSet { return cube.Compact(s) }

// D695 returns the d695 ITC'02 benchmark SOC.
func D695() *SOC { return soc.D695() }

// D2758 returns the documented d2758 stand-in SOC.
func D2758() *SOC { return soc.D2758() }

// System returns one of the industrial-core SOCs System1..System4.
func System(name string) (*SOC, error) { return soc.System(name) }

// IndustrialCore returns one of the synthetic industrial cores
// ckt-1..ckt-12.
func IndustrialCore(name string) (*Core, error) { return soc.IndustrialCore(name) }

// AllBenchmarks returns every built-in SOC keyed by name.
func AllBenchmarks() map[string]*SOC { return soc.AllBenchmarks() }

// VirtualTAM18 evaluates the [18] (virtual test access architecture)
// proxy at an ATE channel budget.
func VirtualTAM18(s *SOC, ateChannels int) (BaselineResult, error) {
	return baselines.VirtualTAM18(s, ateChannels)
}

// LFSRReseeding13 evaluates the [13] (LFSR reseeding) proxy at a TAM
// width budget.
func LFSRReseeding13(s *SOC, wtam int) (BaselineResult, error) {
	return baselines.LFSRReseeding13(s, wtam)
}

// FixedWidth11 evaluates the [11] (fixed w=4 per-core compression)
// proxy at a TAM width budget.
func FixedWidth11(s *SOC, wtam int) (BaselineResult, error) {
	return baselines.FixedWidth11(s, wtam)
}
