package main

import (
	"strings"
	"testing"
)

func mkReport(ns float64, metrics map[string]float64) Report {
	return Report{
		Date: "2026-08-08",
		Benchmarks: []Benchmark{{
			Name: "BenchmarkOptimizeSearch", Pkg: "soctap",
			Iterations: 10, NsPerOp: ns,
			BytesPerOp: 2048, AllocsPerOp: 12,
			Metrics: metrics,
		}},
	}
}

// TestCompareIdentical: a report diffed against itself is clean.
func TestCompareIdentical(t *testing.T) {
	rep := mkReport(1000, map[string]float64{"cores/s": 50, "makespan-cycles": 9000, "spread-%": 3})
	var out strings.Builder
	if n := runCompare(rep, rep, 0.10, &out); n != 0 {
		t.Fatalf("identical reports regressed %d metric(s):\n%s", n, out.String())
	}
	if !strings.Contains(out.String(), "ok:") {
		t.Fatalf("clean compare output missing ok line:\n%s", out.String())
	}
}

// TestCompareRegressionDirections: lower-is-better metrics fail when
// they rise past the threshold, higher-is-better when they fall, and
// movement inside the threshold passes.
func TestCompareRegressionDirections(t *testing.T) {
	old := mkReport(1000, map[string]float64{"cores/s": 50, "makespan-cycles": 9000, "volume-reduction-x": 2.0})

	// +20% ns/op: a regression at a 10% threshold.
	slower := mkReport(1200, map[string]float64{"cores/s": 50, "makespan-cycles": 9000, "volume-reduction-x": 2.0})
	var out strings.Builder
	if n := runCompare(old, slower, 0.10, &out); n != 1 {
		t.Fatalf("injected +20%% ns/op regressed %d metric(s), want 1:\n%s", n, out.String())
	}
	if !strings.Contains(out.String(), "REGRESSION") {
		t.Fatalf("regression not flagged:\n%s", out.String())
	}

	// Throughput dropping 20% is a regression too (higher is better).
	slowTput := mkReport(1000, map[string]float64{"cores/s": 40, "makespan-cycles": 9000, "volume-reduction-x": 2.0})
	if n := runCompare(old, slowTput, 0.10, &strings.Builder{}); n != 1 {
		t.Fatalf("throughput drop regressed %d metric(s), want 1", n)
	}

	// A reduction factor falling is a regression (higher is better).
	worseX := mkReport(1000, map[string]float64{"cores/s": 50, "makespan-cycles": 9000, "volume-reduction-x": 1.5})
	if n := runCompare(old, worseX, 0.10, &strings.Builder{}); n != 1 {
		t.Fatalf("reduction-factor drop regressed %d metric(s), want 1", n)
	}

	// -cycles rising is a regression (cost).
	moreCycles := mkReport(1000, map[string]float64{"cores/s": 50, "makespan-cycles": 12000, "volume-reduction-x": 2.0})
	if n := runCompare(old, moreCycles, 0.10, &strings.Builder{}); n != 1 {
		t.Fatalf("cycle increase regressed %d metric(s), want 1", n)
	}

	// +5% ns/op stays under a 10% threshold.
	wobble := mkReport(1050, map[string]float64{"cores/s": 50, "makespan-cycles": 9000, "volume-reduction-x": 2.0})
	if n := runCompare(old, wobble, 0.10, &strings.Builder{}); n != 0 {
		t.Fatalf("+5%% wobble regressed %d metric(s), want 0", n)
	}

	// Improvements never fail: faster, higher throughput.
	better := mkReport(500, map[string]float64{"cores/s": 90, "makespan-cycles": 8000, "volume-reduction-x": 2.5})
	if n := runCompare(old, better, 0.10, &strings.Builder{}); n != 0 {
		t.Fatalf("improvement regressed %d metric(s), want 0", n)
	}
}

// TestCompareInfoMetricsNeverFail: directionless metrics (spread-%) are
// reported but cannot regress, whatever they do.
func TestCompareInfoMetricsNeverFail(t *testing.T) {
	old := mkReport(1000, map[string]float64{"spread-%": 1})
	new := mkReport(1000, map[string]float64{"spread-%": 40})
	var out strings.Builder
	if n := runCompare(old, new, 0.10, &out); n != 0 {
		t.Fatalf("info metric regressed %d metric(s), want 0:\n%s", n, out.String())
	}
	if !strings.Contains(out.String(), "(info)") {
		t.Fatalf("info metric not marked:\n%s", out.String())
	}
}

// TestCompareBenchSetChanges: benchmarks appearing or disappearing are
// noted, never failed — renames should not break the gate.
func TestCompareBenchSetChanges(t *testing.T) {
	old := mkReport(1000, nil)
	renamed := Report{Benchmarks: []Benchmark{{Name: "BenchmarkRenamed", Pkg: "soctap", NsPerOp: 1}}}
	var out strings.Builder
	if n := runCompare(old, renamed, 0.10, &out); n != 0 {
		t.Fatalf("bench-set change regressed %d metric(s), want 0:\n%s", n, out.String())
	}
	for _, want := range []string{"new benchmark", "disappeared"} {
		if !strings.Contains(out.String(), want) {
			t.Fatalf("compare output missing %q:\n%s", want, out.String())
		}
	}
}

// TestCompareZeroBaseline: a zero old value yields n/a, not a
// divide-by-zero regression.
func TestCompareZeroBaseline(t *testing.T) {
	old := mkReport(1000, nil)
	old.Benchmarks[0].AllocsPerOp = 0
	new := mkReport(1000, nil)
	new.Benchmarks[0].AllocsPerOp = 5
	var out strings.Builder
	if n := runCompare(old, new, 0.10, &out); n != 0 {
		t.Fatalf("zero baseline regressed %d metric(s), want 0:\n%s", n, out.String())
	}
	if !strings.Contains(out.String(), "n/a") {
		t.Fatalf("zero baseline not rendered as n/a:\n%s", out.String())
	}
}

// TestDirection pins the unit heuristics the gate rests on.
func TestDirection(t *testing.T) {
	cases := map[string]metricDir{
		"ns/op":              dirLower,
		"B/op":               dirLower,
		"allocs/op":          dirLower,
		"peak-bytes":         dirLower,
		"entry-bytes":        dirLower,
		"makespan-cycles":    dirLower,
		"cores/s":            dirHigher,
		"cubes/s":            dirHigher,
		"time-reduction-x":   dirHigher,
		"volume-reduction-x": dirHigher,
		// the fused-sweep amortization factor from bench-big: a drop
		// means table builds re-traverse the cube source more often
		"window-load-amortization-x": dirHigher,
		"spread-%":                   dirInfo,
		// fraction of a source pass each fused point costs; tracked but
		// not gated (it moves with batch size, not with regressions)
		"passes-per-point": dirInfo,
	}
	for unit, want := range cases {
		if got := direction(unit); got != want {
			t.Errorf("direction(%q) = %v, want %v", unit, got, want)
		}
	}
}
