package main

// Bench-regression diffing: `benchjson -compare old.json new.json`
// loads two archived reports and diffs them metric by metric. Metrics
// whose unit implies a direction (ns/op is lower-is-better, cores/s is
// higher-is-better) regress when they move the wrong way by more than
// -threshold; directionless metrics are reported but never fail the
// comparison. The exit code is the contract `make bench-compare` keys
// on: 0 clean, 1 when any metric regressed.

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"strings"
)

// metricDir is a metric's improvement direction.
type metricDir int

const (
	dirLower  metricDir = iota // lower is better (times, bytes, allocs)
	dirHigher                  // higher is better (throughputs, reduction factors)
	dirInfo                    // no inherent direction; never a regression
)

// direction classifies a metric unit. The suffixes mirror the units the
// repository's benchmarks actually report: "-bytes"/"-cycles" costs,
// "/s" throughputs and "-x" reduction factors. Anything else (e.g.
// "spread-%") is informational.
func direction(unit string) metricDir {
	switch unit {
	case "ns/op", "B/op", "allocs/op", "peak-bytes":
		return dirLower
	}
	switch {
	case strings.HasSuffix(unit, "-bytes"), strings.HasSuffix(unit, "-cycles"):
		return dirLower
	case strings.HasSuffix(unit, "/s"), strings.HasSuffix(unit, "-x"):
		return dirHigher
	}
	return dirInfo
}

// metricRow is one compared metric of one benchmark.
type metricRow struct {
	bench    string
	unit     string
	old, new float64
	dir      metricDir
}

// delta is the relative change from old to new; +0.25 means new is 25%
// larger. NaN when old is zero (printed as "n/a", never a regression —
// a zero baseline carries no scale to regress against).
func (r metricRow) delta() float64 {
	if r.old == 0 {
		return math.NaN()
	}
	return (r.new - r.old) / r.old
}

// regressed reports whether the metric moved in its losing direction by
// more than threshold.
func (r metricRow) regressed(threshold float64) bool {
	d := r.delta()
	if math.IsNaN(d) {
		return false
	}
	switch r.dir {
	case dirLower:
		return d > threshold
	case dirHigher:
		return d < -threshold
	}
	return false
}

// benchKey identifies a benchmark across reports.
func benchKey(b Benchmark) string { return b.Pkg + " " + b.Name }

// benchRows flattens one old/new benchmark pair into comparable metric
// rows. Fields that are zero on both sides are skipped (the benchmark
// does not report them); a metric present on only one side is skipped
// too — compare judges movement, not coverage.
func benchRows(old, new Benchmark) []metricRow {
	name := new.Name
	if new.Pkg != "" {
		name = new.Pkg + "." + new.Name
	}
	var rows []metricRow
	add := func(unit string, o, n float64) {
		if o == 0 && n == 0 {
			return
		}
		rows = append(rows, metricRow{bench: name, unit: unit, old: o, new: n, dir: direction(unit)})
	}
	add("ns/op", old.NsPerOp, new.NsPerOp)
	add("B/op", float64(old.BytesPerOp), float64(new.BytesPerOp))
	add("allocs/op", float64(old.AllocsPerOp), float64(new.AllocsPerOp))
	add("peak-bytes", float64(old.PeakBytes), float64(new.PeakBytes))
	for unit, n := range new.Metrics {
		if o, ok := old.Metrics[unit]; ok {
			add(unit, o, n)
		}
	}
	return rows
}

// runCompare diffs two reports, writing the per-metric table to w, and
// returns the number of regressed metrics. Benchmarks present in only
// one report are noted but not failed.
func runCompare(old, new Report, threshold float64, w io.Writer) int {
	oldBy := make(map[string]Benchmark, len(old.Benchmarks))
	for _, b := range old.Benchmarks {
		oldBy[benchKey(b)] = b
	}
	fmt.Fprintf(w, "comparing %s (%s) -> %s (%s), threshold %.0f%%\n",
		old.Date, revOr(old.VCSRevision, "unknown rev"),
		new.Date, revOr(new.VCSRevision, "unknown rev"), threshold*100)

	regressions := 0
	matched := make(map[string]bool, len(new.Benchmarks))
	for _, nb := range new.Benchmarks {
		ob, ok := oldBy[benchKey(nb)]
		if !ok {
			fmt.Fprintf(w, "  new benchmark (no baseline): %s\n", nb.Name)
			continue
		}
		matched[benchKey(nb)] = true
		for _, r := range benchRows(ob, nb) {
			verdict := ""
			switch {
			case r.regressed(threshold):
				verdict = "  REGRESSION"
				regressions++
			case r.dir == dirInfo:
				verdict = "  (info)"
			}
			fmt.Fprintf(w, "  %-52s %-16s %14.4g -> %-14.4g %s%s\n",
				r.bench, r.unit, r.old, r.new, fmtDelta(r.delta()), verdict)
		}
	}
	for _, ob := range old.Benchmarks {
		if !matched[benchKey(ob)] {
			fmt.Fprintf(w, "  benchmark disappeared: %s\n", ob.Name)
		}
	}
	if regressions > 0 {
		fmt.Fprintf(w, "FAIL: %d metric(s) regressed beyond %.0f%%\n", regressions, threshold*100)
	} else {
		fmt.Fprintf(w, "ok: no metric regressed beyond %.0f%%\n", threshold*100)
	}
	return regressions
}

func fmtDelta(d float64) string {
	if math.IsNaN(d) {
		return "   n/a"
	}
	return fmt.Sprintf("%+5.1f%%", d*100)
}

func revOr(rev, fallback string) string {
	if rev == "" {
		return fallback
	}
	return rev
}

// loadReport reads one archived BENCH_*.json.
func loadReport(path string) (Report, error) {
	var rep Report
	data, err := os.ReadFile(path)
	if err != nil {
		return rep, err
	}
	if err := json.Unmarshal(data, &rep); err != nil {
		return rep, fmt.Errorf("%s: %w", path, err)
	}
	return rep, nil
}

// compareMain is the -compare entry point: load both archives, diff,
// and exit 1 on any regression.
func compareMain(oldPath, newPath string, threshold float64) {
	old, err := loadReport(oldPath)
	if err != nil {
		fatal(err)
	}
	new, err := loadReport(newPath)
	if err != nil {
		fatal(err)
	}
	if runCompare(old, new, threshold, os.Stdout) > 0 {
		os.Exit(1)
	}
}
