package main

import "testing"

func TestParseLine(t *testing.T) {
	b, ok := parseLine("BenchmarkTDCCostKernel-8   \t 2977206\t       399.1 ns/op\t       0 B/op\t       0 allocs/op")
	if !ok {
		t.Fatal("line not parsed")
	}
	if b.Name != "BenchmarkTDCCostKernel" {
		t.Errorf("name = %q, want GOMAXPROCS suffix stripped", b.Name)
	}
	if b.Iterations != 2977206 || b.NsPerOp != 399.1 || b.BytesPerOp != 0 || b.AllocsPerOp != 0 {
		t.Errorf("parsed %+v", b)
	}

	// Custom ReportMetric units land in Metrics.
	b, ok = parseLine("BenchmarkTab3WithWithoutTDC-8   1  123456789 ns/op  42.5 cycles-ratio")
	if !ok {
		t.Fatal("metric line not parsed")
	}
	if b.Metrics["cycles-ratio"] != 42.5 {
		t.Errorf("metrics = %v", b.Metrics)
	}

	for _, bad := range []string{
		"goos: linux",
		"PASS",
		"BenchmarkBroken-8 notanumber 1 ns/op",
		"BenchmarkShort-8 5",
	} {
		if _, ok := parseLine(bad); ok {
			t.Errorf("parseLine(%q) accepted, want skip", bad)
		}
	}
}
