package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

func TestParseLine(t *testing.T) {
	b, ok := parseLine("BenchmarkTDCCostKernel-8   \t 2977206\t       399.1 ns/op\t       0 B/op\t       0 allocs/op")
	if !ok {
		t.Fatal("line not parsed")
	}
	if b.Name != "BenchmarkTDCCostKernel" {
		t.Errorf("name = %q, want GOMAXPROCS suffix stripped", b.Name)
	}
	if b.Iterations != 2977206 || b.NsPerOp != 399.1 || b.BytesPerOp != 0 || b.AllocsPerOp != 0 {
		t.Errorf("parsed %+v", b)
	}

	// Custom ReportMetric units land in Metrics.
	b, ok = parseLine("BenchmarkTab3WithWithoutTDC-8   1  123456789 ns/op  42.5 cycles-ratio")
	if !ok {
		t.Fatal("metric line not parsed")
	}
	if b.Metrics["cycles-ratio"] != 42.5 {
		t.Errorf("metrics = %v", b.Metrics)
	}

	// The streaming benches report their heap high-water mark as
	// peak-bytes; it is a first-class field, not a generic metric.
	b, ok = parseLine("BenchmarkStreamGiant-8   1  9e9 ns/op  123456 peak-bytes  8.5 cubes/s")
	if !ok {
		t.Fatal("peak-bytes line not parsed")
	}
	if b.PeakBytes != 123456 {
		t.Errorf("PeakBytes = %d, want 123456", b.PeakBytes)
	}
	if _, generic := b.Metrics["peak-bytes"]; generic {
		t.Error("peak-bytes leaked into Metrics")
	}
	if b.Metrics["cubes/s"] != 8.5 {
		t.Errorf("metrics = %v", b.Metrics)
	}

	for _, bad := range []string{
		"goos: linux",
		"PASS",
		"BenchmarkBroken-8 notanumber 1 ns/op",
		"BenchmarkShort-8 5",
	} {
		if _, ok := parseLine(bad); ok {
			t.Errorf("parseLine(%q) accepted, want skip", bad)
		}
	}
}

// TestMergeExisting: re-run results replace their prior entry, prior
// results not re-run survive ahead of the new ones, and a missing
// merge target degenerates to a plain write.
func TestMergeExisting(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "BENCH.json")
	old := Report{
		Date: "2026-08-01", GoOS: "linux", GoArch: "amd64",
		Benchmarks: []Benchmark{
			{Name: "BenchmarkA", Pkg: "p1", Iterations: 10, NsPerOp: 1},
			{Name: "BenchmarkB", Pkg: "p1", Iterations: 20, NsPerOp: 2},
		},
	}
	data, err := json.Marshal(&old)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	rep := Report{
		Date: "2026-08-08",
		Benchmarks: []Benchmark{
			{Name: "BenchmarkB", Pkg: "p1", Iterations: 99, NsPerOp: 3}, // re-run
			{Name: "BenchmarkC", Pkg: "p2", Iterations: 1, NsPerOp: 4},  // new
		},
	}
	if err := mergeExisting(path, &rep); err != nil {
		t.Fatal(err)
	}
	wantNames := []string{"BenchmarkA", "BenchmarkB", "BenchmarkC"}
	var names []string
	for _, b := range rep.Benchmarks {
		names = append(names, b.Name)
	}
	if !reflect.DeepEqual(names, wantNames) {
		t.Fatalf("merged order %v, want %v", names, wantNames)
	}
	if rep.Benchmarks[1].Iterations != 99 {
		t.Error("re-run result did not replace the prior entry")
	}

	fresh := Report{Benchmarks: []Benchmark{{Name: "BenchmarkA"}}}
	if err := mergeExisting(filepath.Join(dir, "absent.json"), &fresh); err != nil {
		t.Fatalf("missing merge target: %v", err)
	}
	if len(fresh.Benchmarks) != 1 {
		t.Error("missing merge target disturbed the report")
	}
}
