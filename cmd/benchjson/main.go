// Command benchjson converts the plain-text output of `go test -bench`
// (read from stdin) into a machine-readable JSON report, so benchmark
// runs can be archived and diffed across commits:
//
//	go test -run '^$' -bench BenchmarkOptimizeSearch -benchmem . | \
//	    go run ./cmd/benchjson -o BENCH_2026-08-05.json
//
// `make bench-json` wires the four headline benchmarks through this
// tool into a dated BENCH_<date>.json at the repository root.
//
// Archived reports diff with -compare (see compare.go):
//
//	benchjson -compare BENCH_old.json BENCH_new.json -threshold 0.10
//
// which exits 1 when any directional metric regressed past the
// threshold; `make bench-compare` runs it over the two most recent
// archives.
package main

import (
	"bufio"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"soctap/internal/telemetry"
)

// Benchmark is one parsed result line. Standard -benchmem columns map
// to the named fields; any extra ReportMetric columns (e.g. the
// "cycles" a paper-artifact bench reports) land in Metrics.
type Benchmark struct {
	Name        string             `json:"name"`
	Pkg         string             `json:"pkg,omitempty"`
	Iterations  int64              `json:"iterations"`
	NsPerOp     float64            `json:"ns_per_op"`
	BytesPerOp  int64              `json:"bytes_per_op,omitempty"`
	AllocsPerOp int64              `json:"allocs_per_op,omitempty"`
	PeakBytes   int64              `json:"peak_bytes,omitempty"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
}

// Report is the file layout: run metadata plus results in input order.
// GoVersion and VCSRevision carry the same attribution that telemetry
// snapshots carry in their meta block, so an archive is traceable to
// the commit that produced it.
type Report struct {
	Date        string      `json:"date"`
	GoOS        string      `json:"goos"`
	GoArch      string      `json:"goarch"`
	CPU         string      `json:"cpu,omitempty"`
	GoVersion   string      `json:"go_version,omitempty"`
	VCSRevision string      `json:"vcs_revision,omitempty"`
	Benchmarks  []Benchmark `json:"benchmarks"`
}

func main() {
	out := flag.String("o", "", "output file (default stdout)")
	merge := flag.Bool("merge", false,
		"merge into an existing -o report: same (pkg, name) results are replaced, new ones appended")
	compare := flag.Bool("compare", false,
		"compare two archived reports (old.json new.json) instead of reading bench output; exit 1 on regression")
	threshold := flag.Float64("threshold", 0.10,
		"relative regression threshold for -compare (0.10 = 10%)")
	flag.Parse()

	if *compare {
		// Flags may trail the two file arguments (the repo's usual
		// "verb then options" shape); re-parse the remainder.
		args := flag.Args()
		if len(args) > 2 {
			if err := flag.CommandLine.Parse(args[2:]); err != nil {
				os.Exit(2)
			}
			args = args[:2]
		}
		if len(args) != 2 {
			fmt.Fprintln(os.Stderr, "usage: benchjson -compare old.json new.json [-threshold 0.10]")
			os.Exit(2)
		}
		compareMain(args[0], args[1], *threshold)
		return
	}

	// benchjson usually sits at the end of a pipe from a long `go test
	// -bench` run; SIGINT/SIGTERM abort the scan between lines instead
	// of leaving a truncated report behind.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	rep := Report{Date: time.Now().UTC().Format("2006-01-02")}
	rep.GoVersion, rep.VCSRevision = telemetry.BuildInfo()
	var pkg string
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		if ctx.Err() != nil {
			fmt.Fprintln(os.Stderr, "benchjson: interrupted:", ctx.Err())
			os.Exit(130)
		}
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "goos: "):
			rep.GoOS = strings.TrimPrefix(line, "goos: ")
		case strings.HasPrefix(line, "goarch: "):
			rep.GoArch = strings.TrimPrefix(line, "goarch: ")
		case strings.HasPrefix(line, "cpu: "):
			rep.CPU = strings.TrimPrefix(line, "cpu: ")
		case strings.HasPrefix(line, "pkg: "):
			// One bench-json pipe spans several packages; the pkg line
			// precedes that package's benchmark lines, so track it and
			// stamp each result.
			pkg = strings.TrimPrefix(line, "pkg: ")
		case strings.HasPrefix(line, "Benchmark"):
			b, ok := parseLine(line)
			if ok {
				b.Pkg = pkg
				rep.Benchmarks = append(rep.Benchmarks, b)
			}
		}
	}
	if err := sc.Err(); err != nil {
		fatal(err)
	}
	if len(rep.Benchmarks) == 0 {
		fatal(fmt.Errorf("no benchmark lines on stdin"))
	}
	if *merge && *out != "" {
		if err := mergeExisting(*out, &rep); err != nil {
			fatal(err)
		}
	}

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		w = f
	}
	data, err := json.MarshalIndent(&rep, "", "  ")
	if err != nil {
		fatal(err)
	}
	data = append(data, '\n')
	if _, err := w.Write(data); err != nil {
		fatal(err)
	}
}

// parseLine parses one result line of the form
//
//	BenchmarkName-8   100   12345 ns/op   67 B/op   8 allocs/op   9.0 unit
//
// Unparseable lines are skipped rather than fatal, so compiler noise in
// the stream is harmless.
func parseLine(line string) (Benchmark, bool) {
	f := strings.Fields(line)
	if len(f) < 4 {
		return Benchmark{}, false
	}
	iters, err := strconv.ParseInt(f[1], 10, 64)
	if err != nil {
		return Benchmark{}, false
	}
	b := Benchmark{Name: f[0], Iterations: iters}
	// Strip the -GOMAXPROCS suffix from the name.
	if i := strings.LastIndexByte(b.Name, '-'); i > 0 {
		if _, err := strconv.Atoi(b.Name[i+1:]); err == nil {
			b.Name = b.Name[:i]
		}
	}
	for i := 2; i+1 < len(f); i += 2 {
		v, err := strconv.ParseFloat(f[i], 64)
		if err != nil {
			return Benchmark{}, false
		}
		switch unit := f[i+1]; unit {
		case "ns/op":
			b.NsPerOp = v
		case "B/op":
			b.BytesPerOp = int64(v)
		case "allocs/op":
			b.AllocsPerOp = int64(v)
		case "peak-bytes":
			// High-water heap mark reported by the streaming-evaluator
			// benches; a first-class field so memory trajectories diff
			// cleanly across commits.
			b.PeakBytes = int64(v)
		default:
			if b.Metrics == nil {
				b.Metrics = make(map[string]float64)
			}
			b.Metrics[unit] = v
		}
	}
	return b, true
}

// mergeExisting folds a prior report at path into rep: prior results
// whose (pkg, name) was not re-run this time are kept, in their
// original order, ahead of the new results. A missing file is not an
// error — the merge degenerates to a plain write.
func mergeExisting(path string, rep *Report) error {
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return nil
	}
	if err != nil {
		return err
	}
	var old Report
	if err := json.Unmarshal(data, &old); err != nil {
		return fmt.Errorf("merge target %s: %w", path, err)
	}
	rerun := make(map[string]bool, len(rep.Benchmarks))
	for _, b := range rep.Benchmarks {
		rerun[b.Pkg+" "+b.Name] = true
	}
	kept := old.Benchmarks[:0]
	for _, b := range old.Benchmarks {
		if !rerun[b.Pkg+" "+b.Name] {
			kept = append(kept, b)
		}
	}
	rep.Benchmarks = append(kept, rep.Benchmarks...)
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchjson:", err)
	os.Exit(1)
}
