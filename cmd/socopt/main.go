// Command socopt optimizes the test architecture and schedule of a
// core-based SOC under a TAM-width budget, using co-optimized core-level
// test data compression (the DATE'08 method this library reproduces).
//
// Usage:
//
//	socopt -design d695 -width 32                         # built-in benchmark
//	socopt -design my.soc -width 24 -style tdc-per-core   # design file
//	socopt -design System2 -width 48 -verify              # plus bit-level simulation
//
// Styles: no-tdc (direct access), tdc-per-tam (decompressor per TAM),
// tdc-per-core (the proposed scheme; default).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"soctap/internal/ate"
	"soctap/internal/core"
	"soctap/internal/report"
	"soctap/internal/sim"
	"soctap/internal/soc"
	"soctap/internal/telemetry"
	"soctap/internal/units"
)

func main() {
	design := flag.String("design", "", "built-in design name (d695, d2758, System1..System4) or path to a .soc file")
	width := flag.Int("width", 32, "total TAM width W_TAM in wires")
	styleName := flag.String("style", "tdc-per-core", "architecture style: no-tdc, tdc-per-tam, tdc-per-core")
	verify := flag.Bool("verify", false, "verify the plan by cycle-accurate simulation")
	maxTAMs := flag.Int("max-tams", 0, "cap on the number of TAM buses (0 = number of cores)")
	bandSamples := flag.Int("band-samples", 0, "m values sampled per codeword-width band (0 = default 48, -1 = exhaustive)")
	workers := flag.Int("workers", 0, "evaluation-engine worker goroutines (0 = one per CPU, 1 = sequential; results are identical)")
	evalWindow := flag.Int("eval-window", 0, "evaluator streaming window in cubes (0 = automatic by core size, -1 = stream the whole set as one window; results are identical)")
	ateDepth := flag.Int64("ate-depth", 0, "ATE vector memory depth per channel in bits (0 = unlimited)")
	ateFreq := flag.Float64("ate-mhz", 50, "ATE frequency in MHz for wall-clock reporting")
	gantt := flag.Bool("gantt", false, "draw the schedule as an ASCII Gantt chart")
	techsel := flag.Bool("techsel", false, "extend per-core choices with dictionary coding (technique selection)")
	tableCache := flag.String("table-cache", "", "directory for the persistent lookup-table cache (reused across runs)")
	tableCacheMem := flag.String("table-cache-mem", "", "in-memory table cache budget, e.g. 64M or 2GiB (empty = unbounded)")
	tableCacheSize := flag.String("table-cache-size", "", "on-disk table cache budget under -table-cache, e.g. 512M (empty = unbounded)")
	jsonOut := flag.String("json", "", "also write the plan as JSON to this file ('-' for stdout)")
	telemetryOut := flag.String("telemetry", "", "write the telemetry snapshot (phase spans + counters) as JSON to this file ('-' for stdout)")
	telemetryText := flag.Bool("telemetry-text", false, "render the telemetry snapshot as text on stderr after the run")
	metricsAddr := flag.String("metrics-addr", "", "serve live /metrics, /events, /healthz and /debug/pprof on this address (e.g. :9090) while the run is in flight")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memProfile := flag.String("memprofile", "", "write a heap profile to this file (taken at exit)")
	traceOut := flag.String("trace", "", "write a runtime execution trace to this file")
	flag.Parse()

	if *design == "" {
		flag.Usage()
		os.Exit(2)
	}

	// SIGINT/SIGTERM cancel the run cooperatively: the search unwinds
	// with ctx.Err(), the telemetry snapshot is still flushed (with a
	// run.cancelled marker), and the exit code is non-zero. A second
	// signal kills the process immediately (stop() restores the default
	// handlers once the first one lands).
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	go func() {
		<-ctx.Done()
		stop()
	}()

	stopProfiles, err := telemetry.StartProfiles(*cpuProfile, *memProfile, *traceOut)
	if err != nil {
		fatal(err)
	}
	var sink *telemetry.Sink
	if *telemetryOut != "" || *telemetryText || *metricsAddr != "" {
		sink = telemetry.New()
	}
	var server *telemetry.Server
	if *metricsAddr != "" {
		server, err = telemetry.StartServer(*metricsAddr, sink)
		if err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "socopt: serving metrics on http://%s/metrics\n", server.Addr())
	}
	// fail is fatal plus the interrupted-run epilogue: cancelled runs
	// mark and flush the telemetry snapshot before exiting 130.
	fail := func(err error) {
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			sink.Counter("run.cancelled").Inc()
			sink.PublishRun("socopt", "cancelled")
			sink.Flush()
			writeTelemetry(sink, *telemetryOut, *telemetryText)
			server.ShutdownTimeout(2 * time.Second)
			fmt.Fprintln(os.Stderr, "socopt: interrupted:", err)
			os.Exit(130)
		}
		fatal(err)
	}
	sink.PublishRun("socopt", "start")

	pt := sink.Span("parse").Begin()
	s, err := loadDesign(*design)
	pt.End()
	if err != nil {
		fatal(err)
	}
	style, err := parseStyle(*styleName)
	if err != nil {
		fatal(err)
	}
	memBytes, err := units.ParseBytes(*tableCacheMem)
	if err != nil {
		fatal(fmt.Errorf("-table-cache-mem: %w", err))
	}
	diskBytes, err := units.ParseBytes(*tableCacheSize)
	if err != nil {
		fatal(fmt.Errorf("-table-cache-size: %w", err))
	}

	res, err := core.OptimizeContext(ctx, s, *width, core.Options{
		Style:      style,
		MaxTAMs:    *maxTAMs,
		Tables:     core.TableOptions{BandSamples: *bandSamples, EvalWindow: *evalWindow},
		EnableDict: *techsel,
		Workers:    *workers,

		TableCacheDir:       *tableCache,
		TableCacheMemBytes:  memBytes,
		TableCacheDiskBytes: diskBytes,
		Telemetry:           sink.Root(),
	})
	if err != nil {
		fail(err)
	}
	printResult(res, ate.Tester{Channels: *width, MemoryDepth: *ateDepth, FreqMHz: *ateFreq})

	if *gantt {
		items := make([]report.GanttItem, 0, len(res.Choices))
		for _, ch := range res.Choices {
			items = append(items, report.GanttItem{
				Label: ch.Core, Lane: ch.Bus,
				Start: ch.Start, End: ch.Start + ch.Config.Time,
			})
		}
		fmt.Println()
		if err := report.Gantt(os.Stdout, "schedule", res.Partition, items, 72); err != nil {
			fatal(err)
		}
	}

	if *jsonOut != "" {
		w := os.Stdout
		if *jsonOut != "-" {
			f, err := os.Create(*jsonOut)
			if err != nil {
				fatal(err)
			}
			defer f.Close()
			w = f
		}
		if err := res.WritePlan(w); err != nil {
			fatal(err)
		}
	}

	if *verify {
		fmt.Print("verifying plan by cycle-accurate simulation... ")
		vt := sink.Span("verify").Begin()
		err := sim.VerifyPlan(res)
		vt.End()
		if err != nil {
			fatal(err)
		}
		fmt.Println("ok: all stimuli delivered bit-exactly, volumes match")
	}

	if err := stopProfiles(); err != nil {
		fatal(err)
	}
	sink.PublishRun("socopt", "done")
	sink.Flush()
	writeTelemetry(sink, *telemetryOut, *telemetryText)
	// Allow a final scrape, then stop the live endpoint.
	if serr := server.ShutdownTimeout(2 * time.Second); serr != nil {
		fmt.Fprintln(os.Stderr, "socopt: metrics server:", serr)
	}
}

// writeTelemetry flushes the telemetry snapshot to the -telemetry file
// and/or as -telemetry-text on stderr. A nil sink is a no-op. It is
// called on the success path and on interruption, so a cancelled run
// still produces its (marked) run report.
func writeTelemetry(sink *telemetry.Sink, out string, text bool) {
	if sink == nil {
		return
	}
	sn := sink.Snapshot()
	if out != "" {
		w := os.Stdout
		if out != "-" {
			f, err := os.Create(out)
			if err != nil {
				fatal(err)
			}
			defer f.Close()
			w = f
		}
		if err := sn.WriteJSON(w); err != nil {
			fatal(err)
		}
	}
	if text {
		if err := sn.Render(os.Stderr); err != nil {
			fatal(err)
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "socopt:", err)
	os.Exit(1)
}

func loadDesign(name string) (*soc.SOC, error) {
	if s, ok := soc.AllBenchmarks()[name]; ok {
		return s, nil
	}
	f, err := os.Open(name)
	if err != nil {
		return nil, fmt.Errorf("%q is not a built-in design and cannot be opened: %w", name, err)
	}
	defer f.Close()
	return soc.Parse(f)
}

func parseStyle(name string) (core.Style, error) {
	for _, s := range []core.Style{core.StyleNoTDC, core.StyleTDCPerTAM, core.StyleTDCPerCore} {
		if s.String() == name {
			return s, nil
		}
	}
	return 0, fmt.Errorf("unknown style %q", name)
}

func printResult(res *core.Result, tester ate.Tester) {
	fmt.Printf("design %s: %d cores, style %s, W_TAM = %d\n",
		res.SOC.Name, len(res.SOC.Cores), res.Style, res.WTAM)
	fmt.Printf("TAM partition: %v\n", res.Partition)
	fmt.Printf("test time: %d cycles", res.TestTime)
	if sec := tester.Seconds(res.TestTime); sec > 0 {
		fmt.Printf(" (%.3f ms at %.0f MHz)", sec*1e3, tester.FreqMHz)
	}
	fmt.Println()
	fmt.Printf("ATE stimulus volume: %s Mbit (%d bits), %d bits per channel\n",
		report.Mbits(res.Volume), res.Volume, tester.DepthPerChannel(res.Volume))
	if tester.MemoryDepth > 0 {
		if tester.Fits(res.Volume) {
			fmt.Println("fits ATE vector memory without reload")
		} else {
			fmt.Printf("requires %d ATE memory reloads\n", tester.Reloads(res.Volume))
		}
	}
	if res.Decompressors > 0 {
		fmt.Printf("decompressors: %d (%d flip-flops, %d gates total)\n",
			res.Decompressors, res.DecompFFs, res.DecompGates)
	}
	fmt.Printf("CPU: %.3fs tables + %.3fs architecture search\n", res.TableSeconds, res.CPUSeconds)

	tab := report.NewTable("\nper-core plan (sorted by start time)",
		"core", "bus", "start", "cycles", "mode", "w", "m", "volume (bits)")
	for _, ch := range res.Choices {
		mode := "direct"
		if ch.Config.UseTDC {
			mode = ch.Config.Codec
		}
		tab.Add(ch.Core, fmt.Sprint(ch.Bus), fmt.Sprint(ch.Start),
			fmt.Sprint(ch.Config.Time), mode,
			fmt.Sprint(ch.Config.Width), fmt.Sprint(ch.Config.M),
			fmt.Sprint(ch.Config.Volume))
	}
	if err := tab.Render(os.Stdout); err != nil {
		fatal(err)
	}
}
