package main

import (
	"os"
	"path/filepath"
	"testing"

	"soctap/internal/core"
	"soctap/internal/soc"
)

func TestParseStyle(t *testing.T) {
	cases := []struct {
		in   string
		want core.Style
		ok   bool
	}{
		{"no-tdc", core.StyleNoTDC, true},
		{"tdc-per-tam", core.StyleTDCPerTAM, true},
		{"tdc-per-core", core.StyleTDCPerCore, true},
		{"bogus", 0, false},
		{"", 0, false},
	}
	for _, c := range cases {
		got, err := parseStyle(c.in)
		if c.ok && (err != nil || got != c.want) {
			t.Errorf("parseStyle(%q) = %v, %v", c.in, got, err)
		}
		if !c.ok && err == nil {
			t.Errorf("parseStyle(%q) accepted", c.in)
		}
	}
}

func TestLoadDesignBuiltin(t *testing.T) {
	s, err := loadDesign("d695")
	if err != nil {
		t.Fatal(err)
	}
	if s.Name != "d695" {
		t.Errorf("loaded %q", s.Name)
	}
}

func TestLoadDesignFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "x.soc")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := soc.Write(f, soc.D695()); err != nil {
		t.Fatal(err)
	}
	f.Close()
	s, err := loadDesign(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Cores) != 10 {
		t.Errorf("file design has %d cores", len(s.Cores))
	}
	if _, err := loadDesign("/nonexistent/file.soc"); err == nil {
		t.Error("missing file accepted")
	}
}
