// Command socgen emits synthetic SOC design descriptions in the
// library's ITC'02-inspired text format, for experimenting with the
// optimizer on designs beyond the built-in benchmarks.
//
// Usage:
//
//	socgen -cores 8 -seed 42 -o mydesign.soc
//	socgen -profile industrial -cores 6        # compression-ready cores
//	socgen -profile iscas -cores 10            # dense, few long chains
//	socgen -profile giant -cores 48            # ~1M cubes: streaming-scale
//	socgen -profile giant -cores 2000 -o huge.soc
//	socgen -profile giant -cores 8 -patterns 4000 -scale 0.25   # trimmed giant
//
// The giant profile emits production-scale cores (tens of thousands of
// scan cells and patterns each) intended for the streaming evaluator
// path; -patterns overrides every core's pattern count and -scale
// multiplies the scan structure, which together turn any profile into a
// size family. Output is deterministic in the seed.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	"soctap/internal/soc"
)

func main() {
	nCores := flag.Int("cores", 6, "number of cores")
	seed := flag.Int64("seed", 1, "generator seed")
	profile := flag.String("profile", "industrial", "core profile: industrial (sparse, many short chains), iscas (dense, few long chains), or giant (streaming-scale cores, millions of cubes)")
	name := flag.String("name", "synth", "SOC name")
	patterns := flag.Int("patterns", 0, "override per-core pattern count (0 = profile default)")
	scale := flag.Float64("scale", 0, "scan-structure size multiplier (0 = 1)")
	out := flag.String("o", "", "output file (default stdout)")
	flag.Parse()

	// SIGINT/SIGTERM abort generation between cores; a second signal
	// kills the process immediately.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	go func() {
		<-ctx.Done()
		stop()
	}()

	s, err := soc.Synthesize(ctx, soc.SynthSpec{
		Name:     *name,
		Profile:  *profile,
		Cores:    *nCores,
		Seed:     *seed,
		Patterns: *patterns,
		Scale:    *scale,
	})
	if errors.Is(err, context.Canceled) {
		fmt.Fprintln(os.Stderr, "socgen: interrupted:", err)
		os.Exit(130)
	}
	if err != nil {
		fatal(err)
	}

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		w = f
	}
	if err := soc.Write(w, s); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "socgen:", err)
	os.Exit(1)
}
