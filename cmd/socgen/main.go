// Command socgen emits synthetic SOC design descriptions in the
// library's ITC'02-inspired text format, for experimenting with the
// optimizer on designs beyond the built-in benchmarks.
//
// Usage:
//
//	socgen -cores 8 -seed 42 -o mydesign.soc
//	socgen -profile industrial -cores 6        # compression-ready cores
//	socgen -profile iscas -cores 10            # dense, few long chains
//
// Output is deterministic in the seed.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"os/signal"
	"syscall"

	"soctap/internal/soc"
)

func main() {
	nCores := flag.Int("cores", 6, "number of cores")
	seed := flag.Int64("seed", 1, "generator seed")
	profile := flag.String("profile", "industrial", "core profile: industrial (sparse, many short chains) or iscas (dense, few long chains)")
	name := flag.String("name", "synth", "SOC name")
	out := flag.String("o", "", "output file (default stdout)")
	flag.Parse()

	if *nCores < 1 {
		fatal(fmt.Errorf("need at least one core"))
	}

	// SIGINT/SIGTERM abort generation between cores; a second signal
	// kills the process immediately.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	go func() {
		<-ctx.Done()
		stop()
	}()

	s, err := generate(ctx, *name, *profile, *nCores, *seed)
	if errors.Is(err, context.Canceled) {
		fmt.Fprintln(os.Stderr, "socgen: interrupted:", err)
		os.Exit(130)
	}
	if err != nil {
		fatal(err)
	}

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		w = f
	}
	if err := soc.Write(w, s); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "socgen:", err)
	os.Exit(1)
}

// generate draws nCores random cores of the requested profile.
func generate(ctx context.Context, name, profile string, nCores int, seed int64) (*soc.SOC, error) {
	rng := rand.New(rand.NewSource(seed))
	s := &soc.SOC{Name: name}
	for i := 0; i < nCores; i++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		var c *soc.Core
		switch profile {
		case "industrial":
			cells := 8000 + rng.Intn(60000)
			chainLen := 40 + rng.Intn(40)
			nChains := cells / chainLen
			c = &soc.Core{
				Name:         fmt.Sprintf("core-%d", i+1),
				Inputs:       50 + rng.Intn(400),
				Outputs:      50 + rng.Intn(350),
				Bidirs:       rng.Intn(32),
				ScanChains:   balanced(cells, nChains),
				Patterns:     100 + rng.Intn(250),
				Gates:        cells * 12,
				CareDensity:  0.01 + rng.Float64()*0.04,
				Clustering:   0.6 + rng.Float64()*0.3,
				DensityDecay: 0.5 + rng.Float64()*0.4,
				Seed:         seed*1000 + int64(i),
			}
		case "iscas":
			cells := 100 + rng.Intn(2000)
			nChains := 1 + rng.Intn(32)
			c = &soc.Core{
				Name:         fmt.Sprintf("core-%d", i+1),
				Inputs:       20 + rng.Intn(200),
				Outputs:      10 + rng.Intn(300),
				ScanChains:   balanced(cells, nChains),
				Patterns:     20 + rng.Intn(220),
				Gates:        cells * 10,
				CareDensity:  0.35 + rng.Float64()*0.3,
				Clustering:   0.2 + rng.Float64()*0.3,
				DensityDecay: rng.Float64() * 0.5,
				Seed:         seed*1000 + int64(i),
			}
		default:
			return nil, fmt.Errorf("unknown profile %q", profile)
		}
		s.Cores = append(s.Cores, c)
	}
	return s, s.Validate()
}

func balanced(total, n int) []int {
	if n < 1 {
		n = 1
	}
	if n > total {
		n = total
	}
	chains := make([]int, n)
	base, rem := total/n, total%n
	for i := range chains {
		chains[i] = base
		if i < rem {
			chains[i]++
		}
	}
	return chains
}
