package main

import (
	"bytes"
	"context"
	"testing"

	"soctap/internal/soc"
)

func TestGenerateDeterministic(t *testing.T) {
	a, err := generate(context.Background(), "x", "industrial", 4, 9)
	if err != nil {
		t.Fatal(err)
	}
	b, err := generate(context.Background(), "x", "industrial", 4, 9)
	if err != nil {
		t.Fatal(err)
	}
	var ba, bb bytes.Buffer
	if err := soc.Write(&ba, a); err != nil {
		t.Fatal(err)
	}
	if err := soc.Write(&bb, b); err != nil {
		t.Fatal(err)
	}
	if ba.String() != bb.String() {
		t.Error("same seed produced different designs")
	}
	c, _ := generate(context.Background(), "x", "industrial", 4, 10)
	var bc bytes.Buffer
	soc.Write(&bc, c)
	if ba.String() == bc.String() {
		t.Error("different seeds produced identical designs")
	}
}

func TestGenerateProfiles(t *testing.T) {
	ind, err := generate(context.Background(), "i", "industrial", 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range ind.Cores {
		if c.CareDensity > 0.06 {
			t.Errorf("industrial core %s density %g too high", c.Name, c.CareDensity)
		}
		if len(c.ScanChains) < 50 {
			t.Errorf("industrial core %s has only %d chains", c.Name, len(c.ScanChains))
		}
	}
	isc, err := generate(context.Background(), "s", "iscas", 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range isc.Cores {
		if c.CareDensity < 0.3 {
			t.Errorf("iscas core %s density %g too low", c.Name, c.CareDensity)
		}
	}
	if _, err := generate(context.Background(), "b", "bogus", 2, 1); err == nil {
		t.Error("unknown profile accepted")
	}
}

func TestGeneratedDesignsAreUsable(t *testing.T) {
	// Generated designs must round-trip and validate.
	s, err := generate(context.Background(), "g", "industrial", 2, 33)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := soc.Write(&buf, s); err != nil {
		t.Fatal(err)
	}
	back, err := soc.Parse(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if err := back.Validate(); err != nil {
		t.Error(err)
	}
}

func TestBalancedHelper(t *testing.T) {
	ch := balanced(100, 7)
	total := 0
	for _, l := range ch {
		total += l
	}
	if total != 100 || len(ch) != 7 {
		t.Errorf("balanced(100,7) = %v", ch)
	}
	if got := balanced(3, 10); len(got) != 3 {
		t.Errorf("balanced clamps to total: %v", got)
	}
	if got := balanced(5, 0); len(got) != 1 {
		t.Errorf("balanced(5,0) = %v", got)
	}
}
