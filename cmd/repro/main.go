// Command repro regenerates the tables and figures of the paper's
// evaluation section (DATE 2008). Each experiment prints its artifact in
// the paper's layout together with the shape claims being reproduced.
//
// Usage:
//
//	repro [-o output.txt] [-workers N] {fig2|fig3|fig4|tab1|tab2|tab3|all}
//	repro tab3 -telemetry t.json -table-cache .tables
//	repro all -cpuprofile cpu.out -quiet
//
// Flags may also follow the experiment name (the usual
// "verb then options" CLI shape); they are re-parsed after the verb.
//
// Expect `all` to take a few minutes on one CPU: the industrial-core
// lookup tables dominate, and are shared across experiments. The (w, m)
// evaluations fan out over one worker per CPU by default; -workers
// bounds the pool (results are bit-identical for every setting).
//
// Unless -quiet is given, per-phase progress lines go to stderr as each
// artifact, optimizer phase, and per-core table build completes.
// -telemetry writes the full machine-readable run report (phase spans,
// subsystem counters, worker timings) as deterministic JSON;
// -telemetry-text renders the same snapshot as tables on stderr.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"soctap/internal/experiments"
	"soctap/internal/telemetry"
	"soctap/internal/units"
)

func main() {
	out := flag.String("o", "", "write output to this file instead of stdout")
	workers := flag.Int("workers", 0, "evaluation-engine worker goroutines (0 = one per CPU, 1 = sequential; results are identical)")
	evalWindow := flag.Int("eval-window", 0, "evaluator streaming window in cubes (0 = automatic by core size, -1 = stream the whole set as one window; results are identical)")
	tableCache := flag.String("table-cache", "", "directory for the persistent lookup-table cache (reused across runs)")
	tableCacheMem := flag.String("table-cache-mem", "", "in-memory table cache budget, e.g. 64M or 2GiB (empty = unbounded)")
	tableCacheSize := flag.String("table-cache-size", "", "on-disk table cache budget under -table-cache, e.g. 512M (empty = unbounded)")
	telemetryOut := flag.String("telemetry", "", "write the telemetry snapshot (phase spans + counters) as JSON to this file ('-' for stdout)")
	telemetryText := flag.Bool("telemetry-text", false, "render the telemetry snapshot as text on stderr after the run")
	metricsAddr := flag.String("metrics-addr", "", "serve live /metrics, /events, /healthz and /debug/pprof on this address (e.g. :9090) while the run is in flight")
	quiet := flag.Bool("quiet", false, "suppress per-phase progress lines on stderr")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memProfile := flag.String("memprofile", "", "write a heap profile to this file (taken at exit)")
	traceOut := flag.String("trace", "", "write a runtime execution trace to this file")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: repro [flags] {fig2|fig3|fig4|tab1|tab2|tab3|ablations|techsel|seeds|verify|all} [flags]\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() == 0 {
		flag.Usage()
		os.Exit(2)
	}
	// Accept flags after the experiment name too: take the verb, then
	// re-parse the remainder (flag parsing stops at the first
	// positional argument).
	name := flag.Arg(0)
	if flag.NArg() > 1 {
		if err := flag.CommandLine.Parse(flag.Args()[1:]); err != nil {
			os.Exit(2)
		}
		if flag.NArg() != 0 {
			flag.Usage()
			os.Exit(2)
		}
	}
	experiments.SetWorkers(*workers)
	experiments.SetEvalWindow(*evalWindow)
	if *tableCache != "" {
		experiments.SetTableCacheDir(*tableCache)
	}
	memBytes, err := units.ParseBytes(*tableCacheMem)
	if err != nil {
		fmt.Fprintln(os.Stderr, "repro: -table-cache-mem:", err)
		os.Exit(2)
	}
	diskBytes, err := units.ParseBytes(*tableCacheSize)
	if err != nil {
		fmt.Fprintln(os.Stderr, "repro: -table-cache-size:", err)
		os.Exit(2)
	}
	experiments.SetTableCacheLimits(memBytes, diskBytes)

	// SIGINT/SIGTERM cancel the experiment run cooperatively: in-flight
	// Optimize/BuildTable calls unwind with ctx.Err(), the telemetry
	// snapshot gathered so far is still flushed (with a run.cancelled
	// marker), and the exit code is non-zero. A second signal kills the
	// process immediately.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	go func() {
		<-ctx.Done()
		stop()
	}()
	experiments.SetContext(ctx)

	stopProfiles, err := telemetry.StartProfiles(*cpuProfile, *memProfile, *traceOut)
	if err != nil {
		fatal(err)
	}

	// The sink is on whenever any consumer wants it: progress lines
	// (default), the JSON report, the text report, or the live metrics
	// endpoint. A fully quiet run with no report keeps it nil —
	// instrumentation then costs nothing.
	var sink *telemetry.Sink
	if *telemetryOut != "" || *telemetryText || *metricsAddr != "" || !*quiet {
		sink = telemetry.New()
		experiments.SetTelemetry(sink)
	}
	var server *telemetry.Server
	if *metricsAddr != "" {
		server, err = telemetry.StartServer(*metricsAddr, sink)
		if err != nil {
			fatal(err)
		}
		if !*quiet {
			fmt.Fprintf(os.Stderr, "repro: serving metrics on http://%s/metrics\n", server.Addr())
		}
	}
	if sink != nil && !*quiet {
		start := time.Now()
		sink.SetSpanHook(func(path string, d time.Duration) {
			// Per-artifact and per-phase lines plus per-core table
			// builds; deeper search internals (refine/k-sweep cycles)
			// stay out of the progress stream.
			last := path[strings.LastIndexByte(path, '/')+1:]
			if strings.Count(path, "/") <= 1 || strings.HasPrefix(last, "core:") {
				fmt.Fprintf(os.Stderr, "repro: [%7.1fs] %-44s %8.3fs\n",
					time.Since(start).Seconds(), path, d.Seconds())
			}
		})
	}

	var w io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		w = f
	}

	sink.PublishRun("repro", "start")
	err = runExperiments(w, name)
	if perr := stopProfiles(); err == nil {
		err = perr
	}
	cancelled := errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
	if cancelled {
		sink.Counter("run.cancelled").Inc()
		sink.PublishRun("repro", "cancelled")
	} else if err == nil {
		sink.PublishRun("repro", "done")
	}
	// Drain the async progress hook before writing final reports, so
	// every span line lands on stderr ahead of the summary (and the
	// single-worker progress stream stays byte-identical to the old
	// synchronous hook).
	sink.Flush()

	// Flush the snapshot before judging err: an interrupted run still
	// produces its (marked) report of the work completed so far.
	if sink != nil && (err == nil || cancelled) {
		sn := sink.Snapshot()
		if *telemetryOut != "" {
			tw := os.Stdout
			if *telemetryOut != "-" {
				f, err := os.Create(*telemetryOut)
				if err != nil {
					fatal(err)
				}
				defer f.Close()
				tw = f
			}
			if err := sn.WriteJSON(tw); err != nil {
				fatal(err)
			}
		}
		if *telemetryText {
			if err := sn.Render(os.Stderr); err != nil {
				fatal(err)
			}
		}
	}
	// Give the live endpoint a moment to serve final scrapes, then stop
	// it on every exit path (streamed /events clients are cut off).
	if serr := server.ShutdownTimeout(2 * time.Second); serr != nil && !*quiet {
		fmt.Fprintln(os.Stderr, "repro: metrics server:", serr)
	}
	if cancelled {
		fmt.Fprintln(os.Stderr, "repro: interrupted:", err)
		os.Exit(130)
	}
	if err != nil {
		fatal(err)
	}
}

// runExperiments runs one named experiment, or all of them in sequence.
func runExperiments(w io.Writer, name string) error {
	if name != "all" {
		return run(w, name)
	}
	for _, n := range []string{"fig2", "fig3", "fig4", "tab1", "tab2", "tab3", "ablations", "techsel", "seeds", "verify"} {
		if err := run(w, n); err != nil {
			return err
		}
		fmt.Fprintln(w)
	}
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "repro:", err)
	os.Exit(1)
}
