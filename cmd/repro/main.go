// Command repro regenerates the tables and figures of the paper's
// evaluation section (DATE 2008). Each experiment prints its artifact in
// the paper's layout together with the shape claims being reproduced.
//
// Usage:
//
//	repro [-o output.txt] [-workers N] {fig2|fig3|fig4|tab1|tab2|tab3|all}
//
// Expect `all` to take a few minutes on one CPU: the industrial-core
// lookup tables dominate, and are shared across experiments. The (w, m)
// evaluations fan out over one worker per CPU by default; -workers
// bounds the pool (results are bit-identical for every setting).
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"soctap/internal/experiments"
)

func main() {
	out := flag.String("o", "", "write output to this file instead of stdout")
	workers := flag.Int("workers", 0, "evaluation-engine worker goroutines (0 = one per CPU, 1 = sequential; results are identical)")
	tableCache := flag.String("table-cache", "", "directory for the persistent lookup-table cache (reused across runs)")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: repro [-o file] {fig2|fig3|fig4|tab1|tab2|tab3|ablations|techsel|seeds|verify|all}\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 1 {
		flag.Usage()
		os.Exit(2)
	}
	experiments.SetWorkers(*workers)
	if *tableCache != "" {
		experiments.SetTableCacheDir(*tableCache)
	}

	var w io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		w = f
	}

	name := flag.Arg(0)
	if name == "all" {
		for _, n := range []string{"fig2", "fig3", "fig4", "tab1", "tab2", "tab3", "ablations", "techsel", "seeds", "verify"} {
			if err := run(w, n); err != nil {
				fatal(err)
			}
			fmt.Fprintln(w)
		}
		return
	}
	if err := run(w, name); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "repro:", err)
	os.Exit(1)
}
