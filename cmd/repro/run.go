package main

import (
	"fmt"
	"io"
	"time"

	"soctap/internal/experiments"
)

// renderer is the common shape of every experiment result.
type renderer interface {
	Render(io.Writer) error
}

// run executes one named experiment and renders it with timing.
func run(w io.Writer, name string) error {
	start := time.Now()
	var (
		r   renderer
		err error
	)
	switch name {
	case "fig2":
		r, err = experiments.Fig2()
	case "fig3":
		r, err = experiments.Fig3()
	case "fig4":
		r, err = experiments.Fig4()
	case "tab1":
		r, err = experiments.Tab1()
	case "tab2":
		r, err = experiments.Tab2()
	case "tab3":
		r, err = experiments.Tab3()
	case "ablations":
		r, err = experiments.Ablations()
	case "techsel":
		r, err = experiments.TechSel()
	case "seeds":
		r, err = experiments.Seeds()
	case "verify":
		r, err = experiments.Verify()
	default:
		return fmt.Errorf("unknown experiment %q", name)
	}
	if err != nil {
		return fmt.Errorf("%s: %w", name, err)
	}
	if err := r.Render(w); err != nil {
		return err
	}
	_, err = fmt.Fprintf(w, "[%s regenerated in %.1fs]\n", name, time.Since(start).Seconds())
	return err
}
