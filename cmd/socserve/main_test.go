package main

import (
	"testing"
	"time"
)

func TestBuildConfig(t *testing.T) {
	dir := t.TempDir()
	cfg, err := buildConfig(4, 16, 30*time.Second, 5*time.Minute, 10, 20,
		"4M", 2, dir, "64M", "256M")
	if err != nil {
		t.Fatal(err)
	}
	if cfg.MaxJobs != 4 || cfg.MaxQueue != 16 || cfg.RatePerSec != 10 || cfg.Burst != 20 {
		t.Errorf("flag passthrough wrong: %+v", cfg)
	}
	if cfg.MaxBodyBytes != 4<<20 {
		t.Errorf("MaxBodyBytes = %d, want %d", cfg.MaxBodyBytes, 4<<20)
	}
	if cfg.Cache == nil {
		t.Fatal("no cache assembled")
	}
}

func TestBuildConfigErrors(t *testing.T) {
	if _, err := buildConfig(0, 0, 0, 0, 0, 0, "nope", 0, "", "", ""); err == nil {
		t.Error("bad -max-body accepted")
	}
	if _, err := buildConfig(0, 0, 0, 0, 0, 0, "", 0, "", "12 parsecs", ""); err == nil {
		t.Error("bad -table-cache-mem accepted")
	}
	if _, err := buildConfig(0, 0, 0, 0, 0, 0, "", 0, "", "", "1G"); err == nil {
		t.Error("-table-cache-size without -table-cache accepted")
	}
}
