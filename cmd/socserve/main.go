// Command socserve runs the optimizer as a long-lived HTTP service:
// clients POST a .soc design (or name a built-in benchmark) and get the
// optimized architecture/schedule back as JSON, or as a live NDJSON
// progress stream with ?stream=1. All jobs share one bounded table
// cache, so identical cores across requests are built exactly once.
//
// Usage:
//
//	socserve -addr :8080 -jobs 4 -rate 10 -table-cache /var/cache/soctap
//
//	curl -s 'localhost:8080/v1/optimize?design=d695&width=32' -X POST
//	curl -s 'localhost:8080/v1/optimize?width=24&stream=1' -X POST --data-binary @my.soc
//	curl -s localhost:8080/metrics
//
// SIGINT/SIGTERM drain gracefully: admission stops (healthz turns 503),
// in-flight jobs finish (up to -drain), then the listener closes. A
// second signal kills the process immediately.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"soctap"
	"soctap/internal/serve"
	"soctap/internal/units"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	jobs := flag.Int("jobs", 0, "concurrent optimize jobs (0 = default 2)")
	queue := flag.Int("queue", 0, "admitted jobs that may wait beyond -jobs (0 = default 64)")
	timeout := flag.Duration("timeout", 0, "per-request deadline when the client sends none (0 = default 60s)")
	maxTimeout := flag.Duration("max-timeout", 0, "cap on the client-requested ?timeout= (0 = default 10m)")
	rate := flag.Float64("rate", 0, "per-client request rate limit in requests/second (0 = unlimited)")
	burst := flag.Float64("burst", 0, "per-client burst capacity (0 = max(2*rate, 4))")
	maxBody := flag.String("max-body", "", "largest accepted .soc upload, e.g. 8M (empty = default 8MiB)")
	jobWorkers := flag.Int("job-workers", 0, "evaluation-engine workers per job (0 = one per CPU); also caps the ?workers override")
	tableCache := flag.String("table-cache", "", "directory for the persistent lookup-table cache shared by all jobs")
	tableCacheMem := flag.String("table-cache-mem", "", "in-memory table cache budget, e.g. 256M (empty = unbounded)")
	tableCacheSize := flag.String("table-cache-size", "", "on-disk table cache budget under -table-cache, e.g. 2G (empty = unbounded)")
	drain := flag.Duration("drain", 30*time.Second, "how long shutdown waits for in-flight jobs before cancelling them")
	flag.Parse()

	cfg, err := buildConfig(*jobs, *queue, *timeout, *maxTimeout, *rate, *burst,
		*maxBody, *jobWorkers, *tableCache, *tableCacheMem, *tableCacheSize)
	if err != nil {
		fmt.Fprintln(os.Stderr, "socserve:", err)
		os.Exit(2)
	}
	s := serve.New(cfg)

	// streamCtx outlives the drain: it parents every request context, so
	// cancelling it (after Drain) unblocks any still-open event streams
	// that http.Server.Shutdown would otherwise wait on forever.
	streamCtx, stopStreams := context.WithCancel(context.Background())
	defer stopStreams()
	srv := &http.Server{
		Addr:    *addr,
		Handler: s.Handler(),
		// No WriteTimeout: a buffered optimize response is written only
		// after a job that may legitimately run for minutes — the
		// per-request job deadline bounds handler lifetime instead, and
		// the streaming handlers manage their own write deadlines.
		ReadHeaderTimeout: 10 * time.Second,
		IdleTimeout:       2 * time.Minute,
		BaseContext:       func(net.Listener) context.Context { return streamCtx },
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errCh := make(chan error, 1)
	go func() {
		log.Printf("socserve: listening on %s", *addr)
		errCh <- srv.ListenAndServe()
	}()

	select {
	case err := <-errCh:
		log.Fatalf("socserve: %v", err)
	case <-ctx.Done():
	}
	stop() // restore default handlers: a second signal kills immediately

	log.Printf("socserve: draining (up to %v)", *drain)
	drainCtx, cancelDrain := context.WithTimeout(context.Background(), *drain)
	defer cancelDrain()
	if err := s.Drain(drainCtx); err != nil {
		log.Printf("socserve: drain deadline hit, in-flight jobs cancelled: %v", err)
	}
	stopStreams()
	shutCtx, cancelShut := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancelShut()
	if err := srv.Shutdown(shutCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		log.Printf("socserve: shutdown: %v", err)
	}
	if err := <-errCh; err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Printf("socserve: %v", err)
	}
	log.Printf("socserve: stopped")
}

// buildConfig assembles the serve.Config from the flag values,
// including the shared bounded table cache. Split from main so the
// translation is testable.
func buildConfig(jobs, queue int, timeout, maxTimeout time.Duration, rate, burst float64,
	maxBody string, jobWorkers int, cacheDir, cacheMem, cacheDisk string) (serve.Config, error) {
	cfg := serve.Config{
		MaxJobs:        jobs,
		MaxQueue:       queue,
		DefaultTimeout: timeout,
		MaxTimeout:     maxTimeout,
		RatePerSec:     rate,
		Burst:          burst,
		JobWorkers:     jobWorkers,
	}
	if maxBody != "" {
		n, err := units.ParseBytes(maxBody)
		if err != nil {
			return cfg, fmt.Errorf("-max-body: %w", err)
		}
		cfg.MaxBodyBytes = n
	}
	cache := new(soctap.Cache)
	if cacheMem != "" {
		n, err := units.ParseBytes(cacheMem)
		if err != nil {
			return cfg, fmt.Errorf("-table-cache-mem: %w", err)
		}
		cache.SetMemLimit(n)
	}
	if cacheDisk != "" {
		if cacheDir == "" {
			return cfg, errors.New("-table-cache-size requires -table-cache")
		}
		n, err := units.ParseBytes(cacheDisk)
		if err != nil {
			return cfg, fmt.Errorf("-table-cache-size: %w", err)
		}
		cache.SetDiskLimit(n)
	}
	if cacheDir != "" {
		cache.SetDir(cacheDir)
	}
	cfg.Cache = cache
	return cfg, nil
}
