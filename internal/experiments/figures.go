package experiments

import (
	"fmt"
	"io"

	"soctap/internal/core"
	"soctap/internal/report"
	"soctap/internal/selenc"
	"soctap/internal/soc"
)

// Fig2Result is the per-m test-time sweep of Figure 2: core ckt-7 at a
// fixed TAM width (w = 10, m in [128, 255]).
type Fig2Result struct {
	CoreName string
	W        int
	Ms       []int
	Times    []int64

	TauMax, TauMin int64
	MAtMin         int
	// SpreadPct is (τmax-τmin)/τmax in percent; the paper reports 31%.
	SpreadPct float64
	// InteriorMin reports whether the minimum falls strictly inside the
	// band — the paper's headline observation that "more wrapper chains"
	// is not automatically better.
	InteriorMin bool
}

// Fig2 sweeps every m in the w=10 band for ckt-7.
func Fig2() (*Fig2Result, error) {
	defer expSpan("fig2").End()
	c, err := soc.IndustrialCore("ckt-7")
	if err != nil {
		return nil, err
	}
	lo, hi, err := selenc.MBand(10)
	if err != nil {
		return nil, err
	}
	cfgs, err := core.SweepTDCContext(expContext(), c, lo, hi, engineWorkers)
	if err != nil {
		return nil, err
	}
	r := &Fig2Result{CoreName: c.Name, W: 10}
	for i, cfg := range cfgs {
		m := lo + i
		r.Ms = append(r.Ms, m)
		r.Times = append(r.Times, cfg.Time)
		if i == 0 || cfg.Time > r.TauMax {
			r.TauMax = cfg.Time
		}
		if i == 0 || cfg.Time < r.TauMin {
			r.TauMin = cfg.Time
			r.MAtMin = m
		}
	}
	r.SpreadPct = 100 * float64(r.TauMax-r.TauMin) / float64(r.TauMax)
	r.InteriorMin = r.MAtMin != r.Ms[len(r.Ms)-1] && r.MAtMin != r.Ms[0]
	return r, nil
}

// Render draws the figure and its summary statistics.
func (r *Fig2Result) Render(w io.Writer) error {
	title := fmt.Sprintf("Figure 2: test time vs wrapper chains, %s, TAM width %d", r.CoreName, r.W)
	if err := report.Series(w, title, r.Ms, r.Times, 64, 12); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w,
		"tau_max = %d, tau_min = %d at m = %d; (tau_max - tau_min)/tau_max = %.1f%% (paper: 31%%)\n"+
			"minimum interior to the band: %v (paper: m = 253 of [128,255])\n",
		r.TauMax, r.TauMin, r.MAtMin, r.SpreadPct, r.InteriorMin)
	return err
}

// Fig3Result is the best-per-TAM-width sweep of Figure 3.
type Fig3Result struct {
	CoreName string
	Ws       []int
	Times    []int64 // best test time at each width
	Volumes  []int64 // compressed volume of that configuration
	BestMs   []int   // m achieving it
	// TimeNonMonotonic reports whether some wider TAM is slower than a
	// narrower one (the paper's w=11 < w=12,13 observation); with our
	// synthetic stand-in cores the time curve plateaus instead, but the
	// *volume* of the best configuration does invert. Both are recorded.
	TimeNonMonotonic bool
	VolNonMonotonic  bool
}

// Fig3 finds, for each TAM width w, the best m in w's band for ckt-7,
// using the same banded exploration the optimizer's lookup tables use.
func Fig3() (*Fig3Result, error) {
	defer expSpan("fig3").End()
	c, err := soc.IndustrialCore("ckt-7")
	if err != nil {
		return nil, err
	}
	tab, err := sharedCache.GetInstrumentedContext(expContext(), c,
		engineTables(core.TableOptions{MaxWidth: tableWidth, Workers: engineWorkers}), telSink)
	if err != nil {
		return nil, err
	}
	r := &Fig3Result{CoreName: c.Name}
	for w := 4; w <= tableWidth; w++ {
		cfg := tab.TDCExact[w]
		if !cfg.Feasible {
			continue
		}
		r.Ws = append(r.Ws, w)
		r.Times = append(r.Times, cfg.Time)
		r.Volumes = append(r.Volumes, cfg.Volume)
		r.BestMs = append(r.BestMs, cfg.M)
	}
	for i := 1; i < len(r.Times); i++ {
		if r.Times[i] > r.Times[i-1] {
			r.TimeNonMonotonic = true
		}
		if r.Volumes[i] > r.Volumes[i-1] {
			r.VolNonMonotonic = true
		}
	}
	return r, nil
}

// Render draws the figure.
func (r *Fig3Result) Render(w io.Writer) error {
	title := fmt.Sprintf("Figure 3: lowest test time vs TAM width, %s", r.CoreName)
	if err := report.Series(w, title, r.Ws, r.Times, 40, 12); err != nil {
		return err
	}
	tab := report.NewTable("", "TAM width w", "best m", "test time", "volume (bits)")
	for i := range r.Ws {
		tab.Add(fmt.Sprint(r.Ws[i]), fmt.Sprint(r.BestMs[i]),
			fmt.Sprint(r.Times[i]), fmt.Sprint(r.Volumes[i]))
	}
	if err := tab.Render(w); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w,
		"non-monotonic in TAM width: time %v, volume %v\n"+
			"(paper: tau(11) < tau(12), tau(13); see EXPERIMENTS.md for the deviation discussion)\n",
		r.TimeNonMonotonic, r.VolNonMonotonic)
	return err
}

// Fig4Result compares the three architecture styles on the paper's
// three-core industrial design at W_TAM = 31.
type Fig4Result struct {
	WTAM    int
	Results [3]*core.Result // indexed by styleOrder
}

// styleOrder fixes the presentation order: (a) no TDC, (b) per TAM,
// (c) per core.
var styleOrder = [3]core.Style{core.StyleNoTDC, core.StyleTDCPerTAM, core.StyleTDCPerCore}

// Fig4 optimizes the Figure 4 SOC under each architecture style.
func Fig4() (*Fig4Result, error) {
	defer expSpan("fig4").End()
	s := soc.Figure4SOC()
	r := &Fig4Result{WTAM: 31}
	for i, style := range styleOrder {
		res, err := core.OptimizeContext(expContext(), s, r.WTAM, core.Options{
			Style:  style,
			Tables: engineTables(core.TableOptions{MaxWidth: tableWidth}),
			Cache:  &sharedCache, Workers: engineWorkers, Telemetry: telSpan,
		})
		if err != nil {
			return nil, err
		}
		r.Results[i] = res
	}
	return r, nil
}

// Render prints the three architectures side by side.
func (r *Fig4Result) Render(w io.Writer) error {
	tab := report.NewTable(
		fmt.Sprintf("Figure 4: architecture styles on {ckt-1, ckt-11, ckt-9}, W_TAM = %d", r.WTAM),
		"style", "TAM partition", "test time", "volume (bits)", "internal wires", "decompressors")
	for _, res := range r.Results {
		tab.Add(res.Style.String(),
			fmt.Sprint(res.Partition),
			fmt.Sprint(res.TestTime),
			fmt.Sprint(res.Volume),
			fmt.Sprint(res.InternalWires),
			fmt.Sprint(res.Decompressors))
	}
	if err := tab.Render(w); err != nil {
		return err
	}
	a, b, c := r.Results[0], r.Results[1], r.Results[2]
	// In the per-TAM style the expanded (m-wide) buses are routed across
	// the SOC to reach the cores; in the per-core style only the w-wide
	// TAM is routed and the m-wide fan-out stays local to each wrapper.
	_, err := fmt.Fprintf(w,
		"TDC speedup vs no-TDC: per-TAM %s, per-core %s\n"+
			"chip-level routed wires: per-TAM %d (expanded buses) vs per-core %d (TAM only)\n"+
			"(paper: tau(b) == tau(c) << tau(a); per-core style needs far narrower on-chip buses)\n",
		report.Ratio(a.TestTime, b.TestTime), report.Ratio(a.TestTime, c.TestTime),
		b.InternalWires, c.Partition.TotalWidth())
	return err
}
