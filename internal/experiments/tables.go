package experiments

import (
	"fmt"
	"io"

	"soctap/internal/baselines"
	"soctap/internal/core"
	"soctap/internal/report"
	"soctap/internal/soc"
)

// Tab1Row is one (design, ATE-channel budget) comparison of Table 1.
type Tab1Row struct {
	Design   string
	WATE     int
	Time18   int64 // [18] virtual-TAM proxy
	Time11   int64 // [11] fixed-width proxy (0 when infeasible)
	TimeOurs int64
	Ratio18  float64 // ours / [18]
	Ratio11  float64 // ours / [11]
}

// Tab1Result is Table 1: test time under an ATE-channel constraint for
// d695 and d2758, against the [18] and [11] proxies.
type Tab1Result struct {
	Rows []Tab1Row
}

// Tab1 runs the ATE-channel-constrained comparison. Every TAM wire is
// driven by one ATE channel in the proposed scheme, so the proposed
// column is the co-optimizer at W_TAM = W_ATE.
func Tab1() (*Tab1Result, error) {
	defer expSpan("tab1").End()
	r := &Tab1Result{}
	for _, design := range []*soc.SOC{soc.D695(), soc.D2758()} {
		for _, wate := range []int{8, 16, 24, 32} {
			ours, err := core.OptimizeContext(expContext(), design, wate, core.Options{
				Style:  core.StyleTDCPerCore,
				Tables: engineTables(core.TableOptions{MaxWidth: tableWidth}),
				Cache:  &sharedCache, Workers: engineWorkers, Telemetry: telSpan,
			})
			if err != nil {
				return nil, err
			}
			b18, err := baselines.VirtualTAM18(design, wate)
			if err != nil {
				return nil, err
			}
			row := Tab1Row{
				Design:   design.Name,
				WATE:     wate,
				Time18:   b18.TestTime,
				TimeOurs: ours.TestTime,
				Ratio18:  float64(ours.TestTime) / float64(b18.TestTime),
			}
			if b11, err := baselines.FixedWidth11(design, wate); err == nil {
				row.Time11 = b11.TestTime
				row.Ratio11 = float64(ours.TestTime) / float64(b11.TestTime)
			}
			r.Rows = append(r.Rows, row)
		}
	}
	return r, nil
}

// Render prints Table 1.
func (r *Tab1Result) Render(w io.Writer) error {
	tab := report.NewTable("Table 1: test time under ATE-channel constraint",
		"design", "W_ATE", "tau[18]", "tau[11]", "tau_ours", "ours/[18]", "ours/[11]")
	for _, row := range r.Rows {
		t11, r11 := "n.a.", "-"
		if row.Time11 > 0 {
			t11 = fmt.Sprint(row.Time11)
			r11 = fmt.Sprintf("%.2f", row.Ratio11)
		}
		tab.Add(row.Design, fmt.Sprint(row.WATE),
			fmt.Sprint(row.Time18), t11, fmt.Sprint(row.TimeOurs),
			fmt.Sprintf("%.2f", row.Ratio18), r11)
	}
	if err := tab.Render(w); err != nil {
		return err
	}
	_, err := fmt.Fprintln(w, "(paper: at an ATE-channel constraint the SOC-level decompressor of [18]\n"+
		" gets wide internal TAMs for free, so the proposed scheme is comparable rather than dominant)")
	return err
}

// Tab2Row is one TAM-width comparison of Table 2 on d695.
type Tab2Row struct {
	WTAM     int
	Time18   int64
	Time13   int64
	TimeOurs int64
	Ratio18  float64
	Ratio13  float64
}

// Tab2Result is Table 2: test time under a TAM-width constraint for
// d695 against the [18] and [13] proxies.
type Tab2Result struct {
	Design string
	Rows   []Tab2Row
}

// Tab2 runs the TAM-width-constrained comparison on d695. At a wire
// constraint the [18] proxy must pay for its internal TAM out of the
// budget: its ATE channel count is the TAM width divided by the
// expansion ratio.
func Tab2() (*Tab2Result, error) {
	defer expSpan("tab2").End()
	design := soc.D695()
	r := &Tab2Result{Design: design.Name}
	for _, wtam := range []int{16, 24, 32, 40, 48, 56, 64} {
		ours, err := core.OptimizeContext(expContext(), design, wtam, core.Options{
			Style:  core.StyleTDCPerCore,
			Tables: engineTables(core.TableOptions{MaxWidth: tableWidth}),
			Cache:  &sharedCache, Workers: engineWorkers, Telemetry: telSpan,
		})
		if err != nil {
			return nil, err
		}
		ch18 := wtam / baselines.Expansion18
		if ch18 < 1 {
			ch18 = 1
		}
		b18, err := baselines.VirtualTAM18(design, ch18)
		if err != nil {
			return nil, err
		}
		b13, err := baselines.LFSRReseeding13(design, wtam)
		if err != nil {
			return nil, err
		}
		r.Rows = append(r.Rows, Tab2Row{
			WTAM:     wtam,
			Time18:   b18.TestTime,
			Time13:   b13.TestTime,
			TimeOurs: ours.TestTime,
			Ratio18:  float64(ours.TestTime) / float64(b18.TestTime),
			Ratio13:  float64(ours.TestTime) / float64(b13.TestTime),
		})
	}
	return r, nil
}

// Render prints Table 2.
func (r *Tab2Result) Render(w io.Writer) error {
	tab := report.NewTable(fmt.Sprintf("Table 2: test time under TAM-width constraint, %s", r.Design),
		"W_TAM", "tau[18]", "tau[13]", "tau_ours", "ours/[18]", "ours/[13]")
	for _, row := range r.Rows {
		tab.Add(fmt.Sprint(row.WTAM),
			fmt.Sprint(row.Time18), fmt.Sprint(row.Time13), fmt.Sprint(row.TimeOurs),
			fmt.Sprintf("%.2f", row.Ratio18), fmt.Sprintf("%.2f", row.Ratio13))
	}
	if err := tab.Render(w); err != nil {
		return err
	}
	_, err := fmt.Fprintln(w, "(paper: better than [18] at a wire constraint, same range as [13];\n"+
		" d695's ~44-66% care density limits what any compression scheme can do)")
	return err
}

// Tab3Row is one (design, W_TAM) row of Table 3.
type Tab3Row struct {
	Design        string
	Gates         int
	InitialVolume int64 // V_i
	WTAM          int

	TimeNoTDC   int64 // tau_nc
	VolNoTDC    int64 // V_nc
	CPUNoTDC    float64
	TimeTDC     int64 // tau_c
	VolTDC      int64 // V_c
	CPUTDC      float64
	TimeRatio   float64 // tau_nc / tau_c
	VolRatioVi  float64 // V_i / V_c
	VolRatioVnc float64 // V_nc / V_c
	Industrial  bool
}

// Tab3Result is Table 3: time/volume minimization with and without TDC
// over d695 and System1..System4.
type Tab3Result struct {
	Rows []Tab3Row

	// Averages over all designs and over industrial designs only — the
	// paper reports 12.59x (15.39x) time and 12.78x (15.80x) volume.
	AvgTimeRatio, AvgTimeRatioInd float64
	AvgVolRatio, AvgVolRatioInd   float64
}

// Tab3Widths are the TAM budgets swept per design.
var Tab3Widths = []int{16, 32, 48, 64}

// Tab3 runs the with/without-TDC comparison.
func Tab3() (*Tab3Result, error) {
	defer expSpan("tab3").End()
	designs := []*soc.SOC{soc.D695()}
	for _, n := range soc.SystemNames() {
		s, err := soc.System(n)
		if err != nil {
			return nil, err
		}
		designs = append(designs, s)
	}

	r := &Tab3Result{}
	var sumT, sumTInd, sumV, sumVInd float64
	var n, nInd int
	for di, design := range designs {
		vi, err := design.InitialVolume()
		if err != nil {
			return nil, err
		}
		for _, wtam := range Tab3Widths {
			noTDC, err := core.OptimizeContext(expContext(), design, wtam, core.Options{
				Style:  core.StyleNoTDC,
				Tables: engineTables(core.TableOptions{MaxWidth: tableWidth}),
				Cache:  &sharedCache, Workers: engineWorkers, Telemetry: telSpan,
			})
			if err != nil {
				return nil, err
			}
			tdc, err := core.OptimizeContext(expContext(), design, wtam, core.Options{
				Style:  core.StyleTDCPerCore,
				Tables: engineTables(core.TableOptions{MaxWidth: tableWidth}),
				Cache:  &sharedCache, Workers: engineWorkers, Telemetry: telSpan,
			})
			if err != nil {
				return nil, err
			}
			row := Tab3Row{
				Design:        design.Name,
				Gates:         design.TotalGates(),
				InitialVolume: vi,
				WTAM:          wtam,
				TimeNoTDC:     noTDC.TestTime,
				VolNoTDC:      noTDC.Volume,
				CPUNoTDC:      noTDC.CPUSeconds,
				TimeTDC:       tdc.TestTime,
				VolTDC:        tdc.Volume,
				CPUTDC:        tdc.CPUSeconds,
				TimeRatio:     float64(noTDC.TestTime) / float64(tdc.TestTime),
				VolRatioVi:    float64(vi) / float64(tdc.Volume),
				VolRatioVnc:   float64(noTDC.Volume) / float64(tdc.Volume),
				Industrial:    di > 0,
			}
			r.Rows = append(r.Rows, row)
			sumT += row.TimeRatio
			sumV += row.VolRatioVnc
			n++
			if row.Industrial {
				sumTInd += row.TimeRatio
				sumVInd += row.VolRatioVnc
				nInd++
			}
		}
	}
	r.AvgTimeRatio = sumT / float64(n)
	r.AvgVolRatio = sumV / float64(n)
	if nInd > 0 {
		r.AvgTimeRatioInd = sumTInd / float64(nInd)
		r.AvgVolRatioInd = sumVInd / float64(nInd)
	}
	return r, nil
}

// Render prints Table 3 in the paper's layout.
func (r *Tab3Result) Render(w io.Writer) error {
	tab := report.NewTable("Table 3: test time and data volume with/without TDC (times in kcycles, volumes in Mbit)",
		"design", "gates", "V_i", "W_TAM",
		"tau_nc", "V_nc", "cpu_nc(s)",
		"tau_c", "V_c", "cpu_c(s)",
		"tau_nc/tau_c", "V_i/V_c", "V_nc/V_c")
	for _, row := range r.Rows {
		tab.Add(row.Design, report.Eng(int64(row.Gates)), report.Mbits(row.InitialVolume),
			fmt.Sprint(row.WTAM),
			report.KCycles(row.TimeNoTDC), report.Mbits(row.VolNoTDC), fmt.Sprintf("%.3f", row.CPUNoTDC),
			report.KCycles(row.TimeTDC), report.Mbits(row.VolTDC), fmt.Sprintf("%.3f", row.CPUTDC),
			fmt.Sprintf("%.2f", row.TimeRatio),
			fmt.Sprintf("%.2f", row.VolRatioVi),
			fmt.Sprintf("%.2f", row.VolRatioVnc))
	}
	if err := tab.Render(w); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w,
		"average time reduction: %.2fx all designs, %.2fx industrial only (paper: 12.59x / 15.39x)\n"+
			"average volume reduction (V_nc/V_c): %.2fx all, %.2fx industrial (paper: 12.78x / 15.80x)\n",
		r.AvgTimeRatio, r.AvgTimeRatioInd, r.AvgVolRatio, r.AvgVolRatioInd)
	return err
}
