package experiments

// These tests regenerate every paper artifact and assert the *shape*
// claims the reproduction targets (see DESIGN.md §4 and EXPERIMENTS.md).
// They are the repository's executable record of paper-vs-measured.
// The heavyweight Table 3 run is skipped under -short.

import (
	"bytes"
	"strings"
	"testing"
)

func TestFig2ShapeClaims(t *testing.T) {
	r, err := Fig2()
	if err != nil {
		t.Fatal(err)
	}
	if r.W != 10 || r.Ms[0] != 128 || r.Ms[len(r.Ms)-1] != 255 {
		t.Fatalf("wrong sweep range: w=%d m=[%d,%d]", r.W, r.Ms[0], r.Ms[len(r.Ms)-1])
	}
	// Core claim 1: test time does not decrease monotonically with m.
	if !r.InteriorMin {
		t.Errorf("minimum at band edge (m=%d); paper's headline is an interior minimum", r.MAtMin)
	}
	// Core claim 2: the max-min spread is substantial (paper: 31%).
	if r.SpreadPct < 10 || r.SpreadPct > 60 {
		t.Errorf("spread %.1f%% outside the paper's regime (31%%)", r.SpreadPct)
	}
	var buf bytes.Buffer
	if err := r.Render(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "Figure 2") {
		t.Error("render missing title")
	}
}

func TestFig3ShapeClaims(t *testing.T) {
	r, err := Fig3()
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Ws) < 6 {
		t.Fatalf("only %d widths", len(r.Ws))
	}
	// Test time must fall steeply from narrow widths then flatten: the
	// last two widths must be within 5% of each other while the first
	// halving is large.
	n := len(r.Times)
	if r.Times[0] < 4*r.Times[n-1] {
		t.Errorf("no steep initial decline: %d -> %d", r.Times[0], r.Times[n-1])
	}
	last, prev := float64(r.Times[n-1]), float64(r.Times[n-2])
	if last < prev*0.95 {
		t.Errorf("no plateau at wide TAMs: %v", r.Times)
	}
	// The best-configuration volume inverts at wide TAMs — the trade-off
	// behind the paper's Figure 3 observation.
	if !r.VolNonMonotonic {
		t.Error("volume monotone; expected inversion at wide TAMs")
	}
	var buf bytes.Buffer
	if err := r.Render(&buf); err != nil {
		t.Fatal(err)
	}
}

func TestFig4ShapeClaims(t *testing.T) {
	r, err := Fig4()
	if err != nil {
		t.Fatal(err)
	}
	a, b, c := r.Results[0], r.Results[1], r.Results[2]
	// tau(b) and tau(c) are equal (same codec, same buses) and both far
	// below tau(a).
	if b.TestTime != c.TestTime {
		t.Errorf("per-TAM %d != per-core %d (paper: identical)", b.TestTime, c.TestTime)
	}
	if a.TestTime < 4*c.TestTime {
		t.Errorf("TDC speedup too small: %d vs %d", a.TestTime, c.TestTime)
	}
	// The wiring claim: per-TAM routes expanded buses far wider than the
	// TAM; the per-core style routes only W_TAM across the chip.
	if b.InternalWires <= 2*r.WTAM {
		t.Errorf("per-TAM internal wires %d not substantially wider than TAM %d", b.InternalWires, r.WTAM)
	}
	var buf bytes.Buffer
	if err := r.Render(&buf); err != nil {
		t.Fatal(err)
	}
}

func TestTab1ShapeClaims(t *testing.T) {
	if testing.Short() {
		t.Skip("table experiments are heavyweight")
	}
	r, err := Tab1()
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 8 {
		t.Fatalf("%d rows, want 8", len(r.Rows))
	}
	for _, row := range r.Rows {
		if row.TimeOurs <= 0 || row.Time18 <= 0 {
			t.Fatalf("degenerate row %+v", row)
		}
		// Paper's observation: at an ATE-channel constraint [18] holds
		// its own (its internal TAM wires are free), so our ratio is
		// above 1 but bounded.
		if row.Ratio18 < 1 || row.Ratio18 > 6 {
			t.Errorf("%s W=%d: ours/[18] = %.2f outside expected band",
				row.Design, row.WATE, row.Ratio18)
		}
	}
	var buf bytes.Buffer
	if err := r.Render(&buf); err != nil {
		t.Fatal(err)
	}
}

func TestTab2ShapeClaims(t *testing.T) {
	if testing.Short() {
		t.Skip("table experiments are heavyweight")
	}
	r, err := Tab2()
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 7 {
		t.Fatalf("%d rows, want 7", len(r.Rows))
	}
	for _, row := range r.Rows {
		// Paper: better than [18] at a wire constraint.
		if row.Ratio18 >= 1 {
			t.Errorf("W=%d: not better than [18]: %.2f", row.WTAM, row.Ratio18)
		}
		// Same broad range as [13] (d695's density caps everyone).
		if row.Ratio13 > 3 {
			t.Errorf("W=%d: far worse than [13]: %.2f", row.WTAM, row.Ratio13)
		}
	}
	var buf bytes.Buffer
	if err := r.Render(&buf); err != nil {
		t.Fatal(err)
	}
}

func TestTab3ShapeClaims(t *testing.T) {
	if testing.Short() {
		t.Skip("table experiments are heavyweight")
	}
	r, err := Tab3()
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 5*len(Tab3Widths) {
		t.Fatalf("%d rows", len(r.Rows))
	}
	// Headline claims: order-of-magnitude reductions on industrial
	// systems (paper: 15.39x time, 15.80x volume), smaller on the dense
	// d695, industrial average above the overall average.
	if r.AvgTimeRatioInd < 8 || r.AvgTimeRatioInd > 25 {
		t.Errorf("industrial time reduction %.2fx outside the paper's regime", r.AvgTimeRatioInd)
	}
	if r.AvgVolRatioInd < 8 || r.AvgVolRatioInd > 25 {
		t.Errorf("industrial volume reduction %.2fx outside the paper's regime", r.AvgVolRatioInd)
	}
	if r.AvgTimeRatioInd <= r.AvgTimeRatio-1e-9 {
		t.Error("industrial average below overall average")
	}
	for _, row := range r.Rows {
		// TDC must never lose: the optimizer can always fall back.
		if row.TimeTDC > row.TimeNoTDC {
			t.Errorf("%s W=%d: TDC slower than no-TDC", row.Design, row.WTAM)
		}
		if row.Industrial && row.TimeRatio < 3 {
			t.Errorf("%s W=%d: industrial reduction only %.2fx", row.Design, row.WTAM, row.TimeRatio)
		}
		// CPU time claim: under a minute per optimization.
		if row.CPUNoTDC > 60 || row.CPUTDC > 60 {
			t.Errorf("%s W=%d: CPU time above a minute", row.Design, row.WTAM)
		}
	}
	var buf bytes.Buffer
	if err := r.Render(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "average time reduction") {
		t.Error("render missing averages")
	}
}
