package experiments

import (
	"fmt"
	"io"

	"soctap/internal/core"
	"soctap/internal/report"
	"soctap/internal/soc"
)

// SeedRow is the Table 3 headline ratio for one cube-generator seed
// offset.
type SeedRow struct {
	SeedOffset int64
	TimeRatio  float64 // tau_nc / tau_c on System1 at W_TAM = 32
	VolRatio   float64
}

// SeedsResult is the seed-sensitivity study: the synthetic industrial
// cores are regenerated with shifted seeds and the headline reduction
// factors recomputed. Stable ratios show the reproduction's conclusions
// do not hinge on one lucky test set.
type SeedsResult struct {
	Rows                   []SeedRow
	MinTime, MaxTime, Mean float64
}

// Seeds reruns the System1/W=32 with-vs-without-TDC comparison under
// several cube seeds.
func Seeds() (*SeedsResult, error) {
	defer expSpan("seeds").End()
	r := &SeedsResult{}
	var sum float64
	for _, off := range []int64{0, 1, 2, 3, 4} {
		base, err := soc.System("System1")
		if err != nil {
			return nil, err
		}
		for _, c := range base.Cores {
			c.Seed += off * 7919 // distinct prime stride per variant
		}
		// The cache keys tables by core content, and the shifted Seed is
		// part of the key — each variant gets its own entries.
		noTDC, err := core.OptimizeContext(expContext(), base, 32, core.Options{
			Style:     core.StyleNoTDC,
			Tables:    engineTables(core.TableOptions{MaxWidth: 32}),
			Cache:     &sharedCache,
			Workers:   engineWorkers,
			Telemetry: telSpan,
		})
		if err != nil {
			return nil, err
		}
		tdc, err := core.OptimizeContext(expContext(), base, 32, core.Options{
			Style:     core.StyleTDCPerCore,
			Tables:    engineTables(core.TableOptions{MaxWidth: 32}),
			Cache:     &sharedCache,
			Workers:   engineWorkers,
			Telemetry: telSpan,
		})
		if err != nil {
			return nil, err
		}
		row := SeedRow{
			SeedOffset: off,
			TimeRatio:  float64(noTDC.TestTime) / float64(tdc.TestTime),
			VolRatio:   float64(noTDC.Volume) / float64(tdc.Volume),
		}
		r.Rows = append(r.Rows, row)
		sum += row.TimeRatio
		if r.MinTime == 0 || row.TimeRatio < r.MinTime {
			r.MinTime = row.TimeRatio
		}
		if row.TimeRatio > r.MaxTime {
			r.MaxTime = row.TimeRatio
		}
	}
	r.Mean = sum / float64(len(r.Rows))
	return r, nil
}

// Render prints the study.
func (r *SeedsResult) Render(w io.Writer) error {
	tab := report.NewTable("Seed sensitivity: System1 @ W_TAM=32, tau_nc/tau_c across cube seeds",
		"seed offset", "time reduction", "volume reduction")
	for _, row := range r.Rows {
		tab.Add(fmt.Sprint(row.SeedOffset),
			fmt.Sprintf("%.2fx", row.TimeRatio),
			fmt.Sprintf("%.2fx", row.VolRatio))
	}
	if err := tab.Render(w); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w,
		"time reduction across seeds: mean %.2fx, range [%.2fx, %.2fx] — the headline\n"+
			"conclusion does not depend on a particular synthetic test set.\n",
		r.Mean, r.MinTime, r.MaxTime)
	return err
}
