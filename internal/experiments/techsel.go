package experiments

import (
	"fmt"
	"io"

	"soctap/internal/core"
	"soctap/internal/report"
	"soctap/internal/soc"
)

// TechSelRow is one (design, width) outcome of the technique-selection
// extension experiment.
type TechSelRow struct {
	Design    string
	WTAM      int
	TimePlain int64 // selective encoding + direct only
	TimeSel   int64 // with dictionary coding in the mix
	Direct    int   // cores per codec in the selected plan
	SelEnc    int
	Dict      int
}

// TechSelResult is the extension experiment: SOC-level planning with
// per-core compression-technique selection (DESIGN.md §6; the authors'
// ATS'08 follow-up direction).
type TechSelResult struct {
	Rows []TechSelRow
}

// TechSel compares SOC plans with and without the dictionary codec in
// the per-core choice set.
func TechSel() (*TechSelResult, error) {
	defer expSpan("techsel").End()
	r := &TechSelResult{}
	designs := []*soc.SOC{soc.D695(), soc.MustSystem("System1")}
	for _, design := range designs {
		for _, wtam := range []int{16, 32} {
			plain, err := core.OptimizeContext(expContext(), design, wtam, core.Options{
				Style: core.StyleTDCPerCore, Cache: &sharedCache, Workers: engineWorkers, Telemetry: telSpan,
				Tables: engineTables(core.TableOptions{MaxWidth: tableWidth}),
			})
			if err != nil {
				return nil, err
			}
			sel, err := core.OptimizeContext(expContext(), design, wtam, core.Options{
				Style: core.StyleTDCPerCore, Cache: &sharedCache, Workers: engineWorkers, Telemetry: telSpan,
				Tables:     engineTables(core.TableOptions{MaxWidth: tableWidth}),
				EnableDict: true, DictSizes: []int{64, 256},
			})
			if err != nil {
				return nil, err
			}
			row := TechSelRow{
				Design: design.Name, WTAM: wtam,
				TimePlain: plain.TestTime, TimeSel: sel.TestTime,
			}
			for _, ch := range sel.Choices {
				switch ch.Config.Codec {
				case core.CodecSelEnc:
					row.SelEnc++
				case core.CodecDict:
					row.Dict++
				default:
					row.Direct++
				}
			}
			r.Rows = append(r.Rows, row)
		}
	}
	return r, nil
}

// Render prints the extension table.
func (r *TechSelResult) Render(w io.Writer) error {
	tab := report.NewTable("Extension: per-core compression-technique selection (ATS'08 direction)",
		"design", "W_TAM", "tau selenc-only", "tau with-dict", "gain", "direct/selenc/dict cores")
	for _, row := range r.Rows {
		tab.Add(row.Design, fmt.Sprint(row.WTAM),
			fmt.Sprint(row.TimePlain), fmt.Sprint(row.TimeSel),
			report.Ratio(row.TimePlain, row.TimeSel),
			fmt.Sprintf("%d/%d/%d", row.Direct, row.SelEnc, row.Dict))
	}
	if err := tab.Render(w); err != nil {
		return err
	}
	_, err := fmt.Fprintln(w, "(adding the dictionary codec never hurts; it wins on cores whose slices repeat)")
	return err
}
