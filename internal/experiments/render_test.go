package experiments

// Render tests on canned data — no optimization runs, so these stay
// fast regardless of -short.

import (
	"bytes"
	"strings"
	"testing"
)

func TestAblationRender(t *testing.T) {
	r := &AblationResult{Rows: []AblationRow{
		{Name: "thing", Metric: "time", Baseline: 100, Ablated: 112, Ratio: 1.12},
	}}
	var buf bytes.Buffer
	if err := r.Render(&buf); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"thing", "1.120", "Design-choice ablations"} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("missing %q:\n%s", want, buf.String())
		}
	}
}

func TestVerifyRender(t *testing.T) {
	r := &VerifyResult{Designs: []string{"d695"}, Cores: 10}
	var buf bytes.Buffer
	if err := r.Render(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "verified 10 core plans") {
		t.Errorf("unexpected render:\n%s", buf.String())
	}
}

func TestTab1Render(t *testing.T) {
	r := &Tab1Result{Rows: []Tab1Row{
		{Design: "d695", WATE: 16, Time18: 100, TimeOurs: 150, Ratio18: 1.5},
		{Design: "d695", WATE: 32, Time18: 80, Time11: 200, TimeOurs: 120, Ratio18: 1.5, Ratio11: 0.6},
	}}
	var buf bytes.Buffer
	if err := r.Render(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "n.a.") {
		t.Error("missing n.a. for absent [11] row")
	}
	if !strings.Contains(out, "0.60") {
		t.Error("missing ratio")
	}
}

func TestTab3RenderAverages(t *testing.T) {
	r := &Tab3Result{
		Rows: []Tab3Row{{
			Design: "SystemX", Gates: 1000000, InitialVolume: 2_000_000, WTAM: 32,
			TimeNoTDC: 100000, VolNoTDC: 2_000_000, TimeTDC: 10000, VolTDC: 200_000,
			TimeRatio: 10, VolRatioVi: 10, VolRatioVnc: 10, Industrial: true,
		}},
		AvgTimeRatio: 10, AvgTimeRatioInd: 10, AvgVolRatio: 10, AvgVolRatioInd: 10,
	}
	var buf bytes.Buffer
	if err := r.Render(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"SystemX", "average time reduction", "10.00x", "paper: 12.59x"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q", want)
		}
	}
}
