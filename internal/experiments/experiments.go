// Package experiments regenerates every table and figure of the paper's
// evaluation section (see DESIGN.md's experiment index). Each experiment
// returns a structured result and can render itself in the paper's
// layout; cmd/repro and the repository's benchmark harness are thin
// wrappers around these functions.
//
// Absolute cycle counts differ from the paper (the industrial cores are
// documented synthetic stand-ins), but each experiment's *shape* — who
// wins, by what factor, where the non-monotonicities fall — is the
// reproduction target, recorded in EXPERIMENTS.md.
package experiments

import (
	"context"

	"soctap/internal/core"
	"soctap/internal/telemetry"
)

// sharedCache is used by default so that consecutive experiments (and
// benchmark iterations) reuse per-core lookup tables.
var sharedCache core.Cache

// SharedCache exposes the process-wide table cache.
func SharedCache() *core.Cache { return &sharedCache }

// engineWorkers bounds the evaluation-engine parallelism used by every
// experiment; 0 means one worker per available CPU (the engine
// default). Results are bit-identical for every setting.
var engineWorkers int

// SetWorkers bounds the evaluation-engine parallelism of subsequent
// experiment runs (0 = one worker per CPU, 1 = fully sequential). Call
// it before launching experiments; cmd/repro wires its -workers flag
// here.
func SetWorkers(n int) { engineWorkers = n }

// engineEvalWindow selects the evaluator residency mode of every
// experiment's table builds (see core.TableOptions.EvalWindow); 0 (the
// default) picks automatically by core size. Results are bit-identical
// for every setting.
var engineEvalWindow int

// SetEvalWindow selects the evaluator streaming window of subsequent
// experiment runs (0 = automatic by core size, > 0 = stream in windows
// of that many cubes, -1 = whole set as one window). Call it before
// launching experiments; cmd/repro wires its -eval-window flag here.
func SetEvalWindow(window int) { engineEvalWindow = window }

// engineTables stamps the process-wide engine knobs onto an
// experiment's TableOptions literal, so every table build in the
// package honours SetEvalWindow without threading it through each
// call site.
func engineTables(o core.TableOptions) core.TableOptions {
	o.EvalWindow = engineEvalWindow
	return o
}

// SetTableCacheDir layers a persistent on-disk store under the shared
// table cache: tables built by any experiment are written there and
// reloaded on later runs, so a warm directory reduces the regeneration
// time of every table to its search time. cmd/repro wires its
// -table-cache flag here.
func SetTableCacheDir(dir string) { sharedCache.SetDir(dir) }

// SetTableCacheLimits bounds the shared table cache: memBytes caps the
// in-memory tier (LRU eviction of resident tables), diskBytes caps the
// on-disk store under SetTableCacheDir (oldest-access eviction on
// write-back). Zero leaves the respective tier unbounded. cmd/repro
// wires its -table-cache-mem/-table-cache-size flags here.
func SetTableCacheLimits(memBytes, diskBytes int64) {
	if memBytes > 0 {
		sharedCache.SetMemLimit(memBytes)
	}
	if diskBytes > 0 {
		sharedCache.SetDiskLimit(diskBytes)
	}
}

// telSink receives phase spans and counters from every subsequent
// experiment run; nil (the default) disables instrumentation at zero
// cost. cmd/repro wires its -telemetry/-telemetry-text flags here.
var telSink *telemetry.Sink

// telSpan is the span of the experiment currently running; core.Optimize
// calls nest their phase trees (tables/search/schedule) under it.
// Experiments run sequentially, so a single current-span is enough.
var telSpan *telemetry.Span

// SetTelemetry routes phase spans and subsystem counters of subsequent
// experiment runs into sink (nil turns instrumentation back off).
func SetTelemetry(sink *telemetry.Sink) { telSink = sink }

// runCtx governs every subsequent experiment run; nil (the default)
// behaves like context.Background().
var runCtx context.Context

// SetContext makes ctx govern every subsequent experiment run:
// cancelling it aborts in-flight Optimize/BuildTable/Sweep calls with
// ctx.Err(). cmd/repro wires its SIGINT/SIGTERM context here. Call it
// before launching experiments; nil restores context.Background().
func SetContext(ctx context.Context) { runCtx = ctx }

// expContext resolves the context experiment runs use.
func expContext() context.Context {
	if runCtx == nil {
		return context.Background()
	}
	return runCtx
}

// expSpan opens the top-level span for one experiment run and makes it
// the parent of every Optimize call until the returned timing is Ended:
//
//	defer expSpan("tab3").End()
func expSpan(name string) telemetry.Timing {
	telSink.PublishRun("experiment:"+name, "start") // live run marker on the event bus
	telSpan = telSink.Span(name)                    // nil sink → nil span → all no-ops
	return telSpan.Begin()
}

// tableWidth is the lookup-table width used across experiments: wide
// enough for every W_TAM the paper sweeps.
const tableWidth = 64
