package experiments

import (
	"fmt"
	"io"

	"soctap/internal/core"
	"soctap/internal/report"
	"soctap/internal/sim"
	"soctap/internal/soc"
)

// AblationRow is one design-choice ablation outcome.
type AblationRow struct {
	Name     string
	Baseline int64   // metric with the design choice enabled
	Ablated  int64   // metric with it disabled
	Ratio    float64 // ablated / baseline (>= 1 means the choice helps)
	Metric   string
}

// AblationResult collects the DESIGN.md §5 ablations.
type AblationResult struct {
	Rows []AblationRow
}

// Ablations runs the four design-choice ablations on the benchmark
// suite (see DESIGN.md §5 and the benchmark harness, which reports the
// same quantities as bench metrics).
func Ablations() (*AblationResult, error) {
	defer expSpan("ablations").End()
	res := &AblationResult{}

	// 1. Group-copy mode of the codec (per-core volume, ckt-9, m=255).
	ckt9, err := soc.IndustrialCore("ckt-9")
	if err != nil {
		return nil, err
	}
	with, err := core.EvalTDC(ckt9, 255)
	if err != nil {
		return nil, err
	}
	without, err := core.EvalTDCNoGroupCopy(ckt9, 255)
	if err != nil {
		return nil, err
	}
	res.Rows = append(res.Rows, AblationRow{
		Name: "codec group-copy mode (ckt-9, m=255)", Metric: "compressed bits",
		Baseline: with.Volume, Ablated: without.Volume,
		Ratio: float64(without.Volume) / float64(with.Volume),
	})

	sys1, err := soc.System("System1")
	if err != nil {
		return nil, err
	}

	// 2. Within-band best-m exploration vs band maximum.
	full, err := core.OptimizeContext(expContext(), sys1, 32, core.Options{
		Style: core.StyleTDCPerCore, Cache: &sharedCache, Workers: engineWorkers, Telemetry: telSpan,
		Tables: engineTables(core.TableOptions{MaxWidth: 32, BandSamples: 48}),
	})
	if err != nil {
		return nil, err
	}
	bandMax, err := core.OptimizeContext(expContext(), sys1, 32, core.Options{
		Style: core.StyleTDCPerCore, Cache: &sharedCache, Workers: engineWorkers, Telemetry: telSpan,
		Tables: engineTables(core.TableOptions{MaxWidth: 32, BandSamples: 1}),
	})
	if err != nil {
		return nil, err
	}
	res.Rows = append(res.Rows, AblationRow{
		Name: "within-band m exploration (System1, W=32)", Metric: "SOC test time",
		Baseline: full.TestTime, Ablated: bandMax.TestTime,
		Ratio: float64(bandMax.TestTime) / float64(full.TestTime),
	})

	// 3. TAM-partition refinement vs even splits (prime budget).
	refined, err := core.OptimizeContext(expContext(), sys1, 37, core.Options{
		Style: core.StyleTDCPerCore, Cache: &sharedCache, Workers: engineWorkers, Telemetry: telSpan,
		Tables: engineTables(core.TableOptions{MaxWidth: 37}),
	})
	if err != nil {
		return nil, err
	}
	even, err := core.OptimizeContext(expContext(), sys1, 37, core.Options{
		Style: core.StyleTDCPerCore, Cache: &sharedCache, Workers: engineWorkers, Telemetry: telSpan,
		Tables: engineTables(core.TableOptions{MaxWidth: 37}), DisableRefinement: true,
	})
	if err != nil {
		return nil, err
	}
	res.Rows = append(res.Rows, AblationRow{
		Name: "TAM wire-move refinement (System1, W=37)", Metric: "SOC test time",
		Baseline: refined.TestTime, Ablated: even.TestTime,
		Ratio: float64(even.TestTime) / float64(refined.TestTime),
	})

	// 4. Longest-first scheduling vs declaration order.
	sys2, err := soc.System("System2")
	if err != nil {
		return nil, err
	}
	lpt, err := core.OptimizeContext(expContext(), sys2, 32, core.Options{
		Style: core.StyleTDCPerCore, Cache: &sharedCache, Workers: engineWorkers, Telemetry: telSpan,
		Tables: engineTables(core.TableOptions{MaxWidth: tableWidth}),
	})
	if err != nil {
		return nil, err
	}
	naive, err := core.OptimizeContext(expContext(), sys2, 32, core.Options{
		Style: core.StyleTDCPerCore, Cache: &sharedCache, Workers: engineWorkers, Telemetry: telSpan,
		Tables: engineTables(core.TableOptions{MaxWidth: tableWidth}), NaiveOrder: true,
	})
	if err != nil {
		return nil, err
	}
	res.Rows = append(res.Rows, AblationRow{
		Name: "longest-first scheduling (System2, W=32)", Metric: "SOC test time",
		Baseline: lpt.TestTime, Ablated: naive.TestTime,
		Ratio: float64(naive.TestTime) / float64(lpt.TestTime),
	})
	return res, nil
}

// Render prints the ablation table.
func (r *AblationResult) Render(w io.Writer) error {
	tab := report.NewTable("Design-choice ablations (ratio >= 1.00 means the choice helps)",
		"ablation", "metric", "with", "without", "without/with")
	for _, row := range r.Rows {
		tab.Add(row.Name, row.Metric,
			fmt.Sprint(row.Baseline), fmt.Sprint(row.Ablated),
			fmt.Sprintf("%.3f", row.Ratio))
	}
	return tab.Render(w)
}

// VerifyResult records cycle-accurate verification of optimized plans.
type VerifyResult struct {
	Designs []string
	Cores   int
}

// Verify optimizes d695 and System1 with the proposed style and replays
// every core's chosen configuration through the bit-level simulator —
// the repository's end-to-end trust check.
func Verify() (*VerifyResult, error) {
	defer expSpan("verify").End()
	out := &VerifyResult{}
	for _, name := range []string{"d695", "System1"} {
		s, ok := soc.AllBenchmarks()[name]
		if !ok {
			return nil, fmt.Errorf("unknown design %s", name)
		}
		res, err := core.OptimizeContext(expContext(), s, 32, core.Options{
			Style: core.StyleTDCPerCore, Cache: &sharedCache, Workers: engineWorkers, Telemetry: telSpan,
			Tables: engineTables(core.TableOptions{MaxWidth: tableWidth}),
		})
		if err != nil {
			return nil, err
		}
		if err := sim.VerifyPlan(res); err != nil {
			return nil, fmt.Errorf("%s: %w", name, err)
		}
		out.Designs = append(out.Designs, name)
		out.Cores += len(res.Choices)
	}
	return out, nil
}

// Render reports the verification outcome.
func (r *VerifyResult) Render(w io.Writer) error {
	_, err := fmt.Fprintf(w,
		"verified %d core plans across %v by cycle-accurate simulation:\n"+
			"every compressed stream decodes to bit-exact stimuli and matches the analytic volume.\n",
		r.Cores, r.Designs)
	return err
}
