// Word-level primitives: the word-parallel substrate under the slice
// and codec kernels. Everything here operates on whole 64-bit words —
// popcounts, masked reads, bulk bit copies, trailing-zero iteration and
// a 64×64 bit-matrix transpose — so hot paths never touch bits one at a
// time. Each primitive is property-tested against a per-bit reference
// loop in word_test.go and cross-checked by FuzzWordKernels.
package bitvec

import (
	"fmt"
	"math/bits"
)

// Words exposes the vector's backing words. Word i holds bits
// [64i, 64i+64) with bit position p at bit p%64 (LSB first). Callers
// may read and write words in place but must not resize the slice and
// must keep the tail bits beyond Len() zero (see SetWord, which masks
// them for you).
func (v *Vector) Words() []uint64 { return v.words }

// SetWord stores w into word index i, masking off any bits beyond the
// vector's length so the all-zero-tail invariant holds.
func (v *Vector) SetWord(i int, w uint64) {
	v.words[i] = w
	if i == len(v.words)-1 {
		v.clearTail()
	}
}

// ReadBits returns the n bits starting at position pos, packed LSB
// first (bit pos at bit 0 of the result). n must be in [0, 64] and the
// range [pos, pos+n) must lie inside the vector.
func (v *Vector) ReadBits(pos, n int) uint64 {
	if n == 0 {
		return 0
	}
	if n < 0 || n > 64 || pos < 0 || pos+n > v.n {
		panic(fmt.Sprintf("bitvec: ReadBits(%d, %d) out of range [0,%d)", pos, n, v.n))
	}
	return readBits(v.words, pos, n)
}

// readBits is ReadBits on a raw word slice, without bounds checking
// beyond the slice's own.
func readBits(words []uint64, pos, n int) uint64 {
	wi, off := pos>>6, uint(pos&63)
	w := words[wi] >> off
	if off+uint(n) > 64 {
		w |= words[wi+1] << (64 - off)
	}
	if n == 64 {
		return w
	}
	return w & (1<<uint(n) - 1)
}

// WriteBits stores the low n bits of b at position pos, replacing
// whatever was there. n must be in [0, 64] and [pos, pos+n) inside the
// vector.
func (v *Vector) WriteBits(pos int, b uint64, n int) {
	if n == 0 {
		return
	}
	if n < 0 || n > 64 || pos < 0 || pos+n > v.n {
		panic(fmt.Sprintf("bitvec: WriteBits(%d, %d) out of range [0,%d)", pos, n, v.n))
	}
	if n < 64 {
		b &= 1<<uint(n) - 1
	}
	wi, off := pos>>6, uint(pos&63)
	var mask uint64 = ^uint64(0)
	if n < 64 {
		mask = 1<<uint(n) - 1
	}
	v.words[wi] = v.words[wi]&^(mask<<off) | b<<off
	if off+uint(n) > 64 {
		rem := off + uint(n) - 64
		v.words[wi+1] = v.words[wi+1]&^(1<<rem-1) | b>>(64-off)
	}
}

// ExtractRange copies the n bits starting at position start into dst,
// packed LSB first from dst[0] (a mask-aligned sub-vector read). dst is
// grown as needed and returned; its tail bits beyond n are zeroed. The
// range [start, start+n) must lie inside the vector.
func (v *Vector) ExtractRange(start, n int, dst []uint64) []uint64 {
	if n < 0 || start < 0 || start+n > v.n {
		panic(fmt.Sprintf("bitvec: ExtractRange(%d, %d) out of range [0,%d)", start, n, v.n))
	}
	nw := (n + 63) / 64
	if cap(dst) < nw {
		dst = make([]uint64, nw)
	}
	dst = dst[:nw]
	for i := range dst {
		dst[i] = 0
	}
	CopyBits(dst, 0, v.words, start, n)
	return dst
}

// IterOnes calls fn with the position of every set bit in ascending
// order, using TrailingZeros64 to jump between set bits. Iteration
// stops early when fn returns false.
func (v *Vector) IterOnes(fn func(pos int) bool) {
	for wi, w := range v.words {
		base := wi << 6
		for w != 0 {
			if !fn(base + bits.TrailingZeros64(w)) {
				return
			}
			w &= w - 1
		}
	}
}

// CopyBits copies n bits from src starting at bit srcOff into dst
// starting at bit dstOff. Source and destination words are combined
// with OR, so destination ranges are expected to be zero beforehand
// (the append discipline used by Writer and the slice kernels). The
// slices must not overlap.
func CopyBits(dst []uint64, dstOff int, src []uint64, srcOff, n int) {
	for n > 0 {
		// Biggest chunk that stays inside one source and one dest word.
		chunk := 64 - dstOff&63
		if c := 64 - srcOff&63; c < chunk {
			chunk = c
		}
		if chunk > n {
			chunk = n
		}
		b := src[srcOff>>6] >> uint(srcOff&63)
		if chunk < 64 {
			b &= 1<<uint(chunk) - 1
		}
		dst[dstOff>>6] |= b << uint(dstOff&63)
		srcOff += chunk
		dstOff += chunk
		n -= chunk
	}
}

// Writer is an append-only bit cursor over a word slice: the bit-writer
// used by the codec's stream packer and the kernel's chain-major plane
// build. Appends OR into the underlying words, so the region at and
// beyond the cursor must be zero when writing begins. The zero Writer
// is ready after Reset.
type Writer struct {
	words []uint64
	pos   int
}

// NewWriter returns a writer appending into words starting at bit 0.
func NewWriter(words []uint64) Writer { return Writer{words: words} }

// Reset repoints the writer at words with the cursor at bit pos.
func (w *Writer) Reset(words []uint64, pos int) { w.words, w.pos = words, pos }

// Pos returns the cursor position: the number of bits appended so far
// plus the Reset offset.
func (w *Writer) Pos() int { return w.pos }

// AppendBits appends the low n bits of b, LSB first. n must be in
// [0, 64] and the write must fit the underlying words.
func (w *Writer) AppendBits(b uint64, n int) {
	if n <= 0 {
		if n == 0 {
			return
		}
		panic(fmt.Sprintf("bitvec: AppendBits width %d", n))
	}
	if n < 64 {
		b &= 1<<uint(n) - 1
	}
	wi, off := w.pos>>6, uint(w.pos&63)
	w.words[wi] |= b << off
	if off+uint(n) > 64 {
		w.words[wi+1] |= b >> (64 - off)
	}
	w.pos += n
}

// AppendRange appends n bits read from src starting at bit srcOff — the
// bulk-copy form of AppendBits.
func (w *Writer) AppendRange(src []uint64, srcOff, n int) {
	CopyBits(w.words, w.pos, src, srcOff, n)
	w.pos += n
}

// Transpose64 transposes the 64×64 bit matrix held in a, in place: bit
// c of word r moves to bit r of word c. Words are rows; bit positions
// are columns. This is the cube→slice re-slicing kernel: loading 64
// chain-major rows and transposing yields 64 slice-major rows.
//
// The implementation is the classic recursive block swap (Hacker's
// Delight §7-3 generalized to 64 bits and to LSB-first column
// labeling): swap the off-diagonal 32×32 blocks, then the 16×16 blocks
// within, down to single bits — 6 stages of masked shift-XOR on whole
// words. At stage j, rows k with bit j clear trade their bit-j-set
// columns for the bit-j-clear columns of rows k+j.
func Transpose64(a *[64]uint64) {
	m := uint64(0x00000000FFFFFFFF)
	for j := 32; j != 0; j >>= 1 {
		for k := 0; k < 64; k = (k + j + 1) &^ j {
			t := (a[k]>>uint(j) ^ a[k+j]) & m
			a[k+j] ^= t
			a[k] ^= t << uint(j)
		}
		m ^= m << uint(j>>1)
	}
}
