package bitvec

import (
	"math/rand"
	"testing"
)

// randVector returns a vector of n bits with ~density set, plus the
// reference bool slice.
func randVector(rng *rand.Rand, n int, density float64) (*Vector, []bool) {
	v := New(n)
	ref := make([]bool, n)
	for i := 0; i < n; i++ {
		if rng.Float64() < density {
			v.Set(i, true)
			ref[i] = true
		}
	}
	return v, ref
}

func TestWordsSetWord(t *testing.T) {
	v := New(70)
	v.SetWord(0, ^uint64(0))
	v.SetWord(1, ^uint64(0)) // only 6 tail bits are real
	if got := v.OnesCount(); got != 70 {
		t.Fatalf("OnesCount = %d, want 70 (SetWord must mask tail bits)", got)
	}
	if w := v.Words(); len(w) != 2 || w[1] != 0x3F {
		t.Fatalf("words = %#x, want tail masked to 0x3f", w)
	}
	for i := 0; i < 70; i++ {
		if !v.Get(i) {
			t.Fatalf("bit %d not visible through Get after SetWord", i)
		}
	}
}

func TestReadWriteBits(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 200; trial++ {
		n := rng.Intn(300) + 1
		v, ref := randVector(rng, n, 0.5)
		// Random reads against the per-bit reference.
		for reads := 0; reads < 20; reads++ {
			width := rng.Intn(65)
			if width > n {
				width = n
			}
			pos := rng.Intn(n - width + 1)
			got := v.ReadBits(pos, width)
			var want uint64
			for b := 0; b < width; b++ {
				if ref[pos+b] {
					want |= 1 << uint(b)
				}
			}
			if got != want {
				t.Fatalf("ReadBits(%d, %d) = %#x, want %#x", pos, width, got, want)
			}
		}
		// Random writes, mirrored into the reference.
		for writes := 0; writes < 20; writes++ {
			width := rng.Intn(65)
			if width > n {
				width = n
			}
			pos := rng.Intn(n - width + 1)
			b := rng.Uint64()
			v.WriteBits(pos, b, width)
			for k := 0; k < width; k++ {
				ref[pos+k] = b&(1<<uint(k)) != 0
			}
		}
		for i := 0; i < n; i++ {
			if v.Get(i) != ref[i] {
				t.Fatalf("trial %d: bit %d diverged after WriteBits", trial, i)
			}
		}
	}
}

func TestExtractRange(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	var scratch []uint64
	for trial := 0; trial < 200; trial++ {
		n := rng.Intn(500) + 1
		v, ref := randVector(rng, n, 0.4)
		width := rng.Intn(n + 1)
		start := rng.Intn(n - width + 1)
		scratch = v.ExtractRange(start, width, scratch)
		if wantWords := (width + 63) / 64; len(scratch) != wantWords {
			t.Fatalf("ExtractRange returned %d words, want %d", len(scratch), wantWords)
		}
		for b := 0; b < width; b++ {
			got := scratch[b>>6]&(1<<uint(b&63)) != 0
			if got != ref[start+b] {
				t.Fatalf("ExtractRange(%d, %d): bit %d = %v, want %v", start, width, b, got, ref[start+b])
			}
		}
		// Tail bits beyond width must be zero.
		if rem := width & 63; rem != 0 && len(scratch) > 0 {
			if scratch[len(scratch)-1]>>uint(rem) != 0 {
				t.Fatalf("ExtractRange left stale tail bits")
			}
		}
	}
}

func TestCopyBits(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 300; trial++ {
		srcBits := rng.Intn(400) + 1
		dstBits := rng.Intn(400) + 1
		src, srcRef := randVector(rng, srcBits, 0.5)
		dst := make([]uint64, (dstBits+63)/64)
		dstRef := make([]bool, dstBits)
		n := rng.Intn(min(srcBits, dstBits) + 1)
		srcOff := rng.Intn(srcBits - n + 1)
		dstOff := rng.Intn(dstBits - n + 1)
		CopyBits(dst, dstOff, src.Words(), srcOff, n)
		for b := 0; b < n; b++ {
			dstRef[dstOff+b] = srcRef[srcOff+b]
		}
		for i := 0; i < dstBits; i++ {
			got := dst[i>>6]&(1<<uint(i&63)) != 0
			if got != dstRef[i] {
				t.Fatalf("CopyBits(dstOff=%d, srcOff=%d, n=%d): bit %d = %v, want %v",
					dstOff, srcOff, n, i, got, dstRef[i])
			}
		}
	}
}

func TestIterOnes(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 100; trial++ {
		n := rng.Intn(400) + 1
		v, ref := randVector(rng, n, rng.Float64())
		var got []int
		v.IterOnes(func(pos int) bool {
			got = append(got, pos)
			return true
		})
		var want []int
		for i, b := range ref {
			if b {
				want = append(want, i)
			}
		}
		if len(got) != len(want) {
			t.Fatalf("IterOnes visited %d bits, want %d", len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("IterOnes[%d] = %d, want %d", i, got[i], want[i])
			}
		}
	}
	// Early stop.
	v := New(128)
	v.SetAll(true)
	count := 0
	v.IterOnes(func(int) bool {
		count++
		return count < 5
	})
	if count != 5 {
		t.Fatalf("IterOnes ignored early stop: %d visits", count)
	}
}

func TestWriter(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 100; trial++ {
		n := rng.Intn(500) + 64
		v := New(n)
		wr := NewWriter(v.Words())
		var ref []bool
		for wr.Pos() < n-64 {
			if rng.Intn(2) == 0 {
				width := rng.Intn(65)
				b := rng.Uint64()
				wr.AppendBits(b, width)
				for k := 0; k < width; k++ {
					ref = append(ref, b&(1<<uint(k)) != 0)
				}
			} else {
				src, srcRef := randVector(rng, rng.Intn(64)+1, 0.5)
				width := rng.Intn(src.Len() + 1)
				off := rng.Intn(src.Len() - width + 1)
				wr.AppendRange(src.Words(), off, width)
				ref = append(ref, srcRef[off:off+width]...)
			}
		}
		if wr.Pos() != len(ref) {
			t.Fatalf("writer pos %d, appended %d bits", wr.Pos(), len(ref))
		}
		for i, want := range ref {
			if v.Get(i) != want {
				t.Fatalf("trial %d: writer bit %d = %v, want %v", trial, i, v.Get(i), want)
			}
		}
	}
	// Reset mid-slice.
	words := make([]uint64, 4)
	w := Writer{}
	w.Reset(words, 100)
	w.AppendBits(0b11, 2)
	if words[1] != 3<<36 {
		t.Fatalf("Reset(…, 100) wrote to the wrong position: %#x", words)
	}
}

func TestTranspose64(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	for trial := 0; trial < 50; trial++ {
		var in, got [64]uint64
		for i := range in {
			in[i] = rng.Uint64()
		}
		got = in
		Transpose64(&got)
		for r := 0; r < 64; r++ {
			for c := 0; c < 64; c++ {
				want := in[r]&(1<<uint(c)) != 0
				have := got[c]&(1<<uint(r)) != 0
				if want != have {
					t.Fatalf("transpose: out[%d] bit %d = %v, want in[%d] bit %d = %v",
						c, r, have, r, c, want)
				}
			}
		}
		// Involution: transposing twice restores the input.
		Transpose64(&got)
		if got != in {
			t.Fatal("Transpose64 is not an involution")
		}
	}
}

// FuzzWordKernels cross-checks the word-parallel primitives against
// naive per-bit loops on arbitrary inputs: ExtractRange, IterOnes and
// Transpose64 (per the kernel-equivalence contract), plus a
// ReadBits/WriteBits round trip.
func FuzzWordKernels(f *testing.F) {
	f.Add([]byte{0x01}, uint16(3), uint8(7))
	f.Add([]byte{0xff, 0x00, 0xaa, 0x55, 0x12, 0x34, 0x56, 0x78, 0x9a}, uint16(17), uint8(40))
	f.Add([]byte{}, uint16(0), uint8(0))
	f.Fuzz(func(t *testing.T, raw []byte, startRaw uint16, widthRaw uint8) {
		n := len(raw)*8 + 1
		v := New(n)
		for i := 0; i < len(raw)*8; i++ {
			if raw[i/8]&(1<<uint(i%8)) != 0 {
				v.Set(i, true)
			}
		}

		// ExtractRange vs per-bit reference.
		width := int(widthRaw)
		if width > n {
			width = n
		}
		start := int(startRaw) % (n - width + 1)
		words := v.ExtractRange(start, width, nil)
		for b := 0; b < width; b++ {
			if got := words[b>>6]&(1<<uint(b&63)) != 0; got != v.Get(start+b) {
				t.Fatalf("ExtractRange(%d,%d) bit %d = %v, want %v", start, width, b, got, v.Get(start+b))
			}
		}

		// IterOnes vs per-bit scan.
		var ones []int
		v.IterOnes(func(pos int) bool { ones = append(ones, pos); return true })
		k := 0
		for i := 0; i < n; i++ {
			if v.Get(i) {
				if k >= len(ones) || ones[k] != i {
					t.Fatalf("IterOnes missed bit %d", i)
				}
				k++
			}
		}
		if k != len(ones) {
			t.Fatalf("IterOnes reported %d extra bits", len(ones)-k)
		}

		// ReadBits/WriteBits round trip at the fuzzed offset.
		if width >= 1 && width <= 64 && start+width <= n {
			got := v.ReadBits(start, width)
			v.WriteBits(start, got, width)
			if v.ReadBits(start, width) != got {
				t.Fatal("WriteBits(ReadBits(…)) not idempotent")
			}
		}

		// Transpose64 vs the naive double loop, seeded from raw.
		var in [64]uint64
		for i := range raw {
			in[i%64] ^= uint64(raw[i]) << uint((i*8)%56)
		}
		out := in
		Transpose64(&out)
		for r := 0; r < 64; r++ {
			for c := 0; c < 64; c++ {
				if (in[r]>>uint(c))&1 != (out[c]>>uint(r))&1 {
					t.Fatalf("Transpose64 mismatch at (%d,%d)", r, c)
				}
			}
		}
	})
}

// ---- benchmarks for the comparison paths (Equal / CompatibleWith) ----

func benchPair(n int) (*Vector, *Vector) {
	a := New(n)
	for i := 0; i < n; i += 3 {
		a.Set(i, true)
	}
	return a, a.Clone()
}

func BenchmarkVectorEqual(b *testing.B) {
	x, y := benchPair(4096)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if !x.Equal(y) {
			b.Fatal("unequal")
		}
	}
}

func BenchmarkTritVectorEqual(b *testing.B) {
	tv := NewTrit(4096)
	for i := 0; i < 4096; i += 2 {
		tv.Set(i, One)
	}
	o := tv.Clone()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if !tv.Equal(o) {
			b.Fatal("unequal")
		}
	}
}

func BenchmarkCompatibleWith(b *testing.B) {
	tv := NewTrit(4096)
	o := NewTrit(4096)
	for i := 0; i < 4096; i += 2 {
		tv.Set(i, One)
		o.Set(i+1, Zero)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if !tv.CompatibleWith(o) {
			b.Fatal("incompatible")
		}
	}
}

func BenchmarkTranspose64(b *testing.B) {
	var m [64]uint64
	for i := range m {
		m[i] = uint64(i) * 0x9e3779b97f4a7c15
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Transpose64(&m)
	}
}

func BenchmarkIterOnes(b *testing.B) {
	v := New(4096)
	for i := 0; i < 4096; i += 7 {
		v.Set(i, true)
	}
	b.ReportAllocs()
	sum := 0
	for i := 0; i < b.N; i++ {
		v.IterOnes(func(pos int) bool { sum += pos; return true })
	}
	_ = sum
}
