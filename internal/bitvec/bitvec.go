// Package bitvec provides packed bit vectors and three-valued (0/1/X)
// "trit" vectors. These are the storage substrate for test cubes, encoded
// codeword streams, and scan-chain contents throughout the library.
//
// A Vector is a fixed-length sequence of bits packed into 64-bit words.
// A TritVector is a fixed-length sequence of three-valued symbols
// (Zero, One, DontCare) stored as two bit planes: a care plane and a
// value plane. Don't-care positions have care=0; their value bit is
// always kept at 0 so that equal trit vectors are word-wise equal.
package bitvec

import (
	"fmt"
	"math/bits"
	"slices"
	"strings"
)

const wordBits = 64

// Vector is a packed, fixed-length bit vector. The zero value is an empty
// vector of length 0; use New to create a sized vector.
type Vector struct {
	n     int
	words []uint64
}

// New returns a zeroed bit vector with n bits.
func New(n int) *Vector {
	if n < 0 {
		panic(fmt.Sprintf("bitvec: negative length %d", n))
	}
	return &Vector{n: n, words: make([]uint64, (n+wordBits-1)/wordBits)}
}

// FromString parses a vector from a string of '0' and '1' runes.
// Position 0 of the vector corresponds to the first rune.
func FromString(s string) (*Vector, error) {
	v := New(len(s))
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '0':
		case '1':
			v.Set(i, true)
		default:
			return nil, fmt.Errorf("bitvec: invalid bit character %q at position %d", s[i], i)
		}
	}
	return v, nil
}

// Len returns the number of bits in the vector.
func (v *Vector) Len() int { return v.n }

// Get returns the bit at position i.
func (v *Vector) Get(i int) bool {
	v.check(i)
	return v.words[i/wordBits]&(1<<uint(i%wordBits)) != 0
}

// Set sets the bit at position i to b.
func (v *Vector) Set(i int, b bool) {
	v.check(i)
	if b {
		v.words[i/wordBits] |= 1 << uint(i%wordBits)
	} else {
		v.words[i/wordBits] &^= 1 << uint(i%wordBits)
	}
}

// SetAll sets every bit to b.
func (v *Vector) SetAll(b bool) {
	var w uint64
	if b {
		w = ^uint64(0)
	}
	for i := range v.words {
		v.words[i] = w
	}
	v.clearTail()
}

// OnesCount returns the number of set bits.
func (v *Vector) OnesCount() int {
	c := 0
	for _, w := range v.words {
		c += bits.OnesCount64(w)
	}
	return c
}

// Clone returns a deep copy of the vector.
func (v *Vector) Clone() *Vector {
	c := &Vector{n: v.n, words: make([]uint64, len(v.words))}
	copy(c.words, v.words)
	return c
}

// Equal reports whether v and o have the same length and contents. It
// short-circuits on the length check and then compares whole words —
// never individual bits.
func (v *Vector) Equal(o *Vector) bool {
	return v.n == o.n && slices.Equal(v.words, o.words)
}

// String renders the vector as a string of '0'/'1' characters, position 0
// first.
func (v *Vector) String() string {
	var b strings.Builder
	b.Grow(v.n)
	for i := 0; i < v.n; i++ {
		if v.Get(i) {
			b.WriteByte('1')
		} else {
			b.WriteByte('0')
		}
	}
	return b.String()
}

func (v *Vector) check(i int) {
	if i < 0 || i >= v.n {
		panic(fmt.Sprintf("bitvec: index %d out of range [0,%d)", i, v.n))
	}
}

func (v *Vector) clearTail() {
	if rem := v.n % wordBits; rem != 0 && len(v.words) > 0 {
		v.words[len(v.words)-1] &= (1 << uint(rem)) - 1
	}
}

// Trit is a three-valued logic symbol.
type Trit uint8

// Trit values. DontCare ("X") marks an unspecified stimulus bit.
const (
	Zero Trit = iota
	One
	DontCare
)

// String returns "0", "1" or "X".
func (t Trit) String() string {
	switch t {
	case Zero:
		return "0"
	case One:
		return "1"
	case DontCare:
		return "X"
	default:
		return fmt.Sprintf("Trit(%d)", uint8(t))
	}
}

// TritFromByte parses '0', '1', 'x' or 'X'.
func TritFromByte(c byte) (Trit, error) {
	switch c {
	case '0':
		return Zero, nil
	case '1':
		return One, nil
	case 'x', 'X', '-':
		return DontCare, nil
	default:
		return DontCare, fmt.Errorf("bitvec: invalid trit character %q", c)
	}
}

// TritVector is a fixed-length vector of trits stored as two bit planes.
// The zero value is an empty vector; use NewTrit to size one. A fresh
// TritVector is all don't-care.
type TritVector struct {
	care  *Vector
	value *Vector
}

// NewTrit returns an all-X trit vector with n positions.
func NewTrit(n int) *TritVector {
	return &TritVector{care: New(n), value: New(n)}
}

// TritFromString parses a trit vector from a string of '0', '1' and
// 'x'/'X'/'-' characters.
func TritFromString(s string) (*TritVector, error) {
	t := NewTrit(len(s))
	for i := 0; i < len(s); i++ {
		tr, err := TritFromByte(s[i])
		if err != nil {
			return nil, fmt.Errorf("position %d: %w", i, err)
		}
		t.Set(i, tr)
	}
	return t, nil
}

// Len returns the number of trit positions.
func (t *TritVector) Len() int { return t.care.Len() }

// Get returns the trit at position i.
func (t *TritVector) Get(i int) Trit {
	if !t.care.Get(i) {
		return DontCare
	}
	if t.value.Get(i) {
		return One
	}
	return Zero
}

// Set stores trit tr at position i.
func (t *TritVector) Set(i int, tr Trit) {
	switch tr {
	case DontCare:
		t.care.Set(i, false)
		t.value.Set(i, false)
	case Zero:
		t.care.Set(i, true)
		t.value.Set(i, false)
	case One:
		t.care.Set(i, true)
		t.value.Set(i, true)
	default:
		panic(fmt.Sprintf("bitvec: invalid trit %d", tr))
	}
}

// CareCount returns the number of specified (non-X) positions.
func (t *TritVector) CareCount() int { return t.care.OnesCount() }

// OnesCount returns the number of positions specified as One.
func (t *TritVector) OnesCount() int { return t.value.OnesCount() }

// ZerosCount returns the number of positions specified as Zero.
func (t *TritVector) ZerosCount() int { return t.CareCount() - t.OnesCount() }

// Clone returns a deep copy.
func (t *TritVector) Clone() *TritVector {
	return &TritVector{care: t.care.Clone(), value: t.value.Clone()}
}

// Equal reports whether the two trit vectors are identical (same length,
// same symbol at every position).
func (t *TritVector) Equal(o *TritVector) bool {
	return t.care.Equal(o.care) && t.value.Equal(o.value)
}

// CompatibleWith reports whether t and o agree on every position where
// both are specified (the classic test-cube compatibility relation).
func (t *TritVector) CompatibleWith(o *TritVector) bool {
	if t.Len() != o.Len() {
		return false
	}
	for i := range t.care.words {
		both := t.care.words[i] & o.care.words[i]
		if (t.value.words[i]^o.value.words[i])&both != 0 {
			return false
		}
	}
	return true
}

// Covers reports whether every specified position of o is specified in t
// with the same value. A fully-specified expansion of a cube Covers it.
func (t *TritVector) Covers(o *TritVector) bool {
	if t.Len() != o.Len() {
		return false
	}
	for i := range t.care.words {
		if o.care.words[i]&^t.care.words[i] != 0 {
			return false
		}
		both := t.care.words[i] & o.care.words[i]
		if (t.value.words[i]^o.value.words[i])&both != 0 {
			return false
		}
	}
	return true
}

// Fill returns a fully-specified copy of t with every don't-care position
// set to fill.
func (t *TritVector) Fill(fill Trit) *TritVector {
	if fill == DontCare {
		panic("bitvec: Fill requires a specified trit")
	}
	c := t.Clone()
	for i := range c.care.words {
		unspec := ^c.care.words[i]
		c.care.words[i] = ^uint64(0)
		if fill == One {
			c.value.words[i] |= unspec
		}
	}
	c.care.clearTail()
	c.value.clearTail()
	return c
}

// String renders the trit vector with one character per position.
func (t *TritVector) String() string {
	var b strings.Builder
	b.Grow(t.Len())
	for i := 0; i < t.Len(); i++ {
		b.WriteString(t.Get(i).String())
	}
	return b.String()
}
