package bitvec

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewVectorZeroed(t *testing.T) {
	v := New(130)
	if v.Len() != 130 {
		t.Fatalf("Len = %d, want 130", v.Len())
	}
	for i := 0; i < v.Len(); i++ {
		if v.Get(i) {
			t.Fatalf("bit %d set in fresh vector", i)
		}
	}
	if v.OnesCount() != 0 {
		t.Fatalf("OnesCount = %d, want 0", v.OnesCount())
	}
}

func TestVectorSetGet(t *testing.T) {
	v := New(200)
	idx := []int{0, 1, 63, 64, 65, 127, 128, 199}
	for _, i := range idx {
		v.Set(i, true)
	}
	for _, i := range idx {
		if !v.Get(i) {
			t.Errorf("bit %d not set", i)
		}
	}
	if got := v.OnesCount(); got != len(idx) {
		t.Errorf("OnesCount = %d, want %d", got, len(idx))
	}
	v.Set(64, false)
	if v.Get(64) {
		t.Error("bit 64 still set after clearing")
	}
}

func TestVectorSetAll(t *testing.T) {
	v := New(70)
	v.SetAll(true)
	if v.OnesCount() != 70 {
		t.Fatalf("OnesCount after SetAll(true) = %d, want 70", v.OnesCount())
	}
	v.SetAll(false)
	if v.OnesCount() != 0 {
		t.Fatalf("OnesCount after SetAll(false) = %d, want 0", v.OnesCount())
	}
}

func TestVectorCloneIndependence(t *testing.T) {
	v := New(10)
	v.Set(3, true)
	c := v.Clone()
	c.Set(5, true)
	if v.Get(5) {
		t.Error("mutating clone affected original")
	}
	if !c.Get(3) {
		t.Error("clone lost original bit")
	}
}

func TestVectorEqual(t *testing.T) {
	a := New(65)
	b := New(65)
	if !a.Equal(b) {
		t.Error("fresh equal-length vectors not Equal")
	}
	a.Set(64, true)
	if a.Equal(b) {
		t.Error("differing vectors reported Equal")
	}
	if a.Equal(New(64)) {
		t.Error("different lengths reported Equal")
	}
}

func TestVectorStringRoundTrip(t *testing.T) {
	s := "0110100011110000101"
	v, err := FromString(s)
	if err != nil {
		t.Fatal(err)
	}
	if v.String() != s {
		t.Errorf("round trip = %q, want %q", v.String(), s)
	}
	if _, err := FromString("01a"); err == nil {
		t.Error("FromString accepted invalid character")
	}
}

func TestVectorOutOfRangePanics(t *testing.T) {
	v := New(8)
	for _, i := range []int{-1, 8, 100} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Get(%d) did not panic", i)
				}
			}()
			v.Get(i)
		}()
	}
}

func TestNegativeLengthPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("New(-1) did not panic")
		}
	}()
	New(-1)
}

func TestTritBasics(t *testing.T) {
	tv := NewTrit(100)
	for i := 0; i < tv.Len(); i++ {
		if tv.Get(i) != DontCare {
			t.Fatalf("fresh trit vector position %d = %v, want X", i, tv.Get(i))
		}
	}
	tv.Set(0, One)
	tv.Set(1, Zero)
	tv.Set(99, One)
	if tv.Get(0) != One || tv.Get(1) != Zero || tv.Get(99) != One {
		t.Error("Set/Get mismatch")
	}
	if tv.CareCount() != 3 || tv.OnesCount() != 2 || tv.ZerosCount() != 1 {
		t.Errorf("counts = care %d ones %d zeros %d", tv.CareCount(), tv.OnesCount(), tv.ZerosCount())
	}
	tv.Set(0, DontCare)
	if tv.Get(0) != DontCare || tv.CareCount() != 2 {
		t.Error("resetting to DontCare failed")
	}
}

func TestTritValuePlaneClearedOnX(t *testing.T) {
	// Setting One then DontCare must clear the value plane so Equal works
	// word-wise.
	a := NewTrit(10)
	a.Set(4, One)
	a.Set(4, DontCare)
	b := NewTrit(10)
	if !a.Equal(b) {
		t.Error("X-with-stale-value not equal to fresh X vector")
	}
}

func TestTritString(t *testing.T) {
	s := "01X10XX1"
	tv, err := TritFromString(s)
	if err != nil {
		t.Fatal(err)
	}
	if tv.String() != s {
		t.Errorf("round trip = %q, want %q", tv.String(), s)
	}
	if _, err := TritFromString("01?"); err == nil {
		t.Error("TritFromString accepted invalid char")
	}
}

func TestTritCompatibleWith(t *testing.T) {
	cases := []struct {
		a, b string
		want bool
	}{
		{"01X", "01X", true},
		{"01X", "011", true},
		{"01X", "00X", false},
		{"XXX", "010", true},
		{"1X0", "1X1", false},
		{"01", "01X", false}, // length mismatch
	}
	for _, c := range cases {
		a, _ := TritFromString(c.a)
		b, _ := TritFromString(c.b)
		if got := a.CompatibleWith(b); got != c.want {
			t.Errorf("CompatibleWith(%q,%q) = %v, want %v", c.a, c.b, got, c.want)
		}
		if got := b.CompatibleWith(a); got != c.want {
			t.Errorf("CompatibleWith(%q,%q) = %v, want %v", c.b, c.a, got, c.want)
		}
	}
}

func TestTritCovers(t *testing.T) {
	cases := []struct {
		a, b string
		want bool
	}{
		{"010", "01X", true},
		{"010", "010", true},
		{"01X", "010", false}, // a leaves X where b specifies
		{"011", "010", false},
		{"01", "01X", false},
	}
	for _, c := range cases {
		a, _ := TritFromString(c.a)
		b, _ := TritFromString(c.b)
		if got := a.Covers(b); got != c.want {
			t.Errorf("Covers(%q,%q) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestTritFill(t *testing.T) {
	tv, _ := TritFromString("0X1XX")
	f0 := tv.Fill(Zero)
	if f0.String() != "00100" {
		t.Errorf("Fill(Zero) = %q, want 00100", f0.String())
	}
	f1 := tv.Fill(One)
	if f1.String() != "01111" {
		t.Errorf("Fill(One) = %q, want 01111", f1.String())
	}
	if !f0.Covers(tv) || !f1.Covers(tv) {
		t.Error("filled vector does not cover its cube")
	}
	if tv.String() != "0X1XX" {
		t.Error("Fill mutated the receiver")
	}
	defer func() {
		if recover() == nil {
			t.Error("Fill(DontCare) did not panic")
		}
	}()
	tv.Fill(DontCare)
}

func TestTritFromByte(t *testing.T) {
	for _, c := range []struct {
		b    byte
		want Trit
	}{{'0', Zero}, {'1', One}, {'x', DontCare}, {'X', DontCare}, {'-', DontCare}} {
		got, err := TritFromByte(c.b)
		if err != nil || got != c.want {
			t.Errorf("TritFromByte(%q) = %v,%v want %v", c.b, got, err, c.want)
		}
	}
	if _, err := TritFromByte('2'); err == nil {
		t.Error("TritFromByte('2') succeeded")
	}
}

// Property: OnesCount equals a naive per-bit count for random vectors.
func TestQuickOnesCount(t *testing.T) {
	f := func(seed int64, nRaw uint16) bool {
		n := int(nRaw%500) + 1
		rng := rand.New(rand.NewSource(seed))
		v := New(n)
		naive := 0
		for i := 0; i < n; i++ {
			if rng.Intn(2) == 1 {
				v.Set(i, true)
				naive++
			}
		}
		return v.OnesCount() == naive
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: a cube filled with either constant stays compatible with and
// covers the original cube.
func TestQuickFillCoversAndCompatible(t *testing.T) {
	f := func(seed int64, nRaw uint16) bool {
		n := int(nRaw%300) + 1
		rng := rand.New(rand.NewSource(seed))
		tv := NewTrit(n)
		for i := 0; i < n; i++ {
			tv.Set(i, Trit(rng.Intn(3)))
		}
		f0 := tv.Fill(Zero)
		f1 := tv.Fill(One)
		return f0.Covers(tv) && f1.Covers(tv) &&
			f0.CompatibleWith(tv) && f1.CompatibleWith(tv) &&
			f0.CareCount() == n && f1.CareCount() == n
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Covers implies CompatibleWith; Equal implies both.
func TestQuickCoversImpliesCompatible(t *testing.T) {
	f := func(seed int64, nRaw uint16) bool {
		n := int(nRaw%200) + 1
		rng := rand.New(rand.NewSource(seed))
		a := NewTrit(n)
		for i := 0; i < n; i++ {
			a.Set(i, Trit(rng.Intn(3)))
		}
		// b: a with some X positions specified (so b covers a).
		b := a.Clone()
		for i := 0; i < n; i++ {
			if b.Get(i) == DontCare && rng.Intn(2) == 0 {
				b.Set(i, Trit(rng.Intn(2)))
			}
		}
		if !b.Covers(a) || !b.CompatibleWith(a) {
			return false
		}
		return a.Equal(a.Clone()) && a.Covers(a.Clone()) && a.CompatibleWith(a.Clone())
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTritStringMethod(t *testing.T) {
	if Zero.String() != "0" || One.String() != "1" || DontCare.String() != "X" {
		t.Error("Trit.String mismatch")
	}
	if Trit(9).String() != "Trit(9)" {
		t.Errorf("Trit(9).String() = %q", Trit(9).String())
	}
}

func BenchmarkOnesCount4k(b *testing.B) {
	v := New(4096)
	for i := 0; i < 4096; i += 3 {
		v.Set(i, true)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = v.OnesCount()
	}
}

func BenchmarkTritCompatible4k(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	a := NewTrit(4096)
	c := NewTrit(4096)
	for i := 0; i < 4096; i++ {
		a.Set(i, Trit(rng.Intn(3)))
		if rng.Intn(2) == 0 {
			c.Set(i, a.Get(i))
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = a.CompatibleWith(c)
	}
}
