package core

// Per-core compression-technique selection — the extension direction the
// authors took in their ATS'08 follow-up ("Core-Level Compression
// Technique Selection and SOC Test Architecture Design"): in addition to
// direct access and selective encoding, each core may use a
// dictionary-based decompressor, and the planner picks the technique
// minimizing test time at each TAM width.

import (
	"fmt"

	"soctap/internal/dictenc"
	"soctap/internal/selenc"
	"soctap/internal/soc"
	"soctap/internal/wrapper"
)

// Codec identifiers recorded in Config.Codec.
const (
	CodecDirect = ""       // no decompressor
	CodecSelEnc = "selenc" // selective encoding of scan slices
	CodecDict   = "dict"   // dictionary with fixed-length indices
)

// EvalDict evaluates testing the core through a dictionary decompressor
// with m outputs and dictWords dictionary entries. Compressed bits are
// delivered over w = 1 + ceil(log2 dictWords) TAM wires, so a
// dictionary hit arrives in one cycle; literal slices take
// ceil((1+m)/w) cycles. The per-pattern cycle count is floored by the
// scan depth. The one-time dictionary download (dictWords × m bits) is
// charged to the ATE volume.
func EvalDict(c *soc.Core, m, dictWords int) (Config, error) {
	d, err := wrapper.New(c, m)
	if err != nil {
		return Config{}, err
	}
	ts, err := c.TestSet()
	if err != nil {
		return Config{}, err
	}
	refs := d.StimulusMap()
	si := d.ScanIn
	so := int64(d.ScanOut)

	// Materialize all slices once (shared between dictionary training
	// and measurement).
	perPattern := make([][]dictenc.Slice, ts.Len())
	var all []dictenc.Slice
	for pi, cb := range ts.Cubes {
		slices := make([]dictenc.Slice, si)
		for _, bit := range cb.Care {
			r := refs[bit.Pos]
			slices[r.Depth] = append(slices[r.Depth], selenc.CareBit{Pos: int(r.Chain), Value: bit.Value})
		}
		for _, s := range slices {
			sortCareBits(s)
		}
		perPattern[pi] = slices
		all = append(all, slices...)
	}
	dict, err := dictenc.Build(m, dictWords, all)
	if err != nil {
		return Config{}, err
	}
	w := 1 + dict.IndexBits()

	var time, volume int64
	for j, slices := range perPattern {
		var bits int64
		for _, s := range slices {
			bits += int64(dict.EncodedBits(s))
		}
		volume += bits
		cycles := (bits + int64(w) - 1) / int64(w)
		if cycles < int64(si) {
			cycles = int64(si)
		}
		if j == 0 {
			time += cycles
		} else if cycles > so {
			time += cycles
		} else {
			time += so
		}
	}
	time += int64(ts.Len()) + so
	volume += int64(len(dict.Words) * m) // one-time dictionary download

	return Config{
		Feasible:  true,
		UseTDC:    true,
		Codec:     CodecDict,
		Width:     w,
		M:         m,
		DictWords: len(dict.Words), // actual entries created (≤ dictWords)
		Time:      time,
		Volume:    volume,
	}, nil
}

func sortCareBits(care []selenc.CareBit) {
	for i := 1; i < len(care); i++ {
		for j := i; j > 0 && care[j-1].Pos > care[j].Pos; j-- {
			care[j-1], care[j] = care[j], care[j-1]
		}
	}
}

// TechSelection is the outcome of per-core technique selection: the
// best configuration at every TAM width over direct access, selective
// encoding, and dictionary coding.
type TechSelection struct {
	Core *soc.Core
	// PerWidth[u] is the winning configuration at TAM width u; index 0
	// is unused.
	PerWidth []Config
	// DictBest[u] is the best dictionary-only configuration with
	// interface width at most u (for reporting).
	DictBest []Config
}

// DefaultDictSizes are the dictionary capacities explored by
// SelectTechniques when none are given.
var DefaultDictSizes = []int{16, 64, 256}

// SelectTechniques builds the technique-selection table for one core:
// the selective-encoding/direct table of BuildTable, joined with a sweep
// of dictionary configurations over the given dictionary sizes and a
// small set of wrapper widths.
func SelectTechniques(c *soc.Core, opts TableOptions, dictSizes []int) (*TechSelection, error) {
	opts = opts.withDefaults()
	tab, err := BuildTable(c, opts)
	if err != nil {
		return nil, err
	}
	return selectTechniquesWithTable(c, tab, dictSizes)
}

// selectTechniquesWithTable joins an existing (possibly cached) lookup
// table with the dictionary sweep.
func selectTechniquesWithTable(c *soc.Core, tab *Table, dictSizes []int) (*TechSelection, error) {
	opts := tab.Opts
	if len(dictSizes) == 0 {
		dictSizes = DefaultDictSizes
	}
	maxM := c.MaxWrapperChains()

	// Wrapper-width candidates for the dictionary: powers of two up to
	// the core's maximum (the dictionary interface width is set by the
	// dictionary size, not by m, so a sparse m sweep suffices).
	var mCands []int
	for m := 16; m < maxM; m *= 4 {
		mCands = append(mCands, m)
	}
	mCands = append(mCands, maxM)

	sel := &TechSelection{
		Core:     c,
		PerWidth: make([]Config, opts.MaxWidth+1),
		DictBest: make([]Config, opts.MaxWidth+1),
	}
	var dictCfgs []Config
	for _, dw := range dictSizes {
		if dw < 1 {
			return nil, fmt.Errorf("core: dictionary size %d", dw)
		}
		for _, m := range mCands {
			cfg, err := EvalDict(c, m, dw)
			if err != nil {
				return nil, err
			}
			dictCfgs = append(dictCfgs, cfg)
		}
	}
	for u := 1; u <= opts.MaxWidth; u++ {
		best := Config{}
		for _, cfg := range dictCfgs {
			if cfg.Width <= u && cfg.better(best) {
				best = cfg
			}
		}
		sel.DictBest[u] = best
		win := tab.Best[u]
		if best.better(win) {
			win = best
		}
		sel.PerWidth[u] = win
	}
	return sel, nil
}
