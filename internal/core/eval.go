// Package core implements the paper's primary contribution: co-optimized
// test-architecture design and test scheduling with core-level expansion
// of compressed test patterns.
//
// It has three layers:
//
//   - per-core evaluation (this file): the exact test time and ATE data
//     volume of one core for a given wrapper-chain count m, with or
//     without the selective-encoding decompressor;
//   - lookup tables (lookup.go): the τ(w, m) exploration of Section 2 of
//     the paper, reduced to best-configuration tables indexed by TAM
//     width;
//   - the SOC-level optimizer (optimize.go): TAM partitioning, core
//     assignment and scheduling over those tables (Section 3).
package core

import (
	"sort"

	"soctap/internal/cube"
	"soctap/internal/selenc"
	"soctap/internal/soc"
	"soctap/internal/wrapper"
)

// Config is the outcome of testing one core through one access
// configuration.
type Config struct {
	Feasible bool
	UseTDC   bool
	Codec    string // CodecDirect, CodecSelEnc or CodecDict
	Width    int    // TAM wires consumed (w for TDC, m for no-TDC)
	M        int    // wrapper chains driven
	// DictWords is the dictionary capacity (CodecDict only).
	DictWords int
	Time      int64 // test application time in cycles
	Volume    int64 // ATE stimulus storage in bits
}

// better reports whether c strictly improves on o (time first, then
// volume).
func (c Config) better(o Config) bool {
	if !c.Feasible {
		return false
	}
	if !o.Feasible {
		return true
	}
	if c.Time != o.Time {
		return c.Time < o.Time
	}
	return c.Volume < o.Volume
}

// EvalNoTDC evaluates testing the core through m direct TAM wires (one
// wrapper chain per wire, no compression): the classic
// τ = (1 + max(si,so))·p + min(si,so) regime.
func EvalNoTDC(c *soc.Core, m int) (Config, error) {
	d, err := wrapper.New(c, m)
	if err != nil {
		return Config{}, err
	}
	return Config{
		Feasible: true,
		Width:    m,
		M:        m,
		Time:     d.TestTime(),
		Volume:   d.StimulusVolume(),
	}, nil
}

// EvalTDC evaluates testing the core through a selective-encoding
// decompressor with m outputs (wrapper chains) and w = CodewordWidth(m)
// TAM inputs. The test time charges one cycle per codeword, overlaps
// each pattern's response shift-out with the next pattern's compressed
// shift-in, and adds one capture cycle per pattern plus the final
// shift-out:
//
//	τ = cw_1 + Σ_{j>1} max(cw_j, so) + p + so
//
// The ATE volume is the exact compressed stream size, codewords × w.
func EvalTDC(c *soc.Core, m int) (Config, error) {
	d, err := wrapper.New(c, m)
	if err != nil {
		return Config{}, err
	}
	ts, err := c.TestSet()
	if err != nil {
		return Config{}, err
	}
	time, volume := tdcCost(d, ts, true)
	return Config{
		Feasible: true,
		UseTDC:   true,
		Codec:    CodecSelEnc,
		Width:    selenc.CodewordWidth(m),
		M:        m,
		Time:     time,
		Volume:   volume,
	}, nil
}

// EvalTDCNoGroupCopy is EvalTDC with group-copy mode disabled: every
// target bit costs one single-bit codeword. This is the ablation knob
// for the two-mode codec design choice.
func EvalTDCNoGroupCopy(c *soc.Core, m int) (Config, error) {
	d, err := wrapper.New(c, m)
	if err != nil {
		return Config{}, err
	}
	ts, err := c.TestSet()
	if err != nil {
		return Config{}, err
	}
	time, volume := tdcCost(d, ts, false)
	return Config{
		Feasible: true,
		UseTDC:   true,
		Codec:    CodecSelEnc,
		Width:    selenc.CodewordWidth(m),
		M:        m,
		Time:     time,
		Volume:   volume,
	}, nil
}

// PatternBits returns the exact compressed size in bits of every test
// pattern of the core under selective encoding with m wrapper chains —
// the per-pattern cost model used by ATE-memory truncation planning.
func PatternBits(c *soc.Core, m int) ([]int64, error) {
	d, err := wrapper.New(c, m)
	if err != nil {
		return nil, err
	}
	ts, err := c.TestSet()
	if err != nil {
		return nil, err
	}
	k := selenc.PayloadBits(m)
	w := int64(k + 2)
	refs := d.StimulusMap()
	si := int64(d.ScanIn)

	out := make([]int64, ts.Len())
	var keys []uint64
	for j, cb := range ts.Cubes {
		keys = keys[:0]
		for _, bit := range cb.Care {
			r := refs[bit.Pos]
			key := uint64(r.Depth)<<32 | uint64(r.Chain)<<1
			if bit.Value {
				key |= 1
			}
			keys = append(keys, key)
		}
		sort.Slice(keys, func(a, b int) bool { return keys[a] < keys[b] })
		cw := si
		for start := 0; start < len(keys); {
			end := start
			slice := keys[start] >> 32
			ones := 0
			for end < len(keys) && keys[end]>>32 == slice {
				if keys[end]&1 != 0 {
					ones++
				}
				end++
			}
			fill := uint64(0)
			if ones*2 > end-start {
				fill = 1
			}
			group := int64(-1)
			inGroup := 0
			for i := start; i < end; i++ {
				if keys[i]&1 == fill {
					continue
				}
				chain := int64(keys[i]>>1) & 0x7fffffff
				g := chain / int64(k)
				if g != group {
					cw += flushGroup(inGroup, true)
					group = g
					inGroup = 0
				}
				inGroup++
			}
			cw += flushGroup(inGroup, true)
			start = end
		}
		out[j] = cw * w
	}
	return out, nil
}

// tdcCost computes the exact test time and compressed volume for a
// wrapper design, without materializing codewords. It reproduces
// selenc's cost model — per slice, one header plus min(t, 2) codewords
// per group holding t target bits (fill = per-slice care majority) — and
// is validated against the real encoder in the tests.
func tdcCost(d *wrapper.Design, ts *cube.Set, groupCopy bool) (time, volume int64) {
	m := d.M
	k := selenc.PayloadBits(m)
	w := k + 2
	si := int64(d.ScanIn)
	so := int64(d.ScanOut)
	refs := d.StimulusMap()

	// Per-pattern sort keys: slice-major, chain-minor, value in bit 0.
	var keys []uint64
	var totalCW int64
	for j, cb := range ts.Cubes {
		keys = keys[:0]
		for _, bit := range cb.Care {
			r := refs[bit.Pos]
			key := uint64(r.Depth)<<32 | uint64(r.Chain)<<1
			if bit.Value {
				key |= 1
			}
			keys = append(keys, key)
		}
		sort.Slice(keys, func(a, b int) bool { return keys[a] < keys[b] })

		// One header per slice, including fully-X slices.
		cw := si
		// Ops for each non-empty slice: runs of equal slice index.
		for start := 0; start < len(keys); {
			end := start
			slice := keys[start] >> 32
			ones := 0
			for end < len(keys) && keys[end]>>32 == slice {
				if keys[end]&1 != 0 {
					ones++
				}
				end++
			}
			fill := uint64(0)
			if ones*2 > end-start {
				fill = 1
			}
			// Count targets per group over the chain-sorted run.
			group := int64(-1)
			inGroup := 0
			for i := start; i < end; i++ {
				if keys[i]&1 == fill {
					continue
				}
				chain := int64(keys[i]>>1) & 0x7fffffff
				g := chain / int64(k)
				if g != group {
					cw += flushGroup(inGroup, groupCopy)
					group = g
					inGroup = 0
				}
				inGroup++
			}
			cw += flushGroup(inGroup, groupCopy)
			start = end
		}

		totalCW += cw
		if j == 0 {
			time += cw
		} else if cw > so {
			time += cw
		} else {
			time += so
		}
	}
	time += int64(ts.Len()) + so
	volume = totalCW * int64(w)
	return time, volume
}

func flushGroup(t int, groupCopy bool) int64 {
	if groupCopy && t >= 2 {
		return 2
	}
	return int64(t)
}
