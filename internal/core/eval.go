// Package core implements the paper's primary contribution: co-optimized
// test-architecture design and test scheduling with core-level expansion
// of compressed test patterns.
//
// It has three layers:
//
//   - per-core evaluation (this file): the exact test time and ATE data
//     volume of one core for a given wrapper-chain count m, with or
//     without the selective-encoding decompressor;
//   - lookup tables (lookup.go): the τ(w, m) exploration of Section 2 of
//     the paper, reduced to best-configuration tables indexed by TAM
//     width, fanned out over a bounded worker pool;
//   - the SOC-level optimizer (optimize.go): TAM partitioning, core
//     assignment and scheduling over those tables (Section 3).
package core

import (
	"slices"

	"soctap/internal/cube"
	"soctap/internal/selenc"
	"soctap/internal/soc"
	"soctap/internal/telemetry"
	"soctap/internal/wrapper"
)

// Config is the outcome of testing one core through one access
// configuration.
type Config struct {
	Feasible bool
	UseTDC   bool
	Codec    string // CodecDirect, CodecSelEnc or CodecDict
	Width    int    // TAM wires consumed (w for TDC, m for no-TDC)
	M        int    // wrapper chains driven
	// DictWords is the dictionary capacity (CodecDict only).
	DictWords int
	Time      int64 // test application time in cycles
	Volume    int64 // ATE stimulus storage in bits
}

// better reports whether c strictly improves on o (time first, then
// volume).
func (c Config) better(o Config) bool {
	if !c.Feasible {
		return false
	}
	if !o.Feasible {
		return true
	}
	if c.Time != o.Time {
		return c.Time < o.Time
	}
	return c.Volume < o.Volume
}

// Evaluator evaluates test configurations of one core. It is the hot
// kernel of the (w, m) exploration: the core's test set is flattened
// into one contiguous care-bit array up front, the most recent wrapper
// design (and its stimulus map) is kept so consecutive evaluations at
// the same m share it, and the per-pattern sort buffer is reused across
// calls. An Evaluator is not safe for concurrent use; parallel sweeps
// give each worker its own (see lookup.go).
type Evaluator struct {
	core *soc.Core
	ts   *cube.Set

	// careRef packs the care bits of every cube, flattened:
	// careRef[i] = pos<<1 | value. cubeOff[j] is cube j's offset, with
	// a final sentinel at cubeOff[len(cubes)].
	careRef []uint64
	cubeOff []int

	keys    []uint64 // per-pattern sort scratch
	sortBuf []uint64 // radix-sort ping-pong scratch

	lastM int // most recently built wrapper design (0 = none)
	lastD *wrapper.Design

	// Kernel-invocation counters; nil (a no-op) unless a telemetry sink
	// is attached. Counts are deterministic: one per evaluated config.
	tdcEvals   *telemetry.Counter
	noTDCEvals *telemetry.Counter
}

// attachTelemetry resolves the evaluator's kernel counters from the
// sink; a nil sink leaves them nil, keeping the hot path free.
func (e *Evaluator) attachTelemetry(tel *telemetry.Sink) {
	e.tdcEvals = tel.Counter("eval.tdc_evals")
	e.noTDCEvals = tel.Counter("eval.notdc_evals")
}

// NewEvaluator prepares an evaluator for the core, generating (and
// caching on the core) its test set.
func NewEvaluator(c *soc.Core) (*Evaluator, error) {
	ts, err := c.TestSet()
	if err != nil {
		return nil, err
	}
	e := &Evaluator{
		core:    c,
		ts:      ts,
		careRef: make([]uint64, 0, ts.TotalCareBits()),
		cubeOff: make([]int, ts.Len()+1),
	}
	for j, cb := range ts.Cubes {
		e.cubeOff[j] = len(e.careRef)
		for _, bit := range cb.Care {
			r := uint64(bit.Pos) << 1
			if bit.Value {
				r |= 1
			}
			e.careRef = append(e.careRef, r)
		}
	}
	e.cubeOff[ts.Len()] = len(e.careRef)
	return e, nil
}

// Design returns the wrapper design for m chains, reusing the previous
// one when m is unchanged — this is what lets TDC, PatternBits and
// NoTDC calls at the same m share one design and stimulus map.
func (e *Evaluator) Design(m int) (*wrapper.Design, error) {
	if e.lastD != nil && e.lastM == m {
		return e.lastD, nil
	}
	d, err := wrapper.New(e.core, m)
	if err != nil {
		return nil, err
	}
	e.lastM, e.lastD = m, d
	return d, nil
}

// NoTDC evaluates testing the core through m direct TAM wires (one
// wrapper chain per wire, no compression): the classic
// τ = (1 + max(si,so))·p + min(si,so) regime.
func (e *Evaluator) NoTDC(m int) (Config, error) {
	d, err := e.Design(m)
	if err != nil {
		return Config{}, err
	}
	e.noTDCEvals.Inc()
	return Config{
		Feasible: true,
		Width:    m,
		M:        m,
		Time:     d.TestTime(),
		Volume:   d.StimulusVolume(),
	}, nil
}

// TDC evaluates testing the core through a selective-encoding
// decompressor with m outputs (wrapper chains) and w = CodewordWidth(m)
// TAM inputs. The test time charges one cycle per codeword, overlaps
// each pattern's response shift-out with the next pattern's compressed
// shift-in, and adds one capture cycle per pattern plus the final
// shift-out:
//
//	τ = cw_1 + Σ_{j>1} max(cw_j, so) + p + so
//
// The ATE volume is the exact compressed stream size, codewords × w.
// groupCopy disables the codec's group-copy mode when false (the
// ablation knob for the two-mode design choice).
func (e *Evaluator) TDC(m int, groupCopy bool) (Config, error) {
	d, err := e.Design(m)
	if err != nil {
		return Config{}, err
	}
	e.tdcEvals.Inc()
	time, volume := e.tdcCost(d, groupCopy)
	return Config{
		Feasible: true,
		UseTDC:   true,
		Codec:    CodecSelEnc,
		Width:    selenc.CodewordWidth(m),
		M:        m,
		Time:     time,
		Volume:   volume,
	}, nil
}

// PatternBits returns the exact compressed size in bits of every test
// pattern of the core under selective encoding with m wrapper chains —
// the per-pattern cost model used by ATE-memory truncation planning.
func (e *Evaluator) PatternBits(m int) ([]int64, error) {
	d, err := e.Design(m)
	if err != nil {
		return nil, err
	}
	k := int64(selenc.PayloadBits(m))
	w := k + 2
	refs := d.StimulusMap()
	si := int64(d.ScanIn)

	out := make([]int64, e.ts.Len())
	for j := range out {
		keys := e.patternKeys(refs, j)
		out[j] = (si + sliceOps(keys, k, true)) * w
	}
	return out, nil
}

// tdcCost computes the exact test time and compressed volume for a
// wrapper design, without materializing codewords. It reproduces
// selenc's cost model — per slice, one header plus min(t, 2) codewords
// per group holding t target bits (fill = per-slice care majority) — and
// is validated against the real encoder in the tests.
func (e *Evaluator) tdcCost(d *wrapper.Design, groupCopy bool) (time, volume int64) {
	k := int64(selenc.PayloadBits(d.M))
	w := k + 2
	si := int64(d.ScanIn)
	so := int64(d.ScanOut)
	refs := d.StimulusMap()

	var totalCW int64
	for j := 0; j < e.ts.Len(); j++ {
		keys := e.patternKeys(refs, j)
		// One header per slice (including fully-X slices) plus the
		// encoding operations.
		cw := si + sliceOps(keys, k, groupCopy)
		totalCW += cw
		if j == 0 {
			time += cw
		} else if cw > so {
			time += cw
		} else {
			time += so
		}
	}
	time += int64(e.ts.Len()) + so
	volume = totalCW * w
	return time, volume
}

// patternKeys builds and sorts cube j's encoding keys: slice-major
// (Depth in the high word), chain-minor, care-bit value in bit 0. The
// returned slice aliases the evaluator's scratch buffer and is valid
// until the next call.
func (e *Evaluator) patternKeys(refs []wrapper.CellRef, j int) []uint64 {
	keys := e.keys[:0]
	for _, p := range e.careRef[e.cubeOff[j]:e.cubeOff[j+1]] {
		r := refs[p>>1]
		keys = append(keys, uint64(r.Depth)<<32|uint64(r.Chain)<<1|p&1)
	}
	e.keys = keys[:0] // keep grown capacity for the next pattern
	e.sortKeys(keys)
	return keys
}

// radixMinLen is the cube size above which the LSD radix sort beats the
// comparison sort.
const radixMinLen = 192

// sortKeys sorts a pattern's keys ascending: slices.Sort for small
// cubes, an LSD radix sort over the significant bytes for large ones.
func (e *Evaluator) sortKeys(keys []uint64) {
	if len(keys) < radixMinLen {
		slices.Sort(keys)
		return
	}
	var maxKey uint64
	for _, k := range keys {
		if k > maxKey {
			maxKey = k
		}
	}
	if cap(e.sortBuf) < len(keys) {
		e.sortBuf = make([]uint64, len(keys))
	}
	src, dst := keys, e.sortBuf[:len(keys)]
	for shift := uint(0); maxKey>>shift != 0; shift += 8 {
		var counts [256]int
		for _, k := range src {
			counts[k>>shift&0xff]++
		}
		total := 0
		for b, c := range counts {
			counts[b] = total
			total += c
		}
		for _, k := range src {
			dst[counts[k>>shift&0xff]] = k
			counts[k>>shift&0xff]++
		}
		src, dst = dst, src
	}
	if &src[0] != &keys[0] {
		copy(keys, src)
	}
}

// sliceOps returns the selective-encoding operation count for one
// pattern's sorted keys under payload width k: per slice, min(t, 2)
// codewords (single-bit, or group-index + literal-data when groupCopy)
// for each group holding t target bits, where targets are the care bits
// differing from the slice's majority fill. Slice headers are charged
// by the caller. This is the single cost model shared by tdcCost and
// PatternBits.
func sliceOps(keys []uint64, k int64, groupCopy bool) int64 {
	var ops int64
	for start := 0; start < len(keys); {
		end := start
		slice := keys[start] >> 32
		ones := 0
		for end < len(keys) && keys[end]>>32 == slice {
			if keys[end]&1 != 0 {
				ones++
			}
			end++
		}
		fill := uint64(0)
		if ones*2 > end-start {
			fill = 1
		}
		// Count targets per group over the chain-sorted run.
		group := int64(-1)
		inGroup := 0
		for i := start; i < end; i++ {
			if keys[i]&1 == fill {
				continue
			}
			chain := int64(keys[i]>>1) & 0x7fffffff
			g := chain / k
			if g != group {
				ops += flushGroup(inGroup, groupCopy)
				group = g
				inGroup = 0
			}
			inGroup++
		}
		ops += flushGroup(inGroup, groupCopy)
		start = end
	}
	return ops
}

func flushGroup(t int, groupCopy bool) int64 {
	if groupCopy && t >= 2 {
		return 2
	}
	return int64(t)
}

// EvalNoTDC evaluates testing the core through m direct TAM wires with
// a one-shot evaluator. Sweeps should reuse an Evaluator instead.
func EvalNoTDC(c *soc.Core, m int) (Config, error) {
	// Direct access needs no test set, so keep the historical behavior
	// of not generating one.
	d, err := wrapper.New(c, m)
	if err != nil {
		return Config{}, err
	}
	return Config{
		Feasible: true,
		Width:    m,
		M:        m,
		Time:     d.TestTime(),
		Volume:   d.StimulusVolume(),
	}, nil
}

// EvalTDC evaluates one compressed configuration with a one-shot
// evaluator. Sweeps should reuse an Evaluator instead.
func EvalTDC(c *soc.Core, m int) (Config, error) {
	e, err := NewEvaluator(c)
	if err != nil {
		return Config{}, err
	}
	return e.TDC(m, true)
}

// EvalTDCNoGroupCopy is EvalTDC with group-copy mode disabled: every
// target bit costs one single-bit codeword. This is the ablation knob
// for the two-mode codec design choice.
func EvalTDCNoGroupCopy(c *soc.Core, m int) (Config, error) {
	e, err := NewEvaluator(c)
	if err != nil {
		return Config{}, err
	}
	return e.TDC(m, false)
}

// PatternBits returns the exact compressed size in bits of every test
// pattern of the core under selective encoding with m wrapper chains,
// with a one-shot evaluator.
func PatternBits(c *soc.Core, m int) ([]int64, error) {
	e, err := NewEvaluator(c)
	if err != nil {
		return nil, err
	}
	return e.PatternBits(m)
}
