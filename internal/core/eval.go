// Package core implements the paper's primary contribution: co-optimized
// test-architecture design and test scheduling with core-level expansion
// of compressed test patterns.
//
// It has three layers:
//
//   - per-core evaluation (this file): the exact test time and ATE data
//     volume of one core for a given wrapper-chain count m, with or
//     without the selective-encoding decompressor;
//   - lookup tables (lookup.go): the τ(w, m) exploration of Section 2 of
//     the paper, reduced to best-configuration tables indexed by TAM
//     width, fanned out over a bounded worker pool;
//   - the SOC-level optimizer (optimize.go): TAM partitioning, core
//     assignment and scheduling over those tables (Section 3).
package core

import (
	"context"
	"fmt"
	"runtime"
	"time"

	"soctap/internal/cube"
	"soctap/internal/selenc"
	"soctap/internal/soc"
	"soctap/internal/telemetry"
	"soctap/internal/wrapper"
)

// Config is the outcome of testing one core through one access
// configuration.
type Config struct {
	Feasible bool
	UseTDC   bool
	Codec    string // CodecDirect, CodecSelEnc or CodecDict
	Width    int    // TAM wires consumed (w for TDC, m for no-TDC)
	M        int    // wrapper chains driven
	// DictWords is the dictionary capacity (CodecDict only).
	DictWords int
	Time      int64 // test application time in cycles
	Volume    int64 // ATE stimulus storage in bits
}

// better reports whether c strictly improves on o (time first, then
// volume).
func (c Config) better(o Config) bool {
	if !c.Feasible {
		return false
	}
	if !o.Feasible {
		return true
	}
	if c.Time != o.Time {
		return c.Time < o.Time
	}
	return c.Volume < o.Volume
}

// Residency-mode constants of the evaluator. An evaluator either holds
// the whole test set resident (the historical path: cubes materialized
// once, flat planes cached across the sweep) or streams it from a
// cube.Source in bounded windows, pricing each window and recycling the
// buffers — O(window) peak memory instead of O(test set), with results
// bit-identical to the resident path (DeepEqual-gated in the tests).
const (
	// DefaultEvalWindow is the window size (in cubes) the streaming path
	// uses when a caller asks for streaming without choosing one.
	DefaultEvalWindow = 64
	// EvalWindowAll requests the streaming machinery with a single
	// whole-set window — the ∞ point of the window axis, used by the
	// equivalence gates.
	EvalWindowAll = -1
	// autoStreamRawBits is the auto-mode threshold: a core whose raw
	// stimulus image (StimulusBits × Patterns) reaches this many bits is
	// streamed with DefaultEvalWindow; smaller cores stay resident so the
	// benchmark-class workloads keep the cached-plane kernel wins.
	autoStreamRawBits = int64(1) << 31
)

// evalWindow is the per-window state shared by every consumer of one
// loaded cube window: the flattened care refs (cube.Window), the
// window's position in the pass, the measured-density strategy choice,
// and the dense path's m-independent flat planes. One producer
// evaluator loads it; mirror evaluators (see mirror) price the same
// window read-only through their own kernel scratch — the data-sharing
// contract of the fused sweep (fused.go).
type evalWindow struct {
	cube.Window
	start int // global index of the window's first cube
	count int // cubes in the loaded window

	// dense selects the plane-building strategy for this window's cubes
	// (kernel.go): resident evaluators fix it once from the whole set's
	// care density, streaming ones re-measure per window.
	dense bool

	// Dense path: per-cube flat planes in flat stimulus order. They
	// depend only on the window's cubes — not on m — so every evaluation
	// point sharing the window shares them. Resident mode builds them
	// once for the whole set (flatBuilt); streaming mode rebuilds per
	// window into recycled buffers.
	flatWords int
	flatBuilt bool
	flatCare  []uint64 // [cube][flatWords]
	flatValue []uint64
}

// Evaluator evaluates test configurations of one core. It is the hot
// kernel of the (w, m) exploration: the core's test cubes are flattened
// into a contiguous care-bit array (the whole set when resident, one
// window at a time when streaming), the most recent wrapper design (and
// its stimulus map) is kept so consecutive evaluations at the same m
// share it, and the word-kernel plane scratch (kernel.go) is reused
// across the whole sweep. An Evaluator is not safe for concurrent use;
// parallel sweeps give each worker its own (see lookup.go) or a mirror
// sharing a producer's loaded window (see fused.go).
type Evaluator struct {
	core *soc.Core
	ts   *cube.Set   // resident mode: the materialized set (nil when streaming)
	src  cube.Source // streaming mode: the replayable cube stream (nil when resident)

	patterns int  // total cubes per evaluation pass
	numBits  int  // stimulus bits per cube
	window   int  // cubes per streamed window; 0 in resident mode
	streamed bool // streaming-mode kernel layout (src != nil, or a mirror of such)

	// win is the loaded cube window the kernels price against: &ownWin
	// for a self-loading evaluator, the producer's window for a mirror.
	win    *evalWindow
	ownWin evalWindow

	// passPos is the global index of the first cube of the next window
	// (see beginPass/nextWindow).
	passPos int

	kern kernelScratch // word-parallel slice kernel state

	lastM int // most recently built wrapper design (0 = none)
	lastD *wrapper.Design

	// Kernel-invocation counters; nil (a no-op) unless a telemetry sink
	// is attached. Counts are deterministic: one per evaluated config
	// (and, for the window counters, one per window load).
	tdcEvals    *telemetry.Counter
	noTDCEvals  *telemetry.Counter
	windowLoads *telemetry.Counter
	windowCubes *telemetry.Counter
	// windowHist distributes the wall-clock cost of streamed window
	// loads (source replay + plane build). Resident passes load nothing,
	// so they record nothing; the clock is only read when a sink is
	// attached.
	windowHist *telemetry.Histogram
	// peakHeap is the heap high-water gauge, sampled at window
	// boundaries every heapSampleStride loads (ReadMemStats is
	// stop-the-world, so per-window sampling would dominate at small
	// windows). Nil without a sink; gauge values are runtime
	// observations, excluded from the determinism guarantee.
	peakHeap *telemetry.Gauge
	loadTick int

	// ctx, when non-nil, is checked at every kernel entry so a cancelled
	// sweep aborts at (w, m)-point granularity. Only cancellable contexts
	// are stored (bindContext), keeping the common Background case a
	// single nil comparison on the hot path.
	ctx context.Context
}

// heapSampleStride is the window-load sampling interval of the peak-heap
// gauge.
const heapSampleStride = 64

// attachTelemetry resolves the evaluator's kernel counters from the
// sink; a nil sink leaves them nil, keeping the hot path free.
func (e *Evaluator) attachTelemetry(tel *telemetry.Sink) {
	e.tdcEvals = tel.Counter("eval.tdc_evals")
	e.noTDCEvals = tel.Counter("eval.notdc_evals")
	e.windowLoads = tel.Counter("eval.window_loads")
	e.windowCubes = tel.Counter("eval.window_cubes")
	e.windowHist = tel.Histogram("eval.window_load_seconds")
	e.peakHeap = tel.Gauge("eval.peak_heap_bytes")
}

// bindContext arms the evaluator's per-kernel cancellation checkpoint.
// Contexts that can never be cancelled (Background, TODO, nil) are not
// stored, so unbound evaluators pay nothing.
func (e *Evaluator) bindContext(ctx context.Context) {
	if ctx != nil && ctx.Done() != nil {
		e.ctx = ctx
	}
}

// checkpoint returns the bound context's error, if any — the
// cooperative cancellation point of the evaluation kernels.
func (e *Evaluator) checkpoint() error {
	if e.ctx == nil {
		return nil
	}
	return e.ctx.Err()
}

// NewEvaluator prepares an evaluator for the core in automatic
// residency mode: cores whose raw stimulus image stays under the
// streaming threshold are materialized (generating and caching the test
// set on the core), larger ones stream with the default window. Use
// NewEvaluatorWindow to choose explicitly.
func NewEvaluator(c *soc.Core) (*Evaluator, error) {
	return NewEvaluatorWindow(c, 0)
}

// NewEvaluatorWindow prepares an evaluator with an explicit residency
// choice. window > 0 streams the test set in windows of that many
// cubes; EvalWindowAll streams the whole set as one window; 0 picks
// automatically (resident below autoStreamRawBits, streaming with
// DefaultEvalWindow at or above it). Other negative values are
// rejected. Streamed and resident evaluators price identically — the
// choice moves peak memory, never results.
func NewEvaluatorWindow(c *soc.Core, window int) (*Evaluator, error) {
	if window < 0 && window != EvalWindowAll {
		return nil, fmt.Errorf("core: EvalWindow %d (want > 0, 0 for auto, or EvalWindowAll)", window)
	}
	if window == 0 && c.StimulusVolumeBits() >= autoStreamRawBits {
		window = DefaultEvalWindow
	}
	if window == 0 {
		return newResidentEvaluator(c)
	}
	src, err := c.TestSource()
	if err != nil {
		return nil, err
	}
	if window == EvalWindowAll || window > src.Len() {
		window = src.Len()
	}
	e := &Evaluator{
		core:     c,
		src:      src,
		patterns: src.Len(),
		numBits:  src.NumBits(),
		window:   window,
		streamed: true,
	}
	e.win = &e.ownWin
	e.ownWin.Off = make([]int, 0, window+1)
	return e, nil
}

// mirror returns a co-evaluator sharing this evaluator's loaded window:
// same core geometry and kernel layout, its own kernel scratch, no
// source of its own. The fused sweep's workers price a producer's
// windows through mirrors, so the cube stream is traversed exactly once
// per pass no matter how many points (or workers) consume it. A mirror
// must only be used between the producer's window loads.
func (e *Evaluator) mirror() *Evaluator {
	return &Evaluator{
		core:     e.core,
		patterns: e.patterns,
		numBits:  e.numBits,
		window:   e.window,
		streamed: e.streamed,
		win:      e.win,
	}
}

// newResidentEvaluator materializes the core's test set (cached on the
// core) and flattens it into the evaluator's whole-set care array — the
// historical construction.
func newResidentEvaluator(c *soc.Core) (*Evaluator, error) {
	ts, err := c.TestSet()
	if err != nil {
		return nil, err
	}
	e := &Evaluator{
		core:     c,
		ts:       ts,
		patterns: ts.Len(),
		numBits:  c.StimulusBits(),
	}
	e.win = &e.ownWin
	e.ownWin.Refs = make([]uint64, 0, ts.TotalCareBits())
	e.ownWin.Off = make([]int, 0, ts.Len()+1)
	for _, cb := range ts.Cubes {
		e.ownWin.AppendCube(cb)
	}
	e.ownWin.Seal()
	e.ownWin.start, e.ownWin.count = 0, ts.Len()
	// Pick the kernel's plane-building strategy from the measured care
	// density of the test set (kernel.go). The streaming path defers
	// this to each window's measured density instead.
	if bits := int64(c.StimulusBits()) * int64(ts.Len()); bits > 0 {
		density := float64(ts.TotalCareBits()) / float64(bits)
		e.ownWin.dense = density >= denseDensityThreshold
	}
	return e, nil
}

// beginPass rewinds the evaluator to the first cube of an evaluation
// pass; nextWindow then yields the pass's windows in order. The
// resident pass is a single preloaded whole-set window, so the pair
// compiles down to today's flat loop; the streaming pass replays the
// source and reloads windows into the recycled care array.
func (e *Evaluator) beginPass() {
	e.passPos = 0
	if e.src != nil {
		e.src.Reset()
	}
}

// nextWindow advances to the next cube window of the current pass,
// returning false when the pass is exhausted. After a true return,
// cubes [winStart, winStart+winCount) are loaded and patternOps prices
// them by window-local index.
func (e *Evaluator) nextWindow() bool {
	if e.passPos >= e.patterns {
		return false
	}
	if e.src == nil {
		e.win.start, e.win.count = 0, e.patterns
		e.passPos = e.patterns
		e.noteWindow(e.patterns)
		return true
	}
	var t0 time.Time
	if e.windowHist != nil {
		t0 = time.Now()
	}
	n := min(e.window, e.patterns-e.passPos)
	loaded := e.win.Load(e.src, n)
	e.win.start = e.passPos
	e.win.count = loaded
	e.passPos += loaded
	if loaded == 0 {
		// A source shorter than its Len violates the Source contract;
		// treat it as end-of-pass rather than spinning.
		e.passPos = e.patterns
		return false
	}
	// The dense/sparse strategy is chosen per window from its measured
	// density: a sweep over a decaying test set can use the transpose
	// kernel for the dense head and the scatter kernel for the sparse
	// tail of one pass.
	density := float64(e.win.CareBits()) / (float64(e.numBits) * float64(loaded))
	e.win.dense = density >= denseDensityThreshold
	if e.win.dense {
		e.win.buildFlatPlanes(e.numBits)
	}
	if e.windowHist != nil {
		e.windowHist.Observe(time.Since(t0))
	}
	e.noteWindow(loaded)
	return true
}

// noteWindow accounts one window load of n cubes and samples the heap
// high-water gauge every heapSampleStride loads. All of it is nil-safe
// and free without a telemetry sink.
func (e *Evaluator) noteWindow(n int) {
	e.windowLoads.Inc()
	e.windowCubes.Add(int64(n))
	if e.peakHeap == nil {
		return
	}
	e.loadTick++
	if e.loadTick%heapSampleStride != 1 {
		return
	}
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	e.peakHeap.Observe(int64(ms.HeapAlloc))
}

// Design returns the wrapper design for m chains, reusing the previous
// one when m is unchanged — this is what lets TDC, PatternBits and
// NoTDC calls at the same m share one design and stimulus map.
func (e *Evaluator) Design(m int) (*wrapper.Design, error) {
	if e.lastD != nil && e.lastM == m {
		return e.lastD, nil
	}
	d, err := wrapper.New(e.core, m)
	if err != nil {
		return nil, err
	}
	e.lastM, e.lastD = m, d
	return d, nil
}

// NoTDC evaluates testing the core through m direct TAM wires (one
// wrapper chain per wire, no compression): the classic
// τ = (1 + max(si,so))·p + min(si,so) regime.
func (e *Evaluator) NoTDC(m int) (Config, error) {
	if err := e.checkpoint(); err != nil {
		return Config{}, err
	}
	d, err := e.Design(m)
	if err != nil {
		return Config{}, err
	}
	e.noTDCEvals.Inc()
	return Config{
		Feasible: true,
		Width:    m,
		M:        m,
		Time:     d.TestTime(),
		Volume:   d.StimulusVolume(),
	}, nil
}

// TDC evaluates testing the core through a selective-encoding
// decompressor with m outputs (wrapper chains) and w = CodewordWidth(m)
// TAM inputs. The test time charges one cycle per codeword, overlaps
// each pattern's response shift-out with the next pattern's compressed
// shift-in, and adds one capture cycle per pattern plus the final
// shift-out:
//
//	τ = cw_1 + Σ_{j>1} max(cw_j, so) + p + so
//
// The ATE volume is the exact compressed stream size, codewords × w.
// groupCopy disables the codec's group-copy mode when false (the
// ablation knob for the two-mode design choice).
func (e *Evaluator) TDC(m int, groupCopy bool) (Config, error) {
	if err := e.checkpoint(); err != nil {
		return Config{}, err
	}
	d, err := e.Design(m)
	if err != nil {
		return Config{}, err
	}
	e.tdcEvals.Inc()
	time, volume := e.tdcCost(d, groupCopy)
	return Config{
		Feasible: true,
		UseTDC:   true,
		Codec:    CodecSelEnc,
		Width:    selenc.CodewordWidth(m),
		M:        m,
		Time:     time,
		Volume:   volume,
	}, nil
}

// PatternBits returns the exact compressed size in bits of every test
// pattern of the core under selective encoding with m wrapper chains —
// the per-pattern cost model used by ATE-memory truncation planning.
func (e *Evaluator) PatternBits(m int) ([]int64, error) {
	d, err := e.Design(m)
	if err != nil {
		return nil, err
	}
	k := int64(selenc.PayloadBits(m))
	w := k + 2
	si := int64(d.ScanIn)
	e.kernelPrepare(d)

	out := make([]int64, e.patterns)
	j := 0
	e.beginPass()
	for e.nextWindow() {
		for lj := 0; lj < e.win.count; lj++ {
			out[j] = (si + e.patternOps(lj, k, true)) * w
			j++
		}
	}
	return out, nil
}

// tdcCost computes the exact test time and compressed volume for a
// wrapper design, without materializing codewords. It reproduces
// selenc's cost model — per slice, one header plus min(t, 2) codewords
// per group holding t target bits (fill = per-slice care majority) — via
// the word-parallel plane kernel (kernel.go) and is validated against
// the real encoder in the tests.
func (e *Evaluator) tdcCost(d *wrapper.Design, groupCopy bool) (time, volume int64) {
	k := int64(selenc.PayloadBits(d.M))
	w := k + 2
	si := int64(d.ScanIn)
	so := int64(d.ScanOut)
	e.kernelPrepare(d)

	var totalCW int64
	j := 0
	e.beginPass()
	for e.nextWindow() {
		for lj := 0; lj < e.win.count; lj++ {
			// One header per slice (including fully-X slices) plus the
			// encoding operations.
			cw := si + e.patternOps(lj, k, groupCopy)
			totalCW += cw
			if j == 0 {
				time += cw
			} else if cw > so {
				time += cw
			} else {
				time += so
			}
			j++
		}
	}
	time += int64(e.patterns) + so
	volume = totalCW * w
	return time, volume
}

func flushGroup(t int, groupCopy bool) int64 {
	if groupCopy && t >= 2 {
		return 2
	}
	return int64(t)
}

// EvalNoTDC evaluates testing the core through m direct TAM wires with
// a one-shot evaluator. Sweeps should reuse an Evaluator instead.
func EvalNoTDC(c *soc.Core, m int) (Config, error) {
	// Direct access needs no test set, so keep the historical behavior
	// of not generating one.
	d, err := wrapper.New(c, m)
	if err != nil {
		return Config{}, err
	}
	return Config{
		Feasible: true,
		Width:    m,
		M:        m,
		Time:     d.TestTime(),
		Volume:   d.StimulusVolume(),
	}, nil
}

// EvalTDC evaluates one compressed configuration with a one-shot
// evaluator. Sweeps should reuse an Evaluator instead.
func EvalTDC(c *soc.Core, m int) (Config, error) {
	e, err := NewEvaluator(c)
	if err != nil {
		return Config{}, err
	}
	return e.TDC(m, true)
}

// EvalTDCNoGroupCopy is EvalTDC with group-copy mode disabled: every
// target bit costs one single-bit codeword. This is the ablation knob
// for the two-mode codec design choice.
func EvalTDCNoGroupCopy(c *soc.Core, m int) (Config, error) {
	e, err := NewEvaluator(c)
	if err != nil {
		return Config{}, err
	}
	return e.TDC(m, false)
}

// PatternBits returns the exact compressed size in bits of every test
// pattern of the core under selective encoding with m wrapper chains,
// with a one-shot evaluator.
func PatternBits(c *soc.Core, m int) ([]int64, error) {
	e, err := NewEvaluator(c)
	if err != nil {
		return nil, err
	}
	return e.PatternBits(m)
}
