// Package core implements the paper's primary contribution: co-optimized
// test-architecture design and test scheduling with core-level expansion
// of compressed test patterns.
//
// It has three layers:
//
//   - per-core evaluation (this file): the exact test time and ATE data
//     volume of one core for a given wrapper-chain count m, with or
//     without the selective-encoding decompressor;
//   - lookup tables (lookup.go): the τ(w, m) exploration of Section 2 of
//     the paper, reduced to best-configuration tables indexed by TAM
//     width, fanned out over a bounded worker pool;
//   - the SOC-level optimizer (optimize.go): TAM partitioning, core
//     assignment and scheduling over those tables (Section 3).
package core

import (
	"context"

	"soctap/internal/cube"
	"soctap/internal/selenc"
	"soctap/internal/soc"
	"soctap/internal/telemetry"
	"soctap/internal/wrapper"
)

// Config is the outcome of testing one core through one access
// configuration.
type Config struct {
	Feasible bool
	UseTDC   bool
	Codec    string // CodecDirect, CodecSelEnc or CodecDict
	Width    int    // TAM wires consumed (w for TDC, m for no-TDC)
	M        int    // wrapper chains driven
	// DictWords is the dictionary capacity (CodecDict only).
	DictWords int
	Time      int64 // test application time in cycles
	Volume    int64 // ATE stimulus storage in bits
}

// better reports whether c strictly improves on o (time first, then
// volume).
func (c Config) better(o Config) bool {
	if !c.Feasible {
		return false
	}
	if !o.Feasible {
		return true
	}
	if c.Time != o.Time {
		return c.Time < o.Time
	}
	return c.Volume < o.Volume
}

// Evaluator evaluates test configurations of one core. It is the hot
// kernel of the (w, m) exploration: the core's test set is flattened
// into one contiguous care-bit array up front, the most recent wrapper
// design (and its stimulus map) is kept so consecutive evaluations at
// the same m share it, and the word-kernel plane scratch (kernel.go) is
// reused across the whole sweep. An Evaluator is not safe for
// concurrent use; parallel sweeps give each worker its own (see
// lookup.go).
type Evaluator struct {
	core *soc.Core
	ts   *cube.Set

	// careRef packs the care bits of every cube, flattened:
	// careRef[i] = pos<<1 | value. cubeOff[j] is cube j's offset, with
	// a final sentinel at cubeOff[len(cubes)].
	careRef []uint64
	cubeOff []int

	kern kernelScratch // word-parallel slice kernel state

	lastM int // most recently built wrapper design (0 = none)
	lastD *wrapper.Design

	// Kernel-invocation counters; nil (a no-op) unless a telemetry sink
	// is attached. Counts are deterministic: one per evaluated config.
	tdcEvals   *telemetry.Counter
	noTDCEvals *telemetry.Counter

	// ctx, when non-nil, is checked at every kernel entry so a cancelled
	// sweep aborts at (w, m)-point granularity. Only cancellable contexts
	// are stored (bindContext), keeping the common Background case a
	// single nil comparison on the hot path.
	ctx context.Context
}

// attachTelemetry resolves the evaluator's kernel counters from the
// sink; a nil sink leaves them nil, keeping the hot path free.
func (e *Evaluator) attachTelemetry(tel *telemetry.Sink) {
	e.tdcEvals = tel.Counter("eval.tdc_evals")
	e.noTDCEvals = tel.Counter("eval.notdc_evals")
}

// bindContext arms the evaluator's per-kernel cancellation checkpoint.
// Contexts that can never be cancelled (Background, TODO, nil) are not
// stored, so unbound evaluators pay nothing.
func (e *Evaluator) bindContext(ctx context.Context) {
	if ctx != nil && ctx.Done() != nil {
		e.ctx = ctx
	}
}

// checkpoint returns the bound context's error, if any — the
// cooperative cancellation point of the evaluation kernels.
func (e *Evaluator) checkpoint() error {
	if e.ctx == nil {
		return nil
	}
	return e.ctx.Err()
}

// NewEvaluator prepares an evaluator for the core, generating (and
// caching on the core) its test set.
func NewEvaluator(c *soc.Core) (*Evaluator, error) {
	ts, err := c.TestSet()
	if err != nil {
		return nil, err
	}
	e := &Evaluator{
		core:    c,
		ts:      ts,
		careRef: make([]uint64, 0, ts.TotalCareBits()),
		cubeOff: make([]int, ts.Len()+1),
	}
	for j, cb := range ts.Cubes {
		e.cubeOff[j] = len(e.careRef)
		for _, bit := range cb.Care {
			r := uint64(bit.Pos) << 1
			if bit.Value {
				r |= 1
			}
			e.careRef = append(e.careRef, r)
		}
	}
	e.cubeOff[ts.Len()] = len(e.careRef)
	// Pick the kernel's plane-building strategy from the measured care
	// density of the test set (kernel.go).
	if bits := int64(c.StimulusBits()) * int64(ts.Len()); bits > 0 {
		density := float64(ts.TotalCareBits()) / float64(bits)
		e.kern.dense = density >= denseDensityThreshold
	}
	return e, nil
}

// Design returns the wrapper design for m chains, reusing the previous
// one when m is unchanged — this is what lets TDC, PatternBits and
// NoTDC calls at the same m share one design and stimulus map.
func (e *Evaluator) Design(m int) (*wrapper.Design, error) {
	if e.lastD != nil && e.lastM == m {
		return e.lastD, nil
	}
	d, err := wrapper.New(e.core, m)
	if err != nil {
		return nil, err
	}
	e.lastM, e.lastD = m, d
	return d, nil
}

// NoTDC evaluates testing the core through m direct TAM wires (one
// wrapper chain per wire, no compression): the classic
// τ = (1 + max(si,so))·p + min(si,so) regime.
func (e *Evaluator) NoTDC(m int) (Config, error) {
	if err := e.checkpoint(); err != nil {
		return Config{}, err
	}
	d, err := e.Design(m)
	if err != nil {
		return Config{}, err
	}
	e.noTDCEvals.Inc()
	return Config{
		Feasible: true,
		Width:    m,
		M:        m,
		Time:     d.TestTime(),
		Volume:   d.StimulusVolume(),
	}, nil
}

// TDC evaluates testing the core through a selective-encoding
// decompressor with m outputs (wrapper chains) and w = CodewordWidth(m)
// TAM inputs. The test time charges one cycle per codeword, overlaps
// each pattern's response shift-out with the next pattern's compressed
// shift-in, and adds one capture cycle per pattern plus the final
// shift-out:
//
//	τ = cw_1 + Σ_{j>1} max(cw_j, so) + p + so
//
// The ATE volume is the exact compressed stream size, codewords × w.
// groupCopy disables the codec's group-copy mode when false (the
// ablation knob for the two-mode design choice).
func (e *Evaluator) TDC(m int, groupCopy bool) (Config, error) {
	if err := e.checkpoint(); err != nil {
		return Config{}, err
	}
	d, err := e.Design(m)
	if err != nil {
		return Config{}, err
	}
	e.tdcEvals.Inc()
	time, volume := e.tdcCost(d, groupCopy)
	return Config{
		Feasible: true,
		UseTDC:   true,
		Codec:    CodecSelEnc,
		Width:    selenc.CodewordWidth(m),
		M:        m,
		Time:     time,
		Volume:   volume,
	}, nil
}

// PatternBits returns the exact compressed size in bits of every test
// pattern of the core under selective encoding with m wrapper chains —
// the per-pattern cost model used by ATE-memory truncation planning.
func (e *Evaluator) PatternBits(m int) ([]int64, error) {
	d, err := e.Design(m)
	if err != nil {
		return nil, err
	}
	k := int64(selenc.PayloadBits(m))
	w := k + 2
	si := int64(d.ScanIn)
	e.kernelPrepare(d)

	out := make([]int64, e.ts.Len())
	for j := range out {
		out[j] = (si + e.patternOps(j, k, true)) * w
	}
	return out, nil
}

// tdcCost computes the exact test time and compressed volume for a
// wrapper design, without materializing codewords. It reproduces
// selenc's cost model — per slice, one header plus min(t, 2) codewords
// per group holding t target bits (fill = per-slice care majority) — via
// the word-parallel plane kernel (kernel.go) and is validated against
// the real encoder in the tests.
func (e *Evaluator) tdcCost(d *wrapper.Design, groupCopy bool) (time, volume int64) {
	k := int64(selenc.PayloadBits(d.M))
	w := k + 2
	si := int64(d.ScanIn)
	so := int64(d.ScanOut)
	e.kernelPrepare(d)

	var totalCW int64
	for j := 0; j < e.ts.Len(); j++ {
		// One header per slice (including fully-X slices) plus the
		// encoding operations.
		cw := si + e.patternOps(j, k, groupCopy)
		totalCW += cw
		if j == 0 {
			time += cw
		} else if cw > so {
			time += cw
		} else {
			time += so
		}
	}
	time += int64(e.ts.Len()) + so
	volume = totalCW * w
	return time, volume
}

func flushGroup(t int, groupCopy bool) int64 {
	if groupCopy && t >= 2 {
		return 2
	}
	return int64(t)
}

// EvalNoTDC evaluates testing the core through m direct TAM wires with
// a one-shot evaluator. Sweeps should reuse an Evaluator instead.
func EvalNoTDC(c *soc.Core, m int) (Config, error) {
	// Direct access needs no test set, so keep the historical behavior
	// of not generating one.
	d, err := wrapper.New(c, m)
	if err != nil {
		return Config{}, err
	}
	return Config{
		Feasible: true,
		Width:    m,
		M:        m,
		Time:     d.TestTime(),
		Volume:   d.StimulusVolume(),
	}, nil
}

// EvalTDC evaluates one compressed configuration with a one-shot
// evaluator. Sweeps should reuse an Evaluator instead.
func EvalTDC(c *soc.Core, m int) (Config, error) {
	e, err := NewEvaluator(c)
	if err != nil {
		return Config{}, err
	}
	return e.TDC(m, true)
}

// EvalTDCNoGroupCopy is EvalTDC with group-copy mode disabled: every
// target bit costs one single-bit codeword. This is the ablation knob
// for the two-mode codec design choice.
func EvalTDCNoGroupCopy(c *soc.Core, m int) (Config, error) {
	e, err := NewEvaluator(c)
	if err != nil {
		return Config{}, err
	}
	return e.TDC(m, false)
}

// PatternBits returns the exact compressed size in bits of every test
// pattern of the core under selective encoding with m wrapper chains,
// with a one-shot evaluator.
func PatternBits(c *soc.Core, m int) ([]int64, error) {
	e, err := NewEvaluator(c)
	if err != nil {
		return nil, err
	}
	return e.PatternBits(m)
}
