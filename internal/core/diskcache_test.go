package core

import (
	"context"
	"encoding/binary"
	"hash/crc32"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"sync/atomic"
	"testing"

	"soctap/internal/soc"
	"soctap/internal/tablecodec"
	"soctap/internal/telemetry"
)

// cacheDirEntries lists the table files currently in dir — both the
// sharded two-hex-char subdirectories and legacy flat entries.
func cacheDirEntries(t *testing.T, dir string) []string {
	t.Helper()
	flat, err := filepath.Glob(filepath.Join(dir, "*.table"))
	if err != nil {
		t.Fatal(err)
	}
	sharded, err := filepath.Glob(filepath.Join(dir, "??", "*.table"))
	if err != nil {
		t.Fatal(err)
	}
	return append(flat, sharded...)
}

// TestDiskCacheRoundTrip: a table that passed through the disk cache is
// field-for-field identical to the freshly built one.
func TestDiskCacheRoundTrip(t *testing.T) {
	dir := t.TempDir()
	c := compressibleCore(11)
	opts := TableOptions{MaxWidth: 12}

	var warm Cache
	warm.SetDir(dir)
	built, err := warm.Get(c, opts)
	if err != nil {
		t.Fatal(err)
	}
	if got := cacheDirEntries(t, dir); len(got) != 1 {
		t.Fatalf("%d cache files after first build, want 1", len(got))
	}

	var cold Cache
	cold.SetDir(dir)
	var builds atomic.Int64
	cold.buildHook = func(*soc.Core, TableOptions) { builds.Add(1) }
	loaded, err := cold.Get(compressibleCore(11), opts)
	if err != nil {
		t.Fatal(err)
	}
	if n := builds.Load(); n != 0 {
		t.Errorf("%d builds on a warm disk cache, want 0", n)
	}
	// Compare every field except the Core pointer, which is re-attached
	// on load (the content key guarantees structural identity).
	a, b := *built, *loaded
	a.Core, b.Core = nil, nil
	if !reflect.DeepEqual(a, b) {
		t.Error("loaded table differs from built table")
	}
}

// TestDiskCacheCorruption: truncated or garbage entries and stale
// version tags must read as misses — the table is silently rebuilt and
// the entry rewritten.
func TestDiskCacheCorruption(t *testing.T) {
	c := compressibleCore(12)
	opts := TableOptions{MaxWidth: 10}

	corruptions := []struct {
		name    string
		corrupt func(t *testing.T, path string)
	}{
		{"truncated", func(t *testing.T, path string) {
			data, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(path, data[:len(data)/3], 0o644); err != nil {
				t.Fatal(err)
			}
		}},
		{"garbage", func(t *testing.T, path string) {
			if err := os.WriteFile(path, []byte("not a gob stream"), 0o644); err != nil {
				t.Fatal(err)
			}
		}},
		{"stale-version", func(t *testing.T, path string) {
			// Rewrite the container header under a version this code no
			// longer accepts, re-sealing the header CRC so ONLY the
			// version is wrong — the rejection must come from the
			// version check, not checksum luck.
			data, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			binary.LittleEndian.PutUint16(data[4:6], tablecodec.Version+1)
			binary.LittleEndian.PutUint32(data[28:32], crc32.ChecksumIEEE(data[:28]))
			if err := os.WriteFile(path, data, 0o644); err != nil {
				t.Fatal(err)
			}
		}},
		{"payload-bit-flip", func(t *testing.T, path string) {
			data, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			data[len(data)-2] ^= 0x10
			if err := os.WriteFile(path, data, 0o644); err != nil {
				t.Fatal(err)
			}
		}},
	}

	for _, tc := range corruptions {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			var warm Cache
			warm.SetDir(dir)
			built, err := warm.Get(c, opts)
			if err != nil {
				t.Fatal(err)
			}
			files := cacheDirEntries(t, dir)
			if len(files) != 1 {
				t.Fatalf("%d cache files, want 1", len(files))
			}
			tc.corrupt(t, files[0])

			// The corrupted entry must trigger a silent rebuild...
			var again Cache
			again.SetDir(dir)
			var builds atomic.Int64
			again.buildHook = func(*soc.Core, TableOptions) { builds.Add(1) }
			rebuilt, err := again.Get(c, opts)
			if err != nil {
				t.Fatal(err)
			}
			if n := builds.Load(); n != 1 {
				t.Errorf("%d builds after corruption, want 1", n)
			}
			a, b := *built, *rebuilt
			a.Core, b.Core = nil, nil
			if !reflect.DeepEqual(a, b) {
				t.Error("rebuilt table differs from original")
			}

			// ...and the rewritten entry must be good: a third cache
			// loads it without building.
			var third Cache
			third.SetDir(dir)
			var builds3 atomic.Int64
			third.buildHook = func(*soc.Core, TableOptions) { builds3.Add(1) }
			if _, err := third.Get(c, opts); err != nil {
				t.Fatal(err)
			}
			if n := builds3.Load(); n != 0 {
				t.Errorf("%d builds from the rewritten entry, want 0", n)
			}
		})
	}
}

// TestDiskCacheCorruptionTelemetry: a corrupted entry is no longer an
// invisible rebuild — it increments diskcache.corrupt_rebuilds exactly
// once and fires the warning callback, while a plain absent entry
// counts as a miss, and a valid one as a hit.
func TestDiskCacheCorruptionTelemetry(t *testing.T) {
	c := compressibleCore(14)
	opts := TableOptions{MaxWidth: 10}
	dir := t.TempDir()

	// Cold run: entry absent → one disk miss, no corruption.
	cold := telemetry.New()
	var warm Cache
	warm.SetDir(dir)
	if _, err := warm.get(context.Background(), c, opts, cold); err != nil {
		t.Fatal(err)
	}
	cn := cold.Snapshot().Counters
	if cn["diskcache.misses"] != 1 || cn["diskcache.corrupt_rebuilds"] != 0 {
		t.Fatalf("cold counters: %v", cn)
	}

	// Warm run: valid entry → one hit.
	hit := telemetry.New()
	var second Cache
	second.SetDir(dir)
	if _, err := second.get(context.Background(), compressibleCore(14), opts, hit); err != nil {
		t.Fatal(err)
	}
	hn := hit.Snapshot().Counters
	if hn["diskcache.hits"] != 1 || hn["diskcache.corrupt_rebuilds"] != 0 {
		t.Fatalf("warm counters: %v", hn)
	}

	// Corrupt the gob file: the rebuild must be counted exactly once
	// and the callback must name the file.
	files := cacheDirEntries(t, dir)
	if len(files) != 1 {
		t.Fatalf("%d cache files, want 1", len(files))
	}
	if err := os.WriteFile(files[0], []byte("not a gob stream"), 0o644); err != nil {
		t.Fatal(err)
	}
	corrupt := telemetry.New()
	var warnings []string
	var third Cache
	third.SetDir(dir)
	third.SetWarn(func(msg string) { warnings = append(warnings, msg) })
	if _, err := third.get(context.Background(), compressibleCore(14), opts, corrupt); err != nil {
		t.Fatal(err)
	}
	kn := corrupt.Snapshot().Counters
	if kn["diskcache.corrupt_rebuilds"] != 1 {
		t.Fatalf("diskcache.corrupt_rebuilds = %d, want exactly 1 (counters: %v)",
			kn["diskcache.corrupt_rebuilds"], kn)
	}
	if kn["diskcache.misses"] != 0 || kn["diskcache.hits"] != 0 {
		t.Fatalf("corruption misclassified as hit/miss: %v", kn)
	}
	if len(warnings) != 1 || !strings.Contains(warnings[0], files[0]) {
		t.Fatalf("warning callback: %v, want one message naming %s", warnings, files[0])
	}

	// The rewritten entry is good again: a fourth cache hits cleanly.
	again := telemetry.New()
	var fourth Cache
	fourth.SetDir(dir)
	if _, err := fourth.get(context.Background(), compressibleCore(14), opts, again); err != nil {
		t.Fatal(err)
	}
	if an := again.Snapshot().Counters; an["diskcache.hits"] != 1 {
		t.Fatalf("rewritten entry not hit: %v", an)
	}
}

// TestOptimizeTableCacheDir: end-to-end through Options.TableCacheDir —
// the second run reloads every table from disk (≈0 table time) and
// reproduces the first run's result exactly.
func TestOptimizeTableCacheDir(t *testing.T) {
	dir := t.TempDir()
	s := testSOC()
	opts := Options{
		Style:         StyleTDCPerCore,
		Tables:        TableOptions{MaxWidth: 16},
		TableCacheDir: dir,
	}
	cold, err := Optimize(s, 16, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(cacheDirEntries(t, dir)) != len(s.Cores) {
		t.Fatalf("%d cache files, want %d", len(cacheDirEntries(t, dir)), len(s.Cores))
	}

	// Second run with a fresh in-memory cache: every table must come
	// from disk, with zero rebuilds.
	var builds atomic.Int64
	fresh := new(Cache)
	fresh.buildHook = func(*soc.Core, TableOptions) { builds.Add(1) }
	opts.Cache = fresh
	warm, err := Optimize(testSOC(), 16, opts)
	if err != nil {
		t.Fatal(err)
	}
	if n := builds.Load(); n != 0 {
		t.Errorf("%d table builds on a warm disk cache, want 0", n)
	}
	if warm.TestTime != cold.TestTime || warm.Volume != cold.Volume {
		t.Errorf("warm run differs: time %d vs %d, volume %d vs %d",
			warm.TestTime, cold.TestTime, warm.Volume, cold.Volume)
	}
	if !reflect.DeepEqual(warm.Partition, cold.Partition) {
		t.Errorf("warm partition %v differs from cold %v", warm.Partition, cold.Partition)
	}
}

// TestDiskStoreTouchErrorCounted: when the mtime-as-atime stamp fails
// (read-only or remounted cache dir, a concurrently removed entry), the
// failure is counted as diskcache.touch_errors instead of swallowed,
// and the in-memory index atime stays authoritative — a touched entry
// keeps its LRU recency even though the disk stamp never landed.
func TestDiskStoreTouchErrorCounted(t *testing.T) {
	dir := t.TempDir()
	opts := TableOptions{MaxWidth: 8}
	sink := telemetry.New()

	build := func(seed int64) (string, *Table) {
		c := compressibleCore(seed)
		tab, err := BuildTable(c, opts)
		if err != nil {
			t.Fatal(err)
		}
		return contentKey(c, opts.normalized()), tab
	}
	keyA, tabA := build(61)
	keyB, tabB := build(62)
	keyC, tabC := build(63)
	entrySize := int64(len(encodeTableV2(keyA, tabA)))

	// Cap sized for two entries, so storing a third evicts the
	// oldest-access one.
	ds := newDiskStore(dir, 2*entrySize+entrySize/2)
	for _, e := range []struct {
		key string
		tab *Table
	}{{keyA, tabA}, {keyB, tabB}} {
		if err := ds.store(e.key, e.tab, sink); err != nil {
			t.Fatal(err)
		}
	}

	// A healthy touch counts nothing.
	ds.touch(keyA, sink)
	if n := sink.Snapshot().Counters["diskcache.touch_errors"]; n != 0 {
		t.Fatalf("healthy touch counted %d errors", n)
	}

	// Remove A's file out from under the store: the next Chtimes stamp
	// fails exactly the way a read-only remount makes every stamp fail.
	if err := os.Remove(diskPath(dir, keyA)); err != nil {
		t.Fatal(err)
	}
	ds.mu.Lock()
	before := ds.entries[keyA].atime
	ds.mu.Unlock()
	ds.touch(keyA, sink)
	if n := sink.Snapshot().Counters["diskcache.touch_errors"]; n != 1 {
		t.Fatalf("diskcache.touch_errors = %d after a failed stamp, want 1", n)
	}
	ds.mu.Lock()
	after := ds.entries[keyA].atime
	ds.mu.Unlock()
	if !after.After(before) {
		t.Fatal("index atime not advanced when the disk stamp failed")
	}

	// The failed stamp must not demote A: storing C past the budget
	// evicts B (the genuinely least recently used entry), not A.
	if err := ds.store(keyC, tabC, sink); err != nil {
		t.Fatal(err)
	}
	ds.mu.Lock()
	_, hasA := ds.entries[keyA]
	_, hasB := ds.entries[keyB]
	ds.mu.Unlock()
	if !hasA || hasB {
		t.Fatalf("eviction ignored the in-memory atime: A present=%v B present=%v, want A kept, B evicted", hasA, hasB)
	}
}
