package core

import (
	"testing"

	"soctap/internal/soc"
)

func TestEvalDictBasics(t *testing.T) {
	c := compressibleCore(21)
	cfg, err := EvalDict(c, 32, 16)
	if err != nil {
		t.Fatal(err)
	}
	if !cfg.Feasible || !cfg.UseTDC || cfg.Codec != CodecDict {
		t.Fatalf("metadata wrong: %+v", cfg)
	}
	if cfg.Width != 1+4 { // 1 flag bit + ceil(log2 16)
		t.Errorf("Width = %d, want 5", cfg.Width)
	}
	if cfg.M != 32 || cfg.Time <= 0 || cfg.Volume <= 0 {
		t.Errorf("degenerate config %+v", cfg)
	}
	if _, err := EvalDict(c, 0, 16); err == nil {
		t.Error("m=0 accepted")
	}
	if _, err := EvalDict(c, 8, 0); err == nil {
		t.Error("dictWords=0 accepted")
	}
}

func TestEvalDictVolumeIncludesDownload(t *testing.T) {
	// A larger dictionary must charge a larger one-time download, so at
	// equal hit behaviour the volume difference is at least the SRAM
	// delta. Use a tiny core where the dictionary is far from full.
	c := &soc.Core{
		Name: "tinydict", Inputs: 4, Outputs: 4, ScanChains: []int{8, 8},
		Patterns: 4, CareDensity: 0.2, Seed: 9,
	}
	small, err := EvalDict(c, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	if small.Volume <= 0 {
		t.Fatal("degenerate volume")
	}
}

func TestSelectTechniquesJoinsTables(t *testing.T) {
	c := compressibleCore(22)
	sel, err := SelectTechniques(c, TableOptions{MaxWidth: 16}, []int{16, 64})
	if err != nil {
		t.Fatal(err)
	}
	tab, err := BuildTable(c, TableOptions{MaxWidth: 16})
	if err != nil {
		t.Fatal(err)
	}
	for u := 1; u <= 16; u++ {
		win := sel.PerWidth[u]
		if !win.Feasible {
			t.Fatalf("width %d: no winner", u)
		}
		// The winner is never worse than the selenc/direct table alone.
		if tab.Best[u].better(win) {
			t.Errorf("width %d: selection (%d) worse than base table (%d)",
				u, win.Time, tab.Best[u].Time)
		}
		// And never worse than the dictionary alone.
		if sel.DictBest[u].better(win) {
			t.Errorf("width %d: selection worse than dictionary", u)
		}
		// Dictionary configurations respect the width budget.
		if d := sel.DictBest[u]; d.Feasible && d.Width > u {
			t.Errorf("width %d: dict config uses %d wires", u, d.Width)
		}
	}
}

func TestSelectTechniquesDictionaryWinsOnRepetitiveCore(t *testing.T) {
	// A core whose patterns repeat the same few slice signatures is the
	// dictionary codec's home turf: after training, almost every slice
	// is a hit, beating selective encoding's per-target codewords.
	chains := make([]int, 16)
	for i := range chains {
		chains[i] = 20
	}
	base := &soc.Core{
		Name: "repetitive", Inputs: 8, Outputs: 8,
		ScanChains: chains, Patterns: 30,
		CareDensity: 0.5, Clustering: 0.1, Seed: 77,
	}
	// Make the test set literally repetitive: 30 copies of 3 distinct
	// dense cubes.
	ts, err := base.TestSet()
	if err != nil {
		t.Fatal(err)
	}
	for i := 3; i < len(ts.Cubes); i++ {
		ts.Cubes[i] = ts.Cubes[i%3].Clone()
	}

	sel, err := SelectTechniques(base, TableOptions{MaxWidth: 16}, []int{64})
	if err != nil {
		t.Fatal(err)
	}
	dictWins := false
	for u := 6; u <= 16; u++ {
		if sel.PerWidth[u].Codec == CodecDict {
			dictWins = true
		}
	}
	if !dictWins {
		t.Error("dictionary never selected on a repetitive dense core")
	}
}

func TestSelectTechniquesValidation(t *testing.T) {
	c := compressibleCore(23)
	if _, err := SelectTechniques(c, TableOptions{MaxWidth: 8}, []int{0}); err == nil {
		t.Error("dictionary size 0 accepted")
	}
}

func TestOptimizeWithDictNeverWorse(t *testing.T) {
	s := testSOC()
	var cache Cache
	topts := TableOptions{MaxWidth: 16}
	plain, err := Optimize(s, 16, Options{Style: StyleTDCPerCore, Tables: topts, Cache: &cache})
	if err != nil {
		t.Fatal(err)
	}
	withDict, err := Optimize(s, 16, Options{
		Style: StyleTDCPerCore, Tables: topts, Cache: &cache,
		EnableDict: true, DictSizes: []int{16, 64},
	})
	if err != nil {
		t.Fatal(err)
	}
	if withDict.TestTime > plain.TestTime {
		t.Errorf("technique selection made things worse: %d vs %d",
			withDict.TestTime, plain.TestTime)
	}
	if err := withDict.Schedule.Validate(); err != nil {
		t.Fatal(err)
	}
	// Choices carry consistent codec metadata.
	for _, ch := range withDict.Choices {
		switch ch.Config.Codec {
		case CodecDirect:
			if ch.Config.UseTDC {
				t.Errorf("%s: direct codec but UseTDC", ch.Core)
			}
		case CodecSelEnc, CodecDict:
			if !ch.Config.UseTDC {
				t.Errorf("%s: codec %q but UseTDC false", ch.Core, ch.Config.Codec)
			}
		default:
			t.Errorf("%s: unknown codec %q", ch.Core, ch.Config.Codec)
		}
		if ch.Config.Codec == CodecDict && ch.Config.DictWords < 1 {
			t.Errorf("%s: dict config without capacity", ch.Core)
		}
	}
}
