package core

// Format v2 of the persistent table cache: the mapping between a Table
// and a tablecodec.Payload (fixed-width bitpacked blocks + exception
// list, see internal/tablecodec). Config fields become columns —
// same-magnitude values packed together, so flags cost two bits and
// widths a handful — codec names go through the payload's string
// table, and the Meta blob carries the schema version, the content key
// and the normalized options, checked on load before the table is
// trusted. The encoding is exact: decode∘encode is the identity on
// every table, bit for bit (gated by `make cachefmt`).

import (
	"encoding/binary"
	"fmt"

	"soctap/internal/soc"
	"soctap/internal/tablecodec"
)

// tableMetaVersion tags the v2 schema inside the container's Meta
// blob. Bump it (orphaning old entries) whenever the column layout or
// the meaning of a Config changes.
const tableMetaVersion = "soctap-table-v2"

// tableColumns is the fixed column layout: flags (feasible|useTDC<<1),
// codec string index, width, m, dict words, zigzagged time, zigzagged
// volume. All numeric columns are zigzagged so any int value —
// including defensive negatives — rounds exactly.
const tableColumns = 7

// encodeTableV2 serializes a table under its content key.
func encodeTableV2(key string, t *Table) []byte {
	slices := [4][]Config{t.NoTDC, t.TDCExact, t.TDCBest, t.Best}
	total := 0
	for _, s := range slices {
		total += len(s)
	}
	strIdx := map[string]int{}
	var strs []string
	intern := func(s string) uint64 {
		if i, ok := strIdx[s]; ok {
			return uint64(i)
		}
		strIdx[s] = len(strs)
		strs = append(strs, s)
		return uint64(len(strs) - 1)
	}
	cols := make([][]uint64, tableColumns)
	for i := range cols {
		cols[i] = make([]uint64, 0, total)
	}
	for _, s := range slices {
		for _, cfg := range s {
			var flags uint64
			if cfg.Feasible {
				flags |= 1
			}
			if cfg.UseTDC {
				flags |= 2
			}
			cols[0] = append(cols[0], flags)
			cols[1] = append(cols[1], intern(cfg.Codec))
			cols[2] = append(cols[2], tablecodec.ZigZag(int64(cfg.Width)))
			cols[3] = append(cols[3], tablecodec.ZigZag(int64(cfg.M)))
			cols[4] = append(cols[4], tablecodec.ZigZag(int64(cfg.DictWords)))
			cols[5] = append(cols[5], tablecodec.ZigZag(cfg.Time))
			cols[6] = append(cols[6], tablecodec.ZigZag(cfg.Volume))
		}
	}
	meta := make([]byte, 0, 2*len(key))
	meta = appendMetaString(meta, tableMetaVersion)
	meta = appendMetaString(meta, key)
	meta = binary.AppendUvarint(meta, uint64(t.Opts.MaxWidth))
	meta = binary.AppendUvarint(meta, tablecodec.ZigZag(int64(t.Opts.BandSamples)))
	return tablecodec.Encode(&tablecodec.Payload{Meta: meta, Strings: strs, Columns: cols})
}

// decodeTableV2 parses a v2 entry, validates it against the expected
// (key, opts) identity, and re-attaches the requesting core (the
// content key guarantees structural identity, exactly as v1 did).
func decodeTableV2(data []byte, key string, c *soc.Core, opts TableOptions) (*Table, error) {
	p, err := tablecodec.Decode(data)
	if err != nil {
		return nil, err
	}
	m := metaReader{data: p.Meta}
	if v := m.string(); v != tableMetaVersion {
		return nil, fmt.Errorf("stale schema %q (want %q)", v, tableMetaVersion)
	}
	if k := m.string(); k != key {
		return nil, fmt.Errorf("entry key mismatch")
	}
	maxw := int(m.uvarint())
	bands := int(tablecodec.UnZigZag(m.uvarint()))
	if m.err {
		return nil, fmt.Errorf("truncated metadata")
	}
	if maxw != opts.MaxWidth || bands != opts.BandSamples {
		return nil, fmt.Errorf("entry options mismatch")
	}
	n := opts.MaxWidth + 1
	if len(p.Columns) != tableColumns {
		return nil, fmt.Errorf("%d columns (want %d)", len(p.Columns), tableColumns)
	}
	for i, col := range p.Columns {
		if len(col) != 4*n {
			return nil, fmt.Errorf("column %d holds %d values (want %d)", i, len(col), 4*n)
		}
	}
	t := &Table{
		Core:     c,
		Opts:     opts,
		NoTDC:    make([]Config, n),
		TDCExact: make([]Config, n),
		TDCBest:  make([]Config, n),
		Best:     make([]Config, n),
	}
	for si, s := range [4][]Config{t.NoTDC, t.TDCExact, t.TDCBest, t.Best} {
		for i := range s {
			row := si*n + i
			flags := p.Columns[0][row]
			if flags > 3 {
				return nil, fmt.Errorf("config %d: flags %#x out of range", row, flags)
			}
			ci := p.Columns[1][row]
			if ci >= uint64(len(p.Strings)) {
				return nil, fmt.Errorf("config %d: codec index %d out of range", row, ci)
			}
			s[i] = Config{
				Feasible:  flags&1 != 0,
				UseTDC:    flags&2 != 0,
				Codec:     p.Strings[ci],
				Width:     int(tablecodec.UnZigZag(p.Columns[2][row])),
				M:         int(tablecodec.UnZigZag(p.Columns[3][row])),
				DictWords: int(tablecodec.UnZigZag(p.Columns[4][row])),
				Time:      tablecodec.UnZigZag(p.Columns[5][row]),
				Volume:    tablecodec.UnZigZag(p.Columns[6][row]),
			}
		}
	}
	return t, nil
}

// appendMetaString frames s as uvarint length + bytes.
func appendMetaString(dst []byte, s string) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(s)))
	return append(dst, s...)
}

// metaReader is a small sticky-error cursor over the Meta blob.
type metaReader struct {
	data []byte
	off  int
	err  bool
}

func (m *metaReader) uvarint() uint64 {
	if m.err {
		return 0
	}
	v, n := binary.Uvarint(m.data[m.off:])
	if n <= 0 {
		m.err = true
		return 0
	}
	m.off += n
	return v
}

func (m *metaReader) string() string {
	n := m.uvarint()
	if m.err || n > uint64(len(m.data)-m.off) {
		m.err = true
		return ""
	}
	s := string(m.data[m.off : m.off+int(n)])
	m.off += int(n)
	return s
}
