package core

// The in-memory table cache tier. Tables are keyed by a hash of the
// core's structural content plus the normalized option set, so
// structurally identical cores — e.g. the same design file parsed twice
// — share one entry.
//
// Concurrency: the map is hash-sharded (cacheShards fixed shards, FNV-1a
// over the content key) so concurrent Gets touching different keys
// almost never contend on one mutex — the single-lock bottleneck of the
// earlier Cache, measurable in BenchmarkCacheGetParallel. Each shard
// preserves the full singleflight contract of PR 5 independently:
// concurrent callers of one key coalesce onto one build, the entry's
// done channel is always closed (even on panic), contained panics
// surface as *PanicError, and uncacheable outcomes (panic,
// cancellation) evict the entry so a later Get starts fresh — while a
// deterministic build error stays cached, because retrying a pure
// function cannot help. Shard count is invisible in results: tables are
// bit-identical whatever shard their key lands on.
//
// Bounding: each shard carries an intrusive LRU list of its resident
// (completed) entries. With a total budget installed (SetMemLimit /
// Options.TableCacheMemBytes / -table-cache-mem), each shard holds its
// 1/cacheShards share and evicts least-recently-used entries past it —
// an eviction only costs a rebuild (or a disk reload) on the next Get.
// The zero budget keeps today's unbounded behavior. cache.bytes /
// cache.evictions count the accounting; sizes are the tableMemBytes
// estimate, not exact heap bytes.

import (
	"context"
	"fmt"
	"sync"

	"soctap/internal/soc"
	"soctap/internal/telemetry"
)

// cacheShards is the fixed shard count: a power of two comfortably
// above typical core-level parallelism, small enough that the zero
// value stays cheap.
const cacheShards = 32

// Cache memoizes lookup tables across optimizer runs. The zero value is
// ready to use. Get is singleflight per key; SetDir layers the
// persistent disk tier (diskcache.go) under the memory tier; SetMemLimit
// and SetDiskLimit bound the two tiers.
type Cache struct {
	// confMu guards the configuration fields; the per-key fast path
	// never takes it (shards carry their own locks).
	confMu  sync.Mutex
	disk    *diskStore
	warn    func(msg string)
	memCap  int64 // total in-memory budget in bytes; 0 = unbounded
	diskCap int64 // disk-tier budget, held here until SetDir runs

	// buildHook, when non-nil, observes every table build the cache
	// actually starts (test instrumentation; disk-cache hits do not
	// count as builds). Set it before any Get.
	buildHook func(*soc.Core, TableOptions)

	shards [cacheShards]cacheShard
}

// cacheShard is one lock's worth of the table map plus the LRU list of
// its resident entries (head = most recently used).
type cacheShard struct {
	mu         sync.Mutex
	tables     map[string]*cacheEntry
	head, tail *cacheEntry
	bytes      int64
}

type cacheEntry struct {
	key  string
	done chan struct{} // closed when t/err are valid
	t    *Table
	err  error

	// LRU state, guarded by the owning shard's mutex. resident means
	// the entry completed cacheably and is linked into the shard list.
	prev, next *cacheEntry
	size       int64
	resident   bool
}

// shard picks the entry's home shard by FNV-1a over the content key.
func (cc *Cache) shard(key string) *cacheShard {
	h := uint32(2166136261)
	for i := 0; i < len(key); i++ {
		h ^= uint32(key[i])
		h *= 16777619
	}
	return &cc.shards[h%cacheShards]
}

// SetDir attaches a persistent on-disk table store at dir (created on
// first write). Entries found there satisfy Get without a rebuild;
// tables built after this call are written back, best-effort. Call it
// before concurrent use.
func (cc *Cache) SetDir(dir string) {
	cc.confMu.Lock()
	cc.disk = newDiskStore(dir, cc.diskCap)
	cc.confMu.Unlock()
}

// SetMemLimit bounds the in-memory tier to roughly n bytes of resident
// tables (0 = unbounded). Call it before concurrent use; entries past
// the budget are evicted least-recently-used as builds complete.
func (cc *Cache) SetMemLimit(n int64) {
	cc.confMu.Lock()
	cc.memCap = n
	cc.confMu.Unlock()
}

// SetDiskLimit bounds the disk tier to n bytes (0 = unbounded),
// enforced by atime-ordered eviction on write-back. Order-independent
// with SetDir.
func (cc *Cache) SetDiskLimit(n int64) {
	cc.confMu.Lock()
	cc.diskCap = n
	if cc.disk != nil {
		cc.disk.setCap(n)
	}
	cc.confMu.Unlock()
}

// SetWarn installs a callback for the disk store's otherwise-silent
// failure modes: corrupt, stale or mismatched entries (rebuilt in
// place) and failed write-backs. fn may be called from any goroutine
// the cache is used on; nil disables warnings. Call it before
// concurrent use.
func (cc *Cache) SetWarn(fn func(msg string)) {
	cc.confMu.Lock()
	cc.warn = fn
	cc.confMu.Unlock()
}

// warnf formats a warning through the SetWarn callback, if any.
func (cc *Cache) warnf(format string, args ...any) {
	cc.confMu.Lock()
	fn := cc.warn
	cc.confMu.Unlock()
	if fn != nil {
		fn(fmt.Sprintf(format, args...))
	}
}

// Get returns the memoized table for (c, opts), building it on first
// use. Concurrent calls with the same key wait for the single build in
// flight; a deterministic build error is cached (BuildTable is
// deterministic, so retrying cannot succeed), while cancellations and
// contained panics evict the entry so a later Get rebuilds.
func (cc *Cache) Get(c *soc.Core, opts TableOptions) (*Table, error) {
	return cc.get(context.Background(), c, opts, nil)
}

// GetContext is Get governed by ctx: both the build itself and the wait
// of callers coalesced onto someone else's in-flight build observe
// cancellation. A waiter whose ctx ends returns ctx.Err() immediately;
// the build it was waiting on is unaffected. A nil ctx behaves like
// context.Background().
func (cc *Cache) GetContext(ctx context.Context, c *soc.Core, opts TableOptions) (*Table, error) {
	return cc.get(ctx, c, opts, nil)
}

// GetInstrumented is Get with telemetry: cache probes and any resulting
// build are counted into tel's cache.*/diskcache.*/eval.* registries.
// A nil tel makes it identical to Get.
func (cc *Cache) GetInstrumented(c *soc.Core, opts TableOptions, tel *telemetry.Sink) (*Table, error) {
	return cc.get(context.Background(), c, opts, tel)
}

// GetInstrumentedContext combines GetContext and GetInstrumented.
func (cc *Cache) GetInstrumentedContext(ctx context.Context, c *soc.Core, opts TableOptions, tel *telemetry.Sink) (*Table, error) {
	return cc.get(ctx, c, opts, tel)
}

// get is Get with an optional telemetry sink: memory- and disk-layer
// probes are counted (hits, misses, corrupt rebuilds, write errors) —
// exactly once per event, deterministically for any worker count,
// because the singleflight entry install serializes who counts the
// miss.
func (cc *Cache) get(ctx context.Context, c *soc.Core, opts TableOptions, tel *telemetry.Sink) (*Table, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	opts = opts.withDefaults()
	key := contentKey(c, opts.normalized())
	sh := cc.shard(key)
	sh.mu.Lock()
	if sh.tables == nil {
		sh.tables = make(map[string]*cacheEntry)
	}
	if e, ok := sh.tables[key]; ok {
		if e.resident {
			sh.unlink(e)
			sh.pushFront(e)
		}
		sh.mu.Unlock()
		tel.Counter("cache.mem_hits").Inc()
		return e.wait(ctx)
	}
	e := &cacheEntry{key: key, done: make(chan struct{})}
	sh.tables[key] = e
	sh.mu.Unlock()
	tel.Counter("cache.mem_misses").Inc()

	cc.build(ctx, sh, e, c, opts, tel)
	return e.t, e.err
}

// wait blocks until the entry's build completes or ctx ends. Bailing
// out early leaves the build (owned by another caller) running; this
// waiter just stops waiting for it.
func (e *cacheEntry) wait(ctx context.Context) (*Table, error) {
	if ctx.Done() == nil {
		<-e.done
		return e.t, e.err
	}
	select {
	case <-e.done:
		return e.t, e.err
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// build populates a freshly installed singleflight entry: disk-layer
// probe, then the in-memory build, then the best-effort write-back.
//
// The deferred epilogue is the fix for the cache-poisoning deadlock:
// e.done is ALWAYS closed — even when the build panics — so waiters can
// never block forever on a dead build. A panic is converted to a
// *PanicError (with the core attached) instead of unwinding into the
// caller, and any uncacheable outcome (panic or cancellation) evicts
// the entry from the map so future Gets start a fresh build rather than
// inheriting a failure that says nothing about the table itself. A
// cacheable outcome makes the entry resident in its shard's LRU, which
// may evict older entries past the memory budget.
func (cc *Cache) build(ctx context.Context, sh *cacheShard, e *cacheEntry, c *soc.Core, opts TableOptions, tel *telemetry.Sink) {
	cc.confMu.Lock()
	ds := cc.disk
	budget := int64(0)
	if cc.memCap > 0 {
		// A set budget must stay a budget even below cacheShards bytes:
		// round the per-shard share up to 1 so it never reads as
		// "unbounded".
		budget = max(cc.memCap/cacheShards, 1)
	}
	cc.confMu.Unlock()

	defer func() {
		if r := recover(); r != nil {
			tel.Counter("panic.recovered").Inc()
			e.t, e.err = nil, newPanicError(c.Name, "table build", r)
		}
		sh.mu.Lock()
		if uncacheable(e.err) {
			if sh.tables[e.key] == e {
				delete(sh.tables, e.key)
			}
		} else if sh.tables[e.key] == e {
			sh.makeResident(e, budget, tel)
		}
		sh.mu.Unlock()
		close(e.done)
	}()

	if ds != nil {
		t, status := ds.load(e.key, c, opts.normalized(), tel, cc.warnf)
		if status == diskHit {
			e.t = t
			return
		}
	}
	if cc.buildHook != nil {
		cc.buildHook(c, opts)
	}
	e.t, e.err = buildTable(ctx, c, opts, tel)
	if e.err == nil && ds != nil {
		// Best-effort: a failed write only costs a rebuild next run.
		if err := ds.store(e.key, e.t, tel); err != nil {
			tel.Counter("diskcache.write_errors").Inc()
			cc.warnf("table cache: writing %s: %v", diskPath(ds.dir, e.key), err)
		}
	}
}

// makeResident links a completed entry into the shard's LRU, charges
// its size, and evicts past the per-shard budget (0 = unbounded).
// Caller holds sh.mu. The just-completed entry sits at the front, so it
// is evicted only when it alone exceeds the budget.
func (sh *cacheShard) makeResident(e *cacheEntry, budget int64, tel *telemetry.Sink) {
	e.size = tableMemBytes(e.t)
	e.resident = true
	sh.pushFront(e)
	sh.bytes += e.size
	tel.Counter("cache.bytes").Add(e.size)
	if budget <= 0 {
		return
	}
	for sh.bytes > budget && sh.tail != nil {
		victim := sh.tail
		sh.unlink(victim)
		victim.resident = false
		delete(sh.tables, victim.key)
		sh.bytes -= victim.size
		tel.Counter("cache.evictions").Inc()
		tel.Counter("cache.bytes").Add(-victim.size)
		if victim == e {
			return // nothing older left; budget smaller than one table
		}
	}
}

// pushFront links e at the MRU end. Caller holds sh.mu.
func (sh *cacheShard) pushFront(e *cacheEntry) {
	e.prev = nil
	e.next = sh.head
	if sh.head != nil {
		sh.head.prev = e
	}
	sh.head = e
	if sh.tail == nil {
		sh.tail = e
	}
}

// unlink removes e from the LRU list. Caller holds sh.mu; e must be
// linked.
func (sh *cacheShard) unlink(e *cacheEntry) {
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		sh.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		sh.tail = e.prev
	}
	e.prev, e.next = nil, nil
}

// configMemBytes approximates one Config's resident footprint: the
// struct itself (two bools + string header + three ints + two int64s,
// padded) — codec strings are interned literals, not charged.
const configMemBytes = 64

// cacheEntryOverhead covers the entry, map slot and Table header for
// budget accounting; cached deterministic errors cost just this.
const cacheEntryOverhead = 256

// tableMemBytes estimates an entry's resident size for the LRU budget.
func tableMemBytes(t *Table) int64 {
	if t == nil {
		return cacheEntryOverhead
	}
	n := int64(len(t.NoTDC) + len(t.TDCExact) + len(t.TDCBest) + len(t.Best))
	return cacheEntryOverhead + n*configMemBytes
}
