package core

// Brute-force cross-check: on tiny SOCs, the heuristic optimizer must
// never beat an exhaustive enumeration of TAM partitions and core
// assignments (which would indicate broken accounting), and must stay
// within a modest factor of the true optimum (which bounds heuristic
// quality).

import (
	"testing"

	"soctap/internal/soc"
)

// bruteForceOptimum enumerates every partition of wtam wires into at
// most nCores buses and every assignment of cores to buses, returning
// the minimum makespan under the style's duration function. Cores on a
// bus run sequentially, so order within a bus is irrelevant.
func bruteForceOptimum(t *testing.T, s *soc.SOC, wtam int, style Style) int64 {
	t.Helper()
	tables := make([]*Table, len(s.Cores))
	for i, c := range s.Cores {
		tab, err := BuildTable(c, TableOptions{MaxWidth: wtam, BandSamples: -1})
		if err != nil {
			t.Fatal(err)
		}
		tables[i] = tab
	}
	n := len(s.Cores)
	best := int64(-1)

	var tryPartition func(widths []int)
	tryPartition = func(widths []int) {
		// Enumerate all assignments core -> bus.
		k := len(widths)
		assign := make([]int, n)
		var rec func(i int)
		rec = func(i int) {
			if i == n {
				busTime := make([]int64, k)
				for c, b := range assign {
					cfg := chooseConfig(style, tables[c], widths[b])
					if !cfg.Feasible {
						return
					}
					busTime[b] += cfg.Time
				}
				var mk int64
				for _, bt := range busTime {
					if bt > mk {
						mk = bt
					}
				}
				if best < 0 || mk < best {
					best = mk
				}
				return
			}
			for b := 0; b < k; b++ {
				assign[i] = b
				rec(i + 1)
			}
		}
		rec(0)
	}

	// Enumerate partitions of wtam into 1..n positive parts
	// (non-increasing to avoid duplicates).
	var parts func(remaining, maxPart, depth int, cur []int)
	parts = func(remaining, maxPart, depth int, cur []int) {
		if remaining == 0 {
			if len(cur) > 0 {
				tryPartition(cur)
			}
			return
		}
		if depth == 0 {
			return
		}
		for p := min(maxPart, remaining); p >= 1; p-- {
			parts(remaining-p, p, depth-1, append(cur, p))
		}
	}
	parts(wtam, wtam, n, nil)
	if best < 0 {
		t.Fatal("brute force found no feasible plan")
	}
	return best
}

func tinySOC(seed int64) *soc.SOC {
	mk := func(name string, nChains, chainLen, pat int, density float64, s int64) *soc.Core {
		chains := make([]int, nChains)
		for i := range chains {
			chains[i] = chainLen
		}
		return &soc.Core{
			Name: name, Inputs: 6, Outputs: 5,
			ScanChains: chains, Patterns: pat,
			CareDensity: density, Clustering: 0.7, Seed: s,
		}
	}
	return &soc.SOC{
		Name: "tiny",
		Cores: []*soc.Core{
			mk("t1", 8, 12, 10, 0.06, seed),
			mk("t2", 6, 10, 8, 0.10, seed+1),
			mk("t3", 10, 8, 12, 0.05, seed+2),
		},
	}
}

func TestOptimizerNeverBeatsBruteForce(t *testing.T) {
	for _, style := range []Style{StyleNoTDC, StyleTDCPerCore} {
		for _, wtam := range []int{4, 6, 8} {
			s := tinySOC(100 + int64(wtam))
			opt := bruteForceOptimum(t, s, wtam, style)
			res, err := Optimize(s, wtam, Options{
				Style:  style,
				Tables: TableOptions{MaxWidth: wtam, BandSamples: -1},
			})
			if err != nil {
				t.Fatal(err)
			}
			if res.TestTime < opt {
				t.Errorf("style %v W=%d: heuristic %d beats brute-force optimum %d (accounting bug)",
					style, wtam, res.TestTime, opt)
			}
			// Heuristic quality bound: within 40% of optimal on these
			// tiny instances.
			if float64(res.TestTime) > 1.4*float64(opt) {
				t.Errorf("style %v W=%d: heuristic %d vs optimum %d exceeds 1.4x",
					style, wtam, res.TestTime, opt)
			}
		}
	}
}
