package core

import (
	"bytes"
	"encoding/json"
	"testing"
)

func TestPlanExport(t *testing.T) {
	s := testSOC()
	res, err := Optimize(s, 12, Options{Style: StyleTDCPerCore, Tables: TableOptions{MaxWidth: 12}})
	if err != nil {
		t.Fatal(err)
	}
	p := res.Plan()
	if p.Design != s.Name || p.WTAM != 12 || p.Style != "tdc-per-core" {
		t.Errorf("plan header wrong: %+v", p)
	}
	if len(p.Cores) != len(s.Cores) {
		t.Fatalf("%d plan cores", len(p.Cores))
	}
	var vol int64
	for _, c := range p.Cores {
		if c.Codec == "" {
			t.Errorf("core %s: empty codec label", c.Core)
		}
		vol += c.Volume
	}
	if vol != p.Volume {
		t.Errorf("plan volume %d != summed %d", p.Volume, vol)
	}

	var buf bytes.Buffer
	if err := res.WritePlan(&buf); err != nil {
		t.Fatal(err)
	}
	// The JSON parses back into the same structure.
	var back PlanJSON
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatalf("plan JSON invalid: %v\n%s", err, buf.String())
	}
	if back.TestTime != p.TestTime || len(back.Cores) != len(p.Cores) {
		t.Error("JSON round trip changed the plan")
	}
	if back.Partition[0] == 0 {
		t.Error("partition lost in JSON")
	}
}
