package core

// Benchmarks for cache tier 2.0, archived by `make bench-json`:
// cold-load time and entry size of the v2 bitpacked container against
// the gob v1 baseline, and memory-hit throughput of the sharded cache
// against a single-lock baseline under parallel load.

import (
	"context"
	"os"
	"sync"
	"testing"

	"soctap/internal/soc"
)

// BenchmarkDiskLoadV1VsV2 measures one full cold load — file read,
// validation, decode, core re-attachment — per format, and reports the
// on-disk entry size as entry-bytes. The acceptance bar for the v2
// format is ≥3x faster and ≥2x smaller than gob.
func BenchmarkDiskLoadV1VsV2(b *testing.B) {
	c := compressibleCore(77)
	opts := TableOptions{MaxWidth: 64}.normalized()
	tab, err := BuildTable(c, opts)
	if err != nil {
		b.Fatal(err)
	}
	key := contentKey(c, opts)

	v1dir, v2dir := b.TempDir(), b.TempDir()
	if err := storeDiskTableV1(v1dir, key, tab); err != nil {
		b.Fatal(err)
	}
	if err := storeDiskTable(v2dir, key, tab); err != nil {
		b.Fatal(err)
	}
	size := func(path string) int64 {
		info, err := os.Stat(path)
		if err != nil {
			b.Fatal(err)
		}
		return info.Size()
	}
	v1size := size(legacyDiskPath(v1dir, key))
	v2size := size(diskPath(v2dir, key))

	load := func(b *testing.B, dir string) {
		b.Helper()
		for i := 0; i < b.N; i++ {
			t, status, reason, _ := loadDiskTable(dir, key, c, opts)
			if status != diskHit || t == nil {
				b.Fatalf("load status %v: %v", status, reason)
			}
		}
	}
	b.Run("v1-gob", func(b *testing.B) {
		b.ReportMetric(float64(v1size), "entry-bytes")
		load(b, v1dir)
	})
	b.Run("v2-bitpack", func(b *testing.B) {
		b.ReportMetric(float64(v2size), "entry-bytes")
		load(b, v2dir)
	})
}

// singleLockCache is the pre-sharding design — one mutex in front of
// the whole table map — reproduced here as the contention baseline for
// BenchmarkCacheGetParallel. Only the memory-hit path matters for the
// comparison; the singleflight bookkeeping matches the real cache.
type singleLockCache struct {
	mu     sync.Mutex
	tables map[string]*cacheEntry
}

func (sc *singleLockCache) get(c *soc.Core, opts TableOptions) (*Table, error) {
	opts = opts.withDefaults()
	key := contentKey(c, opts.normalized())
	sc.mu.Lock()
	if sc.tables == nil {
		sc.tables = make(map[string]*cacheEntry)
	}
	if e, ok := sc.tables[key]; ok {
		sc.mu.Unlock()
		return e.wait(context.Background())
	}
	e := &cacheEntry{key: key, done: make(chan struct{})}
	sc.tables[key] = e
	sc.mu.Unlock()
	e.t, e.err = BuildTable(c, opts)
	close(e.done)
	return e.t, e.err
}

// BenchmarkCacheGetParallel hammers warm Gets across many goroutines
// and 16 distinct keys: every probe is a memory hit, so the measured
// cost is key hashing plus map/lock traffic — the part the sharding
// parallelizes.
func BenchmarkCacheGetParallel(b *testing.B) {
	const nCores = 16
	opts := TableOptions{MaxWidth: 6, Workers: 1}
	cores := make([]*soc.Core, nCores)
	for i := range cores {
		cores[i] = compressibleCore(int64(900 + i))
	}

	b.Run("sharded", func(b *testing.B) {
		var cc Cache
		for _, c := range cores {
			if _, err := cc.Get(c, opts); err != nil {
				b.Fatal(err)
			}
		}
		b.ResetTimer()
		b.RunParallel(func(pb *testing.PB) {
			i := 0
			for pb.Next() {
				if _, err := cc.Get(cores[i%nCores], opts); err != nil {
					b.Fatal(err)
				}
				i++
			}
		})
	})
	b.Run("single-lock", func(b *testing.B) {
		var sc singleLockCache
		for _, c := range cores {
			if _, err := sc.get(c, opts); err != nil {
				b.Fatal(err)
			}
		}
		b.ResetTimer()
		b.RunParallel(func(pb *testing.PB) {
			i := 0
			for pb.Next() {
				if _, err := sc.get(cores[i%nCores], opts); err != nil {
					b.Fatal(err)
				}
				i++
			}
		})
	})
}
