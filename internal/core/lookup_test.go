package core

import (
	"reflect"
	"sync"
	"sync/atomic"
	"testing"

	"soctap/internal/selenc"
	"soctap/internal/soc"
)

func compressibleCore(seed int64) *soc.Core {
	chains := make([]int, 32)
	for i := range chains {
		chains[i] = 25
	}
	return &soc.Core{
		Name: "compr", Inputs: 20, Outputs: 16,
		ScanChains: chains, // 800 cells
		Patterns:   25, CareDensity: 0.03, Clustering: 0.8, DensityDecay: 0.5,
		Seed: seed,
	}
}

func TestBuildTableShape(t *testing.T) {
	c := compressibleCore(1)
	tab, err := BuildTable(c, TableOptions{MaxWidth: 24})
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.NoTDC) != 25 || len(tab.TDCExact) != 25 || len(tab.TDCBest) != 25 || len(tab.Best) != 25 {
		t.Fatal("table length wrong")
	}
	for u := 1; u <= 24; u++ {
		if !tab.NoTDC[u].Feasible {
			t.Errorf("NoTDC[%d] infeasible", u)
		}
		if tab.NoTDC[u].Width != u {
			t.Errorf("NoTDC[%d].Width = %d", u, tab.NoTDC[u].Width)
		}
		if !tab.Best[u].Feasible {
			t.Errorf("Best[%d] infeasible", u)
		}
	}
	// Widths below 3 cannot host a decompressor.
	if tab.TDCExact[1].Feasible || tab.TDCExact[2].Feasible || tab.TDCBest[2].Feasible {
		t.Error("TDC feasible below width 3")
	}
}

func TestBuildTableInvariants(t *testing.T) {
	c := compressibleCore(2)
	tab, err := BuildTable(c, TableOptions{MaxWidth: 20})
	if err != nil {
		t.Fatal(err)
	}
	for u := 1; u <= 20; u++ {
		// Best is never worse than either pure option.
		if tab.NoTDC[u].better(tab.Best[u]) {
			t.Errorf("Best[%d] worse than NoTDC", u)
		}
		if tab.TDCBest[u].better(tab.Best[u]) {
			t.Errorf("Best[%d] worse than TDCBest", u)
		}
		// TDCBest times are non-increasing in width.
		if u > 1 && tab.TDCBest[u-1].Feasible && tab.TDCBest[u].Time > tab.TDCBest[u-1].Time {
			t.Errorf("TDCBest time increased from width %d (%d) to %d (%d)",
				u-1, tab.TDCBest[u-1].Time, u, tab.TDCBest[u].Time)
		}
		// Exact-width configurations consume exactly that width.
		if tab.TDCExact[u].Feasible && tab.TDCExact[u].Width != u {
			t.Errorf("TDCExact[%d].Width = %d", u, tab.TDCExact[u].Width)
		}
		// TDC m always lies in the width's band.
		if cfg := tab.TDCExact[u]; cfg.Feasible {
			lo, hi, err := selenc.MBand(u)
			if err != nil {
				t.Fatal(err)
			}
			if cfg.M < lo || (cfg.M > hi && cfg.M != c.MaxWrapperChains()) {
				t.Errorf("TDCExact[%d].M = %d outside band [%d,%d]", u, cfg.M, lo, hi)
			}
		}
	}
	// On this sparse core, compression must win clearly at width >= 8.
	if tab.Best[8].UseTDC == false {
		t.Error("sparse core should choose TDC at width 8")
	}
	if tab.Best[8].Time*2 > tab.NoTDC[8].Time {
		t.Errorf("TDC advantage too small: %d vs %d", tab.Best[8].Time, tab.NoTDC[8].Time)
	}
}

func TestBuildTableDenseCorePrefersDirectOrTDC(t *testing.T) {
	// At ~60% care density compression buys little; Best must still be
	// well-formed and no worse than NoTDC.
	c := &soc.Core{
		Name: "dense", Inputs: 20, Outputs: 10, ScanChains: []int{50, 50, 50, 50},
		Patterns: 15, CareDensity: 0.6, Clustering: 0.3, Seed: 3,
	}
	tab, err := BuildTable(c, TableOptions{MaxWidth: 16})
	if err != nil {
		t.Fatal(err)
	}
	for u := 1; u <= 16; u++ {
		if tab.Best[u].Time > tab.NoTDC[u].Time {
			t.Errorf("width %d: Best %d worse than NoTDC %d", u, tab.Best[u].Time, tab.NoTDC[u].Time)
		}
	}
}

func TestSampleBand(t *testing.T) {
	// Exhaustive when band fits.
	got := sampleBand(10, 14, 48)
	if len(got) != 5 || got[0] != 10 || got[4] != 14 {
		t.Errorf("sampleBand(10,14,48) = %v", got)
	}
	// Sampled: includes both edges, respects bound, strictly increasing.
	got = sampleBand(128, 255, 16)
	if len(got) > 16 || got[0] != 128 || got[len(got)-1] != 255 {
		t.Errorf("sampleBand(128,255,16) = %v", got)
	}
	for i := 1; i < len(got); i++ {
		if got[i] <= got[i-1] {
			t.Fatalf("not strictly increasing: %v", got)
		}
	}
	// Negative means exhaustive.
	if got := sampleBand(1, 100, -1); len(got) != 100 {
		t.Errorf("exhaustive sample = %d values", len(got))
	}
	if got := sampleBand(5, 9, 1); len(got) != 1 || got[0] != 9 {
		t.Errorf("sampleBand(5,9,1) = %v", got)
	}
}

func TestSweepTDC(t *testing.T) {
	c := compressibleCore(4)
	cfgs, err := SweepTDC(c, 16, 31) // the w = 7 band: k = ceil(log2(m+1)) = 5
	if err != nil {
		t.Fatal(err)
	}
	if len(cfgs) != 16 {
		t.Fatalf("%d configs, want 16", len(cfgs))
	}
	for i, cfg := range cfgs {
		if cfg.M != 16+i || !cfg.Feasible || !cfg.UseTDC {
			t.Errorf("config %d: %+v", i, cfg)
		}
		if cfg.Width != 7 {
			t.Errorf("m=%d: width %d, want 7", cfg.M, cfg.Width)
		}
	}
	// Clamping to the core's maximum.
	cfgs, err = SweepTDC(c, c.MaxWrapperChains()-1, c.MaxWrapperChains()+100)
	if err != nil {
		t.Fatal(err)
	}
	if len(cfgs) != 2 {
		t.Errorf("clamped sweep has %d configs, want 2", len(cfgs))
	}
	if _, err := SweepTDC(c, 500, 100); err == nil {
		t.Error("empty range accepted")
	}
}

func TestCacheMemoizes(t *testing.T) {
	c := compressibleCore(5)
	var cache Cache
	opts := TableOptions{MaxWidth: 12}
	t1, err := cache.Get(c, opts)
	if err != nil {
		t.Fatal(err)
	}
	t2, err := cache.Get(c, opts)
	if err != nil {
		t.Fatal(err)
	}
	if t1 != t2 {
		t.Error("cache rebuilt table for identical key")
	}
	t3, err := cache.Get(c, TableOptions{MaxWidth: 16})
	if err != nil {
		t.Fatal(err)
	}
	if t3 == t1 {
		t.Error("different options shared a table")
	}
}

// TestCacheGetSingleflight hammers one cache key from 16 goroutines and
// asserts exactly one BuildTable runs: concurrent callers must block on
// the in-flight build, not duplicate it.
func TestCacheGetSingleflight(t *testing.T) {
	c := compressibleCore(7)
	var cache Cache
	var builds atomic.Int64
	cache.buildHook = func(*soc.Core, TableOptions) { builds.Add(1) }

	const callers = 16
	tables := make([]*Table, callers)
	errs := make([]error, callers)
	var start, done sync.WaitGroup
	start.Add(1)
	for i := 0; i < callers; i++ {
		done.Add(1)
		go func(i int) {
			defer done.Done()
			start.Wait() // maximize contention
			tables[i], errs[i] = cache.Get(c, TableOptions{MaxWidth: 12})
		}(i)
	}
	start.Done()
	done.Wait()

	if n := builds.Load(); n != 1 {
		t.Errorf("%d builds for one key, want 1", n)
	}
	for i := 0; i < callers; i++ {
		if errs[i] != nil {
			t.Fatal(errs[i])
		}
		if tables[i] != tables[0] {
			t.Errorf("caller %d got a different table", i)
		}
	}
	// Workers must not fragment the cache: same key modulo Workers.
	if tab, err := cache.Get(c, TableOptions{MaxWidth: 12, Workers: 4}); err != nil || tab != tables[0] {
		t.Errorf("Workers option fragmented the cache key (err %v)", err)
	}
	if n := builds.Load(); n != 1 {
		t.Errorf("%d builds after Workers-varied Get, want 1", n)
	}
}

// TestCacheContentAddressed asserts the cache keys on core content, not
// identity: a structurally identical core at a different address shares
// the entry (no second build), while any content change gets its own.
func TestCacheContentAddressed(t *testing.T) {
	var cache Cache
	var builds atomic.Int64
	cache.buildHook = func(*soc.Core, TableOptions) { builds.Add(1) }
	opts := TableOptions{MaxWidth: 12}

	c1 := compressibleCore(5)
	c2 := compressibleCore(5) // same content, distinct pointer
	t1, err := cache.Get(c1, opts)
	if err != nil {
		t.Fatal(err)
	}
	t2, err := cache.Get(c2, opts)
	if err != nil {
		t.Fatal(err)
	}
	if t1 != t2 {
		t.Error("structurally identical cores got different tables")
	}
	if n := builds.Load(); n != 1 {
		t.Errorf("%d builds for identical content, want 1", n)
	}

	c3 := compressibleCore(5)
	c3.Name = "renamed"
	if _, err := cache.Get(c3, opts); err != nil {
		t.Fatal(err)
	}
	c4 := compressibleCore(6) // different generator seed
	if _, err := cache.Get(c4, opts); err != nil {
		t.Fatal(err)
	}
	if n := builds.Load(); n != 3 {
		t.Errorf("%d builds across three distinct contents, want 3", n)
	}
}

// TestBuildTableWorkersDeterminism asserts the parallel build is
// byte-identical to the sequential one on d695 cores.
func TestBuildTableWorkersDeterminism(t *testing.T) {
	for _, c := range soc.D695().Cores[:5] {
		seq, err := BuildTable(c, TableOptions{MaxWidth: 24, Workers: 1})
		if err != nil {
			t.Fatal(err)
		}
		par, err := BuildTable(c, TableOptions{MaxWidth: 24, Workers: 8})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(seq, par) {
			t.Errorf("%s: Workers=8 table differs from Workers=1", c.Name)
		}
	}
}

// TestSweepTDCWorkersEquivalence asserts the parallel sweep matches the
// sequential one configuration-for-configuration.
func TestSweepTDCWorkersEquivalence(t *testing.T) {
	c := compressibleCore(9)
	seq, err := SweepTDCWorkers(c, 4, 31, 1)
	if err != nil {
		t.Fatal(err)
	}
	par, err := SweepTDCWorkers(c, 4, 31, 8)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(seq, par) {
		t.Error("parallel sweep differs from sequential")
	}
	def, err := SweepTDC(c, 4, 31)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(seq, def) {
		t.Error("default-workers sweep differs from sequential")
	}
}

func TestBuildTableErrors(t *testing.T) {
	c := compressibleCore(6)
	if _, err := BuildTable(c, TableOptions{MaxWidth: -1}); err == nil {
		t.Error("negative MaxWidth accepted")
	}
	bad := &soc.Core{Name: "bad", Inputs: 4, Patterns: 3, CareDensity: -1}
	if _, err := BuildTable(bad, TableOptions{MaxWidth: 8}); err == nil {
		t.Error("invalid core accepted")
	}
}

// TestBuildTablePruningGoldenEquivalence is the zero-loss guarantee of
// the lower-bound pruning: for every d695 and industrial core, the
// table built with pruning must be deeply equal to the table built
// without it, whether the sweep runs sequentially or on 8 workers.
// Industrial cores use a reduced band sampling so the full matrix stays
// tractable under -race; d695 cores run with the default options.
func TestBuildTablePruningGoldenEquivalence(t *testing.T) {
	type tc struct {
		core *soc.Core
		opts TableOptions
	}
	var cases []tc
	for _, c := range soc.D695().Cores {
		cases = append(cases, tc{c, TableOptions{}})
	}
	for _, name := range soc.IndustrialCoreNames() {
		cases = append(cases, tc{soc.MustIndustrialCore(name), TableOptions{BandSamples: 12}})
	}
	for _, cse := range cases {
		for _, workers := range []int{1, 8} {
			opts := cse.opts
			opts.Workers = workers
			pruned, err := BuildTable(cse.core, opts)
			if err != nil {
				t.Fatal(err)
			}
			opts.DisablePruning = true
			plain, err := BuildTable(cse.core, opts)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(pruned, plain) {
				t.Errorf("%s workers=%d: pruned table differs from unpruned", cse.core.Name, workers)
			}
		}
	}
}
