package core

// Robustness regression tests: the singleflight cache-poisoning
// deadlock, panic containment at the package boundary, cooperative
// cancellation, and goroutine hygiene. These run under -race with a
// tight -timeout in the Makefile's `robustness` gate, so a regression
// shows up as a hang (caught by the timeout) rather than silent
// corruption.

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"soctap/internal/soc"
)

// TestCacheGetPanicNoDeadlock is the regression test for the
// cache-poisoning deadlock: before the fix, a panic inside the build
// left the singleflight entry's done channel open forever, so every
// concurrent and future Get for that key blocked permanently (or, for
// the panicking goroutine itself, the panic escaped and killed the
// process). Now the panic must surface to every caller as a
// *PanicError and the poisoned entry must be evicted so a later Get
// rebuilds cleanly.
func TestCacheGetPanicNoDeadlock(t *testing.T) {
	c := compressibleCore(21)
	var cache Cache
	cache.buildHook = func(*soc.Core, TableOptions) { panic("injected build panic") }

	const callers = 8
	errs := make([]error, callers)
	var start, done sync.WaitGroup
	start.Add(1)
	for i := 0; i < callers; i++ {
		done.Add(1)
		go func(i int) {
			defer done.Done()
			start.Wait() // maximize contention on one entry
			_, errs[i] = cache.Get(c, TableOptions{MaxWidth: 10})
		}(i)
	}
	start.Done()

	finished := make(chan struct{})
	go func() { done.Wait(); close(finished) }()
	select {
	case <-finished:
	case <-time.After(30 * time.Second):
		t.Fatal("Get callers deadlocked on a panicked build (poisoned singleflight entry)")
	}

	for i, err := range errs {
		if err == nil {
			t.Fatalf("caller %d: panicked build returned a nil error", i)
		}
		var pe *PanicError
		if !errors.As(err, &pe) {
			t.Fatalf("caller %d: error %v is not a *PanicError", i, err)
		}
		if pe.Core != c.Name {
			t.Errorf("caller %d: PanicError.Core = %q, want %q", i, pe.Core, c.Name)
		}
	}

	// The poisoned entry must have been evicted: with the panic gone, the
	// same key builds successfully.
	cache.buildHook = nil
	tab, err := cache.Get(c, TableOptions{MaxWidth: 10})
	if err != nil {
		t.Fatalf("Get after evicted panic entry: %v", err)
	}
	if tab == nil || !tab.Best[10].Feasible {
		t.Fatal("rebuild after panic eviction produced a bad table")
	}
}

// TestCacheWaiterCancelPromptly: a caller coalesced onto someone else's
// in-flight build must stop waiting when its own context ends, without
// disturbing the build it was waiting on.
func TestCacheWaiterCancelPromptly(t *testing.T) {
	c := compressibleCore(22)
	var cache Cache
	started := make(chan struct{})
	release := make(chan struct{})
	cache.buildHook = func(*soc.Core, TableOptions) {
		close(started)
		<-release
	}

	opts := TableOptions{MaxWidth: 8}
	ownerErr := make(chan error, 1)
	go func() {
		_, err := cache.Get(c, opts)
		ownerErr <- err
	}()
	<-started // the owner is inside the build and holds the entry

	ctx, cancel := context.WithCancel(context.Background())
	waiterDone := make(chan error, 1)
	go func() {
		_, err := cache.GetContext(ctx, c, opts)
		waiterDone <- err
	}()
	cancel()
	select {
	case err := <-waiterDone:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("cancelled waiter returned %v, want context.Canceled", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("cancelled waiter did not return while the build was in flight")
	}

	// The owner's build was unaffected by the waiter's cancellation.
	close(release)
	if err := <-ownerErr; err != nil {
		t.Fatalf("build owner failed after a waiter cancelled: %v", err)
	}
}

// TestCacheDeterministicErrorCached: a deterministic build failure is a
// property of the key (BuildTable is pure), so it stays cached — unlike
// panics and cancellations, which evict.
func TestCacheDeterministicErrorCached(t *testing.T) {
	bad := compressibleCore(23)
	bad.CareDensity = 0 // generator rejects it, deterministically
	var cache Cache
	var builds atomic.Int64
	cache.buildHook = func(*soc.Core, TableOptions) { builds.Add(1) }

	_, err1 := cache.Get(bad, TableOptions{MaxWidth: 8})
	if err1 == nil {
		t.Fatal("invalid core built successfully")
	}
	_, err2 := cache.Get(bad, TableOptions{MaxWidth: 8})
	if err2 == nil {
		t.Fatal("second Get of invalid core succeeded")
	}
	if n := builds.Load(); n != 1 {
		t.Errorf("%d builds for a deterministic error, want 1 (error must stay cached)", n)
	}
}

// TestForEachEvalPanicContained: a panic in a task body surfaces as a
// *PanicError naming the core and the evaluation point, on both the
// sequential and the pooled path — never as a process crash.
func TestForEachEvalPanicContained(t *testing.T) {
	c := compressibleCore(24)
	for _, workers := range []int{1, 4} {
		err := forEachEval(context.Background(), c, workers, 0, 8, nil,
			func(i int) string { return fmt.Sprintf("point %d", i) },
			func(ev *Evaluator, i int) error {
				if i == 3 {
					panic("kernel blew up")
				}
				return nil
			})
		if err == nil {
			t.Fatalf("workers=%d: panicking task returned nil error", workers)
		}
		var pe *PanicError
		if !errors.As(err, &pe) {
			t.Fatalf("workers=%d: error %v is not a *PanicError", workers, err)
		}
		if pe.Core != c.Name || pe.Point != "point 3" {
			t.Errorf("workers=%d: PanicError = (%q, %q), want (%q, %q)",
				workers, pe.Core, pe.Point, c.Name, "point 3")
		}
		if len(pe.Stack) == 0 {
			t.Errorf("workers=%d: PanicError carries no stack trace", workers)
		}
	}
}

// TestBuildTableContextCancelled: a context cancelled before (or during)
// the build makes BuildTableContext return ctx.Err(), not a table.
func TestBuildTableContextCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	tab, err := BuildTableContext(ctx, compressibleCore(25), TableOptions{MaxWidth: 12})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if tab != nil {
		t.Fatal("cancelled build returned a table")
	}
}

// TestSweepTDCContextCancelled mirrors the BuildTable check for the
// per-band sweep entry point.
func TestSweepTDCContextCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	cfgs, err := SweepTDCContext(ctx, compressibleCore(26), 8, 15, 2)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if cfgs != nil {
		t.Fatal("cancelled sweep returned configurations")
	}
}

// TestOptimizeCancelMidRun cancels an Optimize of the d695 benchmark
// while its first table build is in flight. The run must unwind with
// context.Canceled in bounded time and leave no goroutines behind.
func TestOptimizeCancelMidRun(t *testing.T) {
	// Goroutine accounting below needs the test to own the process's
	// goroutine count; do not mark this test parallel.
	before := runtime.NumGoroutine()

	s := soc.D695()
	ctx, cancel := context.WithCancel(context.Background())
	var cache Cache
	cache.buildHook = func(*soc.Core, TableOptions) { cancel() }

	start := time.Now()
	res, err := OptimizeContext(ctx, s, 32, Options{
		Style:   StyleTDCPerCore,
		Tables:  TableOptions{MaxWidth: 32},
		Cache:   &cache,
		Workers: 8,
	})
	elapsed := time.Since(start)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if res != nil {
		t.Fatal("cancelled Optimize returned a result")
	}
	// Cancellation lands at the next (w, m) kernel entry; even on a
	// loaded 1-CPU machine that is far under this bound, while an
	// uncancelled d695 run at MaxWidth 32 is far over it.
	if elapsed > 30*time.Second {
		t.Fatalf("cancelled Optimize took %v, cancellation not prompt", elapsed)
	}

	// All worker goroutines must drain. Poll: the pool exits
	// cooperatively, not synchronously with Optimize's return.
	deadline := time.Now().Add(10 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= before+2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked after cancellation: %d before, %d after",
				before, runtime.NumGoroutine())
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestOptimizeContextMatchesOptimize: the context-threaded entry point
// with a nil or Background context is bit-identical to plain Optimize,
// at both worker extremes. Cancellation support must cost nothing in
// determinism.
func TestOptimizeContextMatchesOptimize(t *testing.T) {
	s := testSOC()
	var cache Cache // shared: tables are pure, so sharing cannot mask a diff
	base := Options{
		Style:  StyleTDCPerCore,
		Tables: TableOptions{MaxWidth: 16},
		Cache:  &cache,
	}
	type outcome struct {
		res *Result
		tag string
	}
	for _, workers := range []int{1, 8} {
		opts := base
		opts.Workers = workers
		var runs []outcome
		plain, err := Optimize(s, 16, opts)
		if err != nil {
			t.Fatal(err)
		}
		runs = append(runs, outcome{plain, "Optimize"})
		for _, tc := range []struct {
			tag string
			ctx context.Context
		}{{"nil ctx", nil}, {"Background", context.Background()}} {
			res, err := OptimizeContext(tc.ctx, s, 16, opts)
			if err != nil {
				t.Fatalf("workers=%d %s: %v", workers, tc.tag, err)
			}
			runs = append(runs, outcome{res, tc.tag})
		}
		ref := runs[0].res
		for _, r := range runs[1:] {
			if !reflect.DeepEqual(r.res.Partition, ref.Partition) {
				t.Errorf("workers=%d %s: partition %v != %v", workers, r.tag, r.res.Partition, ref.Partition)
			}
			if !reflect.DeepEqual(r.res.Schedule, ref.Schedule) {
				t.Errorf("workers=%d %s: schedule differs", workers, r.tag)
			}
			if !reflect.DeepEqual(r.res.Choices, ref.Choices) {
				t.Errorf("workers=%d %s: choices differ", workers, r.tag)
			}
			if r.res.TestTime != ref.TestTime || r.res.Volume != ref.Volume {
				t.Errorf("workers=%d %s: time/volume %d/%d != %d/%d",
					workers, r.tag, r.res.TestTime, r.res.Volume, ref.TestTime, ref.Volume)
			}
		}
	}
}
