package core

// Tests for cache tier 2.0: the v1→v2 disk-format migration, the
// bounded disk store, the sharded in-memory LRU, and format-version
// equivalence on the paper's benchmark cores.

import (
	"context"
	"os"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"

	"soctap/internal/soc"
	"soctap/internal/tablecodec"
	"soctap/internal/telemetry"
)

// TestDiskCacheV1Migration: a gob v1 entry at the legacy flat path is
// read once, served as a hit (no rebuild), and transparently rewritten
// as a v2 container at the sharded path — after which the flat file is
// gone and subsequent reads hit the v2 entry with no further migration.
func TestDiskCacheV1Migration(t *testing.T) {
	dir := t.TempDir()
	c := compressibleCore(21)
	opts := TableOptions{MaxWidth: 10}
	key := contentKey(c, opts.normalized())

	built, err := BuildTable(c, opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := storeDiskTableV1(dir, key, built); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(legacyDiskPath(dir, key)); err != nil {
		t.Fatalf("v1 fixture not at the flat path: %v", err)
	}

	var cold Cache
	cold.SetDir(dir)
	var builds atomic.Int64
	cold.buildHook = func(*soc.Core, TableOptions) { builds.Add(1) }
	sink := telemetry.New()
	loaded, err := cold.get(context.Background(), c, opts, sink)
	if err != nil {
		t.Fatal(err)
	}
	if n := builds.Load(); n != 0 {
		t.Errorf("%d builds on a v1 entry, want 0 (migration must not rebuild)", n)
	}
	cn := sink.Snapshot().Counters
	if cn["diskcache.hits"] != 1 || cn["diskcache.migrated"] != 1 {
		t.Errorf("migration counters: %v, want one hit and one migration", cn)
	}
	a, b := *built, *loaded
	a.Core, b.Core = nil, nil
	if !reflect.DeepEqual(a, b) {
		t.Error("v1-loaded table differs from the built table")
	}

	// The flat original is gone; the sharded replacement is a v2
	// container.
	if _, err := os.Stat(legacyDiskPath(dir, key)); !os.IsNotExist(err) {
		t.Errorf("legacy flat entry still present after migration (err=%v)", err)
	}
	data, err := os.ReadFile(diskPath(dir, key))
	if err != nil {
		t.Fatalf("migrated entry missing from the sharded path: %v", err)
	}
	if !tablecodec.HasMagic(data) {
		t.Error("migrated entry is not a v2 container")
	}
	if _, err := tablecodec.Verify(data); err != nil {
		t.Errorf("migrated entry fails verification: %v", err)
	}

	// Second process generation: a plain v2 hit, no migration.
	var warm Cache
	warm.SetDir(dir)
	again := telemetry.New()
	reloaded, err := warm.get(context.Background(), compressibleCore(21), opts, again)
	if err != nil {
		t.Fatal(err)
	}
	an := again.Snapshot().Counters
	if an["diskcache.hits"] != 1 || an["diskcache.migrated"] != 0 {
		t.Errorf("post-migration counters: %v, want a clean hit", an)
	}
	a, b = *built, *reloaded
	a.Core, b.Core = nil, nil
	if !reflect.DeepEqual(a, b) {
		t.Error("v2-loaded table differs from the built table")
	}
}

// TestFormatV2MatchesV1OnBenchmarks is the acceptance gate for format
// equivalence: on every d695 core and a synthetic industrial core, the
// table loaded from a v2 container and the table loaded from a gob v1
// entry are both DeepEqual to the freshly built one.
func TestFormatV2MatchesV1OnBenchmarks(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode: skipping full-benchmark format sweep")
	}
	cores := append([]*soc.Core{}, soc.D695().Cores...)
	cores = append(cores, soc.MustIndustrialCore("ckt-2"))
	opts := TableOptions{MaxWidth: 12, BandSamples: 8}
	for _, c := range cores {
		t.Run(c.Name, func(t *testing.T) {
			built, err := BuildTable(c, opts)
			if err != nil {
				t.Fatal(err)
			}
			key := contentKey(c, opts.normalized())

			v2, err := decodeTableV2(encodeTableV2(key, built), key, c, opts.normalized())
			if err != nil {
				t.Fatalf("v2 round trip: %v", err)
			}

			dir := t.TempDir()
			if err := storeDiskTableV1(dir, key, built); err != nil {
				t.Fatal(err)
			}
			v1, status, reason, rewrite := loadDiskTable(dir, key, c, opts.normalized())
			if status != diskHit || !rewrite {
				t.Fatalf("v1 load: status %v rewrite %v (%v)", status, rewrite, reason)
			}

			want := *built
			want.Core = nil
			for name, got := range map[string]*Table{"v2": v2, "v1": v1} {
				g := *got
				g.Core = nil
				if !reflect.DeepEqual(want, g) {
					t.Errorf("%s-loaded table differs from the built table", name)
				}
			}
		})
	}
}

// TestDiskCacheSizeBound: with -table-cache-size in force the store
// evicts oldest-access entries so the directory never exceeds the
// budget, and counts what it did.
func TestDiskCacheSizeBound(t *testing.T) {
	dir := t.TempDir()
	opts := TableOptions{MaxWidth: 8}

	// Size one entry to pick a cap that fits exactly two.
	probe := compressibleCore(100)
	built, err := BuildTable(probe, opts)
	if err != nil {
		t.Fatal(err)
	}
	entrySize := int64(len(encodeTableV2(contentKey(probe, opts.normalized()), built)))

	var cache Cache
	cache.SetDir(dir)
	cache.SetDiskLimit(2*entrySize + entrySize/2)
	sink := telemetry.New()
	var lastKey string
	for seed := int64(101); seed <= 105; seed++ {
		c := compressibleCore(seed)
		if _, err := cache.get(context.Background(), c, opts, sink); err != nil {
			t.Fatal(err)
		}
		lastKey = contentKey(c, opts.normalized())
	}

	files := cacheDirEntries(t, dir)
	var total int64
	for _, f := range files {
		info, err := os.Stat(f)
		if err != nil {
			t.Fatal(err)
		}
		total += info.Size()
	}
	if total > 2*entrySize+entrySize/2 {
		t.Errorf("store holds %d bytes, budget %d", total, 2*entrySize+entrySize/2)
	}
	if len(files) > 2 {
		t.Errorf("%d entries survived a two-entry budget", len(files))
	}
	cn := sink.Snapshot().Counters
	if cn["diskcache.evictions"] < 3 {
		t.Errorf("diskcache.evictions = %d, want >= 3 (counters: %v)", cn["diskcache.evictions"], cn)
	}
	if got := cn["diskcache.bytes"]; got != total {
		t.Errorf("diskcache.bytes = %d, want the %d resident bytes (net of evictions)", got, total)
	}
	// The most recently stored entry must have survived.
	if _, err := os.Stat(diskPath(dir, lastKey)); err != nil {
		t.Errorf("most recent entry was evicted: %v", err)
	}

	// A restarting process (fresh index, built by directory scan) keeps
	// enforcing the budget.
	var second Cache
	second.SetDir(dir)
	second.SetDiskLimit(entrySize + entrySize/2)
	sink2 := telemetry.New()
	if _, err := second.get(context.Background(), compressibleCore(106), opts, sink2); err != nil {
		t.Fatal(err)
	}
	files = cacheDirEntries(t, dir)
	if len(files) > 1 {
		t.Errorf("%d entries survived a one-entry budget after restart", len(files))
	}
}

// TestCacheMemBound: a memory budget smaller than one table still
// caches nothing permanently — every Get past the first rebuilds — and
// the accounting returns to zero; without a budget the second Get is a
// pure memory hit.
func TestCacheMemBound(t *testing.T) {
	c := compressibleCore(41)
	opts := TableOptions{MaxWidth: 8}

	var bounded Cache
	bounded.SetMemLimit(1)
	var builds atomic.Int64
	bounded.buildHook = func(*soc.Core, TableOptions) { builds.Add(1) }
	sink := telemetry.New()
	first, err := bounded.get(context.Background(), c, opts, sink)
	if err != nil {
		t.Fatal(err)
	}
	second, err := bounded.get(context.Background(), c, opts, sink)
	if err != nil {
		t.Fatal(err)
	}
	if n := builds.Load(); n != 2 {
		t.Errorf("%d builds under a 1-byte budget, want 2 (nothing may stay resident)", n)
	}
	if !reflect.DeepEqual(first, second) {
		t.Error("rebuilt table differs")
	}
	cn := sink.Snapshot().Counters
	if cn["cache.evictions"] != 2 {
		t.Errorf("cache.evictions = %d, want 2", cn["cache.evictions"])
	}
	if cn["cache.bytes"] != 0 {
		t.Errorf("cache.bytes = %d, want 0 after self-eviction", cn["cache.bytes"])
	}

	// Ample budget: entries stay resident and accounting matches the
	// estimator.
	var roomy Cache
	roomy.SetMemLimit(64 << 20)
	var builds2 atomic.Int64
	roomy.buildHook = func(*soc.Core, TableOptions) { builds2.Add(1) }
	sink2 := telemetry.New()
	if _, err := roomy.get(context.Background(), c, opts, sink2); err != nil {
		t.Fatal(err)
	}
	tab, err := roomy.get(context.Background(), c, opts, sink2)
	if err != nil {
		t.Fatal(err)
	}
	if n := builds2.Load(); n != 1 {
		t.Errorf("%d builds with an ample budget, want 1", n)
	}
	cn2 := sink2.Snapshot().Counters
	if cn2["cache.evictions"] != 0 || cn2["cache.bytes"] != tableMemBytes(tab) {
		t.Errorf("ample-budget accounting: %v, want 0 evictions and bytes = %d", cn2, tableMemBytes(tab))
	}
}

// TestCacheMemBoundEvictsLRU: with room for roughly one table per
// shard-resident key, the least recently used entry goes first — the
// re-touched key survives while the untouched one is evicted (observable
// as exactly one extra rebuild).
func TestCacheMemBoundEvictsLRU(t *testing.T) {
	// Three cores whose keys land in one shard would be ideal, but shard
	// placement is hash-determined; instead give the whole cache a
	// budget of ~one table so every shard holds at most one, and drive
	// one shard with two keys by brute-force search.
	opts := TableOptions{MaxWidth: 8}
	var cc Cache
	probe, err := BuildTable(compressibleCore(200), opts)
	if err != nil {
		t.Fatal(err)
	}
	size := tableMemBytes(probe)

	// Find two seeds whose keys share a shard.
	base := contentKey(compressibleCore(200), opts.normalized())
	shardOf := func(key string) *cacheShard { return cc.shard(key) }
	want := shardOf(base)
	var partner int64
	for seed := int64(201); ; seed++ {
		if shardOf(contentKey(compressibleCore(seed), opts.normalized())) == want {
			partner = seed
			break
		}
	}

	cc.SetMemLimit(size * cacheShards) // ~one resident table per shard
	var builds atomic.Int64
	cc.buildHook = func(*soc.Core, TableOptions) { builds.Add(1) }

	a, b := compressibleCore(200), compressibleCore(partner)
	if _, err := cc.Get(a, opts); err != nil { // build a, resident
		t.Fatal(err)
	}
	if _, err := cc.Get(b, opts); err != nil { // build b, evicts a (LRU)
		t.Fatal(err)
	}
	if _, err := cc.Get(b, opts); err != nil { // touch b: still resident
		t.Fatal(err)
	}
	if n := builds.Load(); n != 2 {
		t.Fatalf("%d builds in setup, want 2 (b must still be resident)", n)
	}
	if _, err := cc.Get(a, opts); err != nil { // a was evicted: rebuild
		t.Fatal(err)
	}
	if n := builds.Load(); n != 3 {
		t.Errorf("%d builds after re-Get of the evicted key, want 3", n)
	}
}

// TestCacheShardedConcurrency hammers many goroutines across many keys
// on one Cache: every key must build exactly once (singleflight per
// shard), every caller of a key must see the identical table pointer,
// and — under -race via `make cachefmt` — the sharded map and LRU must
// be data-race-free.
func TestCacheShardedConcurrency(t *testing.T) {
	const keys = 8
	const callersPerKey = 8
	opts := TableOptions{MaxWidth: 6, Workers: 1}

	var cc Cache
	buildCounts := make([]atomic.Int64, keys)
	coreSeed := func(i int) int64 { return int64(300 + i) }
	cc.buildHook = func(c *soc.Core, _ TableOptions) {
		for i := 0; i < keys; i++ {
			if c.Seed == coreSeed(i) {
				buildCounts[i].Add(1)
			}
		}
	}

	results := make([][]*Table, keys)
	for i := range results {
		results[i] = make([]*Table, callersPerKey)
	}
	var wg sync.WaitGroup
	for i := 0; i < keys; i++ {
		for j := 0; j < callersPerKey; j++ {
			wg.Add(1)
			go func(i, j int) {
				defer wg.Done()
				tab, err := cc.Get(compressibleCore(coreSeed(i)), opts)
				if err != nil {
					t.Errorf("key %d caller %d: %v", i, j, err)
					return
				}
				results[i][j] = tab
			}(i, j)
		}
	}
	wg.Wait()

	for i := 0; i < keys; i++ {
		if n := buildCounts[i].Load(); n != 1 {
			t.Errorf("key %d built %d times, want exactly 1", i, n)
		}
		for j := 1; j < callersPerKey; j++ {
			if results[i][j] != results[i][0] {
				t.Errorf("key %d caller %d received a different table instance", i, j)
			}
		}
	}
}

// TestCacheShardSpread sanity-checks the shard function: real content
// keys must not all collapse onto a few shards.
func TestCacheShardSpread(t *testing.T) {
	var cc Cache
	used := map[*cacheShard]bool{}
	opts := TableOptions{}.normalized()
	for seed := int64(0); seed < 200; seed++ {
		used[cc.shard(contentKey(compressibleCore(seed), opts))] = true
	}
	if len(used) < cacheShards/2 {
		t.Errorf("200 keys landed on only %d/%d shards", len(used), cacheShards)
	}
}

// TestDiskCacheBitFlipNeverPanics complements the fault-injection
// suite: flipping any single byte of a valid v2 entry must either still
// load the identical table (flips in slack bits) or land in
// diskcache.corrupt_rebuilds — never panic, never alter the result.
func TestDiskCacheBitFlipNeverPanics(t *testing.T) {
	c := compressibleCore(51)
	opts := TableOptions{MaxWidth: 6}
	dir := t.TempDir()
	var warm Cache
	warm.SetDir(dir)
	good, err := warm.Get(c, opts)
	if err != nil {
		t.Fatal(err)
	}
	key := contentKey(c, opts.normalized())
	path := diskPath(dir, key)
	orig, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	stride := len(orig)/64 + 1
	for off := 0; off < len(orig); off += stride {
		for _, bit := range []byte{0x01, 0x80} {
			mut := append([]byte(nil), orig...)
			mut[off] ^= bit
			if err := os.WriteFile(path, mut, 0o644); err != nil {
				t.Fatal(err)
			}
			var cold Cache
			cold.SetDir(dir)
			sink := telemetry.New()
			tab, err := cold.get(context.Background(), c, opts, sink)
			if err != nil {
				t.Fatalf("offset %d bit %#x: %v", off, bit, err)
			}
			if tab.Best[6] != good.Best[6] {
				t.Fatalf("offset %d bit %#x: table silently changed", off, bit)
			}
			cn := sink.Snapshot().Counters
			if cn["diskcache.corrupt_rebuilds"]+cn["diskcache.hits"] != 1 {
				t.Fatalf("offset %d bit %#x: probe neither hit nor corrupt: %v", off, bit, cn)
			}
		}
	}
	// Restore a clean entry for no other reason than leaving the tempdir
	// consistent if later asserts are added.
	if err := os.WriteFile(path, orig, 0o644); err != nil {
		t.Fatal(err)
	}
}
