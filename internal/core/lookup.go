package core

import (
	"fmt"
	"sync"

	"soctap/internal/selenc"
	"soctap/internal/soc"
)

// TableOptions controls per-core lookup table construction.
type TableOptions struct {
	// MaxWidth is the largest TAM width the table covers. Zero defaults
	// to 64.
	MaxWidth int
	// BandSamples bounds the number of m values evaluated inside each
	// codeword-width band. Bands no larger than the bound are swept
	// exhaustively; larger bands are sampled uniformly, always including
	// both band edges. Zero defaults to 48; negative means exhaustive.
	BandSamples int
}

func (o TableOptions) withDefaults() TableOptions {
	if o.MaxWidth == 0 {
		o.MaxWidth = 64
	}
	if o.BandSamples == 0 {
		o.BandSamples = 48
	}
	return o
}

// Table holds, for one core, the best test configuration at every TAM
// width from 1 to MaxWidth, for each access style.
type Table struct {
	Core *soc.Core
	Opts TableOptions

	// NoTDC[u] is the direct-access configuration using u wrapper chains
	// (clamped to the core's maximum useful chains).
	NoTDC []Config
	// TDCExact[u] is the best decompressor configuration whose input
	// width is exactly u, i.e. the best m in u's band (infeasible when
	// the band lies wholly above the core's maximum chains or u < 3).
	TDCExact []Config
	// TDCBest[u] is the best decompressor configuration with input
	// width at most u (unused TAM wires are left idle).
	TDCBest []Config
	// Best[u] is the proposed style's choice: the better of NoTDC[u]
	// and TDCBest[u].
	Best []Config
}

// BuildTable constructs the lookup table for one core by exhaustive
// wrapper design on the no-TDC side and banded (w, m) exploration on the
// TDC side, exactly as Section 2 of the paper prescribes.
func BuildTable(c *soc.Core, opts TableOptions) (*Table, error) {
	opts = opts.withDefaults()
	if opts.MaxWidth < 1 {
		return nil, fmt.Errorf("core: MaxWidth %d", opts.MaxWidth)
	}
	if _, err := c.TestSet(); err != nil {
		return nil, err
	}
	t := &Table{
		Core:     c,
		Opts:     opts,
		NoTDC:    make([]Config, opts.MaxWidth+1),
		TDCExact: make([]Config, opts.MaxWidth+1),
		TDCBest:  make([]Config, opts.MaxWidth+1),
		Best:     make([]Config, opts.MaxWidth+1),
	}
	maxM := c.MaxWrapperChains()

	for u := 1; u <= opts.MaxWidth; u++ {
		m := u
		if m > maxM {
			m = maxM
		}
		cfg, err := EvalNoTDC(c, m)
		if err != nil {
			return nil, err
		}
		// Width is the full TAM allocation even when chains are clamped.
		cfg.Width = u
		t.NoTDC[u] = cfg
	}

	for w := 3; w <= opts.MaxWidth; w++ {
		lo, hi, err := selenc.MBand(w)
		if err != nil {
			return nil, err
		}
		if lo > maxM {
			break // all wider bands are infeasible too
		}
		if hi > maxM {
			hi = maxM
		}
		best := Config{}
		for _, m := range sampleBand(lo, hi, opts.BandSamples) {
			cfg, err := EvalTDC(c, m)
			if err != nil {
				return nil, err
			}
			if cfg.better(best) {
				best = cfg
			}
		}
		t.TDCExact[w] = best
	}

	for u := 1; u <= opts.MaxWidth; u++ {
		best := Config{}
		if u >= 3 {
			best = t.TDCBest[u-1]
			if t.TDCExact[u].better(best) {
				best = t.TDCExact[u]
			}
		}
		t.TDCBest[u] = best
		if t.NoTDC[u].better(best) {
			t.Best[u] = t.NoTDC[u]
		} else {
			t.Best[u] = best
		}
	}
	return t, nil
}

// sampleBand returns the m values to evaluate in [lo, hi]: exhaustive
// when the band fits within `samples`, else `samples` points spread
// uniformly and including both edges. samples < 0 means exhaustive.
func sampleBand(lo, hi, samples int) []int {
	n := hi - lo + 1
	if samples < 0 || n <= samples {
		out := make([]int, 0, n)
		for m := lo; m <= hi; m++ {
			out = append(out, m)
		}
		return out
	}
	if samples == 1 {
		return []int{hi}
	}
	out := make([]int, 0, samples)
	prev := -1
	for i := 0; i < samples; i++ {
		m := lo + (n-1)*i/(samples-1)
		if m != prev {
			out = append(out, m)
			prev = m
		}
	}
	return out
}

// SweepTDC evaluates every m in [lo, hi] (inclusive, clamped to the
// core's feasible range) with the decompressor enabled, returning one
// Config per m in order. This drives the Figure 2 analysis.
func SweepTDC(c *soc.Core, lo, hi int) ([]Config, error) {
	if lo < 1 {
		lo = 1
	}
	if maxM := c.MaxWrapperChains(); hi > maxM {
		hi = maxM
	}
	if hi < lo {
		return nil, fmt.Errorf("core: empty sweep range [%d,%d] for %s", lo, hi, c.Name)
	}
	out := make([]Config, 0, hi-lo+1)
	for m := lo; m <= hi; m++ {
		cfg, err := EvalTDC(c, m)
		if err != nil {
			return nil, err
		}
		out = append(out, cfg)
	}
	return out, nil
}

// Cache memoizes lookup tables across optimizer runs. Tables are keyed
// by core identity and option set; the zero value is ready to use.
type Cache struct {
	mu     sync.Mutex
	tables map[cacheKey]*Table
}

type cacheKey struct {
	core *soc.Core
	opts TableOptions
}

// Get returns the memoized table for (c, opts), building it on first
// use.
func (cc *Cache) Get(c *soc.Core, opts TableOptions) (*Table, error) {
	opts = opts.withDefaults()
	key := cacheKey{core: c, opts: opts}
	cc.mu.Lock()
	if t, ok := cc.tables[key]; ok {
		cc.mu.Unlock()
		return t, nil
	}
	cc.mu.Unlock()

	t, err := BuildTable(c, opts)
	if err != nil {
		return nil, err
	}
	cc.mu.Lock()
	if cc.tables == nil {
		cc.tables = make(map[cacheKey]*Table)
	}
	cc.tables[key] = t
	cc.mu.Unlock()
	return t, nil
}
