package core

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"soctap/internal/selenc"
	"soctap/internal/soc"
	"soctap/internal/telemetry"
	"soctap/internal/wrapper"
)

// TableOptions controls per-core lookup table construction.
type TableOptions struct {
	// MaxWidth is the largest TAM width the table covers. Zero defaults
	// to 64.
	MaxWidth int
	// BandSamples bounds the number of m values evaluated inside each
	// codeword-width band. Bands no larger than the bound are swept
	// exhaustively; larger bands are sampled uniformly, always including
	// both band edges. Zero defaults to 48; negative means exhaustive.
	BandSamples int
	// Workers bounds the goroutines used to evaluate the table's (w, m)
	// points. Zero defaults to runtime.GOMAXPROCS(0); 1 runs entirely on
	// the calling goroutine. The table contents are bit-identical for
	// every setting (workers write indexed slots and the reduction is
	// sequential), so Workers is excluded from cache keys and from the
	// options recorded on the table.
	Workers int
	// DisablePruning turns off the incumbent lower-bound pruning of the
	// banded (w, m) sweep. Pruning is exact — only provably dominated
	// candidates are skipped and the table is bit-identical either way
	// (see bandBounds and the golden-equivalence test) — so the knob
	// exists for verification and benchmark comparison and, like
	// Workers, is erased from cache keys and recorded options.
	DisablePruning bool
	// EvalWindow selects the evaluator's residency mode (see
	// NewEvaluatorWindow): 0 picks automatically by core size, > 0
	// streams the test set in windows of that many cubes, EvalWindowAll
	// streams the whole set as one window. Streamed and resident builds
	// produce bit-identical tables (the streaming-equivalence gate), so
	// EvalWindow only moves peak memory and — like Workers — is erased
	// from cache keys and from the options recorded on the table.
	EvalWindow int
	// DisableFusion turns off the fused single-pass (w, m) sweep on the
	// streaming path, falling back to one full source pass per
	// evaluation point (resident builds never fuse — the set is already
	// in memory). Fusion is exact: fused and unfused tables are
	// bit-identical (the fused-equivalence gate), so the knob exists for
	// verification and benchmarking and — like Workers — is erased from
	// cache keys and from the options recorded on the table.
	DisableFusion bool
}

func (o TableOptions) withDefaults() TableOptions {
	if o.MaxWidth == 0 {
		o.MaxWidth = 64
	}
	if o.BandSamples == 0 {
		o.BandSamples = 48
	}
	return o
}

// normalized is withDefaults plus the erasure of options that do not
// affect table contents — the identity used for cache keys and recorded
// in Table.Opts.
func (o TableOptions) normalized() TableOptions {
	o = o.withDefaults()
	o.Workers = 0
	o.DisablePruning = false
	o.EvalWindow = 0
	o.DisableFusion = false
	return o
}

// streamingEval reports whether the EvalWindow setting selects the
// streaming evaluator path for this core — explicitly (non-zero
// window), or automatically when the raw stimulus image crosses the
// residency threshold. Mirrors NewEvaluatorWindow's mode choice.
func streamingEval(c *soc.Core, window int) bool {
	return window != 0 || c.StimulusVolumeBits() >= autoStreamRawBits
}

// resolveWorkers maps a Workers option to an actual pool size: zero (or
// negative) means one worker per available CPU, and the pool never
// exceeds the task count.
func resolveWorkers(workers, tasks int) int {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > tasks {
		workers = tasks
	}
	if workers < 1 {
		workers = 1
	}
	return workers
}

// forEachEval runs fn(ev, i) for every i in [0, n) over a pool of
// workers, giving each worker its own Evaluator for the core (the
// per-worker scratch state of the hot kernel). Tasks must write results
// to indexed slots so the outcome is independent of scheduling; with
// workers <= 1 everything runs on the calling goroutine. The first
// error (by task index) is returned. A non-nil tel attaches kernel
// counters to every evaluator and accounts worker-slot busy time.
//
// ctx cancels the pool cooperatively: workers stop claiming tasks once
// ctx is done and the evaluators themselves check the context at every
// (w, m) kernel entry, so cancellation lands mid-band too. A panic in
// fn is contained on the worker that raised it and surfaces as a
// *PanicError naming point(i) — never as a process crash.
func forEachEval(ctx context.Context, c *soc.Core, workers, window, n int, tel *telemetry.Sink, point func(i int) string, fn func(ev *Evaluator, i int) error) error {
	if n <= 0 {
		return nil
	}
	busy := tel.Timer("eval.worker_busy")
	run := func(ev *Evaluator, i int) (err error) {
		defer func() {
			if r := recover(); r != nil {
				tel.Counter("panic.recovered").Inc()
				p := fmt.Sprintf("task %d", i)
				if point != nil {
					p = point(i)
				}
				err = newPanicError(c.Name, p, r)
			}
		}()
		return fn(ev, i)
	}
	workers = resolveWorkers(workers, n)
	if workers == 1 {
		ev, err := NewEvaluatorWindow(c, window)
		if err != nil {
			return err
		}
		ev.attachTelemetry(tel)
		ev.bindContext(ctx)
		if busy != nil {
			t0 := time.Now()
			defer func() { busy.Add(time.Since(t0)) }()
		}
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			if err := run(ev, i); err != nil {
				return err
			}
		}
		return nil
	}

	errs := make([]error, n)
	var initOnce sync.Once
	var initErr error
	var next atomic.Int64
	var failed atomic.Bool
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// Backstop for panics outside run's own recovery (evaluator
			// construction, point): a panic on a worker goroutine that
			// escaped would kill the process, not just the call.
			defer func() {
				if r := recover(); r != nil {
					tel.Counter("panic.recovered").Inc()
					initOnce.Do(func() { initErr = newPanicError(c.Name, "worker setup", r) })
					failed.Store(true)
				}
			}()
			if busy != nil {
				t0 := time.Now()
				defer func() { busy.Add(time.Since(t0)) }()
			}
			ev, err := NewEvaluatorWindow(c, window)
			if err != nil {
				initOnce.Do(func() { initErr = err })
				failed.Store(true)
				return
			}
			ev.attachTelemetry(tel)
			ev.bindContext(ctx)
			for !failed.Load() {
				if ctx.Err() != nil {
					return
				}
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				if err := run(ev, i); err != nil {
					errs[i] = err
					failed.Store(true)
					return
				}
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	return initErr
}

// Table holds, for one core, the best test configuration at every TAM
// width from 1 to MaxWidth, for each access style.
type Table struct {
	Core *soc.Core
	Opts TableOptions

	// NoTDC[u] is the direct-access configuration using u wrapper chains
	// (clamped to the core's maximum useful chains).
	NoTDC []Config
	// TDCExact[u] is the best decompressor configuration whose input
	// width is exactly u, i.e. the best m in u's band (infeasible when
	// the band lies wholly above the core's maximum chains or u < 3).
	TDCExact []Config
	// TDCBest[u] is the best decompressor configuration with input
	// width at most u (unused TAM wires are left idle).
	TDCBest []Config
	// Best[u] is the proposed style's choice: the better of NoTDC[u]
	// and TDCBest[u].
	Best []Config
}

// BuildTable constructs the lookup table for one core by exhaustive
// wrapper design on the no-TDC side and banded (w, m) exploration on the
// TDC side, exactly as Section 2 of the paper prescribes. The (w, m)
// evaluations — the dominant CPU cost of every experiment — fan out
// over Opts.Workers goroutines; the result is bit-identical to a
// sequential build.
func BuildTable(c *soc.Core, opts TableOptions) (*Table, error) {
	return buildTable(context.Background(), c, opts, nil)
}

// BuildTableContext is BuildTable governed by ctx: cancellation is
// observed between evaluation points and inside the kernels themselves,
// so a cancelled build returns ctx.Err() promptly. A nil ctx behaves
// like context.Background(), and an uncancelled build is bit-identical
// to BuildTable.
func BuildTableContext(ctx context.Context, c *soc.Core, opts TableOptions) (*Table, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	return buildTable(ctx, c, opts, nil)
}

// buildTable is BuildTable with an optional telemetry sink: kernel
// counters attach to every worker's evaluator, worker busy time is
// accounted, and the build itself is counted.
func buildTable(ctx context.Context, c *soc.Core, opts TableOptions, tel *telemetry.Sink) (*Table, error) {
	opts = opts.withDefaults()
	if opts.MaxWidth < 1 {
		return nil, fmt.Errorf("core: MaxWidth %d", opts.MaxWidth)
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	// Validate the core's test set up front. In resident mode this also
	// generates it, warming the cache every worker's Evaluator shares;
	// in streaming mode materializing the set would defeat the windowed
	// path's O(window) residency, so only the spec is validated (a
	// source probe generates nothing).
	if streamingEval(c, opts.EvalWindow) {
		if _, err := c.TestSource(); err != nil {
			return nil, err
		}
	} else if _, err := c.TestSet(); err != nil {
		return nil, err
	}
	t := &Table{
		Core:     c,
		Opts:     opts.normalized(),
		NoTDC:    make([]Config, opts.MaxWidth+1),
		TDCExact: make([]Config, opts.MaxWidth+1),
		TDCBest:  make([]Config, opts.MaxWidth+1),
		Best:     make([]Config, opts.MaxWidth+1),
	}
	maxM := c.MaxWrapperChains()

	// Collect the TDC evaluation points: each codeword-width band is one
	// unit that sweeps its sampled m values highest first, pruning
	// candidates whose lower bound is strictly worse than the band
	// incumbent (see sweepBand and sweepBandsFused). Band-granular
	// incumbents keep both the winner and the prune counters
	// deterministic for any worker count.
	var bands []bandJob
	for w := 3; w <= opts.MaxWidth; w++ {
		lo, hi, err := selenc.MBand(w)
		if err != nil {
			return nil, err
		}
		if lo > maxM {
			break // all wider bands are infeasible too
		}
		if hi > maxM {
			hi = maxM
		}
		bands = append(bands, bandJob{w: w, ms: sampleBand(lo, hi, opts.BandSamples)})
	}

	// The no-TDC side only depends on the clamped chain count, so the
	// distinct designs are m = 1..min(MaxWidth, maxM); widths beyond
	// maxM reuse the maxM configuration with the width relabeled.
	directM := opts.MaxWidth
	if directM > maxM {
		directM = maxM
	}
	direct := make([]Config, directM+1)

	tel.Counter("tables.built").Inc()
	buildStart := time.Now()
	pc := pruneCounters{
		pruned:     tel.Counter("eval.pruned"),
		corePruned: tel.Counter("prune." + c.Name + ".pruned"),
		coreEvals:  tel.Counter("prune." + c.Name + ".evals"),
	}
	point := func(i int) string {
		if i < directM {
			return fmt.Sprintf("no-tdc m=%d", i+1)
		}
		return fmt.Sprintf("tdc band w=%d", bands[i-directM].w)
	}
	// On the streaming path the banded sweep fuses: every loaded window
	// is priced against all active (w, m) points before the next loads,
	// so the source is traversed once per batch instead of once per
	// point. The no-TDC side is closed-form (no cube pass) and stays on
	// the plain worker pool either way.
	fused := streamingEval(c, opts.EvalWindow) && !opts.DisableFusion
	n := directM + len(bands)
	if fused {
		n = directM
	}
	err := forEachEval(ctx, c, opts.Workers, opts.EvalWindow, n, tel, point, func(ev *Evaluator, i int) error {
		if i < directM {
			cfg, err := ev.NoTDC(i + 1)
			if err != nil {
				return err
			}
			direct[i+1] = cfg
			return nil
		}
		b := &bands[i-directM]
		best, err := sweepBand(ev, b.w, b.ms, opts.DisablePruning, pc)
		if err != nil {
			return err
		}
		b.best = best
		return nil
	})
	if err == nil && fused && len(bands) > 0 {
		err = sweepBandsFused(ctx, c, opts, bands, pc, tel)
	}
	if err != nil {
		if canceled(err) {
			tel.Counter("cancel.table_builds").Inc()
		}
		return nil, err
	}

	// Deterministic reduction, identical to the sequential sweep order.
	for u := 1; u <= opts.MaxWidth; u++ {
		m := u
		if m > directM {
			m = directM
		}
		cfg := direct[m]
		// Width is the full TAM allocation even when chains are clamped.
		cfg.Width = u
		t.NoTDC[u] = cfg
	}
	for _, b := range bands {
		t.TDCExact[b.w] = b.best
	}
	for u := 1; u <= opts.MaxWidth; u++ {
		best := Config{}
		if u >= 3 {
			best = t.TDCBest[u-1]
			if t.TDCExact[u].better(best) {
				best = t.TDCExact[u]
			}
		}
		t.TDCBest[u] = best
		if t.NoTDC[u].better(best) {
			t.Best[u] = t.NoTDC[u]
		} else {
			t.Best[u] = best
		}
	}
	// One observation per completed build: the count mirrors
	// tables.built on clean runs (failed/cancelled builds are absent),
	// the distribution is wall clock.
	tel.Histogram("tables.build_seconds").Observe(time.Since(buildStart))
	return t, nil
}

// bandJob is one codeword-width band of the TDC sweep: the sampled m
// values and, once swept, the band's winning configuration.
type bandJob struct {
	w    int
	ms   []int
	best Config
}

// pruneCounters carries the (nil-safe) telemetry counters of the band
// sweep: pruned candidates globally and pruned/evaluated per core.
type pruneCounters struct {
	pruned     *telemetry.Counter
	corePruned *telemetry.Counter
	coreEvals  *telemetry.Counter
}

// sweepBand finds the best TDC configuration in one codeword-width
// band, sweeping the sampled m values from highest to lowest. With
// pruning enabled, each candidate is first checked against two
// admissible lower bounds — one from the core alone (no wrapper
// design), then one from the exact wrapper depths — and skipped when
// the bound is already strictly lex-worse (time, then volume) than the
// incumbent.
//
// The result is identical to evaluating every candidate: both bounds
// are true lower bounds on (time, volume), so a pruned candidate's
// actual cost is strictly worse than the incumbent and can never be the
// band winner; lex-equal candidates are never pruned (their bound is
// not strictly worse) and ties resolve to the smallest m exactly as an
// ascending first-win reduction would.
func sweepBand(ev *Evaluator, w int, ms []int, disablePruning bool, pc pruneCounters) (Config, error) {
	var best Config
	for i := len(ms) - 1; i >= 0; i-- {
		m := ms[i]
		if best.Feasible && !disablePruning {
			if bt, bv := coreBound(ev, m, w); boundWorse(bt, bv, best) {
				pc.pruned.Inc()
				pc.corePruned.Inc()
				continue
			}
			d, err := ev.Design(m)
			if err != nil {
				return Config{}, err
			}
			if bt, bv := designBound(ev, d, w); boundWorse(bt, bv, best) {
				pc.pruned.Inc()
				pc.corePruned.Inc()
				continue
			}
		}
		cfg, err := ev.TDC(m, true)
		if err != nil {
			return Config{}, err
		}
		pc.coreEvals.Inc()
		// Replace on lex-<=: at equal (time, volume) the smaller m wins,
		// matching the ascending-order reduction.
		if !best.better(cfg) {
			best = cfg
		}
	}
	return best, nil
}

// boundWorse reports whether a (time, volume) lower bound is strictly
// lex-worse than the incumbent — the pruning condition.
func boundWorse(bt, bv int64, best Config) bool {
	return bt > best.Time || (bt == best.Time && bv > best.Volume)
}

// coreBound is an admissible (time, volume) lower bound for the TDC
// configuration at m wrapper chains, computed from the core alone:
//
//	si >= max(longest scan chain, ceil(stimulus bits / m))
//	so >= max(longest scan chain, ceil(response bits / m))
//
// (any wrapper chain holding the longest internal scan chain is at
// least that deep, and m chains must share all cells), and then
//
//	τ = cw_1 + Σ_{j>1} max(cw_j, so) + p + so >= si + (p-1)·max(si,so) + p + so
//	V = totalCW·w               >= p·si·w
//
// since every pattern emits at least one codeword per scan-in slice
// (the slice headers).
func coreBound(ev *Evaluator, m, w int) (timeLB, volLB int64) {
	c := ev.core
	maxScan := 0
	for _, l := range c.ScanChains {
		if l > maxScan {
			maxScan = l
		}
	}
	si := (c.StimulusBits() + m - 1) / m
	if maxScan > si {
		si = maxScan
	}
	so := (c.ResponseBits() + m - 1) / m
	if maxScan > so {
		so = maxScan
	}
	return slicesBound(ev.patterns, int64(si), int64(so), int64(w))
}

// designBound is coreBound with the exact scan-in/scan-out depths of a
// built wrapper design — tighter, at the price of the design itself.
func designBound(ev *Evaluator, d *wrapper.Design, w int) (timeLB, volLB int64) {
	return slicesBound(ev.patterns, int64(d.ScanIn), int64(d.ScanOut), int64(w))
}

func slicesBound(p int, si, so, w int64) (timeLB, volLB int64) {
	timeLB = int64(p) + so
	if p >= 1 {
		maxL := si
		if so > maxL {
			maxL = so
		}
		timeLB += si + int64(p-1)*maxL
	}
	return timeLB, int64(p) * si * w
}

// sampleBand returns the m values to evaluate in [lo, hi]: exhaustive
// when the band fits within `samples`, else `samples` points spread
// uniformly and including both edges. samples < 0 means exhaustive.
func sampleBand(lo, hi, samples int) []int {
	n := hi - lo + 1
	if samples < 0 || n <= samples {
		out := make([]int, 0, n)
		for m := lo; m <= hi; m++ {
			out = append(out, m)
		}
		return out
	}
	if samples == 1 {
		return []int{hi}
	}
	out := make([]int, 0, samples)
	prev := -1
	for i := 0; i < samples; i++ {
		m := lo + (n-1)*i/(samples-1)
		if m != prev {
			out = append(out, m)
			prev = m
		}
	}
	return out
}

// SweepTDC evaluates every m in [lo, hi] (inclusive, clamped to the
// core's feasible range) with the decompressor enabled, returning one
// Config per m in order, using one worker per available CPU. This
// drives the Figure 2 analysis.
func SweepTDC(c *soc.Core, lo, hi int) ([]Config, error) {
	return SweepTDCWorkers(c, lo, hi, 0)
}

// SweepTDCWorkers is SweepTDC with an explicit worker bound (zero means
// runtime.GOMAXPROCS(0), 1 is fully sequential). The result is
// identical for every bound.
func SweepTDCWorkers(c *soc.Core, lo, hi, workers int) ([]Config, error) {
	return SweepTDCContext(context.Background(), c, lo, hi, workers)
}

// SweepTDCContext is SweepTDCWorkers governed by ctx: cancellation is
// observed between m points and inside the kernels, so a cancelled
// sweep returns ctx.Err() promptly. A nil ctx behaves like
// context.Background(); an uncancelled sweep is identical to
// SweepTDCWorkers.
func SweepTDCContext(ctx context.Context, c *soc.Core, lo, hi, workers int) ([]Config, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if lo < 1 {
		lo = 1
	}
	if maxM := c.MaxWrapperChains(); hi > maxM {
		hi = maxM
	}
	if hi < lo {
		return nil, fmt.Errorf("core: empty sweep range [%d,%d] for %s", lo, hi, c.Name)
	}
	if streamingEval(c, 0) {
		if _, err := c.TestSource(); err != nil {
			return nil, err
		}
	} else if _, err := c.TestSet(); err != nil {
		return nil, err
	}
	out := make([]Config, hi-lo+1)
	point := func(i int) string { return fmt.Sprintf("tdc m=%d", lo+i) }
	err := forEachEval(ctx, c, workers, 0, len(out), nil, point, func(ev *Evaluator, i int) error {
		cfg, err := ev.TDC(lo+i, true)
		if err != nil {
			return err
		}
		out[i] = cfg
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}
