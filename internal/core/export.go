package core

import (
	"encoding/json"
	"io"
)

// PlanJSON is the serializable form of a Result, for handing the test
// plan to downstream tooling (DFT insertion, ATE program generation).
type PlanJSON struct {
	Design    string       `json:"design"`
	Style     string       `json:"style"`
	WTAM      int          `json:"wtam"`
	Partition []int        `json:"partition"`
	TestTime  int64        `json:"test_time_cycles"`
	Volume    int64        `json:"ate_volume_bits"`
	Cores     []CoreJSON   `json:"cores"`
	Hardware  HardwareJSON `json:"hardware"`
	CPU       CPUJSON      `json:"cpu_seconds"`
}

// CoreJSON is one core's plan entry.
type CoreJSON struct {
	Core      string `json:"core"`
	Bus       int    `json:"bus"`
	Start     int64  `json:"start_cycle"`
	Cycles    int64  `json:"cycles"`
	Codec     string `json:"codec"` // "direct", "selenc" or "dict"
	Width     int    `json:"tam_wires"`
	M         int    `json:"wrapper_chains"`
	DictWords int    `json:"dict_words,omitempty"`
	Volume    int64  `json:"volume_bits"`
}

// HardwareJSON summarizes the decompression hardware of the plan.
type HardwareJSON struct {
	Decompressors int `json:"decompressors"`
	FlipFlops     int `json:"flip_flops"`
	Gates         int `json:"gates"`
	InternalWires int `json:"internal_wires"`
}

// CPUJSON records planning effort.
type CPUJSON struct {
	Tables float64 `json:"tables"`
	Search float64 `json:"search"`
}

// Plan converts the result into its serializable form.
func (r *Result) Plan() PlanJSON {
	p := PlanJSON{
		Design:    r.SOC.Name,
		Style:     r.Style.String(),
		WTAM:      r.WTAM,
		Partition: append([]int(nil), r.Partition...),
		TestTime:  r.TestTime,
		Volume:    r.Volume,
		Hardware: HardwareJSON{
			Decompressors: r.Decompressors,
			FlipFlops:     r.DecompFFs,
			Gates:         r.DecompGates,
			InternalWires: r.InternalWires,
		},
		CPU: CPUJSON{Tables: r.TableSeconds, Search: r.CPUSeconds},
	}
	for _, ch := range r.Choices {
		codec := ch.Config.Codec
		if codec == CodecDirect {
			codec = "direct"
		}
		p.Cores = append(p.Cores, CoreJSON{
			Core:      ch.Core,
			Bus:       ch.Bus,
			Start:     ch.Start,
			Cycles:    ch.Config.Time,
			Codec:     codec,
			Width:     ch.Config.Width,
			M:         ch.Config.M,
			DictWords: ch.Config.DictWords,
			Volume:    ch.Config.Volume,
		})
	}
	return p
}

// WritePlan writes the result as indented JSON.
func (r *Result) WritePlan(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.Plan())
}
