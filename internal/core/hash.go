package core

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"hash"
	"math"

	"soctap/internal/soc"
)

// contentKey returns a hex digest identifying the lookup table for
// (core, options): a hash of every core field that influences table
// contents plus the normalized TableOptions. Two structurally identical
// cores — e.g. the same design parsed from disk twice — produce the same
// key, so they share in-memory cache entries and on-disk cache files.
// Gate count is deliberately excluded (it never enters a Config);
// Workers is erased by normalization.
//
// The leading version string salts the digest: any change to the hash
// inputs or to the meaning of a Config bumps it, orphaning (never
// corrupting) old disk-cache entries.
const contentKeyVersion = "soctap-table-key-v1"

func contentKey(c *soc.Core, opts TableOptions) string {
	h := sha256.New()
	w := hashWriter{h: h}
	w.str(contentKeyVersion)
	w.str(c.Name)
	w.ints(c.Inputs, c.Outputs, c.Bidirs, len(c.ScanChains))
	for _, l := range c.ScanChains {
		w.ints(l)
	}
	w.ints(c.Patterns)
	if c.ExplicitCubes != nil {
		// Explicit test sets are hashed in full: the generator fields are
		// ignored when cubes are attached directly.
		w.str("cubes")
		w.ints(c.ExplicitCubes.NumBits, len(c.ExplicitCubes.Cubes))
		for _, cb := range c.ExplicitCubes.Cubes {
			w.ints(cb.NumBits, len(cb.Care))
			for _, bit := range cb.Care {
				v := uint64(bit.Pos) << 1
				if bit.Value {
					v |= 1
				}
				w.u64(v)
			}
		}
	} else {
		w.str("gen")
		w.f64(c.CareDensity)
		w.f64(c.Clustering)
		w.f64(c.DensityDecay)
		w.u64(uint64(c.Seed))
	}
	w.str("opts")
	w.ints(opts.MaxWidth, opts.BandSamples)
	return hex.EncodeToString(h.Sum(nil))
}

// hashWriter feeds values to a hash with unambiguous framing (strings
// are length-prefixed, numbers fixed-width little-endian).
type hashWriter struct {
	h   hash.Hash
	buf [8]byte
}

func (w *hashWriter) u64(v uint64) {
	binary.LittleEndian.PutUint64(w.buf[:], v)
	w.h.Write(w.buf[:])
}

func (w *hashWriter) ints(vs ...int) {
	for _, v := range vs {
		w.u64(uint64(int64(v)))
	}
}

func (w *hashWriter) f64(v float64) {
	// Bit pattern, so every distinct float hashes distinctly; generator
	// parameters are compared exactly.
	w.u64(math.Float64bits(v))
}

func (w *hashWriter) str(s string) {
	w.u64(uint64(len(s)))
	w.h.Write([]byte(s))
}
