package core

// This file implements the persistent on-disk lookup-table cache. Table
// builds dominate every cold run (the "TDC time" of the paper's CPU
// accounting), and they are pure functions of the core's structural
// content and the normalized TableOptions — so entries are
// content-addressed by the same contentKey the in-memory Cache uses,
// and survive process restarts.
//
// Layout: entries live at <dir>/<hh>/<key>.table, fanned out into 256
// two-hex-char subdirectories (hh = the key's first two characters) so
// multi-thousand-entry caches never degrade into one giant directory
// scan. Caches written by earlier revisions used flat <dir>/<key>.table
// paths; those are still found on read and migrated to the sharded
// location the first time they are touched.
//
// Format: v2 entries are tablecodec containers (self-validating fixed
// header + bitpacked columns, see internal/tablecodec and diskcodec.go).
// Stale or damaged entries are rejected from the 32-byte header without
// decoding the payload. Entries written by the v1 code are gob streams
// (diskEntry below); they are still readable, and a v1 read transparently
// rewrites the entry as v2 — one process generation after an upgrade the
// cache is fully converted, with no flag day and no rebuild.
//
// Writes go through a temp file in the same directory — synced before an
// atomic rename, with the directory synced after — so neither a
// concurrent reader nor a crash mid-write can observe a half-written
// entry. Readers treat every failure — missing file, truncation,
// garbage, version or key mismatch, shape mismatch — as a cache miss:
// the table is rebuilt and the entry rewritten, never trusted, and
// corruption never surfaces as an error. Failures are not invisible,
// though: loads distinguish an absent entry (diskMiss) from a
// present-but-bad one (diskCorrupt), and Cache routes the distinction
// into the diskcache.* telemetry counters and the optional SetWarn
// callback.
//
// The diskStore type layers a total-size budget on top: an
// atime-tracked index (modification time doubles as access time — reads
// re-stamp it with Chtimes) with oldest-first eviction, so `-table-cache-size`
// bounds the directory while keeping the most recently useful entries.

import (
	"bytes"
	"encoding/gob"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"soctap/internal/soc"
	"soctap/internal/tablecodec"
	"soctap/internal/telemetry"
)

// diskStatus classifies one disk-store probe.
type diskStatus int

const (
	diskHit     diskStatus = iota // entry present and valid
	diskMiss                      // entry absent
	diskCorrupt                   // entry present but unreadable, stale or mismatched
)

// diskCacheVersion tags every v1 (gob) entry. Kept for reading caches
// written by earlier revisions; new entries are tablecodec containers.
const diskCacheVersion = "soctap-diskcache-v1"

// diskEntry is the v1 serialized form of a Table. The Core pointer is
// deliberately not stored: the requesting core is re-attached on load
// (the content key guarantees it is structurally identical).
type diskEntry struct {
	Version  string
	Key      string
	Opts     TableOptions
	NoTDC    []Config
	TDCExact []Config
	TDCBest  []Config
	Best     []Config
}

// diskPath is the sharded location of an entry: a two-hex-char
// subdirectory keyed by the first byte of the (hex) content key. Keys
// too short to shard — only synthetic test keys; real keys are 64-char
// sha256 hex — stay flat.
func diskPath(dir, key string) string {
	if len(key) < 2 {
		return filepath.Join(dir, key+".table")
	}
	return filepath.Join(dir, key[:2], key+".table")
}

// legacyDiskPath is the flat pre-fan-out location, consulted (and
// migrated away from) when the sharded path misses.
func legacyDiskPath(dir, key string) string {
	return filepath.Join(dir, key+".table")
}

// loadDiskTable reads the entry for key and re-attaches it to core c.
// On anything but a hit the caller rebuilds; the status says whether
// the entry was absent (diskMiss) or present but bad (diskCorrupt), and
// reason carries the corruption detail for the warning callback.
// rewrite reports a hit that should be re-stored: a gob v1 entry
// (format upgrade) or one found at the legacy flat path (layout
// migration) — or both.
func loadDiskTable(dir, key string, c *soc.Core, opts TableOptions) (t *Table, status diskStatus, reason error, rewrite bool) {
	path := diskPath(dir, key)
	data, err := os.ReadFile(path)
	legacy := false
	if errors.Is(err, fs.ErrNotExist) {
		if lp := legacyDiskPath(dir, key); lp != path {
			data, err = os.ReadFile(lp)
			legacy = true
		}
	}
	if err != nil {
		if errors.Is(err, fs.ErrNotExist) {
			return nil, diskMiss, nil, false
		}
		// Present but unreadable (permissions, I/O): a trace-worthy
		// failure, not a plain miss.
		return nil, diskCorrupt, err, false
	}
	if tablecodec.HasMagic(data) {
		t, err := decodeTableV2(data, key, c, opts)
		if err != nil {
			return nil, diskCorrupt, fmt.Errorf("decoding v2: %w", err), false
		}
		return t, diskHit, nil, legacy
	}
	t, err = decodeTableV1(data, key, c, opts)
	if err != nil {
		return nil, diskCorrupt, err, false
	}
	return t, diskHit, nil, true // v1 format: rewrite as v2
}

// decodeTableV1 parses a gob-era entry and validates its identity.
func decodeTableV1(data []byte, key string, c *soc.Core, opts TableOptions) (*Table, error) {
	var e diskEntry
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&e); err != nil {
		return nil, fmt.Errorf("decoding: %w", err)
	}
	if e.Version != diskCacheVersion {
		return nil, fmt.Errorf("stale version %q (want %q)", e.Version, diskCacheVersion)
	}
	if e.Key != key || e.Opts != opts {
		return nil, fmt.Errorf("entry key/options mismatch")
	}
	n := opts.MaxWidth + 1
	if len(e.NoTDC) != n || len(e.TDCExact) != n || len(e.TDCBest) != n || len(e.Best) != n {
		return nil, fmt.Errorf("table shape mismatch")
	}
	return &Table{
		Core:     c,
		Opts:     e.Opts,
		NoTDC:    e.NoTDC,
		TDCExact: e.TDCExact,
		TDCBest:  e.TDCBest,
		Best:     e.Best,
	}, nil
}

// diskFault, when non-nil, injects a failure before the named stage of
// storeDiskBytes ("create", "write", "sync", "close", "rename",
// "dirsync") — the fault-injection seam of the crash-safety tests. Set
// it only from tests, before concurrent use, and restore it to nil.
var diskFault func(stage string) error

// faultAt consults the fault-injection seam; the nil default is free.
func faultAt(stage string) error {
	if diskFault == nil {
		return nil
	}
	return diskFault(stage)
}

// storeDiskTable writes the v2 entry for key at its sharded path.
// Errors are returned for tests but callers treat the store as
// best-effort: a failed write only costs a rebuild next run.
func storeDiskTable(dir, key string, t *Table) error {
	return storeDiskBytes(dir, key, encodeTableV2(key, t))
}

// storeDiskTableV1 writes a gob-era entry at the flat legacy path —
// kept (test- and benchmark-only) so the v1→v2 migration path and the
// format comparison benchmarks have real v1 inputs to read.
func storeDiskTableV1(dir, key string, t *Table) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	var buf bytes.Buffer
	e := diskEntry{
		Version:  diskCacheVersion,
		Key:      key,
		Opts:     t.Opts,
		NoTDC:    t.NoTDC,
		TDCExact: t.TDCExact,
		TDCBest:  t.TDCBest,
		Best:     t.Best,
	}
	if err := gob.NewEncoder(&buf).Encode(&e); err != nil {
		return err
	}
	return os.WriteFile(legacyDiskPath(dir, key), buf.Bytes(), 0o644)
}

// storeDiskBytes publishes data under key crash-safely: temp file in
// the entry's directory, fsync of the file data, atomic rename, then
// fsync of the directory. The file sync before the rename is what
// keeps a power cut from publishing a truncated entry under the final
// name — without it the rename can be durable while the data is not —
// and the directory sync makes the publication itself durable.
func storeDiskBytes(dir, key string, data []byte) error {
	path := diskPath(dir, key)
	entryDir := filepath.Dir(path)
	if err := os.MkdirAll(entryDir, 0o755); err != nil {
		return err
	}
	if err := faultAt("create"); err != nil {
		return err
	}
	tmp, err := os.CreateTemp(entryDir, ".tmp-"+key+"-*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	if err := faultAt("write"); err != nil {
		tmp.Close()
		return err
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return err
	}
	if err := faultAt("sync"); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := faultAt("close"); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	if err := faultAt("rename"); err != nil {
		return err
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return err
	}
	return syncDir(entryDir)
}

// syncDir fsyncs the entry's directory so a just-renamed entry's
// directory record is durable.
func syncDir(dir string) error {
	if err := faultAt("dirsync"); err != nil {
		return err
	}
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}

// diskStore is the bounded persistent tier: loadDiskTable/storeDiskBytes
// plus a total-size budget enforced by atime-ordered eviction. With no
// budget (capBytes == 0) it adds nothing — no index, no stat traffic —
// and behaves exactly like the unbounded store of earlier revisions.
//
// Access times: every hit re-stamps the entry file's mtime with
// Chtimes, so modification time is a persistent access-time proxy that
// survives restarts and noatime mounts. The index is built lazily (one
// WalkDir on the first operation that needs it) and kept incrementally
// current afterwards.
type diskStore struct {
	dir string

	mu       sync.Mutex
	capBytes int64
	scanned  bool
	entries  map[string]diskIdxEnt // key → current size/atime
	total    int64
}

// diskIdxEnt is one row of the eviction index.
type diskIdxEnt struct {
	path  string
	size  int64
	atime time.Time
}

func newDiskStore(dir string, capBytes int64) *diskStore {
	return &diskStore{dir: dir, capBytes: capBytes}
}

// setCap installs (or clears) the total-size budget. Takes effect on
// the next store.
func (ds *diskStore) setCap(capBytes int64) {
	ds.mu.Lock()
	ds.capBytes = capBytes
	ds.mu.Unlock()
}

// load probes the store for key, counting the outcome into tel and
// migrating legacy entries forward. On a hit the entry's access time is
// re-stamped; on a v1-format or flat-path hit the entry is rewritten at
// the sharded path as v2 (best-effort, counted as diskcache.migrated)
// and the flat original removed.
func (ds *diskStore) load(key string, c *soc.Core, opts TableOptions, tel *telemetry.Sink, warnf func(string, ...any)) (*Table, diskStatus) {
	t0 := time.Now()
	t, status, reason, rewrite := loadDiskTable(ds.dir, key, c, opts)
	tel.Histogram("diskcache.load_seconds").Observe(time.Since(t0))
	switch status {
	case diskHit:
		tel.Counter("diskcache.hits").Inc()
		if rewrite {
			if err := ds.store(key, t, tel); err != nil {
				tel.Counter("diskcache.write_errors").Inc()
				warnf("table cache: migrating %s: %v", diskPath(ds.dir, key), err)
			} else {
				tel.Counter("diskcache.migrated").Inc()
				if lp := legacyDiskPath(ds.dir, key); lp != diskPath(ds.dir, key) {
					os.Remove(lp)
					ds.forget(lp)
				}
			}
		} else {
			ds.touch(key, tel)
		}
	case diskMiss:
		tel.Counter("diskcache.misses").Inc()
	case diskCorrupt:
		tel.Counter("diskcache.corrupt_rebuilds").Inc()
		warnf("table cache: corrupt entry %s rebuilt: %v", diskPath(ds.dir, key), reason)
	}
	return t, status
}

// store writes the v2 entry for key, accounts it in the index, and
// evicts oldest-first down to the budget. diskcache.bytes tracks the
// net bytes this process added to the store (stores minus evictions).
func (ds *diskStore) store(key string, t *Table, tel *telemetry.Sink) error {
	data := encodeTableV2(key, t)
	if err := storeDiskBytes(ds.dir, key, data); err != nil {
		return err
	}
	tel.Counter("diskcache.bytes").Add(int64(len(data)))
	ds.mu.Lock()
	defer ds.mu.Unlock()
	if ds.capBytes <= 0 {
		return nil
	}
	ds.scanLocked()
	now := time.Now()
	if old, ok := ds.entries[key]; ok {
		ds.total -= old.size
	}
	ds.entries[key] = diskIdxEnt{path: diskPath(ds.dir, key), size: int64(len(data)), atime: now}
	ds.total += int64(len(data))
	ds.evictLocked(tel)
	return nil
}

// touch re-stamps the entry's access time. The on-disk stamp (file
// mtime, the atime proxy that survives restarts) can fail — read-only
// remount, permissions, a concurrently evicted file — and on a cache
// dir where it always fails the persistent LRU would silently decay
// toward FIFO. The failure is therefore counted (diskcache.touch_errors)
// rather than swallowed, and the in-memory index stays authoritative
// for this process either way: eviction ordering reads index atimes,
// which are updated regardless of whether the disk stamp landed.
func (ds *diskStore) touch(key string, tel *telemetry.Sink) {
	now := time.Now()
	path := diskPath(ds.dir, key)
	if err := os.Chtimes(path, now, now); err != nil {
		tel.Counter("diskcache.touch_errors").Inc()
	}
	ds.mu.Lock()
	if ds.scanned {
		if e, ok := ds.entries[key]; ok {
			e.atime = now
			ds.entries[key] = e
		}
	}
	ds.mu.Unlock()
}

// forget drops an index row by path (after a legacy file removal).
func (ds *diskStore) forget(path string) {
	ds.mu.Lock()
	defer ds.mu.Unlock()
	if !ds.scanned {
		return
	}
	for k, e := range ds.entries {
		if e.path == path {
			ds.total -= e.size
			delete(ds.entries, k)
			return
		}
	}
}

// scanLocked builds the index on first use: one walk over the cache
// directory (flat entries and the 256 shard subdirectories), recording
// each entry's size and mtime-as-atime.
func (ds *diskStore) scanLocked() {
	if ds.scanned {
		return
	}
	ds.scanned = true
	ds.entries = make(map[string]diskIdxEnt)
	ds.total = 0
	filepath.WalkDir(ds.dir, func(path string, d fs.DirEntry, err error) error {
		if err != nil || d.IsDir() {
			return nil // unreadable pieces just stay unaccounted
		}
		name := d.Name()
		if filepath.Ext(name) != ".table" {
			return nil
		}
		info, err := d.Info()
		if err != nil {
			return nil
		}
		key := name[:len(name)-len(".table")]
		// Prefer the sharded copy when both exist (mid-migration).
		if prev, ok := ds.entries[key]; ok && prev.path == diskPath(ds.dir, key) {
			return nil
		}
		if prev, ok := ds.entries[key]; ok {
			ds.total -= prev.size
		}
		ds.entries[key] = diskIdxEnt{path: path, size: info.Size(), atime: info.ModTime()}
		ds.total += info.Size()
		return nil
	})
}

// evictLocked removes oldest-atime entries (ties broken by key, so the
// order is deterministic at equal timestamps) until the store fits the
// budget.
func (ds *diskStore) evictLocked(tel *telemetry.Sink) {
	if ds.capBytes <= 0 || ds.total <= ds.capBytes {
		return
	}
	keys := make([]string, 0, len(ds.entries))
	for k := range ds.entries {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		a, b := ds.entries[keys[i]], ds.entries[keys[j]]
		if !a.atime.Equal(b.atime) {
			return a.atime.Before(b.atime)
		}
		return keys[i] < keys[j]
	})
	for _, k := range keys {
		if ds.total <= ds.capBytes {
			return
		}
		e := ds.entries[k]
		os.Remove(e.path) // best-effort; the accounting drops it either way
		ds.total -= e.size
		delete(ds.entries, k)
		tel.Counter("diskcache.evictions").Inc()
		tel.Counter("diskcache.bytes").Add(-e.size)
	}
}
