package core

// This file implements the persistent on-disk lookup-table cache. Table
// builds dominate every cold run (the "TDC time" of the paper's CPU
// accounting), and they are pure functions of the core's structural
// content and the normalized TableOptions — so entries are
// content-addressed by the same contentKey the in-memory Cache uses,
// and survive process restarts.
//
// Format: each entry is a file <dir>/<key>.table holding a gob-encoded
// diskEntry whose Version field ties it to this code revision. Writes go
// through a temp file in the same directory — synced before an atomic
// rename, with the directory synced after — so neither a concurrent
// reader nor a crash mid-write can observe a half-written entry.
// Readers treat every failure — missing file, truncation, garbage,
// version or key mismatch, shape mismatch — as a cache miss: the table
// is rebuilt and the entry rewritten, never trusted, and corruption
// never surfaces as an error. Failures are no longer invisible, though:
// loads distinguish an absent entry (diskMiss) from a present-but-bad
// one (diskCorrupt), and Cache.get routes the distinction into the
// diskcache.* telemetry counters and the optional SetWarn callback.

import (
	"encoding/gob"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"

	"soctap/internal/soc"
)

// diskStatus classifies one disk-store probe.
type diskStatus int

const (
	diskHit     diskStatus = iota // entry present and valid
	diskMiss                      // entry absent
	diskCorrupt                   // entry present but unreadable, stale or mismatched
)

// diskCacheVersion tags every entry. Bump it whenever diskEntry,
// Config, or table semantics change; stale entries then read as misses
// and are rebuilt in place.
const diskCacheVersion = "soctap-diskcache-v1"

// diskEntry is the serialized form of a Table. The Core pointer is
// deliberately not stored: the requesting core is re-attached on load
// (the content key guarantees it is structurally identical).
type diskEntry struct {
	Version  string
	Key      string
	Opts     TableOptions
	NoTDC    []Config
	TDCExact []Config
	TDCBest  []Config
	Best     []Config
}

func diskPath(dir, key string) string {
	return filepath.Join(dir, key+".table")
}

// loadDiskTable reads the entry for key and re-attaches it to core c.
// On anything but a hit the caller rebuilds; the status says whether
// the entry was absent (diskMiss) or present but bad (diskCorrupt), and
// reason carries the corruption detail for the warning callback.
func loadDiskTable(dir, key string, c *soc.Core, opts TableOptions) (t *Table, status diskStatus, reason error) {
	f, err := os.Open(diskPath(dir, key))
	if err != nil {
		if errors.Is(err, fs.ErrNotExist) {
			return nil, diskMiss, nil
		}
		// Present but unopenable (permissions, I/O): a trace-worthy
		// failure, not a plain miss.
		return nil, diskCorrupt, err
	}
	defer f.Close()
	var e diskEntry
	if err := gob.NewDecoder(f).Decode(&e); err != nil {
		return nil, diskCorrupt, fmt.Errorf("decoding: %w", err)
	}
	if e.Version != diskCacheVersion {
		return nil, diskCorrupt, fmt.Errorf("stale version %q (want %q)", e.Version, diskCacheVersion)
	}
	if e.Key != key || e.Opts != opts {
		return nil, diskCorrupt, fmt.Errorf("entry key/options mismatch")
	}
	n := opts.MaxWidth + 1
	if len(e.NoTDC) != n || len(e.TDCExact) != n || len(e.TDCBest) != n || len(e.Best) != n {
		return nil, diskCorrupt, fmt.Errorf("table shape mismatch")
	}
	return &Table{
		Core:     c,
		Opts:     e.Opts,
		NoTDC:    e.NoTDC,
		TDCExact: e.TDCExact,
		TDCBest:  e.TDCBest,
		Best:     e.Best,
	}, diskHit, nil
}

// diskFault, when non-nil, injects a failure before the named stage of
// storeDiskTable ("create", "write", "sync", "close", "rename",
// "dirsync") — the fault-injection seam of the crash-safety tests. Set
// it only from tests, before concurrent use, and restore it to nil.
var diskFault func(stage string) error

// faultAt consults the fault-injection seam; the nil default is free.
func faultAt(stage string) error {
	if diskFault == nil {
		return nil
	}
	return diskFault(stage)
}

// storeDiskTable writes the entry for key crash-safely: temp file in
// the same directory, fsync of the file data, atomic rename, then
// fsync of the directory. The file sync before the rename is what
// keeps a power cut from publishing a truncated entry under the final
// name — without it the rename can be durable while the data is not —
// and the directory sync makes the publication itself durable. Errors
// are returned for tests but callers treat the store as best-effort: a
// failed write only costs a rebuild next run.
func storeDiskTable(dir, key string, t *Table) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	if err := faultAt("create"); err != nil {
		return err
	}
	tmp, err := os.CreateTemp(dir, ".tmp-"+key+"-*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	e := diskEntry{
		Version:  diskCacheVersion,
		Key:      key,
		Opts:     t.Opts,
		NoTDC:    t.NoTDC,
		TDCExact: t.TDCExact,
		TDCBest:  t.TDCBest,
		Best:     t.Best,
	}
	if err := faultAt("write"); err != nil {
		tmp.Close()
		return err
	}
	if err := gob.NewEncoder(tmp).Encode(&e); err != nil {
		tmp.Close()
		return err
	}
	if err := faultAt("sync"); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := faultAt("close"); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	if err := faultAt("rename"); err != nil {
		return err
	}
	if err := os.Rename(tmp.Name(), diskPath(dir, key)); err != nil {
		return err
	}
	return syncDir(dir)
}

// syncDir fsyncs the cache directory so a just-renamed entry's
// directory record is durable.
func syncDir(dir string) error {
	if err := faultAt("dirsync"); err != nil {
		return err
	}
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}
