package core

// Giant-workload benchmarks and the streaming memory contract. The
// full-size variants run from `make bench-big` (and the acceptance
// test behind SOCTAP_GIANT=1); `make check` runs the short-mode bench
// and the window-proportional smoke test, which use a scaled-down
// member of the same design family.

import (
	"context"
	"os"
	"reflect"
	"runtime"
	"testing"
	"time"

	"soctap/internal/soc"
	"soctap/internal/telemetry"
)

// giantSOC synthesizes a giant-profile design for the benches; the
// (patterns, scale) knobs produce the scaled-down short-mode member.
func giantSOC(tb testing.TB, cores, patterns int, scale float64) *soc.SOC {
	tb.Helper()
	s, err := soc.Synthesize(context.Background(), soc.SynthSpec{
		Name: "giant", Profile: "giant", Cores: cores, Seed: 1,
		Patterns: patterns, Scale: scale,
	})
	if err != nil {
		tb.Fatal(err)
	}
	return s
}

// freshCore copies a core's public description so each measurement
// starts without a cached test set (Core caches TestSet in a
// sync.Once, so reusing one instance would charge the first
// measurement and credit the rest).
func freshCore(c *soc.Core) *soc.Core {
	return &soc.Core{
		Name: c.Name, Inputs: c.Inputs, Outputs: c.Outputs, Bidirs: c.Bidirs,
		ScanChains: append([]int(nil), c.ScanChains...),
		Patterns:   c.Patterns, Gates: c.Gates,
		CareDensity: c.CareDensity, Clustering: c.Clustering,
		DensityDecay: c.DensityDecay, Seed: c.Seed,
	}
}

// retainedBytes reports the GC-settled heap growth of whatever build
// returns — the memory the returned value keeps live, excluding
// transient garbage.
func retainedBytes(build func() any) int64 {
	runtime.GC()
	runtime.GC()
	var before runtime.MemStats
	runtime.ReadMemStats(&before)
	v := build()
	runtime.GC()
	runtime.GC()
	var after runtime.MemStats
	runtime.ReadMemStats(&after)
	runtime.KeepAlive(v)
	return int64(after.HeapAlloc) - int64(before.HeapAlloc)
}

// residentFootprint materializes a core the historical way — resident
// evaluator over the full test set — and reports its retained bytes.
func residentFootprint(tb testing.TB, c *soc.Core) int64 {
	tb.Helper()
	return retainedBytes(func() any {
		ev, err := NewEvaluatorWindow(freshCore(c), 0)
		if err != nil {
			tb.Fatal(err)
		}
		return ev
	})
}

// streamedFootprint runs a TDC probe through a windowed evaluator and
// reports the evaluator's retained bytes afterwards, scratch buffers at
// their high-water size included.
func streamedFootprint(tb testing.TB, c *soc.Core, window, m int) int64 {
	tb.Helper()
	return retainedBytes(func() any {
		ev, err := NewEvaluatorWindow(freshCore(c), window)
		if err != nil {
			tb.Fatal(err)
		}
		if _, err := ev.TDC(m, true); err != nil {
			tb.Fatal(err)
		}
		return ev
	})
}

// TestStreamingPeakMemorySmoke is the tier-1 memory gate: on a
// mid-size core, a window-64 evaluator's retained footprint must stay
// window-proportional — window/patterns is 1/64 here, so even with a
// generous 16x constant for fixed per-evaluator structures the
// streamed footprint must come in under a quarter of the materialized
// one. The peak-heap gauge must record a plausible high-water mark.
func TestStreamingPeakMemorySmoke(t *testing.T) {
	c := &soc.Core{
		Name: "smoke", Inputs: 40, Outputs: 30,
		ScanChains: balancedChainsForTest(3000, 50),
		Patterns:   4096, CareDensity: 0.05, Clustering: 0.6,
		DensityDecay: 0.9, Seed: 42,
	}
	resident := residentFootprint(t, c)
	streamed := streamedFootprint(t, c, DefaultEvalWindow, 8)
	if resident <= 0 || streamed <= 0 {
		t.Fatalf("implausible footprints: resident %d, streamed %d", resident, streamed)
	}
	if streamed*4 > resident {
		t.Errorf("streamed footprint %d B not window-proportional (resident %d B, window/patterns = 1/64)",
			streamed, resident)
	}

	tel := telemetry.New()
	ev, err := NewEvaluatorWindow(freshCore(c), DefaultEvalWindow)
	if err != nil {
		t.Fatal(err)
	}
	ev.attachTelemetry(tel)
	if _, err := ev.TDC(8, true); err != nil {
		t.Fatal(err)
	}
	if peak := tel.Snapshot().Gauges["eval.peak_heap_bytes"]; peak <= 0 {
		t.Errorf("peak-heap gauge recorded %d, want a positive high-water mark", peak)
	}
}

// balancedChainsForTest mirrors soc's balanced chain construction for
// in-package synthetic cores.
func balancedChainsForTest(cells, chains int) []int {
	out := make([]int, chains)
	for i := range out {
		out[i] = cells / chains
		if i < cells%chains {
			out[i]++
		}
	}
	return out
}

// TestStreamingPeakMemoryGiant is the paper-scale acceptance contract:
// a giant-profile design carries over a million cubes, and streaming
// one of its cores holds at least 10x less memory than materializing
// it. Minutes of runtime and hundreds of megabytes of transient heap,
// so it only runs when asked for: SOCTAP_GIANT=1 (`make bench-big`).
func TestStreamingPeakMemoryGiant(t *testing.T) {
	if os.Getenv("SOCTAP_GIANT") == "" {
		t.Skip("giant workload; set SOCTAP_GIANT=1 or run `make bench-big`")
	}
	s := giantSOC(t, 48, 0, 1)
	var cubes int64
	for _, c := range s.Cores {
		cubes += int64(c.Patterns)
	}
	if cubes < 1_000_000 {
		t.Fatalf("giant profile carries %d cubes, want >= 1M", cubes)
	}

	// Measure the design's cheapest core so the materialized side stays
	// within the test host's memory; the ratio only grows with size.
	probe := s.Cores[0]
	for _, c := range s.Cores[1:] {
		if c.StimulusVolumeBits() < probe.StimulusVolumeBits() {
			probe = c
		}
	}
	resident := residentFootprint(t, probe)
	streamed := streamedFootprint(t, probe, DefaultEvalWindow, 8)
	t.Logf("%s: resident %.1f MiB, streamed %.1f MiB (%.1fx)", probe.Name,
		float64(resident)/(1<<20), float64(streamed)/(1<<20),
		float64(resident)/float64(streamed))
	if streamed <= 0 || resident < 10*streamed {
		t.Errorf("streamed footprint %d B not >=10x below materialized %d B", streamed, resident)
	}
}

// BenchmarkFusedGiantTable builds a giant-family core's lookup table
// through the streamed fused sweep and once (untimed) with fusion
// disabled, asserting the two tables deeply equal and reporting how the
// fused pass amortizes source traversal:
//
//   - window-load-amortization-x: unfused / fused eval.window_loads —
//     the O(points×windows) → O(batches×windows) win (higher is
//     better; benchjson treats the -x suffix directionally)
//   - passes-per-point: eval.passes / eval.fused_points — the fraction
//     of a full source pass each (w, m) point costs under fusion
//     (1.0 would mean no fusion at all; informational)
//
// Short mode substitutes a scaled-down member of the same family so the
// bench doubles as a tripwire in `make check`.
func BenchmarkFusedGiantTable(b *testing.B) {
	cores, patterns, scale := 8, 0, 0.4
	if testing.Short() {
		cores, patterns, scale = 2, 400, 0.05
	}
	s := giantSOC(b, cores, patterns, scale)
	// Build the design's cheapest core: the amortization factor is
	// load-count arithmetic, invariant to core size, so the probe keeps
	// the unfused baseline tractable.
	probe := s.Cores[0]
	for _, c := range s.Cores[1:] {
		if c.StimulusVolumeBits() < probe.StimulusVolumeBits() {
			probe = c
		}
	}
	opts := TableOptions{MaxWidth: 12, BandSamples: 4, EvalWindow: DefaultEvalWindow}

	unfused := opts
	unfused.DisableFusion = true
	telU := telemetry.New()
	t0 := time.Now()
	plain, err := buildTable(context.Background(), probe, unfused, telU)
	unfusedSecs := time.Since(t0).Seconds()
	if err != nil {
		b.Fatal(err)
	}
	unfusedLoads := telU.Snapshot().Counters["eval.window_loads"]

	var tbl *Table
	var fusedLoads, passes, points int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		telF := telemetry.New()
		tbl, err = buildTable(context.Background(), probe, opts, telF)
		if err != nil {
			b.Fatal(err)
		}
		sn := telF.Snapshot()
		fusedLoads = sn.Counters["eval.window_loads"]
		passes = sn.Counters["eval.passes"]
		points = sn.Counters["eval.fused_points"]
	}
	b.StopTimer()
	if !reflect.DeepEqual(tbl, plain) {
		b.Fatal("fused giant table differs from unfused build")
	}
	if fusedLoads <= 0 || points <= 0 {
		b.Fatalf("fused build recorded no pass telemetry: loads=%d points=%d", fusedLoads, points)
	}
	b.ReportMetric(float64(unfusedLoads)/float64(fusedLoads), "window-load-amortization-x")
	b.ReportMetric(float64(passes)/float64(points), "passes-per-point")
	if fusedSecs := b.Elapsed().Seconds() / float64(b.N); fusedSecs > 0 {
		b.ReportMetric(unfusedSecs/fusedSecs, "table-build-speedup-x")
	}
}

// BenchmarkStreamGiantSweep prices a TDC probe pair on every core of a
// giant-profile SOC through the window-64 streaming evaluator,
// reporting cube and core throughput plus the peak-heap gauge. Short
// mode substitutes a scaled-down member of the same family so the
// bench doubles as a cheap tripwire in `make check`.
func BenchmarkStreamGiantSweep(b *testing.B) {
	cores, patterns, scale := 48, 0, 1.0
	if testing.Short() {
		cores, patterns, scale = 4, 600, 0.05
	}
	s := giantSOC(b, cores, patterns, scale)
	probes := []int{8, 32}

	tel := telemetry.New()
	var cubes, done int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, c := range s.Cores {
			ev, err := NewEvaluatorWindow(c, DefaultEvalWindow)
			if err != nil {
				b.Fatal(err)
			}
			ev.attachTelemetry(tel)
			for _, m := range probes {
				if _, err := ev.TDC(m, true); err != nil {
					b.Fatal(err)
				}
				cubes += int64(c.Patterns)
			}
			done++
		}
	}
	b.StopTimer()
	secs := b.Elapsed().Seconds()
	if secs > 0 {
		b.ReportMetric(float64(cubes)/secs, "cubes/s")
		b.ReportMetric(float64(done)/secs, "cores/s")
	}
	b.ReportMetric(float64(tel.Snapshot().Gauges["eval.peak_heap_bytes"]), "peak-bytes")
}
