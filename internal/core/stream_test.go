package core

import (
	"reflect"
	"testing"

	"soctap/internal/soc"
	"soctap/internal/telemetry"
)

// trimmedCore copies a core's public description with a reduced pattern
// count, so the streaming-equivalence matrix over the industrial cores
// stays tractable under -race while still spanning several windows at
// DefaultEvalWindow. (A fresh struct, not a shallow copy: Core embeds a
// sync.Once.)
func trimmedCore(c *soc.Core, patterns int) *soc.Core {
	out := &soc.Core{
		Name: c.Name, Inputs: c.Inputs, Outputs: c.Outputs, Bidirs: c.Bidirs,
		ScanChains: append([]int(nil), c.ScanChains...),
		Patterns:   c.Patterns, Gates: c.Gates,
		CareDensity: c.CareDensity, Clustering: c.Clustering,
		DensityDecay: c.DensityDecay, Seed: c.Seed,
	}
	if patterns > 0 && patterns < out.Patterns {
		out.Patterns = patterns
	}
	return out
}

// decayCore has a strongly decaying density profile chosen so that at
// small windows the head windows measure dense (≥ denseDensityThreshold)
// and the tail windows sparse — every pass flips the kernel strategy
// mid-stream, exercising the slice-plane re-zeroing handoff.
func decayCore(seed int64) *soc.Core {
	return &soc.Core{
		Name: "decay", Inputs: 10, Outputs: 8,
		ScanChains: []int{40, 35, 30, 25, 20},
		Patterns:   90, CareDensity: 0.16, Clustering: 0.4, DensityDecay: 1,
		Seed: seed,
	}
}

// streamWindows is the window axis of the equivalence matrix: single
// cube, the default, and the whole set as one window.
var streamWindows = []int{1, DefaultEvalWindow, EvalWindowAll}

// TestStreamingTableEquivalence is the bit-identity guarantee of the
// windowed evaluator: for every d695 and industrial core, tables built
// with EvalWindow 1, 64 (default) and ∞ must be deeply equal to the
// resident build — same Configs, same normalized Opts — at Workers 1
// and 8 alike. Industrial cores run with reduced patterns, width and
// band sampling so the full matrix stays tractable under -race.
func TestStreamingTableEquivalence(t *testing.T) {
	type tc struct {
		core *soc.Core
		opts TableOptions
	}
	var cases []tc
	for _, c := range soc.D695().Cores {
		cases = append(cases, tc{c, TableOptions{MaxWidth: 8, BandSamples: 3}})
	}
	for _, name := range soc.IndustrialCoreNames() {
		cases = append(cases, tc{trimmedCore(soc.MustIndustrialCore(name), 50),
			TableOptions{MaxWidth: 7, BandSamples: 2}})
	}
	cases = append(cases, tc{decayCore(7), TableOptions{MaxWidth: 12}})
	for _, cse := range cases {
		base, err := BuildTable(cse.core, cse.opts)
		if err != nil {
			t.Fatal(err)
		}
		for _, window := range streamWindows {
			for _, workers := range []int{1, 8} {
				opts := cse.opts
				opts.EvalWindow = window
				opts.Workers = workers
				streamed, err := BuildTable(cse.core, opts)
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(streamed, base) {
					t.Errorf("%s window=%d workers=%d: streamed table differs from resident",
						cse.core.Name, window, workers)
				}
			}
		}
	}
}

// TestStreamingEvaluatorEquivalence compares the evaluator primitives
// (TDC with and without group copy, PatternBits) streamed against
// resident at every window, including windows that split the set
// unevenly (patterns not a multiple of the window).
func TestStreamingEvaluatorEquivalence(t *testing.T) {
	for _, c := range []*soc.Core{smallCore(3), compressibleCore(5), decayCore(11)} {
		resident, err := NewEvaluatorWindow(c, 0)
		if err != nil {
			t.Fatal(err)
		}
		if resident.src != nil {
			t.Fatalf("%s: auto mode streamed a small core", c.Name)
		}
		for _, window := range []int{1, 7, DefaultEvalWindow, EvalWindowAll} {
			ev, err := NewEvaluatorWindow(c, window)
			if err != nil {
				t.Fatal(err)
			}
			if ev.src == nil {
				t.Fatalf("%s window=%d: expected a streaming evaluator", c.Name, window)
			}
			for _, m := range []int{2, 5, 9} {
				for _, gc := range []bool{true, false} {
					want, err := resident.TDC(m, gc)
					if err != nil {
						t.Fatal(err)
					}
					got, err := ev.TDC(m, gc)
					if err != nil {
						t.Fatal(err)
					}
					if got != want {
						t.Errorf("%s window=%d m=%d gc=%v: streamed %+v, resident %+v",
							c.Name, window, m, gc, got, want)
					}
				}
				wantBits, err := resident.PatternBits(m)
				if err != nil {
					t.Fatal(err)
				}
				gotBits, err := ev.PatternBits(m)
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(gotBits, wantBits) {
					t.Errorf("%s window=%d m=%d: streamed PatternBits differ", c.Name, window, m)
				}
			}
		}
	}
}

// TestEvalWindowValidation covers the mode-selection edges: rejected
// negative windows, EvalWindowAll, and window clamping.
func TestEvalWindowValidation(t *testing.T) {
	c := smallCore(1)
	if _, err := NewEvaluatorWindow(c, -2); err == nil {
		t.Error("EvalWindow -2 accepted")
	}
	ev, err := NewEvaluatorWindow(c, EvalWindowAll)
	if err != nil {
		t.Fatal(err)
	}
	if ev.window != c.Patterns {
		t.Errorf("EvalWindowAll window = %d, want %d", ev.window, c.Patterns)
	}
	// Windows larger than the set clamp to the set.
	ev, err = NewEvaluatorWindow(c, 10_000)
	if err != nil {
		t.Fatal(err)
	}
	if ev.window != c.Patterns {
		t.Errorf("oversized window = %d, want %d", ev.window, c.Patterns)
	}
}

// TestStreamingWindowTelemetry asserts the deterministic window
// counters: one pass of a streamed evaluation loads ceil(p/window)
// windows covering exactly p cubes.
func TestStreamingWindowTelemetry(t *testing.T) {
	c := smallCore(9) // 20 patterns
	tel := telemetry.New()
	ev, err := NewEvaluatorWindow(c, 7)
	if err != nil {
		t.Fatal(err)
	}
	ev.attachTelemetry(tel)
	if _, err := ev.TDC(4, true); err != nil {
		t.Fatal(err)
	}
	sn := tel.Snapshot()
	if got := sn.Counters["eval.window_loads"]; got != 3 { // ceil(20/7)
		t.Errorf("window_loads = %d, want 3", got)
	}
	if got := sn.Counters["eval.window_cubes"]; got != 20 {
		t.Errorf("window_cubes = %d, want 20", got)
	}
}

// FuzzStreamingWindowEquivalence fuzzes the window axis against the
// resident evaluator on a small synthetic core: any (seed, patterns,
// density, window, m) combination must price identically however the
// set is split into windows. Seeds pin the interesting boundaries —
// window 1, window == patterns, patterns one off a window multiple.
func FuzzStreamingWindowEquivalence(f *testing.F) {
	f.Add(int64(1), 20, 0.15, 1, 4)
	f.Add(int64(2), 65, 0.05, 64, 6)   // one cube past a window boundary
	f.Add(int64(3), 64, 0.30, 64, 3)   // exactly one full window
	f.Add(int64(4), 63, 0.20, 64, 5)   // one cube short of a window
	f.Add(int64(5), 33, 0.16, 16, 2)   // dense head / sparse tail splits
	f.Add(int64(6), 10, 0.90, 3, 7)    // saturated cubes
	f.Fuzz(func(t *testing.T, seed int64, patterns int, density float64, window, m int) {
		if patterns < 1 || patterns > 120 {
			return
		}
		if !(density > 0 && density <= 1) {
			return
		}
		if window < 1 || window > 200 {
			return
		}
		if m < 1 || m > 20 {
			return
		}
		c := &soc.Core{
			Name: "fuzz", Inputs: 8, Outputs: 6,
			ScanChains: []int{30, 25, 20, 15},
			Patterns:   patterns, CareDensity: density,
			Clustering: 0.5, DensityDecay: 1, Seed: seed,
		}
		resident, err := NewEvaluatorWindow(c, 0)
		if err != nil {
			t.Skip()
		}
		streamed, err := NewEvaluatorWindow(c, window)
		if err != nil {
			t.Fatal(err)
		}
		want, err := resident.TDC(m, true)
		if err != nil {
			t.Fatal(err)
		}
		got, err := streamed.TDC(m, true)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Errorf("window=%d: streamed %+v != resident %+v", window, got, want)
		}
	})
}
