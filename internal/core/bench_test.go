package core

import (
	"testing"

	"soctap/internal/soc"
	"soctap/internal/telemetry"
)

// benchCore is a mid-size synthetic core whose cubes are large enough
// to exercise the kernel's radix-sort path (~320 care bits per cube).
func benchCore() *soc.Core {
	chains := make([]int, 64)
	for i := range chains {
		chains[i] = 100
	}
	return &soc.Core{
		Name: "bench", Inputs: 32, Outputs: 32,
		ScanChains: chains, // 6400 cells
		Patterns:   50, CareDensity: 0.05, Clustering: 0.7, DensityDecay: 0.3,
		Seed: 42,
	}
}

// BenchmarkTDCCostKernel measures the hot cost kernel alone — the
// per-cube key build, sort and slice-cost walk — on a warm evaluator.
// Allocations per op should be ~zero: all buffers are reused.
func BenchmarkTDCCostKernel(b *testing.B) {
	c := benchCore()
	ev, err := NewEvaluator(c)
	if err != nil {
		b.Fatal(err)
	}
	d, err := ev.Design(48)
	if err != nil {
		b.Fatal(err)
	}
	d.StimulusMap() // warm the memoized map
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ev.tdcCost(d, true)
	}
}

// BenchmarkTDCCostKernelDisabled measures the instrumented TDC path —
// counter Inc included — with no sink attached. Comparing it against
// BenchmarkTDCCostKernel bounds the disabled-telemetry overhead
// (nil-check only; 0 allocs/op is asserted by the telemetry-overhead
// gate in `make check`).
func BenchmarkTDCCostKernelDisabled(b *testing.B) {
	benchmarkTDCTelemetry(b, nil)
}

// BenchmarkTDCCostKernelTelemetry is the same path with a live sink, so
// the cost of an enabled counter (one atomic add per eval) is visible.
func BenchmarkTDCCostKernelTelemetry(b *testing.B) {
	benchmarkTDCTelemetry(b, telemetry.New())
}

func benchmarkTDCTelemetry(b *testing.B, sink *telemetry.Sink) {
	c := benchCore()
	ev, err := NewEvaluator(c)
	if err != nil {
		b.Fatal(err)
	}
	ev.attachTelemetry(sink)
	d, err := ev.Design(48)
	if err != nil {
		b.Fatal(err)
	}
	d.StimulusMap()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ev.TDC(48, true); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBuildTableSerial measures one core's full lookup-table build
// with the engine forced sequential.
func BenchmarkBuildTableSerial(b *testing.B) {
	benchmarkBuildTable(b, 1)
}

// BenchmarkBuildTableParallel is the same build with one worker per
// CPU; on a multi-core machine the ratio to the serial benchmark is the
// table-build speedup.
func BenchmarkBuildTableParallel(b *testing.B) {
	benchmarkBuildTable(b, 0)
}

func benchmarkBuildTable(b *testing.B, workers int) {
	c := benchCore()
	if _, err := c.TestSet(); err != nil {
		b.Fatal(err)
	}
	opts := TableOptions{MaxWidth: 32, Workers: workers}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := BuildTable(c, opts); err != nil {
			b.Fatal(err)
		}
	}
}
