package core

// Panic containment at the core package boundary. The evaluation engine
// fans work out over worker goroutines (forEachEval, buildSelectors,
// evalBatch); a panic inside one of those workers — a kernel bug, a
// malformed core that slipped past validation — would otherwise kill
// the whole process, and a panic inside a singleflight table build
// would additionally strand every waiter on the poisoned cache entry.
// Instead, every worker converts panics into a *PanicError carrying the
// offending core and (w, m) evaluation point, and the error propagates
// through the normal error paths (including the singleflight entry,
// which is evicted so later callers rebuild rather than inherit the
// failure).

import (
	"context"
	"errors"
	"fmt"
	"runtime/debug"
)

// PanicError is a panic recovered at the core package boundary,
// converted into an error instead of unwinding into the caller (or
// killing the process when raised on a worker goroutine).
type PanicError struct {
	Core  string // core being evaluated ("" when unknown)
	Point string // evaluation point, e.g. "tdc band w=12" or "no-tdc m=3"
	Value any    // the recovered panic value
	Stack []byte // stack of the panicking goroutine, for diagnostics
}

// Error formats the contained panic with its core/(w, m) point.
func (e *PanicError) Error() string {
	if e.Core == "" {
		return fmt.Sprintf("core: panic during %s: %v", e.Point, e.Value)
	}
	return fmt.Sprintf("core: panic evaluating %s (%s): %v", e.Core, e.Point, e.Value)
}

// newPanicError captures the recovered value v and the current stack.
func newPanicError(core, point string, v any) *PanicError {
	return &PanicError{Core: core, Point: point, Value: v, Stack: debug.Stack()}
}

// uncacheable reports whether a build outcome must not be memoized by
// the singleflight cache: cancellation reflects the caller's context,
// not the build, and a contained panic may be environmental — in both
// cases the poisoned entry is evicted so a later Get retries, whereas
// deterministic build errors stay cached (retrying cannot succeed).
func uncacheable(err error) bool {
	if err == nil {
		return false
	}
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return true
	}
	var pe *PanicError
	return errors.As(err, &pe)
}

// canceled reports whether err is a context cancellation or deadline.
func canceled(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}
