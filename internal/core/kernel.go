// Word-parallel slice kernel: the inner loop of tdcCost. Instead of
// sorting per-pattern (depth, chain) keys, each pattern is materialized
// as two slice-major word planes — a care plane and a value plane, one
// row of ceil(m/64) words per scan-in slice — and priced with popcounts
// and mask walks (see selenc's mask layout). Two strategies build the
// planes, chosen once per evaluator from the test set's measured care
// density:
//
//   - dense (d695-class cores): per-cube flat bit planes are built once
//     and cached for the whole (w,m) sweep; per design, wrapper
//     StimulusSegments bulk-copy them into chain-major rows and a 64×64
//     block transpose re-slices them to slice-major. No per-care-bit
//     work inside the sweep at all.
//   - sparse (industrial-class cores): care bits are scattered through
//     the StimulusMap directly into the slice-major planes; only dirty
//     rows are priced and re-zeroed, so work scales with the cube's
//     care-bit count, not the plane size.
//
// Both paths are exact and interchangeable (cross-checked in tests);
// all scratch is owned by the Evaluator and reused across the sweep, so
// steady-state evaluation performs no allocations (gate-enforced by
// `make check`).
package core

import (
	"soctap/internal/bitvec"
	"soctap/internal/selenc"
	"soctap/internal/wrapper"
)

// denseDensityThreshold selects the plane-building strategy: at or
// above this measured care density the cached-flat-plane + transpose
// path wins; below it the scatter path's care-bit-proportional work is
// cheaper than transposing mostly-empty planes.
const denseDensityThreshold = 0.15

// kernelScratch holds the word-kernel state of one Evaluator. All
// buffers grow to high-water marks and are reused across designs. The
// per-window data both kernels read — the flattened care refs and the
// dense path's m-independent flat planes — lives on the evaluator's
// evalWindow (eval.go) so mirrors can share a producer's window while
// owning their own scratch.
type kernelScratch struct {
	prepared *wrapper.Design // design the geometry below belongs to

	// Geometry of the prepared design.
	si         int // scan-in depth: number of slice rows priced
	chainWords int // words per slice row, ceil(m/64)
	siWords    int // words per chain row, ceil(si/64)

	// Sparse path: stimulus map plus dirty-row bookkeeping. The slice
	// planes are all-zero between patterns; scatters dirty rows, the
	// walk prices them, and the clear pass restores the invariant. In
	// streaming mode refs resolves lazily on first sparse use, so
	// dense-only passes never build (or retain) a stimulus map.
	refs  []wrapper.CellRef
	dirty []int32
	mark  []bool

	// Dense path: the chain-major intermediate planes.
	segs       []wrapper.StimulusSegment
	chainCare  []uint64 // [chainWords*64 rows][siWords]
	chainValue []uint64

	// Slice-major planes shared by both paths: [row][chainWords], rows
	// padded to siWords*64 on the dense path so whole transpose blocks
	// can land.
	sliceCare  []uint64
	sliceValue []uint64
	// sliceZeroed tracks the sparse path's all-zero plane invariant.
	// The dense kernel overwrites walked words without restoring them,
	// so in streaming mode — where the strategy may flip between
	// windows — a sparse window after a dense one must first re-zero
	// the planes. Resident evaluators never flip and keep the flag's
	// initial value for their whole life.
	sliceZeroed bool
}

// kernelPrepare (re)targets the kernel scratch at a wrapper design.
// Consecutive calls with the same design are free.
func (e *Evaluator) kernelPrepare(d *wrapper.Design) {
	ks := &e.kern
	if ks.prepared == d {
		return
	}
	ks.prepared = d
	ks.si = d.ScanIn
	ks.chainWords = (d.M + 63) / 64
	ks.siWords = (d.ScanIn + 63) / 64

	if e.streamed {
		e.kernelPrepareStreaming(d)
		return
	}

	if e.win.dense {
		ks.segs = d.StimulusSegments()
		e.win.buildFlatPlanesOnce(e.numBits)
		chainNeed := ks.chainWords * 64 * ks.siWords
		if cap(ks.chainCare) < chainNeed {
			ks.chainCare = make([]uint64, chainNeed)
			ks.chainValue = make([]uint64, chainNeed)
		}
		ks.chainCare = ks.chainCare[:chainNeed]
		ks.chainValue = ks.chainValue[:chainNeed]
		sliceNeed := ks.siWords * 64 * ks.chainWords
		if cap(ks.sliceCare) < sliceNeed {
			ks.sliceCare = make([]uint64, sliceNeed)
			ks.sliceValue = make([]uint64, sliceNeed)
		}
		ks.sliceCare = ks.sliceCare[:sliceNeed]
		ks.sliceValue = ks.sliceValue[:sliceNeed]
		return
	}

	ks.refs = d.StimulusMap()
	// Growth via make starts zeroed and the clear pass keeps every word
	// that was ever used zeroed, so re-slicing a larger capacity down
	// never exposes stale bits.
	sliceNeed := ks.si * ks.chainWords
	if cap(ks.sliceCare) < sliceNeed {
		ks.sliceCare = make([]uint64, sliceNeed)
		ks.sliceValue = make([]uint64, sliceNeed)
		ks.sliceZeroed = true
	}
	ks.sliceCare = ks.sliceCare[:sliceNeed]
	ks.sliceValue = ks.sliceValue[:sliceNeed]
	if cap(ks.mark) < ks.si {
		ks.mark = make([]bool, ks.si)
		ks.dirty = make([]int32, 0, ks.si)
	}
	ks.mark = ks.mark[:ks.si]
}

// kernelPrepareStreaming readies the scratch for a streamed evaluation
// pass, where the plane-building strategy may differ from window to
// window: both the dense path's segment/transpose state and the sparse
// path's scatter state are targeted at the design, with the slice
// planes at the dense (padded) size — a superset of the sparse layout,
// so either kernel can run against them. Per-cube flat planes are not
// built here; each dense window builds its own (buildFlatPlanes on the
// shared window). The stimulus map is deferred to the first sparse
// window (patternOpsSparse): a fused batch holds many designs alive at
// once, and a map per design is only worth its O(stimulus bits) memory
// when a sparse window actually scatters through it.
func (e *Evaluator) kernelPrepareStreaming(d *wrapper.Design) {
	ks := &e.kern
	ks.segs = d.StimulusSegments()
	ks.refs = nil

	chainNeed := ks.chainWords * 64 * ks.siWords
	if cap(ks.chainCare) < chainNeed {
		ks.chainCare = make([]uint64, chainNeed)
		ks.chainValue = make([]uint64, chainNeed)
	}
	ks.chainCare = ks.chainCare[:chainNeed]
	ks.chainValue = ks.chainValue[:chainNeed]

	sliceNeed := ks.siWords * 64 * ks.chainWords
	if cap(ks.sliceCare) < sliceNeed {
		ks.sliceCare = make([]uint64, sliceNeed)
		ks.sliceValue = make([]uint64, sliceNeed)
		ks.sliceZeroed = true
	}
	ks.sliceCare = ks.sliceCare[:sliceNeed]
	ks.sliceValue = ks.sliceValue[:sliceNeed]

	if cap(ks.mark) < ks.si {
		ks.mark = make([]bool, ks.si)
		ks.dirty = make([]int32, 0, ks.si)
	}
	ks.mark = ks.mark[:ks.si]
}

// buildFlatPlanesOnce materializes every cube of a resident window as
// dense care/value planes in flat stimulus order, once per evaluator:
// the flat layout does not depend on m, so the whole (w,m) sweep shares
// them. This whole-set allocation is exactly what the streaming path
// avoids — see buildFlatPlanes.
func (w *evalWindow) buildFlatPlanesOnce(numBits int) {
	if w.flatBuilt {
		return
	}
	w.flatWords = (numBits + 63) / 64
	n := w.count * w.flatWords
	w.flatCare = make([]uint64, n)
	w.flatValue = make([]uint64, n)
	w.scatterFlat()
	w.flatBuilt = true
}

// buildFlatPlanes materializes the loaded cube window as flat
// care/value planes, recycling the buffers across windows — the
// streaming counterpart of buildFlatPlanesOnce, bounded at window ×
// flatWords words instead of testset × flatWords.
func (w *evalWindow) buildFlatPlanes(numBits int) {
	w.flatWords = (numBits + 63) / 64
	n := w.count * w.flatWords
	if cap(w.flatCare) < n {
		w.flatCare = make([]uint64, n)
		w.flatValue = make([]uint64, n)
	} else {
		w.flatCare = w.flatCare[:n]
		w.flatValue = w.flatValue[:n]
		clear(w.flatCare)
		clear(w.flatValue)
	}
	w.scatterFlat()
}

// scatterFlat fills the flat planes from the window's packed care refs.
func (w *evalWindow) scatterFlat() {
	for j := 0; j < w.count; j++ {
		base := j * w.flatWords
		for _, p := range w.CubeRefs(j) {
			pos := int(p >> 1)
			bit := uint64(1) << uint(pos&63)
			w.flatCare[base+pos>>6] |= bit
			if p&1 != 0 {
				w.flatValue[base+pos>>6] |= bit
			}
		}
	}
}

// patternOps returns the selective-encoding operation count (codewords
// beyond the per-slice headers) for cube j under the prepared design.
func (e *Evaluator) patternOps(j int, k int64, groupCopy bool) int64 {
	if e.win.dense {
		return e.patternOpsDense(j, k, groupCopy)
	}
	return e.patternOpsSparse(j, k, groupCopy)
}

// patternOpsDense re-slices cube j with pure word operations: segment
// bulk-copies from the cached flat planes into chain-major rows, then a
// 64×64 block transpose into the slice-major planes.
func (e *Evaluator) patternOpsDense(j int, k int64, groupCopy bool) int64 {
	ks := &e.kern
	win := e.win
	cw, siW := ks.chainWords, ks.siWords
	ks.sliceZeroed = false

	clear(ks.chainCare)
	clear(ks.chainValue)
	fb := j * win.flatWords
	fCare := win.flatCare[fb : fb+win.flatWords]
	fValue := win.flatValue[fb : fb+win.flatWords]
	for _, s := range ks.segs {
		dstOff := s.Chain*siW*64 + s.DepthStart
		bitvec.CopyBits(ks.chainCare, dstOff, fCare, s.FlatStart, s.Len)
		bitvec.CopyBits(ks.chainValue, dstOff, fValue, s.FlatStart, s.Len)
	}

	// Transpose block (cb, db): chain rows [cb*64, cb*64+64) at depth
	// word db become slice rows [db*64, db*64+64) at chain word cb.
	// Every walked slice word is overwritten, so the slice planes need
	// no clearing. Padding chain rows (>= m) are never copied into and
	// stay zero.
	var a, b [64]uint64
	for cb := 0; cb < cw; cb++ {
		rowBase := cb * 64
		for db := 0; db < siW; db++ {
			for i := 0; i < 64; i++ {
				a[i] = ks.chainCare[(rowBase+i)*siW+db]
				b[i] = ks.chainValue[(rowBase+i)*siW+db]
			}
			bitvec.Transpose64(&a)
			bitvec.Transpose64(&b)
			out := db * 64
			for r := 0; r < 64; r++ {
				ks.sliceCare[(out+r)*cw+cb] = a[r]
				ks.sliceValue[(out+r)*cw+cb] = b[r]
			}
		}
	}

	var ops int64
	for row := 0; row < ks.si; row++ {
		o := row * cw
		ops += rowOps(ks.sliceCare[o:o+cw], ks.sliceValue[o:o+cw], k, groupCopy)
	}
	return ops
}

// patternOpsSparse scatters cube j's care bits through the stimulus map
// into the slice-major planes, prices the dirty rows, and re-zeroes
// them so the all-zero invariant holds for the next pattern.
func (e *Evaluator) patternOpsSparse(j int, k int64, groupCopy bool) int64 {
	ks := &e.kern
	cw := ks.chainWords
	if ks.refs == nil {
		// Deferred from kernelPrepareStreaming: the design's stimulus
		// map is only materialized once a sparse window needs it (it is
		// sync.Once-cached on the design, so this is allocation-free
		// after the first sparse window per design).
		ks.refs = ks.prepared.StimulusMap()
	}
	if !ks.sliceZeroed {
		// A dense window (or a fresh re-slice over its leavings) broke
		// the all-zero invariant; restore it across the full capacity so
		// later re-slices stay covered too.
		clear(ks.sliceCare[:cap(ks.sliceCare)])
		clear(ks.sliceValue[:cap(ks.sliceValue)])
		ks.sliceZeroed = true
	}
	dirty := ks.dirty[:0]
	for _, p := range e.win.CubeRefs(j) {
		r := ks.refs[p>>1]
		row := int(r.Depth)
		if !ks.mark[row] {
			ks.mark[row] = true
			dirty = append(dirty, int32(row))
		}
		wi := row*cw + int(r.Chain)>>6
		bit := uint64(1) << uint(r.Chain&63)
		ks.sliceCare[wi] |= bit
		if p&1 != 0 {
			ks.sliceValue[wi] |= bit
		}
	}
	var ops int64
	for _, row := range dirty {
		o := int(row) * cw
		ops += rowOps(ks.sliceCare[o:o+cw], ks.sliceValue[o:o+cw], k, groupCopy)
	}
	for _, row := range dirty {
		o := int(row) * cw
		clear(ks.sliceCare[o : o+cw])
		clear(ks.sliceValue[o : o+cw])
		ks.mark[row] = false
	}
	ks.dirty = dirty[:0]
	return ops
}

// rowOps prices one slice row held as care/value word masks. The
// costing itself lives with the encoder it models — see
// selenc.SliceOpsMask, which agrees with selenc.SliceCostMask minus
// the header codeword.
func rowOps(care, value []uint64, k int64, groupCopy bool) int64 {
	return selenc.SliceOpsMask(k, groupCopy, care, value)
}
