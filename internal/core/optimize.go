package core

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"soctap/internal/decomp"
	"soctap/internal/dictenc"
	"soctap/internal/sched"
	"soctap/internal/soc"
	"soctap/internal/tam"
)

// Style selects the test-access architecture style (Figure 4 of the
// paper).
type Style int

const (
	// StyleNoTDC (Fig. 4a): cores are accessed directly over TAM wires,
	// no compression.
	StyleNoTDC Style = iota
	// StyleTDCPerTAM (Fig. 4b): one decompressor at the head of each
	// TAM expands the bus onto wide internal wrapper-chain wiring shared
	// by the cores on that TAM. Cores whose structure cannot use the
	// bus's expansion band are tested in bypass (no-TDC) mode.
	StyleTDCPerTAM
	// StyleTDCPerCore (Fig. 4c, the proposed scheme): each core has its
	// own decompressor between its wrapper and the TAM; per core, the
	// optimizer picks compressed or direct access, whichever is faster.
	StyleTDCPerCore
)

// String names the style.
func (s Style) String() string {
	switch s {
	case StyleNoTDC:
		return "no-tdc"
	case StyleTDCPerTAM:
		return "tdc-per-tam"
	case StyleTDCPerCore:
		return "tdc-per-core"
	default:
		return fmt.Sprintf("Style(%d)", int(s))
	}
}

// Options controls the SOC-level optimization.
type Options struct {
	Style  Style
	Tables TableOptions
	// MaxTAMs caps the number of TAM buses explored. Zero defaults to
	// min(number of cores, W_TAM).
	MaxTAMs int
	// MaxIterations bounds hill-climbing rounds per bus count. Zero
	// defaults to 64.
	MaxIterations int
	// Cache, when non-nil, memoizes per-core lookup tables across runs.
	Cache *Cache
	// DisableRefinement turns off the wire-moving local search (ablation
	// knob); only even partitions are considered.
	DisableRefinement bool
	// NaiveOrder schedules cores in declaration order instead of
	// longest-first (ablation knob).
	NaiveOrder bool
	// EnableDict extends the per-core choice with dictionary coding
	// (technique selection, the ATS'08 follow-up). Only meaningful with
	// StyleTDCPerCore. DictSizes defaults to DefaultDictSizes.
	EnableDict bool
	DictSizes  []int
	// MergeSearch additionally seeds the architecture search with a
	// bottom-up bus-merging pass (in the spirit of Goel & Marinissen's
	// TR-Architect): start from many narrow buses and repeatedly merge
	// the pair that shortens the schedule most. The best of the even-
	// split and merge-seeded searches wins.
	MergeSearch bool
	// Workers bounds the evaluation engine's parallelism: per-core
	// lookup tables are built concurrently and each table's (w, m)
	// exploration fans out over the same bound (unless Tables.Workers
	// overrides it). Zero defaults to runtime.GOMAXPROCS(0); 1 recovers
	// the fully sequential engine. Results are bit-identical for every
	// setting.
	Workers int
}

// CoreChoice reports the configuration chosen for one core.
type CoreChoice struct {
	Core   string
	Bus    int
	Start  int64
	Config Config
}

// Result is a complete SOC test plan.
type Result struct {
	SOC       *soc.SOC
	Style     Style
	WTAM      int
	Partition tam.Partition
	Schedule  *sched.Schedule
	Choices   []CoreChoice

	TestTime int64 // schedule makespan in cycles
	Volume   int64 // total ATE stimulus storage in bits

	// InternalWires counts the wrapper-chain wires behind the
	// decompressors: the long shared buses of the per-TAM style versus
	// the short local fan-out of the per-core style. For the no-TDC
	// style it equals the TAM width.
	InternalWires int
	Decompressors int
	DecompFFs     int
	DecompGates   int

	// TableSeconds is the time spent building per-core lookup tables
	// (the "TDC time" the paper excludes from its CPU column);
	// CPUSeconds is the architecture search and scheduling time.
	TableSeconds float64
	CPUSeconds   float64
}

// Optimize designs a test architecture and schedule for the SOC under a
// total TAM width budget, following the four-step heuristic of Section 3
// of the paper: wrapper design and decompression design are captured in
// the per-core lookup tables; architecture design enumerates bus counts
// with even splits refined by single-wire moves; scheduling is greedy
// longest-first.
func Optimize(s *soc.SOC, wtam int, opts Options) (*Result, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	if wtam < 1 {
		return nil, fmt.Errorf("core: W_TAM = %d", wtam)
	}
	if opts.MaxIterations == 0 {
		opts.MaxIterations = 64
	}
	tabOpts := opts.Tables
	if tabOpts.MaxWidth == 0 {
		tabOpts.MaxWidth = wtam
		if tabOpts.MaxWidth < 64 {
			tabOpts.MaxWidth = 64
		}
	}
	if tabOpts.MaxWidth < wtam {
		return nil, fmt.Errorf("core: table MaxWidth %d below W_TAM %d", tabOpts.MaxWidth, wtam)
	}

	if tabOpts.Workers == 0 {
		tabOpts.Workers = opts.Workers
	}

	tStart := time.Now()
	selectors, err := buildSelectors(s, tabOpts, opts)
	if err != nil {
		return nil, err
	}
	tableSeconds := time.Since(tStart).Seconds()

	dur := durationFn(selectors)
	schedule := func(p tam.Partition) (*sched.Schedule, error) {
		if opts.NaiveOrder {
			return sched.InOrder(len(s.Cores), p, dur)
		}
		return sched.Greedy(len(s.Cores), p, dur)
	}

	searchStart := time.Now()
	kmax := opts.MaxTAMs
	if kmax <= 0 {
		kmax = len(s.Cores)
	}
	if kmax > wtam {
		kmax = wtam
	}

	var bestPart tam.Partition
	var bestSched *sched.Schedule
	consider := func(part tam.Partition, cur *sched.Schedule) {
		if !opts.DisableRefinement {
			part, cur = refine(part, cur, schedule, opts.MaxIterations)
		}
		if bestSched == nil || cur.Makespan < bestSched.Makespan {
			bestPart, bestSched = part, cur
		}
	}
	for k := 1; k <= kmax; k++ {
		part, err := tam.Even(wtam, k)
		if err != nil {
			return nil, err
		}
		cur, err := schedule(part)
		if err != nil {
			return nil, fmt.Errorf("core: scheduling %d buses: %w", k, err)
		}
		consider(part, cur)
	}
	if opts.MergeSearch {
		part, cur, err := mergeSearch(wtam, kmax, schedule)
		if err != nil {
			return nil, err
		}
		consider(part, cur)
	}
	cpuSeconds := time.Since(searchStart).Seconds()

	res := &Result{
		SOC:          s,
		Style:        opts.Style,
		WTAM:         wtam,
		Partition:    bestPart,
		Schedule:     bestSched,
		TestTime:     bestSched.Makespan,
		TableSeconds: tableSeconds,
		CPUSeconds:   cpuSeconds,
	}
	fillDetails(res, selectors)
	return res, nil
}

// buildSelectors prepares each core's configuration selector, building
// the per-core lookup tables concurrently (bounded by opts.Workers).
// Cache hits go through the singleflight Cache.Get, so concurrent
// optimizer runs sharing a cache never duplicate a build. The first
// error in core order is returned.
func buildSelectors(s *soc.SOC, tabOpts TableOptions, opts Options) ([]selector, error) {
	build := func(i int) (selector, error) {
		c := s.Cores[i]
		var t *Table
		var err error
		if opts.Cache != nil {
			t, err = opts.Cache.Get(c, tabOpts)
		} else {
			t, err = BuildTable(c, tabOpts)
		}
		if err != nil {
			return nil, err
		}
		if opts.EnableDict && opts.Style == StyleTDCPerCore {
			sel, err := selectTechniquesWithTable(c, t, opts.DictSizes)
			if err != nil {
				return nil, err
			}
			return sel.selector(), nil
		}
		return tableSelector(opts.Style, t), nil
	}

	selectors := make([]selector, len(s.Cores))
	workers := resolveWorkers(opts.Workers, len(s.Cores))
	if workers == 1 {
		for i := range s.Cores {
			sel, err := build(i)
			if err != nil {
				return nil, err
			}
			selectors[i] = sel
		}
		return selectors, nil
	}

	errs := make([]error, len(s.Cores))
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(s.Cores) {
					return
				}
				selectors[i], errs[i] = build(i)
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return selectors, nil
}

// mergeSearch runs the bottom-up pass: start from kmax unit-ish buses
// and repeatedly merge the pair of buses whose union shortens the
// schedule most (or hurts it least), keeping the best partition seen.
func mergeSearch(wtam, kmax int,
	schedule func(tam.Partition) (*sched.Schedule, error)) (tam.Partition, *sched.Schedule, error) {
	part, err := tam.Even(wtam, kmax)
	if err != nil {
		return nil, nil, err
	}
	cur, err := schedule(part)
	if err != nil {
		return nil, nil, fmt.Errorf("core: merge search seed: %w", err)
	}
	bestPart, bestSched := part, cur
	for len(part) > 1 {
		var nextPart tam.Partition
		var nextSched *sched.Schedule
		// Widths matter, positions do not: merging bus i into bus j is
		// characterized by the merged width, so only distinct pairs of
		// widths need scheduling.
		tried := map[[2]int]bool{}
		for i := 0; i < len(part); i++ {
			for j := i + 1; j < len(part); j++ {
				key := [2]int{part[i], part[j]}
				if key[0] > key[1] {
					key[0], key[1] = key[1], key[0]
				}
				if tried[key] {
					continue
				}
				tried[key] = true
				merged := make(tam.Partition, 0, len(part)-1)
				merged = append(merged, part[:i]...)
				merged = append(merged, part[i+1:j]...)
				merged = append(merged, part[j+1:]...)
				merged = append(merged, part[i]+part[j])
				sc, err := schedule(merged)
				if err != nil {
					continue
				}
				if nextSched == nil || sc.Makespan < nextSched.Makespan {
					nextPart, nextSched = merged, sc
				}
			}
		}
		if nextSched == nil {
			break
		}
		part, cur = nextPart, nextSched
		if cur.Makespan < bestSched.Makespan {
			bestPart, bestSched = part, cur
		}
	}
	return bestPart, bestSched, nil
}

// refine hill-climbs over single-wire moves between buses, taking the
// best improving neighbor each round (partitions deduplicated by
// canonical key).
func refine(part tam.Partition, cur *sched.Schedule,
	schedule func(tam.Partition) (*sched.Schedule, error), maxIter int) (tam.Partition, *sched.Schedule) {
	seen := map[string]bool{part.Key(): true}
	for iter := 0; iter < maxIter; iter++ {
		var bestPart tam.Partition
		var bestSched *sched.Schedule
		for from := range part {
			for to := range part {
				if from == to {
					continue
				}
				q, err := part.MoveWire(from, to)
				if err != nil {
					continue
				}
				key := q.Key()
				if seen[key] {
					continue
				}
				seen[key] = true
				sc, err := schedule(q)
				if err != nil {
					continue
				}
				if bestSched == nil || sc.Makespan < bestSched.Makespan {
					bestPart, bestSched = q, sc
				}
			}
		}
		if bestSched == nil || bestSched.Makespan >= cur.Makespan {
			return part, cur
		}
		part, cur = bestPart, bestSched
	}
	return part, cur
}

// selector resolves the configuration one core uses on a bus of a given
// width.
type selector func(width int) Config

// tableSelector adapts a lookup table to a selector under a style.
func tableSelector(style Style, t *Table) selector {
	return func(width int) Config { return chooseConfig(style, t, width) }
}

// selector adapts a technique selection to the optimizer.
func (ts *TechSelection) selector() selector {
	return func(width int) Config {
		if width < 1 {
			return Config{}
		}
		if width >= len(ts.PerWidth) {
			width = len(ts.PerWidth) - 1
		}
		return ts.PerWidth[width]
	}
}

// durationFn builds the scheduler's duration callback.
func durationFn(selectors []selector) sched.Duration {
	return func(c, width int) int64 {
		cfg := selectors[c](width)
		if !cfg.Feasible {
			return 0
		}
		return cfg.Time
	}
}

// chooseConfig resolves the configuration a core uses on a bus of the
// given width under a style.
func chooseConfig(style Style, t *Table, width int) Config {
	if width < 1 {
		return Config{}
	}
	if width > t.Opts.MaxWidth {
		width = t.Opts.MaxWidth
	}
	switch style {
	case StyleNoTDC:
		return t.NoTDC[width]
	case StyleTDCPerTAM:
		// The TAM-head decompressor consumes the full bus width; cores
		// that cannot use the expansion band run in bypass mode.
		if cfg := t.TDCExact[width]; cfg.Feasible {
			return cfg
		}
		return t.NoTDC[width]
	case StyleTDCPerCore:
		return t.Best[width]
	default:
		return Config{}
	}
}

// fillDetails derives volumes, choices and hardware accounting from the
// winning schedule.
func fillDetails(res *Result, selectors []selector) {
	res.Choices = make([]CoreChoice, 0, len(res.SOC.Cores))
	// Per-bus widest decompressor output for the per-TAM style.
	busM := make([]int, len(res.Partition))

	for _, it := range res.Schedule.Items {
		cfg := selectors[it.Core](res.Partition[it.Bus])
		res.Choices = append(res.Choices, CoreChoice{
			Core:   res.SOC.Cores[it.Core].Name,
			Bus:    it.Bus,
			Start:  it.Start,
			Config: cfg,
		})
		res.Volume += cfg.Volume
		if cfg.UseTDC {
			switch res.Style {
			case StyleTDCPerCore:
				res.InternalWires += cfg.M
				res.Decompressors++
				if cfg.Codec == CodecDict {
					hc := dictenc.CostFor(cfg.M, cfg.DictWords)
					res.DecompFFs += hc.FFs
					res.DecompGates += hc.Gates + hc.SRAMBits/8 // SRAM counted as gate equivalents
				} else {
					hc := decomp.HardwareCost(cfg.M)
					res.DecompFFs += hc.FlipFlops
					res.DecompGates += hc.Gates
				}
			case StyleTDCPerTAM:
				if cfg.M > busM[it.Bus] {
					busM[it.Bus] = cfg.M
				}
			}
		}
	}
	switch res.Style {
	case StyleNoTDC:
		res.InternalWires = res.Partition.TotalWidth()
	case StyleTDCPerTAM:
		for _, m := range busM {
			if m == 0 {
				continue
			}
			res.InternalWires += m
			res.Decompressors++
			hc := decomp.HardwareCost(m)
			res.DecompFFs += hc.FlipFlops
			res.DecompGates += hc.Gates
		}
	}
}
