package core

import (
	"context"
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"

	"soctap/internal/decomp"
	"soctap/internal/dictenc"
	"soctap/internal/sched"
	"soctap/internal/soc"
	"soctap/internal/tam"
	"soctap/internal/telemetry"
)

// Style selects the test-access architecture style (Figure 4 of the
// paper).
type Style int

const (
	// StyleNoTDC (Fig. 4a): cores are accessed directly over TAM wires,
	// no compression.
	StyleNoTDC Style = iota
	// StyleTDCPerTAM (Fig. 4b): one decompressor at the head of each
	// TAM expands the bus onto wide internal wrapper-chain wiring shared
	// by the cores on that TAM. Cores whose structure cannot use the
	// bus's expansion band are tested in bypass (no-TDC) mode.
	StyleTDCPerTAM
	// StyleTDCPerCore (Fig. 4c, the proposed scheme): each core has its
	// own decompressor between its wrapper and the TAM; per core, the
	// optimizer picks compressed or direct access, whichever is faster.
	StyleTDCPerCore
)

// String names the style.
func (s Style) String() string {
	switch s {
	case StyleNoTDC:
		return "no-tdc"
	case StyleTDCPerTAM:
		return "tdc-per-tam"
	case StyleTDCPerCore:
		return "tdc-per-core"
	default:
		return fmt.Sprintf("Style(%d)", int(s))
	}
}

// Options controls the SOC-level optimization.
type Options struct {
	Style  Style
	Tables TableOptions
	// MaxTAMs caps the number of TAM buses explored. Zero defaults to
	// min(number of cores, W_TAM).
	MaxTAMs int
	// MaxIterations bounds hill-climbing rounds per bus count. Zero
	// defaults to 64.
	MaxIterations int
	// Cache, when non-nil, memoizes per-core lookup tables across runs.
	Cache *Cache
	// DisableRefinement turns off the wire-moving local search (ablation
	// knob); only even partitions are considered.
	DisableRefinement bool
	// NaiveOrder schedules cores in declaration order instead of
	// longest-first (ablation knob).
	NaiveOrder bool
	// EnableDict extends the per-core choice with dictionary coding
	// (technique selection, the ATS'08 follow-up). Only meaningful with
	// StyleTDCPerCore. DictSizes defaults to DefaultDictSizes.
	EnableDict bool
	DictSizes  []int
	// MergeSearch additionally seeds the architecture search with a
	// bottom-up bus-merging pass (in the spirit of Goel & Marinissen's
	// TR-Architect): start from many narrow buses and repeatedly merge
	// the pair that shortens the schedule most. The best of the even-
	// split and merge-seeded searches wins.
	MergeSearch bool
	// Workers bounds the evaluation engine's parallelism: per-core
	// lookup tables are built concurrently, each table's (w, m)
	// exploration fans out over the same bound (unless Tables.Workers
	// overrides it), and the architecture search evaluates candidate
	// partitions concurrently. Zero defaults to runtime.GOMAXPROCS(0);
	// 1 recovers the fully sequential engine. Results are bit-identical
	// for every setting.
	Workers int
	// TableCacheDir, when non-empty, layers a persistent on-disk table
	// store under the (possibly implicit) in-memory Cache: lookup tables
	// are content-addressed by core structure and options, loaded from
	// disk when present, and written back after a build. Corrupt, stale
	// or truncated entries are rebuilt (observable through the telemetry
	// counters and Cache.SetWarn).
	TableCacheDir string
	// TableCacheMemBytes bounds the in-memory table cache to roughly
	// this many resident bytes (0 = unbounded): past the budget the
	// least-recently-used tables are evicted, costing at most a disk
	// reload or rebuild on the next request. Applies to the run's Cache
	// (implicit or supplied).
	TableCacheMemBytes int64
	// TableCacheDiskBytes bounds the on-disk store under TableCacheDir
	// to this many bytes (0 = unbounded), enforced by oldest-access
	// eviction on write-back.
	TableCacheDiskBytes int64
	// Telemetry, when non-nil, is the parent span this run records
	// under: phase spans (tables with one child per core, search with
	// k-sweep/refine/merge children, schedule) plus the subsystem
	// counters registered on the span's sink. Nil disables all
	// instrumentation at zero cost.
	Telemetry *telemetry.Span
	// TelemetryWriter, when non-nil, receives the telemetry snapshot as
	// deterministic JSON after a successful run. If Telemetry is nil a
	// private sink is created for the run.
	TelemetryWriter io.Writer
}

// CoreChoice reports the configuration chosen for one core.
type CoreChoice struct {
	Core   string
	Bus    int
	Start  int64
	Config Config
}

// Result is a complete SOC test plan.
type Result struct {
	SOC       *soc.SOC
	Style     Style
	WTAM      int
	Partition tam.Partition
	Schedule  *sched.Schedule
	Choices   []CoreChoice

	TestTime int64 // schedule makespan in cycles
	Volume   int64 // total ATE stimulus storage in bits

	// InternalWires counts the wrapper-chain wires behind the
	// decompressors: the long shared buses of the per-TAM style versus
	// the short local fan-out of the per-core style. For the no-TDC
	// style it equals the TAM width.
	InternalWires int
	Decompressors int
	DecompFFs     int
	DecompGates   int

	// TableSeconds is the time spent building per-core lookup tables
	// (the "TDC time" the paper excludes from its CPU column);
	// CPUSeconds is the architecture search and scheduling time.
	TableSeconds float64
	CPUSeconds   float64
}

// Optimize designs a test architecture and schedule for the SOC under a
// total TAM width budget, following the four-step heuristic of Section 3
// of the paper: wrapper design and decompression design are captured in
// the per-core lookup tables; architecture design enumerates bus counts
// with even splits refined by single-wire moves; scheduling is greedy
// longest-first.
func Optimize(s *soc.SOC, wtam int, opts Options) (*Result, error) {
	return OptimizeContext(context.Background(), s, wtam, opts)
}

// OptimizeContext is Optimize governed by ctx. Cancellation is
// cooperative and fine-grained — observed at every (w, m) table point
// and every candidate schedule — so a cancelled run returns ctx.Err()
// promptly, with all worker goroutines drained (never leaked) and a
// `cancel.runs` mark on the run's telemetry sink. A nil ctx behaves
// like context.Background(), and an uncancelled run is bit-identical
// to Optimize.
func OptimizeContext(ctx context.Context, s *soc.SOC, wtam int, opts Options) (res *Result, err error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	if wtam < 1 {
		return nil, fmt.Errorf("core: W_TAM = %d", wtam)
	}
	if opts.MaxIterations == 0 {
		opts.MaxIterations = 64
	}
	tabOpts := opts.Tables
	if tabOpts.MaxWidth == 0 {
		tabOpts.MaxWidth = wtam
		if tabOpts.MaxWidth < 64 {
			tabOpts.MaxWidth = 64
		}
	}
	if tabOpts.MaxWidth < wtam {
		return nil, fmt.Errorf("core: table MaxWidth %d below W_TAM %d", tabOpts.MaxWidth, wtam)
	}

	if tabOpts.Workers == 0 {
		tabOpts.Workers = opts.Workers
	}
	if opts.TableCacheDir != "" || opts.TableCacheMemBytes > 0 || opts.TableCacheDiskBytes > 0 {
		if opts.Cache == nil {
			opts.Cache = new(Cache)
		}
		if opts.TableCacheMemBytes > 0 {
			opts.Cache.SetMemLimit(opts.TableCacheMemBytes)
		}
		if opts.TableCacheDiskBytes > 0 {
			opts.Cache.SetDiskLimit(opts.TableCacheDiskBytes)
		}
		if opts.TableCacheDir != "" {
			opts.Cache.SetDir(opts.TableCacheDir)
		}
	}
	if opts.TelemetryWriter != nil && opts.Telemetry == nil {
		opts.Telemetry = telemetry.New().Root()
	}
	tel := opts.Telemetry
	defer func() {
		if canceled(err) {
			tel.Sink().Counter("cancel.runs").Inc()
		}
	}()

	tStart := time.Now()
	spTables := tel.Child("tables")
	tablesTiming := spTables.Begin()
	selectors, err := buildSelectors(ctx, s, tabOpts, opts, spTables)
	if err != nil {
		return nil, err
	}
	tablesTiming.End()
	tableSeconds := time.Since(tStart).Seconds()

	searchStart := time.Now()
	kmax := opts.MaxTAMs
	if kmax <= 0 {
		kmax = len(s.Cores)
	}
	if kmax > wtam {
		kmax = wtam
	}

	sctx := newSearchCtx(ctx, s, wtam, selectors, opts)

	spSearch := tel.Child("search")
	spRefine := spSearch.Child("refine")
	searchTiming := spSearch.Begin()
	var bestPart tam.Partition
	bestMk := int64(-1)
	consider := func(part tam.Partition, mk int64) {
		if !opts.DisableRefinement {
			rt := spRefine.Begin()
			part, mk = sctx.refine(part, mk, opts.MaxIterations)
			rt.End()
		}
		if bestMk < 0 || mk < bestMk {
			bestPart, bestMk = part, mk
		}
	}
	// Even splits for every bus count are independent; evaluate the
	// whole sweep as one batch, then refine in k order.
	evens := make([]tam.Partition, 0, kmax)
	for k := 1; k <= kmax; k++ {
		part, err := tam.Even(wtam, k)
		if err != nil {
			return nil, err
		}
		evens = append(evens, part)
	}
	kt := spSearch.Child("k-sweep").Begin()
	evenMks := sctx.evalBatch(evens)
	kt.End()
	// Distinguish an aborted search from genuine infeasibility before
	// interpreting the batch: a cancelled batch leaves non-positive
	// makespans that mean nothing.
	if err := sctx.failure(); err != nil {
		return nil, err
	}
	for k, mk := range evenMks {
		if mk <= 0 {
			// Recover the scheduler's error for the message.
			_, err := sctx.schedule(evens[k])
			return nil, fmt.Errorf("core: scheduling %d buses: %w", k+1, err)
		}
		consider(evens[k], mk)
	}
	if err := sctx.failure(); err != nil {
		return nil, err
	}
	if opts.MergeSearch {
		mt := spSearch.Child("merge").Begin()
		part, mk, err := sctx.mergeSearch(wtam, kmax)
		mt.End()
		if err != nil {
			return nil, err
		}
		consider(part, mk)
		if err := sctx.failure(); err != nil {
			return nil, err
		}
	}
	searchTiming.End()
	// Materialize the winning schedule (the search compares makespans
	// only); by construction it reproduces bestMk.
	st := tel.Child("schedule").Begin()
	bestSched, err := sctx.schedule(bestPart)
	st.End()
	if err != nil {
		return nil, err
	}
	cpuSeconds := time.Since(searchStart).Seconds()

	res = &Result{
		SOC:          s,
		Style:        opts.Style,
		WTAM:         wtam,
		Partition:    bestPart,
		Schedule:     bestSched,
		TestTime:     bestSched.Makespan,
		TableSeconds: tableSeconds,
		CPUSeconds:   cpuSeconds,
	}
	fillDetails(res, selectors)
	if opts.TelemetryWriter != nil {
		if err := tel.Sink().Snapshot().WriteJSON(opts.TelemetryWriter); err != nil {
			return nil, fmt.Errorf("core: writing telemetry: %w", err)
		}
	}
	return res, nil
}

// buildSelectors prepares each core's configuration selector, building
// the per-core lookup tables concurrently (bounded by opts.Workers).
// Cache hits go through the singleflight Cache.Get, so concurrent
// optimizer runs sharing a cache never duplicate a build. The first
// error in core order is returned. Per-core telemetry spans are created
// under parent on the calling goroutine, in core order, before the
// fan-out — worker scheduling therefore never changes the span tree.
//
// Workers stop claiming cores once ctx ends, and a panic during one
// core's build is contained on that worker as a *PanicError naming the
// core (the build of the other cores proceeds, matching how other
// build errors behave).
func buildSelectors(ctx context.Context, s *soc.SOC, tabOpts TableOptions, opts Options, parent *telemetry.Span) ([]selector, error) {
	sink := parent.Sink()
	coreSpans := make([]*telemetry.Span, len(s.Cores))
	for i, c := range s.Cores {
		coreSpans[i] = parent.Child("core:" + c.Name)
	}
	build := func(i int) (sel selector, err error) {
		defer func() {
			if r := recover(); r != nil {
				sink.Counter("panic.recovered").Inc()
				sel, err = nil, newPanicError(s.Cores[i].Name, "table/selector build", r)
			}
		}()
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		ct := coreSpans[i].Begin()
		defer ct.End()
		c := s.Cores[i]
		var t *Table
		if opts.Cache != nil {
			t, err = opts.Cache.get(ctx, c, tabOpts, sink)
		} else {
			t, err = buildTable(ctx, c, tabOpts, sink)
		}
		if err != nil {
			return nil, err
		}
		if opts.EnableDict && opts.Style == StyleTDCPerCore {
			sel, err := selectTechniquesWithTable(c, t, opts.DictSizes)
			if err != nil {
				return nil, err
			}
			return sel.selector(), nil
		}
		return tableSelector(opts.Style, t), nil
	}

	selectors := make([]selector, len(s.Cores))
	workers := resolveWorkers(opts.Workers, len(s.Cores))
	if workers == 1 {
		for i := range s.Cores {
			sel, err := build(i)
			if err != nil {
				return nil, err
			}
			selectors[i] = sel
		}
		return selectors, nil
	}

	errs := make([]error, len(s.Cores))
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				if ctx.Err() != nil {
					return
				}
				i := int(next.Add(1)) - 1
				if i >= len(s.Cores) {
					return
				}
				selectors[i], errs[i] = build(i)
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return selectors, nil
}

// searchCtx carries the architecture search's shared state: the dense
// duration matrix, the search-wide makespan memo, and the worker pool
// configuration. One context spans the whole search of an Optimize call
// — the k-loop, every refine, and the merge pass share the memo, so a
// partition scheduled by one phase is never re-scheduled by another.
type searchCtx struct {
	nCores  int
	wtam    int
	durMat  []int64 // dur[core*(wtam+1)+width], widths 1..wtam
	naive   bool
	workers int
	// ctx governs the search; check is ctx.Err bound once when ctx is
	// cancellable (nil otherwise, so Background costs nothing) and is
	// consulted per candidate schedule through sched.Planner.Check.
	ctx   context.Context
	check func() error
	// panicked/panicMu/panicErr record the first panic contained on a
	// batch worker (the flag is the lock-free fast-path signal);
	// failure() surfaces it (or the context error) between search
	// phases.
	panicked atomic.Bool
	panicMu  sync.Mutex
	panicErr error
	sink     *telemetry.Sink
	// memo maps Partition.Key() (the canonical width multiset — the
	// greedy makespan is invariant under bus reordering) to the
	// schedule's makespan; infeasible partitions memoize as -1.
	memo map[string]int64
	// durFn is sc.dur bound once, so the hot loops don't allocate a
	// method value per schedule evaluation.
	durFn sched.Duration
	// planner is the calling goroutine's scratch; batch workers get
	// their own.
	planner sched.Planner

	// Makespan-memo accounting: hits are candidates served from the
	// memo (including within-batch duplicates), misses are schedules
	// actually computed. Both are deterministic for any Workers setting
	// because batch contents are. placements is shared by every worker
	// planner (the counter is atomic).
	memoHits   *telemetry.Counter
	memoMisses *telemetry.Counter
	placements *telemetry.Counter
	// scheduleHist distributes per-placement wall clock; shared by every
	// worker planner like placements (the histogram is atomic).
	scheduleHist *telemetry.Histogram
}

// newSearchCtx precomputes the dense duration matrix: one flat int64
// per (core, width) pair, replacing the selector->chooseConfig->table
// closure chain in the scheduler's inner loop with an array load.
func newSearchCtx(ctx context.Context, s *soc.SOC, wtam int, selectors []selector, opts Options) *searchCtx {
	sc := &searchCtx{
		nCores:  len(s.Cores),
		wtam:    wtam,
		durMat:  make([]int64, len(s.Cores)*(wtam+1)),
		naive:   opts.NaiveOrder,
		workers: opts.Workers,
		ctx:     ctx,
		memo:    make(map[string]int64),
		sink:    opts.Telemetry.Sink(),
	}
	if ctx.Done() != nil {
		sc.check = ctx.Err
		sc.planner.Check = sc.check
	}
	for c := range s.Cores {
		row := sc.durMat[c*(wtam+1) : (c+1)*(wtam+1)]
		for w := 1; w <= wtam; w++ {
			if cfg := selectors[c](w); cfg.Feasible {
				row[w] = cfg.Time
			}
		}
	}
	sc.durFn = sc.dur
	if sink := opts.Telemetry.Sink(); sink != nil {
		sc.memoHits = sink.Counter("search.memo_hits")
		sc.memoMisses = sink.Counter("search.memo_misses")
		sc.placements = sink.Counter("sched.placements")
		sc.scheduleHist = sink.Histogram("sched.schedule_seconds")
		sc.planner.Placements = sc.placements
		sc.planner.ScheduleSeconds = sc.scheduleHist
	}
	return sc
}

// notePanic records the first panic contained on a batch worker.
func (sc *searchCtx) notePanic(r any) {
	sc.sink.Counter("panic.recovered").Inc()
	sc.panicMu.Lock()
	if sc.panicErr == nil {
		sc.panicErr = newPanicError("", "schedule evaluation", r)
	}
	sc.panicMu.Unlock()
	sc.panicked.Store(true)
}

// aborted is the lock-free per-candidate abort check of the batch
// loops: a noted panic or a done context. With a Background context and
// no panic it is one atomic load.
func (sc *searchCtx) aborted() bool {
	if sc.panicked.Load() {
		return true
	}
	return sc.check != nil && sc.check() != nil
}

// failure returns the error that should abort the search, if any: a
// contained worker panic first (it is the more specific diagnosis),
// then the context's cancellation. Optimize consults it between
// search phases, before interpreting batch results — a cancelled batch
// leaves non-positive makespans that must not be read as infeasibility.
func (sc *searchCtx) failure() error {
	sc.panicMu.Lock()
	err := sc.panicErr
	sc.panicMu.Unlock()
	if err != nil {
		return err
	}
	if sc.check != nil {
		return sc.check()
	}
	return nil
}

// dur is the scheduler's duration callback over the dense matrix.
// Partition widths never exceed W_TAM, but clamp defensively to match
// chooseConfig's behavior.
func (sc *searchCtx) dur(core, width int) int64 {
	if width < 1 {
		return 0
	}
	if width > sc.wtam {
		width = sc.wtam
	}
	return sc.durMat[core*(sc.wtam+1)+width]
}

// schedule materializes the full schedule for a partition — used only
// for the search winner; the search itself runs on makespans.
func (sc *searchCtx) schedule(p tam.Partition) (*sched.Schedule, error) {
	if sc.naive {
		return sc.planner.InOrder(sc.nCores, p, sc.durFn)
	}
	return sc.planner.Greedy(sc.nCores, p, sc.durFn)
}

// makespan evaluates one partition on the given planner: the schedule's
// makespan, or -1 when some core is infeasible on every bus.
func (sc *searchCtx) makespan(p tam.Partition, pl *sched.Planner) int64 {
	var mk int64
	var err error
	if sc.naive {
		mk, err = pl.InOrderMakespan(sc.nCores, p, sc.durFn)
	} else {
		mk, err = pl.GreedyMakespan(sc.nCores, p, sc.durFn)
	}
	if err != nil {
		return -1
	}
	return mk
}

// evalBatch returns the makespan of every candidate partition (aligned
// with cands; -1 marks infeasible), serving repeats from the memo and
// fanning the misses out over the worker pool. Each miss is a pure
// function of its partition and is written to an indexed slot, so the
// result — and every search decision derived from it — is bit-identical
// for any Workers setting.
func (sc *searchCtx) evalBatch(cands []tam.Partition) []int64 {
	return sc.evalBatchKeys(cands, nil)
}

// evalBatchKeys is evalBatch with the candidates' canonical keys
// precomputed (callers that already derived them for dedup pass them
// through instead of re-canonicalizing).
func (sc *searchCtx) evalBatchKeys(cands []tam.Partition, keys []string) []int64 {
	out := make([]int64, len(cands))
	if keys == nil {
		keys = make([]string, len(cands))
		for i, p := range cands {
			keys[i] = p.Key()
		}
	}
	var misses []int
	inBatch := make(map[string]bool, len(cands))
	for i := range cands {
		if _, ok := sc.memo[keys[i]]; ok {
			continue
		}
		if !inBatch[keys[i]] {
			inBatch[keys[i]] = true
			misses = append(misses, i)
		}
	}

	sc.memoHits.Add(int64(len(cands) - len(misses)))
	sc.memoMisses.Add(int64(len(misses)))

	workers := resolveWorkers(sc.workers, len(misses))
	if workers <= 1 {
		sc.evalMisses(cands, misses, out, &sc.planner)
	} else {
		var next atomic.Int64
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				pl := sched.Planner{Placements: sc.placements, ScheduleSeconds: sc.scheduleHist, Check: sc.check}
				for {
					if sc.aborted() {
						return
					}
					n := int(next.Add(1)) - 1
					if n >= len(misses) {
						return
					}
					i := misses[n]
					sc.evalOne(cands[i], &pl, &out[i])
				}
			}()
		}
		wg.Wait()
	}

	for _, i := range misses {
		sc.memo[keys[i]] = out[i]
	}
	for i := range cands {
		out[i] = sc.memo[keys[i]]
	}
	return out
}

// evalMisses is the sequential batch loop, stopping early when the
// search is aborted (the unevaluated slots stay zero; Optimize never
// reads an aborted batch — see failure()).
func (sc *searchCtx) evalMisses(cands []tam.Partition, misses []int, out []int64, pl *sched.Planner) {
	for _, i := range misses {
		if sc.aborted() {
			return
		}
		sc.evalOne(cands[i], pl, &out[i])
	}
}

// evalOne evaluates one candidate with panic containment: a panic
// inside the scheduler is noted on the search context instead of
// unwinding (on a batch worker it would kill the process).
func (sc *searchCtx) evalOne(p tam.Partition, pl *sched.Planner, out *int64) {
	defer func() {
		if r := recover(); r != nil {
			sc.notePanic(r)
		}
	}()
	*out = sc.makespan(p, pl)
}

// refine hill-climbs over single-wire moves between buses, taking the
// best improving neighbor each round (partitions deduplicated by
// canonical key). Each round's neighborhood is evaluated as one batch;
// the reduction scans in the sequential (from, to) order, so the chosen
// neighbor matches the sequential search exactly.
func (sc *searchCtx) refine(part tam.Partition, mk int64, maxIter int) (tam.Partition, int64) {
	seen := map[string]bool{part.Key(): true}
	var cands []tam.Partition
	var keys []string
	for iter := 0; iter < maxIter; iter++ {
		if sc.aborted() {
			// Results past this point are meaningless; Optimize's
			// failure() check discards them.
			return part, mk
		}
		cands, keys = cands[:0], keys[:0]
		for from := range part {
			for to := range part {
				if from == to {
					continue
				}
				q, err := part.MoveWire(from, to)
				if err != nil {
					continue
				}
				key := q.Key()
				if seen[key] {
					continue
				}
				seen[key] = true
				cands = append(cands, q)
				keys = append(keys, key)
			}
		}
		if len(cands) == 0 {
			return part, mk
		}
		mks := sc.evalBatchKeys(cands, keys)
		best := -1
		for i := range cands {
			if mks[i] <= 0 {
				continue // infeasible neighbor
			}
			if best < 0 || mks[i] < mks[best] {
				best = i
			}
		}
		if best < 0 || mks[best] >= mk {
			return part, mk
		}
		part, mk = cands[best], mks[best]
	}
	return part, mk
}

// mergeSearch runs the bottom-up pass: start from kmax unit-ish buses
// and repeatedly merge the pair of buses whose union shortens the
// schedule most (or hurts it least), keeping the best partition seen.
// Each round's merge candidates are evaluated as one batch.
func (sc *searchCtx) mergeSearch(wtam, kmax int) (tam.Partition, int64, error) {
	part, err := tam.Even(wtam, kmax)
	if err != nil {
		return nil, 0, err
	}
	mk := sc.evalBatch([]tam.Partition{part})[0]
	if err := sc.failure(); err != nil {
		return nil, 0, err
	}
	if mk <= 0 {
		_, err := sc.schedule(part)
		return nil, 0, fmt.Errorf("core: merge search seed: %w", err)
	}
	bestPart, bestMk := part, mk
	var cands []tam.Partition
	for len(part) > 1 {
		if err := sc.failure(); err != nil {
			return nil, 0, err
		}
		// Widths matter, positions do not: merging bus i into bus j is
		// characterized by the merged width, so only distinct pairs of
		// widths need scheduling.
		tried := map[[2]int]bool{}
		cands = cands[:0]
		for i := 0; i < len(part); i++ {
			for j := i + 1; j < len(part); j++ {
				key := [2]int{part[i], part[j]}
				if key[0] > key[1] {
					key[0], key[1] = key[1], key[0]
				}
				if tried[key] {
					continue
				}
				tried[key] = true
				merged := make(tam.Partition, 0, len(part)-1)
				merged = append(merged, part[:i]...)
				merged = append(merged, part[i+1:j]...)
				merged = append(merged, part[j+1:]...)
				merged = append(merged, part[i]+part[j])
				cands = append(cands, merged)
			}
		}
		mks := sc.evalBatch(cands)
		next := -1
		for i := range cands {
			if mks[i] <= 0 {
				continue
			}
			if next < 0 || mks[i] < mks[next] {
				next = i
			}
		}
		if next < 0 {
			break
		}
		part, mk = cands[next], mks[next]
		if mk < bestMk {
			bestPart, bestMk = part, mk
		}
	}
	return bestPart, bestMk, nil
}

// selector resolves the configuration one core uses on a bus of a given
// width.
type selector func(width int) Config

// tableSelector adapts a lookup table to a selector under a style.
func tableSelector(style Style, t *Table) selector {
	return func(width int) Config { return chooseConfig(style, t, width) }
}

// selector adapts a technique selection to the optimizer.
func (ts *TechSelection) selector() selector {
	return func(width int) Config {
		if width < 1 {
			return Config{}
		}
		if width >= len(ts.PerWidth) {
			width = len(ts.PerWidth) - 1
		}
		return ts.PerWidth[width]
	}
}

// chooseConfig resolves the configuration a core uses on a bus of the
// given width under a style.
func chooseConfig(style Style, t *Table, width int) Config {
	if width < 1 {
		return Config{}
	}
	if width > t.Opts.MaxWidth {
		width = t.Opts.MaxWidth
	}
	switch style {
	case StyleNoTDC:
		return t.NoTDC[width]
	case StyleTDCPerTAM:
		// The TAM-head decompressor consumes the full bus width; cores
		// that cannot use the expansion band run in bypass mode.
		if cfg := t.TDCExact[width]; cfg.Feasible {
			return cfg
		}
		return t.NoTDC[width]
	case StyleTDCPerCore:
		return t.Best[width]
	default:
		return Config{}
	}
}

// fillDetails derives volumes, choices and hardware accounting from the
// winning schedule.
func fillDetails(res *Result, selectors []selector) {
	res.Choices = make([]CoreChoice, 0, len(res.SOC.Cores))
	// Per-bus widest decompressor output for the per-TAM style.
	busM := make([]int, len(res.Partition))

	for _, it := range res.Schedule.Items {
		cfg := selectors[it.Core](res.Partition[it.Bus])
		res.Choices = append(res.Choices, CoreChoice{
			Core:   res.SOC.Cores[it.Core].Name,
			Bus:    it.Bus,
			Start:  it.Start,
			Config: cfg,
		})
		res.Volume += cfg.Volume
		if cfg.UseTDC {
			switch res.Style {
			case StyleTDCPerCore:
				res.InternalWires += cfg.M
				res.Decompressors++
				if cfg.Codec == CodecDict {
					hc := dictenc.CostFor(cfg.M, cfg.DictWords)
					res.DecompFFs += hc.FFs
					res.DecompGates += hc.Gates + hc.SRAMBits/8 // SRAM counted as gate equivalents
				} else {
					hc := decomp.HardwareCost(cfg.M)
					res.DecompFFs += hc.FlipFlops
					res.DecompGates += hc.Gates
				}
			case StyleTDCPerTAM:
				if cfg.M > busM[it.Bus] {
					busM[it.Bus] = cfg.M
				}
			}
		}
	}
	switch res.Style {
	case StyleNoTDC:
		res.InternalWires = res.Partition.TotalWidth()
	case StyleTDCPerTAM:
		for _, m := range busM {
			if m == 0 {
				continue
			}
			res.InternalWires += m
			res.Decompressors++
			hc := decomp.HardwareCost(m)
			res.DecompFFs += hc.FlipFlops
			res.DecompGates += hc.Gates
		}
	}
}
