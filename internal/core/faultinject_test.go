package core

// Fault-injection tests for the crash-safe disk store: a failure at any
// stage of storeDiskTable must never publish a partial entry under the
// final name, must be counted in diskcache.write_errors, and must never
// affect the table the caller receives.

import (
	"context"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"soctap/internal/telemetry"
)

// stageFault arms diskFault for one named stage and returns a cleanup
// that disarms it. Fault state is package-global, so these tests must
// not run in parallel.
func stageFault(t *testing.T, stage string) {
	t.Helper()
	diskFault = func(s string) error {
		if s == stage {
			return fmt.Errorf("injected %s fault", s)
		}
		return nil
	}
	t.Cleanup(func() { diskFault = nil })
}

// tmpFiles lists leftover temp files anywhere under the cache dir
// (entries write their temp files inside the shard subdirectory).
func tmpFiles(t *testing.T, dir string) []string {
	t.Helper()
	var tmps []string
	err := filepath.WalkDir(dir, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() && strings.HasPrefix(d.Name(), ".tmp-") {
			tmps = append(tmps, path)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return tmps
}

func TestStoreDiskTableFaultInjection(t *testing.T) {
	c := compressibleCore(31)
	opts := TableOptions{MaxWidth: 8}

	// Stages strictly before the rename: the entry must not appear under
	// the final name at all.
	for _, stage := range []string{"create", "write", "sync", "close", "rename"} {
		t.Run(stage, func(t *testing.T) {
			dir := t.TempDir()
			stageFault(t, stage)
			var cache Cache
			cache.SetDir(dir)
			var warned bool
			cache.SetWarn(func(string) { warned = true })
			sink := telemetry.New()

			tab, err := cache.get(context.Background(), c, opts, sink)
			if err != nil {
				t.Fatalf("Get failed on a best-effort store fault: %v", err)
			}
			if tab == nil || !tab.Best[8].Feasible {
				t.Fatal("store fault corrupted the returned table")
			}
			cn := sink.Snapshot().Counters
			if cn["diskcache.write_errors"] != 1 {
				t.Errorf("diskcache.write_errors = %d, want 1 (counters: %v)",
					cn["diskcache.write_errors"], cn)
			}
			if !warned {
				t.Error("failed write-back did not reach the warn callback")
			}
			if files := cacheDirEntries(t, dir); len(files) != 0 {
				t.Errorf("fault at %s still published entry %v", stage, files)
			}
			if tmps := tmpFiles(t, dir); len(tmps) != 0 {
				t.Errorf("fault at %s left temp files behind: %v", stage, tmps)
			}

			// With the fault cleared, a fresh cache rebuilds and the
			// write-back now lands.
			diskFault = nil
			var retry Cache
			retry.SetDir(dir)
			again := telemetry.New()
			if _, err := retry.get(context.Background(), c, opts, again); err != nil {
				t.Fatal(err)
			}
			rn := again.Snapshot().Counters
			if rn["diskcache.misses"] != 1 || rn["diskcache.write_errors"] != 0 {
				t.Errorf("retry counters after cleared fault: %v", rn)
			}
			if files := cacheDirEntries(t, dir); len(files) != 1 {
				t.Errorf("retry did not publish the entry: %v", files)
			}
		})
	}

	// A dirsync failure happens after the rename: the entry is already
	// published and valid — the write is still reported as failed (its
	// durability is not guaranteed), but a reader must load it.
	t.Run("dirsync", func(t *testing.T) {
		dir := t.TempDir()
		stageFault(t, "dirsync")
		var cache Cache
		cache.SetDir(dir)
		sink := telemetry.New()
		if _, err := cache.get(context.Background(), c, opts, sink); err != nil {
			t.Fatal(err)
		}
		if cn := sink.Snapshot().Counters; cn["diskcache.write_errors"] != 1 {
			t.Errorf("diskcache.write_errors = %d, want 1", cn["diskcache.write_errors"])
		}
		diskFault = nil
		var reader Cache
		reader.SetDir(dir)
		hit := telemetry.New()
		if _, err := reader.get(context.Background(), c, opts, hit); err != nil {
			t.Fatal(err)
		}
		if hn := hit.Snapshot().Counters; hn["diskcache.hits"] != 1 {
			t.Errorf("published-then-dirsync-failed entry did not read back as a hit: %v", hn)
		}
	})
}

// TestDiskCacheShortEntryIsCorrupt: an entry truncated to a prefix —
// what a crash between write and sync could leave without the fsync
// ordering — must land in diskcache.corrupt_rebuilds and never in the
// returned table.
func TestDiskCacheShortEntryIsCorrupt(t *testing.T) {
	c := compressibleCore(32)
	opts := TableOptions{MaxWidth: 8}
	dir := t.TempDir()

	var warm Cache
	warm.SetDir(dir)
	good, err := warm.Get(c, opts)
	if err != nil {
		t.Fatal(err)
	}
	files := cacheDirEntries(t, dir)
	if len(files) != 1 {
		t.Fatalf("%d cache files, want 1", len(files))
	}
	for _, keep := range []int{0, 1, 16} {
		data, err := os.ReadFile(files[0])
		if err != nil {
			t.Fatal(err)
		}
		if keep > len(data) {
			t.Fatalf("entry only %d bytes", len(data))
		}
		if err := os.WriteFile(files[0], data[:keep], 0o644); err != nil {
			t.Fatal(err)
		}

		var cold Cache
		cold.SetDir(dir)
		sink := telemetry.New()
		tab, err := cold.get(context.Background(), c, opts, sink)
		if err != nil {
			t.Fatalf("keep=%d: %v", keep, err)
		}
		cn := sink.Snapshot().Counters
		if cn["diskcache.corrupt_rebuilds"] != 1 {
			t.Errorf("keep=%d: corrupt_rebuilds = %d, want 1 (counters: %v)",
				keep, cn["diskcache.corrupt_rebuilds"], cn)
		}
		if tab.Best[8] != good.Best[8] {
			t.Errorf("keep=%d: rebuilt table differs from original", keep)
		}
	}
}

// TestStoreDiskTablePermissionError: a real (non-injected) filesystem
// failure takes the same best-effort path as an injected one.
func TestStoreDiskTablePermissionError(t *testing.T) {
	if os.Getuid() == 0 {
		t.Skip("running as root: directory permissions are not enforced")
	}
	dir := t.TempDir()
	if err := os.Chmod(dir, 0o555); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { os.Chmod(dir, 0o755) })
	err := storeDiskTable(filepath.Join(dir, "sub"), "k", &Table{Opts: TableOptions{}})
	if err == nil {
		t.Fatal("store into an unwritable directory succeeded")
	}
	if errors.Is(err, os.ErrNotExist) {
		t.Fatalf("unexpected error class: %v", err)
	}
}
