package core

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"reflect"
	"strings"
	"testing"

	"soctap/internal/sched"
	"soctap/internal/soc"
	"soctap/internal/telemetry"
)

// telemetrize runs Optimize on the SOC with a fresh sink and fresh
// caches and returns the full snapshot.
func telemetrize(t *testing.T, s *soc.SOC, workers int) *telemetry.Snapshot {
	t.Helper()
	sink := telemetry.New()
	_, err := Optimize(s, 16, Options{
		Style:       StyleTDCPerCore,
		Tables:      TableOptions{MaxWidth: 16},
		Cache:       new(Cache),
		Workers:     workers,
		MergeSearch: true,
		Telemetry:   sink.Root(),
	})
	if err != nil {
		t.Fatal(err)
	}
	return sink.Snapshot()
}

// TestTelemetryCounterDeterminism: the counter snapshot of a d695 run
// is identical for Workers=1 and Workers=8 — counters count algorithmic
// events, not scheduling accidents. Timings are excluded by
// construction (they live in Snapshot.Timings). Runs under -race in
// the tier-1 gate.
func TestTelemetryCounterDeterminism(t *testing.T) {
	s := soc.D695()
	seq := telemetrize(t, s, 1).Counters
	par := telemetrize(t, soc.D695(), 8).Counters
	if !reflect.DeepEqual(seq, par) {
		t.Fatalf("counters differ across worker counts:\nworkers=1: %v\nworkers=8: %v", seq, par)
	}
	for _, name := range []string{
		"cache.mem_misses", "tables.built",
		"eval.tdc_evals", "eval.notdc_evals",
		"search.memo_misses", "sched.placements",
	} {
		if seq[name] == 0 {
			t.Errorf("counter %s is zero; instrumentation not reaching that subsystem (have %v)", name, seq)
		}
	}
	if seq["tables.built"] != int64(len(s.Cores)) {
		t.Errorf("tables.built = %d, want %d (one build per core on a cold cache)",
			seq["tables.built"], len(s.Cores))
	}
}

// TestHistogramCountInvariance: a histogram's observation *count* is as
// deterministic as the counters — one observation per algorithmic event
// (a table build, a schedule evaluation) — so Workers=1 and Workers=8
// runs on d695 record identical counts in every histogram. The observed
// values are wall clock; only counts are compared. Runs under -race in
// the obs gate.
func TestHistogramCountInvariance(t *testing.T) {
	counts := func(sn *telemetry.Snapshot) map[string]int64 {
		m := make(map[string]int64, len(sn.Histograms))
		for name, h := range sn.Histograms {
			m[name] = h.Count
		}
		return m
	}
	seq := telemetrize(t, soc.D695(), 1)
	par := telemetrize(t, soc.D695(), 8)
	if sc, pc := counts(seq), counts(par); !reflect.DeepEqual(sc, pc) {
		t.Fatalf("histogram counts differ across worker counts:\nworkers=1: %v\nworkers=8: %v", sc, pc)
	}
	for _, name := range []string{"tables.build_seconds", "sched.schedule_seconds"} {
		if seq.Histograms[name].Count == 0 {
			t.Errorf("histogram %s has no observations; instrumentation not reaching that subsystem (have %v)",
				name, counts(seq))
		}
	}
	if got, want := seq.Histograms["tables.build_seconds"].Count, seq.Counters["tables.built"]; got != want {
		t.Errorf("tables.build_seconds count = %d, want %d (one observation per completed build)", got, want)
	}
}

// TestOptimizeTelemetrySpans: the phase-span tree has the documented
// shape — tables (one child per core) and search (k-sweep, refine,
// merge) and schedule — with nonzero counts.
func TestOptimizeTelemetrySpans(t *testing.T) {
	s := testSOC()
	sink := telemetry.New()
	if _, err := Optimize(s, 12, Options{
		Style:       StyleTDCPerCore,
		Tables:      TableOptions{MaxWidth: 12},
		MergeSearch: true,
		Telemetry:   sink.Root(),
	}); err != nil {
		t.Fatal(err)
	}
	sn := sink.Snapshot()
	byName := map[string]telemetry.SpanSnap{}
	for _, sp := range sn.Spans {
		byName[sp.Name] = sp
	}
	tables, ok := byName["tables"]
	if !ok || tables.Count != 1 {
		t.Fatalf("missing tables span: %+v", sn.Spans)
	}
	if len(tables.Children) != len(s.Cores) {
		t.Fatalf("tables span has %d children, want one per core (%d)", len(tables.Children), len(s.Cores))
	}
	for i, c := range s.Cores {
		if want := "core:" + c.Name; tables.Children[i].Name != want {
			t.Fatalf("tables child %d is %q, want %q (core order must be preserved)",
				i, tables.Children[i].Name, want)
		}
	}
	search, ok := byName["search"]
	if !ok {
		t.Fatalf("missing search span: %+v", sn.Spans)
	}
	kids := map[string]bool{}
	for _, c := range search.Children {
		kids[c.Name] = true
	}
	for _, want := range []string{"k-sweep", "refine", "merge"} {
		if !kids[want] {
			t.Fatalf("search span missing child %q: %+v", want, search.Children)
		}
	}
	if _, ok := byName["schedule"]; !ok {
		t.Fatalf("missing schedule span: %+v", sn.Spans)
	}
}

// TestOptimizeTelemetryWriter: Options.TelemetryWriter receives valid
// snapshot JSON even when no explicit sink was attached.
func TestOptimizeTelemetryWriter(t *testing.T) {
	var buf bytes.Buffer
	if _, err := Optimize(testSOC(), 12, Options{
		Style:           StyleTDCPerCore,
		Tables:          TableOptions{MaxWidth: 12},
		TelemetryWriter: &buf,
	}); err != nil {
		t.Fatal(err)
	}
	var sn telemetry.Snapshot
	if err := json.Unmarshal(buf.Bytes(), &sn); err != nil {
		t.Fatalf("TelemetryWriter output is not valid JSON: %v\n%s", err, buf.Bytes())
	}
	if sn.Counters["eval.tdc_evals"] == 0 {
		t.Fatalf("snapshot has no kernel counters: %v", sn.Counters)
	}
	if len(sn.Spans) == 0 {
		t.Fatal("snapshot has no spans")
	}
}

// TestTelemetryDisabledResultUnchanged: instrumentation must not change
// the optimization result.
func TestTelemetryDisabledResultUnchanged(t *testing.T) {
	s := testSOC()
	plain, err := Optimize(s, 12, Options{Style: StyleTDCPerCore, Tables: TableOptions{MaxWidth: 12}})
	if err != nil {
		t.Fatal(err)
	}
	sink := telemetry.New()
	instr, err := Optimize(testSOC(), 12, Options{
		Style: StyleTDCPerCore, Tables: TableOptions{MaxWidth: 12}, Telemetry: sink.Root(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if plain.TestTime != instr.TestTime || plain.Volume != instr.Volume ||
		!reflect.DeepEqual(plain.Partition, instr.Partition) {
		t.Fatalf("telemetry changed the result: %v/%d vs %v/%d",
			plain.Partition, plain.TestTime, instr.Partition, instr.TestTime)
	}
}

// TestKernelDisabledTelemetryZeroAlloc guards the nil-sink fast path of
// the instrumented evaluator kernel: with no sink attached, a TDC
// evaluation on a warm design must not allocate. This is the
// telemetry-overhead gate run by `make check`.
func TestKernelDisabledTelemetryZeroAlloc(t *testing.T) {
	c := compressibleCore(7)
	ev, err := NewEvaluator(c)
	if err != nil {
		t.Fatal(err)
	}
	d, err := ev.Design(12)
	if err != nil {
		t.Fatal(err)
	}
	d.StimulusMap() // warm the memoized map
	if _, err := ev.TDC(12, true); err != nil {
		t.Fatal(err)
	}
	if n := testing.AllocsPerRun(100, func() {
		if _, err := ev.TDC(12, true); err != nil {
			panic(err)
		}
	}); n != 0 {
		t.Fatalf("instrumented-but-disabled kernel allocates %v/op, want 0", n)
	}
}

// TestMakespanDisabledTelemetryZeroAlloc guards the scheduler side: the
// warm makespan path with a nil Placements counter stays allocation
// free.
func TestMakespanDisabledTelemetryZeroAlloc(t *testing.T) {
	dur := func(core, width int) int64 { return int64(1000/(width+1) + core) }
	widths := []int{5, 4, 3}
	var pl sched.Planner
	if _, err := pl.GreedyMakespan(8, widths, dur); err != nil {
		t.Fatal(err)
	}
	if n := testing.AllocsPerRun(100, func() {
		if _, err := pl.GreedyMakespan(8, widths, dur); err != nil {
			panic(err)
		}
	}); n != 0 {
		t.Fatalf("disabled-telemetry makespan path allocates %v/op, want 0", n)
	}
}

// TestCacheWarnOnWriteError: an unwritable cache directory surfaces
// through the warning callback and the write-error counter instead of
// failing the run.
func TestCacheWarnOnWriteError(t *testing.T) {
	c := compressibleCore(13)
	sink := telemetry.New()
	var warnings []string
	var cache Cache
	cache.SetDir("/dev/null/not-a-directory") // MkdirAll must fail
	cache.SetWarn(func(msg string) { warnings = append(warnings, msg) })
	if _, err := cache.get(context.Background(), c, TableOptions{MaxWidth: 8}, sink); err != nil {
		t.Fatal(err)
	}
	if got := sink.Snapshot().Counters["diskcache.write_errors"]; got != 1 {
		t.Fatalf("diskcache.write_errors = %d, want 1", got)
	}
	var wroteWarn bool
	for _, w := range warnings {
		if strings.Contains(w, "writing") {
			wroteWarn = true
		}
	}
	if !wroteWarn {
		t.Fatalf("no write-error warning fired, got %v", warnings)
	}
}

// ExampleOptimize-style check that the snapshot JSON is diffable: two
// cold runs of the same workload produce byte-identical counter maps.
func TestTelemetrySnapshotDiffable(t *testing.T) {
	dump := func() string {
		sink := telemetry.New()
		if _, err := Optimize(testSOC(), 12, Options{
			Style: StyleTDCPerCore, Tables: TableOptions{MaxWidth: 12},
			Cache: new(Cache), Telemetry: sink.Root(),
		}); err != nil {
			t.Fatal(err)
		}
		return fmt.Sprint(sink.Snapshot().Counters)
	}
	if a, b := dump(), dump(); a != b {
		t.Fatalf("counter snapshots differ across identical runs:\n%s\nvs\n%s", a, b)
	}
}
