package core

import (
	"context"
	"reflect"
	"testing"

	"soctap/internal/selenc"
	"soctap/internal/soc"
	"soctap/internal/telemetry"
	"soctap/internal/wrapper"
)

// TestFusedTableEquivalence is the bit-identity guarantee of the fused
// sweep against the per-point streaming path it replaces: for every
// d695 core plus the decay and compressible synthetics, tables built
// with fusion (the streaming default) must be deeply equal to
// DisableFusion builds at windows 1, 64 and ∞, Workers 1 and 8 alike.
// The matrix re-runs at a tiny batch size so band incumbents carry
// across fused passes — the multi-batch schedule a giant core sees.
func TestFusedTableEquivalence(t *testing.T) {
	type tc struct {
		core *soc.Core
		opts TableOptions
	}
	var cases []tc
	for _, c := range soc.D695().Cores {
		cases = append(cases, tc{c, TableOptions{MaxWidth: 8, BandSamples: 3}})
	}
	cases = append(cases, tc{decayCore(13), TableOptions{MaxWidth: 12}})
	cases = append(cases, tc{compressibleCore(17), TableOptions{MaxWidth: 10, BandSamples: 4}})
	for _, batch := range []int{fusedBatchPoints, 3} {
		windows := streamWindows
		if batch != fusedBatchPoints {
			windows = []int{DefaultEvalWindow}
		}
		old := fusedBatchPoints
		fusedBatchPoints = batch
		for _, cse := range cases {
			for _, window := range windows {
				for _, workers := range []int{1, 8} {
					opts := cse.opts
					opts.EvalWindow = window
					opts.Workers = workers
					opts.DisableFusion = true
					plain, err := BuildTable(cse.core, opts)
					if err != nil {
						t.Fatal(err)
					}
					opts.DisableFusion = false
					fused, err := BuildTable(cse.core, opts)
					if err != nil {
						t.Fatal(err)
					}
					if !reflect.DeepEqual(fused, plain) {
						t.Errorf("%s batch=%d window=%d workers=%d: fused table differs from unfused",
							cse.core.Name, batch, window, workers)
					}
				}
			}
		}
		fusedBatchPoints = old
	}
}

// TestFusedMidPassPruning pins the mid-pass drop machinery: on a core
// with compressible patterns and an exhaustive band sweep, the fused
// build must prune candidates (eval.pruned > 0), record its pass
// telemetry consistently (loads ≥ passes ≥ 1, at most one pass per
// batch of points), and still produce the exact DisableFusion table.
func TestFusedMidPassPruning(t *testing.T) {
	c := compressibleCore(29)
	opts := TableOptions{MaxWidth: 10, BandSamples: -1, EvalWindow: 4}
	plain, err := BuildTable(c, TableOptions{
		MaxWidth: opts.MaxWidth, BandSamples: opts.BandSamples,
		EvalWindow: opts.EvalWindow, DisableFusion: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	tel := telemetry.New()
	fused, err := buildTable(context.Background(), c, opts, tel)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(fused, plain) {
		t.Fatal("fused table differs from unfused")
	}
	sn := tel.Snapshot()
	passes := sn.Counters["eval.passes"]
	points := sn.Counters["eval.fused_points"]
	loads := sn.Counters["fused."+c.Name+".window_loads"]
	if passes < 1 || points < 1 {
		t.Fatalf("fused pass telemetry missing: passes=%d points=%d", passes, points)
	}
	if batches := (points + int64(fusedBatchPoints) - 1) / int64(fusedBatchPoints); passes > batches {
		t.Errorf("eval.passes = %d for %d points, want at most %d batches", passes, points, batches)
	}
	if loads < passes {
		t.Errorf("window_loads = %d < passes = %d", loads, passes)
	}
	if sn.Counters["fused."+c.Name+".passes"] != passes {
		t.Errorf("per-core passes %d != eval.passes %d", sn.Counters["fused."+c.Name+".passes"], passes)
	}
	if sn.Counters["fused."+c.Name+".points"] != points {
		t.Errorf("per-core points %d != eval.fused_points %d", sn.Counters["fused."+c.Name+".points"], points)
	}
	if pruned := sn.Counters["eval.pruned"]; pruned == 0 {
		t.Error("exhaustive fused sweep pruned nothing; expected incumbent/mid-pass drops")
	}
	// Pruned + evaluated must account for every sampled band point.
	var sampled int64
	maxM := c.MaxWrapperChains()
	for w := 3; w <= opts.MaxWidth; w++ {
		lo, hi, err := selenc.MBand(w)
		if err != nil {
			t.Fatal(err)
		}
		if lo > maxM {
			break
		}
		if hi > maxM {
			hi = maxM
		}
		sampled += int64(len(sampleBand(lo, hi, opts.BandSamples)))
	}
	pruned := sn.Counters["prune."+c.Name+".pruned"]
	evals := sn.Counters["prune."+c.Name+".evals"]
	if pruned+evals != sampled {
		t.Errorf("pruned %d + evals %d != %d sampled band points", pruned, evals, sampled)
	}
}

// TestFusedCountersWorkerInvariance is the bench-big-smoke counter
// gate at test scale: on a smoke-scale giant-profile core, every fused
// and pruning counter of a streamed table build must be identical at
// Workers 1 and 8 (pricing is partitioned across workers but
// accumulation, pruning and pass accounting are sequential), and so
// must the tables.
func TestFusedCountersWorkerInvariance(t *testing.T) {
	c := &soc.Core{
		Name: "smoke", Inputs: 40, Outputs: 30,
		ScanChains: balancedChainsForTest(3000, 50),
		Patterns:   1024, CareDensity: 0.05, Clustering: 0.6,
		DensityDecay: 0.9, Seed: 42,
	}
	opts := TableOptions{MaxWidth: 10, BandSamples: 3, EvalWindow: DefaultEvalWindow}
	keys := []string{
		"eval.passes", "eval.fused_points", "eval.window_loads",
		"eval.window_cubes", "eval.pruned", "eval.tdc_evals",
		"fused." + c.Name + ".passes", "fused." + c.Name + ".points",
		"fused." + c.Name + ".window_loads",
		"prune." + c.Name + ".pruned", "prune." + c.Name + ".evals",
	}
	var base *Table
	var want map[string]int64
	for _, workers := range []int{1, 8} {
		o := opts
		o.Workers = workers
		tel := telemetry.New()
		tbl, err := buildTable(context.Background(), freshCore(c), o, tel)
		if err != nil {
			t.Fatal(err)
		}
		sn := tel.Snapshot()
		got := make(map[string]int64, len(keys))
		for _, k := range keys {
			got[k] = sn.Counters[k]
		}
		if base == nil {
			base, want = tbl, got
			if want["eval.passes"] == 0 {
				t.Fatal("smoke build did not take the fused path")
			}
			continue
		}
		if !reflect.DeepEqual(tbl.Best, base.Best) || !reflect.DeepEqual(tbl.TDCExact, base.TDCExact) {
			t.Errorf("workers=%d: table differs from workers=1", workers)
		}
		for _, k := range keys {
			if got[k] != want[k] {
				t.Errorf("workers=%d: counter %s = %d, want %d", workers, k, got[k], want[k])
			}
		}
	}
}

// TestFusedWindowKernelZeroAlloc is the steady-state allocation gate on
// the fused window kernel: once a point's design is prepared and the
// window planes are warm, pricing a window against a point — on the
// producer and on a mirror alike — must not allocate.
func TestFusedWindowKernelZeroAlloc(t *testing.T) {
	c := compressibleCore(3)
	ev, err := NewEvaluatorWindow(c, 16)
	if err != nil {
		t.Fatal(err)
	}
	if !ev.streamed {
		t.Fatal("expected a streaming evaluator")
	}
	newPoint := func(m int) *fusedPoint {
		d, err := wrapper.New(c, m)
		if err != nil {
			t.Fatal(err)
		}
		k := int64(selenc.PayloadBits(m))
		return &fusedPoint{m: m, w: k + 2, k: k, d: d, si: int64(d.ScanIn), so: int64(d.ScanOut)}
	}
	p := newPoint(8)
	mir := ev.mirror()
	mp := newPoint(12)
	ev.beginPass()
	if !ev.nextWindow() {
		t.Fatal("empty first window")
	}
	// Warm: design prep, lazy stimulus map, slice-plane sizing.
	ev.priceWindowPoint(p)
	mir.priceWindowPoint(mp)
	if allocs := testing.AllocsPerRun(20, func() {
		ev.priceWindowPoint(p)
		mir.priceWindowPoint(mp)
	}); allocs != 0 {
		t.Errorf("steady-state fused window kernel allocates %.1f times per round", allocs)
	}
	if p.totalCW <= 0 || p.timeAcc <= 0 {
		t.Errorf("pricing accumulated nothing: totalCW=%d timeAcc=%d", p.totalCW, p.timeAcc)
	}
}

// TestBuildTableBandBoundaries covers the sampleBand/MBand interplay at
// the edges buildTable actually hits: the single-point w=3 band
// (lo == hi == 1), BandSamples 1 picking the (clamped) top edge of
// every band, and a band clamped by MaxWrapperChains mid-range.
func TestBuildTableBandBoundaries(t *testing.T) {
	for _, c := range []*soc.Core{smallCore(21), compressibleCore(23)} {
		maxM := c.MaxWrapperChains()
		const maxWidth = 16
		tbl, err := BuildTable(c, TableOptions{MaxWidth: maxWidth, BandSamples: 1})
		if err != nil {
			t.Fatal(err)
		}
		clamped := false
		for w := 3; w <= maxWidth; w++ {
			lo, hi, err := selenc.MBand(w)
			if err != nil {
				t.Fatal(err)
			}
			cfg := tbl.TDCExact[w]
			if lo > maxM {
				if cfg.Feasible {
					t.Errorf("%s w=%d: band [%d,%d] above maxM %d but feasible", c.Name, w, lo, hi, maxM)
				}
				continue
			}
			want := hi
			if want > maxM {
				want = maxM
				if lo < maxM {
					clamped = true // band truncated strictly mid-range
				}
			}
			if w == 3 && (lo != 1 || hi != 1) {
				t.Fatalf("w=3 band = [%d,%d], want the single point [1,1]", lo, hi)
			}
			if !cfg.Feasible {
				t.Errorf("%s w=%d: band [%d,%d] feasible range non-empty but infeasible", c.Name, w, lo, want)
				continue
			}
			if cfg.M != want {
				t.Errorf("%s w=%d: BandSamples=1 picked m=%d, want top edge %d", c.Name, w, cfg.M, want)
			}
		}
		if !clamped {
			t.Fatalf("%s: maxM %d never clamps a band mid-range; adjust the test core", c.Name, maxM)
		}
	}
	// sampleBand unit edges feeding the matrix above.
	if got := sampleBand(1, 1, 48); len(got) != 1 || got[0] != 1 {
		t.Errorf("sampleBand(1,1,48) = %v, want [1]", got)
	}
	if got := sampleBand(4, 4, -1); len(got) != 1 || got[0] != 4 {
		t.Errorf("sampleBand(4,4,-1) = %v, want [4]", got)
	}
	if got := sampleBand(8, 15, 1); len(got) != 1 || got[0] != 15 {
		t.Errorf("sampleBand(8,15,1) = %v, want [15]", got)
	}
}
