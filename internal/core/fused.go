// Fused single-pass (w, m) sweep: the streaming build of a lookup
// table prices every evaluation point of a batch against each loaded
// cube window before the next window loads, instead of running one
// full pass over the test set per point. One producer evaluator
// streams the cube source once per batch; each window is flattened
// (and, on the dense path, scattered into flat planes) exactly once
// and shared read-only with a crew of mirror evaluators that carry the
// per-point partial state forward. The per-pass evaluator cursor of
// tdcCost is replaced by per-point accumulators (codeword totals and
// the overlapped-shift time sum), and the band sweep's incumbent
// pruning becomes mid-pass: a point whose running lower bound is
// already strictly lex-worse than the best upper bound among its
// band's peers (or the band incumbent from earlier batches) drops out
// at a window boundary. Both pruning rules are exact, so fused tables
// are DeepEqual-identical to unfused ones — the fused-equivalence gate
// of `make check` — while `eval.window_loads` falls from
// O(points × windows) to O(batches × windows).
package core

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"soctap/internal/selenc"
	"soctap/internal/soc"
	"soctap/internal/telemetry"
	"soctap/internal/wrapper"
)

// fusedBatchPoints bounds how many evaluation points share one
// streamed pass. Each in-flight point pins its wrapper design (and, on
// sparse windows, that design's stimulus map), so the batch size
// trades pass count against peak memory; 64 keeps a giant-profile
// band sweep at a handful of passes while the resident designs stay
// far below one window of cube data. A variable so tests can force
// multi-batch schedules on small cores.
var fusedBatchPoints = 64

// fusedPoint is the per-point partial state of one (w, m) evaluation
// riding a fused pass: the design and its cost-model constants, the
// running accumulators that replace the per-pass cursor, and the
// resolved configuration once the pass completes.
type fusedPoint struct {
	band int // index into the band jobs
	m    int
	w    int64 // codeword width CodewordWidth(m)
	k    int64 // payload bits
	d    *wrapper.Design
	si   int64
	so   int64
	// ubcw is an admissible per-pattern codeword upper bound: si slice
	// headers plus at most min(m, 2·GroupCount(m)) operation codewords
	// per slice. Paired with the per-pattern lower bound of si (one
	// header per slice), it brackets every unseen pattern's cost for
	// the mid-pass pruning rule.
	ubcw int64

	totalCW int64 // codewords emitted so far
	timeAcc int64 // cw_1 + Σ_{j>1} max(cw_j, so) so far

	pruned bool
	cfg    Config
}

// bandUB is the running best (lex-min) upper bound of one band during
// a prune step.
type bandUB struct {
	t, v int64
	ok   bool
	seen bool
}

// fusedCounters carries the (nil-safe) fusion telemetry: passes and
// points globally and per core, plus per-core window loads — the
// inputs of the pass-amortization table in the text report.
type fusedCounters struct {
	passes     *telemetry.Counter
	points     *telemetry.Counter
	corePasses *telemetry.Counter
	corePoints *telemetry.Counter
	coreLoads  *telemetry.Counter
}

// sweepBandsFused evaluates every band of a streaming table build
// through the fused pass machinery, filling each band's best
// configuration. The result is bit-identical to running sweepBand per
// band: points are folded into their band incumbents in sweepBand's
// own order (descending m, replace on lex-<=), and every pruning rule
// only discards points whose true cost is provably strictly worse
// than another feasible configuration of the same band.
func sweepBandsFused(ctx context.Context, c *soc.Core, opts TableOptions, bands []bandJob, pc pruneCounters, tel *telemetry.Sink) error {
	producer, err := NewEvaluatorWindow(c, opts.EvalWindow)
	if err != nil {
		return err
	}
	producer.attachTelemetry(tel)
	producer.bindContext(ctx)
	fc := fusedCounters{
		passes:     tel.Counter("eval.passes"),
		points:     tel.Counter("eval.fused_points"),
		corePasses: tel.Counter("fused." + c.Name + ".passes"),
		corePoints: tel.Counter("fused." + c.Name + ".points"),
		coreLoads:  tel.Counter("fused." + c.Name + ".window_loads"),
	}

	// Flatten the evaluation points in band order, descending m within
	// each band — the order sweepBand visits them — then batch. A band
	// larger than a batch spans several; its incumbent carries across
	// them exactly like sweepBand's running best.
	type ptRef struct{ band, m int }
	queue := make([]ptRef, 0, 64)
	for bi := range bands {
		ms := bands[bi].ms
		for i := len(ms) - 1; i >= 0; i-- {
			queue = append(queue, ptRef{bi, ms[i]})
		}
	}

	ubs := make([]bandUB, len(bands))
	batch := make([]*fusedPoint, 0, fusedBatchPoints)
	for start := 0; start < len(queue); start += fusedBatchPoints {
		end := min(start+fusedBatchPoints, len(queue))
		if err := ctx.Err(); err != nil {
			return err
		}
		// Batch setup: build the designs and apply sweepBand's pre-pass
		// bounds against the incumbents earlier batches established.
		batch = batch[:0]
		for _, r := range queue[start:end] {
			b := &bands[r.band]
			if b.best.Feasible && !opts.DisablePruning {
				if bt, bv := coreBound(producer, r.m, b.w); boundWorse(bt, bv, b.best) {
					pc.pruned.Inc()
					pc.corePruned.Inc()
					continue
				}
			}
			d, err := wrapper.New(c, r.m)
			if err != nil {
				return err
			}
			if b.best.Feasible && !opts.DisablePruning {
				if bt, bv := designBound(producer, d, b.w); boundWorse(bt, bv, b.best) {
					pc.pruned.Inc()
					pc.corePruned.Inc()
					continue
				}
			}
			k := int64(selenc.PayloadBits(r.m))
			si := int64(d.ScanIn)
			ub := int64(r.m)
			if g := 2 * int64(selenc.GroupCount(r.m)); g < ub {
				ub = g
			}
			batch = append(batch, &fusedPoint{
				band: r.band, m: r.m, w: k + 2, k: k, d: d,
				si: si, so: int64(d.ScanOut), ubcw: si * (1 + ub),
			})
		}
		fc.points.Add(int64(len(batch)))
		fc.corePoints.Add(int64(len(batch)))
		if len(batch) == 0 {
			continue
		}
		if err := runFusedPass(ctx, producer, opts, bands, ubs, batch, pc, fc, tel); err != nil {
			return err
		}
		// Fold the completed points into the band incumbents in queue
		// order (descending m), replacing on lex-<= so equal-cost points
		// resolve to the smallest m exactly as sweepBand does.
		for _, p := range batch {
			if p.pruned {
				continue
			}
			pc.coreEvals.Inc()
			if b := &bands[p.band]; !b.best.better(p.cfg) {
				b.best = p.cfg
			}
		}
	}
	return nil
}

// runFusedPass streams one pass of the cube source, pricing every
// window against every still-active point of the batch and running the
// deterministic mid-pass prune step at each window boundary. On
// return, every non-pruned point carries its exact configuration.
func runFusedPass(ctx context.Context, producer *Evaluator, opts TableOptions, bands []bandJob, ubs []bandUB, pts []*fusedPoint, pc pruneCounters, fc fusedCounters, tel *telemetry.Sink) error {
	fc.passes.Inc()
	fc.corePasses.Inc()
	workers := resolveWorkers(opts.Workers, len(pts))
	var crew *fusedCrew
	if workers > 1 {
		crew = newFusedCrew(ctx, producer, workers, tel)
		defer crew.close()
	}

	active := append([]*fusedPoint(nil), pts...)
	var loads int64
	producer.beginPass()
	for len(active) > 0 && producer.nextWindow() {
		loads++
		if err := ctx.Err(); err != nil {
			return err
		}
		if crew == nil {
			for _, p := range active {
				producer.priceWindowPoint(p)
			}
		} else if err := crew.window(active); err != nil {
			return err
		}
		// The prune step is sequential and runs on exact, worker-order
		// independent accumulators, so the drop decisions — and with
		// them the prune counters and the window-load count — are
		// identical for every worker count.
		if !opts.DisablePruning {
			active = pruneFusedWindow(producer.passPos, producer.patterns, bands, ubs, active, pc)
		}
	}
	fc.coreLoads.Add(loads)

	for _, p := range pts {
		if p.pruned {
			continue
		}
		producer.tdcEvals.Inc()
		p.cfg = Config{
			Feasible: true,
			UseTDC:   true,
			Codec:    CodecSelEnc,
			Width:    int(p.w),
			M:        p.m,
			Time:     p.timeAcc + int64(producer.patterns) + p.so,
			Volume:   p.totalCW * p.w,
		}
	}
	return nil
}

// priceWindowPoint costs the loaded window against one point's
// accumulators: per cube, si slice headers plus the encoding operation
// count, summed into the codeword total and the overlapped-shift time
// term (cw_1 plain, max(cw_j, so) beyond). Exactly tdcCost's inner
// loop, with the cursor state carried by the point instead of the
// pass. Steady state is allocation-free (gate-enforced).
func (e *Evaluator) priceWindowPoint(p *fusedPoint) {
	e.kernelPrepare(p.d)
	si, so, k := p.si, p.so, p.k
	totalCW, timeAcc := p.totalCW, p.timeAcc
	base := e.win.start
	for lj := 0; lj < e.win.count; lj++ {
		cw := si + e.patternOps(lj, k, true)
		totalCW += cw
		if base+lj == 0 {
			timeAcc += cw
		} else if cw > so {
			timeAcc += cw
		} else {
			timeAcc += so
		}
	}
	p.totalCW, p.timeAcc = totalCW, timeAcc
}

// pruneFusedWindow is the deterministic mid-pass prune step: with pos
// of patterns cubes priced, a point's final (time, volume) is bracketed
// by closed-form bounds on the rem remaining cubes —
//
//	LB: every pattern emits at least its si slice headers, and each
//	    remaining one adds at least max(si, so) cycles;
//	UB: no pattern emits more than ubcw codewords, so each remaining
//	    one adds at most max(ubcw, so) cycles.
//
// A point whose LB is strictly lex-worse than the lex-min UB among its
// band's peers (seeded with the band incumbent, which is exact) can
// never win the band: some feasible configuration is strictly better.
// A point is never pruned against itself (its LB is componentwise <=
// its own UB), and lex-equal candidates are never pruned, so the
// surviving set always contains the band winner with sweepBand's
// smallest-m tie-break intact.
func pruneFusedWindow(pos, patterns int, bands []bandJob, ubs []bandUB, active []*fusedPoint, pc pruneCounters) []*fusedPoint {
	if pos >= patterns {
		return active
	}
	rem := int64(patterns - pos)
	for i := range ubs {
		ubs[i] = bandUB{}
	}
	for _, p := range active {
		ub := &ubs[p.band]
		if !ub.seen {
			ub.seen = true
			if b := bands[p.band].best; b.Feasible {
				ub.t, ub.v, ub.ok = b.Time, b.Volume, true
			}
		}
		maxcw := p.ubcw
		if p.so > maxcw {
			maxcw = p.so
		}
		ut := p.timeAcc + rem*maxcw + int64(patterns) + p.so
		uv := (p.totalCW + rem*p.ubcw) * p.w
		if !ub.ok || ut < ub.t || (ut == ub.t && uv < ub.v) {
			ub.t, ub.v, ub.ok = ut, uv, true
		}
	}
	out := active[:0]
	for _, p := range active {
		ub := ubs[p.band]
		maxL := p.si
		if p.so > maxL {
			maxL = p.so
		}
		lt := p.timeAcc + rem*maxL + int64(patterns) + p.so
		lv := (p.totalCW + rem*p.si) * p.w
		if ub.ok && (lt > ub.t || (lt == ub.t && lv > ub.v)) {
			p.pruned = true
			pc.pruned.Inc()
			pc.corePruned.Inc()
			continue
		}
		out = append(out, p)
	}
	return out
}

// fusedCrew is the worker pool of one fused pass: mirrors of the
// producer share its loaded window and claim points through an atomic
// cursor, one synchronized round per window. Point accumulation stays
// worker-order independent because each point is priced by exactly one
// worker per window and windows are totally ordered by the barrier.
type fusedCrew struct {
	ctx   context.Context
	core  string
	ready chan []*fusedPoint
	done  sync.WaitGroup
	next  atomic.Int64

	failed  atomic.Bool
	errOnce sync.Once
	err     error

	workers int
	busy    *telemetry.Timer
	panics  *telemetry.Counter
}

func newFusedCrew(ctx context.Context, producer *Evaluator, workers int, tel *telemetry.Sink) *fusedCrew {
	cr := &fusedCrew{
		ctx:     ctx,
		core:    producer.core.Name,
		ready:   make(chan []*fusedPoint),
		workers: workers,
		busy:    tel.Timer("eval.worker_busy"),
		panics:  tel.Counter("panic.recovered"),
	}
	for i := 0; i < workers; i++ {
		ev := producer.mirror()
		go func() {
			for pts := range cr.ready {
				cr.priceRound(ev, pts)
			}
		}()
	}
	return cr
}

// window prices one loaded window across the crew and blocks until
// every active point has been costed (or the round aborted).
func (cr *fusedCrew) window(pts []*fusedPoint) error {
	cr.next.Store(0)
	cr.done.Add(cr.workers)
	for i := 0; i < cr.workers; i++ {
		cr.ready <- pts
	}
	cr.done.Wait()
	if cr.failed.Load() {
		if cr.err != nil {
			return cr.err
		}
		return cr.ctx.Err()
	}
	return cr.ctx.Err()
}

// priceRound is one worker's share of one window: claim points until
// the cursor runs out, containing panics as *PanicError values naming
// the point (never a process crash).
func (cr *fusedCrew) priceRound(ev *Evaluator, pts []*fusedPoint) {
	defer cr.done.Done()
	var cur *fusedPoint
	defer func() {
		if r := recover(); r != nil {
			cr.panics.Inc()
			point := "fused pass"
			if cur != nil {
				point = fmt.Sprintf("fused tdc w=%d m=%d", cur.w, cur.m)
			}
			cr.errOnce.Do(func() { cr.err = newPanicError(cr.core, point, r) })
			cr.failed.Store(true)
		}
	}()
	if cr.busy != nil {
		t0 := time.Now()
		defer func() { cr.busy.Add(time.Since(t0)) }()
	}
	for !cr.failed.Load() && cr.ctx.Err() == nil {
		i := int(cr.next.Add(1)) - 1
		if i >= len(pts) {
			return
		}
		cur = pts[i]
		ev.priceWindowPoint(cur)
	}
}

// close releases the crew's goroutines.
func (cr *fusedCrew) close() { close(cr.ready) }
