package core

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"soctap/internal/selenc"
	"soctap/internal/soc"
	"soctap/internal/wrapper"
)

func smallCore(seed int64) *soc.Core {
	return &soc.Core{
		Name: "small", Inputs: 12, Outputs: 9, Bidirs: 1,
		ScanChains: []int{30, 25, 20, 15},
		Patterns:   20, CareDensity: 0.15, Clustering: 0.5, DensityDecay: 0.5,
		Seed: seed,
	}
}

// referenceTDC computes test time and volume by actually encoding every
// slice with the real selective-encoding encoder — the ground truth the
// fast cost model in tdcCost must match bit-for-bit.
func referenceTDC(t *testing.T, c *soc.Core, m int) (int64, int64) {
	t.Helper()
	d, err := wrapper.New(c, m)
	if err != nil {
		t.Fatal(err)
	}
	ts, err := c.TestSet()
	if err != nil {
		t.Fatal(err)
	}
	refs := d.StimulusMap()
	w := selenc.CodewordWidth(m)
	so := int64(d.ScanOut)

	var totalCW, time int64
	for j, cb := range ts.Cubes {
		slices := make([][]selenc.CareBit, d.ScanIn)
		for _, bit := range cb.Care {
			r := refs[bit.Pos]
			slices[r.Depth] = append(slices[r.Depth], selenc.CareBit{Pos: int(r.Chain), Value: bit.Value})
		}
		var cw int64
		for _, slice := range slices {
			// EncodeSlice requires sorted care lists.
			sortCare(slice)
			cw += int64(len(selenc.EncodeSlice(m, slice)))
		}
		totalCW += cw
		if j == 0 {
			time += cw
		} else if cw > so {
			time += cw
		} else {
			time += so
		}
	}
	time += int64(ts.Len()) + so
	return time, totalCW * int64(w)
}

func sortCare(care []selenc.CareBit) {
	for i := 1; i < len(care); i++ {
		for j := i; j > 0 && care[j-1].Pos > care[j].Pos; j-- {
			care[j-1], care[j] = care[j], care[j-1]
		}
	}
}

func TestEvalTDCMatchesRealEncoder(t *testing.T) {
	c := smallCore(11)
	for _, m := range []int{1, 2, 3, 5, 8, 13, c.MaxWrapperChains()} {
		got, err := EvalTDC(c, m)
		if err != nil {
			t.Fatal(err)
		}
		wantTime, wantVol := referenceTDC(t, c, m)
		if got.Time != wantTime || got.Volume != wantVol {
			t.Errorf("m=%d: cost model (τ=%d, V=%d) != encoder (τ=%d, V=%d)",
				m, got.Time, got.Volume, wantTime, wantVol)
		}
		if got.Width != selenc.CodewordWidth(m) || got.M != m || !got.UseTDC || !got.Feasible {
			t.Errorf("m=%d: config metadata wrong: %+v", m, got)
		}
	}
}

// Property: the cost model matches the encoder on random cores.
func TestQuickCostModelEquivalence(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nChains := rng.Intn(5)
		chains := make([]int, nChains)
		for i := range chains {
			chains[i] = rng.Intn(30) + 1
		}
		c := &soc.Core{
			Name: "q", Inputs: rng.Intn(15) + 1, Outputs: rng.Intn(15),
			ScanChains: chains, Patterns: rng.Intn(10) + 1,
			CareDensity: 0.05 + rng.Float64()*0.6, Clustering: rng.Float64(),
			Seed: seed,
		}
		m := rng.Intn(c.MaxWrapperChains()) + 1
		got, err := EvalTDC(c, m)
		if err != nil {
			return false
		}
		wantTime, wantVol := referenceTDCquiet(c, m)
		return got.Time == wantTime && got.Volume == wantVol
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func referenceTDCquiet(c *soc.Core, m int) (int64, int64) {
	d, _ := wrapper.New(c, m)
	ts, _ := c.TestSet()
	refs := d.StimulusMap()
	w := selenc.CodewordWidth(m)
	so := int64(d.ScanOut)
	var totalCW, time int64
	for j, cb := range ts.Cubes {
		slices := make([][]selenc.CareBit, d.ScanIn)
		for _, bit := range cb.Care {
			r := refs[bit.Pos]
			slices[r.Depth] = append(slices[r.Depth], selenc.CareBit{Pos: int(r.Chain), Value: bit.Value})
		}
		var cw int64
		for _, slice := range slices {
			sortCare(slice)
			cw += int64(len(selenc.EncodeSlice(m, slice)))
		}
		totalCW += cw
		if j == 0 {
			time += cw
		} else if cw > so {
			time += cw
		} else {
			time += so
		}
	}
	time += int64(ts.Len()) + so
	return time, totalCW * int64(w)
}

// TestEvalTDCLargeCubeMatchesRealEncoder covers big-cube inputs on
// wide designs: thousands of care bits per pattern must still match
// the real encoder exactly.
func TestEvalTDCLargeCubeMatchesRealEncoder(t *testing.T) {
	chains := make([]int, 24)
	for i := range chains {
		chains[i] = 120
	}
	c := &soc.Core{
		Name: "bigcube", Inputs: 30, Outputs: 30,
		ScanChains: chains, // 2880 cells
		Patterns:   6, CareDensity: 0.25, Clustering: 0.4, Seed: 17,
	}
	for _, m := range []int{5, 24, 40} {
		got, err := EvalTDC(c, m)
		if err != nil {
			t.Fatal(err)
		}
		wantTime, wantVol := referenceTDC(t, c, m)
		if got.Time != wantTime || got.Volume != wantVol {
			t.Errorf("m=%d: cost model (τ=%d, V=%d) != encoder (τ=%d, V=%d)",
				m, got.Time, got.Volume, wantTime, wantVol)
		}
	}
}

// TestKernelPathsAgree forces both plane-building strategies of the
// word kernel — dense (flat planes + transpose) and sparse (scatter
// over dirty rows) — onto the same cores and requires identical costs
// from each, for both group-copy settings. The density heuristic may
// pick either path; correctness must never depend on the choice.
func TestKernelPathsAgree(t *testing.T) {
	cores := []*soc.Core{
		smallCore(7),
		{Name: "dense", Inputs: 20, Outputs: 10, ScanChains: []int{70, 40, 40, 10},
			Patterns: 15, CareDensity: 0.55, Clustering: 0.3, Seed: 9},
		{Name: "thin", Inputs: 8, Outputs: 8, ScanChains: []int{90, 90, 90, 90, 90, 90},
			Patterns: 12, CareDensity: 0.02, Clustering: 0.8, Seed: 31},
		{Name: "comb", Inputs: 130, Outputs: 5, Patterns: 9,
			CareDensity: 0.4, Seed: 12},
	}
	for _, c := range cores {
		for _, m := range []int{1, 3, 17, c.MaxWrapperChains()} {
			if m > c.MaxWrapperChains() {
				continue
			}
			var results [2][2]Config
			for pi, dense := range []bool{false, true} {
				ev, err := NewEvaluator(c)
				if err != nil {
					t.Fatal(err)
				}
				ev.win.dense = dense
				for gi, gc := range []bool{true, false} {
					cfg, err := ev.TDC(m, gc)
					if err != nil {
						t.Fatal(err)
					}
					results[pi][gi] = cfg
				}
			}
			if results[0] != results[1] {
				t.Errorf("%s m=%d: sparse %+v != dense %+v", c.Name, m, results[0], results[1])
			}
		}
	}
}

// TestKernelSteadyStateZeroAlloc is the 0 allocs/op gate for the word
// kernel: once the scratch planes are warm, repeated tdcCost calls on
// both paths must not allocate. Run by the `make check`
// kernel-equivalence target.
func TestKernelSteadyStateZeroAlloc(t *testing.T) {
	c := smallCore(77)
	for _, dense := range []bool{false, true} {
		ev, err := NewEvaluator(c)
		if err != nil {
			t.Fatal(err)
		}
		ev.win.dense = dense
		d, err := ev.Design(9)
		if err != nil {
			t.Fatal(err)
		}
		ev.tdcCost(d, true) // warm the scratch
		allocs := testing.AllocsPerRun(20, func() {
			ev.tdcCost(d, true)
			ev.tdcCost(d, false)
		})
		if allocs != 0 {
			t.Errorf("dense=%v: steady-state tdcCost allocates %.1f allocs/op, want 0", dense, allocs)
		}
	}
}

// TestEvaluatorMatchesOneShotAPI asserts the reusable evaluator returns
// exactly what the package-level one-shot functions do, and that
// consecutive calls at one m share the wrapper design.
func TestEvaluatorMatchesOneShotAPI(t *testing.T) {
	c := smallCore(23)
	ev, err := NewEvaluator(c)
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range []int{1, 5, 11} {
		tdc, err := ev.TDC(m, true)
		if err != nil {
			t.Fatal(err)
		}
		want, err := EvalTDC(c, m)
		if err != nil {
			t.Fatal(err)
		}
		if tdc != want {
			t.Errorf("m=%d: Evaluator.TDC %+v != EvalTDC %+v", m, tdc, want)
		}
		noGC, err := ev.TDC(m, false)
		if err != nil {
			t.Fatal(err)
		}
		wantNoGC, err := EvalTDCNoGroupCopy(c, m)
		if err != nil {
			t.Fatal(err)
		}
		if noGC != wantNoGC {
			t.Errorf("m=%d: Evaluator.TDC(no group copy) mismatch", m)
		}
		direct, err := ev.NoTDC(m)
		if err != nil {
			t.Fatal(err)
		}
		wantDirect, err := EvalNoTDC(c, m)
		if err != nil {
			t.Fatal(err)
		}
		if direct != wantDirect {
			t.Errorf("m=%d: Evaluator.NoTDC mismatch", m)
		}
		bits, err := ev.PatternBits(m)
		if err != nil {
			t.Fatal(err)
		}
		wantBits, err := PatternBits(c, m)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(bits, wantBits) {
			t.Errorf("m=%d: Evaluator.PatternBits mismatch", m)
		}
	}
	d1, err := ev.Design(7)
	if err != nil {
		t.Fatal(err)
	}
	d2, err := ev.Design(7)
	if err != nil {
		t.Fatal(err)
	}
	if d1 != d2 {
		t.Error("Design(7) rebuilt instead of reusing the cached design")
	}
	if _, err := ev.TDC(0, true); err == nil {
		t.Error("m=0 accepted")
	}
}

func TestEvalNoTDC(t *testing.T) {
	c := smallCore(3)
	for _, m := range []int{1, 4, 10} {
		got, err := EvalNoTDC(c, m)
		if err != nil {
			t.Fatal(err)
		}
		d, _ := wrapper.New(c, m)
		if got.Time != d.TestTime() || got.Volume != d.StimulusVolume() {
			t.Errorf("m=%d: (%d,%d) want (%d,%d)", m, got.Time, got.Volume, d.TestTime(), d.StimulusVolume())
		}
		if got.UseTDC || !got.Feasible || got.M != m {
			t.Errorf("m=%d: metadata wrong: %+v", m, got)
		}
	}
	if _, err := EvalNoTDC(c, 0); err == nil {
		t.Error("m=0 accepted")
	}
	if _, err := EvalTDC(c, c.MaxWrapperChains()+1); err == nil {
		t.Error("m beyond max accepted")
	}
}

func TestConfigBetter(t *testing.T) {
	inf := Config{}
	a := Config{Feasible: true, Time: 10, Volume: 100}
	b := Config{Feasible: true, Time: 10, Volume: 90}
	c := Config{Feasible: true, Time: 9, Volume: 500}
	if inf.better(a) {
		t.Error("infeasible better than feasible")
	}
	if !a.better(inf) {
		t.Error("feasible not better than infeasible")
	}
	if !b.better(a) || a.better(b) {
		t.Error("volume tiebreak wrong")
	}
	if !c.better(b) {
		t.Error("time priority wrong")
	}
}

func TestSparseCoreCompressesWell(t *testing.T) {
	// At 2% care density the compressed volume must be well below the
	// raw stimulus volume for a same-width direct configuration.
	chains := make([]int, 40)
	for i := range chains {
		chains[i] = 50
	}
	c := &soc.Core{
		Name: "sparse", Inputs: 40, Outputs: 40,
		ScanChains: chains, // 2000 cells in short compression-ready chains
		Patterns:   40, CareDensity: 0.02, Clustering: 0.8, Seed: 5,
	}
	tdc, err := EvalTDC(c, 40) // w = 8
	if err != nil {
		t.Fatal(err)
	}
	raw, err := EvalNoTDC(c, 8) // same 8 TAM wires
	if err != nil {
		t.Fatal(err)
	}
	if tdc.Volume*3 > raw.Volume {
		t.Errorf("TDC volume %d not well below direct volume %d", tdc.Volume, raw.Volume)
	}
	if tdc.Time >= raw.Time {
		t.Errorf("TDC time %d not below direct time %d on sparse core", tdc.Time, raw.Time)
	}
}

func TestPatternBitsSumMatchesEvalTDC(t *testing.T) {
	c := smallCore(44)
	for _, m := range []int{2, 5, 11} {
		per, err := PatternBits(c, m)
		if err != nil {
			t.Fatal(err)
		}
		cfg, err := EvalTDC(c, m)
		if err != nil {
			t.Fatal(err)
		}
		var sum int64
		for _, b := range per {
			if b <= 0 {
				t.Fatalf("m=%d: non-positive pattern cost", m)
			}
			sum += b
		}
		if sum != cfg.Volume {
			t.Errorf("m=%d: per-pattern sum %d != EvalTDC volume %d", m, sum, cfg.Volume)
		}
	}
	if _, err := PatternBits(c, 0); err == nil {
		t.Error("m=0 accepted")
	}
}
