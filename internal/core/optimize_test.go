package core

import (
	"reflect"
	"testing"

	"soctap/internal/soc"
)

// testSOC builds a small SOC with compression-friendly sparse cores and
// one dense core, mimicking the mixed benchmark structure.
func testSOC() *soc.SOC {
	mk := func(name string, nChains, chainLen, pat int, density float64, seed int64) *soc.Core {
		chains := make([]int, nChains)
		for i := range chains {
			chains[i] = chainLen
		}
		return &soc.Core{
			Name: name, Inputs: 16, Outputs: 12,
			ScanChains: chains, Patterns: pat,
			CareDensity: density, Clustering: 0.8, DensityDecay: 0.5,
			Gates: 50000, Seed: seed,
		}
	}
	return &soc.SOC{
		Name: "tsoc",
		Cores: []*soc.Core{
			mk("a", 24, 30, 30, 0.03, 11),
			mk("b", 16, 25, 20, 0.05, 12),
			mk("c", 32, 20, 40, 0.02, 13),
			{Name: "d", Inputs: 30, Outputs: 20, ScanChains: []int{40, 40},
				Patterns: 25, CareDensity: 0.55, Clustering: 0.3, Gates: 9000, Seed: 14},
		},
	}
}

func TestOptimizeBasic(t *testing.T) {
	s := testSOC()
	res, err := Optimize(s, 16, Options{Style: StyleTDCPerCore, Tables: TableOptions{MaxWidth: 16}})
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Schedule.Validate(); err != nil {
		t.Fatal(err)
	}
	if res.TestTime != res.Schedule.Makespan {
		t.Error("TestTime != makespan")
	}
	if res.Partition.TotalWidth() > 16 {
		t.Errorf("partition %v exceeds W_TAM", res.Partition)
	}
	if len(res.Choices) != len(s.Cores) {
		t.Fatalf("%d choices for %d cores", len(res.Choices), len(s.Cores))
	}
	var vol int64
	for _, ch := range res.Choices {
		if !ch.Config.Feasible {
			t.Errorf("core %s got infeasible config", ch.Core)
		}
		vol += ch.Config.Volume
	}
	if vol != res.Volume {
		t.Errorf("volume %d != summed %d", res.Volume, vol)
	}
	if res.CPUSeconds < 0 || res.TableSeconds < 0 {
		t.Error("negative timings")
	}
}

func TestOptimizeStylesOrdering(t *testing.T) {
	s := testSOC()
	var cache Cache
	topts := TableOptions{MaxWidth: 16}
	run := func(style Style) *Result {
		res, err := Optimize(s, 16, Options{Style: style, Tables: topts, Cache: &cache})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	noTDC := run(StyleNoTDC)
	perCore := run(StyleTDCPerCore)
	perTAM := run(StyleTDCPerTAM)

	// The headline claim: per-core TDC beats no-TDC on time and volume
	// for sparse-core SOCs.
	if perCore.TestTime >= noTDC.TestTime {
		t.Errorf("per-core TDC time %d not below no-TDC %d", perCore.TestTime, noTDC.TestTime)
	}
	if perCore.Volume >= noTDC.Volume {
		t.Errorf("per-core TDC volume %d not below no-TDC %d", perCore.Volume, noTDC.Volume)
	}
	// Per-core is never worse than per-TAM (it may bypass TDC per core).
	if perCore.TestTime > perTAM.TestTime {
		t.Errorf("per-core %d worse than per-TAM %d", perCore.TestTime, perTAM.TestTime)
	}
	// Figure 4's wiring claim: the per-TAM style needs much wider
	// internal wiring than the TAM itself; no-TDC equals the TAM width.
	if noTDC.InternalWires != noTDC.Partition.TotalWidth() {
		t.Errorf("no-TDC internal wires %d != TAM width", noTDC.InternalWires)
	}
	if perTAM.Decompressors > 0 && perTAM.InternalWires <= perTAM.Partition.TotalWidth() {
		t.Errorf("per-TAM internal wires %d not wider than TAM %d",
			perTAM.InternalWires, perTAM.Partition.TotalWidth())
	}
	// No-TDC carries no decompressors.
	if noTDC.Decompressors != 0 || noTDC.DecompFFs != 0 {
		t.Error("no-TDC reports decompressor hardware")
	}
	// Per-core style has one decompressor per TDC core.
	using := 0
	for _, ch := range perCore.Choices {
		if ch.Config.UseTDC {
			using++
		}
	}
	if perCore.Decompressors != using {
		t.Errorf("decompressors %d, cores using TDC %d", perCore.Decompressors, using)
	}
}

func TestOptimizeMoreWiresNeverHurts(t *testing.T) {
	s := testSOC()
	var cache Cache
	prev := int64(1 << 62)
	for _, w := range []int{8, 16, 24, 32} {
		res, err := Optimize(s, w, Options{Style: StyleTDCPerCore, Tables: TableOptions{MaxWidth: 32}, Cache: &cache})
		if err != nil {
			t.Fatal(err)
		}
		if res.TestTime > prev {
			t.Errorf("W=%d: time %d worse than narrower budget %d", w, res.TestTime, prev)
		}
		prev = res.TestTime
	}
}

func TestOptimizeRefinementHelps(t *testing.T) {
	s := testSOC()
	var cache Cache
	topts := TableOptions{MaxWidth: 17}
	on, err := Optimize(s, 17, Options{Style: StyleTDCPerCore, Tables: topts, Cache: &cache})
	if err != nil {
		t.Fatal(err)
	}
	off, err := Optimize(s, 17, Options{Style: StyleTDCPerCore, Tables: topts, Cache: &cache, DisableRefinement: true})
	if err != nil {
		t.Fatal(err)
	}
	if on.TestTime > off.TestTime {
		t.Errorf("refinement made things worse: %d vs %d", on.TestTime, off.TestTime)
	}
}

func TestOptimizeValidation(t *testing.T) {
	s := testSOC()
	if _, err := Optimize(s, 0, Options{}); err == nil {
		t.Error("W_TAM = 0 accepted")
	}
	if _, err := Optimize(&soc.SOC{Name: "x"}, 8, Options{}); err == nil {
		t.Error("empty SOC accepted")
	}
	if _, err := Optimize(s, 32, Options{Tables: TableOptions{MaxWidth: 8}}); err == nil {
		t.Error("tables narrower than W_TAM accepted")
	}
}

func TestOptimizeSingleWire(t *testing.T) {
	// Degenerate budget: one wire, one bus, everything sequential.
	s := testSOC()
	res, err := Optimize(s, 1, Options{Style: StyleNoTDC, Tables: TableOptions{MaxWidth: 8}})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Partition) != 1 || res.Partition[0] != 1 {
		t.Errorf("partition %v", res.Partition)
	}
	var sum int64
	for _, it := range res.Schedule.Items {
		sum += it.Duration
	}
	if res.TestTime != sum {
		t.Errorf("single bus makespan %d != serial sum %d", res.TestTime, sum)
	}
}

func TestStyleString(t *testing.T) {
	if StyleNoTDC.String() != "no-tdc" || StyleTDCPerTAM.String() != "tdc-per-tam" ||
		StyleTDCPerCore.String() != "tdc-per-core" {
		t.Error("style names wrong")
	}
	if Style(99).String() == "" {
		t.Error("unknown style empty")
	}
}

func TestChooseConfigClamping(t *testing.T) {
	c := compressibleCore(9)
	tab, err := BuildTable(c, TableOptions{MaxWidth: 10})
	if err != nil {
		t.Fatal(err)
	}
	// Width beyond the table clamps instead of panicking.
	cfg := chooseConfig(StyleTDCPerCore, tab, 99)
	if !cfg.Feasible {
		t.Error("clamped width infeasible")
	}
	if got := chooseConfig(StyleTDCPerCore, tab, 0); got.Feasible {
		t.Error("width 0 feasible")
	}
	if got := chooseConfig(Style(42), tab, 5); got.Feasible {
		t.Error("unknown style feasible")
	}
	// Per-TAM bypass: width 2 cannot host a decompressor but must still
	// test the core directly.
	cfg = chooseConfig(StyleTDCPerTAM, tab, 2)
	if !cfg.Feasible || cfg.UseTDC {
		t.Errorf("per-TAM bypass at width 2: %+v", cfg)
	}
}

func TestOptimizeMaxTAMsHonored(t *testing.T) {
	s := testSOC()
	res, err := Optimize(s, 16, Options{
		Style: StyleTDCPerCore, Tables: TableOptions{MaxWidth: 16}, MaxTAMs: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Partition) > 2 {
		t.Errorf("partition %v exceeds MaxTAMs=2", res.Partition)
	}
}

func TestOptimizeCacheEquivalence(t *testing.T) {
	// Results must be identical with and without a table cache.
	s := testSOC()
	topts := TableOptions{MaxWidth: 12}
	var cache Cache
	a, err := Optimize(s, 12, Options{Style: StyleTDCPerCore, Tables: topts, Cache: &cache})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Optimize(s, 12, Options{Style: StyleTDCPerCore, Tables: topts})
	if err != nil {
		t.Fatal(err)
	}
	if a.TestTime != b.TestTime || a.Volume != b.Volume {
		t.Errorf("cache changed the outcome: (%d,%d) vs (%d,%d)",
			a.TestTime, a.Volume, b.TestTime, b.Volume)
	}
	// And a second cached run reproduces the first exactly.
	c, err := Optimize(s, 12, Options{Style: StyleTDCPerCore, Tables: topts, Cache: &cache})
	if err != nil {
		t.Fatal(err)
	}
	if c.TestTime != a.TestTime || c.Partition.Key() != a.Partition.Key() {
		t.Error("cached rerun diverged")
	}
}

func TestOptimizeDeterministic(t *testing.T) {
	s1, s2 := testSOC(), testSOC()
	a, err := Optimize(s1, 16, Options{Style: StyleTDCPerCore, Tables: TableOptions{MaxWidth: 16}})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Optimize(s2, 16, Options{Style: StyleTDCPerCore, Tables: TableOptions{MaxWidth: 16}})
	if err != nil {
		t.Fatal(err)
	}
	if a.TestTime != b.TestTime || a.Volume != b.Volume || a.Partition.Key() != b.Partition.Key() {
		t.Error("optimizer nondeterministic across identical fresh inputs")
	}
}

func TestOptimizeMergeSearchNeverWorse(t *testing.T) {
	s := testSOC()
	var cache Cache
	topts := TableOptions{MaxWidth: 19}
	plain, err := Optimize(s, 19, Options{Style: StyleTDCPerCore, Tables: topts, Cache: &cache})
	if err != nil {
		t.Fatal(err)
	}
	merged, err := Optimize(s, 19, Options{
		Style: StyleTDCPerCore, Tables: topts, Cache: &cache, MergeSearch: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if merged.TestTime > plain.TestTime {
		t.Errorf("merge search made things worse: %d vs %d", merged.TestTime, plain.TestTime)
	}
	if err := merged.Schedule.Validate(); err != nil {
		t.Fatal(err)
	}
	if merged.Partition.TotalWidth() > 19 {
		t.Errorf("merge search partition %v over budget", merged.Partition)
	}
}

// TestOptimizeSearchWorkersDeterminism asserts the parallel architecture
// search is bit-identical to the sequential one on d695: every
// search-relevant Result field matches for any Workers setting.
func TestOptimizeSearchWorkersDeterminism(t *testing.T) {
	s := soc.D695()
	var cache Cache
	base := Options{
		Style:  StyleTDCPerCore,
		Tables: TableOptions{MaxWidth: 32},
		Cache:  &cache, MergeSearch: true,
	}
	run := func(workers int) *Result {
		t.Helper()
		opts := base
		opts.Workers = workers
		res, err := Optimize(s, 32, opts)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	seq := run(1)
	for _, workers := range []int{2, 8} {
		par := run(workers)
		if !reflect.DeepEqual(par.Partition, seq.Partition) {
			t.Errorf("Workers=%d: partition %v differs from %v", workers, par.Partition, seq.Partition)
		}
		if !reflect.DeepEqual(par.Schedule, seq.Schedule) {
			t.Errorf("Workers=%d: schedule differs", workers)
		}
		if !reflect.DeepEqual(par.Choices, seq.Choices) {
			t.Errorf("Workers=%d: choices differ", workers)
		}
		if par.TestTime != seq.TestTime || par.Volume != seq.Volume {
			t.Errorf("Workers=%d: time/volume %d/%d differ from %d/%d",
				workers, par.TestTime, par.Volume, seq.TestTime, seq.Volume)
		}
	}
}
