// Package ate models the automatic test equipment side of the flow:
// channel counts, vector memory depth, and test application wall-clock
// time. The paper's motivation — "excessive tester memory requirements"
// — is quantified here.
package ate

import "fmt"

// Tester describes an ATE configuration.
type Tester struct {
	Channels    int   // scan-capable digital channels
	MemoryDepth int64 // vectors (bits) per channel
	FreqMHz     float64
}

// Validate checks the tester description.
func (t Tester) Validate() error {
	if t.Channels < 1 {
		return fmt.Errorf("ate: %d channels", t.Channels)
	}
	if t.MemoryDepth < 0 {
		return fmt.Errorf("ate: negative memory depth")
	}
	if t.FreqMHz < 0 {
		return fmt.Errorf("ate: negative frequency")
	}
	return nil
}

// DepthPerChannel returns the vector depth each channel needs to store
// the given total stimulus volume (bits), assuming balanced channel use.
func (t Tester) DepthPerChannel(volumeBits int64) int64 {
	return (volumeBits + int64(t.Channels) - 1) / int64(t.Channels)
}

// Fits reports whether the volume fits the tester memory without a
// buffer reload.
func (t Tester) Fits(volumeBits int64) bool {
	return t.MemoryDepth == 0 || t.DepthPerChannel(volumeBits) <= t.MemoryDepth
}

// Reloads returns the number of memory reloads needed for the volume
// (0 when it fits, or when depth is unlimited).
func (t Tester) Reloads(volumeBits int64) int64 {
	if t.MemoryDepth == 0 {
		return 0
	}
	d := t.DepthPerChannel(volumeBits)
	if d <= t.MemoryDepth {
		return 0
	}
	return (d+t.MemoryDepth-1)/t.MemoryDepth - 1
}

// Seconds converts a cycle count to wall-clock test seconds at the
// tester frequency (0 frequency returns 0).
func (t Tester) Seconds(cycles int64) float64 {
	if t.FreqMHz <= 0 {
		return 0
	}
	return float64(cycles) / (t.FreqMHz * 1e6)
}
