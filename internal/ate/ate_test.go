package ate

import "testing"

func TestValidate(t *testing.T) {
	if err := (Tester{Channels: 16, MemoryDepth: 1 << 20, FreqMHz: 50}).Validate(); err != nil {
		t.Errorf("valid tester rejected: %v", err)
	}
	for _, bad := range []Tester{
		{Channels: 0},
		{Channels: 4, MemoryDepth: -1},
		{Channels: 4, FreqMHz: -2},
	} {
		if err := bad.Validate(); err == nil {
			t.Errorf("invalid tester accepted: %+v", bad)
		}
	}
}

func TestDepthPerChannel(t *testing.T) {
	ts := Tester{Channels: 16}
	if got := ts.DepthPerChannel(1600); got != 100 {
		t.Errorf("DepthPerChannel(1600) = %d, want 100", got)
	}
	if got := ts.DepthPerChannel(1601); got != 101 {
		t.Errorf("DepthPerChannel(1601) = %d, want 101 (ceiling)", got)
	}
}

func TestFitsAndReloads(t *testing.T) {
	ts := Tester{Channels: 8, MemoryDepth: 1000}
	if !ts.Fits(8000) {
		t.Error("exact fit rejected")
	}
	if ts.Fits(8001) {
		t.Error("overflow accepted")
	}
	if got := ts.Reloads(8000); got != 0 {
		t.Errorf("Reloads(fit) = %d", got)
	}
	if got := ts.Reloads(16000); got != 1 {
		t.Errorf("Reloads(2x) = %d, want 1", got)
	}
	if got := ts.Reloads(24001); got != 3 {
		t.Errorf("Reloads(3x+1) = %d, want 3", got)
	}
	unlimited := Tester{Channels: 8}
	if !unlimited.Fits(1<<40) || unlimited.Reloads(1<<40) != 0 {
		t.Error("unlimited memory not honored")
	}
}

func TestSeconds(t *testing.T) {
	ts := Tester{Channels: 8, FreqMHz: 50}
	if got := ts.Seconds(50_000_000); got != 1.0 {
		t.Errorf("Seconds = %g, want 1.0", got)
	}
	if (Tester{Channels: 8}).Seconds(100) != 0 {
		t.Error("zero frequency should report 0 seconds")
	}
}
