// Package tam models SOC-level test access mechanisms: the partition of
// the top-level TAM width W_TAM into k fixed-width test buses, and the
// assignment of cores to buses. It provides the partition arithmetic the
// optimizer's architecture search is built on.
package tam

import (
	"fmt"
	"sort"
)

// Partition is the widths of the k TAM buses, in bus order. All widths
// are positive.
type Partition []int

// TotalWidth returns the summed bus width.
func (p Partition) TotalWidth() int {
	w := 0
	for _, x := range p {
		w += x
	}
	return w
}

// Validate checks that every bus has positive width and, if maxTotal > 0,
// that the partition fits the budget.
func (p Partition) Validate(maxTotal int) error {
	if len(p) == 0 {
		return fmt.Errorf("tam: empty partition")
	}
	for i, w := range p {
		if w <= 0 {
			return fmt.Errorf("tam: bus %d has width %d", i, w)
		}
	}
	if maxTotal > 0 && p.TotalWidth() > maxTotal {
		return fmt.Errorf("tam: partition uses %d wires, budget %d", p.TotalWidth(), maxTotal)
	}
	return nil
}

// Clone returns a copy of the partition.
func (p Partition) Clone() Partition {
	c := make(Partition, len(p))
	copy(c, p)
	return c
}

// Even returns a partition of total wires into k buses with widths as
// equal as possible (wider buses first). It returns an error when the
// partition would create zero-width buses.
func Even(total, k int) (Partition, error) {
	if k <= 0 {
		return nil, fmt.Errorf("tam: bus count %d", k)
	}
	if total < k {
		return nil, fmt.Errorf("tam: cannot split %d wires into %d buses", total, k)
	}
	p := make(Partition, k)
	base, rem := total/k, total%k
	for i := range p {
		p[i] = base
		if i < rem {
			p[i]++
		}
	}
	return p, nil
}

// MoveWire returns a copy of p with one wire moved from bus `from` to bus
// `to`, or an error if that would empty the source bus.
func (p Partition) MoveWire(from, to int) (Partition, error) {
	if from < 0 || from >= len(p) || to < 0 || to >= len(p) || from == to {
		return nil, fmt.Errorf("tam: invalid wire move %d -> %d", from, to)
	}
	if p[from] <= 1 {
		return nil, fmt.Errorf("tam: bus %d cannot give up its last wire", from)
	}
	c := p.Clone()
	c[from]--
	c[to]++
	return c, nil
}

// Canonical returns the partition sorted by decreasing width — two
// partitions with the same multiset of widths canonicalize identically,
// which the architecture search uses to avoid revisiting states.
func (p Partition) Canonical() Partition {
	c := p.Clone()
	sort.Sort(sort.Reverse(sort.IntSlice(c)))
	return c
}

// Key returns a comparable string form of the canonical partition. It
// is the architecture search's memoization key, so it avoids Canonical's
// clone and the interface-based sort: partitions are short (one entry
// per bus), and an insertion sort over a stack buffer is both
// allocation-free and order-deterministic.
func (p Partition) Key() string {
	var cbuf [32]int
	c := cbuf[:0]
	if len(p) > len(cbuf) {
		c = make([]int, 0, len(p))
	}
	c = append(c, p...)
	for i := 1; i < len(c); i++ {
		v := c[i]
		j := i - 1
		for j >= 0 && c[j] < v {
			c[j+1] = c[j]
			j--
		}
		c[j+1] = v
	}
	var bbuf [96]byte
	b := bbuf[:0]
	for i, w := range c {
		if i > 0 {
			b = append(b, ',')
		}
		b = appendInt(b, w)
	}
	return string(b)
}

func appendInt(b []byte, v int) []byte {
	if v == 0 {
		return append(b, '0')
	}
	var tmp [12]byte
	i := len(tmp)
	for v > 0 {
		i--
		tmp[i] = byte('0' + v%10)
		v /= 10
	}
	return append(b, tmp[i:]...)
}

// Architecture is a TAM partition plus the assignment of each core
// (by index) to a bus.
type Architecture struct {
	Partition Partition
	// CoreBus[i] is the bus index core i is assigned to.
	CoreBus []int
}

// Validate checks the architecture for nCores cores.
func (a *Architecture) Validate(nCores, maxTotal int) error {
	if err := a.Partition.Validate(maxTotal); err != nil {
		return err
	}
	if len(a.CoreBus) != nCores {
		return fmt.Errorf("tam: %d core assignments, want %d", len(a.CoreBus), nCores)
	}
	for i, b := range a.CoreBus {
		if b < 0 || b >= len(a.Partition) {
			return fmt.Errorf("tam: core %d assigned to invalid bus %d", i, b)
		}
	}
	return nil
}

// CoresOnBus returns the core indices assigned to bus b, in index order.
func (a *Architecture) CoresOnBus(b int) []int {
	var out []int
	for i, bus := range a.CoreBus {
		if bus == b {
			out = append(out, i)
		}
	}
	return out
}
