package tam

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestEven(t *testing.T) {
	p, err := Even(31, 3)
	if err != nil {
		t.Fatal(err)
	}
	if p.TotalWidth() != 31 || len(p) != 3 {
		t.Fatalf("Even(31,3) = %v", p)
	}
	if p[0] != 11 || p[1] != 10 || p[2] != 10 {
		t.Errorf("Even(31,3) = %v, want [11 10 10]", p)
	}
	if _, err := Even(2, 3); err == nil {
		t.Error("Even(2,3) accepted")
	}
	if _, err := Even(5, 0); err == nil {
		t.Error("Even(5,0) accepted")
	}
}

func TestValidate(t *testing.T) {
	if err := (Partition{4, 4}).Validate(8); err != nil {
		t.Errorf("valid partition rejected: %v", err)
	}
	if err := (Partition{}).Validate(8); err == nil {
		t.Error("empty partition accepted")
	}
	if err := (Partition{4, 0}).Validate(8); err == nil {
		t.Error("zero-width bus accepted")
	}
	if err := (Partition{5, 4}).Validate(8); err == nil {
		t.Error("over-budget partition accepted")
	}
	if err := (Partition{5, 4}).Validate(0); err != nil {
		t.Error("unbounded budget should not be enforced")
	}
}

func TestMoveWire(t *testing.T) {
	p := Partition{3, 2, 1}
	q, err := p.MoveWire(0, 2)
	if err != nil {
		t.Fatal(err)
	}
	if q[0] != 2 || q[2] != 2 {
		t.Errorf("MoveWire result %v", q)
	}
	if p[0] != 3 {
		t.Error("MoveWire mutated original")
	}
	if _, err := p.MoveWire(2, 0); err == nil {
		t.Error("emptying a bus accepted")
	}
	if _, err := p.MoveWire(0, 0); err == nil {
		t.Error("self-move accepted")
	}
	if _, err := p.MoveWire(-1, 0); err == nil {
		t.Error("bad index accepted")
	}
}

func TestCanonicalAndKey(t *testing.T) {
	a := Partition{3, 7, 5}
	b := Partition{7, 5, 3}
	if a.Key() != b.Key() {
		t.Errorf("keys differ: %q vs %q", a.Key(), b.Key())
	}
	if a.Key() != "7,5,3" {
		t.Errorf("Key = %q", a.Key())
	}
	c := a.Canonical()
	if c[0] != 7 || c[1] != 5 || c[2] != 3 {
		t.Errorf("Canonical = %v", c)
	}
	if a[0] != 3 {
		t.Error("Canonical mutated original")
	}
}

func TestArchitecture(t *testing.T) {
	a := &Architecture{Partition: Partition{4, 4}, CoreBus: []int{0, 1, 0}}
	if err := a.Validate(3, 8); err != nil {
		t.Errorf("valid architecture rejected: %v", err)
	}
	if err := a.Validate(2, 8); err == nil {
		t.Error("wrong core count accepted")
	}
	bad := &Architecture{Partition: Partition{4, 4}, CoreBus: []int{0, 2, 0}}
	if err := bad.Validate(3, 8); err == nil {
		t.Error("invalid bus index accepted")
	}
	on0 := a.CoresOnBus(0)
	if len(on0) != 2 || on0[0] != 0 || on0[1] != 2 {
		t.Errorf("CoresOnBus(0) = %v", on0)
	}
	if got := a.CoresOnBus(1); len(got) != 1 || got[0] != 1 {
		t.Errorf("CoresOnBus(1) = %v", got)
	}
}

// Property: Even partitions conserve wires, differ by at most 1, and
// MoveWire conserves wires.
func TestQuickPartitions(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		k := rng.Intn(8) + 1
		total := k + rng.Intn(64)
		p, err := Even(total, k)
		if err != nil {
			return false
		}
		if p.TotalWidth() != total {
			return false
		}
		min, max := p[0], p[0]
		for _, w := range p {
			if w < min {
				min = w
			}
			if w > max {
				max = w
			}
		}
		if max-min > 1 {
			return false
		}
		if k >= 2 && p[0] > 1 {
			q, err := p.MoveWire(0, k-1)
			if err != nil || q.TotalWidth() != total {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
