package cube

// Window is a flattened run of consecutive cubes from one pass of a
// Source: every care bit is packed as pos<<1|value in Refs, and cube j
// of the window owns Refs[Off[j]:Off[j+1]] (Off carries a final
// sentinel). This is the single-traversal fan-out point of the
// streaming evaluator — one producer loads a Window from the source,
// then any number of read-only consumers price the same loaded cubes
// without ever touching the Source, so a fused sweep streams the test
// set once per batch of evaluation points instead of once per point.
//
// A Window's buffers are recycled across loads; consumers must not
// retain slices into Refs/Off past the next Load/Reset. Loading is the
// producer's alone; concurrent readers are safe between loads.
type Window struct {
	Refs []uint64
	Off  []int
}

// Reset empties the window, keeping capacity.
func (w *Window) Reset() {
	w.Refs = w.Refs[:0]
	w.Off = w.Off[:0]
}

// AppendCube flattens one cube into the window. Seal must be called
// after the last append before the window is read.
func (w *Window) AppendCube(c *Cube) {
	w.Off = append(w.Off, len(w.Refs))
	for _, bit := range c.Care {
		r := uint64(bit.Pos) << 1
		if bit.Value {
			r |= 1
		}
		w.Refs = append(w.Refs, r)
	}
}

// Seal closes the window with the sentinel offset.
func (w *Window) Seal() {
	w.Off = append(w.Off, len(w.Refs))
}

// Load resets the window, pulls up to max cubes from src in one
// traversal, seals, and returns the number loaded.
func (w *Window) Load(src Source, max int) int {
	w.Reset()
	n := 0
	for n < max {
		c, ok := src.Next()
		if !ok {
			break
		}
		w.AppendCube(c)
		n++
	}
	w.Seal()
	return n
}

// Len returns the number of cubes loaded.
func (w *Window) Len() int {
	if len(w.Off) == 0 {
		return 0
	}
	return len(w.Off) - 1
}

// CareBits returns the total number of care bits loaded.
func (w *Window) CareBits() int { return len(w.Refs) }

// CubeRefs returns cube j's packed care refs.
func (w *Window) CubeRefs(j int) []uint64 { return w.Refs[w.Off[j]:w.Off[j+1]] }
