package cube

import "sort"

// Compact performs greedy static compaction of a cube set: compatible
// cubes (agreeing on all commonly specified bits) are merged into one,
// reducing the pattern count — the standard ATPG post-processing step
// that precedes test planning. The result is a new set; the input is
// not modified.
//
// The greedy order processes densest cubes first and merges each
// remaining cube into the first compatible survivor, which is the usual
// fast O(n²·cost) heuristic. Fault coverage is preserved in the
// conventional sense: every original cube is covered by (compatible
// with and contained in) some merged cube.
func Compact(s *Set) *Set {
	order := make([]int, len(s.Cubes))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		return len(s.Cubes[order[a]].Care) > len(s.Cubes[order[b]].Care)
	})

	out := NewSet(s.NumBits)
	for _, idx := range order {
		c := s.Cubes[idx]
		merged := false
		for i, surv := range out.Cubes {
			if surv.CompatibleWith(c) {
				m, err := surv.Merge(c)
				if err != nil {
					continue // cannot happen for compatible cubes
				}
				out.Cubes[i] = m
				merged = true
				break
			}
		}
		if !merged {
			out.Cubes = append(out.Cubes, c.Clone())
		}
	}
	return out
}

// CoversAll reports whether every cube of orig is covered by some cube
// of compacted — the compaction soundness criterion.
func CoversAll(compacted, orig *Set) bool {
	if compacted.NumBits != orig.NumBits {
		return false
	}
	for _, c := range orig.Cubes {
		ct := c.ToTrits()
		found := false
		for _, m := range compacted.Cubes {
			if m.ToTrits().Covers(ct) {
				found = true
				break
			}
		}
		if !found {
			return false
		}
	}
	return true
}
