package cube

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// GenSpec parameterizes the deterministic synthetic cube generator. The
// generator imitates the statistical structure of ATPG-compacted test
// cubes for scan designs:
//
//   - care bits cluster around logic "cones" (structurally related scan
//     cells) rather than spreading uniformly;
//   - early patterns are dense (they target many easy faults after
//     static compaction), late patterns are sparse top-offs;
//   - specified values are locally correlated (a cone tends to be
//     justified with runs of equal values).
//
// When the scan Geometry is provided, cones are placed in (scan chain,
// depth) coordinates: a cluster occupies a small rectangle of adjacent
// scan chains at nearby scan depths. This is the scan-slice clustering
// regime that slice-based compression schemes (selective encoding, LFSR
// reseeding with scan slices) are designed to exploit, and matches the
// published behaviour of industrial compression-ready cores. Without
// geometry, clusters are placed over flat cell indices.
//
// All randomness derives from Seed, so a spec always generates the same
// test set — whether materialized at once by Generate or pulled one
// cube at a time from a Generator.
type GenSpec struct {
	NumBits  int     // stimulus bits per pattern (wrapper inputs + scan cells)
	Patterns int     // number of test cubes
	Density  float64 // target mean care-bit density over the whole set, (0,1]
	// DensityDecay controls how much denser early patterns are than late
	// ones. 0 means uniform; 1 means the first pattern is roughly 3x the
	// density of the last. Values outside [0,1] are clamped.
	DensityDecay float64
	// Clustering in [0,1]: 0 scatters care bits uniformly, 1 concentrates
	// them tightly around a few cone centers.
	Clustering float64
	// OneBias is the probability that a cone's dominant value is 1.
	// Within a cone, ~85% of care bits take the dominant value.
	OneBias float64
	Seed    int64

	// Geometry optionally lists the core's scan chain lengths; the flat
	// stimulus layout is then [IOCells wrapper-input cells][chain 0]
	// [chain 1]... and clusters span adjacent chains at equal depth.
	Geometry []int
	// IOCells is the number of leading flat positions holding wrapper
	// input cells (only meaningful with Geometry).
	IOCells int
}

// Structural bounds on generated test sets. Per-field limits line up
// with the soc package's parse-time bounds (MaxStimulusBits,
// MaxPatterns); the total-bits product is the giant-spec guard — it is
// computed in int64 so that a spec with both fields near their caps is
// rejected by arithmetic that cannot itself overflow.
const (
	MaxNumBits   = 1 << 28 // == soc.MaxStimulusBits
	MaxPatterns  = 1 << 26 // == soc.MaxPatterns
	MaxTotalBits = 1 << 48 // NumBits × Patterns ceiling (raw image bits)
)

// Validate checks the spec for consistency.
func (g GenSpec) Validate() error {
	if g.NumBits <= 0 {
		return fmt.Errorf("cube: GenSpec.NumBits = %d, must be > 0", g.NumBits)
	}
	if g.NumBits > MaxNumBits {
		return fmt.Errorf("cube: GenSpec.NumBits = %d exceeds limit %d", g.NumBits, MaxNumBits)
	}
	if g.Patterns <= 0 {
		return fmt.Errorf("cube: GenSpec.Patterns = %d, must be > 0", g.Patterns)
	}
	if g.Patterns > MaxPatterns {
		return fmt.Errorf("cube: GenSpec.Patterns = %d exceeds limit %d", g.Patterns, MaxPatterns)
	}
	if total := int64(g.NumBits) * int64(g.Patterns); total > MaxTotalBits {
		return fmt.Errorf("cube: GenSpec total %d × %d = %d raw bits exceeds limit %d",
			g.NumBits, g.Patterns, total, int64(MaxTotalBits))
	}
	// The positive form also rejects NaN (which compares false to
	// everything and would otherwise slip through to the placement
	// arithmetic).
	if !(g.Density > 0 && g.Density <= 1) {
		return fmt.Errorf("cube: GenSpec.Density = %g, must be in (0,1]", g.Density)
	}
	for _, f := range []struct {
		name string
		v    float64
	}{{"DensityDecay", g.DensityDecay}, {"Clustering", g.Clustering}, {"OneBias", g.OneBias}} {
		if math.IsNaN(f.v) || math.IsInf(f.v, 0) {
			return fmt.Errorf("cube: GenSpec.%s = %g, must be finite", f.name, f.v)
		}
	}
	if len(g.Geometry) > 0 {
		total := g.IOCells
		for i, l := range g.Geometry {
			if l <= 0 {
				return fmt.Errorf("cube: GenSpec.Geometry[%d] = %d", i, l)
			}
			total += l
		}
		if g.IOCells < 0 || total != g.NumBits {
			return fmt.Errorf("cube: geometry covers %d cells, NumBits is %d", total, g.NumBits)
		}
	}
	return nil
}

// Generate produces the deterministic synthetic test set described by
// the spec, materialized as a *Set. It is a thin adapter over the
// streaming Generator — collecting the same cube sequence a Generator
// yields — kept for callers that genuinely need the whole set resident
// (dictionary training, ad-hoc tooling). Scale-sensitive paths should
// pull from NewGenerator instead.
func Generate(g GenSpec) (*Set, error) {
	gen, err := NewGenerator(g)
	if err != nil {
		return nil, err
	}
	set := NewSet(g.NumBits)
	set.Cubes = make([]*Cube, 0, g.Patterns)
	for {
		c, ok := gen.Next()
		if !ok {
			break
		}
		set.Cubes = append(set.Cubes, c)
	}
	return set, nil
}

// placeCare appends one care bit without the O(care) sorted-insert of
// Cube.Set; generator call sites guarantee position uniqueness via
// their seen maps, and sortCare restores the Care ordering invariant
// once placement finishes. This keeps per-cube cost O(care log care)
// instead of O(care²) — the difference between minutes and hours on a
// million-cube giant set.
func placeCare(c *Cube, pos int, v bool) {
	c.Care = append(c.Care, CareBit{Pos: pos, Value: v})
}

// sortCare restores the sorted-by-position invariant after placeCare
// appends. Positions are unique, so a plain sort reproduces exactly the
// layout incremental Cube.Set insertion would have built.
func sortCare(c *Cube) {
	sort.Slice(c.Care, func(i, j int) bool { return c.Care[i].Pos < c.Care[j].Pos })
}

// genScanCube places clusters in (chain, depth) coordinates: each
// cluster is a rectangle of adjacent chains at nearby depths, the
// scan-slice clustering regime. IO cells receive a proportional share of
// uniformly scattered care bits.
func genScanCube(rng *rand.Rand, g GenSpec, chainStart []int, nCare int, clustering, oneBias float64) *Cube {
	c := NewCube(g.NumBits)
	c.Care = make([]CareBit, 0, nCare)
	seen := make(map[int]bool, nCare)
	nChains := len(g.Geometry)

	// IO share of the care bits, scattered uniformly.
	ioCare := 0
	if g.IOCells > 0 {
		ioCare = nCare * g.IOCells / g.NumBits
	}
	placed := 0
	for tries := 0; placed < ioCare && tries < ioCare*40; tries++ {
		pos := rng.Intn(g.IOCells)
		if seen[pos] {
			continue
		}
		seen[pos] = true
		placeCare(c, pos, rng.Float64() < oneBias)
		placed++
	}

	// Cluster shape: span across chains shrinks as clustering weakens
	// (scattering degenerates to single cells).
	meanSpan := 2 + clustering*14 // chains per cluster at full clustering: ~16
	for attempts := 0; placed < nCare && attempts < nCare*40; attempts++ {
		span := 1 + rng.Intn(int(meanSpan))
		if span > nChains {
			span = nChains
		}
		c0 := rng.Intn(nChains - span + 1)
		depthSpan := 1 + rng.Intn(2)
		// Depth anchored within the shortest chain of the rectangle.
		minLen := g.Geometry[c0]
		for ch := c0; ch < c0+span; ch++ {
			if g.Geometry[ch] < minLen {
				minLen = g.Geometry[ch]
			}
		}
		if minLen <= depthSpan {
			depthSpan = 1
		}
		d0 := rng.Intn(max(1, minLen-depthSpan+1))
		domVal := rng.Float64() < oneBias
		for ch := c0; ch < c0+span && placed < nCare; ch++ {
			for dd := 0; dd < depthSpan && placed < nCare; dd++ {
				d := d0 + dd
				if d >= g.Geometry[ch] {
					continue
				}
				// Clusters are dense but not solid.
				if rng.Float64() > 0.8 {
					continue
				}
				pos := chainStart[ch] + d
				if seen[pos] {
					continue
				}
				seen[pos] = true
				v := domVal
				if rng.Float64() > 0.85 {
					v = !v
				}
				placeCare(c, pos, v)
				placed++
			}
		}
	}
	fillRemaining(rng, c, seen, g.NumBits, nCare, &placed, oneBias)
	sortCare(c)
	return c
}

// genFlatCube draws one cube with nCare specified bits clustered over
// flat cell indices.
func genFlatCube(rng *rand.Rand, numBits, nCare int, clustering, oneBias float64) *Cube {
	c := NewCube(numBits)
	c.Care = make([]CareBit, 0, nCare)
	seen := make(map[int]bool, nCare)

	// Number of cone centers: fewer cones = stronger clustering. At
	// clustering=0 every care bit is its own "cone" (uniform scatter).
	nCones := 1 + int(float64(nCare)*math.Pow(1-clustering, 2))
	if nCones > nCare {
		nCones = nCare
	}
	type cone struct {
		center int
		spread float64
		domVal bool
	}
	cones := make([]cone, nCones)
	for i := range cones {
		cones[i] = cone{
			center: rng.Intn(numBits),
			// Tight spreads at high clustering: ~0.2% of the core at
			// clustering=1, ~20% at clustering=0.
			spread: float64(numBits) * (0.002 + 0.2*(1-clustering)),
			domVal: rng.Float64() < oneBias,
		}
	}

	placed := 0
	for attempts := 0; placed < nCare && attempts < nCare*50; attempts++ {
		co := cones[rng.Intn(nCones)]
		pos := co.center + int(rng.NormFloat64()*co.spread)
		if pos < 0 || pos >= numBits || seen[pos] {
			continue
		}
		seen[pos] = true
		v := co.domVal
		if rng.Float64() > 0.85 {
			v = !v
		}
		placeCare(c, pos, v)
		placed++
	}
	fillRemaining(rng, c, seen, numBits, nCare, &placed, oneBias)
	sortCare(c)
	return c
}

// fillRemaining linearly scans for free cells when random placement
// saturates (tiny cores or density ~1).
func fillRemaining(rng *rand.Rand, c *Cube, seen map[int]bool, numBits, nCare int, placed *int, oneBias float64) {
	for pos := 0; *placed < nCare && pos < numBits; pos++ {
		if seen[pos] {
			continue
		}
		seen[pos] = true
		placeCare(c, pos, rng.Float64() < oneBias)
		*placed++
	}
}

// clamp01 confines x to [0,1]. The !(x >= 0) form maps NaN to 0 rather
// than letting it poison the downstream arithmetic (rand.Intn(int(NaN))
// panics) — which is why this is not simply min(1, max(0, x)): the
// float builtins propagate NaN.
func clamp01(x float64) float64 {
	if !(x >= 0) {
		return 0
	}
	return min(x, 1)
}
