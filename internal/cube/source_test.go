package cube

import (
	"reflect"
	"testing"
)

// sourceSpecs cover both placement regimes (scan geometry and flat) and
// the degenerate single-pattern case.
func sourceSpecs() []GenSpec {
	return []GenSpec{
		{NumBits: 2000, Patterns: 50, Density: 0.03, DensityDecay: 0.8, Clustering: 0.7, Seed: 42},
		{NumBits: 1200, Patterns: 30, Density: 0.05, DensityDecay: 0.5, Clustering: 0.9, Seed: 7,
			Geometry: []int{300, 300, 250, 250}, IOCells: 100},
		{NumBits: 64, Patterns: 1, Density: 1, Clustering: 0.9, Seed: 1},
	}
}

func TestGeneratorMatchesGenerate(t *testing.T) {
	for si, spec := range sourceSpecs() {
		want, err := Generate(spec)
		if err != nil {
			t.Fatal(err)
		}
		gen, err := NewGenerator(spec)
		if err != nil {
			t.Fatal(err)
		}
		if gen.NumBits() != spec.NumBits || gen.Len() != spec.Patterns {
			t.Fatalf("spec %d: NumBits/Len = %d/%d, want %d/%d",
				si, gen.NumBits(), gen.Len(), spec.NumBits, spec.Patterns)
		}
		for i := 0; i < spec.Patterns; i++ {
			c, ok := gen.Next()
			if !ok {
				t.Fatalf("spec %d: stream ended at cube %d of %d", si, i, spec.Patterns)
			}
			if !reflect.DeepEqual(c, want.Cubes[i]) {
				t.Fatalf("spec %d: streamed cube %d differs from materialized", si, i)
			}
		}
		if _, ok := gen.Next(); ok {
			t.Fatalf("spec %d: stream yielded more than %d cubes", si, spec.Patterns)
		}
	}
}

func TestGeneratorResetReplays(t *testing.T) {
	spec := sourceSpecs()[1]
	gen, err := NewGenerator(spec)
	if err != nil {
		t.Fatal(err)
	}
	// Abandon a pass midway; Reset must still replay the full sequence.
	for i := 0; i < spec.Patterns/2; i++ {
		gen.Next()
	}
	gen.Reset()
	want, _ := Generate(spec)
	for i := 0; i < spec.Patterns; i++ {
		c, ok := gen.Next()
		if !ok {
			t.Fatalf("post-reset stream ended at cube %d", i)
		}
		if !reflect.DeepEqual(c, want.Cubes[i]) {
			t.Fatalf("post-reset cube %d differs from materialized", i)
		}
	}
}

func TestSetSource(t *testing.T) {
	set, err := Generate(sourceSpecs()[0])
	if err != nil {
		t.Fatal(err)
	}
	var src Source = NewSetSource(set)
	if src.NumBits() != set.NumBits || src.Len() != set.Len() {
		t.Fatalf("NumBits/Len = %d/%d, want %d/%d", src.NumBits(), src.Len(), set.NumBits, set.Len())
	}
	for pass := 0; pass < 2; pass++ {
		for i := range set.Cubes {
			c, ok := src.Next()
			if !ok || c != set.Cubes[i] {
				t.Fatalf("pass %d cube %d: got %p ok=%v, want %p", pass, i, c, ok, set.Cubes[i])
			}
		}
		if _, ok := src.Next(); ok {
			t.Fatalf("pass %d: Next past the end returned ok", pass)
		}
		src.Reset()
	}
}

func TestValidateGiantBounds(t *testing.T) {
	cases := []struct {
		name string
		spec GenSpec
	}{
		{"NumBits over cap", GenSpec{NumBits: MaxNumBits + 1, Patterns: 1, Density: 0.1}},
		{"Patterns over cap", GenSpec{NumBits: 10, Patterns: MaxPatterns + 1, Density: 0.1}},
		// Each field individually within bounds, product over the total
		// ceiling: 2^28 × 2^21 = 2^49 > 2^48. The product must be priced
		// in int64 — in 32-bit int arithmetic it would wrap.
		{"total over cap", GenSpec{NumBits: MaxNumBits, Patterns: 1 << 21, Density: 0.1}},
	}
	for _, tc := range cases {
		if err := tc.spec.Validate(); err == nil {
			t.Errorf("%s: spec accepted: %+v", tc.name, tc.spec)
		}
		if _, err := NewGenerator(tc.spec); err == nil {
			t.Errorf("%s: NewGenerator accepted invalid spec", tc.name)
		}
	}
	// The largest in-bounds giant shape must still validate.
	ok := GenSpec{NumBits: 1 << 24, Patterns: 1 << 24, Density: 0.02}
	if err := ok.Validate(); err != nil {
		t.Errorf("in-bounds giant spec rejected: %v", err)
	}
}
