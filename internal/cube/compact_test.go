package cube

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestCompactMergesCompatible(t *testing.T) {
	s := NewSet(8)
	a := NewCube(8)
	a.Set(0, true)
	a.Set(3, false)
	b := NewCube(8)
	b.Set(3, false)
	b.Set(5, true)
	c := NewCube(8)
	c.Set(0, false) // conflicts with a
	for _, x := range []*Cube{a, b, c} {
		if err := s.Add(x); err != nil {
			t.Fatal(err)
		}
	}
	out := Compact(s)
	if out.Len() != 2 {
		t.Fatalf("compacted to %d cubes, want 2", out.Len())
	}
	if !CoversAll(out, s) {
		t.Error("compaction lost coverage")
	}
}

func TestCompactSparseSetShrinks(t *testing.T) {
	// Very sparse random cubes are mostly mutually compatible, so
	// compaction must shrink the set substantially.
	s, err := Generate(GenSpec{NumBits: 5000, Patterns: 80, Density: 0.004, Clustering: 0.3, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	out := Compact(s)
	if out.Len() >= s.Len()/2 {
		t.Errorf("sparse set compacted %d -> %d; expected at least 2x", s.Len(), out.Len())
	}
	if !CoversAll(out, s) {
		t.Error("compaction lost coverage")
	}
}

func TestCompactDenseSetStable(t *testing.T) {
	// Fully-specified random cubes are almost never compatible; the set
	// should barely shrink and never grow.
	s, err := Generate(GenSpec{NumBits: 200, Patterns: 30, Density: 1, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	out := Compact(s)
	if out.Len() > s.Len() {
		t.Error("compaction grew the set")
	}
	if !CoversAll(out, s) {
		t.Error("coverage lost")
	}
}

func TestCompactDoesNotMutateInput(t *testing.T) {
	s, _ := Generate(GenSpec{NumBits: 100, Patterns: 10, Density: 0.05, Seed: 10})
	before := make([]int, s.Len())
	for i, c := range s.Cubes {
		before[i] = c.CareCount()
	}
	_ = Compact(s)
	for i, c := range s.Cubes {
		if c.CareCount() != before[i] {
			t.Fatalf("cube %d mutated by Compact", i)
		}
	}
}

// Property: compaction preserves coverage and every merged cube's care
// count is at most the sum of its constituents (sanity).
func TestQuickCompactSound(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s, err := Generate(GenSpec{
			NumBits:  rng.Intn(300) + 20,
			Patterns: rng.Intn(30) + 2,
			Density:  0.01 + rng.Float64()*0.3,
			Seed:     seed,
		})
		if err != nil {
			return false
		}
		out := Compact(s)
		return out.Len() <= s.Len() && out.Len() >= 1 && CoversAll(out, s)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestCoversAllWidthMismatch(t *testing.T) {
	if CoversAll(NewSet(4), NewSet(5)) {
		t.Error("width mismatch reported as covering")
	}
}
