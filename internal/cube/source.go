package cube

import (
	"math"
	"math/rand"
)

// Source is a pull-based, replayable cube stream: the test set of one
// core delivered one cube at a time, in pattern order. It is the
// memory-scaling contract of the streaming evaluator — a consumer that
// prices cubes window-by-window holds O(window) cubes instead of the
// whole set. Implementations are deterministic: every pass after a
// Reset yields the identical cube sequence.
//
// A Source is not safe for concurrent use; concurrent consumers each
// take their own (see Core.TestSource).
type Source interface {
	// NumBits returns the stimulus width shared by every cube.
	NumBits() int
	// Len returns the total number of cubes the stream yields per pass.
	Len() int
	// Next returns the next cube and true, or nil and false once the
	// pass is exhausted. The returned cube is owned by the caller until
	// the next Next call at the earliest; it must not be retained as
	// mutable storage across Reset.
	Next() (*Cube, bool)
	// Reset rewinds the stream to the first cube.
	Reset()
}

// SetSource adapts a materialized *Set to the Source interface. Cubes
// are handed out by reference; callers must treat them as read-only.
type SetSource struct {
	set *Set
	i   int
}

// NewSetSource returns a Source iterating over the set in order.
func NewSetSource(s *Set) *SetSource { return &SetSource{set: s} }

func (ss *SetSource) NumBits() int { return ss.set.NumBits }
func (ss *SetSource) Len() int     { return len(ss.set.Cubes) }
func (ss *SetSource) Reset()       { ss.i = 0 }

func (ss *SetSource) Next() (*Cube, bool) {
	if ss.i >= len(ss.set.Cubes) {
		return nil, false
	}
	c := ss.set.Cubes[ss.i]
	ss.i++
	return c, true
}

// Generator is the streaming form of Generate: the deterministic
// synthetic producer behind GenSpec, yielding one cube per Next without
// ever materializing the set. A full pass consumes the spec's random
// stream exactly as Generate does, so for any spec
//
//	Generate(g) == collect(NewGenerator(g))
//
// cube for cube (asserted by TestGeneratorMatchesGenerate), and Reset
// replays the identical sequence. This is what lets a million-cube test
// set flow through the evaluator at O(window) residency.
type Generator struct {
	spec       GenSpec
	decay      float64
	clustering float64
	oneBias    float64
	chainStart []int

	rng *rand.Rand
	i   int
}

// NewGenerator validates the spec and positions the stream before the
// first cube.
func NewGenerator(g GenSpec) (*Generator, error) {
	if err := g.Validate(); err != nil {
		return nil, err
	}
	oneBias := g.OneBias
	if oneBias <= 0 || oneBias >= 1 {
		oneBias = 0.4 // ATPG cubes skew slightly toward 0 justification
	}
	gen := &Generator{
		spec:       g,
		decay:      clamp01(g.DensityDecay),
		clustering: clamp01(g.Clustering),
		oneBias:    oneBias,
	}
	if len(g.Geometry) > 0 {
		gen.chainStart = make([]int, len(g.Geometry))
		off := g.IOCells
		for i, l := range g.Geometry {
			gen.chainStart[i] = off
			off += l
		}
	}
	gen.Reset()
	return gen, nil
}

func (gen *Generator) NumBits() int { return gen.spec.NumBits }
func (gen *Generator) Len() int     { return gen.spec.Patterns }

// Reset rewinds to the first cube by reseeding the random stream.
func (gen *Generator) Reset() {
	gen.rng = rand.New(rand.NewSource(gen.spec.Seed))
	gen.i = 0
}

// Next produces the next cube of the deterministic sequence.
func (gen *Generator) Next() (*Cube, bool) {
	if gen.i >= gen.spec.Patterns {
		return nil, false
	}
	g := gen.spec
	// Per-pattern density profile: d(i) = base * (1 + decay*(1 - 2*i/p))
	// so the mean over the set equals g.Density; with decay=1 the first
	// pattern is ~2x the mean and the tail ~0.5x.
	frac := 0.0
	if g.Patterns > 1 {
		frac = float64(gen.i) / float64(g.Patterns-1)
	}
	d := g.Density * (1 + gen.decay*(1-2*frac))
	if d <= 0 {
		d = g.Density * 0.05
	}
	d = min(d, 1)
	nCare := min(max(int(math.Round(d*float64(g.NumBits))), 1), g.NumBits)
	var c *Cube
	if gen.chainStart != nil {
		c = genScanCube(gen.rng, g, gen.chainStart, nCare, gen.clustering, gen.oneBias)
	} else {
		c = genFlatCube(gen.rng, g.NumBits, nCare, gen.clustering, gen.oneBias)
	}
	gen.i++
	return c, true
}
