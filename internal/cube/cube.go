// Package cube models test cubes: partially-specified test stimuli for a
// core. A cube assigns 0, 1 or X (don't-care) to every stimulus bit of a
// core; real ATPG cubes for large industrial cores are extremely sparse
// (1–5% care-bit density), so cubes are stored as sorted sparse lists of
// specified bits. The package also provides a deterministic synthetic
// cube generator that mimics the clustered care-bit structure of ATPG
// output, used to stand in for the proprietary industrial test sets of
// Wang & Chakrabarty (ITC'05) per DESIGN.md.
package cube

import (
	"fmt"
	"sort"

	"soctap/internal/bitvec"
)

// CareBit is one specified stimulus bit of a cube: the flattened cell
// position and its required value.
type CareBit struct {
	Pos   int  // flattened stimulus-cell index, 0-based
	Value bool // required logic value
}

// Cube is a partially-specified test pattern over NumBits stimulus cells.
// Bits not listed in Care are don't-care. Care is sorted by Pos with no
// duplicates; use Normalize after manual construction.
type Cube struct {
	NumBits int
	Care    []CareBit
}

// NewCube returns an empty (all-X) cube over n stimulus bits.
func NewCube(n int) *Cube {
	if n < 0 {
		panic(fmt.Sprintf("cube: negative width %d", n))
	}
	return &Cube{NumBits: n}
}

// FromTrits converts a trit vector into a sparse cube.
func FromTrits(tv *bitvec.TritVector) *Cube {
	c := NewCube(tv.Len())
	for i := 0; i < tv.Len(); i++ {
		switch tv.Get(i) {
		case bitvec.Zero:
			c.Care = append(c.Care, CareBit{Pos: i, Value: false})
		case bitvec.One:
			c.Care = append(c.Care, CareBit{Pos: i, Value: true})
		}
	}
	return c
}

// ToTrits expands the sparse cube into a dense trit vector.
func (c *Cube) ToTrits() *bitvec.TritVector {
	tv := bitvec.NewTrit(c.NumBits)
	for _, cb := range c.Care {
		if cb.Value {
			tv.Set(cb.Pos, bitvec.One)
		} else {
			tv.Set(cb.Pos, bitvec.Zero)
		}
	}
	return tv
}

// Set specifies bit pos to value v, replacing any earlier assignment.
func (c *Cube) Set(pos int, v bool) {
	if pos < 0 || pos >= c.NumBits {
		panic(fmt.Sprintf("cube: position %d out of range [0,%d)", pos, c.NumBits))
	}
	i := sort.Search(len(c.Care), func(i int) bool { return c.Care[i].Pos >= pos })
	if i < len(c.Care) && c.Care[i].Pos == pos {
		c.Care[i].Value = v
		return
	}
	c.Care = append(c.Care, CareBit{})
	copy(c.Care[i+1:], c.Care[i:])
	c.Care[i] = CareBit{Pos: pos, Value: v}
}

// Get returns the trit value of bit pos.
func (c *Cube) Get(pos int) bitvec.Trit {
	if pos < 0 || pos >= c.NumBits {
		panic(fmt.Sprintf("cube: position %d out of range [0,%d)", pos, c.NumBits))
	}
	i := sort.Search(len(c.Care), func(i int) bool { return c.Care[i].Pos >= pos })
	if i < len(c.Care) && c.Care[i].Pos == pos {
		if c.Care[i].Value {
			return bitvec.One
		}
		return bitvec.Zero
	}
	return bitvec.DontCare
}

// CareCount returns the number of specified bits.
func (c *Cube) CareCount() int { return len(c.Care) }

// Density returns the care-bit density in [0,1].
func (c *Cube) Density() float64 {
	if c.NumBits == 0 {
		return 0
	}
	return float64(len(c.Care)) / float64(c.NumBits)
}

// Normalize sorts the care list by position and removes duplicates
// (keeping the last assignment for a duplicated position). It returns an
// error if any position is out of range.
func (c *Cube) Normalize() error {
	for _, cb := range c.Care {
		if cb.Pos < 0 || cb.Pos >= c.NumBits {
			return fmt.Errorf("cube: care bit position %d out of range [0,%d)", cb.Pos, c.NumBits)
		}
	}
	sort.SliceStable(c.Care, func(i, j int) bool { return c.Care[i].Pos < c.Care[j].Pos })
	out := c.Care[:0]
	for _, cb := range c.Care {
		if n := len(out); n > 0 && out[n-1].Pos == cb.Pos {
			out[n-1].Value = cb.Value // later assignment wins
			continue
		}
		out = append(out, cb)
	}
	c.Care = out
	return nil
}

// Clone returns a deep copy of the cube.
func (c *Cube) Clone() *Cube {
	cc := &Cube{NumBits: c.NumBits, Care: make([]CareBit, len(c.Care))}
	copy(cc.Care, c.Care)
	return cc
}

// CompatibleWith reports whether the two cubes agree on all commonly
// specified bits.
func (c *Cube) CompatibleWith(o *Cube) bool {
	if c.NumBits != o.NumBits {
		return false
	}
	i, j := 0, 0
	for i < len(c.Care) && j < len(o.Care) {
		a, b := c.Care[i], o.Care[j]
		switch {
		case a.Pos < b.Pos:
			i++
		case a.Pos > b.Pos:
			j++
		default:
			if a.Value != b.Value {
				return false
			}
			i++
			j++
		}
	}
	return true
}

// Merge returns the intersection cube (union of care bits) of two
// compatible cubes, or an error if they conflict.
func (c *Cube) Merge(o *Cube) (*Cube, error) {
	if c.NumBits != o.NumBits {
		return nil, fmt.Errorf("cube: merge width mismatch %d vs %d", c.NumBits, o.NumBits)
	}
	m := &Cube{NumBits: c.NumBits, Care: make([]CareBit, 0, len(c.Care)+len(o.Care))}
	i, j := 0, 0
	for i < len(c.Care) || j < len(o.Care) {
		switch {
		case j >= len(o.Care) || (i < len(c.Care) && c.Care[i].Pos < o.Care[j].Pos):
			m.Care = append(m.Care, c.Care[i])
			i++
		case i >= len(c.Care) || o.Care[j].Pos < c.Care[i].Pos:
			m.Care = append(m.Care, o.Care[j])
			j++
		default:
			if c.Care[i].Value != o.Care[j].Value {
				return nil, fmt.Errorf("cube: conflict at position %d", c.Care[i].Pos)
			}
			m.Care = append(m.Care, c.Care[i])
			i++
			j++
		}
	}
	return m, nil
}

// Set is an ordered collection of cubes of equal width — the test set of
// one core.
type Set struct {
	NumBits int
	Cubes   []*Cube
}

// NewSet returns an empty cube set over n stimulus bits.
func NewSet(n int) *Set { return &Set{NumBits: n} }

// Add appends a cube, validating its width.
func (s *Set) Add(c *Cube) error {
	if c.NumBits != s.NumBits {
		return fmt.Errorf("cube: set width %d, cube width %d", s.NumBits, c.NumBits)
	}
	s.Cubes = append(s.Cubes, c)
	return nil
}

// Len returns the number of cubes (test patterns).
func (s *Set) Len() int { return len(s.Cubes) }

// TotalCareBits returns the summed care-bit count over all cubes.
func (s *Set) TotalCareBits() int {
	n := 0
	for _, c := range s.Cubes {
		n += len(c.Care)
	}
	return n
}

// Density returns the average care-bit density over the whole set.
func (s *Set) Density() float64 {
	if s.NumBits == 0 || len(s.Cubes) == 0 {
		return 0
	}
	return float64(s.TotalCareBits()) / float64(s.NumBits*len(s.Cubes))
}

// RawVolume returns the uncompressed stimulus volume in bits: one bit per
// stimulus cell per pattern. This is the "initial test data volume" V_i
// reported in Table 3 of the paper.
func (s *Set) RawVolume() int64 {
	return int64(s.NumBits) * int64(len(s.Cubes))
}

// Stats summarizes a cube set.
type Stats struct {
	Patterns     int
	BitsPerCube  int
	CareBits     int
	Density      float64
	MinCare      int
	MaxCare      int
	RawVolumeBit int64
}

// ComputeStats gathers summary statistics for the set.
func (s *Set) ComputeStats() Stats {
	st := Stats{
		Patterns:     len(s.Cubes),
		BitsPerCube:  s.NumBits,
		CareBits:     s.TotalCareBits(),
		Density:      s.Density(),
		RawVolumeBit: s.RawVolume(),
	}
	for i, c := range s.Cubes {
		n := len(c.Care)
		if i == 0 || n < st.MinCare {
			st.MinCare = n
		}
		if n > st.MaxCare {
			st.MaxCare = n
		}
	}
	return st
}
