package cube

import "testing"

// TestWindowLoadMatchesSource: loading a pass window-by-window must
// flatten exactly the cubes a direct Next loop yields, pack each care
// bit as pos<<1|value, and carry the sentinel offset.
func TestWindowLoadMatchesSource(t *testing.T) {
	for _, spec := range sourceSpecs() {
		want, err := Generate(spec)
		if err != nil {
			t.Fatal(err)
		}
		src, err := NewGenerator(spec)
		if err != nil {
			t.Fatal(err)
		}
		for _, window := range []int{1, 7, spec.Patterns, spec.Patterns + 5} {
			src.Reset()
			var w Window
			seen := 0
			for {
				n := w.Load(src, window)
				if n == 0 {
					break
				}
				if got := w.Len(); got != n {
					t.Fatalf("window=%d: Len %d after loading %d", window, got, n)
				}
				if w.Off[len(w.Off)-1] != len(w.Refs) {
					t.Fatalf("window=%d: sentinel %d != %d refs", window, w.Off[len(w.Off)-1], len(w.Refs))
				}
				care := 0
				for j := 0; j < n; j++ {
					cb := want.Cubes[seen+j]
					refs := w.CubeRefs(j)
					if len(refs) != len(cb.Care) {
						t.Fatalf("window=%d cube %d: %d refs, want %d care bits", window, seen+j, len(refs), len(cb.Care))
					}
					for i, bit := range cb.Care {
						r := uint64(bit.Pos) << 1
						if bit.Value {
							r |= 1
						}
						if refs[i] != r {
							t.Fatalf("window=%d cube %d ref %d: %#x, want %#x", window, seen+j, i, refs[i], r)
						}
					}
					care += len(refs)
				}
				if w.CareBits() != care {
					t.Fatalf("window=%d: CareBits %d, want %d", window, w.CareBits(), care)
				}
				seen += n
			}
			if seen != spec.Patterns {
				t.Fatalf("window=%d: loaded %d cubes, want %d", window, seen, spec.Patterns)
			}
		}
	}
}

// TestWindowRecycling: a reloaded window reuses its buffers (no growth
// once at high water) and an empty window reports zero cubes.
func TestWindowRecycling(t *testing.T) {
	var w Window
	if w.Len() != 0 || w.CareBits() != 0 {
		t.Fatalf("fresh window not empty: len %d, care %d", w.Len(), w.CareBits())
	}
	spec := sourceSpecs()[0]
	src, err := NewGenerator(spec)
	if err != nil {
		t.Fatal(err)
	}
	w.Load(src, 16)
	refCap, offCap := cap(w.Refs), cap(w.Off)
	src.Reset()
	for w.Load(src, 16) > 0 {
	}
	if cap(w.Refs) < refCap || cap(w.Off) < offCap {
		t.Fatalf("window shrank its buffers: refs %d -> %d, off %d -> %d",
			refCap, cap(w.Refs), offCap, cap(w.Off))
	}
}
