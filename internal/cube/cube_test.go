package cube

import (
	"math/rand"
	"testing"
	"testing/quick"

	"soctap/internal/bitvec"
)

func TestSetGet(t *testing.T) {
	c := NewCube(10)
	if c.Get(3) != bitvec.DontCare {
		t.Fatal("fresh cube bit not X")
	}
	c.Set(3, true)
	c.Set(7, false)
	c.Set(0, true)
	if c.Get(3) != bitvec.One || c.Get(7) != bitvec.Zero || c.Get(0) != bitvec.One {
		t.Error("Set/Get mismatch")
	}
	if c.CareCount() != 3 {
		t.Errorf("CareCount = %d, want 3", c.CareCount())
	}
	// Overwrite keeps count stable.
	c.Set(3, false)
	if c.Get(3) != bitvec.Zero || c.CareCount() != 3 {
		t.Error("overwrite failed")
	}
	// Care list stays sorted.
	for i := 1; i < len(c.Care); i++ {
		if c.Care[i-1].Pos >= c.Care[i].Pos {
			t.Fatalf("care list not sorted: %v", c.Care)
		}
	}
}

func TestCubeBoundsPanic(t *testing.T) {
	c := NewCube(4)
	for _, f := range []func(){
		func() { c.Set(-1, true) },
		func() { c.Set(4, true) },
		func() { c.Get(9) },
		func() { NewCube(-1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestTritsRoundTrip(t *testing.T) {
	tv, _ := bitvec.TritFromString("0X1X10XX1")
	c := FromTrits(tv)
	if c.CareCount() != 5 {
		t.Fatalf("CareCount = %d, want 5", c.CareCount())
	}
	back := c.ToTrits()
	if !back.Equal(tv) {
		t.Errorf("round trip = %s, want %s", back, tv)
	}
}

func TestNormalize(t *testing.T) {
	c := &Cube{NumBits: 8, Care: []CareBit{{5, true}, {2, false}, {5, false}, {2, false}}}
	if err := c.Normalize(); err != nil {
		t.Fatal(err)
	}
	if len(c.Care) != 2 || c.Care[0].Pos != 2 || c.Care[1].Pos != 5 {
		t.Fatalf("normalized care = %v", c.Care)
	}
	if c.Care[1].Value != false {
		t.Error("later duplicate assignment must win")
	}
	bad := &Cube{NumBits: 4, Care: []CareBit{{4, true}}}
	if err := bad.Normalize(); err == nil {
		t.Error("Normalize accepted out-of-range position")
	}
}

func TestCompatibleAndMerge(t *testing.T) {
	a := NewCube(6)
	a.Set(0, true)
	a.Set(2, false)
	b := NewCube(6)
	b.Set(2, false)
	b.Set(4, true)
	if !a.CompatibleWith(b) {
		t.Fatal("compatible cubes reported incompatible")
	}
	m, err := a.Merge(b)
	if err != nil {
		t.Fatal(err)
	}
	if m.CareCount() != 3 || m.Get(0) != bitvec.One || m.Get(2) != bitvec.Zero || m.Get(4) != bitvec.One {
		t.Errorf("merge result wrong: %v", m.Care)
	}
	b.Set(0, false)
	if a.CompatibleWith(b) {
		t.Error("conflicting cubes reported compatible")
	}
	if _, err := a.Merge(b); err == nil {
		t.Error("Merge accepted conflicting cubes")
	}
	if _, err := a.Merge(NewCube(5)); err == nil {
		t.Error("Merge accepted width mismatch")
	}
	if a.CompatibleWith(NewCube(5)) {
		t.Error("width mismatch reported compatible")
	}
}

func TestSetCollection(t *testing.T) {
	s := NewSet(16)
	c := NewCube(16)
	c.Set(1, true)
	if err := s.Add(c); err != nil {
		t.Fatal(err)
	}
	if err := s.Add(NewCube(8)); err == nil {
		t.Error("Add accepted wrong-width cube")
	}
	if s.Len() != 1 || s.TotalCareBits() != 1 {
		t.Error("set accounting wrong")
	}
	if s.RawVolume() != 16 {
		t.Errorf("RawVolume = %d, want 16", s.RawVolume())
	}
}

func TestGenerateDeterministic(t *testing.T) {
	spec := GenSpec{NumBits: 2000, Patterns: 50, Density: 0.03, DensityDecay: 0.8, Clustering: 0.7, Seed: 42}
	a, err := Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	if a.Len() != b.Len() {
		t.Fatal("nondeterministic pattern count")
	}
	for i := range a.Cubes {
		if !a.Cubes[i].ToTrits().Equal(b.Cubes[i].ToTrits()) {
			t.Fatalf("pattern %d differs between identical-seed runs", i)
		}
	}
	c, _ := Generate(GenSpec{NumBits: 2000, Patterns: 50, Density: 0.03, Seed: 43})
	same := true
	for i := range a.Cubes {
		if !a.Cubes[i].ToTrits().Equal(c.Cubes[i].ToTrits()) {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical test sets")
	}
}

func TestGenerateDensity(t *testing.T) {
	for _, d := range []float64{0.01, 0.05, 0.44, 0.66} {
		s, err := Generate(GenSpec{NumBits: 5000, Patterns: 40, Density: d, DensityDecay: 0.5, Clustering: 0.6, Seed: 7})
		if err != nil {
			t.Fatal(err)
		}
		got := s.Density()
		if got < d*0.85 || got > d*1.15 {
			t.Errorf("density %g: generated %g, want within 15%%", d, got)
		}
	}
}

func TestGenerateDensityDecay(t *testing.T) {
	s, err := Generate(GenSpec{NumBits: 4000, Patterns: 60, Density: 0.05, DensityDecay: 1, Clustering: 0.5, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	first := s.Cubes[0].CareCount()
	last := s.Cubes[s.Len()-1].CareCount()
	if first <= last {
		t.Errorf("decay profile broken: first %d care bits, last %d", first, last)
	}
}

func TestGenerateClusteringEffect(t *testing.T) {
	// Clustered sets must have noticeably lower mean pairwise distance
	// between consecutive care bits than scattered sets.
	spread := func(clustering float64) float64 {
		s, err := Generate(GenSpec{NumBits: 20000, Patterns: 20, Density: 0.02, Clustering: clustering, Seed: 9})
		if err != nil {
			t.Fatal(err)
		}
		total, n := 0.0, 0
		for _, c := range s.Cubes {
			for i := 1; i < len(c.Care); i++ {
				total += float64(c.Care[i].Pos - c.Care[i-1].Pos)
				n++
			}
		}
		return total / float64(n)
	}
	tight := spread(0.95)
	loose := spread(0.0)
	if tight >= loose {
		t.Errorf("clustering has no effect: tight gap %.1f >= loose gap %.1f", tight, loose)
	}
}

func TestGenerateValidation(t *testing.T) {
	bad := []GenSpec{
		{NumBits: 0, Patterns: 1, Density: 0.1},
		{NumBits: 10, Patterns: 0, Density: 0.1},
		{NumBits: 10, Patterns: 1, Density: 0},
		{NumBits: 10, Patterns: 1, Density: 1.5},
	}
	for i, g := range bad {
		if _, err := Generate(g); err == nil {
			t.Errorf("spec %d accepted: %+v", i, g)
		}
	}
}

func TestGenerateSaturated(t *testing.T) {
	// Density 1 must fully specify every cube even with clustering.
	s, err := Generate(GenSpec{NumBits: 64, Patterns: 5, Density: 1, Clustering: 0.9, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	for i, c := range s.Cubes {
		if c.CareCount() != 64 {
			t.Errorf("cube %d: care %d, want 64", i, c.CareCount())
		}
	}
}

func TestComputeStats(t *testing.T) {
	s, _ := Generate(GenSpec{NumBits: 1000, Patterns: 10, Density: 0.1, Seed: 5})
	st := s.ComputeStats()
	if st.Patterns != 10 || st.BitsPerCube != 1000 {
		t.Error("stats shape wrong")
	}
	if st.MinCare <= 0 || st.MaxCare < st.MinCare || st.CareBits <= 0 {
		t.Errorf("stats values wrong: %+v", st)
	}
	if st.RawVolumeBit != 10000 {
		t.Errorf("RawVolumeBit = %d, want 10000", st.RawVolumeBit)
	}
}

// Property: Merge of compatible cubes covers both inputs and is symmetric.
func TestQuickMerge(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(200) + 10
		base := NewCube(n)
		for i := 0; i < n/4; i++ {
			base.Set(rng.Intn(n), rng.Intn(2) == 0)
		}
		// Derive two compatible sub-cubes of base.
		sub := func() *Cube {
			c := NewCube(n)
			for _, cb := range base.Care {
				if rng.Intn(2) == 0 {
					c.Set(cb.Pos, cb.Value)
				}
			}
			return c
		}
		a, b := sub(), sub()
		m1, err1 := a.Merge(b)
		m2, err2 := b.Merge(a)
		if err1 != nil || err2 != nil {
			return false
		}
		if !m1.ToTrits().Equal(m2.ToTrits()) {
			return false
		}
		return m1.ToTrits().Covers(a.ToTrits()) && m1.ToTrits().Covers(b.ToTrits())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Property: sparse/dense representations are interchangeable.
func TestQuickSparseDenseRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(300) + 1
		tv := bitvec.NewTrit(n)
		for i := 0; i < n; i++ {
			tv.Set(i, bitvec.Trit(rng.Intn(3)))
		}
		c := FromTrits(tv)
		if c.CareCount() != tv.CareCount() {
			return false
		}
		return c.ToTrits().Equal(tv)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func BenchmarkGenerateIndustrial(b *testing.B) {
	spec := GenSpec{NumBits: 50000, Patterns: 200, Density: 0.02, DensityDecay: 0.8, Clustering: 0.7, Seed: 11}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Generate(spec); err != nil {
			b.Fatal(err)
		}
	}
}
