package sched

import (
	"fmt"
	"sort"
)

// Optimal computes a provably optimal schedule for small instances by
// branch-and-bound over core-to-bus assignments (cores on a bus run
// back-to-back, so only the assignment matters for the makespan). It is
// exponential in the number of cores; maxNodes bounds the search (0
// means 4 million nodes) and an error is returned when the bound is
// exhausted before the search completes.
//
// Optimal serves as the oracle for heuristic-quality tests and as the
// exact-scheduling ablation for small SOCs.
func Optimal(nCores int, widths []int, dur Duration, maxNodes int64) (*Schedule, error) {
	if maxNodes <= 0 {
		maxNodes = 4 << 20
	}
	k := len(widths)
	if k == 0 {
		return nil, fmt.Errorf("sched: no buses")
	}
	// Per-core durations per bus; infeasible combinations marked < 0.
	d := make([][]int64, nCores)
	for c := 0; c < nCores; c++ {
		d[c] = make([]int64, k)
		feasible := false
		for b, w := range widths {
			t := dur(c, w)
			if t <= 0 {
				d[c][b] = -1
				continue
			}
			d[c][b] = t
			feasible = true
		}
		if !feasible {
			return nil, fmt.Errorf("sched: core %d infeasible on every bus", c)
		}
	}

	// Order cores by decreasing minimal duration: big rocks first makes
	// the bound effective.
	order := make([]int, nCores)
	for i := range order {
		order[i] = i
	}
	minDur := func(c int) int64 {
		best := int64(-1)
		for _, t := range d[c] {
			if t > 0 && (best < 0 || t < best) {
				best = t
			}
		}
		return best
	}
	sort.Slice(order, func(i, j int) bool {
		a, b := minDur(order[i]), minDur(order[j])
		if a != b {
			return a > b
		}
		return order[i] < order[j]
	})

	// Remaining minimal work from position i onward (for the bound).
	suffix := make([]int64, nCores+1)
	for i := nCores - 1; i >= 0; i-- {
		suffix[i] = suffix[i+1] + minDur(order[i])
	}

	// Greedy warm start for the incumbent.
	incumbent, err := Greedy(nCores, widths, dur)
	if err != nil {
		return nil, err
	}
	best := incumbent.Makespan
	bestAssign := make([]int, nCores)
	for _, it := range incumbent.Items {
		bestAssign[it.Core] = it.Bus
	}

	load := make([]int64, k)
	assign := make([]int, nCores)
	var nodes int64
	var exhausted bool

	var rec func(pos int)
	rec = func(pos int) {
		if exhausted {
			return
		}
		nodes++
		if nodes > maxNodes {
			exhausted = true
			return
		}
		if pos == nCores {
			var mk int64
			for _, l := range load {
				mk = max(mk, l)
			}
			if mk < best {
				best = mk
				copy(bestAssign, assign)
			}
			return
		}
		// Admissible lower bound: the final makespan is at least the
		// current maximum load, and at least the perfectly balanced
		// completion of all work (each remaining core contributes at
		// least its cheapest duration on any bus).
		var mk, total int64
		for _, l := range load {
			mk = max(mk, l)
			total += l
		}
		lb := max(mk, (total+suffix[pos]+int64(k)-1)/int64(k))
		if lb >= best {
			return
		}
		c := order[pos]
		// Symmetry breaking: among equal-width empty buses, only try the
		// first.
		triedEmptyWidth := map[int]bool{}
		for b := 0; b < k; b++ {
			if d[c][b] < 0 {
				continue
			}
			if load[b] == 0 {
				if triedEmptyWidth[widths[b]] {
					continue
				}
				triedEmptyWidth[widths[b]] = true
			}
			if load[b]+d[c][b] >= best {
				continue
			}
			assign[c] = b
			load[b] += d[c][b]
			rec(pos + 1)
			load[b] -= d[c][b]
		}
	}
	rec(0)
	if exhausted {
		return nil, fmt.Errorf("sched: branch-and-bound exceeded %d nodes", maxNodes)
	}

	// Materialize the best assignment as a schedule.
	s := &Schedule{
		Widths:   append([]int(nil), widths...),
		BusTimes: make([]int64, k),
	}
	for _, c := range order {
		b := bestAssign[c]
		s.Items = append(s.Items, Item{Core: c, Bus: b, Start: s.BusTimes[b], Duration: d[c][b]})
		s.BusTimes[b] += d[c][b]
		if s.BusTimes[b] > s.Makespan {
			s.Makespan = s.BusTimes[b]
		}
	}
	s.sortItems()
	return s, nil
}
