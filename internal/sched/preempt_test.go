package sched

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestPreemptiveMakespanBound(t *testing.T) {
	base := []int64{10, 10, 10} // durations at width 1
	s, err := Preemptive(3, 1, 2, tableDur(base))
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	// total 30 over 2 buses = 15; longest 10 -> makespan 15.
	if s.Makespan != 15 {
		t.Errorf("makespan = %d, want 15", s.Makespan)
	}
	// Non-preemptive optimum is 20; preemption must win here.
	o, err := Optimal(3, []int{1, 1}, tableDur(base), 0)
	if err != nil {
		t.Fatal(err)
	}
	if s.Makespan >= o.Makespan {
		t.Errorf("preemption (%d) no better than non-preemptive optimum (%d)", s.Makespan, o.Makespan)
	}
}

func TestPreemptiveLongestCoreFloor(t *testing.T) {
	base := []int64{100, 5, 5}
	s, err := Preemptive(3, 1, 4, tableDur(base))
	if err != nil {
		t.Fatal(err)
	}
	if s.Makespan != 100 {
		t.Errorf("makespan = %d, want the longest core's 100", s.Makespan)
	}
}

func TestPreemptiveValidation(t *testing.T) {
	if _, err := Preemptive(1, 1, 0, tableDur([]int64{5})); err == nil {
		t.Error("k=0 accepted")
	}
	if _, err := Preemptive(1, 1, 2, func(c, w int) int64 { return 0 }); err == nil {
		t.Error("infeasible core accepted")
	}
}

// Property: the preemptive schedule meets McNaughton's optimum exactly,
// validates, schedules every core's full duration, and splits each core
// across at most two buses with non-overlapping pieces.
func TestQuickPreemptive(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(12) + 1
		k := rng.Intn(5) + 1
		base := make([]int64, n)
		var total, longest int64
		for i := range base {
			base[i] = int64(rng.Intn(500) + 1)
			total += base[i]
			if base[i] > longest {
				longest = base[i]
			}
		}
		want := (total + int64(k) - 1) / int64(k)
		if longest > want {
			want = longest
		}
		s, err := Preemptive(n, 1, k, tableDur(base))
		if err != nil || s.Validate() != nil || s.Makespan != want {
			return false
		}
		// Full durations scheduled; at most 2 pieces per core; pieces of
		// one core never overlap in time.
		perCore := map[int][]Item{}
		for _, it := range s.Items {
			perCore[it.Core] = append(perCore[it.Core], it)
		}
		if len(perCore) != n {
			return false
		}
		for c, items := range perCore {
			var sum int64
			for _, it := range items {
				sum += it.Duration
			}
			if sum != base[c] || len(items) > 2 {
				return false
			}
			if len(items) == 2 {
				a, b := items[0], items[1]
				if a.Start < b.End() && b.Start < a.End() {
					return false // simultaneous execution of one core
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}
