// Package sched implements SOC test scheduling over a fixed TAM
// partition: cores assigned to the same TAM bus are tested sequentially,
// buses run in parallel, and the SOC test time is the makespan. The
// primary algorithm is the paper's Step 4 heuristic — cores sorted by
// decreasing test time, each placed on the bus where it increases the
// finish time least. A power-constrained variant (a classic companion
// problem) is provided as an extension.
package sched

import (
	"fmt"
	"slices"
	"sort"
	"time"

	"soctap/internal/telemetry"
)

// Duration reports the test time of core c when tested on a bus of the
// given width. A non-positive result marks the combination infeasible.
type Duration func(core, width int) int64

// Item is one scheduled core test.
type Item struct {
	Core     int
	Bus      int
	Start    int64
	Duration int64
}

// End returns the finish time of the item.
func (it Item) End() int64 { return it.Start + it.Duration }

// Schedule is a complete SOC test schedule.
type Schedule struct {
	Widths   []int // bus widths
	Items    []Item
	BusTimes []int64 // finish time per bus
	Makespan int64
}

// itemsByStart sorts items by start time then bus for stable reporting.
func (s *Schedule) sortItems() {
	sort.Slice(s.Items, func(i, j int) bool {
		if s.Items[i].Start != s.Items[j].Start {
			return s.Items[i].Start < s.Items[j].Start
		}
		if s.Items[i].Bus != s.Items[j].Bus {
			return s.Items[i].Bus < s.Items[j].Bus
		}
		return s.Items[i].Core < s.Items[j].Core
	})
}

// Validate checks schedule consistency: no overlap within a bus, bus
// times match item extents, makespan is the max bus time.
func (s *Schedule) Validate() error {
	busEnd := make([]int64, len(s.Widths))
	perBus := make([][]Item, len(s.Widths))
	for _, it := range s.Items {
		if it.Bus < 0 || it.Bus >= len(s.Widths) {
			return fmt.Errorf("sched: item for core %d on invalid bus %d", it.Core, it.Bus)
		}
		if it.Duration <= 0 {
			return fmt.Errorf("sched: item for core %d has duration %d", it.Core, it.Duration)
		}
		perBus[it.Bus] = append(perBus[it.Bus], it)
	}
	for b, items := range perBus {
		sort.Slice(items, func(i, j int) bool { return items[i].Start < items[j].Start })
		var end int64
		for _, it := range items {
			if it.Start < end {
				return fmt.Errorf("sched: overlap on bus %d at time %d (core %d)", b, it.Start, it.Core)
			}
			end = it.End()
		}
		busEnd[b] = end
	}
	var mk int64
	for b := range busEnd {
		if busEnd[b] != s.BusTimes[b] {
			return fmt.Errorf("sched: bus %d time %d, items end at %d", b, s.BusTimes[b], busEnd[b])
		}
		if busEnd[b] > mk {
			mk = busEnd[b]
		}
	}
	if mk != s.Makespan {
		return fmt.Errorf("sched: makespan %d, want %d", s.Makespan, mk)
	}
	return nil
}

// Greedy builds a schedule for nCores cores over the given bus widths
// using the paper's heuristic: sort cores by decreasing test time (taken
// at the widest bus), then place each core on the bus that minimizes the
// resulting finish time, breaking ties toward the wider bus. Returns an
// error if some core is infeasible on every bus.
func Greedy(nCores int, widths []int, dur Duration) (*Schedule, error) {
	return new(Planner).Greedy(nCores, widths, dur)
}

// InOrder builds a schedule placing cores in index order on the bus that
// minimizes the resulting finish time. It is the ablation baseline for
// the longest-first sort.
func InOrder(nCores int, widths []int, dur Duration) (*Schedule, error) {
	return new(Planner).InOrder(nCores, widths, dur)
}

// Planner runs the greedy placement with reusable scratch: the per-bus
// free-time array and the ordering buffers are kept across calls, so a
// search that schedules thousands of candidate partitions does not
// allocate per candidate. The zero value is ready to use. A Planner is
// not safe for concurrent use; parallel searches give each worker its
// own.
type Planner struct {
	busTimes []int64 // per-bus finish-time scratch
	cts      []coreTime
	order    []int

	// Placements, when non-nil, counts core placements made by the
	// makespan paths — one per core of every schedule evaluated. The
	// nil default is free, keeping the warm makespan path at zero
	// allocations and unmeasurable overhead.
	Placements *telemetry.Counter

	// ScheduleSeconds, when non-nil, distributes the wall-clock cost of
	// each makespan placement — one observation per evaluated schedule,
	// so its count tracks sched.placements / len(order). Nil (the
	// default) reads no clock, preserving the zero-overhead contract.
	ScheduleSeconds *telemetry.Histogram

	// Check, when non-nil, is consulted once per schedule evaluation
	// (the architecture search's candidate granularity); a non-nil
	// return aborts the evaluation with that error. The search sets it
	// to ctx.Err for cancellable contexts only, so the nil default
	// keeps the warm makespan path overhead-free.
	Check func() error
}

type coreTime struct {
	core int
	time int64
}

// Greedy is the paper's longest-first heuristic (see the package-level
// Greedy), reusing the planner's scratch for ordering.
func (p *Planner) Greedy(nCores int, widths []int, dur Duration) (*Schedule, error) {
	if err := p.check(); err != nil {
		return nil, err
	}
	order := p.longestFirstOrder(nCores, widths, dur)
	return placeInOrder(order, widths, dur)
}

// InOrder places cores in index order (see the package-level InOrder).
func (p *Planner) InOrder(nCores int, widths []int, dur Duration) (*Schedule, error) {
	if err := p.check(); err != nil {
		return nil, err
	}
	return placeInOrder(p.indexOrder(nCores), widths, dur)
}

// check consults the cancellation hook, if armed.
func (p *Planner) check() error {
	if p.Check == nil {
		return nil
	}
	return p.Check()
}

// GreedyMakespan returns the makespan Greedy would produce without
// materializing the schedule — the architecture search's inner loop,
// which only compares makespans. It allocates nothing once the planner's
// scratch is warm.
func (p *Planner) GreedyMakespan(nCores int, widths []int, dur Duration) (int64, error) {
	order := p.longestFirstOrder(nCores, widths, dur)
	return p.placeMakespan(order, widths, dur)
}

// InOrderMakespan is GreedyMakespan for declaration-order placement.
func (p *Planner) InOrderMakespan(nCores int, widths []int, dur Duration) (int64, error) {
	return p.placeMakespan(p.indexOrder(nCores), widths, dur)
}

func (p *Planner) indexOrder(nCores int) []int {
	if cap(p.order) < nCores {
		p.order = make([]int, nCores)
	}
	p.order = p.order[:nCores]
	for i := range p.order {
		p.order[i] = i
	}
	return p.order
}

func (p *Planner) longestFirstOrder(nCores int, widths []int, dur Duration) []int {
	widest := 0
	for _, w := range widths {
		widest = max(widest, w)
	}
	if cap(p.cts) < nCores {
		p.cts = make([]coreTime, nCores)
	}
	cts := p.cts[:nCores]
	for c := 0; c < nCores; c++ {
		d := dur(c, widest)
		if d <= 0 {
			// Fall back to the best feasible width for ordering purposes.
			for _, w := range widths {
				if t := dur(c, w); t > 0 && (d <= 0 || t < d) {
					d = t
				}
			}
		}
		cts[c] = coreTime{core: c, time: d}
	}
	// The comparator is a total order (core index breaks ties), so the
	// result does not depend on sort stability.
	slices.SortFunc(cts, func(a, b coreTime) int {
		if a.time != b.time {
			if a.time > b.time {
				return -1
			}
			return 1
		}
		return a.core - b.core
	})
	if cap(p.order) < nCores {
		p.order = make([]int, nCores)
	}
	p.order = p.order[:nCores]
	for i, x := range cts {
		p.order[i] = x.core
	}
	return p.order
}

// placeMakespan runs the placement loop of placeInOrder tracking only
// per-bus finish times, in the planner's scratch.
func (p *Planner) placeMakespan(order []int, widths []int, dur Duration) (int64, error) {
	if err := p.check(); err != nil {
		return 0, err
	}
	var t0 time.Time
	if p.ScheduleSeconds != nil {
		t0 = time.Now()
	}
	if cap(p.busTimes) < len(widths) {
		p.busTimes = make([]int64, len(widths))
	}
	bt := p.busTimes[:len(widths)]
	for i := range bt {
		bt[i] = 0
	}
	var makespan int64
	for _, c := range order {
		bestBus := -1
		var bestFinish int64
		for b, w := range widths {
			d := dur(c, w)
			if d <= 0 {
				continue
			}
			finish := bt[b] + d
			if bestBus < 0 || finish < bestFinish ||
				(finish == bestFinish && widths[b] > widths[bestBus]) {
				bestBus, bestFinish = b, finish
			}
		}
		if bestBus < 0 {
			return 0, fmt.Errorf("sched: core %d infeasible on every bus", c)
		}
		bt[bestBus] = bestFinish
		makespan = max(makespan, bestFinish)
	}
	p.Placements.Add(int64(len(order)))
	if p.ScheduleSeconds != nil {
		p.ScheduleSeconds.Observe(time.Since(t0))
	}
	return makespan, nil
}

func placeInOrder(order []int, widths []int, dur Duration) (*Schedule, error) {
	s := &Schedule{
		Widths:   append([]int(nil), widths...),
		BusTimes: make([]int64, len(widths)),
	}
	for _, c := range order {
		bestBus := -1
		var bestFinish, bestDur int64
		for b, w := range widths {
			d := dur(c, w)
			if d <= 0 {
				continue
			}
			finish := s.BusTimes[b] + d
			if bestBus < 0 || finish < bestFinish ||
				(finish == bestFinish && widths[b] > widths[bestBus]) {
				bestBus, bestFinish, bestDur = b, finish, d
			}
		}
		if bestBus < 0 {
			return nil, fmt.Errorf("sched: core %d infeasible on every bus", c)
		}
		s.Items = append(s.Items, Item{Core: c, Bus: bestBus, Start: s.BusTimes[bestBus], Duration: bestDur})
		s.BusTimes[bestBus] = bestFinish
		if bestFinish > s.Makespan {
			s.Makespan = bestFinish
		}
	}
	s.sortItems()
	return s, nil
}

// GreedyPower is the power-constrained extension: core c dissipates
// power[c] while under test and the instantaneous sum over all buses
// must stay within maxPower. Cores are placed longest-first on the bus
// and at the earliest start time that respects both the bus's sequential
// order and the power ceiling (idle gaps are inserted when needed).
func GreedyPower(nCores int, widths []int, dur Duration, power []int, maxPower int) (*Schedule, error) {
	if len(power) != nCores {
		return nil, fmt.Errorf("sched: %d power entries for %d cores", len(power), nCores)
	}
	for c, p := range power {
		if p > maxPower {
			return nil, fmt.Errorf("sched: core %d power %d exceeds ceiling %d", c, p, maxPower)
		}
	}
	order := new(Planner).longestFirstOrder(nCores, widths, dur)
	s := &Schedule{
		Widths:   append([]int(nil), widths...),
		BusTimes: make([]int64, len(widths)),
	}
	for _, c := range order {
		bestBus := -1
		var bestStart, bestDur, bestFinish int64
		for b, w := range widths {
			d := dur(c, w)
			if d <= 0 {
				continue
			}
			start := earliestPowerFeasible(s, power, maxPower, power[c], s.BusTimes[b], d)
			finish := start + d
			if bestBus < 0 || finish < bestFinish ||
				(finish == bestFinish && widths[b] > widths[bestBus]) {
				bestBus, bestStart, bestDur, bestFinish = b, start, d, finish
			}
		}
		if bestBus < 0 {
			return nil, fmt.Errorf("sched: core %d infeasible on every bus", c)
		}
		s.Items = append(s.Items, Item{Core: c, Bus: bestBus, Start: bestStart, Duration: bestDur})
		s.BusTimes[bestBus] = bestFinish
		if bestFinish > s.Makespan {
			s.Makespan = bestFinish
		}
	}
	s.sortItems()
	return s, nil
}

// earliestPowerFeasible finds the earliest start >= minStart such that
// adding a task of the given power and duration keeps the instantaneous
// power within maxPower. Candidate starts are minStart and the finish
// times of already-placed items (power only drops at item finishes).
func earliestPowerFeasible(s *Schedule, power []int, maxPower, taskPower int, minStart, dur int64) int64 {
	candidates := []int64{minStart}
	for _, it := range s.Items {
		if end := it.End(); end > minStart {
			candidates = append(candidates, end)
		}
	}
	sort.Slice(candidates, func(i, j int) bool { return candidates[i] < candidates[j] })
	for _, t := range candidates {
		if powerFeasible(s, power, maxPower, taskPower, t, dur) {
			return t
		}
	}
	// Unreachable while per-core power <= maxPower: the latest candidate
	// (after every existing item) is always feasible.
	last := candidates[len(candidates)-1]
	return last
}

// powerFeasible reports whether inserting a task of the given power over
// [start, start+dur) keeps total power within maxPower at every instant.
func powerFeasible(s *Schedule, power []int, maxPower, taskPower int, start, dur int64) bool {
	end := start + dur
	// The power profile is piecewise constant; it can only peak at the
	// start of the window or at an item start inside the window.
	points := []int64{start}
	for _, it := range s.Items {
		if it.Start > start && it.Start < end {
			points = append(points, it.Start)
		}
	}
	for _, t := range points {
		sum := taskPower
		for _, it := range s.Items {
			if it.Start <= t && t < it.End() {
				sum += power[it.Core]
			}
		}
		if sum > maxPower {
			return false
		}
	}
	return true
}
