package sched

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// exhaustiveOptimum enumerates all assignments — the reference for
// Optimal's correctness on tiny instances.
func exhaustiveOptimum(n int, widths []int, dur Duration) int64 {
	k := len(widths)
	best := int64(-1)
	assign := make([]int, n)
	var rec func(i int)
	rec = func(i int) {
		if i == n {
			load := make([]int64, k)
			for c, b := range assign {
				d := dur(c, widths[b])
				if d <= 0 {
					return
				}
				load[b] += d
			}
			var mk int64
			for _, l := range load {
				if l > mk {
					mk = l
				}
			}
			if best < 0 || mk < best {
				best = mk
			}
			return
		}
		for b := 0; b < k; b++ {
			assign[i] = b
			rec(i + 1)
		}
	}
	rec(0)
	return best
}

func TestOptimalMatchesExhaustive(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 60; trial++ {
		n := rng.Intn(7) + 1
		k := rng.Intn(3) + 1
		widths := make([]int, k)
		for i := range widths {
			widths[i] = rng.Intn(6) + 1
		}
		base := make([]int64, n)
		for i := range base {
			base[i] = int64(rng.Intn(400) + 1)
		}
		dur := tableDur(base)
		want := exhaustiveOptimum(n, widths, dur)
		s, err := Optimal(n, widths, dur, 0)
		if err != nil {
			t.Fatal(err)
		}
		if err := s.Validate(); err != nil {
			t.Fatal(err)
		}
		if s.Makespan != want {
			t.Fatalf("trial %d: Optimal %d, exhaustive %d (n=%d widths=%v base=%v)",
				trial, s.Makespan, want, n, widths, base)
		}
	}
}

func TestOptimalNeverWorseThanGreedy(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(9) + 1
		k := rng.Intn(4) + 1
		widths := make([]int, k)
		for i := range widths {
			widths[i] = rng.Intn(8) + 1
		}
		base := make([]int64, n)
		for i := range base {
			base[i] = int64(rng.Intn(1000) + 1)
		}
		dur := tableDur(base)
		g, err := Greedy(n, widths, dur)
		if err != nil {
			return false
		}
		o, err := Optimal(n, widths, dur, 0)
		if err != nil {
			return false
		}
		return o.Makespan <= g.Makespan && o.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

func TestOptimalPartialFeasibility(t *testing.T) {
	// Core 0 only fits the wide bus; Optimal must respect that.
	dur := func(core, width int) int64 {
		if core == 0 && width < 4 {
			return 0
		}
		return 10
	}
	s, err := Optimal(2, []int{4, 1}, dur, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, it := range s.Items {
		if it.Core == 0 && s.Widths[it.Bus] < 4 {
			t.Error("core 0 on infeasible bus")
		}
	}
	if _, err := Optimal(1, []int{2}, func(c, w int) int64 { return 0 }, 0); err == nil {
		t.Error("fully infeasible core accepted")
	}
	if _, err := Optimal(1, nil, dur, 0); err == nil {
		t.Error("no buses accepted")
	}
}

func TestOptimalNodeBudget(t *testing.T) {
	// An instance where the greedy incumbent (17) is above the root
	// lower bound (15), so the search must actually branch; with a
	// 1-node budget it must fail loudly, not silently return the
	// incumbent.
	base := []int64{7, 7, 5, 5, 5} // widths of 1: durations are the values
	g, err := Greedy(5, []int{1, 1}, tableDur(base))
	if err != nil {
		t.Fatal(err)
	}
	if g.Makespan != 17 {
		t.Fatalf("premise broken: greedy makespan %d, want 17", g.Makespan)
	}
	if _, err := Optimal(5, []int{1, 1}, tableDur(base), 1); err == nil {
		t.Error("exhausted search did not error")
	}
	// With an adequate budget the same instance solves to 15.
	s, err := Optimal(5, []int{1, 1}, tableDur(base), 0)
	if err != nil {
		t.Fatal(err)
	}
	if s.Makespan != 15 {
		t.Errorf("Optimal = %d, want 15", s.Makespan)
	}
}
