package sched

import "fmt"

// Preemptive computes an optimal *preemptive* schedule on k equal-width
// buses using McNaughton's wrap-around rule: the makespan is
// max(longest core, ceil(total/k)), and at most one preemption per bus
// boundary is introduced (a split core occupies the tail of one bus and
// the head of the next, which never overlap in time because every core
// fits within the makespan).
//
// Preemptive testing requires wrappers that can pause and resume scan
// chains; the paper's related work covers it, and this function
// quantifies the best-case payoff of that capability.
func Preemptive(nCores, width, k int, dur Duration) (*Schedule, error) {
	if k < 1 {
		return nil, fmt.Errorf("sched: %d buses", k)
	}
	durs := make([]int64, nCores)
	var total, longest int64
	for c := 0; c < nCores; c++ {
		d := dur(c, width)
		if d <= 0 {
			return nil, fmt.Errorf("sched: core %d infeasible at width %d", c, width)
		}
		durs[c] = d
		total += d
		longest = max(longest, d)
	}
	makespan := max(longest, (total+int64(k)-1)/int64(k))

	widths := make([]int, k)
	for i := range widths {
		widths[i] = width
	}
	s := &Schedule{Widths: widths, BusTimes: make([]int64, k), Makespan: makespan}

	bus := 0
	var t int64
	for c := 0; c < nCores; c++ {
		remaining := durs[c]
		for remaining > 0 {
			if bus >= k {
				return nil, fmt.Errorf("sched: internal error: wrap-around overflow")
			}
			piece := min(remaining, makespan-t)
			if piece > 0 {
				s.Items = append(s.Items, Item{Core: c, Bus: bus, Start: t, Duration: piece})
				s.BusTimes[bus] = t + piece
				t += piece
				remaining -= piece
			}
			if t == makespan {
				bus++
				t = 0
			}
		}
	}
	s.sortItems()
	return s, nil
}
