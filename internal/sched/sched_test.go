package sched

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

// tableDur builds a Duration from a per-core base cost, modeling time
// inversely proportional to width.
func tableDur(base []int64) Duration {
	return func(core, width int) int64 {
		if width <= 0 {
			return 0
		}
		return (base[core] + int64(width) - 1) / int64(width)
	}
}

func TestGreedyBasic(t *testing.T) {
	base := []int64{100, 80, 60, 40}
	s, err := Greedy(4, []int{2, 2}, tableDur(base))
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(s.Items) != 4 {
		t.Fatalf("%d items", len(s.Items))
	}
	// Durations at width 2: 50, 40, 30, 20. LPT on two machines:
	// bus A: 50+20=70, bus B: 40+30=70. Makespan 70.
	if s.Makespan != 70 {
		t.Errorf("makespan = %d, want 70", s.Makespan)
	}
}

func TestGreedyBeatsOrInOrderNeverBetter(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	for trial := 0; trial < 50; trial++ {
		n := rng.Intn(10) + 2
		base := make([]int64, n)
		for i := range base {
			base[i] = int64(rng.Intn(1000) + 10)
		}
		widths := []int{rng.Intn(8) + 1, rng.Intn(8) + 1, rng.Intn(8) + 1}
		g, err := Greedy(n, widths, tableDur(base))
		if err != nil {
			t.Fatal(err)
		}
		if err := g.Validate(); err != nil {
			t.Fatal(err)
		}
		o, err := InOrder(n, widths, tableDur(base))
		if err != nil {
			t.Fatal(err)
		}
		// LPT is not universally better but across random trials it must
		// win on average; count wins instead of asserting per-trial.
		_ = o
	}
	// Aggregate comparison on a fixed batch.
	var gTotal, oTotal int64
	for trial := 0; trial < 200; trial++ {
		n := rng.Intn(12) + 3
		base := make([]int64, n)
		for i := range base {
			base[i] = int64(rng.Intn(2000) + 10)
		}
		widths := []int{4, 3, 2}
		g, _ := Greedy(n, widths, tableDur(base))
		o, _ := InOrder(n, widths, tableDur(base))
		gTotal += g.Makespan
		oTotal += o.Makespan
	}
	if gTotal > oTotal {
		t.Errorf("longest-first (%d) worse in aggregate than in-order (%d)", gTotal, oTotal)
	}
}

func TestGreedyInfeasible(t *testing.T) {
	dur := func(core, width int) int64 { return 0 }
	if _, err := Greedy(1, []int{4}, dur); err == nil {
		t.Error("fully infeasible core accepted")
	}
}

func TestGreedyPartialFeasibility(t *testing.T) {
	// Core 0 only runs on the wide bus.
	dur := func(core, width int) int64 {
		if core == 0 && width < 4 {
			return 0
		}
		return 10
	}
	s, err := Greedy(2, []int{4, 1}, dur)
	if err != nil {
		t.Fatal(err)
	}
	for _, it := range s.Items {
		if it.Core == 0 && s.Widths[it.Bus] < 4 {
			t.Error("core 0 placed on infeasible bus")
		}
	}
}

func TestValidateCatchesOverlap(t *testing.T) {
	s := &Schedule{
		Widths:   []int{1},
		Items:    []Item{{Core: 0, Bus: 0, Start: 0, Duration: 10}, {Core: 1, Bus: 0, Start: 5, Duration: 10}},
		BusTimes: []int64{15},
		Makespan: 15,
	}
	if err := s.Validate(); err == nil {
		t.Error("overlapping schedule validated")
	}
	s2 := &Schedule{
		Widths:   []int{1},
		Items:    []Item{{Core: 0, Bus: 0, Start: 0, Duration: 10}},
		BusTimes: []int64{11},
		Makespan: 11,
	}
	if err := s2.Validate(); err == nil {
		t.Error("bus-time mismatch validated")
	}
	s3 := &Schedule{
		Widths:   []int{1},
		Items:    []Item{{Core: 0, Bus: 0, Start: 0, Duration: 10}},
		BusTimes: []int64{10},
		Makespan: 12,
	}
	if err := s3.Validate(); err == nil {
		t.Error("makespan mismatch validated")
	}
}

func TestGreedyPowerRespectsCeiling(t *testing.T) {
	base := []int64{100, 100, 100, 100}
	power := []int{5, 5, 5, 5}
	// Ceiling 10 allows at most two concurrent cores even though four
	// buses are available.
	s, err := GreedyPower(4, []int{2, 2, 2, 2}, tableDur(base), power, 10)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	checkPowerCeiling(t, s, power, 10)
	// With only two concurrent cores of 50 cycles each, makespan is 100.
	if s.Makespan != 100 {
		t.Errorf("makespan = %d, want 100", s.Makespan)
	}
	// Unconstrained: all four run in parallel.
	u, err := GreedyPower(4, []int{2, 2, 2, 2}, tableDur(base), power, 100)
	if err != nil {
		t.Fatal(err)
	}
	if u.Makespan != 50 {
		t.Errorf("unconstrained makespan = %d, want 50", u.Makespan)
	}
}

func checkPowerCeiling(t *testing.T, s *Schedule, power []int, maxPower int) {
	t.Helper()
	for _, it := range s.Items {
		sum := 0
		for _, other := range s.Items {
			if other.Start <= it.Start && it.Start < other.End() {
				sum += power[other.Core]
			}
		}
		if sum > maxPower {
			t.Errorf("power %d exceeds ceiling %d at t=%d", sum, maxPower, it.Start)
		}
	}
}

func TestGreedyPowerValidation(t *testing.T) {
	if _, err := GreedyPower(2, []int{1}, tableDur([]int64{10, 10}), []int{1}, 5); err == nil {
		t.Error("power-count mismatch accepted")
	}
	if _, err := GreedyPower(1, []int{1}, tableDur([]int64{10}), []int{9}, 5); err == nil {
		t.Error("core hotter than ceiling accepted")
	}
}

// Property: schedules from all three algorithms validate, include every
// core exactly once, and power schedules respect the ceiling.
func TestQuickSchedules(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(10) + 1
		base := make([]int64, n)
		power := make([]int, n)
		for i := range base {
			base[i] = int64(rng.Intn(500) + 1)
			power[i] = rng.Intn(8) + 1
		}
		k := rng.Intn(4) + 1
		widths := make([]int, k)
		for i := range widths {
			widths[i] = rng.Intn(8) + 1
		}
		maxPower := 8 + rng.Intn(16)

		check := func(s *Schedule, err error) bool {
			if err != nil || s.Validate() != nil {
				return false
			}
			seen := make(map[int]bool)
			for _, it := range s.Items {
				if seen[it.Core] {
					return false
				}
				seen[it.Core] = true
			}
			return len(seen) == n
		}
		g, gerr := Greedy(n, widths, tableDur(base))
		o, oerr := InOrder(n, widths, tableDur(base))
		p, perr := GreedyPower(n, widths, tableDur(base), power, maxPower)
		if !check(g, gerr) || !check(o, oerr) || !check(p, perr) {
			return false
		}
		// (Note: the power-constrained greedy may occasionally beat the
		// unconstrained greedy — both are heuristics and the constraint
		// can steer placement luckily — so no ordering is asserted
		// between their makespans.)
		for _, it := range p.Items {
			sum := 0
			for _, other := range p.Items {
				if other.Start <= it.Start && it.Start < other.End() {
					sum += power[other.Core]
				}
			}
			if sum > maxPower {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: the Planner methods are drop-in equivalents of the package
// functions — same schedules item for item, and the makespan-only paths
// agree with the full ones — across random instances and with the same
// Planner reused (scratch reuse must not leak state between calls).
func TestPlannerMatchesPackageFunctions(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var pl Planner
	for trial := 0; trial < 100; trial++ {
		n := rng.Intn(12) + 1
		base := make([]int64, n)
		for i := range base {
			base[i] = int64(rng.Intn(3000) + 1)
		}
		k := rng.Intn(5) + 1
		widths := make([]int, k)
		for i := range widths {
			widths[i] = rng.Intn(8) + 1
		}
		dur := tableDur(base)

		g, gerr := Greedy(n, widths, dur)
		pg, pgerr := pl.Greedy(n, widths, dur)
		if (gerr == nil) != (pgerr == nil) {
			t.Fatalf("trial %d: Greedy err %v vs Planner err %v", trial, gerr, pgerr)
		}
		if gerr == nil && !reflect.DeepEqual(g, pg) {
			t.Fatalf("trial %d: Planner.Greedy diverged", trial)
		}
		mk, mkerr := pl.GreedyMakespan(n, widths, dur)
		if (gerr == nil) != (mkerr == nil) {
			t.Fatalf("trial %d: GreedyMakespan err %v vs %v", trial, mkerr, gerr)
		}
		if gerr == nil && mk != g.Makespan {
			t.Fatalf("trial %d: GreedyMakespan = %d, schedule says %d", trial, mk, g.Makespan)
		}

		o, oerr := InOrder(n, widths, dur)
		po, poerr := pl.InOrder(n, widths, dur)
		if (oerr == nil) != (poerr == nil) {
			t.Fatalf("trial %d: InOrder err %v vs Planner err %v", trial, oerr, poerr)
		}
		if oerr == nil && !reflect.DeepEqual(o, po) {
			t.Fatalf("trial %d: Planner.InOrder diverged", trial)
		}
		omk, omkerr := pl.InOrderMakespan(n, widths, dur)
		if (oerr == nil) != (omkerr == nil) {
			t.Fatalf("trial %d: InOrderMakespan err %v vs %v", trial, omkerr, oerr)
		}
		if oerr == nil && omk != o.Makespan {
			t.Fatalf("trial %d: InOrderMakespan = %d, schedule says %d", trial, omk, o.Makespan)
		}
	}
}

// BenchmarkGreedySchedule measures one warm Planner scheduling call — the
// architecture search's innermost operation. The makespan-only variant
// must be allocation-free once the scratch is warm.
func BenchmarkGreedySchedule(b *testing.B) {
	rng := rand.New(rand.NewSource(4))
	base := make([]int64, 50)
	for i := range base {
		base[i] = int64(rng.Intn(100000) + 100)
	}
	widths := []int{12, 10, 9}
	dur := tableDur(base)
	var pl Planner
	b.Run("full", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := pl.Greedy(50, widths, dur); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("makespan", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := pl.GreedyMakespan(50, widths, dur); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func BenchmarkGreedy50Cores(b *testing.B) {
	rng := rand.New(rand.NewSource(4))
	base := make([]int64, 50)
	for i := range base {
		base[i] = int64(rng.Intn(100000) + 100)
	}
	widths := []int{12, 10, 9}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Greedy(50, widths, tableDur(base)); err != nil {
			b.Fatal(err)
		}
	}
}
