package telemetry

import (
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestBusFIFO: a sequential publisher is observed in publish order.
func TestBusFIFO(t *testing.T) {
	s := New()
	sub := s.Subscribe(MaskCounter, 64)
	defer sub.Close()

	c := s.Counter("seq")
	for i := 0; i < 10; i++ {
		c.Inc()
	}
	for i := 0; i < 10; i++ {
		select {
		case ev := <-sub.C():
			if ev.Kind != KindCounter || ev.Name != "seq" || ev.Value != int64(i+1) {
				t.Fatalf("event %d out of order: %+v", i, ev)
			}
			if ev.Delta != 1 || ev.TimeNs == 0 {
				t.Fatalf("event %d malformed: %+v", i, ev)
			}
		case <-time.After(time.Second):
			t.Fatalf("event %d never delivered", i)
		}
	}
}

// TestBusNeverBlocksPublisher: publishing into a subscriber that stopped
// reading drops (and counts) instead of blocking — the head-of-line fix
// the bus exists for. The publish loop itself is the assertion: with a
// blocking bus it would deadlock (the test would time out).
func TestBusNeverBlocksPublisher(t *testing.T) {
	s := New()
	sub := s.Subscribe(MaskCounter, 4) // reader never drains this
	defer sub.Close()

	const published = 100
	done := make(chan struct{})
	go func() {
		defer close(done)
		c := s.Counter("burst")
		for i := 0; i < published; i++ {
			c.Inc()
		}
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("publisher blocked on a full subscription")
	}
	if got := sub.Dropped(); got != published-4 {
		t.Fatalf("subscription dropped %d events, want %d", got, published-4)
	}
	if got := s.EventsDropped(); got != published-4 {
		t.Fatalf("sink-wide drop count %d, want %d", got, published-4)
	}
	if sn := s.Snapshot(); sn.EventsDropped != published-4 {
		t.Fatalf("snapshot events_dropped %d, want %d", sn.EventsDropped, published-4)
	}
	if _, ok := s.Snapshot().Counters["telemetry.events_dropped"]; ok {
		t.Fatal("drop count leaked into the deterministic counter map")
	}
}

// TestBusMaskFiltering: a subscription receives only the kinds it asked
// for.
func TestBusMaskFiltering(t *testing.T) {
	s := New()
	sub := s.Subscribe(MaskRun|MaskGauge, 16)
	defer sub.Close()

	s.Counter("noise").Inc()
	s.Gauge("peak").Observe(7)
	s.PublishRun("test", "start")

	want := []EventKind{KindGauge, KindRun}
	for i, k := range want {
		select {
		case ev := <-sub.C():
			if ev.Kind != k {
				t.Fatalf("event %d kind %v, want %v", i, ev.Kind, k)
			}
		case <-time.After(time.Second):
			t.Fatalf("filtered event %d never delivered", i)
		}
	}
	select {
	case ev := <-sub.C():
		t.Fatalf("unexpected extra event: %+v", ev)
	default:
	}
}

// TestBusGaugePublishesOnlyRaises: observations that do not raise the
// maximum stay off the bus.
func TestBusGaugePublishesOnlyRaises(t *testing.T) {
	s := New()
	sub := s.Subscribe(MaskGauge, 16)
	defer sub.Close()
	g := s.Gauge("hw")
	g.Observe(10)
	g.Observe(3) // no raise: no event
	g.Observe(12)
	for i, want := range []int64{10, 12} {
		select {
		case ev := <-sub.C():
			if ev.Value != want {
				t.Fatalf("gauge event %d value %d, want %d", i, ev.Value, want)
			}
		case <-time.After(time.Second):
			t.Fatal("gauge raise never delivered")
		}
	}
	select {
	case ev := <-sub.C():
		t.Fatalf("non-raising observation published: %+v", ev)
	default:
	}
}

// TestBusNoSubscribersIsFree is the semantic half of the fast-path
// contract: with nobody subscribed nothing accumulates anywhere.
func TestBusNoSubscribersIsFree(t *testing.T) {
	s := New()
	if n := testing.AllocsPerRun(1000, func() {
		s.bus.publishSpan("x", time.Millisecond)
		s.bus.publishCounter("c", 1, 1)
	}); n != 0 {
		t.Fatalf("publish without subscribers allocates %v/op, want 0", n)
	}
	if s.EventsDropped() != 0 {
		t.Fatal("drops counted without subscribers")
	}
}

// TestSubscriptionCloseRace: concurrent publishers and a closing
// subscriber must not race (close happens under the bus write lock) —
// meaningful under -race.
func TestSubscriptionCloseRace(t *testing.T) {
	s := New()
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := s.Counter("race")
			for i := 0; i < 2000; i++ {
				c.Inc()
			}
		}()
	}
	for i := 0; i < 50; i++ {
		sub := s.Subscribe(MaskAll, 8)
		time.Sleep(50 * time.Microsecond)
		sub.Close()
		sub.Close() // idempotent
	}
	wg.Wait()
}

// TestEventJSONRoundTrip: the NDJSON wire form keeps kind names and all
// populated fields.
func TestEventJSONRoundTrip(t *testing.T) {
	in := Event{Kind: KindSpan, TimeNs: 12345, Name: "tables/core:a", DurNs: 99}
	data, err := json.Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	if want := `"kind":"span"`; !strings.Contains(string(data), want) {
		t.Fatalf("encoded event missing %s: %s", want, data)
	}
	var out Event
	if err := json.Unmarshal(data, &out); err != nil {
		t.Fatal(err)
	}
	if out != in {
		t.Fatalf("round trip: %+v != %+v", out, in)
	}
	if err := json.Unmarshal([]byte(`{"kind":"bogus"}`), &out); err == nil {
		t.Fatal("unknown kind decoded without error")
	}
}

// TestSpanHookAsyncDelivery: the hook keeps working through the bus —
// slow hooks only delay their own goroutine, and Flush is a reliable
// barrier.
func TestSpanHookAsyncDelivery(t *testing.T) {
	s := New()
	var mu sync.Mutex
	var got []string
	s.SetSpanHook(func(path string, d time.Duration) {
		time.Sleep(time.Millisecond) // a slow consumer
		mu.Lock()
		got = append(got, path)
		mu.Unlock()
	})
	start := time.Now()
	for i := 0; i < 5; i++ {
		s.Span("phase").Begin().End()
	}
	// Ends published without waiting on the 1ms-per-event hook.
	if elapsed := time.Since(start); elapsed > 500*time.Millisecond {
		t.Fatalf("span Ends blocked on the hook: %v", elapsed)
	}
	s.Flush()
	mu.Lock()
	defer mu.Unlock()
	if len(got) != 5 {
		t.Fatalf("hook delivered %d events after Flush, want 5", len(got))
	}
	for _, p := range got {
		if p != "phase" {
			t.Fatalf("hook path %q, want \"phase\"", p)
		}
	}
}

// TestSinkClose: Close drains the hook and is idempotent; SetSpanHook
// afterwards restarts delivery.
func TestSinkClose(t *testing.T) {
	s := New()
	var mu sync.Mutex
	n := 0
	count := func(string, time.Duration) { mu.Lock(); n++; mu.Unlock() }
	s.SetSpanHook(count)
	s.Span("a").Begin().End()
	s.Close()
	s.Close()
	mu.Lock()
	if n != 1 {
		mu.Unlock()
		t.Fatalf("hook fired %d times before Close, want 1", n)
	}
	mu.Unlock()

	s.SetSpanHook(count)
	s.Span("b").Begin().End()
	s.Flush()
	mu.Lock()
	defer mu.Unlock()
	if n != 2 {
		t.Fatalf("hook fired %d times after re-install, want 2", n)
	}
}
