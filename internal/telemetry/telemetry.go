// Package telemetry is the instrumentation layer of the optimizer
// pipeline: hierarchical phase spans (parse → per-core table builds →
// architecture search → schedule → verify), race-safe counters
// registered by subsystem (cache hits, memo hits, kernel invocations),
// and wall-clock timers (worker busy time).
//
// The layer is zero-overhead when disabled. Every method is safe on a
// nil receiver and does nothing: a nil *Sink yields nil *Counter, nil
// *Timer and nil *Span values, whose Add/Inc/Begin/End calls are plain
// nil checks — no allocation, no atomics, no locks. Hot loops therefore
// carry instrumentation unconditionally and pay nothing until a sink is
// attached (asserted by the telemetry-overhead gate in the Makefile).
//
// Counters are exact and deterministic for any worker-pool size: they
// count algorithmic events (a cache probe, a schedule evaluation), not
// scheduling accidents, so two runs of the same workload produce
// identical counter snapshots regardless of parallelism. Timers and
// span durations are wall-clock and excluded from that guarantee; the
// Snapshot type keeps the two apart.
//
// Failure-path counters are the one qualification to that determinism.
// The cancel.* family (cancel.runs, cancel.table_builds), the
// panic.recovered counter, and the run.cancelled marker written by the
// command binaries record where a run was interrupted or where a worker
// panic was contained — events whose timing depends on signal delivery
// and goroutine scheduling. They are registered only when such an event
// occurs, so clean runs keep identical snapshots at every worker count;
// on a cancelled or panicking run the counter *values* may differ
// between worker counts and are excluded from the worker-count
// invariance guarantee.
package telemetry

import (
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a race-safe monotonic event counter. The nil Counter is a
// no-op, so callers hold plain fields and never branch on "enabled".
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n; no-op on nil.
func (c *Counter) Add(n int64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Inc increments the counter by one; no-op on nil.
func (c *Counter) Inc() { c.Add(1) }

// Value reads the counter; zero on nil.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge tracks the maximum of an observed quantity (e.g. the heap
// high-water mark sampled at evaluation-window boundaries). Like timers,
// gauge values reflect runtime accidents (GC timing, sampling points)
// and are excluded from the worker-count determinism guarantee; the
// Snapshot type reports them apart from counters. The nil Gauge is a
// no-op.
type Gauge struct {
	v atomic.Int64
}

// Observe raises the gauge to v if v exceeds the current maximum; no-op
// on nil.
func (g *Gauge) Observe(v int64) {
	if g == nil {
		return
	}
	for {
		cur := g.v.Load()
		if v <= cur || g.v.CompareAndSwap(cur, v) {
			return
		}
	}
}

// Value reads the maximum observed so far; zero on nil.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Timer accumulates wall-clock durations (e.g. worker-slot busy time).
// Timer values are not deterministic across runs and are reported apart
// from counters. The nil Timer is a no-op.
type Timer struct {
	ns atomic.Int64
}

// Add accumulates d; no-op on nil.
func (t *Timer) Add(d time.Duration) {
	if t != nil {
		t.ns.Add(int64(d))
	}
}

// Value reads the accumulated duration; zero on nil.
func (t *Timer) Value() time.Duration {
	if t == nil {
		return 0
	}
	return time.Duration(t.ns.Load())
}

// Span is one node of the phase tree. A span accumulates wall time and
// a completion count over Begin/End cycles; children are merged by name
// (a phase entered twice is one node with count 2). Spans may be begun
// and ended from any goroutine; to keep the tree shape deterministic
// under worker pools, create the children on the coordinating goroutine
// (in task order) and hand them to the workers.
type Span struct {
	sink *Sink
	name string // path segment
	path string // "/"-joined path from the root, root excluded

	mu       sync.Mutex
	children []*Span
	index    map[string]*Span

	elapsed atomic.Int64 // summed Begin→End nanoseconds
	count   atomic.Int64 // completed Begin→End cycles
}

// Sink returns the sink the span records into; nil on a nil span.
func (sp *Span) Sink() *Sink {
	if sp == nil {
		return nil
	}
	return sp.sink
}

// Child returns the named child span, creating it on first use; nil on
// a nil receiver. Repeated calls with one name return one node.
func (sp *Span) Child(name string) *Span {
	if sp == nil {
		return nil
	}
	sp.mu.Lock()
	defer sp.mu.Unlock()
	if c, ok := sp.index[name]; ok {
		return c
	}
	path := name
	if sp.path != "" {
		path = sp.path + "/" + name
	}
	c := &Span{sink: sp.sink, name: name, path: path}
	if sp.index == nil {
		sp.index = make(map[string]*Span)
	}
	sp.index[name] = c
	sp.children = append(sp.children, c)
	return c
}

// Timing is one open Begin→End interval on a span. The zero Timing
// (from a nil span) is a no-op to End.
type Timing struct {
	sp *Span
	t0 time.Time
}

// Begin opens a timing interval on the span. On a nil span it returns
// the zero Timing without reading the clock.
func (sp *Span) Begin() Timing {
	if sp == nil {
		return Timing{}
	}
	return Timing{sp: sp, t0: time.Now()}
}

// End closes the interval, accumulating its duration into the span and
// firing the sink's span hook; no-op on the zero Timing.
func (t Timing) End() {
	if t.sp == nil {
		return
	}
	d := time.Since(t.t0)
	t.sp.elapsed.Add(int64(d))
	t.sp.count.Add(1)
	t.sp.sink.spanEnded(t.sp.path, d)
}

// Sink is the root of one telemetry domain: a counter/timer registry
// plus a span tree. The nil *Sink disables everything it hands out.
type Sink struct {
	mu       sync.Mutex
	counters map[string]*Counter
	timers   map[string]*Timer
	gauges   map[string]*Gauge
	root     Span

	hookMu   sync.Mutex
	spanHook func(path string, elapsed time.Duration)

	start time.Time
}

// New creates an enabled sink.
func New() *Sink {
	s := &Sink{start: time.Now()}
	s.root.sink = s
	return s
}

// Root returns the root span (the anchor for top-level phases); nil on
// a nil sink.
func (s *Sink) Root() *Span {
	if s == nil {
		return nil
	}
	return &s.root
}

// Span is shorthand for Root().Child(name).
func (s *Sink) Span(name string) *Span { return s.Root().Child(name) }

// Counter returns the named counter, registering it on first use; nil
// on a nil sink. Names are dotted subsystem paths ("diskcache.hits").
func (s *Sink) Counter(name string) *Counter {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if c, ok := s.counters[name]; ok {
		return c
	}
	if s.counters == nil {
		s.counters = make(map[string]*Counter)
	}
	c := new(Counter)
	s.counters[name] = c
	return c
}

// Timer returns the named timer, registering it on first use; nil on a
// nil sink.
func (s *Sink) Timer(name string) *Timer {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if t, ok := s.timers[name]; ok {
		return t
	}
	if s.timers == nil {
		s.timers = make(map[string]*Timer)
	}
	t := new(Timer)
	s.timers[name] = t
	return t
}

// Gauge returns the named max-tracking gauge, registering it on first
// use; nil on a nil sink.
func (s *Sink) Gauge(name string) *Gauge {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if g, ok := s.gauges[name]; ok {
		return g
	}
	if s.gauges == nil {
		s.gauges = make(map[string]*Gauge)
	}
	g := new(Gauge)
	s.gauges[name] = g
	return g
}

// SetSpanHook installs fn to run on every span End with the span's
// "/"-joined path and that interval's duration — the progress-line hook
// of cmd/repro. fn may be called from worker goroutines; invocations
// are serialized by the sink. No-op on a nil sink.
func (s *Sink) SetSpanHook(fn func(path string, elapsed time.Duration)) {
	if s == nil {
		return
	}
	s.hookMu.Lock()
	s.spanHook = fn
	s.hookMu.Unlock()
}

// spanEnded fires the span hook under the hook lock (serializing
// concurrent worker-end events); no-op on nil sinks or unset hooks.
func (s *Sink) spanEnded(path string, d time.Duration) {
	if s == nil {
		return
	}
	s.hookMu.Lock()
	defer s.hookMu.Unlock()
	if s.spanHook != nil {
		s.spanHook(path, d)
	}
}
