// Package telemetry is the instrumentation and observability layer of
// the optimizer pipeline: hierarchical phase spans (parse → per-core
// table builds → architecture search → schedule → verify), race-safe
// counters registered by subsystem (cache hits, memo hits, kernel
// invocations), wall-clock timers (worker busy time), log2-bucketed
// latency histograms with quantiles (histogram.go), a bounded
// non-blocking event bus for live consumers (bus.go), and HTTP
// exposition — /metrics, /healthz, streaming /events, /debug/pprof —
// for watching a run mid-flight (expose.go).
//
// The layer is zero-overhead when disabled. Every method is safe on a
// nil receiver and does nothing: a nil *Sink yields nil *Counter, nil
// *Timer and nil *Span values, whose Add/Inc/Begin/End calls are plain
// nil checks — no allocation, no atomics, no locks. Hot loops therefore
// carry instrumentation unconditionally and pay nothing until a sink is
// attached (asserted by the telemetry-overhead gate in the Makefile).
//
// Counters are exact and deterministic for any worker-pool size: they
// count algorithmic events (a cache probe, a schedule evaluation), not
// scheduling accidents, so two runs of the same workload produce
// identical counter snapshots regardless of parallelism. Timers and
// span durations are wall-clock and excluded from that guarantee; the
// Snapshot type keeps the two apart.
//
// Failure-path counters are the one qualification to that determinism.
// The cancel.* family (cancel.runs, cancel.table_builds), the
// panic.recovered counter, and the run.cancelled marker written by the
// command binaries record where a run was interrupted or where a worker
// panic was contained — events whose timing depends on signal delivery
// and goroutine scheduling. They are registered only when such an event
// occurs, so clean runs keep identical snapshots at every worker count;
// on a cancelled or panicking run the counter *values* may differ
// between worker counts and are excluded from the worker-count
// invariance guarantee.
package telemetry

import (
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a race-safe monotonic event counter. The nil Counter is a
// no-op, so callers hold plain fields and never branch on "enabled".
// Registered counters publish a KindCounter delta event per Add when
// the sink's bus has subscribers (one atomic load otherwise).
type Counter struct {
	v    atomic.Int64
	name string
	bus  *bus
}

// Add increments the counter by n; no-op on nil.
func (c *Counter) Add(n int64) {
	if c != nil {
		v := c.v.Add(n)
		c.bus.publishCounter(c.name, n, v)
	}
}

// Inc increments the counter by one; no-op on nil.
func (c *Counter) Inc() { c.Add(1) }

// Value reads the counter; zero on nil.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge tracks the maximum of an observed quantity (e.g. the heap
// high-water mark sampled at evaluation-window boundaries). Like timers,
// gauge values reflect runtime accidents (GC timing, sampling points)
// and are excluded from the worker-count determinism guarantee; the
// Snapshot type reports them apart from counters. The nil Gauge is a
// no-op. A registered gauge publishes a KindGauge event when (and only
// when) an observation raises the maximum.
type Gauge struct {
	v    atomic.Int64
	name string
	bus  *bus
}

// Observe raises the gauge to v if v exceeds the current maximum; no-op
// on nil.
func (g *Gauge) Observe(v int64) {
	if g == nil {
		return
	}
	for {
		cur := g.v.Load()
		if v <= cur {
			return
		}
		if g.v.CompareAndSwap(cur, v) {
			g.bus.publishGauge(g.name, v)
			return
		}
	}
}

// Value reads the maximum observed so far; zero on nil.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Timer accumulates wall-clock durations (e.g. worker-slot busy time).
// Timer values are not deterministic across runs and are reported apart
// from counters. The nil Timer is a no-op.
type Timer struct {
	ns atomic.Int64
}

// Add accumulates d; no-op on nil.
func (t *Timer) Add(d time.Duration) {
	if t != nil {
		t.ns.Add(int64(d))
	}
}

// Value reads the accumulated duration; zero on nil.
func (t *Timer) Value() time.Duration {
	if t == nil {
		return 0
	}
	return time.Duration(t.ns.Load())
}

// Span is one node of the phase tree. A span accumulates wall time and
// a completion count over Begin/End cycles; children are merged by name
// (a phase entered twice is one node with count 2). Spans may be begun
// and ended from any goroutine; to keep the tree shape deterministic
// under worker pools, create the children on the coordinating goroutine
// (in task order) and hand them to the workers.
type Span struct {
	sink *Sink
	name string // path segment
	path string // "/"-joined path from the root, root excluded

	mu       sync.Mutex
	children []*Span
	index    map[string]*Span

	elapsed atomic.Int64 // summed Begin→End nanoseconds
	count   atomic.Int64 // completed Begin→End cycles
}

// Sink returns the sink the span records into; nil on a nil span.
func (sp *Span) Sink() *Sink {
	if sp == nil {
		return nil
	}
	return sp.sink
}

// Child returns the named child span, creating it on first use; nil on
// a nil receiver. Repeated calls with one name return one node.
func (sp *Span) Child(name string) *Span {
	if sp == nil {
		return nil
	}
	sp.mu.Lock()
	defer sp.mu.Unlock()
	if c, ok := sp.index[name]; ok {
		return c
	}
	path := name
	if sp.path != "" {
		path = sp.path + "/" + name
	}
	c := &Span{sink: sp.sink, name: name, path: path}
	if sp.index == nil {
		sp.index = make(map[string]*Span)
	}
	sp.index[name] = c
	sp.children = append(sp.children, c)
	return c
}

// Timing is one open Begin→End interval on a span. The zero Timing
// (from a nil span) is a no-op to End.
type Timing struct {
	sp *Span
	t0 time.Time
}

// Begin opens a timing interval on the span. On a nil span it returns
// the zero Timing without reading the clock.
func (sp *Span) Begin() Timing {
	if sp == nil {
		return Timing{}
	}
	return Timing{sp: sp, t0: time.Now()}
}

// End closes the interval, accumulating its duration into the span and
// firing the sink's span hook; no-op on the zero Timing.
func (t Timing) End() {
	if t.sp == nil {
		return
	}
	d := time.Since(t.t0)
	t.sp.elapsed.Add(int64(d))
	t.sp.count.Add(1)
	t.sp.sink.spanEnded(t.sp.path, d)
}

// Sink is the root of one telemetry domain: a counter/timer/gauge/
// histogram registry, a span tree, and an event bus fanning live events
// out to subscribers (see bus.go). The nil *Sink disables everything it
// hands out.
type Sink struct {
	mu         sync.Mutex
	counters   map[string]*Counter
	timers     map[string]*Timer
	gauges     map[string]*Gauge
	histograms map[string]*Histogram
	root       Span

	bus bus

	// The span hook is a bus subscriber on a dedicated goroutine (see
	// SetSpanHook); hookMu guards its installation state and fn.
	hookMu    sync.Mutex
	hookFn    func(path string, elapsed time.Duration)
	hookSub   *Subscription
	hookFlush chan chan struct{}
	hookDone  chan struct{}

	start time.Time
}

// New creates an enabled sink.
func New() *Sink {
	s := &Sink{start: time.Now()}
	s.root.sink = s
	return s
}

// Root returns the root span (the anchor for top-level phases); nil on
// a nil sink.
func (s *Sink) Root() *Span {
	if s == nil {
		return nil
	}
	return &s.root
}

// Span is shorthand for Root().Child(name).
func (s *Sink) Span(name string) *Span { return s.Root().Child(name) }

// Counter returns the named counter, registering it on first use; nil
// on a nil sink. Names are dotted subsystem paths ("diskcache.hits").
func (s *Sink) Counter(name string) *Counter {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if c, ok := s.counters[name]; ok {
		return c
	}
	if s.counters == nil {
		s.counters = make(map[string]*Counter)
	}
	c := &Counter{name: name, bus: &s.bus}
	s.counters[name] = c
	return c
}

// Timer returns the named timer, registering it on first use; nil on a
// nil sink.
func (s *Sink) Timer(name string) *Timer {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if t, ok := s.timers[name]; ok {
		return t
	}
	if s.timers == nil {
		s.timers = make(map[string]*Timer)
	}
	t := new(Timer)
	s.timers[name] = t
	return t
}

// Gauge returns the named max-tracking gauge, registering it on first
// use; nil on a nil sink.
func (s *Sink) Gauge(name string) *Gauge {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if g, ok := s.gauges[name]; ok {
		return g
	}
	if s.gauges == nil {
		s.gauges = make(map[string]*Gauge)
	}
	g := &Gauge{name: name, bus: &s.bus}
	s.gauges[name] = g
	return g
}

// hookBuffer sizes the span-hook subscription's ring. Span ends are
// phase/core granular (hundreds per run, not millions), so this is deep
// enough that no progress line is lost on any realistic run; should a
// consumer stall completely, overflow drops and counts like any other
// subscription instead of blocking workers.
const hookBuffer = 4096

// SetSpanHook installs fn to run on every span End with the span's
// "/"-joined path and that interval's duration — the progress-line hook
// of cmd/repro. The hook is a bus subscriber consumed on a dedicated
// goroutine: span Ends on worker goroutines publish without blocking
// (the old implementation invoked fn synchronously under a lock, so one
// slow consumer stalled every concurrent worker's End). Delivery is
// FIFO, so a sequential run is observed in publish order; call Flush
// (or Close) before reading anything ordered after the hooked output.
// Passing nil uninstalls the fn (the subscriber goroutine stays, idle).
// No-op on a nil sink.
func (s *Sink) SetSpanHook(fn func(path string, elapsed time.Duration)) {
	if s == nil {
		return
	}
	s.hookMu.Lock()
	defer s.hookMu.Unlock()
	s.hookFn = fn
	if fn == nil || s.hookSub != nil {
		return
	}
	s.hookSub = s.bus.subscribe(MaskSpan, hookBuffer)
	s.hookFlush = make(chan chan struct{})
	s.hookDone = make(chan struct{})
	go s.runHook(s.hookSub, s.hookFlush, s.hookDone)
}

// runHook is the span-hook consumer goroutine: it drains the hook
// subscription, invoking the installed fn per event, and answers Flush
// barriers.
func (s *Sink) runHook(sub *Subscription, flush chan chan struct{}, done chan struct{}) {
	defer close(done)
	for {
		select {
		case ev, ok := <-sub.C():
			if !ok {
				return
			}
			s.callHook(ev)
		case ack := <-flush:
			if !s.drainHook(sub) {
				close(ack)
				return
			}
			close(ack)
		}
	}
}

// drainHook consumes everything currently buffered on the hook
// subscription; false once the subscription is closed.
func (s *Sink) drainHook(sub *Subscription) bool {
	for {
		select {
		case ev, ok := <-sub.C():
			if !ok {
				return false
			}
			s.callHook(ev)
		default:
			return true
		}
	}
}

// callHook invokes the currently-installed hook fn for one span event.
// fn is read under hookMu but invoked outside it, so a slow fn never
// holds the lock — only its own goroutine.
func (s *Sink) callHook(ev Event) {
	s.hookMu.Lock()
	fn := s.hookFn
	s.hookMu.Unlock()
	if fn != nil {
		fn(ev.Name, time.Duration(ev.DurNs))
	}
}

// Flush blocks until every span event published before the call has
// been delivered to the hook (if one is installed) — the barrier
// cmd/repro uses so all progress lines land on stderr before the final
// report. Events published concurrently with Flush may or may not be
// included. No-op on a nil sink or without a hook.
func (s *Sink) Flush() {
	if s == nil {
		return
	}
	s.hookMu.Lock()
	flush, done := s.hookFlush, s.hookDone
	s.hookMu.Unlock()
	if flush == nil {
		return
	}
	ack := make(chan struct{})
	select {
	case flush <- ack:
		<-ack
	case <-done:
	}
}

// Close flushes and stops the span-hook subscriber. The sink's
// instruments remain usable (a later SetSpanHook restarts the
// subscriber); Close exists so a process can guarantee its hooked
// output is complete before exiting. Safe to call more than once and
// on nil.
func (s *Sink) Close() {
	if s == nil {
		return
	}
	s.hookMu.Lock()
	sub, done := s.hookSub, s.hookDone
	s.hookSub, s.hookFlush, s.hookDone = nil, nil, nil
	s.hookMu.Unlock()
	if sub == nil {
		return
	}
	// Closing the subscription lets the runner drain what is buffered,
	// observe the channel close, and exit.
	sub.Close()
	<-done
}

// spanEnded publishes a span-end event on the bus; no-op on nil sinks
// and free (one atomic load) without subscribers. The span hook, when
// installed, is one of the subscribers.
func (s *Sink) spanEnded(path string, d time.Duration) {
	if s == nil {
		return
	}
	s.bus.publishSpan(path, d)
}
