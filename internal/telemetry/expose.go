package telemetry

// HTTP exposition: the live observability endpoints a long run (or the
// future socserve daemon) serves while working.
//
//	/metrics      OpenMetrics text rendering of the current Snapshot,
//	              deterministically ordered (families and series sorted)
//	/healthz      liveness probe
//	/events       NDJSON stream of bus events (?kinds=span,counter,...)
//	/debug/pprof  the standard runtime profiles
//
// NewHandler builds the handler for embedding; StartServer wraps it in
// an http.Server whose Shutdown first cancels streaming /events
// requests (they would otherwise hold graceful shutdown open forever)
// and then drains the rest.

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"sort"
	"strconv"
	"strings"
	"time"
)

// metricPrefix namespaces every exposed series.
const metricPrefix = "soctap_"

// WriteOpenMetrics renders the snapshot in OpenMetrics text format,
// deterministically: build info and run wall-clock first, then
// counters, gauges, timers and histogram summaries each sorted by name,
// then the span tree (creation order) as labeled series, closed by the
// mandatory # EOF. Counter values are exact and worker-count
// deterministic; everything wall-clock is not (same split as the JSON
// snapshot).
func (sn *Snapshot) WriteOpenMetrics(w io.Writer) error {
	var b strings.Builder

	b.WriteString("# TYPE " + metricPrefix + "build info\n")
	fmt.Fprintf(&b, "%sbuild_info{go_version=%s,vcs_revision=%s} 1\n",
		metricPrefix, labelQuote(sn.Meta.GoVersion), labelQuote(sn.Meta.VCSRevision))

	b.WriteString("# TYPE " + metricPrefix + "run_wall_seconds gauge\n")
	fmt.Fprintf(&b, "%srun_wall_seconds %s\n", metricPrefix, fmtFloat(float64(sn.Meta.WallNs)/1e9))

	b.WriteString("# TYPE " + metricPrefix + "telemetry_events_dropped counter\n")
	fmt.Fprintf(&b, "%stelemetry_events_dropped_total %d\n", metricPrefix, sn.EventsDropped)

	for _, name := range sortedKeys(sn.Counters) {
		m := metricName(name)
		fmt.Fprintf(&b, "# TYPE %s counter\n%s_total %d\n", m, m, sn.Counters[name])
	}
	for _, name := range sortedKeys(sn.Gauges) {
		m := metricName(name)
		fmt.Fprintf(&b, "# TYPE %s gauge\n%s %d\n", m, m, sn.Gauges[name])
	}
	for _, name := range sortedKeys(sn.Timings) {
		// Timers accumulate monotonically, so they expose as counters.
		m := metricName(name) + "_seconds"
		fmt.Fprintf(&b, "# TYPE %s counter\n%s_total %s\n", m, m, fmtFloat(sn.Timings[name]))
	}
	for _, name := range sortedKeys(sn.Histograms) {
		h := sn.Histograms[name]
		m := metricName(name)
		fmt.Fprintf(&b, "# TYPE %s summary\n", m)
		for _, q := range [...]struct {
			label string
			v     float64
		}{{"0.5", h.P50Seconds}, {"0.9", h.P90Seconds}, {"0.99", h.P99Seconds}} {
			fmt.Fprintf(&b, "%s{quantile=\"%s\"} %s\n", m, q.label, fmtFloat(q.v))
		}
		fmt.Fprintf(&b, "%s_sum %s\n", m, fmtFloat(h.SumSeconds))
		fmt.Fprintf(&b, "%s_count %d\n", m, h.Count)
	}

	if len(sn.Spans) > 0 {
		sm := metricPrefix + "span_seconds"
		cm := metricPrefix + "span_count"
		var secs, counts strings.Builder
		secs.WriteString("# TYPE " + sm + " counter\n")
		counts.WriteString("# TYPE " + cm + " counter\n")
		var dfs func(spans []SpanSnap, prefix string)
		dfs = func(spans []SpanSnap, prefix string) {
			for _, sp := range spans {
				path := sp.Name
				if prefix != "" {
					path = prefix + "/" + sp.Name
				}
				fmt.Fprintf(&secs, "%s_total{path=%s} %s\n", sm, labelQuote(path), fmtFloat(sp.Seconds))
				fmt.Fprintf(&counts, "%s_total{path=%s} %d\n", cm, labelQuote(path), sp.Count)
				dfs(sp.Children, path)
			}
		}
		dfs(sn.Spans, "")
		b.WriteString(secs.String())
		b.WriteString(counts.String())
	}

	b.WriteString("# EOF\n")
	_, err := io.WriteString(w, b.String())
	return err
}

// sortedKeys returns the map's keys in sorted order — the deterministic
// series ordering of the exposition.
func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// metricName maps a dotted instrument name ("diskcache.load_seconds")
// onto a prefixed metric name ("soctap_diskcache_load_seconds"):
// characters outside [a-zA-Z0-9_] become underscores.
func metricName(name string) string {
	var b strings.Builder
	b.WriteString(metricPrefix)
	for _, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '_':
			b.WriteRune(r)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// labelQuote renders a label value with OpenMetrics escaping.
func labelQuote(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	v = strings.ReplaceAll(v, `"`, `\"`)
	return `"` + v + `"`
}

// fmtFloat renders a float deterministically and round-trippably.
func fmtFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// eventsBuffer is the ring depth of one /events subscription — deep
// enough to ride out client-side scheduling hiccups; a genuinely slow
// client loses events (drop-and-count) rather than slowing the run.
const eventsBuffer = 256

// openMetricsContentType is the exposition content type of /metrics.
const openMetricsContentType = "application/openmetrics-text; version=1.0.0; charset=utf-8"

// NewHandler serves the sink's observability endpoints: /metrics
// (OpenMetrics), /healthz, /events (live NDJSON off the event bus) and
// /debug/pprof. The handler is safe to mount in any server; /events
// streams until the request context ends (client disconnect, or server
// shutdown through StartServer).
func NewHandler(s *Sink) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", openMetricsContentType)
		if err := s.Snapshot().WriteOpenMetrics(w); err != nil {
			// The connection is gone; nothing useful to do.
			return
		}
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		io.WriteString(w, "ok\n")
	})
	mux.HandleFunc("/events", func(w http.ResponseWriter, r *http.Request) {
		serveEvents(s, w, r)
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// ParseKinds maps a comma-separated event-kind list ("span,counter,
// gauge,run", empty = all) onto an EventMask — the grammar of the
// ?kinds= query on /events and of every other NDJSON event stream.
func ParseKinds(q string) (EventMask, error) {
	if q == "" {
		return MaskAll, nil
	}
	var mask EventMask
	for _, part := range strings.Split(q, ",") {
		part = strings.TrimSpace(part)
		found := false
		for k, name := range eventKindNames {
			if name == part {
				mask |= EventKind(k).mask()
				found = true
				break
			}
		}
		if !found {
			return 0, fmt.Errorf("unknown event kind %q (want span, counter, gauge, run)", part)
		}
	}
	return mask, nil
}

// serveEvents streams bus events as NDJSON until the client disconnects
// or the server shuts down. The subscription is bounded: a client that
// stops reading loses events (counted), never stalls the publishers.
//
// Flushing goes through http.ResponseController, which sees through
// middleware wrappers that implement Unwrap. A ResponseWriter with no
// Flusher anywhere in its chain (e.g. a bare status-recording wrapper)
// degrades to unflushed streaming — lines reach the client when the
// server's buffer fills or the handler returns — instead of panicking
// on a nil interface. The write deadline is also cleared per-request,
// so a server-wide WriteTimeout (sane for scrapes) never reaps this
// deliberately endless response.
func serveEvents(s *Sink, w http.ResponseWriter, r *http.Request) {
	mask, err := ParseKinds(r.URL.Query().Get("kinds"))
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	sub := s.Subscribe(mask, eventsBuffer)
	if sub == nil {
		http.Error(w, "telemetry disabled", http.StatusServiceUnavailable)
		return
	}
	defer sub.Close()

	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set("Cache-Control", "no-store")
	w.WriteHeader(http.StatusOK)
	rc := http.NewResponseController(w)
	rc.SetWriteDeadline(time.Time{}) // best-effort: not every writer has a deadline
	canFlush := rc.Flush() == nil    // commit headers so clients see the stream open
	enc := json.NewEncoder(w)
	ctx := r.Context()
	for {
		select {
		case <-ctx.Done():
			return
		case ev, ok := <-sub.C():
			if !ok {
				return
			}
			if err := enc.Encode(ev); err != nil {
				return
			}
			if canFlush {
				if err := rc.Flush(); err != nil {
					canFlush = false
				}
			}
		}
	}
}

// The exposition server's connection timeouts. A server with none set
// lets one slowloris client — a connection that sends its header a byte
// a minute, or never — pin a goroutine and a file descriptor forever.
// ReadHeaderTimeout reaps stalled header reads, IdleTimeout reaps
// keep-alive connections between requests, and WriteTimeout bounds
// scrape responses; the deliberately endless /events stream opts back
// out of the write bound per-request (see serveEvents). Variables, not
// constants, so the reap test can shorten them.
var (
	serverReadHeaderTimeout = 10 * time.Second
	serverWriteTimeout      = time.Minute
	serverIdleTimeout       = 2 * time.Minute
)

// Server is a running observability endpoint (see StartServer).
type Server struct {
	srv    *http.Server
	addr   string
	cancel context.CancelFunc // ends streaming request contexts
	done   chan struct{}
	err    error
}

// StartServer listens on addr and serves NewHandler(s) in the
// background. The returned Server reports the bound address (useful
// with ":0") and shuts down gracefully via Shutdown.
func StartServer(addr string, s *Sink) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	baseCtx, cancel := context.WithCancel(context.Background())
	srv := &http.Server{
		Handler:           NewHandler(s),
		ReadHeaderTimeout: serverReadHeaderTimeout,
		WriteTimeout:      serverWriteTimeout,
		IdleTimeout:       serverIdleTimeout,
		BaseContext: func(net.Listener) context.Context {
			// Request contexts derive from baseCtx, so Shutdown can end
			// the otherwise-endless /events streams by cancelling it.
			return baseCtx
		},
	}
	ms := &Server{srv: srv, addr: ln.Addr().String(), cancel: cancel, done: make(chan struct{})}
	go func() {
		defer close(ms.done)
		if err := srv.Serve(ln); err != nil && err != http.ErrServerClosed {
			ms.err = err
		}
	}()
	return ms, nil
}

// Addr returns the bound listen address.
func (ms *Server) Addr() string {
	if ms == nil {
		return ""
	}
	return ms.addr
}

// Shutdown stops the server: streaming /events requests are cancelled
// first (they never end on their own), then the listener closes and
// in-flight scrapes drain, bounded by ctx. A nil receiver is a no-op.
func (ms *Server) Shutdown(ctx context.Context) error {
	if ms == nil {
		return nil
	}
	ms.cancel()
	err := ms.srv.Shutdown(ctx)
	if err != nil {
		ms.srv.Close()
	}
	<-ms.done
	if ms.err != nil {
		return ms.err
	}
	return err
}

// ShutdownTimeout is Shutdown with a fresh deadline — the command
// binaries' one-liner.
func (ms *Server) ShutdownTimeout(d time.Duration) error {
	if ms == nil {
		return nil
	}
	ctx, cancel := context.WithTimeout(context.Background(), d)
	defer cancel()
	return ms.Shutdown(ctx)
}
