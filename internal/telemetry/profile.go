package telemetry

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"runtime/trace"
)

// StartProfiles starts the standard Go profiling escape hatches behind
// the -cpuprofile/-memprofile/-trace flags of socopt and repro: a CPU
// profile and an execution trace are started immediately, and the
// returned stop function stops both and writes the heap profile. Empty
// paths disable the corresponding profile; with all three empty the
// call is free and stop is a no-op.
func StartProfiles(cpuPath, memPath, tracePath string) (stop func() error, err error) {
	var cpuFile, traceFile *os.File
	cleanup := func() {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			cpuFile.Close()
		}
		if traceFile != nil {
			trace.Stop()
			traceFile.Close()
		}
	}
	if cpuPath != "" {
		cpuFile, err = os.Create(cpuPath)
		if err != nil {
			return nil, err
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			cpuFile = nil
			return nil, fmt.Errorf("telemetry: cpu profile: %w", err)
		}
	}
	if tracePath != "" {
		traceFile, err = os.Create(tracePath)
		if err != nil {
			cleanup()
			return nil, err
		}
		if err := trace.Start(traceFile); err != nil {
			traceFile.Close()
			traceFile = nil
			cleanup()
			return nil, fmt.Errorf("telemetry: trace: %w", err)
		}
	}
	return func() error {
		cleanup()
		if memPath == "" {
			return nil
		}
		f, err := os.Create(memPath)
		if err != nil {
			return err
		}
		defer f.Close()
		runtime.GC() // materialize the final live set
		if err := pprof.WriteHeapProfile(f); err != nil {
			return fmt.Errorf("telemetry: heap profile: %w", err)
		}
		return nil
	}, nil
}
