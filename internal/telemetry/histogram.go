package telemetry

import (
	"math"
	"math/bits"
	"sync/atomic"
	"time"
)

// histBuckets is the number of log2 buckets: bucket 0 holds
// non-positive observations, bucket b >= 1 holds values in
// [2^(b-1), 2^b). bits.Len64 of any positive int64 is at most 63, so
// 64 buckets cover the full range with no clamping.
const histBuckets = 64

// Histogram is a race-safe log2-bucketed distribution of int64
// observations — in this repository always nanosecond durations, named
// "<subsystem>.<what>_seconds" and reported in seconds. Like the other
// instruments, the nil Histogram is a no-op: Record/Observe on nil are
// plain nil checks with no allocation, no atomics and no clock reads,
// so hot paths carry them unconditionally (gate-enforced by the obs
// target's zero-alloc test).
//
// The observation *count* is deterministic for any worker-pool size
// whenever the instrumented event is (one table build, one disk probe,
// one window load, one schedule evaluation...). The observed values are
// wall clock, so the per-bucket distribution and the quantiles are
// runtime accidents; Snapshot reports the two apart, and the
// worker-count invariance gate compares counts only.
type Histogram struct {
	count   atomic.Int64
	sum     atomic.Int64
	buckets [histBuckets]atomic.Int64
}

// Record adds one observation; no-op on nil. Non-positive values land
// in bucket 0.
func (h *Histogram) Record(v int64) {
	if h == nil {
		return
	}
	b := 0
	if v > 0 {
		b = bits.Len64(uint64(v))
	}
	h.buckets[b].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
}

// Observe records a duration in nanoseconds; no-op on nil.
func (h *Histogram) Observe(d time.Duration) { h.Record(int64(d)) }

// Count reads the number of observations; zero on nil.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum reads the sum of all observed values; zero on nil.
func (h *Histogram) Sum() int64 {
	if h == nil {
		return 0
	}
	return h.sum.Load()
}

// Quantile estimates the q-quantile (0 <= q <= 1) of the recorded
// distribution by linear interpolation inside the containing log2
// bucket. Zero on nil or before any observation. The estimate is
// deterministic given the bucket counts.
func (h *Histogram) Quantile(q float64) float64 {
	if h == nil {
		return 0
	}
	var local [histBuckets]int64
	total := int64(0)
	for i := range h.buckets {
		local[i] = h.buckets[i].Load()
		total += local[i]
	}
	return bucketQuantile(&local, total, q)
}

// bucketQuantile computes the quantile estimate from a consistent local
// copy of the buckets.
func bucketQuantile(buckets *[histBuckets]int64, total int64, q float64) float64 {
	if total <= 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := int64(math.Ceil(q * float64(total)))
	if rank < 1 {
		rank = 1
	}
	var cum int64
	for b, n := range buckets {
		if n == 0 {
			continue
		}
		if cum+n >= rank {
			lo, hi := bucketBounds(b)
			frac := float64(rank-cum) / float64(n)
			return lo + frac*(hi-lo)
		}
		cum += n
	}
	return 0 // unreachable: rank <= total
}

// bucketBounds returns bucket b's value range [lo, hi] as floats:
// bucket 0 is exactly zero, bucket b >= 1 spans [2^(b-1), 2^b - 1].
func bucketBounds(b int) (lo, hi float64) {
	if b == 0 {
		return 0, 0
	}
	lo = math.Ldexp(1, b-1)
	hi = math.Ldexp(1, b) - 1
	return lo, hi
}

// snap copies the histogram into its snapshot form. The bucket counts
// are loaded once and the count/quantiles derived from that single
// copy, so the snap is internally consistent even while recording
// continues.
func (h *Histogram) snap() HistogramSnap {
	var local [histBuckets]int64
	total := int64(0)
	for i := range h.buckets {
		local[i] = h.buckets[i].Load()
		total += local[i]
	}
	sn := HistogramSnap{
		Count:      total,
		SumSeconds: float64(h.sum.Load()) / 1e9,
		P50Seconds: bucketQuantile(&local, total, 0.50) / 1e9,
		P90Seconds: bucketQuantile(&local, total, 0.90) / 1e9,
		P99Seconds: bucketQuantile(&local, total, 0.99) / 1e9,
	}
	for b, n := range local {
		if n != 0 {
			sn.Buckets = append(sn.Buckets, HistogramBucket{Log2: b, Count: n})
		}
	}
	return sn
}

// Histogram returns the named histogram, registering it on first use;
// nil on a nil sink. Names follow the "<subsystem>.<what>_seconds"
// convention — every histogram in this repository records nanosecond
// durations via Observe.
func (s *Sink) Histogram(name string) *Histogram {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if h, ok := s.histograms[name]; ok {
		return h
	}
	if s.histograms == nil {
		s.histograms = make(map[string]*Histogram)
	}
	h := new(Histogram)
	s.histograms[name] = h
	return h
}
