package telemetry

import (
	"bufio"
	"context"
	"encoding/json"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// TestWriteOpenMetricsGolden pins the exposition byte-for-byte: family
// ordering, metric-name sanitization, label escaping, suffix
// conventions and the trailing # EOF are all part of the format
// contract, so scraping configs stay stable across releases.
func TestWriteOpenMetricsGolden(t *testing.T) {
	sn := &Snapshot{
		Meta: Meta{WallNs: 1_500_000_000, GoVersion: "go1.24.0", VCSRevision: "abc123"},
		Counters: map[string]int64{
			"tables.built":   4,
			"cache.mem_hits": 9,
		},
		Gauges:  map[string]int64{"eval.peak_heap_bytes": 1024},
		Timings: map[string]float64{"eval.worker_busy": 2.5},
		Histograms: map[string]HistogramSnap{
			"diskcache.load_seconds": {
				Count: 3, SumSeconds: 0.006,
				P50Seconds: 0.001, P90Seconds: 0.002, P99Seconds: 0.004,
			},
		},
		EventsDropped: 2,
		Spans: []SpanSnap{{
			Name: "tables", Seconds: 1.25, Count: 2,
			Children: []SpanSnap{{Name: "core:a", Seconds: 0.5, Count: 1}},
		}},
	}
	const want = `# TYPE soctap_build info
soctap_build_info{go_version="go1.24.0",vcs_revision="abc123"} 1
# TYPE soctap_run_wall_seconds gauge
soctap_run_wall_seconds 1.5
# TYPE soctap_telemetry_events_dropped counter
soctap_telemetry_events_dropped_total 2
# TYPE soctap_cache_mem_hits counter
soctap_cache_mem_hits_total 9
# TYPE soctap_tables_built counter
soctap_tables_built_total 4
# TYPE soctap_eval_peak_heap_bytes gauge
soctap_eval_peak_heap_bytes 1024
# TYPE soctap_eval_worker_busy_seconds counter
soctap_eval_worker_busy_seconds_total 2.5
# TYPE soctap_diskcache_load_seconds summary
soctap_diskcache_load_seconds{quantile="0.5"} 0.001
soctap_diskcache_load_seconds{quantile="0.9"} 0.002
soctap_diskcache_load_seconds{quantile="0.99"} 0.004
soctap_diskcache_load_seconds_sum 0.006
soctap_diskcache_load_seconds_count 3
# TYPE soctap_span_seconds counter
soctap_span_seconds_total{path="tables"} 1.25
soctap_span_seconds_total{path="tables/core:a"} 0.5
# TYPE soctap_span_count counter
soctap_span_count_total{path="tables"} 2
soctap_span_count_total{path="tables/core:a"} 1
# EOF
`
	var b strings.Builder
	if err := sn.WriteOpenMetrics(&b); err != nil {
		t.Fatal(err)
	}
	if got := b.String(); got != want {
		t.Fatalf("exposition drifted from golden.\ngot:\n%s\nwant:\n%s", got, want)
	}
	// Rendering twice must be byte-identical (map iteration must not
	// leak into the ordering).
	var b2 strings.Builder
	if err := sn.WriteOpenMetrics(&b2); err != nil {
		t.Fatal(err)
	}
	if b.String() != b2.String() {
		t.Fatal("exposition not deterministic across renders")
	}
}

// startTestServer boots the observability endpoint on a loopback port
// and tears it down with the test.
func startTestServer(t *testing.T, s *Sink) *Server {
	t.Helper()
	srv, err := StartServer("127.0.0.1:0", s)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.ShutdownTimeout(5 * time.Second) })
	return srv
}

// TestMetricsAndHealthzEndpoints: the live endpoints serve the expected
// content types and bodies.
func TestMetricsAndHealthzEndpoints(t *testing.T) {
	s := New()
	s.Counter("tables.built").Add(3)
	s.Histogram("diskcache.load_seconds").Observe(2 * time.Millisecond)
	srv := startTestServer(t, s)

	resp, err := http.Get("http://" + srv.Addr() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "openmetrics-text") {
		t.Fatalf("content type %q", ct)
	}
	var body strings.Builder
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		body.WriteString(sc.Text() + "\n")
	}
	out := body.String()
	for _, want := range []string{
		"soctap_tables_built_total 3",
		"soctap_diskcache_load_seconds_count 1",
		"soctap_build_info{",
		"# EOF",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("/metrics missing %q:\n%s", want, out)
		}
	}

	hr, err := http.Get("http://" + srv.Addr() + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	hr.Body.Close()
	if hr.StatusCode != http.StatusOK {
		t.Fatalf("/healthz status %d", hr.StatusCode)
	}
}

// TestEventsStream: /events delivers published events as NDJSON lines,
// filtered by ?kinds=.
func TestEventsStream(t *testing.T) {
	s := New()
	srv := startTestServer(t, s)

	resp, err := http.Get("http://" + srv.Addr() + "/events?kinds=run,counter")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("content type %q", ct)
	}

	// Publish after the subscription is live: poll until the handler has
	// attached its subscription to the bus.
	deadline := time.Now().Add(5 * time.Second)
	for s.bus.nsubs.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("/events handler never subscribed")
		}
		time.Sleep(time.Millisecond)
	}
	s.PublishRun("repro", "start")
	s.Gauge("noise").Observe(1) // filtered out by ?kinds=
	s.Counter("tables.built").Inc()

	sc := bufio.NewScanner(resp.Body)
	var got []Event
	for len(got) < 2 && sc.Scan() {
		var ev Event
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
		}
		got = append(got, ev)
	}
	if len(got) != 2 {
		t.Fatalf("read %d events, want 2 (%v)", len(got), sc.Err())
	}
	if got[0].Kind != KindRun || got[0].Name != "repro" || got[0].Label != "start" {
		t.Fatalf("first event %+v", got[0])
	}
	if got[1].Kind != KindCounter || got[1].Name != "tables.built" {
		t.Fatalf("second event %+v (gauge not filtered?)", got[1])
	}
}

// TestEventsBadKinds: an unknown ?kinds= value is a 400, not a stream.
func TestEventsBadKinds(t *testing.T) {
	s := New()
	srv := startTestServer(t, s)
	resp, err := http.Get("http://" + srv.Addr() + "/events?kinds=bogus")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status %d, want 400", resp.StatusCode)
	}
}

// TestEventsSlowClientNeverBlocksPublisher: a client that opens /events
// and stops reading must not stall publishers — the events overflow the
// subscription ring and the socket, and are dropped and counted.
func TestEventsSlowClientNeverBlocksPublisher(t *testing.T) {
	s := New()
	srv := startTestServer(t, s)

	resp, err := http.Get("http://" + srv.Addr() + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close() // never read from it

	deadline := time.Now().Add(5 * time.Second)
	for s.bus.nsubs.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("/events handler never subscribed")
		}
		time.Sleep(time.Millisecond)
	}

	// Far more events than the subscription ring and the kernel socket
	// buffers can hold. With a blocking design this loop would hang; it
	// must finish promptly and register drops.
	done := make(chan struct{})
	go func() {
		defer close(done)
		c := s.Counter("burst")
		for i := 0; i < 200_000; i++ {
			c.Inc()
		}
	}()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("publisher blocked behind a stalled /events client")
	}
	if s.EventsDropped() == 0 {
		t.Fatal("no drops recorded against the stalled client")
	}
}

// TestShutdownCancelsStreams: Shutdown must end open /events streams
// (they never end on their own) and return promptly.
func TestShutdownCancelsStreams(t *testing.T) {
	s := New()
	srv, err := StartServer("127.0.0.1:0", s)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get("http://" + srv.Addr() + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()

	start := time.Now()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	if elapsed := time.Since(start); elapsed > 4*time.Second {
		t.Fatalf("shutdown hung on the open stream: %v", elapsed)
	}
	// The stream is over: the body drains to EOF or a reset.
	buf := make([]byte, 256)
	for {
		if _, err := resp.Body.Read(buf); err != nil {
			break
		}
	}
	// Nil-server shutdown is a no-op.
	var nilSrv *Server
	if err := nilSrv.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
}

// TestParseKinds: the mask grammar of ?kinds=.
func TestParseKinds(t *testing.T) {
	if m, err := ParseKinds(""); err != nil || m != MaskAll {
		t.Fatalf("empty: %v %v", m, err)
	}
	if m, err := ParseKinds("span"); err != nil || m != MaskSpan {
		t.Fatalf("span: %v %v", m, err)
	}
	if m, err := ParseKinds("run, gauge"); err != nil || m != MaskRun|MaskGauge {
		t.Fatalf("run,gauge: %v %v", m, err)
	}
	if _, err := ParseKinds("span,wat"); err == nil {
		t.Fatal("unknown kind accepted")
	}
}

// nonFlusherWriter hides every optional ResponseWriter interface —
// Flusher, deadline control, Unwrap — the way a minimal middleware
// wrapper (a status recorder, a rate limiter's accounting shim) does.
// It signals each body write so the test can sequence without racing
// the handler goroutine.
type nonFlusherWriter struct {
	inner http.ResponseWriter
	wrote chan struct{}
}

func (w *nonFlusherWriter) Header() http.Header  { return w.inner.Header() }
func (w *nonFlusherWriter) WriteHeader(code int) { w.inner.WriteHeader(code) }
func (w *nonFlusherWriter) Write(p []byte) (int, error) {
	n, err := w.inner.Write(p)
	select {
	case w.wrote <- struct{}{}:
	default:
	}
	return n, err
}

// TestEventsNonFlusherWriter: serveEvents behind a ResponseWriter with
// no Flusher anywhere in its chain must not panic — it degrades to
// unflushed streaming and still writes every event line. Regression
// test for the nil-interface Flush crash a non-Flusher middleware
// wrapper would have triggered.
func TestEventsNonFlusherWriter(t *testing.T) {
	s := New()
	rec := httptest.NewRecorder()
	w := &nonFlusherWriter{inner: rec, wrote: make(chan struct{}, 1)}

	ctx, cancel := context.WithCancel(context.Background())
	req := httptest.NewRequest("GET", "/events?kinds=counter", nil).WithContext(ctx)

	done := make(chan struct{})
	go func() {
		defer close(done)
		serveEvents(s, w, req)
	}()

	deadline := time.Now().Add(5 * time.Second)
	for s.bus.nsubs.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("serveEvents never subscribed")
		}
		time.Sleep(time.Millisecond)
	}
	s.Counter("touches").Inc()
	select {
	case <-w.wrote:
	case <-time.After(5 * time.Second):
		t.Fatal("event line never written through the non-Flusher wrapper")
	}
	cancel()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("serveEvents did not return on context cancel")
	}

	var ev Event
	line := strings.TrimSpace(rec.Body.String())
	if err := json.Unmarshal([]byte(line), &ev); err != nil {
		t.Fatalf("body %q is not one event line: %v", line, err)
	}
	if ev.Kind != KindCounter || ev.Name != "touches" {
		t.Fatalf("unexpected event %+v", ev)
	}
}

// TestStalledHeaderReadReaped: a connection that opens and never
// finishes sending its request header must be closed by the server at
// ReadHeaderTimeout, not pinned forever. Regression test for the
// timeout-less http.Server StartServer used to build.
func TestStalledHeaderReadReaped(t *testing.T) {
	old := serverReadHeaderTimeout
	serverReadHeaderTimeout = 200 * time.Millisecond
	defer func() { serverReadHeaderTimeout = old }()

	s := New()
	srv := startTestServer(t, s)

	conn, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	// A forever-incomplete header: request line sent, headers never
	// finished. A slowloris client holds exactly this state.
	if _, err := conn.Write([]byte("GET /metrics HTTP/1.1\r\nHost: x\r\n")); err != nil {
		t.Fatal(err)
	}
	conn.SetReadDeadline(time.Now().Add(10 * time.Second))
	start := time.Now()
	buf := make([]byte, 256)
	for {
		if _, err := conn.Read(buf); err != nil {
			break // server closed (or reset) the stalled connection
		}
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("stalled header connection survived %v; want reap near the 200ms ReadHeaderTimeout", elapsed)
	}
}

// TestEventsStreamSurvivesWriteTimeout: the server-wide WriteTimeout
// must not reap a live /events stream — serveEvents clears the write
// deadline per-request, so events published after the nominal deadline
// still arrive.
func TestEventsStreamSurvivesWriteTimeout(t *testing.T) {
	oldW := serverWriteTimeout
	serverWriteTimeout = 300 * time.Millisecond
	defer func() { serverWriteTimeout = oldW }()

	s := New()
	srv := startTestServer(t, s)

	resp, err := http.Get("http://" + srv.Addr() + "/events?kinds=counter")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()

	// Outlive the WriteTimeout, then publish: the line must still come
	// through on the (deadline-cleared) stream.
	time.Sleep(2 * serverWriteTimeout)
	s.Counter("late").Inc()
	lines := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(resp.Body)
		if sc.Scan() {
			lines <- sc.Text()
		}
		close(lines)
	}()
	select {
	case line, ok := <-lines:
		if !ok {
			t.Fatal("stream closed by WriteTimeout before delivering the event")
		}
		var ev Event
		if err := json.Unmarshal([]byte(line), &ev); err != nil {
			t.Fatalf("bad event line %q: %v", line, err)
		}
		if ev.Name != "late" {
			t.Fatalf("unexpected event %+v", ev)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("event never arrived on the long-lived stream")
	}
}
