package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
	"time"

	"soctap/internal/report"
)

// Snapshot is a point-in-time copy of a sink: counters (exact,
// deterministic for any worker count), timers (wall clock, not), and
// the span tree. It renders as deterministic JSON (map keys sorted by
// encoding/json, spans in creation order) and as human text.
type Snapshot struct {
	TotalSeconds float64            `json:"total_seconds"`
	Counters     map[string]int64   `json:"counters"`
	Timings      map[string]float64 `json:"timings_seconds,omitempty"`
	Spans        []SpanSnap         `json:"spans,omitempty"`
}

// SpanSnap is one node of the snapshot's phase tree.
type SpanSnap struct {
	Name     string     `json:"name"`
	Seconds  float64    `json:"seconds"`
	Count    int64      `json:"count"`
	Children []SpanSnap `json:"children,omitempty"`
}

// Snapshot copies the sink's current state. On a nil sink it returns an
// empty snapshot, so report paths need no enabled-check either.
func (s *Sink) Snapshot() *Snapshot {
	sn := &Snapshot{Counters: map[string]int64{}}
	if s == nil {
		return sn
	}
	sn.TotalSeconds = time.Since(s.start).Seconds()
	s.mu.Lock()
	for name, c := range s.counters {
		sn.Counters[name] = c.Value()
	}
	if len(s.timers) > 0 {
		sn.Timings = make(map[string]float64, len(s.timers))
		for name, t := range s.timers {
			sn.Timings[name] = t.Value().Seconds()
		}
	}
	s.mu.Unlock()
	sn.Spans = snapSpans(&s.root)
	return sn
}

// snapSpans copies a span's children (creation order) recursively.
func snapSpans(sp *Span) []SpanSnap {
	sp.mu.Lock()
	kids := append([]*Span(nil), sp.children...)
	sp.mu.Unlock()
	if len(kids) == 0 {
		return nil
	}
	out := make([]SpanSnap, len(kids))
	for i, c := range kids {
		out[i] = SpanSnap{
			Name:     c.name,
			Seconds:  time.Duration(c.elapsed.Load()).Seconds(),
			Count:    c.count.Load(),
			Children: snapSpans(c),
		}
	}
	return out
}

// WriteJSON writes the snapshot as indented JSON. encoding/json sorts
// map keys, so the byte layout is stable run to run (timing values
// aside) — diffable and machine-consumable.
func (sn *Snapshot) WriteJSON(w io.Writer) error {
	data, err := json.MarshalIndent(sn, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	_, err = w.Write(data)
	return err
}

// Render writes the snapshot as human text in the repository's report
// style: the span tree with per-phase bars scaled to the longest phase,
// then counters and timers as fixed-width tables.
func (sn *Snapshot) Render(w io.Writer) error {
	const barWidth = 28
	var maxSec float64
	var walk func([]SpanSnap)
	walk = func(spans []SpanSnap) {
		for _, sp := range spans {
			if sp.Seconds > maxSec {
				maxSec = sp.Seconds
			}
			walk(sp.Children)
		}
	}
	walk(sn.Spans)

	spanTab := report.NewTable(
		fmt.Sprintf("phase spans (%.3fs total)", sn.TotalSeconds),
		"phase", "seconds", "count", "")
	var dfs func(spans []SpanSnap, depth int)
	dfs = func(spans []SpanSnap, depth int) {
		for _, sp := range spans {
			bar := ""
			if maxSec > 0 {
				bar = strings.Repeat("#", int(sp.Seconds/maxSec*barWidth+0.5))
			}
			spanTab.Add(strings.Repeat("  ", depth)+sp.Name,
				fmt.Sprintf("%.3f", sp.Seconds), fmt.Sprint(sp.Count), bar)
			dfs(sp.Children, depth+1)
		}
	}
	dfs(sn.Spans, 0)
	if len(sn.Spans) > 0 {
		if err := spanTab.Render(w); err != nil {
			return err
		}
	}

	if len(sn.Counters) > 0 {
		names := make([]string, 0, len(sn.Counters))
		for n := range sn.Counters {
			names = append(names, n)
		}
		sort.Strings(names)
		tab := report.NewTable("\ncounters", "counter", "value")
		for _, n := range names {
			tab.Add(n, fmt.Sprint(sn.Counters[n]))
		}
		if err := tab.Render(w); err != nil {
			return err
		}
	}

	if len(sn.Timings) > 0 {
		names := make([]string, 0, len(sn.Timings))
		for n := range sn.Timings {
			names = append(names, n)
		}
		sort.Strings(names)
		tab := report.NewTable("\ntimings (wall clock, not deterministic)", "timer", "seconds")
		for _, n := range names {
			tab.Add(n, fmt.Sprintf("%.3f", sn.Timings[n]))
		}
		if err := tab.Render(w); err != nil {
			return err
		}
	}
	return nil
}
