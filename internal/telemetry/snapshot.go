package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
	"time"

	"soctap/internal/report"
)

// Snapshot is a point-in-time copy of a sink: run metadata, counters
// (exact, deterministic for any worker count), timers/gauges/histogram
// distributions (runtime observations, not), and the span tree. It
// renders as deterministic JSON (map keys sorted by encoding/json,
// spans in creation order), as human text (Render), and as OpenMetrics
// exposition text (WriteOpenMetrics).
type Snapshot struct {
	TotalSeconds float64                  `json:"total_seconds"`
	Meta         Meta                     `json:"meta"`
	Counters     map[string]int64         `json:"counters"`
	Timings      map[string]float64       `json:"timings_seconds,omitempty"`
	Gauges       map[string]int64         `json:"gauges,omitempty"`
	Histograms   map[string]HistogramSnap `json:"histograms,omitempty"`
	// EventsDropped counts bus events dropped against slow subscribers
	// (a scheduling accident, excluded from the determinism guarantee
	// and from Counters; see bus.go).
	EventsDropped int64      `json:"events_dropped,omitempty"`
	Spans         []SpanSnap `json:"spans,omitempty"`
}

// SpanSnap is one node of the snapshot's phase tree.
type SpanSnap struct {
	Name     string     `json:"name"`
	Seconds  float64    `json:"seconds"`
	Count    int64      `json:"count"`
	Children []SpanSnap `json:"children,omitempty"`
}

// HistogramSnap is the snapshot form of one latency histogram: the
// deterministic observation count, then the wall-clock distribution —
// total and p50/p90/p99 estimates in seconds, and the non-empty log2
// buckets (bucket b spans [2^(b-1), 2^b) nanoseconds) in ascending
// order.
type HistogramSnap struct {
	Count      int64             `json:"count"`
	SumSeconds float64           `json:"sum_seconds"`
	P50Seconds float64           `json:"p50_seconds"`
	P90Seconds float64           `json:"p90_seconds"`
	P99Seconds float64           `json:"p99_seconds"`
	Buckets    []HistogramBucket `json:"buckets,omitempty"`
}

// HistogramBucket is one non-empty log2 bucket of a HistogramSnap.
type HistogramBucket struct {
	Log2  int   `json:"log2"`
	Count int64 `json:"count"`
}

// Snapshot copies the sink's current state. On a nil sink it returns an
// empty snapshot, so report paths need no enabled-check either.
func (s *Sink) Snapshot() *Snapshot {
	sn := &Snapshot{Counters: map[string]int64{}}
	if s == nil {
		return sn
	}
	wall := time.Since(s.start)
	sn.TotalSeconds = wall.Seconds()
	sn.Meta.WallNs = wall.Nanoseconds()
	sn.Meta.GoVersion, sn.Meta.VCSRevision = BuildInfo()
	sn.EventsDropped = s.bus.dropped.Load()
	s.mu.Lock()
	for name, c := range s.counters {
		sn.Counters[name] = c.Value()
	}
	if len(s.timers) > 0 {
		sn.Timings = make(map[string]float64, len(s.timers))
		for name, t := range s.timers {
			sn.Timings[name] = t.Value().Seconds()
		}
	}
	if len(s.gauges) > 0 {
		sn.Gauges = make(map[string]int64, len(s.gauges))
		for name, g := range s.gauges {
			sn.Gauges[name] = g.Value()
		}
	}
	if len(s.histograms) > 0 {
		sn.Histograms = make(map[string]HistogramSnap, len(s.histograms))
		for name, h := range s.histograms {
			sn.Histograms[name] = h.snap()
		}
	}
	s.mu.Unlock()
	sn.Spans = snapSpans(&s.root)
	return sn
}

// snapSpans copies a span's children (creation order) recursively.
func snapSpans(sp *Span) []SpanSnap {
	sp.mu.Lock()
	kids := append([]*Span(nil), sp.children...)
	sp.mu.Unlock()
	if len(kids) == 0 {
		return nil
	}
	out := make([]SpanSnap, len(kids))
	for i, c := range kids {
		out[i] = SpanSnap{
			Name:     c.name,
			Seconds:  time.Duration(c.elapsed.Load()).Seconds(),
			Count:    c.count.Load(),
			Children: snapSpans(c),
		}
	}
	return out
}

// pruneRow is one line of the pruning-rate table: how many (w, m)
// candidates of one core's sweep were skipped by the lower bound.
type pruneRow struct {
	core   string
	pruned int64
	evals  int64
	rate   float64
}

// pruningRates extracts per-core pruning effectiveness from the
// `prune.<core>.pruned` / `prune.<core>.evals` counter pairs, plus an
// overall row when more than one core reported. Rows are sorted by
// core name; the rate is pruned / (pruned + evaluated) — the fraction
// of sweep candidates that never reached the cost kernel.
func (sn *Snapshot) pruningRates() []pruneRow {
	per := map[string]*pruneRow{}
	for name, v := range sn.Counters {
		rest, ok := strings.CutPrefix(name, "prune.")
		if !ok {
			continue
		}
		var field *int64
		var core string
		if c, ok2 := strings.CutSuffix(rest, ".pruned"); ok2 {
			core = c
		} else if c, ok2 := strings.CutSuffix(rest, ".evals"); ok2 {
			core = c
		} else {
			continue
		}
		r := per[core]
		if r == nil {
			r = &pruneRow{core: core}
			per[core] = r
		}
		if strings.HasSuffix(name, ".pruned") {
			field = &r.pruned
		} else {
			field = &r.evals
		}
		*field = v
	}
	if len(per) == 0 {
		return nil
	}
	rows := make([]pruneRow, 0, len(per)+1)
	for _, r := range per {
		rows = append(rows, *r)
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].core < rows[j].core })
	if len(rows) > 1 {
		var all pruneRow
		all.core = "(all cores)"
		for _, r := range rows {
			all.pruned += r.pruned
			all.evals += r.evals
		}
		rows = append(rows, all)
	}
	for i := range rows {
		if total := rows[i].pruned + rows[i].evals; total > 0 {
			rows[i].rate = float64(rows[i].pruned) / float64(total)
		}
	}
	return rows
}

// fusedRow is one line of the pass-amortization table: how many fused
// passes one core's streaming sweep ran, how many (w, m) points they
// carried, and how many window loads that cost.
type fusedRow struct {
	core   string
	passes int64
	points int64
	loads  int64
}

// fusedAmortization extracts per-core fused-sweep effectiveness from
// the `fused.<core>.passes` / `.points` / `.window_loads` counter
// triples, plus an overall row when more than one core reported. Rows
// sort by core name. points/pass is the fan-out each streamed window
// was shared across — the factor by which fusion amortizes source
// traversal versus one pass per point.
func (sn *Snapshot) fusedAmortization() []fusedRow {
	per := map[string]*fusedRow{}
	for name, v := range sn.Counters {
		rest, ok := strings.CutPrefix(name, "fused.")
		if !ok {
			continue
		}
		var core string
		var field func(*fusedRow) *int64
		switch {
		case strings.HasSuffix(rest, ".passes"):
			core = strings.TrimSuffix(rest, ".passes")
			field = func(r *fusedRow) *int64 { return &r.passes }
		case strings.HasSuffix(rest, ".points"):
			core = strings.TrimSuffix(rest, ".points")
			field = func(r *fusedRow) *int64 { return &r.points }
		case strings.HasSuffix(rest, ".window_loads"):
			core = strings.TrimSuffix(rest, ".window_loads")
			field = func(r *fusedRow) *int64 { return &r.loads }
		default:
			continue
		}
		r := per[core]
		if r == nil {
			r = &fusedRow{core: core}
			per[core] = r
		}
		*field(r) = v
	}
	if len(per) == 0 {
		return nil
	}
	rows := make([]fusedRow, 0, len(per)+1)
	for _, r := range per {
		rows = append(rows, *r)
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].core < rows[j].core })
	if len(rows) > 1 {
		all := fusedRow{core: "(all cores)"}
		for _, r := range rows {
			all.passes += r.passes
			all.points += r.points
			all.loads += r.loads
		}
		rows = append(rows, all)
	}
	return rows
}

// cacheRow is one line of the cache-tier table: hit/miss/eviction
// traffic and resident bytes of one tier of the table cache.
type cacheRow struct {
	tier      string
	hits      int64
	misses    int64
	evictions int64
	bytes     int64
}

// cacheTiers extracts the table-cache tier summary from the `cache.*`
// (in-memory tier) and `diskcache.*` (on-disk tier) counters. A tier
// appears only when at least one of its counters was registered, so
// runs without a cache render no table at all.
func (sn *Snapshot) cacheTiers() []cacheRow {
	rows := make([]cacheRow, 0, 2)
	add := func(tier, prefix, hits, misses string) {
		r := cacheRow{tier: tier}
		seen := false
		for name, v := range sn.Counters {
			rest, ok := strings.CutPrefix(name, prefix)
			if !ok {
				continue
			}
			seen = true
			switch rest {
			case hits:
				r.hits = v
			case misses:
				r.misses = v
			case "evictions":
				r.evictions = v
			case "bytes":
				r.bytes = v
			}
		}
		if seen {
			rows = append(rows, r)
		}
	}
	add("memory", "cache.", "mem_hits", "mem_misses")
	add("disk", "diskcache.", "hits", "misses")
	return rows
}

// WriteJSON writes the snapshot as indented JSON. encoding/json sorts
// map keys, so the byte layout is stable run to run (timing values
// aside) — diffable and machine-consumable.
func (sn *Snapshot) WriteJSON(w io.Writer) error {
	data, err := json.MarshalIndent(sn, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	_, err = w.Write(data)
	return err
}

// Render writes the snapshot as human text in the repository's report
// style: the span tree with per-phase bars scaled to the longest phase,
// then counters and timers as fixed-width tables.
func (sn *Snapshot) Render(w io.Writer) error {
	const barWidth = 28
	var maxSec float64
	var walk func([]SpanSnap)
	walk = func(spans []SpanSnap) {
		for _, sp := range spans {
			if sp.Seconds > maxSec {
				maxSec = sp.Seconds
			}
			walk(sp.Children)
		}
	}
	walk(sn.Spans)

	spanTab := report.NewTable(
		fmt.Sprintf("phase spans (%.3fs total)", sn.TotalSeconds),
		"phase", "seconds", "count", "")
	var dfs func(spans []SpanSnap, depth int)
	dfs = func(spans []SpanSnap, depth int) {
		for _, sp := range spans {
			bar := ""
			if maxSec > 0 {
				bar = strings.Repeat("#", int(sp.Seconds/maxSec*barWidth+0.5))
			}
			spanTab.Add(strings.Repeat("  ", depth)+sp.Name,
				fmt.Sprintf("%.3f", sp.Seconds), fmt.Sprint(sp.Count), bar)
			dfs(sp.Children, depth+1)
		}
	}
	dfs(sn.Spans, 0)
	if len(sn.Spans) > 0 {
		if err := spanTab.Render(w); err != nil {
			return err
		}
	}

	if len(sn.Counters) > 0 {
		names := make([]string, 0, len(sn.Counters))
		for n := range sn.Counters {
			names = append(names, n)
		}
		sort.Strings(names)
		tab := report.NewTable("\ncounters", "counter", "value")
		for _, n := range names {
			tab.Add(n, fmt.Sprint(sn.Counters[n]))
		}
		if err := tab.Render(w); err != nil {
			return err
		}
	}

	if rows := sn.pruningRates(); len(rows) > 0 {
		tab := report.NewTable("\nsweep pruning (candidates skipped by lower bound)",
			"core", "pruned", "evaluated", "rate")
		for _, r := range rows {
			tab.Add(r.core, fmt.Sprint(r.pruned), fmt.Sprint(r.evals),
				fmt.Sprintf("%.1f%%", r.rate*100))
		}
		if err := tab.Render(w); err != nil {
			return err
		}
	}

	if rows := sn.fusedAmortization(); len(rows) > 0 {
		tab := report.NewTable("\nfused sweep (points sharing each streamed pass)",
			"core", "passes", "points", "points/pass", "window loads")
		for _, r := range rows {
			perPass := "-"
			if r.passes > 0 {
				perPass = fmt.Sprintf("%.1f", float64(r.points)/float64(r.passes))
			}
			tab.Add(r.core, fmt.Sprint(r.passes), fmt.Sprint(r.points),
				perPass, fmt.Sprint(r.loads))
		}
		if err := tab.Render(w); err != nil {
			return err
		}
	}

	if rows := sn.cacheTiers(); len(rows) > 0 {
		tab := report.NewTable("\ntable cache tiers",
			"tier", "hits", "misses", "hit rate", "evictions", "resident bytes")
		for _, r := range rows {
			rate := "-"
			if total := r.hits + r.misses; total > 0 {
				rate = fmt.Sprintf("%.1f%%", float64(r.hits)/float64(total)*100)
			}
			tab.Add(r.tier, fmt.Sprint(r.hits), fmt.Sprint(r.misses), rate,
				fmt.Sprint(r.evictions), fmt.Sprint(r.bytes))
		}
		if err := tab.Render(w); err != nil {
			return err
		}
	}

	if len(sn.Gauges) > 0 {
		names := make([]string, 0, len(sn.Gauges))
		for n := range sn.Gauges {
			names = append(names, n)
		}
		sort.Strings(names)
		tab := report.NewTable("\ngauges (high-water marks, not deterministic)", "gauge", "max")
		for _, n := range names {
			tab.Add(n, fmt.Sprint(sn.Gauges[n]))
		}
		if err := tab.Render(w); err != nil {
			return err
		}
	}

	if len(sn.Histograms) > 0 {
		names := make([]string, 0, len(sn.Histograms))
		for n := range sn.Histograms {
			names = append(names, n)
		}
		sort.Strings(names)
		tab := report.NewTable("\nlatency histograms (counts deterministic, quantiles wall clock)",
			"histogram", "count", "p50", "p90", "p99", "sum")
		for _, n := range names {
			h := sn.Histograms[n]
			tab.Add(n, fmt.Sprint(h.Count),
				fmtSeconds(h.P50Seconds), fmtSeconds(h.P90Seconds),
				fmtSeconds(h.P99Seconds), fmtSeconds(h.SumSeconds))
		}
		if err := tab.Render(w); err != nil {
			return err
		}
	}

	if len(sn.Timings) > 0 {
		names := make([]string, 0, len(sn.Timings))
		for n := range sn.Timings {
			names = append(names, n)
		}
		sort.Strings(names)
		tab := report.NewTable("\ntimings (wall clock, not deterministic)", "timer", "seconds")
		for _, n := range names {
			tab.Add(n, fmt.Sprintf("%.3f", sn.Timings[n]))
		}
		if err := tab.Render(w); err != nil {
			return err
		}
	}
	return nil
}

// fmtSeconds renders a seconds value compactly across the µs-to-minutes
// range the histograms span.
func fmtSeconds(s float64) string {
	switch {
	case s == 0:
		return "0"
	case s < 0.001:
		return fmt.Sprintf("%.1fµs", s*1e6)
	case s < 1:
		return fmt.Sprintf("%.2fms", s*1e3)
	default:
		return fmt.Sprintf("%.3fs", s)
	}
}
