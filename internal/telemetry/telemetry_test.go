package telemetry

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestNilSinkIsInert: every operation on the disabled layer — nil sink,
// nil span, nil counter, nil timer, zero timing — must be a safe no-op.
func TestNilSinkIsInert(t *testing.T) {
	var s *Sink
	if s.Root() != nil || s.Span("x") != nil || s.Counter("c") != nil || s.Timer("t") != nil || s.Gauge("g") != nil || s.Histogram("h") != nil {
		t.Fatal("nil sink handed out non-nil instruments")
	}
	if s.Subscribe(MaskAll, 8) != nil {
		t.Fatal("nil sink handed out a subscription")
	}
	s.PublishRun("r", "start")
	s.Flush()
	s.Close()
	s.SetSpanHook(func(string, time.Duration) { t.Fatal("hook on nil sink") })

	var sp *Span
	if sp.Child("y") != nil || sp.Sink() != nil {
		t.Fatal("nil span handed out non-nil values")
	}
	sp.Begin().End()

	var c *Counter
	c.Inc()
	c.Add(5)
	if c.Value() != 0 {
		t.Fatal("nil counter has a value")
	}
	var tm *Timer
	tm.Add(time.Second)
	if tm.Value() != 0 {
		t.Fatal("nil timer has a value")
	}
	var g *Gauge
	g.Observe(42)
	if g.Value() != 0 {
		t.Fatal("nil gauge has a value")
	}
	var h *Histogram
	h.Record(42)
	h.Observe(time.Second)
	if h.Count() != 0 || h.Sum() != 0 || h.Quantile(0.5) != 0 {
		t.Fatal("nil histogram has state")
	}

	sn := s.Snapshot()
	if sn == nil || len(sn.Counters) != 0 || len(sn.Spans) != 0 {
		t.Fatalf("nil sink snapshot: %+v", sn)
	}
}

// TestNilFastPathAllocs: the disabled instrumentation primitives must
// not allocate — this is what lets hot loops carry them unconditionally.
func TestNilFastPathAllocs(t *testing.T) {
	var c *Counter
	var tm *Timer
	var sp *Span
	var g *Gauge
	var h *Histogram
	if n := testing.AllocsPerRun(1000, func() {
		c.Inc()
		c.Add(3)
		tm.Add(time.Millisecond)
		g.Observe(7)
		h.Record(9)
		sp.Begin().End()
		_ = sp.Child("x")
	}); n != 0 {
		t.Fatalf("disabled telemetry primitives allocate %v times per op, want 0", n)
	}
}

// TestCountersAndSpans: basic accounting through an enabled sink.
func TestCountersAndSpans(t *testing.T) {
	s := New()
	s.Counter("sub.hits").Add(2)
	s.Counter("sub.hits").Inc() // same registry entry
	s.Counter("sub.misses").Inc()
	s.Timer("sub.busy").Add(250 * time.Millisecond)

	root := s.Root()
	phase := root.Child("phase")
	tt := phase.Begin()
	inner := phase.Child("inner")
	it := inner.Begin()
	it.End()
	it2 := inner.Begin() // merged by name: count 2
	it2.End()
	tt.End()

	sn := s.Snapshot()
	if sn.Counters["sub.hits"] != 3 || sn.Counters["sub.misses"] != 1 {
		t.Fatalf("counters: %v", sn.Counters)
	}
	if sn.Timings["sub.busy"] < 0.24 {
		t.Fatalf("timer lost time: %v", sn.Timings)
	}
	if len(sn.Spans) != 1 || sn.Spans[0].Name != "phase" || sn.Spans[0].Count != 1 {
		t.Fatalf("span tree: %+v", sn.Spans)
	}
	if len(sn.Spans[0].Children) != 1 || sn.Spans[0].Children[0].Count != 2 {
		t.Fatalf("merged child span: %+v", sn.Spans[0].Children)
	}
}

// TestGaugeTracksMax: a gauge keeps the maximum across observations,
// including concurrent ones, and lands in the snapshot's Gauges map —
// apart from the deterministic counters.
func TestGaugeTracksMax(t *testing.T) {
	s := New()
	g := s.Gauge("eval.peak_heap_bytes")
	if g != s.Gauge("eval.peak_heap_bytes") {
		t.Fatal("gauge registry returned distinct instruments for one name")
	}
	g.Observe(10)
	g.Observe(3) // lower: ignored
	g.Observe(25)

	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(base int64) {
			defer wg.Done()
			for v := int64(0); v < 1000; v++ {
				g.Observe(base + v)
			}
		}(int64(i * 1000))
	}
	wg.Wait()
	if got := g.Value(); got != 7999 {
		t.Fatalf("gauge max = %d, want 7999", got)
	}

	sn := s.Snapshot()
	if sn.Gauges["eval.peak_heap_bytes"] != 7999 {
		t.Fatalf("snapshot gauges: %v", sn.Gauges)
	}
	if _, ok := sn.Counters["eval.peak_heap_bytes"]; ok {
		t.Fatal("gauge leaked into the counter map")
	}
}

// TestSpanHook: every End fires the hook with the full path, serialized
// across goroutines.
func TestSpanHook(t *testing.T) {
	s := New()
	var mu sync.Mutex
	var paths []string
	s.SetSpanHook(func(path string, d time.Duration) {
		mu.Lock()
		paths = append(paths, path)
		mu.Unlock()
	})
	parent := s.Span("tables")
	// Children created in order on the coordinator, ended on workers.
	kids := []*Span{parent.Child("core:a"), parent.Child("core:b")}
	var wg sync.WaitGroup
	for _, k := range kids {
		wg.Add(1)
		go func(sp *Span) {
			defer wg.Done()
			sp.Begin().End()
		}(k)
	}
	wg.Wait()
	parent.Begin().End()
	// The hook runs on the bus subscriber goroutine; Flush is the
	// delivery barrier for everything published above.
	s.Flush()

	mu.Lock()
	defer mu.Unlock()
	if len(paths) != 3 {
		t.Fatalf("hook fired %d times, want 3: %v", len(paths), paths)
	}
	found := map[string]bool{}
	for _, p := range paths {
		found[p] = true
	}
	for _, want := range []string{"tables/core:a", "tables/core:b", "tables"} {
		if !found[want] {
			t.Fatalf("missing hook path %q in %v", want, paths)
		}
	}
}

// TestConcurrentCounters: many goroutines hammering one registry must
// lose no increments (run under -race in the tier-1 gate).
func TestConcurrentCounters(t *testing.T) {
	s := New()
	const workers, perWorker = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				s.Counter("shared").Inc()
				s.Span("phase").Child("p").Begin().End()
			}
		}()
	}
	wg.Wait()
	if got := s.Counter("shared").Value(); got != workers*perWorker {
		t.Fatalf("lost increments: %d, want %d", got, workers*perWorker)
	}
	sn := s.Snapshot()
	if sn.Spans[0].Children[0].Count != workers*perWorker {
		t.Fatalf("lost span cycles: %+v", sn.Spans)
	}
}

// TestSnapshotJSONDeterminism: two snapshots of identical counter state
// marshal to identical counter JSON (keys sorted by encoding/json).
func TestSnapshotJSONDeterminism(t *testing.T) {
	mk := func() []byte {
		s := New()
		s.Counter("b.two").Add(2)
		s.Counter("a.one").Add(1)
		s.Counter("c.three").Add(3)
		sn := s.Snapshot()
		sn.TotalSeconds = 0 // timing erased for the byte comparison
		sn.Meta.WallNs = 0
		var buf bytes.Buffer
		if err := sn.WriteJSON(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	if a, b := mk(), mk(); !bytes.Equal(a, b) {
		t.Fatalf("snapshot JSON not deterministic:\n%s\nvs\n%s", a, b)
	}
}

// TestSnapshotRoundTrip: the written JSON is valid and decodes back to
// the same counters.
func TestSnapshotRoundTrip(t *testing.T) {
	s := New()
	s.Counter("diskcache.hits").Add(7)
	s.Span("search").Child("k-sweep").Begin().End()
	var buf bytes.Buffer
	if err := s.Snapshot().WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var back Snapshot
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatalf("invalid snapshot JSON: %v\n%s", err, buf.Bytes())
	}
	if back.Counters["diskcache.hits"] != 7 {
		t.Fatalf("round-tripped counters: %v", back.Counters)
	}
	if len(back.Spans) != 1 || back.Spans[0].Children[0].Name != "k-sweep" {
		t.Fatalf("round-tripped spans: %+v", back.Spans)
	}
}

// TestRenderText: the human rendering mentions phases, counters and the
// per-phase bars.
func TestRenderText(t *testing.T) {
	s := New()
	s.Counter("cache.mem_hits").Add(4)
	s.Timer("eval.worker_busy").Add(time.Second)
	tt := s.Span("tables").Begin()
	time.Sleep(2 * time.Millisecond)
	tt.End()
	var buf bytes.Buffer
	if err := s.Snapshot().Render(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"phase spans", "tables", "cache.mem_hits", "4", "eval.worker_busy", "#"} {
		if !strings.Contains(out, want) {
			t.Fatalf("rendered text missing %q:\n%s", want, out)
		}
	}
}

// TestStartProfiles: the pprof escape hatches produce non-empty profile
// files and stop cleanly; empty paths are free.
func TestStartProfiles(t *testing.T) {
	stop, err := StartProfiles("", "", "")
	if err != nil {
		t.Fatal(err)
	}
	if err := stop(); err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	cpu := filepath.Join(dir, "cpu.pprof")
	mem := filepath.Join(dir, "mem.pprof")
	tr := filepath.Join(dir, "trace.out")
	stop, err = StartProfiles(cpu, mem, tr)
	if err != nil {
		t.Fatal(err)
	}
	// Burn a little CPU so the profile has something to hold.
	x := 0
	for i := 0; i < 1_000_000; i++ {
		x += i * i
	}
	_ = x
	if err := stop(); err != nil {
		t.Fatal(err)
	}
	for _, p := range []string{cpu, mem, tr} {
		fi, err := os.Stat(p)
		if err != nil {
			t.Fatalf("profile %s missing: %v", p, err)
		}
		if fi.Size() == 0 {
			t.Fatalf("profile %s is empty", p)
		}
	}
}

// TestRenderPruningRates: the snapshot text report surfaces per-core
// sweep pruning effectiveness from the prune.<core>.* counter pairs,
// with an aggregate row when several cores reported.
func TestRenderPruningRates(t *testing.T) {
	s := New()
	s.Counter("prune.cktA.pruned").Add(30)
	s.Counter("prune.cktA.evals").Add(70)
	s.Counter("prune.cktB.pruned").Add(0)
	s.Counter("prune.cktB.evals").Add(50)
	s.Counter("eval.tdc_evals").Add(120) // must not produce a row
	var buf bytes.Buffer
	if err := s.Snapshot().Render(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"sweep pruning", "cktA", "30.0%", "cktB", "0.0%", "(all cores)", "20.0%"} {
		if !strings.Contains(out, want) {
			t.Fatalf("rendered text missing %q:\n%s", want, out)
		}
	}

	// No pruning counters at all: no section.
	var empty bytes.Buffer
	if err := New().Snapshot().Render(&empty); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(empty.String(), "sweep pruning") {
		t.Fatal("pruning section rendered without pruning counters")
	}
}

// TestRenderFusedAmortization: the snapshot text report surfaces the
// fused-sweep pass amortization from the fused.<core>.* counter
// triples — passes, points, the points/pass fan-out, and window loads —
// with an aggregate row when several cores reported.
func TestRenderFusedAmortization(t *testing.T) {
	s := New()
	s.Counter("fused.cktA.passes").Add(2)
	s.Counter("fused.cktA.points").Add(90)
	s.Counter("fused.cktA.window_loads").Add(128)
	s.Counter("fused.cktB.passes").Add(1)
	s.Counter("fused.cktB.points").Add(10)
	s.Counter("fused.cktB.window_loads").Add(16)
	s.Counter("eval.passes").Add(3) // must not produce a row
	var buf bytes.Buffer
	if err := s.Snapshot().Render(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"fused sweep", "cktA", "45.0", "cktB", "10.0", "(all cores)", "33.3", "144"} {
		if !strings.Contains(out, want) {
			t.Fatalf("rendered text missing %q:\n%s", want, out)
		}
	}

	// No fused counters at all: no section.
	var empty bytes.Buffer
	if err := New().Snapshot().Render(&empty); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(empty.String(), "fused sweep") {
		t.Fatal("fused-sweep section rendered without fused counters")
	}
}

// TestRenderCacheTiers: the snapshot text report summarizes the table
// cache per tier — hit traffic, hit rate, evictions, resident bytes —
// from the cache.* and diskcache.* counters, one row per tier that
// actually reported.
func TestRenderCacheTiers(t *testing.T) {
	s := New()
	s.Counter("cache.mem_hits").Add(90)
	s.Counter("cache.mem_misses").Add(10)
	s.Counter("cache.evictions").Add(3)
	s.Counter("cache.bytes").Add(4096)
	s.Counter("diskcache.hits").Add(7)
	s.Counter("diskcache.misses").Add(3)
	s.Counter("diskcache.bytes").Add(1406)
	s.Counter("search.memo_hits").Add(5) // must not produce a row
	var buf bytes.Buffer
	if err := s.Snapshot().Render(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"table cache tiers", "memory", "90.0%", "disk", "70.0%", "4096", "1406"} {
		if !strings.Contains(out, want) {
			t.Fatalf("rendered text missing %q:\n%s", want, out)
		}
	}

	// The disk tier alone still renders; the memory row stays absent.
	one := New()
	one.Counter("diskcache.hits").Add(1)
	var buf2 bytes.Buffer
	if err := one.Snapshot().Render(&buf2); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf2.String(), "table cache tiers") {
		t.Fatal("cache-tier section missing with only disk counters")
	}
	if strings.Contains(buf2.String(), "memory") {
		t.Fatal("memory row rendered without cache.* counters")
	}

	// No cache counters at all: no section.
	var empty bytes.Buffer
	if err := New().Snapshot().Render(&empty); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(empty.String(), "table cache tiers") {
		t.Fatal("cache-tier section rendered without cache counters")
	}
}
