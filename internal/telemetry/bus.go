package telemetry

// The event bus is the live side of the telemetry layer: where the
// Snapshot answers "what has happened so far", the bus answers "what is
// happening right now". Instruments publish typed events — span ends,
// counter deltas, gauge raises, run lifecycle marks — and any number of
// subscribers consume them through bounded rings.
//
// The bus never blocks a publisher. Publishing into a subscriber whose
// ring is full drops the event and counts the drop (per subscription and
// bus-wide, surfaced as Snapshot.EventsDropped and the
// telemetry.events_dropped series on /metrics). A stalled /events
// client or a slow progress writer therefore costs the pipeline nothing
// beyond one failed channel send; it can never serialize worker
// span-Ends the way the old synchronous spanHook did. With no
// subscribers the publish path is a single atomic load.
//
// Delivery within one subscription is FIFO, so a sequential producer
// (e.g. a single-worker run ending spans one by one) is observed in
// exactly the order it published. Events carry wall-clock timestamps
// and are excluded from the worker-count determinism guarantee.

import (
	"encoding/json"
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// EventKind discriminates the typed events on the bus.
type EventKind uint8

const (
	// KindSpan is a span End: Name is the span's "/"-joined path,
	// DurNs the interval's duration.
	KindSpan EventKind = iota
	// KindCounter is a counter increment: Delta the increment, Value
	// the counter's new total.
	KindCounter
	// KindGauge is a gauge raise: Value the new maximum. Observations
	// that do not raise the maximum publish nothing.
	KindGauge
	// KindRun is a run lifecycle mark (start/done/cancelled, or an
	// experiment boundary): Name identifies the run, Label the state.
	KindRun

	numEventKinds
)

var eventKindNames = [numEventKinds]string{"span", "counter", "gauge", "run"}

// String returns the wire name of the kind ("span", "counter", "gauge",
// "run").
func (k EventKind) String() string {
	if int(k) < len(eventKindNames) {
		return eventKindNames[k]
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// EventMask selects which kinds a subscription receives.
type EventMask uint8

const (
	MaskSpan    EventMask = 1 << EventKind(KindSpan)
	MaskCounter EventMask = 1 << EventKind(KindCounter)
	MaskGauge   EventMask = 1 << EventKind(KindGauge)
	MaskRun     EventMask = 1 << EventKind(KindRun)
	MaskAll     EventMask = MaskSpan | MaskCounter | MaskGauge | MaskRun
)

func (k EventKind) mask() EventMask { return 1 << k }

// Event is one bus message. The zero fields of the kinds that do not
// use them are omitted from the JSON encoding, which is the NDJSON line
// layout of the /events endpoint.
type Event struct {
	Kind   EventKind
	TimeNs int64  // wall clock, Unix nanoseconds, stamped at publish
	Name   string // span path, counter/gauge name, or run name
	Delta  int64  // counter increment
	Value  int64  // counter total / gauge maximum
	DurNs  int64  // span interval duration
	Label  string // run lifecycle state
}

// eventJSON is the wire layout of one event (Kind rendered by name).
type eventJSON struct {
	Kind   string `json:"kind"`
	TimeNs int64  `json:"time_unix_ns"`
	Name   string `json:"name"`
	Delta  int64  `json:"delta,omitempty"`
	Value  int64  `json:"value,omitempty"`
	DurNs  int64  `json:"dur_ns,omitempty"`
	Label  string `json:"label,omitempty"`
}

// MarshalJSON encodes the event as one NDJSON object with the kind
// spelled out ("span", "counter", ...).
func (e Event) MarshalJSON() ([]byte, error) {
	return json.Marshal(eventJSON{
		Kind: e.Kind.String(), TimeNs: e.TimeNs, Name: e.Name,
		Delta: e.Delta, Value: e.Value, DurNs: e.DurNs, Label: e.Label,
	})
}

// UnmarshalJSON decodes an event encoded by MarshalJSON. Unknown kinds
// are an error.
func (e *Event) UnmarshalJSON(data []byte) error {
	var je eventJSON
	if err := json.Unmarshal(data, &je); err != nil {
		return err
	}
	kind := EventKind(0)
	found := false
	for k, name := range eventKindNames {
		if name == je.Kind {
			kind, found = EventKind(k), true
			break
		}
	}
	if !found {
		return fmt.Errorf("telemetry: unknown event kind %q", je.Kind)
	}
	*e = Event{Kind: kind, TimeNs: je.TimeNs, Name: je.Name,
		Delta: je.Delta, Value: je.Value, DurNs: je.DurNs, Label: je.Label}
	return nil
}

// Subscription is one bounded ring on the bus. Read events from C();
// Close when done. Events that arrive while the ring is full are
// dropped (counted by Dropped), never queued against the publisher.
type Subscription struct {
	bus     *bus
	mask    EventMask
	ch      chan Event
	dropped atomic.Int64
	closed  bool // guarded by bus.mu
}

// C returns the subscription's event channel. The channel is closed by
// Close (after delivering anything still buffered); nil on a nil
// subscription.
func (sub *Subscription) C() <-chan Event {
	if sub == nil {
		return nil
	}
	return sub.ch
}

// Dropped reports how many events were dropped because this
// subscription's ring was full; zero on nil.
func (sub *Subscription) Dropped() int64 {
	if sub == nil {
		return 0
	}
	return sub.dropped.Load()
}

// Close detaches the subscription from the bus and closes its channel.
// Buffered events remain readable until the channel drains. Safe to
// call more than once and on nil.
func (sub *Subscription) Close() {
	if sub == nil {
		return
	}
	b := sub.bus
	b.mu.Lock()
	if sub.closed {
		b.mu.Unlock()
		return
	}
	sub.closed = true
	for i, x := range b.subs {
		if x == sub {
			b.subs = append(b.subs[:i], b.subs[i+1:]...)
			break
		}
	}
	// Publishers send under the bus read-lock, so holding the write
	// lock here guarantees no send races the close.
	close(sub.ch)
	b.mu.Unlock()
	b.nsubs.Add(-1)
}

// bus is the multi-subscriber fan-out. The zero value is ready to use;
// every Sink embeds one.
type bus struct {
	nsubs   atomic.Int32 // fast no-subscriber publish path
	dropped atomic.Int64 // bus-wide drop total

	mu   sync.RWMutex
	subs []*Subscription
}

// subscribe attaches a ring of buf events receiving the kinds in mask.
func (b *bus) subscribe(mask EventMask, buf int) *Subscription {
	if buf < 1 {
		buf = 1
	}
	sub := &Subscription{bus: b, mask: mask, ch: make(chan Event, buf)}
	b.mu.Lock()
	b.subs = append(b.subs, sub)
	b.mu.Unlock()
	b.nsubs.Add(1)
	return sub
}

// active reports whether any subscription is attached — the publishers'
// one-atomic-load fast path.
func (b *bus) active() bool { return b != nil && b.nsubs.Load() > 0 }

// publish fans the event out to every matching subscription without
// ever blocking: a full ring drops the event and counts the drop.
func (b *bus) publish(ev Event) {
	if !b.active() {
		return
	}
	m := ev.Kind.mask()
	b.mu.RLock()
	for _, sub := range b.subs {
		if sub.mask&m == 0 {
			continue
		}
		select {
		case sub.ch <- ev:
		default:
			sub.dropped.Add(1)
			b.dropped.Add(1)
		}
	}
	b.mu.RUnlock()
}

// publishSpan, publishCounter, publishGauge and publishRun stamp the
// wall clock only after the no-subscriber check, so idle buses never
// read the clock.

func (b *bus) publishSpan(path string, d time.Duration) {
	if !b.active() {
		return
	}
	b.publish(Event{Kind: KindSpan, TimeNs: time.Now().UnixNano(), Name: path, DurNs: int64(d)})
}

func (b *bus) publishCounter(name string, delta, total int64) {
	if !b.active() {
		return
	}
	b.publish(Event{Kind: KindCounter, TimeNs: time.Now().UnixNano(), Name: name, Delta: delta, Value: total})
}

func (b *bus) publishGauge(name string, v int64) {
	if !b.active() {
		return
	}
	b.publish(Event{Kind: KindGauge, TimeNs: time.Now().UnixNano(), Name: name, Value: v})
}

func (b *bus) publishRun(name, state string) {
	if !b.active() {
		return
	}
	b.publish(Event{Kind: KindRun, TimeNs: time.Now().UnixNano(), Name: name, Label: state})
}

// Subscribe attaches a bounded subscription to the sink's event bus,
// receiving the kinds selected by mask through a ring of buf events
// (minimum 1). Publishers never block on it: events arriving while the
// ring is full are dropped and counted. Returns nil on a nil sink.
func (s *Sink) Subscribe(mask EventMask, buf int) *Subscription {
	if s == nil {
		return nil
	}
	return s.bus.subscribe(mask, buf)
}

// EventsDropped reports the total events dropped across all of the
// sink's subscriptions (a wall-clock accident, excluded from the
// determinism guarantee); zero on nil.
func (s *Sink) EventsDropped() int64 {
	if s == nil {
		return 0
	}
	return s.bus.dropped.Load()
}

// PublishRun emits a run lifecycle event (KindRun) on the bus: name
// identifies the run ("repro", "experiment:tab3"), state its transition
// ("start", "done", "cancelled"). No-op on a nil sink.
func (s *Sink) PublishRun(name, state string) {
	if s == nil {
		return
	}
	s.bus.publishRun(name, state)
}
