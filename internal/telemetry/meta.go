package telemetry

import (
	"runtime"
	"runtime/debug"
	"sync"
)

// Meta is the run-attribution block of a snapshot: how long the sink
// has been alive and which toolchain/commit produced the binary. It is
// what makes an archived run report (or a BENCH_*.json derived from
// one) attributable to a commit.
type Meta struct {
	// WallNs is the wall-clock age of the sink at snapshot time, in
	// nanoseconds (a runtime observation, not deterministic).
	WallNs int64 `json:"run_wall_ns"`
	// GoVersion is runtime.Version() of the producing binary.
	GoVersion string `json:"go_version,omitempty"`
	// VCSRevision is the vcs.revision build setting (with a "+dirty"
	// suffix when the working tree was modified); empty when the binary
	// was built without VCS stamping (go test binaries, some go run
	// invocations).
	VCSRevision string `json:"vcs_revision,omitempty"`
}

var (
	buildInfoOnce sync.Once
	buildRevision string
)

// BuildInfo returns the running binary's Go version and VCS revision
// (empty when not stamped). cmd/benchjson uses it to carry the same
// attribution into BENCH_*.json archives that snapshots carry in Meta.
func BuildInfo() (goVersion, vcsRevision string) {
	buildInfoOnce.Do(func() {
		bi, ok := debug.ReadBuildInfo()
		if !ok {
			return
		}
		var rev string
		dirty := false
		for _, s := range bi.Settings {
			switch s.Key {
			case "vcs.revision":
				rev = s.Value
			case "vcs.modified":
				dirty = s.Value == "true"
			}
		}
		if rev != "" && dirty {
			rev += "+dirty"
		}
		buildRevision = rev
	})
	return runtime.Version(), buildRevision
}
