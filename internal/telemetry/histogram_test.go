package telemetry

import (
	"sync"
	"testing"
	"time"
)

// TestHistogramBuckets: observations land in the right log2 buckets and
// the count/sum accounting is exact.
func TestHistogramBuckets(t *testing.T) {
	s := New()
	h := s.Histogram("x_seconds")
	if h != s.Histogram("x_seconds") {
		t.Fatal("histogram registry returned distinct instruments for one name")
	}
	h.Record(0)  // bucket 0
	h.Record(-5) // bucket 0 (non-positive)
	h.Record(1)  // bucket 1: [1,1]
	h.Record(2)  // bucket 2: [2,3]
	h.Record(3)  // bucket 2
	h.Record(4)  // bucket 3: [4,7]
	h.Observe(8 * time.Nanosecond) // bucket 4: [8,15]

	if h.Count() != 7 {
		t.Fatalf("count = %d, want 7", h.Count())
	}
	if h.Sum() != 0-5+1+2+3+4+8 {
		t.Fatalf("sum = %d, want 13", h.Sum())
	}
	sn := h.snap()
	want := []HistogramBucket{{0, 2}, {1, 1}, {2, 2}, {3, 1}, {4, 1}}
	if len(sn.Buckets) != len(want) {
		t.Fatalf("buckets = %+v, want %+v", sn.Buckets, want)
	}
	for i, b := range want {
		if sn.Buckets[i] != b {
			t.Fatalf("bucket %d = %+v, want %+v", i, sn.Buckets[i], b)
		}
	}
}

// TestHistogramQuantile: quantile estimates stay inside the containing
// bucket's bounds and order correctly.
func TestHistogramQuantile(t *testing.T) {
	var h Histogram
	if h.Quantile(0.5) != 0 {
		t.Fatal("empty histogram quantile nonzero")
	}
	// 90 fast observations (~1µs) and 10 slow (~1ms).
	for i := 0; i < 90; i++ {
		h.Record(1000)
	}
	for i := 0; i < 10; i++ {
		h.Record(1_000_000)
	}
	p50, p90, p99 := h.Quantile(0.50), h.Quantile(0.90), h.Quantile(0.99)
	if !(p50 >= 512 && p50 <= 1023) {
		t.Fatalf("p50 = %v, want inside [512, 1023] (the 1000ns bucket)", p50)
	}
	if !(p99 >= 524288 && p99 <= 1048575) {
		t.Fatalf("p99 = %v, want inside the 1ms bucket", p99)
	}
	if !(p50 <= p90 && p90 <= p99) {
		t.Fatalf("quantiles not monotone: p50=%v p90=%v p99=%v", p50, p90, p99)
	}

	sn := h.snap()
	if sn.Count != 100 {
		t.Fatalf("snap count = %d, want 100", sn.Count)
	}
	if sn.P99Seconds < sn.P50Seconds {
		t.Fatalf("snap quantiles inverted: %+v", sn)
	}
	if sn.SumSeconds != (90*1000+10*1_000_000)/1e9 {
		t.Fatalf("snap sum = %v", sn.SumSeconds)
	}
}

// TestHistogramEnabledZeroAlloc: recording into a live histogram must
// not allocate — it sits on per-window and per-placement paths.
func TestHistogramEnabledZeroAlloc(t *testing.T) {
	s := New()
	h := s.Histogram("hot_seconds")
	if n := testing.AllocsPerRun(1000, func() {
		h.Record(12345)
		h.Observe(678 * time.Microsecond)
	}); n != 0 {
		t.Fatalf("enabled histogram Record allocates %v/op, want 0", n)
	}
}

// TestHistogramConcurrent: concurrent recording loses nothing (run
// under -race in the tier-1 gate).
func TestHistogramConcurrent(t *testing.T) {
	var h Histogram
	const workers, per = 8, 10_000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			for i := int64(0); i < per; i++ {
				h.Record(seed + i)
			}
		}(int64(w * per))
	}
	wg.Wait()
	if h.Count() != workers*per {
		t.Fatalf("lost observations: %d, want %d", h.Count(), workers*per)
	}
}

// TestBucketBounds: the bounds used by quantile interpolation partition
// the positive integers.
func TestBucketBounds(t *testing.T) {
	if lo, hi := bucketBounds(0); lo != 0 || hi != 0 {
		t.Fatalf("bucket 0 bounds (%v, %v), want (0, 0)", lo, hi)
	}
	prevHi := 0.0
	for b := 1; b < 20; b++ {
		lo, hi := bucketBounds(b)
		if lo != prevHi+1 {
			t.Fatalf("bucket %d lo = %v, want %v (contiguous)", b, lo, prevHi+1)
		}
		if hi < lo {
			t.Fatalf("bucket %d bounds inverted: %v > %v", b, lo, hi)
		}
		prevHi = hi
	}
}

// TestHistogramInSnapshotAndRender: histograms appear in the JSON
// snapshot and the text report, apart from counters.
func TestHistogramInSnapshotAndRender(t *testing.T) {
	s := New()
	s.Histogram("diskcache.load_seconds").Observe(3 * time.Millisecond)
	s.Histogram("diskcache.load_seconds").Observe(5 * time.Millisecond)
	sn := s.Snapshot()
	hs, ok := sn.Histograms["diskcache.load_seconds"]
	if !ok || hs.Count != 2 {
		t.Fatalf("snapshot histograms: %+v", sn.Histograms)
	}
	if _, ok := sn.Counters["diskcache.load_seconds"]; ok {
		t.Fatal("histogram leaked into the counter map")
	}
}
