package wrapper

import (
	"math/rand"
	"testing"
	"testing/quick"

	"soctap/internal/soc"
)

func testCore() *soc.Core {
	return &soc.Core{
		Name: "t", Inputs: 10, Outputs: 6, Bidirs: 2,
		ScanChains: []int{40, 30, 30, 20, 10},
		Patterns:   50, CareDensity: 0.2, Seed: 1,
	}
}

func TestNewBounds(t *testing.T) {
	c := testCore()
	if _, err := New(c, 0); err == nil {
		t.Error("m=0 accepted")
	}
	if _, err := New(c, c.MaxWrapperChains()+1); err == nil {
		t.Error("m > max accepted")
	}
	if _, err := New(c, c.MaxWrapperChains()); err != nil {
		t.Errorf("m = max rejected: %v", err)
	}
}

func TestSingleChain(t *testing.T) {
	c := testCore()
	d, err := New(c, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Everything on one chain.
	if d.ScanIn != c.StimulusBits() {
		t.Errorf("si = %d, want %d", d.ScanIn, c.StimulusBits())
	}
	if d.ScanOut != c.ResponseBits() {
		t.Errorf("so = %d, want %d", d.ScanOut, c.ResponseBits())
	}
	if len(d.Chains[0].ScanChains) != 5 {
		t.Error("not all scan chains placed")
	}
}

func TestConservation(t *testing.T) {
	c := testCore()
	for m := 1; m <= c.MaxWrapperChains(); m++ {
		d, err := New(c, m)
		if err != nil {
			t.Fatal(err)
		}
		in, out, scan, chains := 0, 0, 0, 0
		for _, ch := range d.Chains {
			in += ch.InCells
			out += ch.OutCells
			scan += ch.ScanLen
			chains += len(ch.ScanChains)
		}
		if in != c.InCells() || out != c.OutCells() || scan != c.ScanCells() || chains != len(c.ScanChains) {
			t.Fatalf("m=%d: conservation violated: in %d out %d scan %d chains %d", m, in, out, scan, chains)
		}
	}
}

func TestBalanceQuality(t *testing.T) {
	// For a core with equal-length scan chains and divisible counts, the
	// partition must be perfectly balanced.
	c := &soc.Core{
		Name: "b", Inputs: 16, Outputs: 16,
		ScanChains: []int{25, 25, 25, 25, 25, 25, 25, 25},
		Patterns:   10, CareDensity: 0.5, Seed: 1,
	}
	d, err := New(c, 4)
	if err != nil {
		t.Fatal(err)
	}
	// 8 chains of 25 over 4 wrapper chains = 50 scan cells each; +4 input
	// cells each = 54.
	if d.ScanIn != 54 {
		t.Errorf("si = %d, want 54", d.ScanIn)
	}
	if d.ScanOut != 54 {
		t.Errorf("so = %d, want 54", d.ScanOut)
	}
}

func TestScanInMonotonicNonIncreasing(t *testing.T) {
	// si from BFD is not guaranteed monotonic in m in general, but for
	// our balanced-chain cores adding wrapper chains must never increase
	// si by more than the longest scan chain; sanity-check a weaker
	// envelope: si(m) >= ceil(total/m) (lower bound) and si(1) is total.
	c := soc.MustIndustrialCore("ckt-6")
	total := c.StimulusBits()
	for m := 1; m < 40; m++ {
		d, err := New(c, m)
		if err != nil {
			t.Fatal(err)
		}
		lower := (total + m - 1) / m
		if d.ScanIn < lower {
			t.Fatalf("m=%d: si %d below packing lower bound %d", m, d.ScanIn, lower)
		}
	}
}

func TestTestTimeFormula(t *testing.T) {
	// Hand-check the classic formula on a tiny core: 1 scan chain of 4,
	// 2 inputs, 1 output, m=1: si=6, so=5, p=3.
	c := &soc.Core{Name: "f", Inputs: 2, Outputs: 1, ScanChains: []int{4},
		Patterns: 3, CareDensity: 0.5, Seed: 1}
	d, err := New(c, 1)
	if err != nil {
		t.Fatal(err)
	}
	if d.ScanIn != 6 || d.ScanOut != 5 {
		t.Fatalf("si/so = %d/%d, want 6/5", d.ScanIn, d.ScanOut)
	}
	want := int64((1+6)*3 + 5)
	if got := d.TestTime(); got != want {
		t.Errorf("TestTime = %d, want %d", got, want)
	}
	if got := d.StimulusVolume(); got != 3*6*1 {
		t.Errorf("StimulusVolume = %d, want 18", got)
	}
}

func TestTestTimeDecreasesBroadly(t *testing.T) {
	c := soc.MustIndustrialCore("ckt-2")
	t1, _ := New(c, 1)
	t16, _ := New(c, 16)
	t40, _ := New(c, 40)
	if !(t1.TestTime() > t16.TestTime() && t16.TestTime() > t40.TestTime()) {
		t.Errorf("test time not broadly decreasing: %d, %d, %d",
			t1.TestTime(), t16.TestTime(), t40.TestTime())
	}
}

func TestStimulusMapComplete(t *testing.T) {
	c := testCore()
	for _, m := range []int{1, 3, 7, c.MaxWrapperChains()} {
		d, err := New(c, m)
		if err != nil {
			t.Fatal(err)
		}
		refs := d.StimulusMap()
		if len(refs) != c.StimulusBits() {
			t.Fatalf("m=%d: map covers %d cells, want %d", m, len(refs), c.StimulusBits())
		}
		// Every (chain, depth) must be unique, within range, and the
		// per-chain depth set must be exactly [0, stimulusLen).
		seen := make(map[[2]int32]bool)
		perChain := make([]int, m)
		for flat, r := range refs {
			if r.Chain < 0 || int(r.Chain) >= m {
				t.Fatalf("cell %d: chain %d out of range", flat, r.Chain)
			}
			if r.Depth < 0 || int(r.Depth) >= d.Chains[r.Chain].StimulusLen() {
				t.Fatalf("cell %d: depth %d out of range for chain %d (len %d)",
					flat, r.Depth, r.Chain, d.Chains[r.Chain].StimulusLen())
			}
			key := [2]int32{r.Chain, r.Depth}
			if seen[key] {
				t.Fatalf("duplicate placement %v", key)
			}
			seen[key] = true
			perChain[r.Chain]++
		}
		for ci, n := range perChain {
			if n != d.Chains[ci].StimulusLen() {
				t.Fatalf("chain %d holds %d cells, want %d", ci, n, d.Chains[ci].StimulusLen())
			}
		}
	}
}

func TestCombinationalCore(t *testing.T) {
	c := &soc.Core{Name: "comb", Inputs: 32, Outputs: 32, Patterns: 12,
		CareDensity: 0.7, Seed: 1}
	d, err := New(c, 8)
	if err != nil {
		t.Fatal(err)
	}
	if d.ScanIn != 4 { // 32 inputs / 8 chains
		t.Errorf("si = %d, want 4", d.ScanIn)
	}
	if d.ScanOut != 4 {
		t.Errorf("so = %d, want 4", d.ScanOut)
	}
	if c.MaxWrapperChains() != 32 {
		t.Errorf("MaxWrapperChains = %d, want 32", c.MaxWrapperChains())
	}
}

func TestWaterFill(t *testing.T) {
	cases := []struct {
		heights []int
		n       int
		wantMax int
	}{
		{[]int{0, 0, 0}, 9, 3},
		{[]int{5, 0, 0}, 4, 5},  // fill the two low bins first
		{[]int{5, 0, 0}, 11, 6}, // raise to 5 costs 10, 1 cell left -> one bin reaches 6
		{[]int{3, 3, 3}, 0, 3},
		{[]int{1}, 7, 8},
	}
	for _, cse := range cases {
		add := waterFill(cse.heights, cse.n)
		total := 0
		maxH := 0
		for i, a := range add {
			if a < 0 {
				t.Fatalf("negative addition %v", add)
			}
			total += a
			if h := cse.heights[i] + a; h > maxH {
				maxH = h
			}
		}
		if total != cse.n {
			t.Errorf("waterFill(%v,%d): distributed %d", cse.heights, cse.n, total)
		}
		if maxH != cse.wantMax {
			t.Errorf("waterFill(%v,%d): max height %d, want %d", cse.heights, cse.n, maxH, cse.wantMax)
		}
	}
}

// Property: water-filling is optimal — the resulting max height equals
// the greedy one-at-a-time baseline.
func TestQuickWaterFillOptimal(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nBins := rng.Intn(10) + 1
		heights := make([]int, nBins)
		for i := range heights {
			heights[i] = rng.Intn(20)
		}
		n := rng.Intn(100)

		add := waterFill(heights, n)
		got := 0
		total := 0
		for i := range heights {
			if heights[i]+add[i] > got {
				got = heights[i] + add[i]
			}
			total += add[i]
		}
		if total != n {
			return false
		}

		// Greedy baseline: drop cells one at a time on the lowest bin.
		h := append([]int(nil), heights...)
		for k := 0; k < n; k++ {
			lo := 0
			for i := range h {
				if h[i] < h[lo] {
					lo = i
				}
			}
			h[lo]++
		}
		want := 0
		for _, v := range h {
			if v > want {
				want = v
			}
		}
		return got == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: for random cores and all feasible m, the design conserves
// cells and si/so match the chain maxima.
func TestQuickDesignInvariants(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nChains := rng.Intn(6)
		chains := make([]int, nChains)
		for i := range chains {
			chains[i] = rng.Intn(50) + 1
		}
		c := &soc.Core{
			Name:   "q",
			Inputs: rng.Intn(20) + 1, Outputs: rng.Intn(20),
			ScanChains: chains, Patterns: rng.Intn(20) + 1,
			CareDensity: 0.5, Seed: seed,
		}
		for m := 1; m <= c.MaxWrapperChains(); m += 1 + rng.Intn(3) {
			d, err := New(c, m)
			if err != nil {
				return false
			}
			si, so, scan := 0, 0, 0
			for _, ch := range d.Chains {
				if l := ch.StimulusLen(); l > si {
					si = l
				}
				if l := ch.ResponseLen(); l > so {
					so = l
				}
				scan += ch.ScanLen
			}
			if si != d.ScanIn || so != d.ScanOut || scan != c.ScanCells() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func BenchmarkDesignIndustrial(b *testing.B) {
	c := soc.MustIndustrialCore("ckt-7")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := New(c, 200); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkStimulusMap(b *testing.B) {
	c := soc.MustIndustrialCore("ckt-7")
	d, err := New(c, 200)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = d.StimulusMap()
	}
}

func TestStimulusSegmentsMatchMap(t *testing.T) {
	cores := []*soc.Core{
		testCore(),
		{Name: "comb", Inputs: 9, Outputs: 4, Patterns: 5, CareDensity: 0.5, Seed: 2},
		{Name: "wide", Inputs: 3, Outputs: 1, ScanChains: []int{17, 17, 5, 1, 1, 90}, Patterns: 7, CareDensity: 0.1, Seed: 3},
	}
	for _, c := range cores {
		for m := 1; m <= c.MaxWrapperChains(); m++ {
			d, err := New(c, m)
			if err != nil {
				t.Fatal(err)
			}
			refs := d.StimulusMap()
			segs := d.StimulusSegments()
			covered := 0
			prevFlat := -1
			for _, s := range segs {
				if s.FlatStart <= prevFlat {
					t.Fatalf("%s m=%d: segments not ordered by FlatStart", c.Name, m)
				}
				prevFlat = s.FlatStart
				for k := 0; k < s.Len; k++ {
					want := refs[s.FlatStart+k]
					if int(want.Chain) != s.Chain || int(want.Depth) != s.DepthStart+k {
						t.Fatalf("%s m=%d: segment %+v disagrees with map at flat %d: %+v",
							c.Name, m, s, s.FlatStart+k, want)
					}
				}
				covered += s.Len
			}
			if covered != len(refs) {
				t.Fatalf("%s m=%d: segments cover %d cells, map has %d", c.Name, m, covered, len(refs))
			}
		}
	}
}
