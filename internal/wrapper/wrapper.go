// Package wrapper implements IEEE-1500-style test wrapper design for
// embedded cores: partitioning a core's internal scan chains and wrapper
// input/output cells into m balanced wrapper chains, following the
// Design_wrapper heuristic of Iyengar, Chakrabarty and Marinissen
// (ITC'01 / JETTA'02). The resulting scan-in/scan-out depths drive both
// the classic (uncompressed) test-time formula
//
//	τ = (1 + max(si, so))·p + min(si, so)
//
// and, through the stimulus map, the slice structure seen by the
// selective-encoding decompressor.
package wrapper

import (
	"fmt"
	"slices"
	"sync"

	"soctap/internal/soc"
)

// Chain is one wrapper chain: an ordered concatenation of wrapper input
// cells, internal scan chains, and wrapper output cells.
type Chain struct {
	InCells    int   // wrapper input cells at the head of the chain
	ScanChains []int // indices into the core's ScanChains, in chain order
	OutCells   int   // wrapper output cells at the tail
	ScanLen    int   // total internal scan cells on this chain
}

// StimulusLen returns the chain's scan-in length: input cells plus scan
// cells.
func (c *Chain) StimulusLen() int { return c.InCells + c.ScanLen }

// ResponseLen returns the chain's scan-out length: scan cells plus output
// cells.
func (c *Chain) ResponseLen() int { return c.OutCells + c.ScanLen }

// Design is a complete wrapper configuration for one core.
type Design struct {
	Core    *soc.Core
	M       int // number of wrapper chains
	Chains  []Chain
	ScanIn  int // si: longest scan-in (stimulus) chain
	ScanOut int // so: longest scan-out (response) chain

	refsOnce sync.Once
	refs     []CellRef

	segsOnce sync.Once
	segs     []StimulusSegment
}

// New builds a wrapper design with m wrapper chains using best-fit-
// decreasing packing of scan chains and water-filling of I/O cells. m
// must be in [1, core.MaxWrapperChains()].
func New(core *soc.Core, m int) (*Design, error) {
	if m < 1 {
		return nil, fmt.Errorf("wrapper: %s: m = %d, must be >= 1", core.Name, m)
	}
	if max := core.MaxWrapperChains(); m > max {
		return nil, fmt.Errorf("wrapper: %s: m = %d exceeds max useful wrapper chains %d", core.Name, m, max)
	}

	d := &Design{Core: core, M: m, Chains: make([]Chain, m)}

	// Step 1: best-fit-decreasing on internal scan chains. Sort scan
	// chains by length (descending) and repeatedly place the next chain
	// on the wrapper chain with minimum accumulated scan length.
	type sc struct{ idx, len int }
	scs := make([]sc, len(core.ScanChains))
	for i, l := range core.ScanChains {
		scs[i] = sc{i, l}
	}
	slices.SortFunc(scs, func(a, b sc) int {
		if a.len != b.len {
			return b.len - a.len
		}
		return a.idx - b.idx
	})
	// Min-load priority queue as a plain typed heap. The (load, chain)
	// order is a strict total order, so the popped minimum is unique at
	// every step and the assignment matches any correct heap
	// implementation. chain i starts at slot i with load 0, which is
	// already a valid min-heap.
	h := make(loadHeap, m)
	for i := range h {
		h[i].chain = i
	}
	for _, s := range scs {
		cl := h[0]
		d.Chains[cl.chain].ScanChains = append(d.Chains[cl.chain].ScanChains, s.idx)
		d.Chains[cl.chain].ScanLen += s.len
		h[0].load += s.len
		h.siftDown(0)
	}

	// Step 2: water-fill wrapper input cells over scan-in heights.
	inHeights := make([]int, m)
	for i := range d.Chains {
		inHeights[i] = d.Chains[i].ScanLen
	}
	for i, add := range waterFill(inHeights, core.InCells()) {
		d.Chains[i].InCells = add
	}

	// Step 3: water-fill wrapper output cells over scan-out heights.
	outHeights := make([]int, m)
	for i := range d.Chains {
		outHeights[i] = d.Chains[i].ScanLen
	}
	for i, add := range waterFill(outHeights, core.OutCells()) {
		d.Chains[i].OutCells = add
	}

	for i := range d.Chains {
		if l := d.Chains[i].StimulusLen(); l > d.ScanIn {
			d.ScanIn = l
		}
		if l := d.Chains[i].ResponseLen(); l > d.ScanOut {
			d.ScanOut = l
		}
	}
	return d, nil
}

// chainLoad/loadHeap implement the BFD min-load priority queue without
// container/heap, whose interface{}-based Push/Pop would box a
// chainLoad on every scan-chain placement and dominate the allocation
// profile of the (w,m) sweep.
type chainLoad struct{ chain, load int }

type loadHeap []chainLoad

func (h loadHeap) less(i, j int) bool {
	if h[i].load != h[j].load {
		return h[i].load < h[j].load
	}
	return h[i].chain < h[j].chain
}

// siftDown restores the heap property after h[i]'s key increased.
func (h loadHeap) siftDown(i int) {
	for {
		l := 2*i + 1
		if l >= len(h) {
			return
		}
		min := l
		if r := l + 1; r < len(h) && h.less(r, l) {
			min = r
		}
		if !h.less(min, i) {
			return
		}
		h[i], h[min] = h[min], h[i]
		i = min
	}
}

// waterFill distributes n unit cells over bins with the given initial
// heights so that the resulting maximum height is minimized (classic
// water-filling). It returns the per-bin additions.
func waterFill(heights []int, n int) []int {
	add := make([]int, len(heights))
	if n <= 0 || len(heights) == 0 {
		return add
	}
	idx := make([]int, len(heights))
	for i := range idx {
		idx[i] = i
	}
	slices.SortFunc(idx, func(a, b int) int {
		if heights[a] != heights[b] {
			return heights[a] - heights[b]
		}
		return a - b
	})

	// Raise a waterline over the sorted bins: absorb whole tiers while
	// the budget allows, then spread the remainder evenly.
	level := heights[idx[0]]
	filled := 0 // cells already allocated below the waterline
	count := 1  // bins at or below the waterline
	for count < len(idx) {
		next := heights[idx[count]]
		cost := (next - level) * count
		if filled+cost >= n {
			break
		}
		filled += cost
		level = next
		count++
	}
	// Spread the remaining cells over `count` bins starting at `level`.
	remaining := n - filled
	per := remaining / count
	extra := remaining % count
	for i := 0; i < count; i++ {
		b := idx[i]
		target := level + per
		if i < extra {
			target++
		}
		add[b] = target - heights[b]
	}
	return add
}

// TestTime returns the core test application time in clock cycles for
// this wrapper design without compression, using the standard formula
// τ = (1 + max(si,so))·p + min(si,so) with p test patterns.
func (d *Design) TestTime() int64 {
	p := int64(d.Core.Patterns)
	si, so := int64(d.ScanIn), int64(d.ScanOut)
	return (1+max(si, so))*p + min(si, so)
}

// StimulusVolume returns the ATE stimulus storage in bits for this
// design without compression: per pattern, si slices of m bits each.
func (d *Design) StimulusVolume() int64 {
	return int64(d.Core.Patterns) * int64(d.ScanIn) * int64(d.M)
}

// CellRef locates one stimulus cell inside a wrapper design.
type CellRef struct {
	Chain int32 // wrapper chain index
	Depth int32 // position from the chain head; loaded at slice `Depth`
}

// StimulusMap returns, for every flat stimulus cell of the core, its
// wrapper chain and depth. Flat stimulus layout: wrapper input cells
// first (in chain order), then the core's scan chains in declaration
// order. Depth d means the cell receives its value in scan-in slice d of
// each pattern.
//
// The map is computed once per design and the same slice is returned to
// every caller (it is safe for concurrent use); callers must treat it
// as read-only.
func (d *Design) StimulusMap() []CellRef {
	d.refsOnce.Do(func() { d.refs = d.buildStimulusMap() })
	return d.refs
}

func (d *Design) buildStimulusMap() []CellRef {
	refs := make([]CellRef, d.Core.StimulusBits())

	// Wrapper input cells: chains take their InCells count in chain
	// order from the flat prefix [0, InCells).
	flat := 0
	for ci := range d.Chains {
		for k := 0; k < d.Chains[ci].InCells; k++ {
			refs[flat] = CellRef{Chain: int32(ci), Depth: int32(k)}
			flat++
		}
	}

	// Scan chains: flat offsets follow declaration order; chain-internal
	// depth follows the order the wrapper concatenates them, after the
	// input cells.
	scanFlatStart := make([]int, len(d.Core.ScanChains))
	off := d.Core.InCells()
	for i, l := range d.Core.ScanChains {
		scanFlatStart[i] = off
		off += l
	}
	for ci := range d.Chains {
		depth := d.Chains[ci].InCells
		for _, scIdx := range d.Chains[ci].ScanChains {
			start := scanFlatStart[scIdx]
			for k := 0; k < d.Core.ScanChains[scIdx]; k++ {
				refs[start+k] = CellRef{Chain: int32(ci), Depth: int32(depth)}
				depth++
			}
		}
	}
	return refs
}

// StimulusSegment is a maximal run of flat stimulus cells that land on
// one wrapper chain at consecutive depths: flat cells
// [FlatStart, FlatStart+Len) map to chain Chain at depths
// [DepthStart, DepthStart+Len). The whole stimulus map decomposes into
// one segment per chain's input-cell prefix plus one per internal scan
// chain, so bulk bit-copies can replace per-cell CellRef walks.
type StimulusSegment struct {
	FlatStart  int
	Chain      int
	DepthStart int
	Len        int
}

// StimulusSegments returns the segment decomposition of StimulusMap,
// ordered by FlatStart. Like StimulusMap it is computed once and shared;
// callers must treat it as read-only.
func (d *Design) StimulusSegments() []StimulusSegment {
	d.segsOnce.Do(func() { d.segs = d.buildStimulusSegments() })
	return d.segs
}

func (d *Design) buildStimulusSegments() []StimulusSegment {
	segs := make([]StimulusSegment, 0, len(d.Chains)+len(d.Core.ScanChains))

	flat := 0
	for ci := range d.Chains {
		if n := d.Chains[ci].InCells; n > 0 {
			segs = append(segs, StimulusSegment{FlatStart: flat, Chain: ci, DepthStart: 0, Len: n})
			flat += n
		}
	}

	scanFlatStart := make([]int, len(d.Core.ScanChains))
	off := d.Core.InCells()
	for i, l := range d.Core.ScanChains {
		scanFlatStart[i] = off
		off += l
	}
	type chainSeg struct{ flatStart, chain, depthStart, length int }
	var scanSegs []chainSeg
	for ci := range d.Chains {
		depth := d.Chains[ci].InCells
		for _, scIdx := range d.Chains[ci].ScanChains {
			l := d.Core.ScanChains[scIdx]
			scanSegs = append(scanSegs, chainSeg{scanFlatStart[scIdx], ci, depth, l})
			depth += l
		}
	}
	slices.SortFunc(scanSegs, func(a, b chainSeg) int { return a.flatStart - b.flatStart })
	for _, s := range scanSegs {
		segs = append(segs, StimulusSegment{FlatStart: s.flatStart, Chain: s.chain, DepthStart: s.depthStart, Len: s.length})
	}
	return segs
}
