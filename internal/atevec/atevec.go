// Package atevec composes the SOC-level ATE vector image from an
// optimized test plan: per TAM bus, the sequence of per-core stimulus
// streams (packed compressed codewords or raw scan slices) laid out at
// their scheduled start cycles. This is the artifact an ATE program
// generator consumes; its statistics make the paper's memory argument
// concrete — channel depth, stored bits, and bus utilization.
package atevec

import (
	"fmt"

	"soctap/internal/bitvec"
	"soctap/internal/core"
	"soctap/internal/dictenc"
	"soctap/internal/selenc"
	"soctap/internal/soc"
	"soctap/internal/wrapper"
)

// Segment is one core's stimulus stream on a bus.
type Segment struct {
	Core   string
	Start  int64 // scheduled start cycle
	Cycles int64 // full test span (stimulus delivery + capture + shift-out overlap)
	Wires  int   // wires carrying stimulus (w for compressed, m for direct)
	// Stream is the exact bit traffic of the segment's stimulus part,
	// in delivery order.
	Stream *bitvec.Vector
}

// Bus is the vector image of one TAM bus.
type Bus struct {
	Width    int
	Segments []Segment
}

// Image is the complete SOC vector image.
type Image struct {
	Design string
	Depth  int64 // schedule makespan = vector depth
	Buses  []Bus
}

// Build composes the image for an optimized plan by re-encoding every
// core's test set under its chosen configuration.
func Build(res *core.Result) (*Image, error) {
	im := &Image{Design: res.SOC.Name, Depth: res.TestTime}
	im.Buses = make([]Bus, len(res.Partition))
	for b, w := range res.Partition {
		im.Buses[b].Width = w
	}
	for _, ch := range res.Choices {
		c := res.SOC.CoreByName(ch.Core)
		if c == nil {
			return nil, fmt.Errorf("atevec: unknown core %q", ch.Core)
		}
		stream, err := coreStream(c, ch.Config)
		if err != nil {
			return nil, err
		}
		im.Buses[ch.Bus].Segments = append(im.Buses[ch.Bus].Segments, Segment{
			Core:   ch.Core,
			Start:  ch.Start,
			Cycles: ch.Config.Time,
			Wires:  ch.Config.Width,
			Stream: stream,
		})
	}
	return im, nil
}

// coreStream re-encodes one core's stimuli under a configuration.
// Patterns are pulled one at a time from the core's cube stream: the
// selective-encoding and direct codecs hold only O(pattern) scratch
// beyond the output stream itself, so giant cores re-encode without
// their test set ever being resident. (The dictionary codec inherently
// needs every slice to build its dictionary and keeps them all.)
func coreStream(c *soc.Core, cfg core.Config) (*bitvec.Vector, error) {
	d, err := wrapper.New(c, cfg.M)
	if err != nil {
		return nil, err
	}
	src, err := c.TestSource()
	if err != nil {
		return nil, err
	}
	refs := d.StimulusMap()
	si := d.ScanIn

	switch cfg.Codec {
	case core.CodecSelEnc:
		// Scatter each pattern's care bits into reusable per-slice word
		// planes and encode straight off the masks — the mask encoder
		// needs no sorted care lists and the codeword buffer grows in
		// place via the append form.
		nw := (cfg.M + 63) / 64
		careW := make([]uint64, si*nw)
		valueW := make([]uint64, si*nw)
		var cws []selenc.Codeword
		for {
			cb, ok := src.Next()
			if !ok {
				break
			}
			clear(careW)
			clear(valueW)
			for _, bit := range cb.Care {
				r := refs[bit.Pos]
				wi := int(r.Depth)*nw + int(r.Chain)>>6
				mask := uint64(1) << uint(r.Chain&63)
				careW[wi] |= mask
				if bit.Value {
					valueW[wi] |= mask
				}
			}
			for depth := 0; depth < si; depth++ {
				cws = selenc.AppendEncodeSliceMask(cws, cfg.M,
					careW[depth*nw:(depth+1)*nw], valueW[depth*nw:(depth+1)*nw])
			}
		}
		return selenc.PackStream(cfg.M, cws), nil
	case core.CodecDict:
		var all []dictenc.Slice
		for {
			cb, ok := src.Next()
			if !ok {
				break
			}
			slices := make([][]selenc.CareBit, si)
			for _, bit := range cb.Care {
				r := refs[bit.Pos]
				slices[r.Depth] = append(slices[r.Depth], selenc.CareBit{Pos: int(r.Chain), Value: bit.Value})
			}
			for _, s := range slices {
				sortCare(s)
				all = append(all, s)
			}
		}
		dict, err := dictenc.Build(cfg.M, cfg.DictWords, all)
		if err != nil {
			return nil, err
		}
		var bools []bool
		for _, s := range all {
			bools = dict.Encode(bools, s)
		}
		v := bitvec.New(len(bools))
		for i, b := range bools {
			v.Set(i, b)
		}
		return v, nil
	case core.CodecDirect:
		// Raw scan slices, X filled with 0, slice-major delivery. Each
		// care bit's output position follows from its (chain, depth)
		// cell directly, so no per-slice staging is needed.
		v := bitvec.New(src.Len() * si * cfg.M)
		for pi := 0; ; pi++ {
			cb, ok := src.Next()
			if !ok {
				break
			}
			base := pi * si * cfg.M
			for _, bit := range cb.Care {
				if r := refs[bit.Pos]; bit.Value {
					v.Set(base+int(r.Depth)*cfg.M+int(r.Chain), true)
				}
			}
		}
		return v, nil
	default:
		return nil, fmt.Errorf("atevec: unknown codec %q for core %s", cfg.Codec, c.Name)
	}
}

func sortCare(care []selenc.CareBit) {
	for i := 1; i < len(care); i++ {
		for j := i; j > 0 && care[j-1].Pos > care[j].Pos; j-- {
			care[j-1], care[j] = care[j], care[j-1]
		}
	}
}

// Stats summarizes the image's ATE footprint.
type Stats struct {
	Depth        int64   // vector depth (schedule makespan)
	ChannelBits  int64   // total capacity: Σ busWidth × depth
	StoredBits   int64   // stimulus bits actually stored
	Utilization  float64 // StoredBits / ChannelBits
	Segments     int
	WidestStream int64 // largest single-core stream, bits
}

// ComputeStats derives the image statistics.
func (im *Image) ComputeStats() Stats {
	st := Stats{Depth: im.Depth}
	for _, b := range im.Buses {
		st.ChannelBits += int64(b.Width) * im.Depth
		for _, s := range b.Segments {
			st.Segments++
			bits := int64(s.Stream.Len())
			st.StoredBits += bits
			if bits > st.WidestStream {
				st.WidestStream = bits
			}
		}
	}
	if st.ChannelBits > 0 {
		st.Utilization = float64(st.StoredBits) / float64(st.ChannelBits)
	}
	return st
}

// Validate checks the image's structural invariants: segments within
// the schedule depth, no overlap on a bus, stream wires within bus
// width, and stream lengths consistent with the per-core wire counts.
func (im *Image) Validate() error {
	for bi, b := range im.Buses {
		var end int64
		for _, s := range sortedByStart(b.Segments) {
			if s.Start < end {
				return fmt.Errorf("atevec: bus %d: segment %s overlaps previous", bi, s.Core)
			}
			end = s.Start + s.Cycles
			if end > im.Depth {
				return fmt.Errorf("atevec: bus %d: segment %s exceeds image depth", bi, s.Core)
			}
			if s.Wires > b.Width {
				return fmt.Errorf("atevec: bus %d: segment %s uses %d wires on a %d-wide bus",
					bi, s.Core, s.Wires, b.Width)
			}
			// The stimulus stream must fit the segment's delivery
			// window at its wire count.
			if int64(s.Stream.Len()) > s.Cycles*int64(s.Wires) {
				return fmt.Errorf("atevec: bus %d: segment %s stream (%d bits) exceeds window (%d cycles x %d wires)",
					bi, s.Core, s.Stream.Len(), s.Cycles, s.Wires)
			}
		}
	}
	return nil
}

func sortedByStart(segs []Segment) []Segment {
	out := append([]Segment(nil), segs...)
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j-1].Start > out[j].Start; j-- {
			out[j-1], out[j] = out[j], out[j-1]
		}
	}
	return out
}
