package atevec

import (
	"testing"

	"soctap/internal/core"
	"soctap/internal/selenc"
	"soctap/internal/soc"
)

func imageSOC() *soc.SOC {
	mk := func(name string, nChains, chainLen, pat int, density float64, seed int64) *soc.Core {
		chains := make([]int, nChains)
		for i := range chains {
			chains[i] = chainLen
		}
		return &soc.Core{
			Name: name, Inputs: 12, Outputs: 10,
			ScanChains: chains, Patterns: pat,
			CareDensity: density, Clustering: 0.8, Seed: seed,
		}
	}
	return &soc.SOC{Name: "imgsoc", Cores: []*soc.Core{
		mk("x", 20, 25, 25, 0.03, 51),
		mk("y", 16, 20, 20, 0.05, 52),
		{Name: "z", Inputs: 20, Outputs: 10, ScanChains: []int{30, 30},
			Patterns: 15, CareDensity: 0.5, Clustering: 0.3, Seed: 53},
	}}
}

func optimized(t *testing.T, opts core.Options) *core.Result {
	t.Helper()
	if opts.Tables.MaxWidth == 0 {
		opts.Tables = core.TableOptions{MaxWidth: 14}
	}
	res, err := core.Optimize(imageSOC(), 14, opts)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestBuildAndValidate(t *testing.T) {
	res := optimized(t, core.Options{Style: core.StyleTDCPerCore})
	im, err := Build(res)
	if err != nil {
		t.Fatal(err)
	}
	if err := im.Validate(); err != nil {
		t.Fatal(err)
	}
	if im.Depth != res.TestTime {
		t.Errorf("depth %d != makespan %d", im.Depth, res.TestTime)
	}
	st := im.ComputeStats()
	if st.Segments != len(res.SOC.Cores) {
		t.Errorf("%d segments", st.Segments)
	}
	if st.Utilization <= 0 || st.Utilization > 1 {
		t.Errorf("utilization %f out of range", st.Utilization)
	}
	if st.StoredBits <= 0 || st.ChannelBits < st.StoredBits {
		t.Errorf("stats inconsistent: %+v", st)
	}
}

func TestStreamsMatchPlanVolumes(t *testing.T) {
	// For compressed cores the stream length must equal the analytic
	// volume; the direct cores store si×m bits per pattern.
	res := optimized(t, core.Options{Style: core.StyleTDCPerCore})
	im, err := Build(res)
	if err != nil {
		t.Fatal(err)
	}
	streams := map[string]int64{}
	for _, b := range im.Buses {
		for _, s := range b.Segments {
			streams[s.Core] = int64(s.Stream.Len())
		}
	}
	for _, ch := range res.Choices {
		got := streams[ch.Core]
		if ch.Config.UseTDC {
			if got != ch.Config.Volume {
				t.Errorf("%s: stream %d != analytic volume %d", ch.Core, got, ch.Config.Volume)
			}
		} else if got != ch.Config.Volume {
			t.Errorf("%s: direct stream %d != stimulus volume %d", ch.Core, got, ch.Config.Volume)
		}
	}
}

func TestCompressedStreamsDecode(t *testing.T) {
	// Every selective-encoding segment must unpack and decode cleanly
	// into the right number of slices.
	res := optimized(t, core.Options{Style: core.StyleTDCPerCore})
	im, err := Build(res)
	if err != nil {
		t.Fatal(err)
	}
	cfgByCore := map[string]core.Config{}
	for _, ch := range res.Choices {
		cfgByCore[ch.Core] = ch.Config
	}
	for _, b := range im.Buses {
		for _, s := range b.Segments {
			cfg := cfgByCore[s.Core]
			if cfg.Codec != core.CodecSelEnc {
				continue
			}
			cws, err := selenc.UnpackStream(cfg.M, s.Stream)
			if err != nil {
				t.Fatalf("%s: unpack: %v", s.Core, err)
			}
			slices, err := selenc.DecodeStream(cfg.M, cws)
			if err != nil {
				t.Fatalf("%s: decode: %v", s.Core, err)
			}
			c := res.SOC.CoreByName(s.Core)
			ts, _ := c.TestSet()
			if len(slices)%ts.Len() != 0 {
				t.Errorf("%s: %d slices not a multiple of %d patterns", s.Core, len(slices), ts.Len())
			}
		}
	}
}

func TestDictImage(t *testing.T) {
	res := optimized(t, core.Options{Style: core.StyleTDCPerCore, EnableDict: true, DictSizes: []int{16}})
	im, err := Build(res)
	if err != nil {
		t.Fatal(err)
	}
	if err := im.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestNoTDCImageUtilization(t *testing.T) {
	// Direct-access images are dense: utilization well above the
	// compressed plan's.
	direct := optimized(t, core.Options{Style: core.StyleNoTDC})
	perCore := optimized(t, core.Options{Style: core.StyleTDCPerCore})
	di, err := Build(direct)
	if err != nil {
		t.Fatal(err)
	}
	ci, err := Build(perCore)
	if err != nil {
		t.Fatal(err)
	}
	dStats, cStats := di.ComputeStats(), ci.ComputeStats()
	if cStats.StoredBits >= dStats.StoredBits {
		t.Errorf("compression did not shrink stored bits: %d vs %d",
			cStats.StoredBits, dStats.StoredBits)
	}
}

func TestBuildUnknownCore(t *testing.T) {
	res := optimized(t, core.Options{Style: core.StyleTDCPerCore})
	res.Choices[0].Core = "ghost"
	if _, err := Build(res); err == nil {
		t.Error("unknown core accepted")
	}
}
