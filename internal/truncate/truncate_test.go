package truncate

import (
	"math/rand"
	"testing"
	"testing/quick"

	"soctap/internal/soc"
)

func truncSOC() *soc.SOC {
	mk := func(name string, cells, pat int, seed int64) *soc.Core {
		return &soc.Core{
			Name: name, Inputs: 8, Outputs: 8,
			ScanChains: []int{cells / 2, cells / 2},
			Patterns:   pat, CareDensity: 0.1, DensityDecay: 1, Seed: seed,
		}
	}
	return &soc.SOC{Name: "tr", Cores: []*soc.Core{
		mk("a", 400, 30, 1),
		mk("b", 200, 20, 2),
		mk("c", 600, 25, 3),
	}}
}

func TestPlanUnlimitedKeepsEverything(t *testing.T) {
	s := truncSOC()
	res, err := Plan(s, 1<<40, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, cb := range res.Cores {
		if cb.Patterns != cb.Total {
			t.Errorf("%s: kept %d of %d despite unlimited budget", cb.Core, cb.Patterns, cb.Total)
		}
		if cb.Quality < 0.999 {
			t.Errorf("%s: quality %f with everything kept", cb.Core, cb.Quality)
		}
	}
	if res.Quality < 0.999 {
		t.Errorf("total quality %f", res.Quality)
	}
}

func TestPlanZeroBudget(t *testing.T) {
	s := truncSOC()
	res, err := Plan(s, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Bits != 0 || res.Quality != 0 {
		t.Errorf("zero budget kept %d bits, quality %f", res.Bits, res.Quality)
	}
	if _, err := Plan(s, -1, nil); err == nil {
		t.Error("negative budget accepted")
	}
}

func TestPlanRespectsBudget(t *testing.T) {
	s := truncSOC()
	full, err := Plan(s, 1<<40, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, frac := range []int64{2, 4, 10} {
		budget := full.Bits / frac
		res, err := Plan(s, budget, nil)
		if err != nil {
			t.Fatal(err)
		}
		if res.Bits > budget {
			t.Errorf("budget %d exceeded: %d", budget, res.Bits)
		}
		// A meaningful share of the budget is used (greedy shouldn't
		// leave most of it idle when patterns remain).
		if res.Bits < budget*8/10 {
			t.Errorf("budget %d underused: %d", budget, res.Bits)
		}
	}
}

func TestDecayMakesTruncationCheap(t *testing.T) {
	// With strong density decay, half the memory must retain much more
	// than half the quality — the whole point of ordered truncation.
	s := truncSOC()
	full, _ := Plan(s, 1<<40, nil)
	half, err := Plan(s, full.Bits/2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if half.Quality < 0.6 {
		t.Errorf("half the memory retained only %.2f quality", half.Quality)
	}
}

func TestPlanKeepsPrefix(t *testing.T) {
	// Kept counts must be prefixes: the result only reports counts, so
	// check monotonicity of quality with budget instead.
	s := truncSOC()
	prev := -1.0
	full, _ := Plan(s, 1<<40, nil)
	for _, frac := range []int64{8, 4, 2, 1} {
		res, err := Plan(s, full.Bits/frac, nil)
		if err != nil {
			t.Fatal(err)
		}
		if res.Quality < prev {
			t.Errorf("quality decreased with a larger budget: %f -> %f", prev, res.Quality)
		}
		prev = res.Quality
	}
}

func TestCustomCost(t *testing.T) {
	// A cost model that makes core b free should let it keep everything
	// even under a tiny budget.
	s := truncSOC()
	cost := func(c *soc.Core, j int) int64 {
		if c.Name == "b" {
			return 0
		}
		return UncompressedCost(c, j)
	}
	res, err := Plan(s, 1, cost)
	if err != nil {
		t.Fatal(err)
	}
	for _, cb := range res.Cores {
		if cb.Core == "b" && cb.Patterns != cb.Total {
			t.Errorf("free core truncated: %d of %d", cb.Patterns, cb.Total)
		}
	}
}

// Property: quality per core is in [0,1], bits within budget, kept
// counts within range, and quality is monotone in budget.
func TestQuickPlan(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s := &soc.SOC{Name: "q"}
		for i := 0; i < rng.Intn(4)+1; i++ {
			s.Cores = append(s.Cores, &soc.Core{
				Name: string(rune('a' + i)), Inputs: rng.Intn(10) + 1,
				ScanChains:   []int{rng.Intn(200) + 10},
				Patterns:     rng.Intn(20) + 1,
				CareDensity:  0.05 + rng.Float64()*0.3,
				DensityDecay: rng.Float64(),
				Seed:         seed + int64(i),
			})
		}
		budget := int64(rng.Intn(100000))
		res, err := Plan(s, budget, nil)
		if err != nil {
			return false
		}
		if res.Bits > budget {
			return false
		}
		for _, cb := range res.Cores {
			if cb.Patterns < 0 || cb.Patterns > cb.Total {
				return false
			}
			if cb.Quality < -1e-9 || cb.Quality > 1+1e-9 {
				return false
			}
		}
		bigger, err := Plan(s, budget*2+1000, nil)
		if err != nil {
			return false
		}
		return bigger.Quality >= res.Quality-1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
