// Package truncate implements test-data truncation under an ATE
// memory-depth constraint, after Larsson & Edbom ("Test data truncation
// for test quality maximisation under ATE memory depth constraint", IET
// CDT). When the (compressed) test set still exceeds tester memory, the
// planner drops trailing patterns per core — ATPG orders patterns by
// decreasing incremental fault coverage, so early patterns matter most —
// choosing per-core pattern counts that maximize estimated test quality
// within the memory budget.
//
// Test quality is modeled with the standard saturating coverage curve:
// the i-th kept pattern of a core contributes marginal coverage
// proportional to its care-bit count (a direct consequence of the
// density-decay structure of compacted ATPG sets). The allocator is a
// greedy marginal-utility algorithm, which is optimal here because the
// marginal gains are non-increasing per core.
package truncate

import (
	"container/heap"
	"fmt"

	"soctap/internal/soc"
)

// CoreBudget describes one core's truncation outcome.
type CoreBudget struct {
	Core     string
	Patterns int     // patterns kept
	Total    int     // patterns available
	Bits     int64   // ATE bits consumed by the kept patterns
	Quality  float64 // fraction of the core's total weight retained, in [0,1]
}

// Result is a complete truncation plan.
type Result struct {
	Cores []CoreBudget
	// Bits is the total ATE storage of the kept patterns.
	Bits int64
	// Quality is the average per-core retained quality, the objective
	// of the allocation.
	Quality float64
}

// PatternCost reports the ATE storage (bits) of pattern j of core c
// under the chosen encoding. Implementations typically wrap the
// selective-encoding cost model; the uncompressed cost is
// StimulusBits() per pattern.
type PatternCost func(c *soc.Core, j int) int64

// UncompressedCost is the PatternCost of direct pattern storage.
func UncompressedCost(c *soc.Core, j int) int64 { return int64(c.StimulusBits()) }

// Plan selects per-core pattern counts maximizing summed quality within
// the memory budget (total bits across all cores). Patterns are always
// kept in order: a core keeping k patterns keeps its first k.
func Plan(s *soc.SOC, budgetBits int64, cost PatternCost) (*Result, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	if budgetBits < 0 {
		return nil, fmt.Errorf("truncate: negative budget")
	}
	if cost == nil {
		cost = UncompressedCost
	}

	type coreState struct {
		core    *soc.Core
		weights []float64 // marginal quality of pattern j, non-increasing
		costs   []int64
		total   float64
		kept    int
		bits    int64
		quality float64
	}
	states := make([]*coreState, len(s.Cores))
	for i, c := range s.Cores {
		ts, err := c.TestSet()
		if err != nil {
			return nil, err
		}
		st := &coreState{core: c}
		for j, cb := range ts.Cubes {
			w := float64(cb.CareCount())
			if w <= 0 {
				w = 0.5 // every pattern detects something
			}
			st.weights = append(st.weights, w)
			st.costs = append(st.costs, cost(c, j))
			st.total += w
		}
		// Enforce non-increasing marginal gains (the coverage curve is
		// concave even if care counts wiggle): running maximum clamp.
		for j := 1; j < len(st.weights); j++ {
			if st.weights[j] > st.weights[j-1] {
				st.weights[j] = st.weights[j-1]
			}
		}
		states[i] = st
	}

	utility := func(st *coreState, j int) float64 {
		c := st.costs[j]
		if c <= 0 {
			c = 1
		}
		return st.weights[j] / st.total / float64(c)
	}

	// Greedy: repeatedly take the pattern with the best quality-per-bit
	// marginal utility that still fits. With concave per-core curves
	// this is the optimal fractional-knapsack order, and pattern costs
	// are small relative to budgets, so the integral loss is negligible.
	h := &utilHeap{}
	for i, st := range states {
		if len(st.weights) > 0 {
			heap.Push(h, utilItem{core: i, util: utility(st, 0)})
		}
	}
	var used int64
	for h.Len() > 0 {
		it := heap.Pop(h).(utilItem)
		st := states[it.core]
		j := st.kept
		c := st.costs[j]
		if used+c > budgetBits {
			// This core's next pattern does not fit; it will not fit
			// later either (costs are per-pattern), so drop the core
			// from further consideration but try others.
			continue
		}
		used += c
		st.kept++
		st.bits += c
		st.quality += st.weights[j] / st.total
		if st.kept < len(st.weights) {
			heap.Push(h, utilItem{core: it.core, util: utility(st, st.kept)})
		}
	}

	res := &Result{Bits: used}
	var q float64
	for _, st := range states {
		res.Cores = append(res.Cores, CoreBudget{
			Core:     st.core.Name,
			Patterns: st.kept,
			Total:    len(st.weights),
			Bits:     st.bits,
			Quality:  st.quality,
		})
		q += st.quality
	}
	res.Quality = q / float64(len(states))
	return res, nil
}

type utilItem struct {
	core int
	util float64
}

type utilHeap []utilItem

func (h utilHeap) Len() int { return len(h) }
func (h utilHeap) Less(i, j int) bool {
	if h[i].util != h[j].util {
		return h[i].util > h[j].util // max-heap on utility
	}
	return h[i].core < h[j].core
}
func (h utilHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *utilHeap) Push(x interface{}) { *h = append(*h, x.(utilItem)) }
func (h *utilHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}
