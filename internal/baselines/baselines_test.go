package baselines

import (
	"testing"

	"soctap/internal/soc"
)

func benchSOC() *soc.SOC {
	mk := func(name string, nChains, chainLen, pat int, density float64, seed int64) *soc.Core {
		chains := make([]int, nChains)
		for i := range chains {
			chains[i] = chainLen
		}
		return &soc.Core{
			Name: name, Inputs: 16, Outputs: 12,
			ScanChains: chains, Patterns: pat,
			CareDensity: density, Clustering: 0.8, Seed: seed,
		}
	}
	return &soc.SOC{
		Name: "bsoc",
		Cores: []*soc.Core{
			mk("a", 24, 30, 30, 0.03, 21),
			mk("b", 16, 25, 20, 0.05, 22),
			mk("c", 32, 20, 40, 0.02, 23),
		},
	}
}

func TestVirtualTAM18(t *testing.T) {
	s := benchSOC()
	r8, err := VirtualTAM18(s, 8)
	if err != nil {
		t.Fatal(err)
	}
	if r8.TestTime <= 0 || r8.Volume <= 0 {
		t.Fatalf("degenerate result %+v", r8)
	}
	r16, err := VirtualTAM18(s, 16)
	if err != nil {
		t.Fatal(err)
	}
	if r16.TestTime > r8.TestTime {
		t.Errorf("more channels made [18] slower: %d vs %d", r16.TestTime, r8.TestTime)
	}
	// Volume is channel-independent (same encoding).
	if r16.Volume != r8.Volume {
		t.Errorf("volume changed with channels: %d vs %d", r16.Volume, r8.Volume)
	}
	// Channel bandwidth bound holds.
	if r8.TestTime < r8.Volume/8 {
		t.Errorf("test time %d below bandwidth bound %d", r8.TestTime, r8.Volume/8)
	}
	if _, err := VirtualTAM18(s, 0); err == nil {
		t.Error("0 channels accepted")
	}
}

func TestLFSRReseeding13(t *testing.T) {
	s := benchSOC()
	r16, err := LFSRReseeding13(s, 16)
	if err != nil {
		t.Fatal(err)
	}
	r32, err := LFSRReseeding13(s, 32)
	if err != nil {
		t.Fatal(err)
	}
	if r16.TestTime <= 0 || r32.TestTime <= 0 {
		t.Fatal("degenerate times")
	}
	if r32.TestTime > r16.TestTime {
		t.Errorf("wider TAM made [13] slower: %d vs %d", r32.TestTime, r16.TestTime)
	}
	// Stored volume reflects the efficiency constant: roughly care bits
	// inflated by 1/Eff13.
	var care int64
	for _, c := range s.Cores {
		ts, _ := c.TestSet()
		care += int64(ts.TotalCareBits())
	}
	lo := int64(float64(care) / Eff13 * 0.95)
	hi := int64(float64(care)/Eff13*1.05) + int64(len(s.Cores)*100)
	if r16.Volume < lo || r16.Volume > hi {
		t.Errorf("volume %d outside expected [%d,%d]", r16.Volume, lo, hi)
	}
	if _, err := LFSRReseeding13(s, 0); err == nil {
		t.Error("0 wires accepted")
	}
}

func TestFixedWidth11(t *testing.T) {
	s := benchSOC()
	r8, err := FixedWidth11(s, 8)
	if err != nil {
		t.Fatal(err)
	}
	r16, err := FixedWidth11(s, 16)
	if err != nil {
		t.Fatal(err)
	}
	// More 4-wire groups = more parallelism.
	if r16.TestTime > r8.TestTime {
		t.Errorf("more groups made [11] slower: %d vs %d", r16.TestTime, r8.TestTime)
	}
	// Below one group is an error.
	if _, err := FixedWidth11(s, 3); err == nil {
		t.Error("W=3 accepted for [11]")
	}
	// [11]'s lower efficiency means more stored bits than [13].
	r13, _ := LFSRReseeding13(s, 16)
	if r16.Volume <= r13.Volume {
		t.Errorf("[11] volume %d not above [13] volume %d", r16.Volume, r13.Volume)
	}
}

func TestScanFloorRespected(t *testing.T) {
	// With plenty of channels the linear model is floored by scan depth:
	// time per pattern cannot drop below bestSI.
	s := benchSOC()
	m, err := buildModel(s.Cores[0])
	if err != nil {
		t.Fatal(err)
	}
	t1 := m.linearTime(1, Eff13)
	tBig := m.linearTime(1<<20, Eff13)
	floor := int64(m.patterns)*int64(m.bestSI) + int64(m.patterns) + int64(m.bestSO)
	if tBig != floor {
		t.Errorf("wide-channel time %d != scan floor %d", tBig, floor)
	}
	if t1 < tBig {
		t.Error("narrow channels faster than wide")
	}
	if m.linearTime(0, Eff13) != 0 {
		t.Error("0 wires should be infeasible")
	}

	// A dense core is bandwidth-bound, so narrow channels must be
	// strictly slower.
	dense := &soc.Core{
		Name: "dense", Inputs: 8, Outputs: 8, ScanChains: []int{64, 64, 64, 64},
		Patterns: 10, CareDensity: 0.6, Seed: 9,
	}
	dm, err := buildModel(dense)
	if err != nil {
		t.Fatal(err)
	}
	if dm.linearTime(1, Eff13) <= dm.linearTime(1<<20, Eff13) {
		t.Error("dense core: narrow channels not strictly slower")
	}
}

func TestBaselineValidation(t *testing.T) {
	bad := &soc.SOC{Name: "bad"}
	if _, err := VirtualTAM18(bad, 8); err == nil {
		t.Error("invalid SOC accepted by [18]")
	}
	if _, err := LFSRReseeding13(bad, 8); err == nil {
		t.Error("invalid SOC accepted by [13]")
	}
	if _, err := FixedWidth11(bad, 8); err == nil {
		t.Error("invalid SOC accepted by [11]")
	}
}
