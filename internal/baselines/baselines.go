// Package baselines reimplements the prior-work comparison points of the
// paper's Tables 1 and 2 as documented proxy models. None of the three
// systems is open source, so each is reduced to its published operating
// principle (see DESIGN.md):
//
//   - [18] Sehgal, Iyengar & Chakrabarty, "SOC test planning using
//     virtual test access architectures" (TVLSI'04): decompression at
//     SOC level — few ATE channels expand onto a much wider virtual TAM;
//     test time is the uncompressed schedule on the virtual width, but
//     never better than the channel-bandwidth bound (stored bits / ATE
//     channels).
//   - [13] Wang, Chakrabarty & Wang, "SoC testing using LFSR reseeding,
//     and scan-slice-based TAM optimization and test scheduling"
//     (DATE'05): per-core linear decompressors; stored data ≈ care bits
//     inflated by an encoding-efficiency factor, delivered over the
//     core's TAM wires with the scan depth as a floor.
//   - [11] Iyengar & Chandra, "Unified SOC test approach based on test
//     data compression and TAM design" (IEE CDT'05): per-core
//     data compression with a fixed w = 4 ATE interface per core; the
//     TAM is built from 4-wire groups.
//
// Encoding efficiencies are fixed, documented constants chosen from the
// ranges those papers report; absolute numbers are therefore
// approximate, but the scaling behaviour (what improves with more
// channels, where the floors sit) follows each paper's model.
package baselines

import (
	"fmt"

	"soctap/internal/sched"
	"soctap/internal/soc"
	"soctap/internal/tam"
	"soctap/internal/wrapper"
)

// Encoding efficiency constants: stored bits = care bits / efficiency.
const (
	Eff18 = 0.90 // SOC-level linear decompressor, near-perfect reseeding
	Eff13 = 0.85 // per-core LFSR reseeding over scan slices
	Eff11 = 0.60 // run-length style per-core compression
)

// Expansion18 is the virtual-TAM expansion ratio of the [18] proxy: each
// ATE channel drives this many virtual TAM wires.
const Expansion18 = 4

// Result is a baseline evaluation outcome.
type Result struct {
	Name     string
	TestTime int64 // cycles
	Volume   int64 // stored ATE bits
}

// coreModel captures the per-core quantities every proxy needs.
type coreModel struct {
	core      *soc.Core
	patterns  int
	careBits  []int // per pattern
	totalCare int64
	bestSI    int // scan depth with every chain driven in parallel
	bestSO    int
	maxM      int
}

func buildModel(c *soc.Core) (*coreModel, error) {
	ts, err := c.TestSet()
	if err != nil {
		return nil, err
	}
	maxM := c.MaxWrapperChains()
	d, err := wrapper.New(c, maxM)
	if err != nil {
		return nil, err
	}
	m := &coreModel{
		core:     c,
		patterns: ts.Len(),
		careBits: make([]int, ts.Len()),
		bestSI:   d.ScanIn,
		bestSO:   d.ScanOut,
		maxM:     maxM,
	}
	for i, cb := range ts.Cubes {
		m.careBits[i] = cb.CareCount()
		m.totalCare += int64(cb.CareCount())
	}
	return m, nil
}

// linearTime is the delivery time of a linear-decompressor core over the
// given number of ATE-facing wires: per pattern, the larger of the scan
// depth (all internal chains run in parallel behind the decompressor)
// and the seed-delivery time, plus capture and final shift-out.
func (m *coreModel) linearTime(wires int, eff float64) int64 {
	if wires < 1 {
		return 0
	}
	var t int64
	for _, cb := range m.careBits {
		stored := int64(float64(cb)/eff) + 1
		delivery := (stored + int64(wires) - 1) / int64(wires)
		if delivery < int64(m.bestSI) {
			delivery = int64(m.bestSI)
		}
		t += delivery
	}
	return t + int64(m.patterns) + int64(m.bestSO)
}

// storedVolume is the proxy's ATE storage in bits.
func (m *coreModel) storedVolume(eff float64) int64 {
	return int64(float64(m.totalCare)/eff) + int64(m.patterns)
}

func buildModels(s *soc.SOC) ([]*coreModel, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	models := make([]*coreModel, len(s.Cores))
	for i, c := range s.Cores {
		m, err := buildModel(c)
		if err != nil {
			return nil, err
		}
		models[i] = m
	}
	return models, nil
}

// scheduleEven schedules the cores over even partitions of width w into
// 1..kmax buses and returns the best makespan.
func scheduleEven(n, w, kmax int, dur sched.Duration) (int64, error) {
	best := int64(-1)
	for k := 1; k <= kmax && k <= w; k++ {
		p, err := tam.Even(w, k)
		if err != nil {
			continue
		}
		sc, err := sched.Greedy(n, p, dur)
		if err != nil {
			continue
		}
		if best < 0 || sc.Makespan < best {
			best = sc.Makespan
		}
	}
	if best < 0 {
		return 0, fmt.Errorf("baselines: no feasible schedule at width %d", w)
	}
	return best, nil
}

// VirtualTAM18 evaluates the [18] proxy at an ATE-channel budget: cores
// are scheduled uncompressed over a virtual TAM Expansion18 times wider
// than the channel count, and the result is floored by the channel
// bandwidth needed to deliver the compressed stream.
func VirtualTAM18(s *soc.SOC, ateChannels int) (Result, error) {
	if ateChannels < 1 {
		return Result{}, fmt.Errorf("baselines: ATE channels %d", ateChannels)
	}
	models, err := buildModels(s)
	if err != nil {
		return Result{}, err
	}
	wVirt := ateChannels * Expansion18

	dur := func(c, width int) int64 {
		m := models[c]
		mm := width
		if mm > m.maxM {
			mm = m.maxM
		}
		d, err := wrapper.New(m.core, mm)
		if err != nil {
			return 0
		}
		return d.TestTime()
	}
	makespan, err := scheduleEven(len(s.Cores), wVirt, len(s.Cores), dur)
	if err != nil {
		return Result{}, err
	}
	var volume int64
	for _, m := range models {
		volume += m.storedVolume(Eff18)
	}
	bandwidth := (volume + int64(ateChannels) - 1) / int64(ateChannels)
	if bandwidth > makespan {
		makespan = bandwidth
	}
	return Result{Name: "[18] virtual TAM", TestTime: makespan, Volume: volume}, nil
}

// LFSRReseeding13 evaluates the [13] proxy at a TAM-width budget: cores
// carry per-core linear decompressors fed over their bus wires, and the
// TAM is partitioned evenly with greedy scheduling.
func LFSRReseeding13(s *soc.SOC, wtam int) (Result, error) {
	if wtam < 1 {
		return Result{}, fmt.Errorf("baselines: W_TAM %d", wtam)
	}
	models, err := buildModels(s)
	if err != nil {
		return Result{}, err
	}
	dur := func(c, width int) int64 { return models[c].linearTime(width, Eff13) }
	makespan, err := scheduleEven(len(s.Cores), wtam, len(s.Cores), dur)
	if err != nil {
		return Result{}, err
	}
	var volume int64
	for _, m := range models {
		volume += m.storedVolume(Eff13)
	}
	return Result{Name: "[13] LFSR reseeding", TestTime: makespan, Volume: volume}, nil
}

// FixedWidth11 evaluates the [11] proxy: every core uses a fixed
// 4-channel compressed interface, so the TAM decomposes into
// floor(W/4) four-wire buses (at least one).
func FixedWidth11(s *soc.SOC, wtam int) (Result, error) {
	if wtam < 4 {
		return Result{}, fmt.Errorf("baselines: [11] needs at least 4 wires, got %d", wtam)
	}
	models, err := buildModels(s)
	if err != nil {
		return Result{}, err
	}
	k := wtam / 4
	widths := make([]int, k)
	for i := range widths {
		widths[i] = 4
	}
	dur := func(c, width int) int64 { return models[c].linearTime(4, Eff11) }
	sc, err := sched.Greedy(len(s.Cores), widths, dur)
	if err != nil {
		return Result{}, err
	}
	var volume int64
	for _, m := range models {
		volume += m.storedVolume(Eff11)
	}
	return Result{Name: "[11] fixed w=4 compression", TestTime: sc.Makespan, Volume: volume}, nil
}
