// Package dictenc implements dictionary-based test-data compression
// over scan slices with fixed-length indices, after Li & Chakrabarty
// ("Test Data Compression Using Dictionaries with Fixed-Length
// Indices"). It is the second core-level compression technique of this
// library and powers the per-core *technique selection* extension (the
// authors' ATS'08 follow-up to the reproduced DATE'08 paper): for every
// core, the planner may pick direct access, selective encoding, or
// dictionary coding, whichever minimizes test time.
//
// Scheme: the test set is sliced exactly as for selective encoding (one
// m-bit slice per scan cycle per wrapper chain set). A dictionary of D
// fully-specified m-bit words is built from the slices' care-bit
// signatures by greedy compatibility merging. Each slice is then
// encoded as either
//
//	0 <index>      (1 + ceil(log2 D) bits)  if a dictionary word covers it
//	1 <literal>    (1 + m bits)             otherwise
//
// The decompressor is a D×m-bit SRAM plus a serializer; compressed bits
// are delivered over w TAM wires at w bits per cycle, with the core's
// scan depth as the per-pattern floor.
package dictenc

import (
	"fmt"
	"math/bits"

	"soctap/internal/bitvec"
	"soctap/internal/selenc"
)

// Dictionary is a set of fully-specified m-bit words used to encode
// scan slices.
type Dictionary struct {
	M     int
	Words []*bitvec.Vector
}

// IndexBits returns the index field width, ceil(log2(len(Words))), at
// least 1.
func (d *Dictionary) IndexBits() int {
	if len(d.Words) <= 1 {
		return 1
	}
	return bits.Len(uint(len(d.Words) - 1))
}

// entry is a dictionary word under construction: the merged cube of all
// slices assigned to it.
type entry struct {
	care  *bitvec.TritVector
	count int
}

// Slice is one scan slice: the care bits over m positions, sorted by
// position. It reuses selenc's CareBit representation so both codecs
// share slice extraction.
type Slice = []selenc.CareBit

// Build constructs a dictionary with at most maxWords words for the
// given slices using greedy compatibility merging: each slice joins the
// first existing entry it is compatible with (first-fit over entries
// ordered by creation); when no entry fits and the dictionary is not
// full, the slice founds a new entry. Entries are finalized by filling
// X positions with 0.
//
// The greedy pass is deterministic in the slice order. maxWords must be
// at least 1.
func Build(m, maxWords int, slices []Slice) (*Dictionary, error) {
	if m < 1 {
		return nil, fmt.Errorf("dictenc: slice width %d", m)
	}
	if maxWords < 1 {
		return nil, fmt.Errorf("dictenc: dictionary size %d", maxWords)
	}
	var entries []*entry
	for _, s := range slices {
		tv := sliceTrits(m, s)
		placed := false
		for _, e := range entries {
			if e.care.CompatibleWith(tv) {
				merged := mergeInto(e.care, tv)
				e.care = merged
				e.count++
				placed = true
				break
			}
		}
		if !placed && len(entries) < maxWords {
			entries = append(entries, &entry{care: tv, count: 1})
		}
	}
	if len(entries) == 0 {
		entries = append(entries, &entry{care: bitvec.NewTrit(m)})
	}
	d := &Dictionary{M: m}
	for _, e := range entries {
		w := bitvec.New(m)
		for i := 0; i < m; i++ {
			if e.care.Get(i) == bitvec.One {
				w.Set(i, true)
			}
		}
		d.Words = append(d.Words, w)
	}
	return d, nil
}

func sliceTrits(m int, s Slice) *bitvec.TritVector {
	tv := bitvec.NewTrit(m)
	for _, cb := range s {
		if cb.Value {
			tv.Set(cb.Pos, bitvec.One)
		} else {
			tv.Set(cb.Pos, bitvec.Zero)
		}
	}
	return tv
}

func mergeInto(a, b *bitvec.TritVector) *bitvec.TritVector {
	merged := a.Clone()
	for i := 0; i < b.Len(); i++ {
		if t := b.Get(i); t != bitvec.DontCare {
			merged.Set(i, t)
		}
	}
	return merged
}

// Covers reports whether dictionary word idx covers the slice (agrees
// with every care bit).
func (d *Dictionary) Covers(idx int, s Slice) bool {
	w := d.Words[idx]
	for _, cb := range s {
		if w.Get(cb.Pos) != cb.Value {
			return false
		}
	}
	return true
}

// Match returns the first dictionary word covering the slice, or -1.
func (d *Dictionary) Match(s Slice) int {
	for i := range d.Words {
		if d.Covers(i, s) {
			return i
		}
	}
	return -1
}

// EncodedBits returns the exact compressed size in bits of one slice:
// 1 + IndexBits() on a dictionary hit, 1 + M on a miss.
func (d *Dictionary) EncodedBits(s Slice) int {
	if d.Match(s) >= 0 {
		return 1 + d.IndexBits()
	}
	return 1 + d.M
}

// Encode appends the slice's code to the bit stream and returns the
// extended stream.
func (d *Dictionary) Encode(stream []bool, s Slice) []bool {
	if idx := d.Match(s); idx >= 0 {
		stream = append(stream, false)
		ib := d.IndexBits()
		for b := 0; b < ib; b++ {
			stream = append(stream, idx&(1<<uint(b)) != 0)
		}
		return stream
	}
	stream = append(stream, true)
	tv := sliceTrits(d.M, s)
	for i := 0; i < d.M; i++ {
		stream = append(stream, tv.Get(i) == bitvec.One)
	}
	return stream
}

// Decode consumes one slice code from the stream starting at offset,
// returning the decoded m-bit slice and the new offset.
func (d *Dictionary) Decode(stream []bool, offset int) (*bitvec.Vector, int, error) {
	if offset >= len(stream) {
		return nil, 0, fmt.Errorf("dictenc: stream exhausted at offset %d", offset)
	}
	if !stream[offset] { // dictionary hit
		ib := d.IndexBits()
		if offset+1+ib > len(stream) {
			return nil, 0, fmt.Errorf("dictenc: truncated index at offset %d", offset)
		}
		idx := 0
		for b := 0; b < ib; b++ {
			if stream[offset+1+b] {
				idx |= 1 << uint(b)
			}
		}
		if idx >= len(d.Words) {
			return nil, 0, fmt.Errorf("dictenc: index %d out of range", idx)
		}
		return d.Words[idx].Clone(), offset + 1 + ib, nil
	}
	if offset+1+d.M > len(stream) {
		return nil, 0, fmt.Errorf("dictenc: truncated literal at offset %d", offset)
	}
	v := bitvec.New(d.M)
	for i := 0; i < d.M; i++ {
		v.Set(i, stream[offset+1+i])
	}
	return v, offset + 1 + d.M, nil
}

// Stats summarizes an encoding run.
type Stats struct {
	Slices int
	Hits   int
	Bits   int64
}

// Measure encodes all slices (without materializing the stream) and
// returns hit/size statistics.
func (d *Dictionary) Measure(slices []Slice) Stats {
	st := Stats{Slices: len(slices)}
	ib := int64(d.IndexBits())
	for _, s := range slices {
		if d.Match(s) >= 0 {
			st.Hits++
			st.Bits += 1 + ib
		} else {
			st.Bits += 1 + int64(d.M)
		}
	}
	return st
}

// HardwareCost estimates the decompressor cost: the dictionary SRAM in
// bits plus a small controller.
type HardwareCost struct {
	SRAMBits int
	Gates    int
	FFs      int
}

// Cost returns the hardware estimate for the dictionary.
func (d *Dictionary) Cost() HardwareCost {
	return CostFor(d.M, len(d.Words))
}

// CostFor estimates the decompressor hardware for a dictionary of
// `words` entries over m-bit slices without materializing it.
func CostFor(m, words int) HardwareCost {
	ib := 1
	if words > 1 {
		ib = bits.Len(uint(words - 1))
	}
	return HardwareCost{
		SRAMBits: words * m,
		Gates:    40 + 4*ib,
		FFs:      m + ib + 6,
	}
}
