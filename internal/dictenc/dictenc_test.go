package dictenc

import (
	"math/rand"
	"testing"
	"testing/quick"

	"soctap/internal/bitvec"
	"soctap/internal/selenc"
)

func mkSlice(pairs ...int) Slice {
	// pairs of (pos, value01)
	var s Slice
	for i := 0; i+1 < len(pairs); i += 2 {
		s = append(s, selenc.CareBit{Pos: pairs[i], Value: pairs[i+1] == 1})
	}
	return s
}

func TestBuildValidation(t *testing.T) {
	if _, err := Build(0, 4, nil); err == nil {
		t.Error("m=0 accepted")
	}
	if _, err := Build(8, 0, nil); err == nil {
		t.Error("maxWords=0 accepted")
	}
	d, err := Build(8, 4, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Words) != 1 {
		t.Errorf("empty build should give one all-zero word, got %d", len(d.Words))
	}
}

func TestBuildMergesCompatibleSlices(t *testing.T) {
	slices := []Slice{
		mkSlice(0, 1, 2, 0),
		mkSlice(0, 1, 3, 1), // compatible with first
		mkSlice(0, 0),       // conflicts on bit 0 -> new entry
	}
	d, err := Build(8, 4, slices)
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Words) != 2 {
		t.Fatalf("%d words, want 2", len(d.Words))
	}
	// Word 0 must cover the first two slices; word 1 the third.
	if !d.Covers(0, slices[0]) || !d.Covers(0, slices[1]) {
		t.Error("word 0 does not cover its clique")
	}
	if !d.Covers(1, slices[2]) {
		t.Error("word 1 does not cover its slice")
	}
	if d.Match(slices[2]) != 1 {
		t.Errorf("Match = %d, want 1", d.Match(slices[2]))
	}
}

func TestBuildRespectsCapacity(t *testing.T) {
	// Mutually incompatible slices: only maxWords entries are created,
	// the rest must miss.
	var slices []Slice
	for i := 0; i < 10; i++ {
		s := Slice{}
		for b := 0; b < 10; b++ {
			s = append(s, selenc.CareBit{Pos: b, Value: b == i})
		}
		slices = append(slices, s)
	}
	d, err := Build(10, 4, slices)
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Words) != 4 {
		t.Fatalf("%d words, want 4", len(d.Words))
	}
	st := d.Measure(slices)
	if st.Hits != 4 {
		t.Errorf("%d hits, want 4", st.Hits)
	}
	// 4 hits at 1+2 bits (ceil(log2 4) = 2), 6 misses at 1+10 bits.
	if st.Bits != 4*3+6*11 {
		t.Errorf("Bits = %d, want %d", st.Bits, 4*3+6*11)
	}
}

func TestIndexBits(t *testing.T) {
	cases := []struct{ words, want int }{
		{1, 1}, {2, 1}, {3, 2}, {4, 2}, {5, 3}, {16, 4}, {17, 5},
	}
	for _, c := range cases {
		d := &Dictionary{M: 4, Words: make([]*bitvec.Vector, c.words)}
		if got := d.IndexBits(); got != c.want {
			t.Errorf("IndexBits(%d words) = %d, want %d", c.words, got, c.want)
		}
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	m := 24
	var slices []Slice
	for i := 0; i < 60; i++ {
		var s Slice
		for pos := 0; pos < m; pos++ {
			if rng.Float64() < 0.2 {
				s = append(s, selenc.CareBit{Pos: pos, Value: rng.Intn(2) == 1})
			}
		}
		slices = append(slices, s)
	}
	d, err := Build(m, 8, slices)
	if err != nil {
		t.Fatal(err)
	}
	var stream []bool
	for _, s := range slices {
		stream = append(stream, d.Encode(nil, s)...)
	}
	off := 0
	for i, s := range slices {
		v, next, err := d.Decode(stream, off)
		if err != nil {
			t.Fatalf("slice %d: %v", i, err)
		}
		for _, cb := range s {
			if v.Get(cb.Pos) != cb.Value {
				t.Fatalf("slice %d: care bit %d = %v, want %v", i, cb.Pos, v.Get(cb.Pos), cb.Value)
			}
		}
		off = next
	}
	if off != len(stream) {
		t.Errorf("decoded %d of %d stream bits", off, len(stream))
	}
	// Measure agrees with the materialized stream.
	if st := d.Measure(slices); st.Bits != int64(len(stream)) {
		t.Errorf("Measure.Bits = %d, stream = %d", st.Bits, len(stream))
	}
}

func TestDecodeErrors(t *testing.T) {
	d, _ := Build(8, 2, []Slice{mkSlice(0, 1), mkSlice(0, 0, 1, 1)})
	if _, _, err := d.Decode(nil, 0); err == nil {
		t.Error("empty stream accepted")
	}
	if _, _, err := d.Decode([]bool{false}, 0); err == nil {
		t.Error("truncated index accepted")
	}
	if _, _, err := d.Decode([]bool{true, false}, 0); err == nil {
		t.Error("truncated literal accepted")
	}
}

// Property: every encoded slice decodes to a vector covering its care
// bits, and hits never exceed slice count.
func TestQuickRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := rng.Intn(40) + 2
		maxWords := rng.Intn(15) + 1
		var slices []Slice
		for i := 0; i < rng.Intn(40)+1; i++ {
			var s Slice
			for pos := 0; pos < m; pos++ {
				if rng.Float64() < 0.3 {
					s = append(s, selenc.CareBit{Pos: pos, Value: rng.Intn(2) == 1})
				}
			}
			slices = append(slices, s)
		}
		d, err := Build(m, maxWords, slices)
		if err != nil || len(d.Words) > maxWords {
			return false
		}
		st := d.Measure(slices)
		if st.Hits > st.Slices {
			return false
		}
		var stream []bool
		for _, s := range slices {
			stream = d.Encode(stream, s)
		}
		if int64(len(stream)) != st.Bits {
			return false
		}
		off := 0
		for _, s := range slices {
			v, next, err := d.Decode(stream, off)
			if err != nil {
				return false
			}
			for _, cb := range s {
				if v.Get(cb.Pos) != cb.Value {
					return false
				}
			}
			off = next
		}
		return off == len(stream)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestRepetitiveSlicesCompressWell(t *testing.T) {
	// Highly repetitive slices (few distinct signatures) should be
	// nearly all hits.
	var slices []Slice
	for i := 0; i < 100; i++ {
		switch i % 3 {
		case 0:
			slices = append(slices, mkSlice(0, 1, 5, 0))
		case 1:
			slices = append(slices, mkSlice(1, 1, 6, 1))
		default:
			slices = append(slices, mkSlice(2, 0))
		}
	}
	d, err := Build(32, 4, slices)
	if err != nil {
		t.Fatal(err)
	}
	st := d.Measure(slices)
	if st.Hits != 100 {
		t.Errorf("%d hits, want 100", st.Hits)
	}
	// 100 slices × (1 + 2 index bits) << raw 100×32.
	if st.Bits >= 100*8 {
		t.Errorf("compressed to %d bits, expected < 800", st.Bits)
	}
}

func TestCost(t *testing.T) {
	d, _ := Build(64, 16, nil)
	c := d.Cost()
	if c.SRAMBits != len(d.Words)*64 {
		t.Errorf("SRAMBits = %d", c.SRAMBits)
	}
	if c.Gates <= 0 || c.FFs <= 0 {
		t.Error("degenerate cost")
	}
}
