package tablecodec

import (
	"bytes"
	"encoding/binary"
	"errors"
	"flag"
	"hash/crc32"
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"testing"
)

var update = flag.Bool("update", false, "rewrite the golden format file")

// roundTrip asserts Decode(Encode(p)) == p and returns the encoding.
func roundTrip(t *testing.T, p *Payload) []byte {
	t.Helper()
	data := Encode(p)
	got, err := Decode(data)
	if err != nil {
		t.Fatalf("Decode(Encode(p)): %v", err)
	}
	if !payloadEqual(p, got) {
		t.Fatalf("round trip mismatch:\n in: %+v\nout: %+v", p, got)
	}
	return data
}

// payloadEqual compares payloads with nil and empty slices identified
// (Decode normalizes empties; callers only care about values).
func payloadEqual(a, b *Payload) bool {
	if !bytes.Equal(a.Meta, b.Meta) {
		return false
	}
	if len(a.Strings) != len(b.Strings) || len(a.Columns) != len(b.Columns) {
		return false
	}
	for i := range a.Strings {
		if a.Strings[i] != b.Strings[i] {
			return false
		}
	}
	for i := range a.Columns {
		if len(a.Columns[i]) != len(b.Columns[i]) {
			return false
		}
		for j := range a.Columns[i] {
			if a.Columns[i][j] != b.Columns[i][j] {
				return false
			}
		}
	}
	return true
}

func TestRoundTripEmpty(t *testing.T) {
	roundTrip(t, &Payload{})
}

func TestRoundTripBasic(t *testing.T) {
	roundTrip(t, &Payload{
		Meta:    []byte("schema-v2|key"),
		Strings: []string{"", "selenc", "dict"},
		Columns: [][]uint64{
			{0, 1, 1, 2, 3, 5, 8, 13, 21},
			{},
			{123456},
		},
	})
}

// TestRoundTripWidths exercises every bit width, including the 64-bit
// no-exception path and single-huge-outlier blocks.
func TestRoundTripWidths(t *testing.T) {
	for b := 0; b <= 64; b++ {
		var v uint64 = 0
		if b > 0 {
			v = 1<<uint(b-1) | 1
		}
		col := make([]uint64, 100)
		for i := range col {
			col[i] = v
		}
		roundTrip(t, &Payload{Columns: [][]uint64{col}})
	}
	// One outlier among small values: must become an exception, not
	// widen the whole block.
	col := make([]uint64, blockSize)
	for i := range col {
		col[i] = uint64(i % 7)
	}
	col[13] = math.MaxUint64
	data := roundTrip(t, &Payload{Columns: [][]uint64{col}})
	if len(data) > headerSize+2+blockSize+16 {
		t.Errorf("outlier block encoded to %d bytes; exception list not used?", len(data))
	}
}

func TestRoundTripRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 50; trial++ {
		p := &Payload{Meta: make([]byte, rng.Intn(64))}
		rng.Read(p.Meta)
		for i := rng.Intn(4); i > 0; i-- {
			p.Strings = append(p.Strings, string(rune('a'+rng.Intn(26))))
		}
		for c := rng.Intn(5); c > 0; c-- {
			col := make([]uint64, rng.Intn(400))
			for i := range col {
				// Mixed magnitudes: mostly small with occasional outliers.
				col[i] = rng.Uint64() >> uint(rng.Intn(64))
			}
			p.Columns = append(p.Columns, col)
		}
		roundTrip(t, p)
	}
}

func TestZigZag(t *testing.T) {
	for _, v := range []int64{0, 1, -1, 2, -2, 63, -64, math.MaxInt64, math.MinInt64} {
		if got := UnZigZag(ZigZag(v)); got != v {
			t.Errorf("UnZigZag(ZigZag(%d)) = %d", v, got)
		}
	}
	if ZigZag(-1) != 1 || ZigZag(1) != 2 {
		t.Errorf("zigzag order broken: ZigZag(-1)=%d ZigZag(1)=%d", ZigZag(-1), ZigZag(1))
	}
}

// TestHeaderRejection: every corruption class must be caught — stale
// versions and foreign files by ReadHeader alone, payload damage by
// Verify — and reported as ErrFormat.
func TestHeaderRejection(t *testing.T) {
	good := Encode(&Payload{Meta: []byte("m"), Strings: []string{"s"}, Columns: [][]uint64{{1, 2, 3}}})
	corrupt := func(name string, f func(d []byte) []byte, headerOnly bool) {
		t.Run(name, func(t *testing.T) {
			d := f(append([]byte(nil), good...))
			if _, err := Verify(d); !errors.Is(err, ErrFormat) {
				t.Errorf("Verify accepted %s entry (err=%v)", name, err)
			}
			if headerOnly {
				if _, err := ReadHeader(d); !errors.Is(err, ErrFormat) {
					t.Errorf("ReadHeader accepted %s entry (err=%v)", name, err)
				}
			}
			if _, err := Decode(d); !errors.Is(err, ErrFormat) {
				t.Errorf("Decode accepted %s entry (err=%v)", name, err)
			}
		})
	}
	corrupt("empty", func(d []byte) []byte { return nil }, true)
	corrupt("short-header", func(d []byte) []byte { return d[:headerSize-1] }, true)
	corrupt("bad-magic", func(d []byte) []byte { d[0] = 'X'; return d }, true)
	corrupt("gob-stream", func(d []byte) []byte {
		return []byte{0x2c, 0xff, 0x81, 0x03, 0x01, 0x01, 0x09, 0x64, 0x69, 0x73, 0x6b, 0x45}
	}, true)
	corrupt("stale-version", func(d []byte) []byte {
		binary.LittleEndian.PutUint16(d[4:6], Version+1)
		// Re-seal the header CRC so ONLY the version is wrong.
		binary.LittleEndian.PutUint32(d[28:32], headerCRC(d))
		return d
	}, true)
	corrupt("header-bit-flip", func(d []byte) []byte { d[9] ^= 0x40; return d }, true)
	corrupt("truncated-payload", func(d []byte) []byte { return d[:len(d)-3] }, false)
	corrupt("extended-payload", func(d []byte) []byte { return append(d, 0) }, false)
	corrupt("payload-bit-flip", func(d []byte) []byte { d[len(d)-2] ^= 0x04; return d }, false)
}

func headerCRC(d []byte) uint32 { return crc32.ChecksumIEEE(d[0:28]) }

// TestVerifyCatchesEverythingDecodeWould: any prefix truncation of a
// valid entry must fail Verify (length guard), so a Verify-clean entry
// is structurally complete.
func TestVerifyCatchesTruncation(t *testing.T) {
	data := Encode(&Payload{Columns: [][]uint64{{1, 2, 3, 1 << 40}}})
	for n := 0; n < len(data); n++ {
		if _, err := Verify(data[:n]); err == nil {
			t.Fatalf("Verify accepted a %d/%d-byte truncation", n, len(data))
		}
	}
}

// TestCompactVsNaive: small-valued columns (the common case: config
// widths, chain counts, flags) must pack far below 8 bytes/value.
func TestCompactVsNaive(t *testing.T) {
	col := make([]uint64, 1024)
	for i := range col {
		col[i] = uint64(i % 50)
	}
	data := Encode(&Payload{Columns: [][]uint64{col}})
	naive := 8 * len(col)
	if len(data) > naive/4 {
		t.Errorf("1024 small values encoded to %d bytes; want well under naive/4 = %d", len(data), naive/4)
	}
}

// TestGoldenV2 pins the byte layout: the checked-in golden file must
// decode to the reference payload and re-encode byte-exactly. Any
// layout change breaks this test and must come with a version bump
// (and a new golden file via -update).
func TestGoldenV2(t *testing.T) {
	p := goldenPayload()
	path := filepath.Join("testdata", "golden_v2.bin")
	data := Encode(p)
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("reading golden file (regenerate with -update): %v", err)
	}
	if !bytes.Equal(data, want) {
		t.Fatalf("Encode output differs from the checked-in golden file (%d vs %d bytes): the v2 byte layout changed — bump tablecodec.Version", len(data), len(want))
	}
	dec, err := Decode(want)
	if err != nil {
		t.Fatalf("decoding golden file: %v", err)
	}
	if !payloadEqual(p, dec) {
		t.Fatal("golden file decodes to a different payload")
	}
	h, err := ReadHeader(want)
	if err != nil {
		t.Fatal(err)
	}
	if h.Version != Version || h.Columns != len(p.Columns) || h.Strings != len(p.Strings) {
		t.Errorf("golden header %+v inconsistent with payload", h)
	}
}

// goldenPayload is a deterministic payload shaped like a real table
// entry: a meta blob, a codec string table, and mixed-magnitude
// columns (flags, widths, zigzagged times).
func goldenPayload() *Payload {
	p := &Payload{
		Meta:    []byte("soctap-table-v2\x00golden-key\x0040\x0048"),
		Strings: []string{"", "selenc", "dict"},
	}
	flags := make([]uint64, 160)
	widths := make([]uint64, 160)
	times := make([]uint64, 160)
	for i := range flags {
		flags[i] = uint64(i % 4)
		widths[i] = uint64((i * 7) % 65)
		times[i] = ZigZag(int64(i)*1000003 - 500)
	}
	times[31] = ZigZag(math.MaxInt64 / 3) // exception-path value
	p.Columns = [][]uint64{flags, widths, times}
	return p
}

func FuzzTableCodecRoundTrip(f *testing.F) {
	f.Add([]byte{})
	f.Add(Encode(&Payload{}))
	f.Add(Encode(goldenPayload()))
	f.Add(Encode(&Payload{Meta: []byte("m"), Strings: []string{"a", ""}, Columns: [][]uint64{{0, math.MaxUint64, 1 << 33}}}))
	data := Encode(&Payload{Columns: [][]uint64{{7, 7, 7, 900}}})
	f.Add(data[:len(data)-2])    // truncated payload
	f.Add(append(data, 1, 2, 3)) // trailing garbage
	f.Fuzz(func(t *testing.T, data []byte) {
		// Decoding arbitrary bytes must never panic; a success must be
		// stable under re-encode (Encode∘Decode a fixed point) and
		// consistent with the cheap validators.
		p, err := Decode(data)
		if err != nil {
			if !errors.Is(err, ErrFormat) {
				t.Fatalf("decode error %v does not wrap ErrFormat", err)
			}
			return
		}
		if _, err := Verify(data); err != nil {
			t.Fatalf("Decode succeeded but Verify rejects: %v", err)
		}
		re := Encode(p)
		p2, err := Decode(re)
		if err != nil {
			t.Fatalf("re-decode of re-encode failed: %v", err)
		}
		if !payloadEqual(p, p2) {
			t.Fatal("re-encode round trip changed the payload")
		}
	})
}

func TestDecodeArbitraryPrefixNeverPanics(t *testing.T) {
	// A cheap deterministic sweep in the same spirit as the fuzz target,
	// so plain `go test` exercises the truncation space too.
	data := Encode(goldenPayload())
	for n := 0; n <= len(data); n += 7 {
		_, _ = Decode(data[:n])
		mut := append([]byte(nil), data...)
		mut[n*13%len(mut)] ^= 0xa5
		_, _ = Decode(mut)
	}
}
