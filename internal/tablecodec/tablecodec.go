// Package tablecodec is the compact on-disk container format ("format
// v2") for precomputed lookup-table payloads. The gob encoding it
// replaces pays reflection on every cold load and stores field names
// per entry; here a payload is a set of uint64 columns encoded as
// FastPFor-style fixed-width bitpacked blocks with a per-block
// exception list — the classic Lemire-family layout: most values in a
// block share a small bit width, the few outliers are patched from a
// side list — preceded by a small fixed header carrying magic, version,
// counts and checksums.
//
// The header is self-validating: magic, version and a header CRC are
// checked before anything else is touched, and the payload is guarded
// by its own length + CRC, so stale or corrupt entries are rejected
// cheaply (ReadHeader / Verify) without decoding a single block.
// Decoding is exact — Encode∘Decode is the identity on every payload
// (fuzz- and golden-tested) — and the byte layout is fixed
// little-endian, so entries are portable across architectures.
//
// The package is deliberately generic: it knows nothing about the
// lookup tables themselves. Callers (internal/core's disk cache) map
// their structures onto columns, a string table, and an opaque metadata
// blob, and get content addressing and schema checks from the Meta
// bytes they control.
package tablecodec

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"math/bits"
)

// ErrFormat is wrapped by every decoding failure: callers that treat
// any malformed entry as a cache miss can match this one sentinel.
var ErrFormat = errors.New("tablecodec: malformed entry")

// Version is the container format version written by Encode and
// required by Decode. It is "format v2" of the table cache: version 1
// was the gob encoding, which this package supersedes.
const Version = 2

// magic opens every entry. It never matches a gob stream (gob begins
// with a length byte), so format sniffing is unambiguous.
const magic = "STC2"

// headerSize is the fixed prefix: magic, version, flags, metaLen,
// stringCount, columnCount, payloadLen, payloadCRC, headerCRC.
const headerSize = 32

// blockSize is the number of values per bitpacked block. 64 keeps the
// exception index a single byte and the per-block width search cheap.
const blockSize = 64

// Sanity bounds on header-declared counts, enforced before any
// allocation so a corrupt header cannot demand gigabytes.
const (
	maxColumns = 1 << 16
	maxStrings = 1 << 16
	maxValues  = 1 << 26 // per column
)

// Payload is one decoded entry: an opaque metadata blob (the caller's
// schema/key/version check), a deduplicated string table, and the
// uint64 value columns.
type Payload struct {
	Meta    []byte
	Strings []string
	Columns [][]uint64
}

// Header is the decoded fixed prefix of an entry.
type Header struct {
	Version    int
	MetaLen    int
	Strings    int
	Columns    int
	PayloadLen int
}

// ZigZag maps a signed value onto the unsigned column domain so that
// small-magnitude values (of either sign) stay small: 0,-1,1,-2 →
// 0,1,2,3. UnZigZag inverts it exactly for every int64.
func ZigZag(v int64) uint64 { return uint64(v<<1) ^ uint64(v>>63) }

// UnZigZag inverts ZigZag.
func UnZigZag(u uint64) int64 { return int64(u>>1) ^ -int64(u&1) }

// Encode serializes the payload. The layout is deterministic: one
// input, one byte sequence (the golden-file test pins it).
func Encode(p *Payload) []byte {
	body := make([]byte, 0, 256+len(p.Meta))
	body = append(body, p.Meta...)
	for _, s := range p.Strings {
		body = binary.AppendUvarint(body, uint64(len(s)))
		body = append(body, s...)
	}
	for _, col := range p.Columns {
		body = binary.AppendUvarint(body, uint64(len(col)))
		for off := 0; off < len(col); off += blockSize {
			end := off + blockSize
			if end > len(col) {
				end = len(col)
			}
			body = appendBlock(body, col[off:end])
		}
	}

	out := make([]byte, headerSize, headerSize+len(body))
	copy(out[0:4], magic)
	binary.LittleEndian.PutUint16(out[4:6], Version)
	binary.LittleEndian.PutUint16(out[6:8], 0) // flags, reserved
	binary.LittleEndian.PutUint32(out[8:12], uint32(len(p.Meta)))
	binary.LittleEndian.PutUint32(out[12:16], uint32(len(p.Strings)))
	binary.LittleEndian.PutUint32(out[16:20], uint32(len(p.Columns)))
	binary.LittleEndian.PutUint32(out[20:24], uint32(len(body)))
	binary.LittleEndian.PutUint32(out[24:28], crc32.ChecksumIEEE(body))
	binary.LittleEndian.PutUint32(out[28:32], crc32.ChecksumIEEE(out[0:28]))
	return append(out, body...)
}

// appendBlock bitpacks up to blockSize values: a width byte, an
// exception-count byte, the packed low bits of every value, then the
// exceptions (index byte + uvarint of the bits above the width). The
// width minimizing the encoded size wins; ties go to the narrower
// width.
func appendBlock(dst []byte, vals []uint64) []byte {
	b, excCount := chooseWidth(vals)
	dst = append(dst, byte(b), byte(excCount))
	// Packed low bits, LSB-first, addressed bitwise (a single 64-bit
	// accumulator overflows for widths above 56).
	start := len(dst)
	dst = append(dst, make([]byte, (len(vals)*b+7)/8)...)
	packed := dst[start:]
	mask := widthMask(b)
	for i, v := range vals {
		setBits(packed, i*b, b, v&mask)
	}
	if b < 64 {
		for i, v := range vals {
			if high := v >> b; high != 0 {
				dst = append(dst, byte(i))
				dst = binary.AppendUvarint(dst, high)
			}
		}
	}
	return dst
}

// widthMask is (1<<b)-1 with the b == 64 case handled.
func widthMask(b int) uint64 {
	if b >= 64 {
		return ^uint64(0)
	}
	return 1<<uint(b) - 1
}

// setBits writes the low b bits of v into p at bit offset pos,
// LSB-first. p must already be zeroed there (freshly appended).
func setBits(p []byte, pos, b int, v uint64) {
	for i := 0; i < b; {
		idx, off := (pos+i)>>3, (pos+i)&7
		take := 8 - off
		if take > b-i {
			take = b - i
		}
		p[idx] |= byte(((v >> uint(i)) & (1<<uint(take) - 1)) << uint(off))
		i += take
	}
}

// getBits reads b bits from p at bit offset pos, LSB-first — the exact
// inverse of setBits.
func getBits(p []byte, pos, b int) uint64 {
	var v uint64
	for i := 0; i < b; {
		idx, off := (pos+i)>>3, (pos+i)&7
		take := 8 - off
		if take > b-i {
			take = b - i
		}
		v |= uint64(p[idx]>>uint(off)&(1<<uint(take)-1)) << uint(i)
		i += take
	}
	return v
}

// chooseWidth picks the bit width minimizing the block's encoded size.
// Candidates are the distinct bit lengths present (plus zero): any
// other width is dominated by the next length down.
func chooseWidth(vals []uint64) (width, exceptions int) {
	var lens [65]int8 // 1 where some value has this bit length
	for _, v := range vals {
		lens[bits.Len64(v)] = 1
	}
	lens[0] = 1
	bestW, bestExc, bestCost := -1, 0, 0
	for b := 0; b <= 64; b++ {
		if lens[b] == 0 {
			continue
		}
		cost := (len(vals)*b + 7) / 8
		exc := 0
		if b < 64 {
			for _, v := range vals {
				if high := v >> b; high != 0 {
					exc++
					cost += 1 + uvarintLen(high)
				}
			}
		}
		if bestW < 0 || cost < bestCost {
			bestW, bestExc, bestCost = b, exc, cost
		}
	}
	return bestW, bestExc
}

// uvarintLen is the encoded size of v under binary.AppendUvarint.
func uvarintLen(v uint64) int {
	n := 1
	for v >= 0x80 {
		v >>= 7
		n++
	}
	return n
}

// HasMagic reports whether data begins with the container magic — the
// format sniff that routes mixed-version caches: magic ⇒ judge the
// entry by v2 rules (a damaged v2 entry is corrupt, never retried as
// something else), no magic ⇒ a pre-container (gob) entry.
func HasMagic(data []byte) bool {
	return len(data) >= 4 && string(data[0:4]) == magic
}

// ReadHeader validates the fixed prefix alone — magic, version, header
// CRC, and count sanity bounds — without touching the payload. It is
// the cheap staleness filter: a stale or foreign entry fails here in a
// few dozen byte reads.
func ReadHeader(data []byte) (Header, error) {
	if len(data) < headerSize {
		return Header{}, fmt.Errorf("%w: %d-byte entry shorter than the %d-byte header", ErrFormat, len(data), headerSize)
	}
	if string(data[0:4]) != magic {
		return Header{}, fmt.Errorf("%w: bad magic %q", ErrFormat, data[0:4])
	}
	if got := crc32.ChecksumIEEE(data[0:28]); got != binary.LittleEndian.Uint32(data[28:32]) {
		return Header{}, fmt.Errorf("%w: header checksum mismatch", ErrFormat)
	}
	h := Header{
		Version:    int(binary.LittleEndian.Uint16(data[4:6])),
		MetaLen:    int(binary.LittleEndian.Uint32(data[8:12])),
		Strings:    int(binary.LittleEndian.Uint32(data[12:16])),
		Columns:    int(binary.LittleEndian.Uint32(data[16:20])),
		PayloadLen: int(binary.LittleEndian.Uint32(data[20:24])),
	}
	if h.Version != Version {
		return Header{}, fmt.Errorf("%w: version %d (want %d)", ErrFormat, h.Version, Version)
	}
	if h.Strings > maxStrings || h.Columns > maxColumns || h.MetaLen > h.PayloadLen {
		return Header{}, fmt.Errorf("%w: implausible header counts", ErrFormat)
	}
	return h, nil
}

// Verify is ReadHeader plus the payload guards — exact length and
// payload CRC — still without decoding any block. A Verify-clean entry
// decodes or the format itself is at fault.
func Verify(data []byte) (Header, error) {
	h, err := ReadHeader(data)
	if err != nil {
		return Header{}, err
	}
	if len(data) != headerSize+h.PayloadLen {
		return Header{}, fmt.Errorf("%w: entry is %d bytes, header promises %d", ErrFormat, len(data), headerSize+h.PayloadLen)
	}
	if got := crc32.ChecksumIEEE(data[headerSize:]); got != binary.LittleEndian.Uint32(data[24:28]) {
		return Header{}, fmt.Errorf("%w: payload checksum mismatch", ErrFormat)
	}
	return h, nil
}

// Decode parses a complete entry. Every failure wraps ErrFormat.
func Decode(data []byte) (*Payload, error) {
	h, err := Verify(data)
	if err != nil {
		return nil, err
	}
	r := reader{data: data[headerSize:]}
	p := &Payload{Meta: append([]byte(nil), r.take(h.MetaLen)...)}
	if h.Strings > 0 {
		p.Strings = make([]string, h.Strings)
		for i := range p.Strings {
			n := r.uvarint()
			if n > uint64(len(r.data)-r.off) {
				return nil, fmt.Errorf("%w: string %d overruns the payload", ErrFormat, i)
			}
			p.Strings[i] = string(r.take(int(n)))
		}
	}
	if h.Columns > 0 {
		p.Columns = make([][]uint64, h.Columns)
		for i := range p.Columns {
			col, err := r.column()
			if err != nil {
				return nil, fmt.Errorf("column %d: %w", i, err)
			}
			p.Columns[i] = col
		}
	}
	if r.err != nil {
		return nil, fmt.Errorf("%w: truncated payload", ErrFormat)
	}
	if r.off != len(r.data) {
		return nil, fmt.Errorf("%w: %d trailing bytes after the last column", ErrFormat, len(r.data)-r.off)
	}
	return p, nil
}

// reader is a cursor over the payload with sticky error state.
type reader struct {
	data []byte
	off  int
	err  error
}

func (r *reader) fail() {
	if r.err == nil {
		r.err = ErrFormat
	}
}

// take returns the next n bytes (aliasing data) or an empty slice after
// marking the reader failed.
func (r *reader) take(n int) []byte {
	if r.err != nil || n < 0 || n > len(r.data)-r.off {
		r.fail()
		return nil
	}
	b := r.data[r.off : r.off+n]
	r.off += n
	return b
}

func (r *reader) byte() byte {
	b := r.take(1)
	if len(b) == 0 {
		return 0
	}
	return b[0]
}

func (r *reader) uvarint() uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.data[r.off:])
	if n <= 0 {
		r.fail()
		return 0
	}
	r.off += n
	return v
}

// column decodes one column: a count, then bitpacked blocks.
func (r *reader) column() ([]uint64, error) {
	n := r.uvarint()
	if r.err != nil {
		return nil, fmt.Errorf("%w: truncated column header", ErrFormat)
	}
	if n > maxValues {
		return nil, fmt.Errorf("%w: column declares %d values", ErrFormat, n)
	}
	col := make([]uint64, 0, min(int(n), (len(r.data)-r.off)*8+blockSize))
	for len(col) < int(n) {
		cnt := int(n) - len(col)
		if cnt > blockSize {
			cnt = blockSize
		}
		col = r.block(col, cnt)
		if r.err != nil {
			return nil, fmt.Errorf("%w: truncated block", ErrFormat)
		}
	}
	return col, nil
}

// block decodes one bitpacked block of cnt values, appending to col.
func (r *reader) block(col []uint64, cnt int) []uint64 {
	b := int(r.byte())
	exc := int(r.byte())
	if r.err != nil {
		return col
	}
	if b > 64 || exc > cnt {
		r.fail()
		return col
	}
	packed := r.take((cnt*b + 7) / 8)
	if r.err != nil {
		return col
	}
	base := len(col)
	switch {
	case b == 0:
		for i := 0; i < cnt; i++ {
			col = append(col, 0)
		}
	case b <= 57:
		// Word-at-a-time fast path: read 8 bytes at the value's byte
		// offset and shift the bit remainder away. The remainder is at
		// most 7 bits, so b+7 <= 64 keeps every value inside one load.
		// The packed bytes are copied into a zero-padded scratch buffer
		// so loads near the end never run past the payload (a block
		// packs at most 64 values x 64 bits = 512 bytes).
		var scratch [512 + 8]byte
		copy(scratch[:], packed)
		mask := widthMask(b)
		for i, pos := 0, 0; i < cnt; i, pos = i+1, pos+b {
			w := binary.LittleEndian.Uint64(scratch[pos>>3:])
			col = append(col, w>>uint(pos&7)&mask)
		}
	default:
		for i := 0; i < cnt; i++ {
			col = append(col, getBits(packed, i*b, b))
		}
	}
	if b < 64 {
		prev := -1
		for e := 0; e < exc; e++ {
			idx := int(r.byte())
			high := r.uvarint()
			if r.err != nil {
				return col
			}
			// Indices are strictly increasing by construction; a
			// repeated or out-of-range index is corruption. A zero high
			// part would have been no exception at all.
			if idx <= prev || idx >= cnt || high == 0 {
				r.fail()
				return col
			}
			prev = idx
			col[base+idx] |= high << b
		}
	} else if exc != 0 {
		r.fail()
	}
	return col
}
