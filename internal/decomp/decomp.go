// Package decomp models the on-chip selective-encoding decompressor: a
// cycle-accurate behavioral state machine that consumes one w-bit
// codeword per ATE clock cycle and emits m-bit scan slices into the
// wrapper chains, plus a hardware-cost estimate used for the "<1% of a
// million-gate design" claim in the paper.
package decomp

import (
	"fmt"

	"soctap/internal/bitvec"
	"soctap/internal/selenc"
)

// Decompressor is the behavioral model of one core-level decompressor
// instance with m outputs. Feed it one codeword per cycle with Step;
// whenever a codeword completes the previous slice, the slice is
// returned. Call Flush after the last codeword to retrieve the final
// slice.
type Decompressor struct {
	m       int
	k       int
	nGroups int

	cur          *bitvec.Vector // slice under construction
	pendingGroup int            // group index awaiting its data codeword, or -1
	cycles       int64          // codewords consumed
	slices       int64          // slices emitted
}

// New returns a decompressor with m slice outputs.
func New(m int) (*Decompressor, error) {
	if m < 1 {
		return nil, fmt.Errorf("decomp: invalid output width %d", m)
	}
	return &Decompressor{
		m:            m,
		k:            selenc.PayloadBits(m),
		nGroups:      selenc.GroupCount(m),
		pendingGroup: -1,
	}, nil
}

// M returns the number of slice outputs.
func (d *Decompressor) M() int { return d.m }

// InputWidth returns the decompressor's TAM-side width w.
func (d *Decompressor) InputWidth() int { return selenc.CodewordWidth(d.m) }

// Cycles returns the number of codewords consumed so far. One codeword
// is one ATE clock cycle on the w input wires.
func (d *Decompressor) Cycles() int64 { return d.cycles }

// Slices returns the number of completed slices emitted so far.
func (d *Decompressor) Slices() int64 { return d.slices }

// Step consumes one codeword. If the codeword is a header and a slice
// was under construction, that completed slice is returned (the hardware
// transfers it to the wrapper chains in the same cycle the header of the
// next slice arrives).
func (d *Decompressor) Step(cw selenc.Codeword) (*bitvec.Vector, error) {
	d.cycles++
	if d.pendingGroup >= 0 && cw.Prefix != selenc.PrefixData {
		return nil, fmt.Errorf("decomp: cycle %d: expected data codeword for group %d", d.cycles, d.pendingGroup)
	}
	switch cw.Prefix {
	case selenc.PrefixHeader:
		done := d.cur
		d.cur = bitvec.New(d.m)
		if cw.Payload&1 != 0 { // fill flag
			d.cur.SetAll(true)
		}
		if done != nil {
			d.slices++
		}
		return done, nil
	case selenc.PrefixSingle:
		if d.cur == nil {
			return nil, fmt.Errorf("decomp: cycle %d: single-bit codeword before any header", d.cycles)
		}
		pos := int(cw.Payload)
		if pos >= d.m {
			return nil, fmt.Errorf("decomp: cycle %d: target index %d out of range [0,%d)", d.cycles, pos, d.m)
		}
		d.cur.Set(pos, !d.cur.Get(pos))
		return nil, nil
	case selenc.PrefixGroup:
		if d.cur == nil {
			return nil, fmt.Errorf("decomp: cycle %d: group codeword before any header", d.cycles)
		}
		g := int(cw.Payload)
		if g >= d.nGroups {
			return nil, fmt.Errorf("decomp: cycle %d: group index %d out of range [0,%d)", d.cycles, g, d.nGroups)
		}
		d.pendingGroup = g
		return nil, nil
	case selenc.PrefixData:
		if d.pendingGroup < 0 {
			return nil, fmt.Errorf("decomp: cycle %d: stray data codeword", d.cycles)
		}
		base := d.pendingGroup * d.k
		for b := 0; b < d.k && base+b < d.m; b++ {
			d.cur.Set(base+b, cw.Payload&(1<<uint(b)) != 0)
		}
		d.pendingGroup = -1
		return nil, nil
	default:
		return nil, fmt.Errorf("decomp: cycle %d: invalid prefix %d", d.cycles, cw.Prefix)
	}
}

// Flush terminates the stream and returns the final slice, if any.
func (d *Decompressor) Flush() (*bitvec.Vector, error) {
	if d.pendingGroup >= 0 {
		return nil, fmt.Errorf("decomp: stream ended inside a group-copy pair")
	}
	done := d.cur
	d.cur = nil
	if done != nil {
		d.slices++
	}
	return done, nil
}

// Run decompresses an entire codeword stream, returning all slices. It
// is equivalent to selenc.DecodeStream but exercises the cycle-accurate
// machine.
func (d *Decompressor) Run(stream []selenc.Codeword) ([]*bitvec.Vector, error) {
	var out []*bitvec.Vector
	for _, cw := range stream {
		s, err := d.Step(cw)
		if err != nil {
			return nil, err
		}
		if s != nil {
			out = append(out, s)
		}
	}
	s, err := d.Flush()
	if err != nil {
		return nil, err
	}
	if s != nil {
		out = append(out, s)
	}
	return out, nil
}

// Cost is the estimated hardware cost of one decompressor instance.
type Cost struct {
	FlipFlops int
	Gates     int
}

// HardwareCost estimates the silicon cost of a decompressor with m
// outputs, following the structure reported in the paper: a fixed
// controller of 5 flip-flops and 23 combinational gates, plus an
// (w,m)-dependent datapath of an m-bit slice register, a k-bit
// payload/counter register, and index-decode logic.
func HardwareCost(m int) Cost {
	k := selenc.PayloadBits(m)
	return Cost{
		FlipFlops: m + k + 5,
		Gates:     23 + 6*k + m/2,
	}
}

// CostFraction returns the decompressor cost as a fraction of a design
// with the given gate count, counting each flip-flop as gateEquivalents
// gates (a common synthesis approximation is ~6).
func (c Cost) CostFraction(designGates, gateEquivalents int) float64 {
	if designGates <= 0 {
		return 0
	}
	return float64(c.Gates+c.FlipFlops*gateEquivalents) / float64(designGates)
}
