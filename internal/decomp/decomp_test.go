package decomp

import (
	"math/rand"
	"testing"
	"testing/quick"

	"soctap/internal/selenc"
)

func TestNewValidation(t *testing.T) {
	if _, err := New(0); err == nil {
		t.Error("New(0) accepted")
	}
	d, err := New(200)
	if err != nil {
		t.Fatal(err)
	}
	if d.M() != 200 {
		t.Errorf("M = %d", d.M())
	}
	if d.InputWidth() != 10 { // ceil(log2(201)) + 2 = 8 + 2
		t.Errorf("InputWidth = %d, want 10", d.InputWidth())
	}
}

func TestRunMatchesDecodeStream(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 100; trial++ {
		m := rng.Intn(300) + 1
		var stream []selenc.Codeword
		nSlices := rng.Intn(10) + 1
		for s := 0; s < nSlices; s++ {
			var care []selenc.CareBit
			for pos := 0; pos < m; pos++ {
				if rng.Float64() < 0.1 {
					care = append(care, selenc.CareBit{Pos: pos, Value: rng.Intn(2) == 1})
				}
			}
			stream = append(stream, selenc.EncodeSlice(m, care)...)
		}
		want, err := selenc.DecodeStream(m, stream)
		if err != nil {
			t.Fatal(err)
		}
		d, _ := New(m)
		got, err := d.Run(stream)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(want) {
			t.Fatalf("m=%d: %d slices, want %d", m, len(got), len(want))
		}
		for i := range got {
			if !got[i].Equal(want[i]) {
				t.Fatalf("m=%d slice %d: %s != %s", m, i, got[i], want[i])
			}
		}
		if d.Cycles() != int64(len(stream)) {
			t.Errorf("Cycles = %d, want %d (one codeword per cycle)", d.Cycles(), len(stream))
		}
		if d.Slices() != int64(nSlices) {
			t.Errorf("Slices = %d, want %d", d.Slices(), nSlices)
		}
	}
}

func TestStepEmitsOnNextHeader(t *testing.T) {
	m := 16
	d, _ := New(m)
	s1 := selenc.EncodeSlice(m, []selenc.CareBit{{Pos: 3, Value: true}, {Pos: 5, Value: false}, {Pos: 9, Value: false}})
	s2 := selenc.EncodeSlice(m, nil)
	for i, cw := range s1 {
		out, err := d.Step(cw)
		if err != nil {
			t.Fatal(err)
		}
		if out != nil {
			t.Fatalf("codeword %d of first slice emitted a slice early", i)
		}
	}
	out, err := d.Step(s2[0])
	if err != nil {
		t.Fatal(err)
	}
	if out == nil {
		t.Fatal("second header did not emit first slice")
	}
	if !out.Get(3) || out.Get(5) || out.Get(9) {
		t.Error("emitted slice content wrong")
	}
	last, err := d.Flush()
	if err != nil || last == nil {
		t.Fatal("flush did not emit final slice")
	}
	if last.OnesCount() != 0 {
		t.Error("final all-fill-0 slice has ones")
	}
	if again, _ := d.Flush(); again != nil {
		t.Error("second flush emitted a slice")
	}
}

func TestStepErrors(t *testing.T) {
	mk := func() *Decompressor { d, _ := New(8); return d }

	d := mk()
	if _, err := d.Step(selenc.Codeword{Prefix: selenc.PrefixSingle, Payload: 1}); err == nil {
		t.Error("single before header accepted")
	}
	d = mk()
	if _, err := d.Step(selenc.Codeword{Prefix: selenc.PrefixGroup, Payload: 0}); err == nil {
		t.Error("group before header accepted")
	}
	d = mk()
	if _, err := d.Step(selenc.Codeword{Prefix: selenc.PrefixData, Payload: 0}); err == nil {
		t.Error("stray data accepted")
	}
	d = mk()
	d.Step(selenc.Codeword{Prefix: selenc.PrefixHeader})
	if _, err := d.Step(selenc.Codeword{Prefix: selenc.PrefixSingle, Payload: 8}); err == nil {
		t.Error("out-of-range target accepted")
	}
	d = mk()
	d.Step(selenc.Codeword{Prefix: selenc.PrefixHeader})
	if _, err := d.Step(selenc.Codeword{Prefix: selenc.PrefixGroup, Payload: 9}); err == nil {
		t.Error("out-of-range group accepted")
	}
	d = mk()
	d.Step(selenc.Codeword{Prefix: selenc.PrefixHeader})
	d.Step(selenc.Codeword{Prefix: selenc.PrefixGroup, Payload: 0})
	if _, err := d.Step(selenc.Codeword{Prefix: selenc.PrefixSingle, Payload: 0}); err == nil {
		t.Error("non-data after group accepted")
	}
	d = mk()
	d.Step(selenc.Codeword{Prefix: selenc.PrefixHeader})
	d.Step(selenc.Codeword{Prefix: selenc.PrefixGroup, Payload: 0})
	if _, err := d.Flush(); err == nil {
		t.Error("flush inside group-copy pair accepted")
	}
}

// Property: the machine agrees with the reference decoder on random
// encoded streams and charges exactly one cycle per codeword.
func TestQuickMachineEquivalence(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := rng.Intn(200) + 1
		var stream []selenc.Codeword
		for s := 0; s < rng.Intn(8)+1; s++ {
			var care []selenc.CareBit
			for pos := 0; pos < m; pos++ {
				if rng.Float64() < 0.2 {
					care = append(care, selenc.CareBit{Pos: pos, Value: rng.Intn(2) == 1})
				}
			}
			stream = append(stream, selenc.EncodeSlice(m, care)...)
		}
		want, err := selenc.DecodeStream(m, stream)
		if err != nil {
			return false
		}
		d, _ := New(m)
		got, err := d.Run(stream)
		if err != nil || len(got) != len(want) {
			return false
		}
		for i := range got {
			if !got[i].Equal(want[i]) {
				return false
			}
		}
		return d.Cycles() == int64(len(stream))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

func TestHardwareCost(t *testing.T) {
	c := HardwareCost(255)
	// m + k + 5 = 255 + 8 + 5 = 268 FFs; 23 + 48 + 127 = 198 gates.
	if c.FlipFlops != 268 {
		t.Errorf("FlipFlops = %d, want 268", c.FlipFlops)
	}
	if c.Gates != 198 {
		t.Errorf("Gates = %d, want 198", c.Gates)
	}
	// Monotone in m.
	if HardwareCost(16).FlipFlops >= HardwareCost(64).FlipFlops {
		t.Error("cost not monotone in m")
	}
	// Paper's claim: ~1% of a million-gate design for a large
	// decompressor. Our model must stay in that regime.
	frac := HardwareCost(255).CostFraction(1000000, 6)
	if frac > 0.01 {
		t.Errorf("cost fraction %.4f exceeds 1%% for a 1M-gate design", frac)
	}
	if HardwareCost(8).CostFraction(0, 6) != 0 {
		t.Error("zero-gate design should report 0 fraction")
	}
}

func BenchmarkDecompressRun(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	m := 200
	var stream []selenc.Codeword
	for s := 0; s < 200; s++ {
		var care []selenc.CareBit
		for pos := 0; pos < m; pos++ {
			if rng.Float64() < 0.02 {
				care = append(care, selenc.CareBit{Pos: pos, Value: rng.Intn(2) == 1})
			}
		}
		stream = append(stream, selenc.EncodeSlice(m, care)...)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d, _ := New(m)
		if _, err := d.Run(stream); err != nil {
			b.Fatal(err)
		}
	}
}
