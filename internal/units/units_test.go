package units

import "testing"

func TestParseBytes(t *testing.T) {
	cases := []struct {
		in   string
		want int64
	}{
		{"", 0},
		{"0", 0},
		{"512", 512},
		{"100000", 100000},
		{"1K", 1024},
		{"1k", 1024},
		{"1KB", 1024},
		{"1KiB", 1024},
		{"1kib", 1024},
		{"64M", 64 << 20},
		{"64MB", 64 << 20},
		{"2G", 2 << 30},
		{"2GiB", 2 << 30},
		{"1T", 1 << 40},
		{"1.5G", 3 << 29},
		{"0.5K", 512},
		{" 64M ", 64 << 20},
		{"1536K", 1536 << 10},
		{"8191B", 8191},
	}
	for _, tc := range cases {
		got, err := ParseBytes(tc.in)
		if err != nil {
			t.Errorf("ParseBytes(%q): %v", tc.in, err)
			continue
		}
		if got != tc.want {
			t.Errorf("ParseBytes(%q) = %d, want %d", tc.in, got, tc.want)
		}
	}
}

func TestParseBytesErrors(t *testing.T) {
	for _, in := range []string{"x", "12Q", "-1", "-1K", "M", "1..5G", "9999999999T", "1 5K"} {
		if v, err := ParseBytes(in); err == nil {
			t.Errorf("ParseBytes(%q) = %d, want error", in, v)
		}
	}
}

func TestFormatBytes(t *testing.T) {
	cases := []struct {
		in   int64
		want string
	}{
		{0, "0"},
		{512, "512"},
		{1023, "1023"},
		{1024, "1K"},
		{1536, "1.5K"},
		{64 << 20, "64M"},
		{3 << 29, "1.5G"},
		{1 << 40, "1T"},
	}
	for _, tc := range cases {
		if got := FormatBytes(tc.in); got != tc.want {
			t.Errorf("FormatBytes(%d) = %q, want %q", tc.in, got, tc.want)
		}
	}
}

func TestRoundTrip(t *testing.T) {
	for _, n := range []int64{0, 1, 1023, 1024, 1536, 64 << 20, 3 << 29, 1 << 40} {
		got, err := ParseBytes(FormatBytes(n))
		if err != nil {
			t.Fatalf("ParseBytes(FormatBytes(%d)): %v", n, err)
		}
		if got != n {
			t.Errorf("round trip %d -> %q -> %d", n, FormatBytes(n), got)
		}
	}
}
