// Package units parses and formats human byte sizes for the cache
// bound flags (-table-cache-mem, -table-cache-size): "256M", "2GiB",
// "1024" and friends. Suffixes are binary (K = KiB = 1024) — cache
// budgets, not disk-marketing sizes — and case-insensitive, with an
// optional "B"/"iB" tail.
package units

import (
	"fmt"
	"strconv"
	"strings"
)

// suffixes maps a normalized (upper-case, B/iB-stripped) unit to its
// multiplier.
var suffixes = map[string]int64{
	"":  1,
	"K": 1 << 10,
	"M": 1 << 20,
	"G": 1 << 30,
	"T": 1 << 40,
}

// ParseBytes converts a human size ("64M", "2GiB", "1536K", "100000")
// to bytes. The empty string and "0" mean zero (unbounded for the cache
// flags). Fractional values are allowed with a unit ("1.5G") and
// truncate toward zero.
func ParseBytes(s string) (int64, error) {
	in := strings.TrimSpace(s)
	if in == "" {
		return 0, nil
	}
	u := strings.ToUpper(in)
	u = strings.TrimSuffix(u, "IB")
	u = strings.TrimSuffix(u, "B")
	num := u
	unit := ""
	if n := len(u); n > 0 {
		if c := u[n-1]; c < '0' || c > '9' {
			num, unit = u[:n-1], u[n-1:]
		}
	}
	mult, ok := suffixes[unit]
	if !ok {
		return 0, fmt.Errorf("units: unknown size suffix in %q", s)
	}
	if num == "" {
		return 0, fmt.Errorf("units: no number in %q", s)
	}
	if mult == 1 || !strings.Contains(num, ".") {
		v, err := strconv.ParseInt(num, 10, 64)
		if err != nil {
			return 0, fmt.Errorf("units: bad size %q: %w", s, err)
		}
		if v < 0 {
			return 0, fmt.Errorf("units: negative size %q", s)
		}
		if mult > 1 && v > (1<<63-1)/mult {
			return 0, fmt.Errorf("units: size %q overflows", s)
		}
		return v * mult, nil
	}
	f, err := strconv.ParseFloat(num, 64)
	if err != nil {
		return 0, fmt.Errorf("units: bad size %q: %w", s, err)
	}
	if f < 0 {
		return 0, fmt.Errorf("units: negative size %q", s)
	}
	v := f * float64(mult)
	if v >= 1<<63 {
		return 0, fmt.Errorf("units: size %q overflows", s)
	}
	return int64(v), nil
}

// FormatBytes renders n with the largest binary suffix that divides it
// cleanly enough to read ("64.0M", "1.5G", "512"), matching the inputs
// ParseBytes accepts.
func FormatBytes(n int64) string {
	if n < 1<<10 {
		return strconv.FormatInt(n, 10)
	}
	for _, u := range []struct {
		name string
		mult int64
	}{{"T", 1 << 40}, {"G", 1 << 30}, {"M", 1 << 20}, {"K", 1 << 10}} {
		if n >= u.mult {
			v := float64(n) / float64(u.mult)
			if v == float64(int64(v)) {
				return fmt.Sprintf("%d%s", int64(v), u.name)
			}
			return fmt.Sprintf("%.1f%s", v, u.name)
		}
	}
	return strconv.FormatInt(n, 10)
}
