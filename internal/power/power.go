// Package power estimates scan test power from test cubes using the
// standard weighted-transition-count (WTC) model (Sankaralingam, Oruganti
// & Touba): a transition entering a scan chain early is shifted through
// more cells and therefore dissipates proportionally more switching
// energy. Power estimates close the loop with the power-constrained
// scheduler (sched.GreedyPower): instead of arbitrary per-core ratings,
// the SOC plan can use WTC derived from the very stimuli the planner
// delivers — including the effect of the X-fill strategy chosen by the
// compression scheme.
package power

import (
	"fmt"

	"soctap/internal/soc"
	"soctap/internal/wrapper"
)

// FillStrategy resolves don't-care stimulus bits for power estimation.
type FillStrategy int

const (
	// FillZero models direct access with 0-fill — the classic
	// low-power fill.
	FillZero FillStrategy = iota
	// FillSlice models the selective-encoding decompressor: every X in
	// a slice takes the slice's majority care value.
	FillSlice
	// FillAlternate is the pessimistic reference: X bits alternate
	// 0/1/0/1 along each chain, maximizing transitions.
	FillAlternate
)

// String names the strategy.
func (f FillStrategy) String() string {
	switch f {
	case FillZero:
		return "zero-fill"
	case FillSlice:
		return "slice-fill"
	case FillAlternate:
		return "alternate-fill"
	default:
		return fmt.Sprintf("FillStrategy(%d)", int(f))
	}
}

// Estimate summarizes scan-in switching activity for one core and
// wrapper configuration.
type Estimate struct {
	Core     string
	M        int
	Fill     FillStrategy
	Patterns int
	// MeanWTC is the average weighted transition count per pattern
	// (summed over all wrapper chains).
	MeanWTC float64
	// PeakWTC is the maximum per-pattern WTC — the number a thermal
	// ceiling must respect.
	PeakWTC int64
}

// ScanInPower computes WTC estimates for the core's scan-in stimuli
// through a wrapper with m chains under the given fill strategy.
func ScanInPower(c *soc.Core, m int, fill FillStrategy) (*Estimate, error) {
	d, err := wrapper.New(c, m)
	if err != nil {
		return nil, err
	}
	ts, err := c.TestSet()
	if err != nil {
		return nil, err
	}
	refs := d.StimulusMap()
	si := d.ScanIn

	est := &Estimate{Core: c.Name, M: m, Fill: fill, Patterns: ts.Len()}

	// Per-pattern dense reconstruction: value[ch][depth]. Reused across
	// patterns; care[] marks specified cells per pattern.
	type cell struct {
		specified bool
		value     bool
	}
	grid := make([][]cell, m)
	for ch := range grid {
		grid[ch] = make([]cell, si)
	}
	sliceOnes := make([]int, si)
	sliceCare := make([]int, si)

	var total int64
	for _, cb := range ts.Cubes {
		for ch := range grid {
			for dep := range grid[ch] {
				grid[ch][dep] = cell{}
			}
		}
		for i := range sliceOnes {
			sliceOnes[i], sliceCare[i] = 0, 0
		}
		for _, bit := range cb.Care {
			r := refs[bit.Pos]
			grid[r.Chain][r.Depth] = cell{specified: true, value: bit.Value}
			sliceCare[r.Depth]++
			if bit.Value {
				sliceOnes[r.Depth]++
			}
		}
		// Resolve fills.
		for dep := 0; dep < si; dep++ {
			var f bool
			switch fill {
			case FillZero:
				f = false
			case FillSlice:
				f = sliceOnes[dep]*2 > sliceCare[dep]
			}
			for ch := 0; ch < m; ch++ {
				if grid[ch][dep].specified {
					continue
				}
				v := f
				if fill == FillAlternate {
					v = dep%2 == 1
				}
				grid[ch][dep].value = v
			}
		}
		// WTC: a transition between scan-in slices dep and dep+1 on a
		// chain is shifted through the remaining (si-1-dep) cells.
		var wtc int64
		for ch := 0; ch < m; ch++ {
			row := grid[ch]
			for dep := 0; dep+1 < si; dep++ {
				if row[dep].value != row[dep+1].value {
					wtc += int64(si - 1 - dep)
				}
			}
		}
		total += wtc
		if wtc > est.PeakWTC {
			est.PeakWTC = wtc
		}
	}
	if ts.Len() > 0 {
		est.MeanWTC = float64(total) / float64(ts.Len())
	}
	return est, nil
}

// Profile computes per-core peak WTC values for an SOC under a given
// configuration choice (wrapper width per core), scaled to integer
// power units for sched.GreedyPower. The scale divisor keeps the
// numbers in a tractable range; 0 defaults to 1000.
func Profile(s *soc.SOC, chains func(c *soc.Core) int, fill FillStrategy, scale int64) ([]int, error) {
	if scale <= 0 {
		scale = 1000
	}
	out := make([]int, len(s.Cores))
	for i, c := range s.Cores {
		m := chains(c)
		if m < 1 || m > c.MaxWrapperChains() {
			return nil, fmt.Errorf("power: core %s: invalid wrapper width %d", c.Name, m)
		}
		est, err := ScanInPower(c, m, fill)
		if err != nil {
			return nil, err
		}
		p := est.PeakWTC / scale
		if p < 1 {
			p = 1
		}
		out[i] = int(p)
	}
	return out, nil
}

// FillOfConfigCodec maps a planner codec choice to the fill strategy its
// hardware implies: selective encoding fills per slice; everything else
// is modeled as 0-fill. The codec names mirror the core package's
// constants (duplicated here to keep this substrate free of planner
// dependencies).
func FillOfConfigCodec(codec string) FillStrategy {
	if codec == "selenc" {
		return FillSlice
	}
	return FillZero
}
