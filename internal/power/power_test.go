package power

import (
	"testing"

	"soctap/internal/soc"
)

func powerCore(seed int64, density float64) *soc.Core {
	chains := make([]int, 10)
	for i := range chains {
		chains[i] = 30
	}
	return &soc.Core{
		Name: "p", Inputs: 10, Outputs: 8,
		ScanChains: chains, Patterns: 15,
		CareDensity: density, Clustering: 0.6, Seed: seed,
	}
}

func TestScanInPowerBasics(t *testing.T) {
	c := powerCore(1, 0.1)
	est, err := ScanInPower(c, 10, FillZero)
	if err != nil {
		t.Fatal(err)
	}
	if est.MeanWTC <= 0 || est.PeakWTC <= 0 {
		t.Fatalf("degenerate estimate %+v", est)
	}
	if float64(est.PeakWTC) < est.MeanWTC {
		t.Error("peak below mean")
	}
	if est.Patterns != 15 || est.M != 10 {
		t.Error("metadata wrong")
	}
	if _, err := ScanInPower(c, 0, FillZero); err == nil {
		t.Error("m=0 accepted")
	}
}

func TestFillStrategyOrdering(t *testing.T) {
	// Alternate fill maximizes transitions; the quiet fills must be far
	// below it at low care density (most bits are X).
	c := powerCore(2, 0.05)
	zero, err := ScanInPower(c, 10, FillZero)
	if err != nil {
		t.Fatal(err)
	}
	slice, err := ScanInPower(c, 10, FillSlice)
	if err != nil {
		t.Fatal(err)
	}
	alt, err := ScanInPower(c, 10, FillAlternate)
	if err != nil {
		t.Fatal(err)
	}
	if !(zero.MeanWTC < alt.MeanWTC/3) {
		t.Errorf("0-fill %f not well below alternate %f", zero.MeanWTC, alt.MeanWTC)
	}
	if !(slice.MeanWTC < alt.MeanWTC) {
		t.Errorf("slice-fill %f not below alternate %f", slice.MeanWTC, alt.MeanWTC)
	}
}

func TestWTCHandComputed(t *testing.T) {
	// One chain of 4 cells, one pattern fully specified: 1,0,0,1 in
	// scan-in (depth) order. Transitions at depth 0->1 (weight 3-0=3... )
	// WTC weights: transition between dep and dep+1 counts (si-1-dep).
	// si=4: transitions at dep0 (1->0, weight 3) and dep2 (0->1, weight 1)
	// => WTC = 4.
	c := &soc.Core{
		Name: "hand", Inputs: 0, Outputs: 0, ScanChains: []int{4},
		Patterns: 1, CareDensity: 0.5, Seed: 1,
	}
	ts, err := c.TestSet()
	if err != nil {
		t.Fatal(err)
	}
	cb := ts.Cubes[0]
	cb.Care = cb.Care[:0]
	for i, v := range []bool{true, false, false, true} {
		cb.Set(i, v)
	}
	est, err := ScanInPower(c, 1, FillZero)
	if err != nil {
		t.Fatal(err)
	}
	if est.PeakWTC != 4 {
		t.Errorf("WTC = %d, want 4", est.PeakWTC)
	}
}

func TestProfile(t *testing.T) {
	s := &soc.SOC{Name: "ps", Cores: []*soc.Core{powerCore(3, 0.1), powerCore(4, 0.3)}}
	s.Cores[1].Name = "p2"
	prof, err := Profile(s, func(c *soc.Core) int { return 8 }, FillZero, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(prof) != 2 || prof[0] < 1 || prof[1] < 1 {
		t.Fatalf("profile %v", prof)
	}
	if _, err := Profile(s, func(c *soc.Core) int { return 0 }, FillZero, 10); err == nil {
		t.Error("invalid width accepted")
	}
}

func TestFillOfConfigCodec(t *testing.T) {
	if FillOfConfigCodec("selenc") != FillSlice {
		t.Error("selenc should map to slice fill")
	}
	if FillOfConfigCodec("") != FillZero || FillOfConfigCodec("dict") != FillZero {
		t.Error("non-selenc codecs should map to zero fill")
	}
}

func TestFillStrategyString(t *testing.T) {
	if FillZero.String() != "zero-fill" || FillSlice.String() != "slice-fill" ||
		FillAlternate.String() != "alternate-fill" {
		t.Error("names wrong")
	}
	if FillStrategy(9).String() == "" {
		t.Error("unknown strategy empty")
	}
}
