package serve

// End-to-end tests of the optimization service over real HTTP
// (httptest), exercising the job queue, rate limiter, shared cache,
// streaming, and graceful drain. Run with -race: most of what this
// server does is concurrency.

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"
)

// tinyDesign is a 3-core SOC that optimizes in single-digit
// milliseconds — cheap enough to hammer concurrently.
const tinyDesign = `
SocName tinysoc
Core a
  Inputs 16
  Outputs 12
  ScanChains 8 30 30 30 30 30 30 30 30
  Patterns 20
  CareDensity 0.04
EndCore
Core b
  Inputs 12
  Outputs 10
  ScanChains 6 25 25 25 25 25 25
  Patterns 15
  CareDensity 0.06
EndCore
Core c
  Inputs 20
  Outputs 8
  ScanChains 10 20 20 20 20 20 20 20 20 20 20
  Patterns 25
  CareDensity 0.03
EndCore
`

const tinyCores = 3

// newTestServer stands up a Server on a real listener. Each call gets
// its own (cold) cache and sink.
func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s := New(cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

// postDesign submits tinyDesign and returns the decoded status + body.
func postDesign(t *testing.T, ts *httptest.Server, query string) (int, []byte) {
	t.Helper()
	resp, err := http.Post(ts.URL+"/v1/optimize?"+query, "text/plain", strings.NewReader(tinyDesign))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, body
}

func TestOptimizeEndpoint(t *testing.T) {
	s, ts := newTestServer(t, Config{})

	status, body := postDesign(t, ts, "width=16")
	if status != http.StatusOK {
		t.Fatalf("status %d, body %s", status, body)
	}
	var out optimizeResponse
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatalf("bad JSON: %v\n%s", err, body)
	}
	if out.JobID == "" {
		t.Error("no job_id")
	}
	if len(out.Plan.Cores) != tinyCores {
		t.Errorf("plan has %d cores, want %d", len(out.Plan.Cores), tinyCores)
	}
	if out.Plan.TestTime <= 0 {
		t.Errorf("non-positive test time %d", out.Plan.TestTime)
	}

	// Built-in benchmark by name: the body is ignored in favor of ?design=.
	resp, err := http.Post(ts.URL+"/v1/optimize?design=d695&width=16", "text/plain", nil)
	if err != nil {
		t.Fatal(err)
	}
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("builtin design: status %d, body %s", resp.StatusCode, body)
	}

	sn := s.Sink().Snapshot()
	if sn.Counters["serve.completed"] != 2 {
		t.Errorf("serve.completed = %d, want 2", sn.Counters["serve.completed"])
	}
	if sn.Counters["tables.built"] == 0 {
		t.Error("global sink absorbed no tables.built")
	}
}

func TestOptimizeValidation(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxBodyBytes: 256})

	cases := []struct {
		name, query, body string
		want              int
	}{
		{"missing width", "", "SocName x\n", http.StatusBadRequest},
		{"bad width", "width=banana", "SocName x\n", http.StatusBadRequest},
		{"unknown builtin", "design=nope&width=16", "", http.StatusBadRequest},
		{"unknown style", "width=16&style=quantum", tinyDesign[:200], http.StatusBadRequest},
		{"bad timeout", "width=16&timeout=-3s", tinyDesign[:200], http.StatusBadRequest},
		{"bad kinds", "width=16&kinds=froth", tinyDesign[:200], http.StatusBadRequest},
		{"oversized body", "width=16", tinyDesign, http.StatusRequestEntityTooLarge},
	}
	for _, tc := range cases {
		resp, err := http.Post(ts.URL+"/v1/optimize?"+tc.query, "text/plain", strings.NewReader(tc.body))
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != tc.want {
			t.Errorf("%s: status %d, want %d (body %s)", tc.name, resp.StatusCode, tc.want, body)
		}
		var e errorResponse
		if err := json.Unmarshal(body, &e); err != nil || e.Error == "" {
			t.Errorf("%s: error body not JSON with error field: %s", tc.name, body)
		}
	}
}

// TestDeadlineCancelsMidBuild submits a cold d695 (≥100ms of table
// building) with a deadline far shorter: the job context must cut the
// build short and surface as 504, not run to completion.
func TestDeadlineCancelsMidBuild(t *testing.T) {
	s, ts := newTestServer(t, Config{})

	start := time.Now()
	resp, err := http.Post(ts.URL+"/v1/optimize?design=d695&width=16&timeout=20ms", "text/plain", nil)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("status %d, want 504 (body %s)", resp.StatusCode, body)
	}
	// Generous bound: the point is the job did not run to completion.
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Errorf("deadline-bound request took %v", elapsed)
	}
	if n := s.Sink().Snapshot().Counters["serve.deadline_exceeded"]; n != 1 {
		t.Errorf("serve.deadline_exceeded = %d, want 1", n)
	}
}

func TestRateLimit(t *testing.T) {
	s, ts := newTestServer(t, Config{RatePerSec: 0.001, Burst: 1})

	// The limiter runs before parsing, so empty bodies (400) spend
	// tokens without paying for an optimize.
	resp, err := http.Post(ts.URL+"/v1/optimize", "text/plain", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("first request: status %d, want 400", resp.StatusCode)
	}

	resp, err = http.Post(ts.URL+"/v1/optimize", "text/plain", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("second request: status %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 without Retry-After")
	}

	// A different tenant (API key) has its own bucket.
	req, _ := http.NewRequest("POST", ts.URL+"/v1/optimize", nil)
	req.Header.Set("X-API-Key", "tenant-b")
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("other tenant: status %d, want 400 (not rate limited)", resp.StatusCode)
	}
	if n := s.Sink().Snapshot().Counters["serve.rate_limited"]; n != 1 {
		t.Errorf("serve.rate_limited = %d, want 1", n)
	}
}

// TestConcurrentIdenticalSingleBuild is the economic core of the
// service: many clients optimizing the same design must share one table
// build per core, coalesced by the cache's singleflight — observed here
// through the fleet-wide tables.built counter.
func TestConcurrentIdenticalSingleBuild(t *testing.T) {
	s, ts := newTestServer(t, Config{MaxJobs: 4})

	const clients = 8
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, err := http.Post(ts.URL+"/v1/optimize?width=16", "text/plain", strings.NewReader(tinyDesign))
			if err != nil {
				errs <- err
				return
			}
			body, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				errs <- fmt.Errorf("status %d: %s", resp.StatusCode, body)
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	sn := s.Sink().Snapshot()
	if sn.Counters["serve.completed"] != clients {
		t.Fatalf("serve.completed = %d, want %d", sn.Counters["serve.completed"], clients)
	}
	if built := sn.Counters["tables.built"]; built != tinyCores {
		t.Errorf("tables.built = %d after %d identical requests, want %d (one build per core, ever)",
			built, clients, tinyCores)
	}
}

// TestQueueFull verifies the second admission bound: with one slot and
// a one-deep queue, a third concurrent job is refused with 503 instead
// of waiting without bound.
func TestQueueFull(t *testing.T) {
	s, ts := newTestServer(t, Config{MaxJobs: 1, MaxQueue: 1})

	var wg sync.WaitGroup
	statuses := make(chan int, 3)
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// Cold d695 holds its slot for hundreds of ms, long enough
			// for the stragglers to pile up behind it.
			resp, err := http.Post(ts.URL+"/v1/optimize?design=d695&width=16", "text/plain", nil)
			if err != nil {
				t.Error(err)
				return
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			statuses <- resp.StatusCode
		}()
		time.Sleep(40 * time.Millisecond)
	}
	wg.Wait()
	close(statuses)

	var rejected, ok int
	for st := range statuses {
		switch st {
		case http.StatusServiceUnavailable:
			rejected++
		case http.StatusOK:
			ok++
		}
	}
	if rejected != 1 || ok != 2 {
		t.Errorf("got %d rejected / %d ok, want 1 / 2", rejected, ok)
	}
	if n := s.Sink().Snapshot().Counters["serve.queue_rejected"]; n != 1 {
		t.Errorf("serve.queue_rejected = %d, want 1", n)
	}
}

// TestStreamingProgress reads a ?stream=1 response line by line: run
// and span telemetry events while the job is in flight, then a terminal
// result line carrying the plan.
func TestStreamingProgress(t *testing.T) {
	_, ts := newTestServer(t, Config{})

	resp, err := http.Post(ts.URL+"/v1/optimize?width=16&stream=1", "text/plain", strings.NewReader(tinyDesign))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("Content-Type %q", ct)
	}

	var runEvents, spanEvents int
	var last map[string]any
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		line := map[string]any{}
		if err := json.Unmarshal(sc.Bytes(), &line); err != nil {
			t.Fatalf("non-JSON line %q: %v", sc.Text(), err)
		}
		switch line["kind"] {
		case "run":
			runEvents++
		case "span":
			spanEvents++
		}
		last = line
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if runEvents < 2 { // start + done
		t.Errorf("%d run events, want >= 2", runEvents)
	}
	if spanEvents == 0 {
		t.Error("no span progress events")
	}
	if last["kind"] != "result" {
		t.Fatalf("terminal line kind %v, want result", last["kind"])
	}
	if last["plan"] == nil {
		t.Error("terminal line has no plan")
	}
}

// TestDrainGraceful exercises shutdown: draining flips healthz to 503,
// refuses new jobs, cancels stragglers past the drain deadline, and
// leaves no job goroutines behind.
func TestDrainGraceful(t *testing.T) {
	base := runtime.NumGoroutine()
	s, ts := newTestServer(t, Config{})

	if st := healthz(t, ts); st != http.StatusOK {
		t.Fatalf("healthz before drain: %d", st)
	}

	// A cold d695 job that will still be running when Drain starts.
	slowDone := make(chan int, 1)
	go func() {
		resp, err := http.Post(ts.URL+"/v1/optimize?design=d695&width=16", "text/plain", nil)
		if err != nil {
			slowDone <- 0
			return
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		slowDone <- resp.StatusCode
	}()
	time.Sleep(50 * time.Millisecond) // let it get into the build

	drainCtx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	err := s.Drain(drainCtx)
	if err == nil {
		t.Log("job finished inside the drain window; cancellation path not taken")
	} else if err != context.DeadlineExceeded {
		t.Errorf("Drain: %v", err)
	}

	// Drain returned: the job goroutine is gone, so its response is
	// either done (200) or cancelled (503).
	st := <-slowDone
	if err != nil && st != http.StatusServiceUnavailable {
		t.Errorf("cancelled in-flight job: status %d, want 503", st)
	}

	if st := healthz(t, ts); st != http.StatusServiceUnavailable {
		t.Errorf("healthz while draining: %d, want 503", st)
	}
	if st, body := postDesign(t, ts, "width=16"); st != http.StatusServiceUnavailable {
		t.Errorf("new job while draining: %d (%s), want 503", st, body)
	}

	ts.Close()
	// No goroutine leaks: everything the server started has unwound.
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > base+2 && time.Now().Before(deadline) {
		time.Sleep(20 * time.Millisecond)
	}
	if n := runtime.NumGoroutine(); n > base+2 {
		buf := make([]byte, 1<<20)
		t.Errorf("goroutines: %d at start, %d after drain+close\n%s", base, n, buf[:runtime.Stack(buf, true)])
	}
}

func healthz(t *testing.T, ts *httptest.Server) int {
	t.Helper()
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	return resp.StatusCode
}

// TestMetricsExposure checks the serve-plane series reach /metrics on
// the same handler, absorbed from job sinks into the global one.
func TestMetricsExposure(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	if st, body := postDesign(t, ts, "width=16"); st != http.StatusOK {
		t.Fatalf("optimize: %d (%s)", st, body)
	}

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, want := range []string{
		"soctap_serve_requests_total 1",
		"soctap_serve_completed_total 1",
		"soctap_tables_built_total",
		"soctap_serve_request_seconds",
	} {
		if !strings.Contains(string(body), want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
	// Client-cardinality per-core series must NOT be absorbed.
	if strings.Contains(string(body), "soctap_prune_") || strings.Contains(string(body), "soctap_fused_") {
		t.Error("/metrics leaked per-core prune./fused. series from a job sink")
	}
}
