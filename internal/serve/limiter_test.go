package serve

import (
	"fmt"
	"testing"
	"time"
)

// fakeClock drives the limiter deterministically.
type fakeClock struct{ t time.Time }

func (c *fakeClock) now() time.Time          { return c.t }
func (c *fakeClock) advance(d time.Duration) { c.t = c.t.Add(d) }

func testLimiter(rate, burst float64) (*limiter, *fakeClock) {
	l := newLimiter(rate, burst)
	clk := &fakeClock{t: time.Unix(1000, 0)}
	l.now = clk.now
	return l, clk
}

func TestLimiterNilAdmitsAll(t *testing.T) {
	var l *limiter
	if l != newLimiter(0, 5) {
		t.Error("rate 0 should build a nil (admit-all) limiter")
	}
	for i := 0; i < 100; i++ {
		if ok, _ := l.allow("x"); !ok {
			t.Fatal("nil limiter refused")
		}
	}
}

func TestLimiterBurstThenRefill(t *testing.T) {
	l, clk := testLimiter(2, 3) // 2/s, burst 3

	for i := 0; i < 3; i++ {
		if ok, _ := l.allow("a"); !ok {
			t.Fatalf("burst request %d refused", i)
		}
	}
	ok, retry := l.allow("a")
	if ok {
		t.Fatal("4th immediate request admitted past burst")
	}
	if retry <= 0 || retry > time.Second {
		t.Errorf("retryAfter = %v, want (0, 500ms]-ish at 2/s", retry)
	}

	// Half a second refills one token at 2/s.
	clk.advance(500 * time.Millisecond)
	if ok, _ := l.allow("a"); !ok {
		t.Error("refilled token refused")
	}
	if ok, _ := l.allow("a"); ok {
		t.Error("second token admitted after refilling only one")
	}

	// Refill never exceeds burst.
	clk.advance(time.Hour)
	for i := 0; i < 3; i++ {
		if ok, _ := l.allow("a"); !ok {
			t.Fatalf("post-idle burst request %d refused", i)
		}
	}
	if ok, _ := l.allow("a"); ok {
		t.Error("idle refill exceeded burst capacity")
	}
}

func TestLimiterKeysIndependent(t *testing.T) {
	l, _ := testLimiter(1, 1)
	if ok, _ := l.allow("a"); !ok {
		t.Fatal("a refused")
	}
	if ok, _ := l.allow("a"); ok {
		t.Fatal("a admitted past burst")
	}
	if ok, _ := l.allow("b"); !ok {
		t.Error("b shares a's bucket")
	}
}

// TestLimiterBounded: cycling through more keys than maxBuckets (an
// attacker spoofing API keys) must not grow the map without bound —
// idle-full buckets are swept on insert.
func TestLimiterBounded(t *testing.T) {
	l, clk := testLimiter(10, 2)
	for i := 0; i < 3*maxBuckets; i++ {
		// Step the clock so earlier buckets refill and become sweepable.
		clk.advance(time.Second)
		l.allow(fmt.Sprintf("key-%d", i))
	}
	if n := len(l.buckets); n > maxBuckets+1 {
		t.Errorf("bucket map grew to %d, want <= %d", n, maxBuckets+1)
	}
	// Sweeping must not forget active debt: a key that just spent its
	// burst stays refused across a sweep-heavy run.
	key := "debtor"
	l.allow(key)
	l.allow(key)
	if ok, _ := l.allow(key); ok {
		t.Error("debtor admitted past burst")
	}
}
