package serve

// HTTP handlers: request parsing, the job lifecycle, and the two
// response shapes (buffered JSON, streamed NDJSON progress).

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"soctap"
	"soctap/internal/telemetry"
)

// jobRequest is one parsed optimize request.
type jobRequest struct {
	soc     *soctap.SOC
	width   int
	opts    soctap.Options
	timeout time.Duration
	stream  bool
	mask    telemetry.EventMask // streamed event kinds
}

// optimizeResponse is the buffered (non-streaming) success body.
type optimizeResponse struct {
	JobID          string      `json:"job_id"`
	ElapsedSeconds float64     `json:"elapsed_seconds"`
	Plan           soctap.Plan `json:"plan"`
}

// errorResponse is every error body.
type errorResponse struct {
	JobID string `json:"job_id,omitempty"`
	Error string `json:"error"`
}

// streamLine is the terminal line of a streamed response ("result" or
// "error"); progress lines before it are telemetry events in their bus
// JSON shape (kind span/counter/gauge/run).
type streamLine struct {
	Kind           string       `json:"kind"`
	JobID          string       `json:"job_id"`
	ElapsedSeconds float64      `json:"elapsed_seconds"`
	Error          string       `json:"error,omitempty"`
	Plan           *soctap.Plan `json:"plan,omitempty"`
}

// handleHealthz is the liveness/readiness probe: 200 while serving,
// 503 once draining so load balancers rotate the instance out while
// in-flight jobs finish.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	if s.Draining() {
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprintln(w, "draining")
		return
	}
	fmt.Fprintln(w, "ok")
}

// handleOptimize runs one optimize job end to end: rate limit, parse,
// admission, slot wait, the optimize itself, and the response.
func (s *Server) handleOptimize(w http.ResponseWriter, r *http.Request) {
	s.sink.Counter("serve.requests").Inc()

	if ok, retry := s.lim.allow(clientKey(r)); !ok {
		s.sink.Counter("serve.rate_limited").Inc()
		w.Header().Set("Retry-After", strconv.Itoa(int(retry/time.Second)+1))
		writeError(w, http.StatusTooManyRequests, "", "rate limit exceeded")
		return
	}

	req, err := s.parseJob(r)
	if err != nil {
		status := http.StatusBadRequest
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			status = http.StatusRequestEntityTooLarge
		}
		s.sink.Counter("serve.bad_requests").Inc()
		writeError(w, status, "", err.Error())
		return
	}

	id, ok := s.beginJob()
	if !ok {
		writeError(w, http.StatusServiceUnavailable, "", "server is draining")
		return
	}
	defer s.jobs.Done()
	jobID := fmt.Sprintf("job-%d", id)

	// Admission bound: MaxJobs running plus MaxQueue waiting; everything
	// past that is refused now, not queued without bound.
	if n := s.pending.Add(1); n > int64(s.cfg.MaxJobs+s.cfg.MaxQueue) {
		s.pending.Add(-1)
		s.sink.Counter("serve.queue_rejected").Inc()
		writeError(w, http.StatusServiceUnavailable, jobID, "job queue full")
		return
	}
	defer s.pending.Add(-1)

	// The job context ends on whichever comes first: client disconnect,
	// per-request deadline, or server drain cancelling stragglers.
	ctx, cancel := context.WithCancel(r.Context())
	defer cancel()
	stopDrainWatch := context.AfterFunc(s.jobsCtx, cancel)
	defer stopDrainWatch()
	ctx, cancelTimeout := context.WithTimeout(ctx, req.timeout)
	defer cancelTimeout()

	// Wait for a worker slot under the same context.
	select {
	case s.sem <- struct{}{}:
		defer func() { <-s.sem }()
	case <-ctx.Done():
		s.failCtx(w, nil, jobID, ctx.Err(), 0)
		return
	}

	s.sink.Gauge("serve.jobs_inflight_max").Observe(int64(len(s.sem)))
	jobSink := telemetry.New()
	t0 := time.Now()
	if req.stream {
		s.runStreaming(ctx, w, jobID, jobSink, req, t0)
		return
	}
	res, err := soctap.OptimizeContext(ctx, req.soc, req.width, s.jobOptions(req, jobSink))
	elapsed := time.Since(t0)
	s.finishJob(jobSink, elapsed, err)
	if err != nil {
		s.failCtx(w, nil, jobID, err, elapsed)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(optimizeResponse{
		JobID:          jobID,
		ElapsedSeconds: elapsed.Seconds(),
		Plan:           res.Plan(),
	})
}

// runStreaming serves one job as a live NDJSON feed: the job sink's
// telemetry events as they happen, closed by a result or error line.
// The response is already committed as 200 by the time the job can
// fail, so failures ride in the terminal line, not the status code.
func (s *Server) runStreaming(ctx context.Context, w http.ResponseWriter, jobID string, jobSink *telemetry.Sink, req *jobRequest, t0 time.Time) {
	sub := jobSink.Subscribe(req.mask, streamBuffer)
	defer sub.Close()

	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set("Cache-Control", "no-store")
	w.WriteHeader(http.StatusOK)
	rc := http.NewResponseController(w)
	rc.SetWriteDeadline(time.Time{}) // job-paced stream: per-request deadline governs, not WriteTimeout
	canFlush := rc.Flush() == nil
	enc := json.NewEncoder(w)
	flush := func() {
		if canFlush {
			if err := rc.Flush(); err != nil {
				canFlush = false
			}
		}
	}

	jobSink.PublishRun(jobID, "start")
	type outcome struct {
		res *soctap.Result
		err error
	}
	resCh := make(chan outcome, 1)
	go func() {
		res, err := soctap.OptimizeContext(ctx, req.soc, req.width, s.jobOptions(req, jobSink))
		if err != nil {
			jobSink.PublishRun(jobID, "failed")
		} else {
			jobSink.PublishRun(jobID, "done")
		}
		resCh <- outcome{res, err}
	}()

	var out outcome
	for waiting := true; waiting; {
		select {
		case ev := <-sub.C():
			enc.Encode(ev)
			flush()
		case out = <-resCh:
			waiting = false
		}
	}
	// Publishing stopped with the job; drain what the ring still holds.
	sub.Close()
	for ev := range sub.C() {
		enc.Encode(ev)
	}
	elapsed := time.Since(t0)
	s.finishJob(jobSink, elapsed, out.err)

	line := streamLine{Kind: "result", JobID: jobID, ElapsedSeconds: elapsed.Seconds()}
	if out.err != nil {
		line.Kind, line.Error = "error", out.err.Error()
		s.countFailure(out.err)
	} else {
		p := out.res.Plan()
		line.Plan = &p
	}
	enc.Encode(line)
	flush()
}

// jobOptions assembles the soctap Options for one job: the client's
// knobs plus the shared cache and the job-private telemetry sink.
func (s *Server) jobOptions(req *jobRequest, jobSink *telemetry.Sink) soctap.Options {
	opts := req.opts
	opts.Cache = s.cfg.Cache
	opts.Telemetry = jobSink.Root()
	return opts
}

// finishJob folds the job sink into the global one and records the
// serve-level outcome series.
func (s *Server) finishJob(jobSink *telemetry.Sink, elapsed time.Duration, err error) {
	s.absorb(jobSink)
	s.sink.Histogram("serve.request_seconds").Observe(elapsed)
	if err == nil {
		s.sink.Counter("serve.completed").Inc()
	}
}

// countFailure classifies a failed job into the serve.* counters.
func (s *Server) countFailure(err error) {
	switch {
	case errors.Is(err, context.DeadlineExceeded):
		s.sink.Counter("serve.deadline_exceeded").Inc()
	case errors.Is(err, context.Canceled):
		s.sink.Counter("serve.cancelled").Inc()
	default:
		s.sink.Counter("serve.failed").Inc()
	}
}

// failCtx maps a job error onto an HTTP error response (buffered shape
// only; streams report errors in their terminal line).
func (s *Server) failCtx(w http.ResponseWriter, _ *jobRequest, jobID string, err error, _ time.Duration) {
	s.countFailure(err)
	switch {
	case errors.Is(err, context.DeadlineExceeded):
		writeError(w, http.StatusGatewayTimeout, jobID, "deadline exceeded: "+err.Error())
	case errors.Is(err, context.Canceled):
		writeError(w, http.StatusServiceUnavailable, jobID, "cancelled: "+err.Error())
	default:
		writeError(w, http.StatusUnprocessableEntity, jobID, err.Error())
	}
}

// writeError sends one JSON error body.
func writeError(w http.ResponseWriter, status int, jobID, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(errorResponse{JobID: jobID, Error: msg})
}

// parseJob reads the request into a jobRequest: the design from the
// body (a .soc file) or ?design= (a built-in benchmark name — the
// server never reads its own filesystem for a client), every optimizer
// knob from the query string.
func (s *Server) parseJob(r *http.Request) (*jobRequest, error) {
	q := r.URL.Query()
	req := &jobRequest{
		timeout: s.cfg.DefaultTimeout,
		mask:    telemetry.MaskSpan | telemetry.MaskRun,
	}

	if name := q.Get("design"); name != "" {
		soc, ok := soctap.AllBenchmarks()[name]
		if !ok {
			return nil, fmt.Errorf("unknown built-in design %q", name)
		}
		req.soc = soc
	} else {
		body := http.MaxBytesReader(nil, r.Body, s.cfg.MaxBodyBytes)
		soc, err := soctap.ParseSOC(body)
		if err != nil {
			return nil, fmt.Errorf("parsing design body: %w", err)
		}
		req.soc = soc
	}

	var err error
	if req.width, err = intParam(q.Get("width"), 0); err != nil {
		return nil, fmt.Errorf("width: %w", err)
	}
	if req.width <= 0 {
		return nil, errors.New("width parameter required (total TAM wires, > 0)")
	}

	style := soctap.StyleTDCPerCore
	if name := q.Get("style"); name != "" {
		found := false
		for _, st := range []soctap.Style{soctap.StyleNoTDC, soctap.StyleTDCPerTAM, soctap.StyleTDCPerCore} {
			if st.String() == name {
				style, found = st, true
				break
			}
		}
		if !found {
			return nil, fmt.Errorf("unknown style %q (want no-tdc, tdc-per-tam, tdc-per-core)", name)
		}
	}
	req.opts.Style = style

	if req.opts.MaxTAMs, err = intParam(q.Get("max-tams"), 0); err != nil {
		return nil, fmt.Errorf("max-tams: %w", err)
	}
	if req.opts.Tables.BandSamples, err = intParam(q.Get("band-samples"), 0); err != nil {
		return nil, fmt.Errorf("band-samples: %w", err)
	}
	if req.opts.Tables.EvalWindow, err = intParam(q.Get("eval-window"), 0); err != nil {
		return nil, fmt.Errorf("eval-window: %w", err)
	}
	req.opts.EnableDict = q.Get("techsel") == "1" || q.Get("techsel") == "true"
	req.stream = q.Get("stream") == "1" || q.Get("stream") == "true"

	// Per-job worker bound: the client may only narrow the server's.
	workers, err := intParam(q.Get("workers"), 0)
	if err != nil {
		return nil, fmt.Errorf("workers: %w", err)
	}
	req.opts.Workers = s.cfg.JobWorkers
	if workers > 0 && (s.cfg.JobWorkers <= 0 || workers < s.cfg.JobWorkers) {
		req.opts.Workers = workers
	}

	if t := q.Get("timeout"); t != "" {
		d, err := time.ParseDuration(t)
		if err != nil {
			return nil, fmt.Errorf("timeout: %w", err)
		}
		if d <= 0 {
			return nil, errors.New("timeout must be positive")
		}
		req.timeout = d
	}
	req.timeout = min(req.timeout, s.cfg.MaxTimeout)

	if kinds := q.Get("kinds"); kinds != "" {
		mask, err := telemetry.ParseKinds(kinds)
		if err != nil {
			return nil, err
		}
		req.mask = mask
	}
	return req, nil
}

// intParam parses an optional integer query parameter.
func intParam(s string, def int) (int, error) {
	if s == "" {
		return def, nil
	}
	return strconv.Atoi(s)
}

// clientKey identifies the client for rate limiting: the API key
// header when present (one tenant, many addresses), else the remote
// host (one address, no key).
func clientKey(r *http.Request) string {
	if k := r.Header.Get("X-API-Key"); k != "" {
		return "key:" + k
	}
	host := r.RemoteAddr
	if i := lastColon(host); i >= 0 {
		host = host[:i]
	}
	return "addr:" + host
}

// lastColon finds the port separator in a host:port remote address
// (IPv6-safe: the last colon, with bracketed literals intact before it).
func lastColon(s string) int {
	for i := len(s) - 1; i >= 0; i-- {
		if s[i] == ':' {
			return i
		}
	}
	return -1
}

// streamBuffer is the per-stream event ring depth; a slower reader
// loses events (they are progress, not records) rather than stalling
// the job.
const streamBuffer = 1024
