// Package serve wraps the optimizer in a long-running network service:
// optimization-as-a-service. A Server accepts a .soc design plus options
// over HTTP (POST /v1/optimize), runs it through soctap.OptimizeContext
// on a bounded-concurrency job queue with a per-request deadline, and
// returns the architecture/schedule as JSON — or, with ?stream=1, as a
// live NDJSON feed of the job's telemetry events closed by the result.
//
// Multi-tenant shape:
//
//   - every worker shares one table cache (the 32-shard singleflight
//     LRU over the bounded v2 disk store), so structurally identical
//     cores across clients are built exactly once, ever;
//   - a token-bucket rate limiter keyed by API key (or remote address)
//     keeps one client from starving the rest;
//   - admission is bounded twice — MaxJobs jobs run concurrently,
//     MaxQueue more may wait — and everything past that is refused
//     with 503 instead of queued without bound.
//
// Telemetry is two-level. Each job runs against its own private sink
// (span tree and counters die with the job, so a long-lived daemon
// never accumulates per-job series); when the job completes, its
// counters, timers and gauges are folded into the server-global sink —
// minus the per-core prune.*/fused.* series, whose name cardinality is
// client-controlled — which /metrics and /events expose. The global
// tables.built counter therefore reports exactly how many tables the
// whole fleet of requests ever built: warm identical-design traffic
// holds it flat.
//
// Shutdown is graceful: Drain stops admission (healthz flips to 503 so
// load balancers rotate the instance out), waits for in-flight jobs,
// and past the drain deadline cancels them through the same context
// plumbing a client disconnect uses.
package serve

import (
	"context"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"soctap"
	"soctap/internal/telemetry"
)

// Config parameterizes a Server. The zero value is usable: every field
// has a serving-sane default, applied by New.
type Config struct {
	// MaxJobs bounds how many optimize jobs run concurrently (default
	// 2): each job already fans out over JobWorkers goroutines, so this
	// is a product, not a sum.
	MaxJobs int
	// MaxQueue bounds how many admitted jobs may wait for a slot beyond
	// the MaxJobs running (default 64). Past it requests get 503.
	MaxQueue int
	// DefaultTimeout is the per-request deadline when the client sends
	// none (default 60s); MaxTimeout caps what a client may ask for
	// (default 10m).
	DefaultTimeout time.Duration
	MaxTimeout     time.Duration
	// MaxBodyBytes caps the uploaded .soc design (default 8 MiB).
	MaxBodyBytes int64
	// RatePerSec and Burst configure the per-client token bucket
	// (0 rate = unlimited; Burst defaults to max(2*rate, 4)).
	RatePerSec float64
	Burst      float64
	// JobWorkers bounds each job's evaluation-engine parallelism
	// (soctap Options.Workers; 0 = one per CPU). It also caps the
	// per-request ?workers override.
	JobWorkers int
	// Cache is the shared table cache; New creates one when nil. Bound
	// and attach its tiers (SetMemLimit/SetDiskLimit/SetDir) before
	// serving.
	Cache *soctap.Cache
	// Sink is the server-global telemetry sink behind /metrics and
	// /events; New creates one when nil.
	Sink *soctap.TelemetrySink
}

// withDefaults fills the zero fields.
func (cfg Config) withDefaults() Config {
	if cfg.MaxJobs <= 0 {
		cfg.MaxJobs = 2
	}
	if cfg.MaxQueue <= 0 {
		cfg.MaxQueue = 64
	}
	if cfg.DefaultTimeout <= 0 {
		cfg.DefaultTimeout = 60 * time.Second
	}
	if cfg.MaxTimeout <= 0 {
		cfg.MaxTimeout = 10 * time.Minute
	}
	if cfg.MaxBodyBytes <= 0 {
		cfg.MaxBodyBytes = 8 << 20
	}
	if cfg.RatePerSec > 0 && cfg.Burst <= 0 {
		cfg.Burst = max(2*cfg.RatePerSec, 4)
	}
	if cfg.Cache == nil {
		cfg.Cache = new(soctap.Cache)
	}
	if cfg.Sink == nil {
		cfg.Sink = soctap.NewTelemetry()
	}
	return cfg
}

// Server is one optimization-as-a-service instance. Create with New,
// mount Handler on an http.Server, stop with Drain.
type Server struct {
	cfg  Config
	sink *telemetry.Sink
	lim  *limiter

	sem     chan struct{} // MaxJobs slots
	pending atomic.Int64  // admitted (queued + running) jobs
	jobSeq  atomic.Int64

	mu       sync.Mutex // guards draining vs. job admission
	draining bool
	jobs     sync.WaitGroup

	jobsCtx    context.Context // cancelled to abort in-flight jobs
	cancelJobs context.CancelFunc

	handler http.Handler
}

// New builds a Server from cfg (zero fields defaulted).
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:  cfg,
		sink: cfg.Sink,
		lim:  newLimiter(cfg.RatePerSec, cfg.Burst),
		sem:  make(chan struct{}, cfg.MaxJobs),
	}
	s.jobsCtx, s.cancelJobs = context.WithCancel(context.Background())

	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/optimize", s.handleOptimize)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	// Everything else — /metrics, /events, /debug/pprof — is the
	// telemetry plane over the server-global sink.
	mux.Handle("/", soctap.NewTelemetryHandler(cfg.Sink))
	s.handler = mux
	return s
}

// Handler returns the server's HTTP surface for mounting.
func (s *Server) Handler() http.Handler { return s.handler }

// Sink returns the server-global telemetry sink (the one /metrics
// exposes).
func (s *Server) Sink() *telemetry.Sink { return s.sink }

// Draining reports whether Drain has started.
func (s *Server) Draining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

// Drain gracefully stops the job plane: admission closes immediately
// (healthz turns 503, new optimize requests are refused), in-flight
// jobs run to completion, and if ctx expires first they are cancelled
// through their contexts and still waited for — Drain never returns
// with a job goroutine alive. The HTTP listener itself is the caller's
// to close (http.Server.Shutdown after Drain).
func (s *Server) Drain(ctx context.Context) error {
	s.mu.Lock()
	s.draining = true
	s.mu.Unlock()

	done := make(chan struct{})
	go func() {
		s.jobs.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		s.cancelJobs()
		<-done
		return ctx.Err()
	}
}

// beginJob admits one job unless the server is draining. The matching
// jobs.Done is the caller's (deferred) responsibility when ok.
func (s *Server) beginJob() (id int64, ok bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining {
		return 0, false
	}
	s.jobs.Add(1)
	return s.jobSeq.Add(1), true
}

// absorb folds a completed job's private sink into the server-global
// one: counters and timers add, gauges keep the maximum. The per-core
// prune.*/fused.* series are dropped — their name cardinality is
// client-controlled (one series per core name), which would grow
// /metrics without bound under multi-tenant traffic. Histograms stay
// per-job; the server observes its own serve.request_seconds instead.
func (s *Server) absorb(job *telemetry.Sink) {
	sn := job.Snapshot()
	for name, v := range sn.Counters {
		if strings.HasPrefix(name, "prune.") || strings.HasPrefix(name, "fused.") {
			continue
		}
		s.sink.Counter(name).Add(v)
	}
	for name, secs := range sn.Timings {
		s.sink.Timer(name).Add(time.Duration(secs * float64(time.Second)))
	}
	for name, v := range sn.Gauges {
		s.sink.Gauge(name).Observe(v)
	}
}
