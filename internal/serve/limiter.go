package serve

// The per-client rate limiter: classic token buckets, one per client
// key, refilled continuously at rate tokens/second up to burst. One
// request costs one token. The map is bounded — past maxBuckets, full
// (i.e. long-idle) buckets are swept on the next admission — so an
// attacker cycling spoofed API keys grows memory to a constant, not
// without bound.

import (
	"sync"
	"time"
)

// maxBuckets bounds the client map; a sweep runs when an insert would
// exceed it.
const maxBuckets = 4096

// limiter is the token-bucket table. A nil limiter (rate 0) admits
// everything.
type limiter struct {
	rate  float64 // tokens per second
	burst float64 // bucket capacity

	mu      sync.Mutex
	buckets map[string]*bucket
	now     func() time.Time // injected clock for tests
}

// bucket is one client's token state at time last.
type bucket struct {
	tokens float64
	last   time.Time
}

// newLimiter builds a limiter admitting rate requests/second with the
// given burst capacity per client; nil (admit-all) when rate <= 0.
func newLimiter(rate, burst float64) *limiter {
	if rate <= 0 {
		return nil
	}
	if burst < 1 {
		burst = 1
	}
	return &limiter{
		rate:    rate,
		burst:   burst,
		buckets: make(map[string]*bucket),
		now:     time.Now,
	}
}

// allow spends one token from key's bucket. When the bucket is empty it
// reports false plus how long until a token accrues (the Retry-After
// hint).
func (l *limiter) allow(key string) (ok bool, retryAfter time.Duration) {
	if l == nil {
		return true, 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	now := l.now()
	b, found := l.buckets[key]
	if !found {
		if len(l.buckets) >= maxBuckets {
			l.sweepLocked(now)
		}
		b = &bucket{tokens: l.burst, last: now}
		l.buckets[key] = b
	} else {
		b.tokens = min(l.burst, b.tokens+now.Sub(b.last).Seconds()*l.rate)
		b.last = now
	}
	if b.tokens >= 1 {
		b.tokens--
		return true, 0
	}
	return false, time.Duration((1 - b.tokens) / l.rate * float64(time.Second))
}

// sweepLocked drops every bucket that has been idle long enough to
// refill completely — indistinguishable from a fresh one, so dropping
// it changes no admission decision.
func (l *limiter) sweepLocked(now time.Time) {
	idle := time.Duration(l.burst / l.rate * float64(time.Second))
	for k, b := range l.buckets {
		if now.Sub(b.last) >= idle {
			delete(l.buckets, k)
		}
	}
}
