package serve

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// BenchmarkServeOptimizeWarm measures end-to-end request throughput on
// the warm path — tables cached, so each request pays HTTP + parse +
// search + JSON, not table building. This is the steady state a
// long-lived daemon serves from; req/s lands in the dated benchmark
// archive via make bench-json.
func BenchmarkServeOptimizeWarm(b *testing.B) {
	s := New(Config{MaxJobs: 4})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	do := func() error {
		resp, err := http.Post(ts.URL+"/v1/optimize?width=16", "text/plain", strings.NewReader(tinyDesign))
		if err != nil {
			return err
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			b.Fatalf("status %d", resp.StatusCode)
		}
		return nil
	}
	if err := do(); err != nil { // warm the shared table cache
		b.Fatal(err)
	}

	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := do(); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "req/s")

	if built := s.Sink().Snapshot().Counters["tables.built"]; built != tinyCores {
		b.Fatalf("tables.built = %d across %d warm requests, want %d", built, b.N+1, tinyCores)
	}
}
