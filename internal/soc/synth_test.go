package soc

import (
	"bytes"
	"context"
	"testing"
)

func synth(t *testing.T, sp SynthSpec) *SOC {
	t.Helper()
	s, err := Synthesize(context.Background(), sp)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestSynthesizeDeterministic(t *testing.T) {
	spec := SynthSpec{Name: "x", Profile: "industrial", Cores: 4, Seed: 9}
	a := synth(t, spec)
	b := synth(t, spec)
	var ba, bb bytes.Buffer
	if err := Write(&ba, a); err != nil {
		t.Fatal(err)
	}
	if err := Write(&bb, b); err != nil {
		t.Fatal(err)
	}
	if ba.String() != bb.String() {
		t.Error("same seed produced different designs")
	}
	c := synth(t, SynthSpec{Name: "x", Profile: "industrial", Cores: 4, Seed: 10})
	var bc bytes.Buffer
	Write(&bc, c)
	if ba.String() == bc.String() {
		t.Error("different seeds produced identical designs")
	}
}

func TestSynthesizeProfiles(t *testing.T) {
	ind := synth(t, SynthSpec{Name: "i", Profile: "industrial", Cores: 3, Seed: 1})
	for _, c := range ind.Cores {
		if c.CareDensity > 0.06 {
			t.Errorf("industrial core %s density %g too high", c.Name, c.CareDensity)
		}
		if len(c.ScanChains) < 50 {
			t.Errorf("industrial core %s has only %d chains", c.Name, len(c.ScanChains))
		}
	}
	isc := synth(t, SynthSpec{Name: "s", Profile: "iscas", Cores: 3, Seed: 1})
	for _, c := range isc.Cores {
		if c.CareDensity < 0.3 {
			t.Errorf("iscas core %s density %g too low", c.Name, c.CareDensity)
		}
	}
	if _, err := Synthesize(context.Background(), SynthSpec{Name: "b", Profile: "bogus", Cores: 2, Seed: 1}); err == nil {
		t.Error("unknown profile accepted")
	}
	if _, err := Synthesize(context.Background(), SynthSpec{Name: "b", Profile: "iscas", Cores: 0, Seed: 1}); err == nil {
		t.Error("zero cores accepted")
	}
	if _, err := Synthesize(context.Background(), SynthSpec{Name: "b", Profile: "iscas", Cores: 1, Seed: 1, Scale: -2}); err == nil {
		t.Error("negative scale accepted")
	}
}

func TestSynthesizeGiantProfile(t *testing.T) {
	// A 48-core giant design must carry ≥ 1M cubes of very sparse,
	// deeply scanned stimulus — the streaming-scale workload.
	g := synth(t, SynthSpec{Name: "g", Profile: "giant", Cores: 48, Seed: 5})
	cubes := 0
	for _, c := range g.Cores {
		cubes += c.Patterns
		if c.ScanCells() < 20000 {
			t.Errorf("giant core %s has only %d scan cells", c.Name, c.ScanCells())
		}
		if c.CareDensity > 0.02 {
			t.Errorf("giant core %s density %g too high", c.Name, c.CareDensity)
		}
	}
	if cubes < 1_000_000 {
		t.Errorf("48-core giant design has %d cubes, want ≥ 1M", cubes)
	}
}

func TestSynthesizePatternsAndScale(t *testing.T) {
	base := synth(t, SynthSpec{Name: "g", Profile: "giant", Cores: 3, Seed: 7})
	small := synth(t, SynthSpec{Name: "g", Profile: "giant", Cores: 3, Seed: 7, Patterns: 500, Scale: 0.25})
	for i, c := range small.Cores {
		if c.Patterns != 500 {
			t.Errorf("core %s: patterns %d, want 500", c.Name, c.Patterns)
		}
		b := base.Cores[i]
		ratio := float64(c.ScanCells()) / float64(b.ScanCells())
		if ratio < 0.2 || ratio > 0.3 {
			t.Errorf("core %s: scale 0.25 gave cell ratio %.3f (%d of %d)",
				c.Name, ratio, c.ScanCells(), b.ScanCells())
		}
		// The override must not perturb the profile's other draws.
		if c.CareDensity != b.CareDensity || c.Inputs != b.Inputs {
			t.Errorf("core %s: -patterns/-scale perturbed unrelated structure", c.Name)
		}
	}
}

func TestSynthesizedDesignsAreUsable(t *testing.T) {
	// Generated designs must round-trip through the text format and
	// validate, for every profile (giant trimmed to stay test-fast).
	for _, sp := range []SynthSpec{
		{Name: "g1", Profile: "industrial", Cores: 2, Seed: 33},
		{Name: "g2", Profile: "iscas", Cores: 2, Seed: 33},
		{Name: "g3", Profile: "giant", Cores: 2, Seed: 33, Patterns: 200, Scale: 0.1},
	} {
		s := synth(t, sp)
		var buf bytes.Buffer
		if err := Write(&buf, s); err != nil {
			t.Fatal(err)
		}
		back, err := Parse(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if err := back.Validate(); err != nil {
			t.Error(err)
		}
	}
}

func TestTestSourceMatchesTestSet(t *testing.T) {
	// The streamed and materialized views of one core must be the same
	// cube sequence, for generated and explicit test sets alike.
	s := synth(t, SynthSpec{Name: "m", Profile: "iscas", Cores: 2, Seed: 11})
	c := s.Cores[0]
	ts, err := c.TestSet()
	if err != nil {
		t.Fatal(err)
	}
	src, err := c.TestSource()
	if err != nil {
		t.Fatal(err)
	}
	if src.Len() != ts.Len() || src.NumBits() != ts.NumBits {
		t.Fatalf("source Len/NumBits = %d/%d, want %d/%d", src.Len(), src.NumBits(), ts.Len(), ts.NumBits)
	}
	for i := 0; i < ts.Len(); i++ {
		cu, ok := src.Next()
		if !ok {
			t.Fatalf("stream ended at cube %d", i)
		}
		if !cu.ToTrits().Equal(ts.Cubes[i].ToTrits()) {
			t.Fatalf("streamed cube %d differs from TestSet", i)
		}
	}
	if _, ok := src.Next(); ok {
		t.Fatal("stream yielded more cubes than TestSet")
	}

	// Explicit cubes stream by reference.
	ec := &Core{Name: "e", Inputs: 4, ScanChains: []int{8}, Patterns: ts.Len(),
		ExplicitCubes: ts, Gates: 10}
	// Width mismatch is irrelevant here; bypass Validate and just stream.
	esrc, err := ec.TestSource()
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < ts.Len(); i++ {
		cu, ok := esrc.Next()
		if !ok || cu != ts.Cubes[i] {
			t.Fatalf("explicit stream cube %d: got %p ok=%v", i, cu, ok)
		}
	}
}

func TestStimulusVolumeBits(t *testing.T) {
	c := &Core{Name: "v", Inputs: 10, ScanChains: []int{30, 24}, Patterns: 1000}
	if got := c.StimulusVolumeBits(); got != 64_000 {
		t.Errorf("StimulusVolumeBits = %d, want 64000", got)
	}
	// Near the Validate bounds the product exceeds int32 but must not
	// wrap in int64.
	big := &Core{Name: "b", Inputs: 0, ScanChains: []int{MaxScanChainLen}, Patterns: MaxPatterns}
	if got := big.StimulusVolumeBits(); got != int64(MaxScanChainLen)*int64(MaxPatterns) {
		t.Errorf("StimulusVolumeBits overflowed: %d", got)
	}
}
