// Package soc models core-based systems-on-chip for modular test
// planning: embedded cores with scan structure and test sets, and SOCs
// that aggregate cores. It ships the benchmark designs used in the DATE
// 2008 paper (d695, a d2758 stand-in, the industrial cores ckt-1..ckt-12
// as documented synthetic stand-ins, and System1–System4), plus an
// ITC'02-inspired text format for describing designs on disk.
package soc

import (
	"fmt"
	"math"
	"sync"

	"soctap/internal/cube"
)

// Structural sanity bounds enforced by Validate. They sit far above any
// realistic SOC (the largest ITC'02 cores are orders of magnitude
// smaller) and exist to keep malformed or hostile design files out of
// the downstream kernels: a terminal count whose stimulus sum overflows
// int would otherwise reach the cube generator as a negative width and
// panic (cube.NewCube), and unbounded pattern or chain counts turn the
// generator into a memory bomb.
const (
	MaxTerminals    = 1 << 24 // per terminal class (inputs, outputs, bidirs)
	MaxScanChains   = 1 << 20 // scan chains per core
	MaxScanChainLen = 1 << 26 // cells per scan chain
	MaxPatterns     = 1 << 26 // test patterns per core
	MaxStimulusBits = 1 << 28 // total stimulus cells per core
)

// Core describes one wrapped embedded core: its functional terminals, its
// internal scan chains, and the shape of its test set. Test cubes are
// either attached directly (ExplicitCubes) or generated deterministically
// from the Gen parameters on first use.
type Core struct {
	Name    string
	Inputs  int // functional inputs (wrapper input cells)
	Outputs int // functional outputs (wrapper output cells)
	Bidirs  int // bidirectional terminals (count as both in and out cells)

	// ScanChains lists the length (in cells) of each internal scan
	// chain. A combinational core has none.
	ScanChains []int

	Patterns int // number of test patterns (cubes)
	Gates    int // approximate gate count, for hardware-cost reporting

	// CareDensity, Clustering, DensityDecay and Seed parameterize the
	// synthetic cube generator when ExplicitCubes is nil.
	CareDensity  float64
	Clustering   float64
	DensityDecay float64
	Seed         int64

	// ExplicitCubes, when non-nil, is used verbatim as the core's test
	// set (its width must equal StimulusBits and its length Patterns).
	ExplicitCubes *cube.Set

	cubesOnce sync.Once
	cubes     *cube.Set
	cubesErr  error
}

// ScanCells returns the total number of internal scan cells.
func (c *Core) ScanCells() int {
	n := 0
	for _, l := range c.ScanChains {
		n += l
	}
	return n
}

// StimulusBits returns the number of stimulus cells per pattern: wrapper
// input cells (functional inputs and bidirs) plus all scan cells.
func (c *Core) StimulusBits() int {
	return c.Inputs + c.Bidirs + c.ScanCells()
}

// ResponseBits returns the number of response cells per pattern: wrapper
// output cells (functional outputs and bidirs) plus all scan cells.
func (c *Core) ResponseBits() int {
	return c.Outputs + c.Bidirs + c.ScanCells()
}

// InCells returns the number of wrapper input cells.
func (c *Core) InCells() int { return c.Inputs + c.Bidirs }

// OutCells returns the number of wrapper output cells.
func (c *Core) OutCells() int { return c.Outputs + c.Bidirs }

// MaxWrapperChains returns the largest useful number of wrapper chains:
// one per internal scan chain plus one per wrapper input cell. Beyond
// this, additional chains would carry no stimulus cells.
func (c *Core) MaxWrapperChains() int {
	return len(c.ScanChains) + c.InCells()
}

// Validate checks the core description for consistency. It is the
// gate that keeps malformed design files (see format.go) out of the
// panicking cube/bitvec kernels: terminal, chain and pattern counts
// are bounded, the stimulus total is computed overflow-safely, and the
// generator parameters must be finite — a NaN Clustering, for example,
// would otherwise sail through range comparisons (every NaN comparison
// is false) and crash the generator's span sampling.
func (c *Core) Validate() error {
	if c.Name == "" {
		return fmt.Errorf("soc: core with empty name")
	}
	if c.Inputs < 0 || c.Outputs < 0 || c.Bidirs < 0 {
		return fmt.Errorf("soc: core %s: negative terminal count", c.Name)
	}
	if c.Inputs > MaxTerminals || c.Outputs > MaxTerminals || c.Bidirs > MaxTerminals {
		return fmt.Errorf("soc: core %s: terminal count exceeds %d", c.Name, MaxTerminals)
	}
	if len(c.ScanChains) > MaxScanChains {
		return fmt.Errorf("soc: core %s: %d scan chains exceeds %d", c.Name, len(c.ScanChains), MaxScanChains)
	}
	stim := int64(c.Inputs) + int64(c.Bidirs)
	for i, l := range c.ScanChains {
		if l <= 0 {
			return fmt.Errorf("soc: core %s: scan chain %d has length %d", c.Name, i, l)
		}
		if l > MaxScanChainLen {
			return fmt.Errorf("soc: core %s: scan chain %d length %d exceeds %d", c.Name, i, l, MaxScanChainLen)
		}
		stim += int64(l)
	}
	if c.Patterns <= 0 {
		return fmt.Errorf("soc: core %s: %d patterns", c.Name, c.Patterns)
	}
	if c.Patterns > MaxPatterns {
		return fmt.Errorf("soc: core %s: %d patterns exceeds %d", c.Name, c.Patterns, MaxPatterns)
	}
	if stim == 0 {
		return fmt.Errorf("soc: core %s has no stimulus cells", c.Name)
	}
	if stim > MaxStimulusBits {
		return fmt.Errorf("soc: core %s: %d stimulus cells exceeds %d", c.Name, stim, MaxStimulusBits)
	}
	for _, f := range []struct {
		name string
		v    float64
	}{{"clustering", c.Clustering}, {"density decay", c.DensityDecay}} {
		if math.IsNaN(f.v) || math.IsInf(f.v, 0) {
			return fmt.Errorf("soc: core %s: %s %g is not finite", c.Name, f.name, f.v)
		}
	}
	if c.ExplicitCubes == nil {
		// Written so a NaN density fails too (NaN compares false to
		// everything, so the positive form is the safe one).
		if !(c.CareDensity > 0 && c.CareDensity <= 1) {
			return fmt.Errorf("soc: core %s: care density %g out of (0,1]", c.Name, c.CareDensity)
		}
	} else {
		if c.ExplicitCubes.NumBits != c.StimulusBits() {
			return fmt.Errorf("soc: core %s: explicit cube width %d, want %d",
				c.Name, c.ExplicitCubes.NumBits, c.StimulusBits())
		}
		if c.ExplicitCubes.Len() != c.Patterns {
			return fmt.Errorf("soc: core %s: %d explicit cubes, want %d patterns",
				c.Name, c.ExplicitCubes.Len(), c.Patterns)
		}
	}
	return nil
}

// genSpec maps the core's generator parameters onto the cube package's
// spec — the single translation both TestSet and TestSource share, so
// the materialized and streamed forms describe the same cube sequence.
func (c *Core) genSpec() cube.GenSpec {
	return cube.GenSpec{
		NumBits:      c.StimulusBits(),
		Patterns:     c.Patterns,
		Density:      c.CareDensity,
		DensityDecay: c.DensityDecay,
		Clustering:   c.Clustering,
		Seed:         c.Seed,
		Geometry:     c.ScanChains,
		IOCells:      c.InCells(),
	}
}

// TestSet returns the core's test cubes, generating and caching them on
// first use. The result is shared; callers must not mutate it.
func (c *Core) TestSet() (*cube.Set, error) {
	c.cubesOnce.Do(func() {
		if c.ExplicitCubes != nil {
			c.cubes = c.ExplicitCubes
			return
		}
		c.cubes, c.cubesErr = cube.Generate(c.genSpec())
	})
	return c.cubes, c.cubesErr
}

// TestSource returns a fresh pull-based stream over the core's test
// cubes — the same sequence TestSet materializes, delivered one cube at
// a time so giant test sets are never resident. Unlike TestSet it
// caches nothing (and deliberately does not consult the TestSet cache,
// whose population is exactly the O(test set) allocation streaming
// callers are avoiding); with explicit cubes it streams the attached
// set by reference. Each call returns an independent source, so
// concurrent consumers (worker-pool evaluators) each take their own.
func (c *Core) TestSource() (cube.Source, error) {
	if c.ExplicitCubes != nil {
		return cube.NewSetSource(c.ExplicitCubes), nil
	}
	return cube.NewGenerator(c.genSpec())
}

// StimulusVolumeBits returns NumBits × Patterns as an int64 — the raw
// stimulus image size the materialized evaluator path would shadow in
// its flat planes, used to decide when to stream instead. Overflow-safe
// for any core passing Validate.
func (c *Core) StimulusVolumeBits() int64 {
	return int64(c.StimulusBits()) * int64(c.Patterns)
}

// MustTestSet is TestSet but panics on error; for use with the built-in
// (known-valid) designs.
func (c *Core) MustTestSet() *cube.Set {
	s, err := c.TestSet()
	if err != nil {
		panic(err)
	}
	return s
}

// SOC is a core-based system-on-chip.
type SOC struct {
	Name  string
	Cores []*Core
}

// Validate checks the SOC and all its cores.
func (s *SOC) Validate() error {
	if s.Name == "" {
		return fmt.Errorf("soc: SOC with empty name")
	}
	if len(s.Cores) == 0 {
		return fmt.Errorf("soc: SOC %s has no cores", s.Name)
	}
	seen := make(map[string]bool, len(s.Cores))
	for _, c := range s.Cores {
		if err := c.Validate(); err != nil {
			return err
		}
		if seen[c.Name] {
			return fmt.Errorf("soc: SOC %s: duplicate core name %q", s.Name, c.Name)
		}
		seen[c.Name] = true
	}
	return nil
}

// TotalGates sums the gate counts of all cores.
func (s *SOC) TotalGates() int {
	n := 0
	for _, c := range s.Cores {
		n += c.Gates
	}
	return n
}

// TotalScanCells sums the scan cells of all cores.
func (s *SOC) TotalScanCells() int {
	n := 0
	for _, c := range s.Cores {
		n += c.ScanCells()
	}
	return n
}

// InitialVolume returns the summed raw stimulus volume V_i over all
// cores, in bits (Table 3, column 3).
func (s *SOC) InitialVolume() (int64, error) {
	var v int64
	for _, c := range s.Cores {
		ts, err := c.TestSet()
		if err != nil {
			return 0, err
		}
		v += ts.RawVolume()
	}
	return v, nil
}

// CoreByName returns the named core, or nil.
func (s *SOC) CoreByName(name string) *Core {
	for _, c := range s.Cores {
		if c.Name == name {
			return c
		}
	}
	return nil
}

// balancedChains splits total cells into n chains whose lengths differ by
// at most one — the usual idealization for benchmark scan structures.
func balancedChains(total, n int) []int {
	if n <= 0 || total <= 0 {
		return nil
	}
	if n > total {
		n = total
	}
	chains := make([]int, n)
	base, rem := total/n, total%n
	for i := range chains {
		chains[i] = base
		if i < rem {
			chains[i]++
		}
	}
	return chains
}
