// Package soc models core-based systems-on-chip for modular test
// planning: embedded cores with scan structure and test sets, and SOCs
// that aggregate cores. It ships the benchmark designs used in the DATE
// 2008 paper (d695, a d2758 stand-in, the industrial cores ckt-1..ckt-12
// as documented synthetic stand-ins, and System1–System4), plus an
// ITC'02-inspired text format for describing designs on disk.
package soc

import (
	"fmt"
	"sync"

	"soctap/internal/cube"
)

// Core describes one wrapped embedded core: its functional terminals, its
// internal scan chains, and the shape of its test set. Test cubes are
// either attached directly (ExplicitCubes) or generated deterministically
// from the Gen parameters on first use.
type Core struct {
	Name    string
	Inputs  int // functional inputs (wrapper input cells)
	Outputs int // functional outputs (wrapper output cells)
	Bidirs  int // bidirectional terminals (count as both in and out cells)

	// ScanChains lists the length (in cells) of each internal scan
	// chain. A combinational core has none.
	ScanChains []int

	Patterns int // number of test patterns (cubes)
	Gates    int // approximate gate count, for hardware-cost reporting

	// CareDensity, Clustering, DensityDecay and Seed parameterize the
	// synthetic cube generator when ExplicitCubes is nil.
	CareDensity  float64
	Clustering   float64
	DensityDecay float64
	Seed         int64

	// ExplicitCubes, when non-nil, is used verbatim as the core's test
	// set (its width must equal StimulusBits and its length Patterns).
	ExplicitCubes *cube.Set

	cubesOnce sync.Once
	cubes     *cube.Set
	cubesErr  error
}

// ScanCells returns the total number of internal scan cells.
func (c *Core) ScanCells() int {
	n := 0
	for _, l := range c.ScanChains {
		n += l
	}
	return n
}

// StimulusBits returns the number of stimulus cells per pattern: wrapper
// input cells (functional inputs and bidirs) plus all scan cells.
func (c *Core) StimulusBits() int {
	return c.Inputs + c.Bidirs + c.ScanCells()
}

// ResponseBits returns the number of response cells per pattern: wrapper
// output cells (functional outputs and bidirs) plus all scan cells.
func (c *Core) ResponseBits() int {
	return c.Outputs + c.Bidirs + c.ScanCells()
}

// InCells returns the number of wrapper input cells.
func (c *Core) InCells() int { return c.Inputs + c.Bidirs }

// OutCells returns the number of wrapper output cells.
func (c *Core) OutCells() int { return c.Outputs + c.Bidirs }

// MaxWrapperChains returns the largest useful number of wrapper chains:
// one per internal scan chain plus one per wrapper input cell. Beyond
// this, additional chains would carry no stimulus cells.
func (c *Core) MaxWrapperChains() int {
	return len(c.ScanChains) + c.InCells()
}

// Validate checks the core description for consistency.
func (c *Core) Validate() error {
	if c.Name == "" {
		return fmt.Errorf("soc: core with empty name")
	}
	if c.Inputs < 0 || c.Outputs < 0 || c.Bidirs < 0 {
		return fmt.Errorf("soc: core %s: negative terminal count", c.Name)
	}
	for i, l := range c.ScanChains {
		if l <= 0 {
			return fmt.Errorf("soc: core %s: scan chain %d has length %d", c.Name, i, l)
		}
	}
	if c.Patterns <= 0 {
		return fmt.Errorf("soc: core %s: %d patterns", c.Name, c.Patterns)
	}
	if c.StimulusBits() == 0 {
		return fmt.Errorf("soc: core %s has no stimulus cells", c.Name)
	}
	if c.ExplicitCubes == nil {
		if c.CareDensity <= 0 || c.CareDensity > 1 {
			return fmt.Errorf("soc: core %s: care density %g out of (0,1]", c.Name, c.CareDensity)
		}
	} else {
		if c.ExplicitCubes.NumBits != c.StimulusBits() {
			return fmt.Errorf("soc: core %s: explicit cube width %d, want %d",
				c.Name, c.ExplicitCubes.NumBits, c.StimulusBits())
		}
		if c.ExplicitCubes.Len() != c.Patterns {
			return fmt.Errorf("soc: core %s: %d explicit cubes, want %d patterns",
				c.Name, c.ExplicitCubes.Len(), c.Patterns)
		}
	}
	return nil
}

// TestSet returns the core's test cubes, generating and caching them on
// first use. The result is shared; callers must not mutate it.
func (c *Core) TestSet() (*cube.Set, error) {
	c.cubesOnce.Do(func() {
		if c.ExplicitCubes != nil {
			c.cubes = c.ExplicitCubes
			return
		}
		c.cubes, c.cubesErr = cube.Generate(cube.GenSpec{
			NumBits:      c.StimulusBits(),
			Patterns:     c.Patterns,
			Density:      c.CareDensity,
			DensityDecay: c.DensityDecay,
			Clustering:   c.Clustering,
			Seed:         c.Seed,
			Geometry:     c.ScanChains,
			IOCells:      c.InCells(),
		})
	})
	return c.cubes, c.cubesErr
}

// MustTestSet is TestSet but panics on error; for use with the built-in
// (known-valid) designs.
func (c *Core) MustTestSet() *cube.Set {
	s, err := c.TestSet()
	if err != nil {
		panic(err)
	}
	return s
}

// SOC is a core-based system-on-chip.
type SOC struct {
	Name  string
	Cores []*Core
}

// Validate checks the SOC and all its cores.
func (s *SOC) Validate() error {
	if s.Name == "" {
		return fmt.Errorf("soc: SOC with empty name")
	}
	if len(s.Cores) == 0 {
		return fmt.Errorf("soc: SOC %s has no cores", s.Name)
	}
	seen := make(map[string]bool, len(s.Cores))
	for _, c := range s.Cores {
		if err := c.Validate(); err != nil {
			return err
		}
		if seen[c.Name] {
			return fmt.Errorf("soc: SOC %s: duplicate core name %q", s.Name, c.Name)
		}
		seen[c.Name] = true
	}
	return nil
}

// TotalGates sums the gate counts of all cores.
func (s *SOC) TotalGates() int {
	n := 0
	for _, c := range s.Cores {
		n += c.Gates
	}
	return n
}

// TotalScanCells sums the scan cells of all cores.
func (s *SOC) TotalScanCells() int {
	n := 0
	for _, c := range s.Cores {
		n += c.ScanCells()
	}
	return n
}

// InitialVolume returns the summed raw stimulus volume V_i over all
// cores, in bits (Table 3, column 3).
func (s *SOC) InitialVolume() (int64, error) {
	var v int64
	for _, c := range s.Cores {
		ts, err := c.TestSet()
		if err != nil {
			return 0, err
		}
		v += ts.RawVolume()
	}
	return v, nil
}

// CoreByName returns the named core, or nil.
func (s *SOC) CoreByName(name string) *Core {
	for _, c := range s.Cores {
		if c.Name == name {
			return c
		}
	}
	return nil
}

// balancedChains splits total cells into n chains whose lengths differ by
// at most one — the usual idealization for benchmark scan structures.
func balancedChains(total, n int) []int {
	if n <= 0 || total <= 0 {
		return nil
	}
	if n > total {
		n = total
	}
	chains := make([]int, n)
	base, rem := total/n, total%n
	for i := range chains {
		chains[i] = base
		if i < rem {
			chains[i]++
		}
	}
	return chains
}
