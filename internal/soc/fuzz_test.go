package soc

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzParse asserts the design parser never panics and that anything it
// accepts is a valid design that survives a write/parse round trip.
func FuzzParse(f *testing.F) {
	f.Add("SocName a\nCore c\nInputs 1\nPatterns 1\nEndCore\n")
	f.Add("Core c\nScanChains 2 5 5\nEndCore")
	f.Add("# only a comment\n")
	f.Add("SocName \x00weird\nTotalCores 99\n")
	f.Add("Core c\nInputs 999999999999999999999\nEndCore")
	f.Add(strings.Repeat("Core x\n", 50))
	f.Fuzz(func(t *testing.T, input string) {
		s, err := Parse(strings.NewReader(input))
		if err != nil {
			return
		}
		if vErr := s.Validate(); vErr != nil {
			t.Fatalf("Parse accepted a design that fails Validate: %v", vErr)
		}
		var buf bytes.Buffer
		if wErr := Write(&buf, s); wErr != nil {
			t.Fatalf("accepted design fails to Write: %v", wErr)
		}
		back, rErr := Parse(&buf)
		if rErr != nil {
			t.Fatalf("emitted design fails to re-Parse: %v\n%s", rErr, buf.String())
		}
		if len(back.Cores) != len(s.Cores) {
			t.Fatalf("round trip changed core count %d -> %d", len(s.Cores), len(back.Cores))
		}
	})
}
