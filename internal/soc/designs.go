package soc

import "fmt"

// Built-in benchmark designs.
//
// d695 follows the published ITC'02 SOC test benchmark structure (ten
// ISCAS'85/'89 cores). Scan-chain length lists follow the benchmark's
// balanced configurations. Test cubes are synthetic at the published
// 40–70% care-bit densities of compacted ISCAS test sets.
//
// d2758 (Iyengar & Chandra, IEE CDT 2005) is not publicly archived; the
// stand-in below is a plausible composition of larger ISCAS'89-class
// cores, documented in DESIGN.md as a substitution.
//
// ckt-1..ckt-12 stand in for the proprietary industrial cores of Wang &
// Chakrabarty (ITC'05): 10k–110k scan cells, 1–5% care density,
// clustered care bits. System1–System4 are SOCs crafted from them, as in
// Table 3 of the paper.

// D695 returns the d695 benchmark SOC.
func D695() *SOC {
	return &SOC{
		Name: "d695",
		Cores: []*Core{
			{Name: "c6288", Inputs: 32, Outputs: 32, Patterns: 12,
				Gates: 2416, CareDensity: 0.60, Clustering: 0.2, Seed: 101},
			{Name: "c7552", Inputs: 207, Outputs: 108, Patterns: 73,
				Gates: 3512, CareDensity: 0.48, Clustering: 0.2, Seed: 102},
			{Name: "s838", Inputs: 35, Outputs: 2, ScanChains: balancedChains(32, 1), Patterns: 75,
				Gates: 446, CareDensity: 0.55, Clustering: 0.3, Seed: 103},
			{Name: "s9234", Inputs: 36, Outputs: 39, ScanChains: balancedChains(211, 4), Patterns: 105,
				Gates: 5597, CareDensity: 0.45, Clustering: 0.4, DensityDecay: 0.4, Seed: 104},
			{Name: "s38417", Inputs: 28, Outputs: 106, ScanChains: balancedChains(1636, 32), Patterns: 68,
				Gates: 23815, CareDensity: 0.32, Clustering: 0.5, DensityDecay: 0.5, Seed: 105},
			{Name: "s13207", Inputs: 62, Outputs: 152, ScanChains: balancedChains(638, 16), Patterns: 234,
				Gates: 8589, CareDensity: 0.38, Clustering: 0.4, DensityDecay: 0.5, Seed: 106},
			{Name: "s15850", Inputs: 77, Outputs: 150, ScanChains: balancedChains(534, 16), Patterns: 95,
				Gates: 10306, CareDensity: 0.42, Clustering: 0.4, DensityDecay: 0.4, Seed: 107},
			{Name: "s5378", Inputs: 35, Outputs: 49, ScanChains: balancedChains(179, 4), Patterns: 97,
				Gates: 2958, CareDensity: 0.50, Clustering: 0.3, DensityDecay: 0.3, Seed: 108},
			{Name: "s35932", Inputs: 35, Outputs: 320, ScanChains: balancedChains(1728, 32), Patterns: 12,
				Gates: 17828, CareDensity: 0.38, Clustering: 0.5, Seed: 109},
			{Name: "s38584", Inputs: 38, Outputs: 304, ScanChains: balancedChains(1426, 32), Patterns: 110,
				Gates: 19253, CareDensity: 0.32, Clustering: 0.5, DensityDecay: 0.5, Seed: 110},
		},
	}
}

// D2758 returns the d2758 stand-in SOC (see package comment).
func D2758() *SOC {
	return &SOC{
		Name: "d2758",
		Cores: []*Core{
			{Name: "m1-s38417", Inputs: 28, Outputs: 106, ScanChains: balancedChains(1636, 32), Patterns: 99,
				Gates: 23815, CareDensity: 0.32, Clustering: 0.5, DensityDecay: 0.5, Seed: 201},
			{Name: "m2-s38584", Inputs: 38, Outputs: 304, ScanChains: balancedChains(1426, 32), Patterns: 136,
				Gates: 19253, CareDensity: 0.32, Clustering: 0.5, DensityDecay: 0.5, Seed: 202},
			{Name: "m3-s35932", Inputs: 35, Outputs: 320, ScanChains: balancedChains(1728, 32), Patterns: 16,
				Gates: 17828, CareDensity: 0.38, Clustering: 0.5, Seed: 203},
			{Name: "m4-s15850", Inputs: 77, Outputs: 150, ScanChains: balancedChains(534, 16), Patterns: 126,
				Gates: 10306, CareDensity: 0.42, Clustering: 0.4, DensityDecay: 0.4, Seed: 204},
			{Name: "m5-s13207", Inputs: 62, Outputs: 152, ScanChains: balancedChains(638, 16), Patterns: 273,
				Gates: 8589, CareDensity: 0.38, Clustering: 0.4, DensityDecay: 0.5, Seed: 205},
			{Name: "m6-s38417b", Inputs: 28, Outputs: 106, ScanChains: balancedChains(1636, 24), Patterns: 85,
				Gates: 23815, CareDensity: 0.34, Clustering: 0.5, DensityDecay: 0.5, Seed: 206},
			{Name: "m7-s9234", Inputs: 36, Outputs: 39, ScanChains: balancedChains(211, 4), Patterns: 147,
				Gates: 5597, CareDensity: 0.45, Clustering: 0.4, DensityDecay: 0.4, Seed: 207},
			{Name: "m8-s38584b", Inputs: 38, Outputs: 304, ScanChains: balancedChains(1426, 24), Patterns: 92,
				Gates: 19253, CareDensity: 0.34, Clustering: 0.5, DensityDecay: 0.5, Seed: 208},
		},
	}
}

// industrialSpec compactly describes one synthetic industrial core.
type industrialSpec struct {
	cells, chains, in, out, bidir, patterns, gates int
	density                                        float64
	seed                                           int64
}

// The industrial cores are compression-ready designs: hundreds to
// thousands of short scan chains (50–70 cells), the structure real
// embedded-compression flows impose, with 1–5% care densities and
// scan-slice-clustered care bits.
var industrialSpecs = map[string]industrialSpec{
	// name: {scan cells, scan chains, inputs, outputs, bidirs, patterns, gates, care density, seed}
	"ckt-1":  {24000, 480, 300, 200, 16, 200, 290000, 0.030, 301},
	"ckt-2":  {12000, 240, 150, 180, 8, 160, 150000, 0.050, 302},
	"ckt-3":  {36000, 600, 400, 350, 24, 220, 430000, 0.020, 303},
	"ckt-4":  {18000, 360, 250, 220, 12, 150, 210000, 0.040, 304},
	"ckt-5":  {52000, 800, 500, 450, 32, 240, 620000, 0.015, 305},
	"ckt-6":  {10000, 200, 120, 140, 8, 140, 120000, 0.050, 306},
	"ckt-7":  {44000, 800, 420, 380, 24, 250, 530000, 0.015, 307},
	"ckt-8":  {64000, 1000, 600, 500, 40, 260, 770000, 0.012, 308},
	"ckt-9":  {30000, 500, 350, 300, 20, 200, 360000, 0.025, 309},
	"ckt-10": {80000, 1200, 700, 600, 48, 280, 960000, 0.010, 310},
	"ckt-11": {15000, 300, 200, 180, 12, 150, 180000, 0.045, 311},
	"ckt-12": {110000, 1600, 800, 700, 56, 300, 1320000, 0.010, 312},
}

// IndustrialCore returns the named synthetic industrial core
// ("ckt-1" .. "ckt-12").
func IndustrialCore(name string) (*Core, error) {
	sp, ok := industrialSpecs[name]
	if !ok {
		return nil, fmt.Errorf("soc: unknown industrial core %q", name)
	}
	return &Core{
		Name:         name,
		Inputs:       sp.in,
		Outputs:      sp.out,
		Bidirs:       sp.bidir,
		ScanChains:   balancedChains(sp.cells, sp.chains),
		Patterns:     sp.patterns,
		Gates:        sp.gates,
		CareDensity:  sp.density,
		Clustering:   0.7,
		DensityDecay: 0.8,
		Seed:         sp.seed,
	}, nil
}

// MustIndustrialCore is IndustrialCore but panics on unknown names.
func MustIndustrialCore(name string) *Core {
	c, err := IndustrialCore(name)
	if err != nil {
		panic(err)
	}
	return c
}

// IndustrialCoreNames lists the available synthetic industrial cores in
// order.
func IndustrialCoreNames() []string {
	names := make([]string, 0, len(industrialSpecs))
	for i := 1; i <= 12; i++ {
		names = append(names, fmt.Sprintf("ckt-%d", i))
	}
	return names
}

// systemCompositions maps System names to their member cores (Table 3).
var systemCompositions = map[string][]string{
	"System1": {"ckt-1", "ckt-2", "ckt-4", "ckt-6", "ckt-11"},
	"System2": {"ckt-1", "ckt-3", "ckt-5", "ckt-7", "ckt-9", "ckt-11"},
	"System3": {"ckt-2", "ckt-4", "ckt-6", "ckt-7", "ckt-8", "ckt-9", "ckt-10", "ckt-11"},
	"System4": {"ckt-1", "ckt-2", "ckt-3", "ckt-4", "ckt-5", "ckt-6", "ckt-7", "ckt-8", "ckt-9", "ckt-10", "ckt-11", "ckt-12"},
}

// System returns one of the industrial-core SOCs System1..System4.
func System(name string) (*SOC, error) {
	comp, ok := systemCompositions[name]
	if !ok {
		return nil, fmt.Errorf("soc: unknown system %q", name)
	}
	s := &SOC{Name: name}
	for _, cn := range comp {
		c, err := IndustrialCore(cn)
		if err != nil {
			return nil, err
		}
		s.Cores = append(s.Cores, c)
	}
	return s, nil
}

// MustSystem is System but panics on unknown names.
func MustSystem(name string) *SOC {
	s, err := System(name)
	if err != nil {
		panic(err)
	}
	return s
}

// SystemNames lists the industrial-core systems in order.
func SystemNames() []string {
	return []string{"System1", "System2", "System3", "System4"}
}

// StressSystem returns a large synthetic SOC with n cores for
// scalability studies: industrial-core structures replicated with
// distinct names and cube seeds. The paper reports sub-minute CPU times
// "even for the system with the largest number of cores"; this design
// lets that claim be stressed well past the published sizes.
func StressSystem(n int, seed int64) (*SOC, error) {
	if n < 1 {
		return nil, fmt.Errorf("soc: stress system with %d cores", n)
	}
	names := IndustrialCoreNames()
	s := &SOC{Name: fmt.Sprintf("stress-%d", n)}
	for i := 0; i < n; i++ {
		c, err := IndustrialCore(names[i%len(names)])
		if err != nil {
			return nil, err
		}
		c.Name = fmt.Sprintf("%s-r%d", c.Name, i/len(names))
		c.Seed = c.Seed + seed*1000 + int64(i)
		s.Cores = append(s.Cores, c)
	}
	return s, s.Validate()
}

// Figure4SOC returns the three-core industrial design used in Figure 4 of
// the paper (ckt-1, ckt-11, ckt-9).
func Figure4SOC() *SOC {
	return &SOC{
		Name: "fig4",
		Cores: []*Core{
			MustIndustrialCore("ckt-1"),
			MustIndustrialCore("ckt-11"),
			MustIndustrialCore("ckt-9"),
		},
	}
}

// AllBenchmarks returns every built-in SOC keyed by name: d695, d2758 and
// System1..System4.
func AllBenchmarks() map[string]*SOC {
	m := map[string]*SOC{
		"d695":  D695(),
		"d2758": D2758(),
	}
	for _, n := range SystemNames() {
		m[n] = MustSystem(n)
	}
	return m
}
