package soc

import (
	"bytes"
	"strings"
	"testing"
)

func TestCoreDerivedCounts(t *testing.T) {
	c := &Core{
		Name: "x", Inputs: 10, Outputs: 20, Bidirs: 5,
		ScanChains: []int{100, 100, 50}, Patterns: 7, CareDensity: 0.1,
	}
	if got := c.ScanCells(); got != 250 {
		t.Errorf("ScanCells = %d, want 250", got)
	}
	if got := c.StimulusBits(); got != 10+5+250 {
		t.Errorf("StimulusBits = %d", got)
	}
	if got := c.ResponseBits(); got != 20+5+250 {
		t.Errorf("ResponseBits = %d", got)
	}
	if got := c.InCells(); got != 15 {
		t.Errorf("InCells = %d", got)
	}
	if got := c.OutCells(); got != 25 {
		t.Errorf("OutCells = %d", got)
	}
	if got := c.MaxWrapperChains(); got != 3+15 {
		t.Errorf("MaxWrapperChains = %d", got)
	}
	if err := c.Validate(); err != nil {
		t.Errorf("Validate: %v", err)
	}
}

func TestCoreValidateErrors(t *testing.T) {
	bad := []*Core{
		{Name: "", Inputs: 1, Patterns: 1, CareDensity: 0.5},
		{Name: "a", Inputs: -1, Patterns: 1, CareDensity: 0.5},
		{Name: "a", Inputs: 1, ScanChains: []int{0}, Patterns: 1, CareDensity: 0.5},
		{Name: "a", Inputs: 1, Patterns: 0, CareDensity: 0.5},
		{Name: "a", Inputs: 0, Outputs: 3, Patterns: 1, CareDensity: 0.5}, // no stimulus
		{Name: "a", Inputs: 1, Patterns: 1, CareDensity: 0},
		{Name: "a", Inputs: 1, Patterns: 1, CareDensity: 1.2},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("case %d: Validate accepted invalid core %+v", i, c)
		}
	}
}

func TestCoreTestSetCached(t *testing.T) {
	c := &Core{Name: "a", Inputs: 5, ScanChains: []int{100}, Patterns: 10, CareDensity: 0.2, Seed: 1}
	s1, err := c.TestSet()
	if err != nil {
		t.Fatal(err)
	}
	s2, _ := c.TestSet()
	if s1 != s2 {
		t.Error("TestSet not cached")
	}
	if s1.NumBits != c.StimulusBits() || s1.Len() != c.Patterns {
		t.Errorf("test set shape %dx%d, want %dx%d", s1.Len(), s1.NumBits, c.Patterns, c.StimulusBits())
	}
}

func TestD695Structure(t *testing.T) {
	d := D695()
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(d.Cores) != 10 {
		t.Fatalf("d695 has %d cores, want 10", len(d.Cores))
	}
	s38417 := d.CoreByName("s38417")
	if s38417 == nil {
		t.Fatal("s38417 missing")
	}
	if s38417.ScanCells() != 1636 || len(s38417.ScanChains) != 32 {
		t.Errorf("s38417 scan structure wrong: %d cells in %d chains",
			s38417.ScanCells(), len(s38417.ScanChains))
	}
	c6288 := d.CoreByName("c6288")
	if c6288 == nil || len(c6288.ScanChains) != 0 {
		t.Error("c6288 should be combinational")
	}
	// Published benchmark densities average ~44% (Kajihara & Miyase).
	var sum float64
	for _, c := range d.Cores {
		if c.CareDensity < 0.25 || c.CareDensity > 0.75 {
			t.Errorf("%s: care density %g outside ISCAS range", c.Name, c.CareDensity)
		}
		sum += c.CareDensity
	}
	if avg := sum / float64(len(d.Cores)); avg < 0.40 || avg > 0.50 {
		t.Errorf("d695 average care density %.3f, want ~0.44", avg)
	}
}

func TestD2758Structure(t *testing.T) {
	d := D2758()
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(d.Cores) != 8 {
		t.Errorf("d2758 stand-in has %d cores, want 8", len(d.Cores))
	}
}

func TestIndustrialCores(t *testing.T) {
	names := IndustrialCoreNames()
	if len(names) != 12 {
		t.Fatalf("%d industrial cores, want 12", len(names))
	}
	for _, n := range names {
		c, err := IndustrialCore(n)
		if err != nil {
			t.Fatal(err)
		}
		if err := c.Validate(); err != nil {
			t.Errorf("%s: %v", n, err)
		}
		if c.ScanCells() < 10000 || c.ScanCells() > 110000 {
			t.Errorf("%s: %d scan cells outside published envelope [10k,110k]", n, c.ScanCells())
		}
		if c.CareDensity > 0.05+1e-9 || c.CareDensity < 0.01-1e-9 {
			t.Errorf("%s: care density %g outside published envelope [1%%,5%%]", n, c.CareDensity)
		}
	}
	if _, err := IndustrialCore("ckt-99"); err == nil {
		t.Error("unknown industrial core accepted")
	}
}

func TestCkt7SupportsFig2Band(t *testing.T) {
	// Figure 2 sweeps m in [128,255] at w=10; ckt-7 must admit that many
	// wrapper chains.
	c := MustIndustrialCore("ckt-7")
	if c.MaxWrapperChains() < 255 {
		t.Errorf("ckt-7 MaxWrapperChains = %d, need >= 255 for the Fig. 2 sweep", c.MaxWrapperChains())
	}
}

func TestSystems(t *testing.T) {
	for _, n := range SystemNames() {
		s, err := System(n)
		if err != nil {
			t.Fatal(err)
		}
		if err := s.Validate(); err != nil {
			t.Errorf("%s: %v", n, err)
		}
		if s.TotalGates() <= 0 || s.TotalScanCells() <= 0 {
			t.Errorf("%s: degenerate totals", n)
		}
	}
	s4 := MustSystem("System4")
	if len(s4.Cores) != 12 {
		t.Errorf("System4 has %d cores, want 12", len(s4.Cores))
	}
	if _, err := System("System9"); err == nil {
		t.Error("unknown system accepted")
	}
}

func TestFigure4SOC(t *testing.T) {
	f := Figure4SOC()
	if err := f.Validate(); err != nil {
		t.Fatal(err)
	}
	want := []string{"ckt-1", "ckt-11", "ckt-9"}
	for i, c := range f.Cores {
		if c.Name != want[i] {
			t.Errorf("core %d = %s, want %s", i, c.Name, want[i])
		}
	}
}

func TestAllBenchmarks(t *testing.T) {
	m := AllBenchmarks()
	for _, name := range []string{"d695", "d2758", "System1", "System2", "System3", "System4"} {
		if m[name] == nil {
			t.Errorf("AllBenchmarks missing %s", name)
		}
	}
}

func TestSOCValidateDuplicates(t *testing.T) {
	s := &SOC{Name: "x", Cores: []*Core{
		{Name: "a", Inputs: 1, Patterns: 1, CareDensity: 0.5},
		{Name: "a", Inputs: 1, Patterns: 1, CareDensity: 0.5},
	}}
	if err := s.Validate(); err == nil {
		t.Error("duplicate core names accepted")
	}
	if err := (&SOC{Name: "y"}).Validate(); err == nil {
		t.Error("empty SOC accepted")
	}
	if err := (&SOC{Cores: []*Core{{Name: "a", Inputs: 1, Patterns: 1, CareDensity: 0.5}}}).Validate(); err == nil {
		t.Error("unnamed SOC accepted")
	}
}

func TestInitialVolume(t *testing.T) {
	s := &SOC{Name: "x", Cores: []*Core{
		{Name: "a", Inputs: 10, Patterns: 3, CareDensity: 0.5, Seed: 1},
		{Name: "b", Inputs: 4, ScanChains: []int{6}, Patterns: 2, CareDensity: 0.5, Seed: 2},
	}}
	v, err := s.InitialVolume()
	if err != nil {
		t.Fatal(err)
	}
	if v != 10*3+10*2 {
		t.Errorf("InitialVolume = %d, want %d", v, 10*3+10*2)
	}
}

func TestFormatRoundTrip(t *testing.T) {
	orig := D695()
	var buf bytes.Buffer
	if err := Write(&buf, orig); err != nil {
		t.Fatal(err)
	}
	back, err := Parse(&buf)
	if err != nil {
		t.Fatalf("parse emitted d695: %v\n%s", err, buf.String())
	}
	if back.Name != orig.Name || len(back.Cores) != len(orig.Cores) {
		t.Fatal("round trip lost structure")
	}
	for i, c := range orig.Cores {
		b := back.Cores[i]
		if b.Name != c.Name || b.Inputs != c.Inputs || b.Outputs != c.Outputs ||
			b.Bidirs != c.Bidirs || b.Patterns != c.Patterns || b.Gates != c.Gates ||
			b.CareDensity != c.CareDensity || b.Seed != c.Seed {
			t.Errorf("core %s fields changed in round trip", c.Name)
		}
		if len(b.ScanChains) != len(c.ScanChains) {
			t.Errorf("core %s scan chains changed", c.Name)
		}
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		name, in string
	}{
		{"unterminated", "Core a\nInputs 1\nPatterns 1\n"},
		{"bad statement outside", "Inputs 3\n"},
		{"bad statement inside", "Core a\nBogus 1\nEndCore\n"},
		{"bad int", "Core a\nInputs xyz\nEndCore\n"},
		{"scanchain count mismatch", "Core a\nInputs 1\nScanChains 2 5\nPatterns 1\nEndCore\n"},
		{"totalcores mismatch", "SocName s\nTotalCores 2\nCore a\nInputs 1\nPatterns 1\nEndCore\n"},
		{"invalid core", "SocName s\nCore a\nInputs 1\nPatterns 0\nEndCore\n"},
		{"missing soc name", "Core a\nInputs 1\nPatterns 1\nEndCore\n"},
	}
	for _, c := range cases {
		if _, err := Parse(strings.NewReader(c.in)); err == nil {
			t.Errorf("%s: Parse accepted invalid input", c.name)
		}
	}
}

func TestParseComments(t *testing.T) {
	in := `
# a full-line comment
SocName tiny   # trailing comment
Core a
  Inputs 2
  Outputs 1
  Patterns 3
  CareDensity 0.5
EndCore
`
	s, err := Parse(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if s.Name != "tiny" || len(s.Cores) != 1 || s.Cores[0].Patterns != 3 {
		t.Errorf("parsed design wrong: %+v", s)
	}
}

func TestBalancedChains(t *testing.T) {
	cases := []struct {
		total, n int
		want     []int
	}{
		{10, 3, []int{4, 3, 3}},
		{9, 3, []int{3, 3, 3}},
		{2, 5, []int{1, 1}}, // n clamped to total
		{0, 3, nil},
		{5, 0, nil},
	}
	for _, c := range cases {
		got := balancedChains(c.total, c.n)
		if len(got) != len(c.want) {
			t.Errorf("balancedChains(%d,%d) = %v, want %v", c.total, c.n, got, c.want)
			continue
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Errorf("balancedChains(%d,%d) = %v, want %v", c.total, c.n, got, c.want)
				break
			}
		}
	}
}

func TestStressSystem(t *testing.T) {
	s, err := StressSystem(24, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Cores) != 24 {
		t.Fatalf("%d cores", len(s.Cores))
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	// Replicas must have distinct names and seeds.
	if s.Cores[0].Name == s.Cores[12].Name {
		t.Error("replica name collision")
	}
	if s.Cores[0].Seed == s.Cores[12].Seed {
		t.Error("replica seed collision")
	}
	if _, err := StressSystem(0, 1); err == nil {
		t.Error("0 cores accepted")
	}
}
