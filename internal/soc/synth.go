package soc

import (
	"context"
	"fmt"
	"math/rand"
)

// SynthSpec parameterizes Synthesize, the synthetic SOC designer behind
// cmd/socgen. Output is deterministic in Seed for a fixed spec.
type SynthSpec struct {
	Name    string // SOC name
	Profile string // "industrial", "iscas", or "giant"
	Cores   int    // number of cores, ≥ 1
	Seed    int64

	// Patterns, when > 0, overrides every core's pattern count in place
	// of the profile's per-core draw. The override is applied after the
	// profile's random draws, so designs with and without it share all
	// other structure for one seed.
	Patterns int
	// Scale, when > 0 and ≠ 1, multiplies each core's scan-cell count
	// (and with it the gate estimate) — the knob that turns a profile
	// into a family of progressively larger designs. 0 means 1.
	Scale float64
}

// Profiles supported by Synthesize:
//
//   - industrial: compression-ready cores — sparse clustered cubes,
//     many short scan chains; the regime selective encoding targets.
//   - iscas: ISCAS-89-like cores — small, dense cubes, few long chains.
//   - giant: the production-scale workload of ROADMAP item 5 — cores an
//     order of magnitude deeper than industrial (tens of thousands of
//     scan cells, tens of thousands of patterns each, very sparse), so
//     a few dozen cores already carry millions of cubes. Designs of
//     this profile are meant to be consumed through the streaming
//     evaluator path; materializing one core's planes costs hundreds of
//     megabytes.
func Synthesize(ctx context.Context, sp SynthSpec) (*SOC, error) {
	if sp.Cores < 1 {
		return nil, fmt.Errorf("soc: synthesize: need at least one core")
	}
	scale := sp.Scale
	if scale == 0 {
		scale = 1
	}
	if !(scale > 0) {
		return nil, fmt.Errorf("soc: synthesize: scale %g, must be > 0", sp.Scale)
	}
	rng := rand.New(rand.NewSource(sp.Seed))
	s := &SOC{Name: sp.Name}
	for i := 0; i < sp.Cores; i++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		var c *Core
		switch sp.Profile {
		case "industrial":
			cells := 8000 + rng.Intn(60000)
			chainLen := 40 + rng.Intn(40)
			c = &Core{
				Name:         fmt.Sprintf("core-%d", i+1),
				Inputs:       50 + rng.Intn(400),
				Outputs:      50 + rng.Intn(350),
				Bidirs:       rng.Intn(32),
				Patterns:     100 + rng.Intn(250),
				CareDensity:  0.01 + rng.Float64()*0.04,
				Clustering:   0.6 + rng.Float64()*0.3,
				DensityDecay: 0.5 + rng.Float64()*0.4,
			}
			synthChains(c, cells, chainLen, scale, 12)
		case "iscas":
			cells := 100 + rng.Intn(2000)
			nChains := 1 + rng.Intn(32)
			cells = scaleCells(cells, scale)
			c = &Core{
				Name:         fmt.Sprintf("core-%d", i+1),
				Inputs:       20 + rng.Intn(200),
				Outputs:      10 + rng.Intn(300),
				ScanChains:   balancedChains(cells, min(nChains, cells)),
				Patterns:     20 + rng.Intn(220),
				Gates:        cells * 10,
				CareDensity:  0.35 + rng.Float64()*0.3,
				Clustering:   0.2 + rng.Float64()*0.3,
				DensityDecay: rng.Float64() * 0.5,
			}
		case "giant":
			cells := 24000 + rng.Intn(72000)
			chainLen := 60 + rng.Intn(60)
			c = &Core{
				Name:         fmt.Sprintf("core-%d", i+1),
				Inputs:       80 + rng.Intn(600),
				Outputs:      80 + rng.Intn(500),
				Bidirs:       rng.Intn(48),
				Patterns:     16000 + rng.Intn(16000),
				CareDensity:  0.004 + rng.Float64()*0.012,
				Clustering:   0.7 + rng.Float64()*0.25,
				DensityDecay: 0.5 + rng.Float64()*0.4,
			}
			synthChains(c, cells, chainLen, scale, 14)
		default:
			return nil, fmt.Errorf("soc: synthesize: unknown profile %q", sp.Profile)
		}
		c.Seed = sp.Seed*1000 + int64(i)
		if sp.Patterns > 0 {
			c.Patterns = sp.Patterns
		}
		s.Cores = append(s.Cores, c)
	}
	return s, s.Validate()
}

// synthChains fills in the core's scan structure from a scaled cell
// budget and a target chain length, plus the gate estimate.
func synthChains(c *Core, cells, chainLen int, scale float64, gatesPerCell int) {
	cells = scaleCells(cells, scale)
	c.ScanChains = balancedChains(cells, max(1, cells/chainLen))
	c.Gates = cells * gatesPerCell
}

// scaleCells applies the structural multiplier, keeping at least one
// cell. scale == 1 is exact (no float round-trip drift).
func scaleCells(cells int, scale float64) int {
	if scale == 1 {
		return cells
	}
	return max(1, int(float64(cells)*scale))
}
