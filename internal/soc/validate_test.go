package soc

// Malformed-design regression tests: design files are untrusted input,
// and Validate is the gate that keeps them out of the panicking
// cube/bitvec kernels. Each case here is a file that once reached (or
// would reach) a kernel panic — integer overflow of the stimulus total,
// NaN generator parameters that pass naive range checks because every
// NaN comparison is false — and must instead fail with a descriptive
// error.

import (
	"math"
	"strings"
	"testing"
)

// parseDesign builds a one-core design file around the given core body
// and parses it.
func parseDesign(t *testing.T, coreBody string) (*SOC, error) {
	t.Helper()
	text := "SocName bad\nCore c1\n" + coreBody + "\nEndCore\n"
	return Parse(strings.NewReader(text))
}

func TestParseRejectsMalformedDesigns(t *testing.T) {
	cases := []struct {
		name string
		body string
		want string // substring of the expected error
	}{
		{
			// Inputs near MaxInt: StimulusBits would overflow int and go
			// negative, and a negative width panics the cube constructor.
			name: "overflow-inputs",
			body: "Inputs 9223372036854775807\nOutputs 1\nPatterns 1",
			want: "terminal count",
		},
		{
			// Two large-but-individually-legal terminal counts whose sum
			// is absurd must also be rejected (the bound is on the total).
			name: "huge-stimulus-total",
			body: "Inputs 16000000\nOutputs 1\nBidirs 16000000\n" +
				"ScanChains 20 40000000 40000000 40000000 40000000 40000000 40000000 40000000 40000000 40000000 40000000 40000000 40000000 40000000 40000000 40000000 40000000 40000000 40000000 40000000 40000000\n" +
				"Patterns 1",
			want: "stimulus cells exceeds",
		},
		{
			name: "nan-care-density",
			body: "Inputs 8\nOutputs 8\nPatterns 4\nCareDensity NaN",
			want: "care density",
		},
		{
			name: "nan-clustering",
			body: "Inputs 8\nOutputs 8\nPatterns 4\nCareDensity 0.5\nClustering NaN",
			want: "not finite",
		},
		{
			name: "inf-density-decay",
			body: "Inputs 8\nOutputs 8\nPatterns 4\nCareDensity 0.5\nDensityDecay +Inf",
			want: "not finite",
		},
		{
			name: "huge-patterns",
			body: "Inputs 8\nOutputs 8\nPatterns 9223372036854775807",
			want: "patterns",
		},
		{
			name: "huge-chain-length",
			body: "Inputs 8\nOutputs 8\nScanChains 1 9223372036854775807\nPatterns 4",
			want: "length",
		},
		{
			name: "too-many-chains",
			body: "Inputs 8\nOutputs 8\nScanChains 9223372036854775807\nPatterns 4",
			want: "", // parser or validator may word this differently
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("malformed design panicked the parser: %v", r)
				}
			}()
			s, err := parseDesign(t, tc.body)
			if err == nil {
				// Parsing may legitimately succeed for borderline text;
				// the design must then still fail validation and, above
				// all, never panic downstream.
				if err = s.Validate(); err == nil {
					t.Fatal("malformed design accepted")
				}
			}
			if tc.want != "" && !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

// TestValidateStructuralBounds exercises the bounds directly on Core
// values (bypassing the parser), including the overflow-safe stimulus
// accumulation.
func TestValidateStructuralBounds(t *testing.T) {
	base := func() *Core {
		return &Core{Name: "c", Inputs: 8, Outputs: 8, Patterns: 4,
			CareDensity: 0.5, Clustering: 0.5, DensityDecay: 0.5}
	}
	cases := []struct {
		name   string
		mutate func(*Core)
	}{
		{"terminals-over-max", func(c *Core) { c.Inputs = MaxTerminals + 1 }},
		{"stimulus-overflow", func(c *Core) {
			// Each addend fits in int; the exact-int64 total must trip the
			// MaxStimulusBits bound instead of wrapping negative.
			c.Inputs = MaxTerminals
			c.Bidirs = MaxTerminals
			c.ScanChains = []int{MaxScanChainLen, MaxScanChainLen, MaxScanChainLen, MaxScanChainLen, MaxScanChainLen}
		}},
		{"chain-count-over-max", func(c *Core) {
			c.ScanChains = make([]int, MaxScanChains+1)
			for i := range c.ScanChains {
				c.ScanChains[i] = 1
			}
		}},
		{"patterns-over-max", func(c *Core) { c.Patterns = MaxPatterns + 1 }},
		{"nan-care-density", func(c *Core) { c.CareDensity = math.NaN() }},
		{"nan-clustering", func(c *Core) { c.Clustering = math.NaN() }},
		{"inf-density-decay", func(c *Core) { c.DensityDecay = math.Inf(1) }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			c := base()
			tc.mutate(c)
			if err := c.Validate(); err == nil {
				t.Fatal("out-of-bounds core validated")
			}
		})
	}
	if err := base().Validate(); err != nil {
		t.Fatalf("baseline core must validate: %v", err)
	}
}

// TestMalformedDesignNeverReachesKernels: even if a caller skips
// Validate, TestSet on a NaN-parameterized core must return an error,
// not panic (the generator revalidates its spec).
func TestMalformedDesignNeverReachesKernels(t *testing.T) {
	defer func() {
		if r := recover(); r != nil {
			t.Fatalf("TestSet panicked on a NaN-parameterized core: %v", r)
		}
	}()
	c := &Core{Name: "c", Inputs: 8, Outputs: 8, Patterns: 4,
		CareDensity: 0.5, Clustering: math.NaN()}
	if _, err := c.TestSet(); err == nil {
		t.Fatal("TestSet accepted a NaN Clustering")
	}
}
