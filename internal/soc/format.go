package soc

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// This file implements a plain-text design description format in the
// spirit of the ITC'02 SOC test benchmark ".soc" files, extended with the
// cube-generation fields this library needs. Grammar (one statement per
// line, '#' starts a comment, blank lines ignored):
//
//	SocName <name>
//	TotalCores <n>                 # optional, cross-checked when present
//	Core <name>
//	  Inputs <n>
//	  Outputs <n>
//	  Bidirs <n>                   # optional, default 0
//	  ScanChains <count> <len>...  # optional; count followed by lengths
//	  Patterns <n>
//	  Gates <n>                    # optional
//	  CareDensity <f>              # optional, default 0.5
//	  Clustering <f>               # optional
//	  DensityDecay <f>             # optional
//	  Seed <n>                     # optional
//	EndCore
//
// Write emits exactly this format, so Parse(Write(x)) round-trips.

// Parse reads a design description from r.
func Parse(r io.Reader) (*SOC, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<22)

	s := &SOC{}
	var cur *Core
	totalCores := -1
	lineNo := 0

	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		fields := strings.Fields(line)
		if len(fields) == 0 {
			continue
		}
		key := fields[0]
		args := fields[1:]

		fail := func(format string, a ...interface{}) error {
			return fmt.Errorf("soc: line %d: %s", lineNo, fmt.Sprintf(format, a...))
		}
		needInt := func() (int, error) {
			if len(args) != 1 {
				return 0, fail("%s expects one integer argument", key)
			}
			n, err := strconv.Atoi(args[0])
			if err != nil {
				return 0, fail("%s: %v", key, err)
			}
			return n, nil
		}
		needFloat := func() (float64, error) {
			if len(args) != 1 {
				return 0, fail("%s expects one numeric argument", key)
			}
			f, err := strconv.ParseFloat(args[0], 64)
			if err != nil {
				return 0, fail("%s: %v", key, err)
			}
			return f, nil
		}

		if cur == nil {
			switch key {
			case "SocName":
				if len(args) != 1 {
					return nil, fail("SocName expects one argument")
				}
				s.Name = args[0]
			case "TotalCores":
				n, err := needInt()
				if err != nil {
					return nil, err
				}
				totalCores = n
			case "Core":
				if len(args) != 1 {
					return nil, fail("Core expects one argument")
				}
				cur = &Core{Name: args[0], CareDensity: 0.5}
			default:
				return nil, fail("unexpected statement %q outside a Core block", key)
			}
			continue
		}

		switch key {
		case "Inputs":
			n, err := needInt()
			if err != nil {
				return nil, err
			}
			cur.Inputs = n
		case "Outputs":
			n, err := needInt()
			if err != nil {
				return nil, err
			}
			cur.Outputs = n
		case "Bidirs":
			n, err := needInt()
			if err != nil {
				return nil, err
			}
			cur.Bidirs = n
		case "Patterns":
			n, err := needInt()
			if err != nil {
				return nil, err
			}
			cur.Patterns = n
		case "Gates":
			n, err := needInt()
			if err != nil {
				return nil, err
			}
			cur.Gates = n
		case "Seed":
			n, err := needInt()
			if err != nil {
				return nil, err
			}
			cur.Seed = int64(n)
		case "CareDensity":
			f, err := needFloat()
			if err != nil {
				return nil, err
			}
			cur.CareDensity = f
		case "Clustering":
			f, err := needFloat()
			if err != nil {
				return nil, err
			}
			cur.Clustering = f
		case "DensityDecay":
			f, err := needFloat()
			if err != nil {
				return nil, err
			}
			cur.DensityDecay = f
		case "ScanChains":
			if len(args) < 1 {
				return nil, fail("ScanChains expects a count followed by lengths")
			}
			n, err := strconv.Atoi(args[0])
			if err != nil {
				return nil, fail("ScanChains count: %v", err)
			}
			if len(args)-1 != n {
				return nil, fail("ScanChains declares %d chains but lists %d lengths", n, len(args)-1)
			}
			chains := make([]int, n)
			for i, a := range args[1:] {
				l, err := strconv.Atoi(a)
				if err != nil {
					return nil, fail("ScanChains length %d: %v", i, err)
				}
				chains[i] = l
			}
			cur.ScanChains = chains
		case "EndCore":
			s.Cores = append(s.Cores, cur)
			cur = nil
		default:
			return nil, fail("unknown statement %q in Core block", key)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("soc: read: %w", err)
	}
	if cur != nil {
		return nil, fmt.Errorf("soc: unterminated Core block %q", cur.Name)
	}
	if totalCores >= 0 && totalCores != len(s.Cores) {
		return nil, fmt.Errorf("soc: TotalCores %d but %d Core blocks found", totalCores, len(s.Cores))
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return s, nil
}

// Write emits the design description of s to w in the format read by
// Parse.
func Write(w io.Writer, s *SOC) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "SocName %s\n", s.Name)
	fmt.Fprintf(bw, "TotalCores %d\n", len(s.Cores))
	for _, c := range s.Cores {
		fmt.Fprintf(bw, "\nCore %s\n", c.Name)
		fmt.Fprintf(bw, "  Inputs %d\n", c.Inputs)
		fmt.Fprintf(bw, "  Outputs %d\n", c.Outputs)
		if c.Bidirs != 0 {
			fmt.Fprintf(bw, "  Bidirs %d\n", c.Bidirs)
		}
		if len(c.ScanChains) > 0 {
			fmt.Fprintf(bw, "  ScanChains %d", len(c.ScanChains))
			for _, l := range c.ScanChains {
				fmt.Fprintf(bw, " %d", l)
			}
			fmt.Fprintln(bw)
		}
		fmt.Fprintf(bw, "  Patterns %d\n", c.Patterns)
		if c.Gates != 0 {
			fmt.Fprintf(bw, "  Gates %d\n", c.Gates)
		}
		fmt.Fprintf(bw, "  CareDensity %g\n", c.CareDensity)
		if c.Clustering != 0 {
			fmt.Fprintf(bw, "  Clustering %g\n", c.Clustering)
		}
		if c.DensityDecay != 0 {
			fmt.Fprintf(bw, "  DensityDecay %g\n", c.DensityDecay)
		}
		if c.Seed != 0 {
			fmt.Fprintf(bw, "  Seed %d\n", c.Seed)
		}
		fmt.Fprintln(bw, "EndCore")
	}
	return bw.Flush()
}
