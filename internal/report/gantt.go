package report

import (
	"fmt"
	"io"
	"strings"
)

// GanttItem is one bar of a schedule chart.
type GanttItem struct {
	Label string
	Lane  int // bus index
	Start int64
	End   int64
}

// Gantt renders a schedule as an ASCII chart, one row per lane, time on
// the horizontal axis scaled into `width` character cells. Each bar is
// drawn with the first letter of its label and delimited with '[' ']'
// when space allows.
func Gantt(w io.Writer, title string, laneWidths []int, items []GanttItem, width int) error {
	if width < 16 {
		width = 16
	}
	var span int64
	for _, it := range items {
		if it.Lane < 0 || it.Lane >= len(laneWidths) {
			return fmt.Errorf("report: gantt item %q on invalid lane %d", it.Label, it.Lane)
		}
		if it.End <= it.Start {
			return fmt.Errorf("report: gantt item %q has non-positive extent", it.Label)
		}
		if it.End > span {
			span = it.End
		}
	}
	if span == 0 {
		return fmt.Errorf("report: empty gantt")
	}
	scale := func(t int64) int {
		c := int(int64(width) * t / span)
		if c > width {
			c = width
		}
		return c
	}

	var b strings.Builder
	if title != "" {
		fmt.Fprintf(&b, "%s\n", title)
	}
	for lane := range laneWidths {
		row := []byte(strings.Repeat(".", width))
		for _, it := range items {
			if it.Lane != lane {
				continue
			}
			s, e := scale(it.Start), scale(it.End)
			if e <= s {
				e = s + 1
				if e > width {
					s, e = width-1, width
				}
			}
			for i := s; i < e; i++ {
				row[i] = '='
			}
			row[s] = '['
			if e-1 > s {
				row[e-1] = ']'
			}
			// Place as much of the label as fits inside the bar.
			label := it.Label
			if max := e - s - 2; max < len(label) {
				if max < 1 {
					label = ""
				} else {
					label = label[:max]
				}
			}
			copy(row[s+1:], label)
		}
		fmt.Fprintf(&b, "bus %d (w=%2d) |%s|\n", lane, laneWidths[lane], string(row))
	}
	fmt.Fprintf(&b, "%14s0%s%d cycles\n", "", strings.Repeat(" ", width-len(fmt.Sprint(span))), span)
	_, err := io.WriteString(w, b.String())
	return err
}
