package report

import (
	"bytes"
	"strings"
	"testing"
)

func TestTableRender(t *testing.T) {
	tab := NewTable("My Table", "design", "time", "ratio")
	tab.Add("d695", "12345", "1.50x")
	tab.Add("System1", "99", "12.00x")
	var buf bytes.Buffer
	if err := tab.Render(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"My Table", "design", "d695", "System1", "12.00x"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	// Columns aligned: every data line has the ratio column starting at
	// the same offset.
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 { // title, header, rule, two rows
		t.Fatalf("%d lines:\n%s", len(lines), out)
	}
	if idx1, idx2 := strings.Index(lines[3], "1.50x"), strings.Index(lines[4], "12.00x"); idx1 != idx2 {
		t.Errorf("ratio column misaligned: %d vs %d", idx1, idx2)
	}
}

func TestTableRaggedRows(t *testing.T) {
	tab := NewTable("", "a", "b")
	tab.Add("1")
	tab.Add("1", "2", "3")
	var buf bytes.Buffer
	if err := tab.Render(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "3") {
		t.Error("extra cell dropped")
	}
}

func TestSeries(t *testing.T) {
	xs := make([]int, 50)
	ys := make([]int64, 50)
	for i := range xs {
		xs[i] = 100 + i
		ys[i] = int64(1000 - i*3)
	}
	ys[30] = 500 // a dip that must survive bucketing
	var buf bytes.Buffer
	if err := Series(&buf, "tau vs m", xs, ys, 20, 6); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "tau vs m") || !strings.Contains(out, "max 1000") || !strings.Contains(out, "min 500") {
		t.Errorf("series output wrong:\n%s", out)
	}
	if !strings.Contains(out, "x: 100 .. 149") {
		t.Errorf("x range missing:\n%s", out)
	}
	if strings.Count(out, "*") == 0 {
		t.Error("no plot marks")
	}
}

func TestSeriesFlat(t *testing.T) {
	var buf bytes.Buffer
	if err := Series(&buf, "", []int{1, 2}, []int64{5, 5}, 10, 4); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "max 5") {
		t.Error("flat series broke")
	}
}

func TestSeriesErrors(t *testing.T) {
	var buf bytes.Buffer
	if err := Series(&buf, "", []int{1}, []int64{1, 2}, 10, 4); err == nil {
		t.Error("length mismatch accepted")
	}
	if err := Series(&buf, "", nil, nil, 10, 4); err == nil {
		t.Error("empty series accepted")
	}
}

func TestRatio(t *testing.T) {
	if got := Ratio(1259, 100); got != "12.59x" {
		t.Errorf("Ratio = %q", got)
	}
	if got := Ratio(5, 0); got != "-" {
		t.Errorf("Ratio div0 = %q", got)
	}
}

func TestEng(t *testing.T) {
	cases := []struct {
		v    int64
		want string
	}{
		{12, "12"},
		{1500, "1.50k"},
		{2_500_000, "2.50M"},
		{3_000_000_000, "3.00G"},
	}
	for _, c := range cases {
		if got := Eng(c.v); got != c.want {
			t.Errorf("Eng(%d) = %q, want %q", c.v, got, c.want)
		}
	}
}

func TestUnits(t *testing.T) {
	if got := Mbits(2_500_000); got != "2.50" {
		t.Errorf("Mbits = %q", got)
	}
	if got := KCycles(123456); got != "123.5" {
		t.Errorf("KCycles = %q", got)
	}
}
