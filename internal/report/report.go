// Package report renders the library's experimental output: fixed-width
// text tables matching the paper's table structure, and ASCII series
// plots for the figures. Everything writes to an io.Writer so the repro
// tools and examples can target stdout or files.
package report

import (
	"fmt"
	"io"
	"strings"
)

// Table is a simple fixed-width text table.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, Headers: headers}
}

// Add appends one row; missing cells render empty, extra cells are kept.
func (t *Table) Add(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// Render writes the table.
func (t *Table) Render(w io.Writer) error {
	cols := len(t.Headers)
	for _, r := range t.Rows {
		if len(r) > cols {
			cols = len(r)
		}
	}
	widths := make([]int, cols)
	cell := func(row []string, i int) string {
		if i < len(row) {
			return row[i]
		}
		return ""
	}
	for i := 0; i < cols; i++ {
		widths[i] = len(cell(t.Headers, i))
		for _, r := range t.Rows {
			if l := len(cell(r, i)); l > widths[i] {
				widths[i] = l
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "%s\n", t.Title)
	}
	writeRow := func(row []string) {
		for i := 0; i < cols; i++ {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell(row, i))
		}
		b.WriteString("\n")
	}
	writeRow(t.Headers)
	total := 0
	for _, w := range widths {
		total += w
	}
	b.WriteString(strings.Repeat("-", total+2*(cols-1)))
	b.WriteString("\n")
	for _, r := range t.Rows {
		writeRow(r)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// Series renders an ASCII plot of ys over xs (len(xs) == len(ys)) with
// the given height in text rows. Columns map one-to-one to samples when
// they fit in `width` characters, otherwise samples are bucketed by
// minimum (preserving the visibility of dips, which is what the paper's
// non-monotonicity figures are about).
func Series(w io.Writer, title string, xs []int, ys []int64, width, height int) error {
	if len(xs) != len(ys) || len(xs) == 0 {
		return fmt.Errorf("report: series needs equal-length non-empty xs/ys")
	}
	if width < 8 {
		width = 8
	}
	if height < 4 {
		height = 4
	}
	// Bucket samples into at most `width` columns by minimum.
	nCols := len(xs)
	if nCols > width {
		nCols = width
	}
	colVal := make([]int64, nCols)
	for i := range colVal {
		lo := len(xs) * i / nCols
		hi := len(xs) * (i + 1) / nCols
		v := ys[lo]
		for j := lo + 1; j < hi; j++ {
			if ys[j] < v {
				v = ys[j]
			}
		}
		colVal[i] = v
	}
	// Scale and label by the raw series, not the bucketed minima.
	minV, maxV := ys[0], ys[0]
	for _, v := range ys {
		if v < minV {
			minV = v
		}
		if v > maxV {
			maxV = v
		}
	}
	span := maxV - minV
	if span == 0 {
		span = 1
	}

	var b strings.Builder
	if title != "" {
		fmt.Fprintf(&b, "%s\n", title)
	}
	fmt.Fprintf(&b, "max %d\n", maxV)
	grid := make([][]byte, height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", nCols))
	}
	for cIdx, v := range colVal {
		level := int(int64(height-1) * (v - minV) / span)
		row := height - 1 - level // row 0 is the top
		grid[row][cIdx] = '*'
	}
	for _, row := range grid {
		b.WriteString("|")
		b.Write(row)
		b.WriteString("\n")
	}
	b.WriteString("+")
	b.WriteString(strings.Repeat("-", nCols))
	b.WriteString("\n")
	fmt.Fprintf(&b, "min %d   x: %d .. %d\n", minV, xs[0], xs[len(xs)-1])
	_, err := io.WriteString(w, b.String())
	return err
}

// Ratio formats a/b as "N.NNx"; "-" when b is zero.
func Ratio(a, b int64) string {
	if b == 0 {
		return "-"
	}
	return fmt.Sprintf("%.2fx", float64(a)/float64(b))
}

// Eng formats a count in engineering style (k/M/G) with two decimals.
func Eng(v int64) string {
	f := float64(v)
	switch {
	case v >= 1_000_000_000:
		return fmt.Sprintf("%.2fG", f/1e9)
	case v >= 1_000_000:
		return fmt.Sprintf("%.2fM", f/1e6)
	case v >= 1_000:
		return fmt.Sprintf("%.2fk", f/1e3)
	default:
		return fmt.Sprintf("%d", v)
	}
}

// Mbits formats a bit count as megabits with two decimals, the unit the
// paper's Table 3 uses for data volumes.
func Mbits(bits int64) string {
	return fmt.Sprintf("%.2f", float64(bits)/1e6)
}

// KCycles formats a cycle count in thousands, the unit of the paper's
// test-time columns.
func KCycles(cycles int64) string {
	return fmt.Sprintf("%.1f", float64(cycles)/1e3)
}
