package report

import (
	"bytes"
	"strings"
	"testing"
)

func TestGanttBasic(t *testing.T) {
	items := []GanttItem{
		{Label: "cpu", Lane: 0, Start: 0, End: 50},
		{Label: "dsp", Lane: 1, Start: 0, End: 80},
		{Label: "io", Lane: 0, Start: 50, End: 100},
	}
	var buf bytes.Buffer
	if err := Gantt(&buf, "schedule", []int{8, 8}, items, 40); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"schedule", "bus 0", "bus 1", "cpu", "dsp", "100 cycles"} {
		if !strings.Contains(out, want) {
			t.Errorf("gantt missing %q:\n%s", want, out)
		}
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 { // title + 2 lanes + axis
		t.Errorf("%d lines:\n%s", len(lines), out)
	}
}

func TestGanttTinyBars(t *testing.T) {
	// A bar much shorter than one cell must still be visible.
	items := []GanttItem{
		{Label: "big", Lane: 0, Start: 0, End: 10000},
		{Label: "tiny", Lane: 1, Start: 0, End: 3},
	}
	var buf bytes.Buffer
	if err := Gantt(&buf, "", []int{4, 4}, items, 30); err != nil {
		t.Fatal(err)
	}
	lanes := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if !strings.Contains(lanes[1], "[") {
		t.Errorf("tiny bar invisible:\n%s", buf.String())
	}
}

func TestGanttErrors(t *testing.T) {
	var buf bytes.Buffer
	if err := Gantt(&buf, "", []int{4}, nil, 30); err == nil {
		t.Error("empty gantt accepted")
	}
	if err := Gantt(&buf, "", []int{4}, []GanttItem{{Lane: 2, Start: 0, End: 5}}, 30); err == nil {
		t.Error("invalid lane accepted")
	}
	if err := Gantt(&buf, "", []int{4}, []GanttItem{{Lane: 0, Start: 5, End: 5}}, 30); err == nil {
		t.Error("empty bar accepted")
	}
}
