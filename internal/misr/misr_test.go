package misr

import (
	"math/rand"
	"testing"
	"testing/quick"

	"soctap/internal/bitvec"
)

func tritSlice(t *testing.T, s string) *bitvec.TritVector {
	t.Helper()
	tv, err := bitvec.TritFromString(s)
	if err != nil {
		t.Fatal(err)
	}
	return tv
}

func TestNewValidation(t *testing.T) {
	if _, err := New(0, nil); err == nil {
		t.Error("width 0 accepted")
	}
	if _, err := New(8, []int{8}); err == nil {
		t.Error("out-of-range tap accepted")
	}
	m, err := New(8, []int{0, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if m.Width() != 8 {
		t.Error("width wrong")
	}
}

func TestSignatureDeterministic(t *testing.T) {
	run := func() *bitvec.Vector {
		m, _ := New(8, []int{0, 2, 3, 4})
		for _, s := range []string{"10110010", "01100101", "11111111", "00000000"} {
			if err := m.Step(tritSlice(t, s), nil); err != nil {
				t.Fatal(err)
			}
		}
		return m.Signature()
	}
	a, b := run(), run()
	if !a.Equal(b) {
		t.Error("same stream gave different signatures")
	}
}

func TestSignatureSensitivity(t *testing.T) {
	// A single flipped response bit must change the signature (no
	// aliasing for this particular short stream).
	sig := func(flip bool) *bitvec.Vector {
		m, _ := New(16, []int{0, 2, 3, 5})
		streams := []string{
			"1011001001100101", "0110010110110010", "1111000011110000",
		}
		for i, s := range streams {
			tv := tritSlice(t, s)
			if flip && i == 1 {
				if tv.Get(7) == bitvec.One {
					tv.Set(7, bitvec.Zero)
				} else {
					tv.Set(7, bitvec.One)
				}
			}
			if err := m.Step(tv, nil); err != nil {
				t.Fatal(err)
			}
		}
		return m.Signature()
	}
	if sig(false).Equal(sig(true)) {
		t.Error("single-bit error aliased")
	}
}

func TestXContamination(t *testing.T) {
	m, _ := New(8, []int{0, 3})
	if err := m.Step(tritSlice(t, "1011001X"), nil); err != nil {
		t.Fatal(err)
	}
	if !m.XContaminated() || m.XCycles() != 1 {
		t.Error("X not detected")
	}

	// With the mask covering the X position, the signature stays clean.
	clean, _ := New(8, []int{0, 3})
	mask := bitvec.New(8)
	mask.Set(7, true)
	if err := clean.Step(tritSlice(t, "1011001X"), mask); err != nil {
		t.Fatal(err)
	}
	if clean.XContaminated() {
		t.Error("masked X still contaminated")
	}
}

func TestMaskingYieldsKnownSignature(t *testing.T) {
	// Two streams identical except at X positions must give the same
	// signature when masked, different (or contaminated) when not.
	mkStream := func(fill byte) []*bitvec.TritVector {
		raw := []string{"101X0010", "0110X101", "11X11111"}
		var out []*bitvec.TritVector
		for _, s := range raw {
			resolved := make([]byte, len(s))
			for i := range resolved {
				if s[i] == 'X' {
					resolved[i] = fill
				} else {
					resolved[i] = s[i]
				}
			}
			out = append(out, tritSlice(t, string(resolved)))
		}
		return out
	}
	xStream := []*bitvec.TritVector{
		tritSlice(t, "101X0010"), tritSlice(t, "0110X101"), tritSlice(t, "11X11111"),
	}
	mp, err := BuildMaskPlan(xStream)
	if err != nil {
		t.Fatal(err)
	}
	sigFor := func(fill byte) *bitvec.Vector {
		m, _ := New(8, []int{0, 2, 3})
		for i, s := range mkStream(fill) {
			if err := m.Step(s, mp.Masks[i]); err != nil {
				t.Fatal(err)
			}
		}
		return m.Signature()
	}
	if !sigFor('0').Equal(sigFor('1')) {
		t.Error("masked signatures differ depending on X resolution")
	}
}

func TestBuildMaskPlanErrors(t *testing.T) {
	if _, err := BuildMaskPlan(nil); err == nil {
		t.Error("empty stream accepted")
	}
	if _, err := BuildMaskPlan([]*bitvec.TritVector{
		bitvec.NewTrit(4), bitvec.NewTrit(5),
	}); err == nil {
		t.Error("ragged stream accepted")
	}
}

func TestMaskVolume(t *testing.T) {
	slices := []*bitvec.TritVector{
		tritSlice(t, "1010"), // no X: 1 bit
		tritSlice(t, "1X10"), // X: 1+4 bits
		tritSlice(t, "XXXX"), // X: 1+4 bits
	}
	mp, err := BuildMaskPlan(slices)
	if err != nil {
		t.Fatal(err)
	}
	// Flag-plus-codec costing at width 4 (codeword width 5, payload 3):
	// every slice pays 1 enable bit; "1010" is clean (flag only);
	// "1X10" -> header + single = 2 codewords = 10 bits;
	// "XXXX" -> header + group-copy(bits 0..2) + single(bit 3) = 4
	// codewords = 20 bits. Total = 3 + 10 + 20.
	if got := mp.VolumeBits(); got != 3+10+20 {
		t.Errorf("VolumeBits = %d, want 33", got)
	}
	// A clean stream costs exactly one flag bit per cycle.
	clean, err := BuildMaskPlan([]*bitvec.TritVector{
		tritSlice(t, "1010"), tritSlice(t, "0101"),
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := clean.VolumeBits(); got != 2 {
		t.Errorf("clean VolumeBits = %d, want 2", got)
	}
}

func TestCompactEndToEnd(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	var slices []*bitvec.TritVector
	for i := 0; i < 50; i++ {
		tv := bitvec.NewTrit(16)
		for b := 0; b < 16; b++ {
			switch rng.Intn(10) {
			case 0:
				// leave X (10%)
			case 1, 2, 3, 4:
				tv.Set(b, bitvec.One)
			default:
				tv.Set(b, bitvec.Zero)
			}
		}
		slices = append(slices, tv)
	}
	unmasked, err := Compact(16, []int{0, 2, 3, 5}, slices, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !unmasked.XContaminated() {
		t.Fatal("stream with 10% X rate did not contaminate the MISR")
	}
	mp, err := BuildMaskPlan(slices)
	if err != nil {
		t.Fatal(err)
	}
	masked, err := Compact(16, []int{0, 2, 3, 5}, slices, mp)
	if err != nil {
		t.Fatal(err)
	}
	if masked.XContaminated() {
		t.Error("masked stream contaminated")
	}
	if masked.Steps() != 50 {
		t.Errorf("steps = %d", masked.Steps())
	}
	if mp.VolumeBits() <= 0 {
		t.Error("mask volume degenerate")
	}
	if p := masked.AliasingProbability(); p <= 0 || p > 1.0/65536+1e-12 {
		t.Errorf("aliasing probability %g", p)
	}
}

// Property: masking exactly the X positions always yields an
// X-clean signature that is independent of how the Xs would resolve.
func TestQuickMaskedDeterminism(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		w := rng.Intn(24) + 2
		n := rng.Intn(30) + 1
		base := make([]*bitvec.TritVector, n)
		for i := range base {
			tv := bitvec.NewTrit(w)
			for b := 0; b < w; b++ {
				tv.Set(b, bitvec.Trit(rng.Intn(3)))
			}
			base[i] = tv
		}
		mp, err := BuildMaskPlan(base)
		if err != nil {
			return false
		}
		resolve := func(fill bitvec.Trit) []*bitvec.TritVector {
			out := make([]*bitvec.TritVector, n)
			for i, tv := range base {
				out[i] = tv.Fill(fill)
			}
			return out
		}
		taps := []int{0}
		if w > 3 {
			taps = append(taps, 2, w/2)
		}
		s0, err := Compact(w, taps, resolve(bitvec.Zero), mp)
		if err != nil {
			return false
		}
		s1, err := Compact(w, taps, resolve(bitvec.One), mp)
		if err != nil {
			return false
		}
		return !s0.XContaminated() && !s1.XContaminated() &&
			s0.Signature().Equal(s1.Signature())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}
