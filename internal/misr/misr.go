// Package misr models the response-compaction side of the wrapped-core
// test architecture — the "Compactor (optional)" box of the paper's
// Figure 1, which the paper scopes out but any deployment needs. It
// provides a multiple-input signature register (MISR) over GF(2) with a
// configurable feedback polynomial, plus X-masking: unknown response
// bits (from uninitialized memories, bus keepers, multi-cycle paths)
// corrupt a time-compacted signature unless they are masked before the
// MISR, at the price of mask data that must be stored and delivered.
//
// The package quantifies exactly that trade-off: signature determinism
// versus mask-data volume.
package misr

import (
	"fmt"

	"soctap/internal/bitvec"
	"soctap/internal/selenc"
)

// MISR is a multiple-input signature register of the given width. Each
// Step shifts the register by one, applies the feedback polynomial when
// the shifted-out bit is 1, and XORs the (masked) parallel response
// slice into the state.
type MISR struct {
	width int
	taps  []int // feedback tap positions (exponents of the polynomial), excluding the implicit x^width
	state *bitvec.Vector
	steps int64
	// xBits counts unmasked X bits that reached the register; xCycles
	// counts the steps in which at least one did. After the first, the
	// signature is no longer predictable.
	xBits   int64
	xCycles int64
}

// New builds a MISR. Taps list the feedback polynomial's exponents in
// [0, width); an empty list degenerates to a pure shifter (allowed but
// weak, flagged by Validate-style error).
func New(width int, taps []int) (*MISR, error) {
	if width < 1 {
		return nil, fmt.Errorf("misr: width %d", width)
	}
	for _, t := range taps {
		if t < 0 || t >= width {
			return nil, fmt.Errorf("misr: tap %d out of range [0,%d)", t, width)
		}
	}
	return &MISR{width: width, taps: append([]int(nil), taps...), state: bitvec.New(width)}, nil
}

// Width returns the register width.
func (m *MISR) Width() int { return m.width }

// Steps returns the number of compacted slices.
func (m *MISR) Steps() int64 { return m.steps }

// XContaminated reports whether any unmasked X reached the register.
func (m *MISR) XContaminated() bool { return m.xBits > 0 }

// XBits returns the number of unmasked X bits absorbed.
func (m *MISR) XBits() int64 { return m.xBits }

// XCycles returns the number of compaction cycles that absorbed at
// least one unmasked X.
func (m *MISR) XCycles() int64 { return m.xCycles }

// Step compacts one response slice. resp holds the response trits
// (DontCare marks an unknown output); mask, when non-nil, suppresses the
// marked positions (masked bits contribute 0 regardless of value).
// resp must be at most the register width; narrower slices are applied
// to the low positions.
func (m *MISR) Step(resp *bitvec.TritVector, mask *bitvec.Vector) error {
	if resp.Len() > m.width {
		return fmt.Errorf("misr: slice width %d exceeds register width %d", resp.Len(), m.width)
	}
	if mask != nil && mask.Len() != resp.Len() {
		return fmt.Errorf("misr: mask width %d != slice width %d", mask.Len(), resp.Len())
	}
	// Shift with polynomial feedback.
	out := m.state.Get(m.width - 1)
	next := bitvec.New(m.width)
	for i := m.width - 1; i > 0; i-- {
		next.Set(i, m.state.Get(i-1))
	}
	if out {
		next.Set(0, true)
		for _, t := range m.taps {
			next.Set(t, !next.Get(t))
		}
	}
	// Inject the slice.
	sawX := false
	for i := 0; i < resp.Len(); i++ {
		if mask != nil && mask.Get(i) {
			continue // masked: contributes a constant 0
		}
		switch resp.Get(i) {
		case bitvec.One:
			next.Set(i, !next.Get(i))
		case bitvec.DontCare:
			m.xBits++
			sawX = true
			// The model keeps the X as a 0 so simulation can continue,
			// but the signature is flagged unpredictable.
		}
	}
	if sawX {
		m.xCycles++
	}
	m.state = next
	m.steps++
	return nil
}

// Signature returns the current register contents.
func (m *MISR) Signature() *bitvec.Vector { return m.state.Clone() }

// AliasingProbability returns the classic 2^-width bound on the
// probability that a faulty response sequence produces the fault-free
// signature.
func (m *MISR) AliasingProbability() float64 {
	p := 1.0
	for i := 0; i < m.width && i < 63; i++ {
		p /= 2
	}
	return p
}

// MaskPlan is a per-slice X-masking plan for one core's response
// stream: mask[i] marks the X positions of slice i.
type MaskPlan struct {
	SliceWidth int
	Masks      []*bitvec.Vector
}

// BuildMaskPlan derives the exact per-slice masks for a response stream
// (one trit vector per scan-out slice).
func BuildMaskPlan(slices []*bitvec.TritVector) (*MaskPlan, error) {
	if len(slices) == 0 {
		return nil, fmt.Errorf("misr: empty response stream")
	}
	w := slices[0].Len()
	mp := &MaskPlan{SliceWidth: w}
	for i, s := range slices {
		if s.Len() != w {
			return nil, fmt.Errorf("misr: slice %d width %d != %d", i, s.Len(), w)
		}
		mask := bitvec.New(w)
		for b := 0; b < w; b++ {
			if s.Get(b) == bitvec.DontCare {
				mask.Set(b, true)
			}
		}
		mp.Masks = append(mp.Masks, mask)
	}
	return mp, nil
}

// VolumeBits returns the mask-data storage for the plan under a
// flag-plus-codec scheme: one enable bit per compaction cycle (clean
// cycles need nothing else), and for each dirty cycle the mask slice
// compressed with the library's own slice codec (selective encoding
// with the X positions as target bits). Long clean stretches therefore
// cost one bit per cycle, which matches how production X-masking
// controllers store their mask streams.
func (mp *MaskPlan) VolumeBits() int64 {
	w := int64(selenc.CodewordWidth(mp.SliceWidth))
	bits := int64(len(mp.Masks)) // per-cycle enable flags
	care := make([]selenc.CareBit, 0, 16)
	for _, m := range mp.Masks {
		if m.OnesCount() == 0 {
			continue
		}
		care = care[:0]
		for b := 0; b < mp.SliceWidth; b++ {
			if m.Get(b) {
				care = append(care, selenc.CareBit{Pos: b, Value: true})
			}
		}
		bits += int64(maskSliceCost(mp.SliceWidth, care)) * w
	}
	return bits
}

// maskSliceCost is selenc.SliceCost with fill pinned to 0 (mask
// hardware unmasks by default), so a mask with more ones than zeros
// still encodes the ones.
func maskSliceCost(width int, ones []selenc.CareBit) int {
	if len(ones) == 0 {
		return 1
	}
	k := selenc.PayloadBits(width)
	cost := 1
	group := -1
	inGroup := 0
	for _, cb := range ones {
		g := cb.Pos / k
		if g != group {
			if inGroup >= 2 {
				cost += 2
			} else {
				cost += inGroup
			}
			group = g
			inGroup = 0
		}
		inGroup++
	}
	if inGroup >= 2 {
		cost += 2
	} else {
		cost += inGroup
	}
	return cost
}

// SyntheticResponses generates a deterministic synthetic response
// stream for a core tested through m wrapper chains: one trit slice per
// scan-out cycle per pattern, with the given fraction of unknown (X)
// bits. Real responses require logic simulation, which is outside this
// library's scope (the paper's, too); the synthetic stream exercises
// the compaction path with realistic X statistics.
func SyntheticResponses(scanOutDepth, m, patterns int, xDensity float64, seed int64) []*bitvec.TritVector {
	rng := newSplitMix(uint64(seed))
	slices := make([]*bitvec.TritVector, 0, scanOutDepth*patterns)
	for p := 0; p < patterns; p++ {
		for d := 0; d < scanOutDepth; d++ {
			tv := bitvec.NewTrit(m)
			for b := 0; b < m; b++ {
				r := rng.next()
				if float64(r%1000)/1000 < xDensity {
					continue // X
				}
				if r&1024 != 0 {
					tv.Set(b, bitvec.One)
				} else {
					tv.Set(b, bitvec.Zero)
				}
			}
			slices = append(slices, tv)
		}
	}
	return slices
}

// splitMix is a tiny deterministic PRNG (SplitMix64), avoiding a
// math/rand dependency in this leaf package.
type splitMix struct{ s uint64 }

func newSplitMix(seed uint64) *splitMix { return &splitMix{s: seed} }

func (r *splitMix) next() uint64 {
	r.s += 0x9e3779b97f4a7c15
	z := r.s
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Compact runs a full response stream through a fresh MISR of the given
// width and taps, with or without the mask plan, and reports the
// signature and contamination.
func Compact(width int, taps []int, slices []*bitvec.TritVector, mp *MaskPlan) (*MISR, error) {
	m, err := New(width, taps)
	if err != nil {
		return nil, err
	}
	for i, s := range slices {
		var mask *bitvec.Vector
		if mp != nil {
			if i >= len(mp.Masks) {
				return nil, fmt.Errorf("misr: mask plan shorter than stream")
			}
			mask = mp.Masks[i]
		}
		if err := m.Step(s, mask); err != nil {
			return nil, err
		}
	}
	return m, nil
}
