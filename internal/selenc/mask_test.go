package selenc

import (
	"math/rand"
	"reflect"
	"testing"
)

// TestAppendEncodeSliceMask: the append form must extend dst with
// exactly the codewords EncodeSliceMask would return, leaving the
// existing prefix untouched — the contract streaming consumers rely on
// when accumulating one codeword buffer across many slices.
func TestAppendEncodeSliceMask(t *testing.T) {
	const m = 70
	slices := [][]CareBit{
		nil,
		{{Pos: 3, Value: true}},
		{{Pos: 0, Value: false}, {Pos: 17, Value: true}, {Pos: 69, Value: true}},
		{{Pos: 5, Value: true}, {Pos: 6, Value: true}, {Pos: 7, Value: false}, {Pos: 64, Value: false}},
	}

	var got, want []Codeword
	for _, care := range slices {
		careW, valueW := SliceMasks(m, care)
		want = append(want, EncodeSliceMask(m, careW, valueW)...)
		before := len(got)
		got = AppendEncodeSliceMask(got, m, careW, valueW)
		if !reflect.DeepEqual(got[:before], want[:before]) {
			t.Fatalf("append disturbed the existing prefix (%d codewords)", before)
		}
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("accumulated stream differs:\n got %v\nwant %v", got, want)
	}
}

// TestSliceOpsMaskAgreesWithCost: the exported append-form ops kernel
// must agree with SliceCostMask minus the header for every slice —
// SliceOpsMask is the piece the core evaluator prices per slice row, so
// any drift here would silently skew every fused table. The no-group-
// copy mode must degenerate to a popcount of the target bits.
func TestSliceOpsMaskAgreesWithCost(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for _, m := range []int{1, 3, 17, 63, 64, 65, 130} {
		k := int64(PayloadBits(m))
		for trial := 0; trial < 200; trial++ {
			var care []CareBit
			for pos := 0; pos < m; pos++ {
				switch rng.Intn(4) {
				case 0:
					care = append(care, CareBit{Pos: pos, Value: true})
				case 1:
					care = append(care, CareBit{Pos: pos, Value: false})
				}
			}
			careW, valueW := SliceMasks(m, care)
			ops := SliceOpsMask(k, true, careW, valueW)
			if want := int64(SliceCostMask(m, careW, valueW)) - 1; ops != want {
				t.Fatalf("m=%d trial=%d: SliceOpsMask=%d, SliceCostMask-1=%d", m, trial, ops, want)
			}
			// Without group copy, every target bit is one codeword.
			fill := ChooseFillMask(careW, valueW)
			targets := int64(0)
			for _, cb := range care {
				if cb.Value != fill {
					targets++
				}
			}
			if got := SliceOpsMask(k, false, careW, valueW); got != targets {
				t.Fatalf("m=%d trial=%d: no-group-copy ops=%d, want %d targets", m, trial, got, targets)
			}
		}
	}
}
