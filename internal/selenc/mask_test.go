package selenc

import (
	"reflect"
	"testing"
)

// TestAppendEncodeSliceMask: the append form must extend dst with
// exactly the codewords EncodeSliceMask would return, leaving the
// existing prefix untouched — the contract streaming consumers rely on
// when accumulating one codeword buffer across many slices.
func TestAppendEncodeSliceMask(t *testing.T) {
	const m = 70
	slices := [][]CareBit{
		nil,
		{{Pos: 3, Value: true}},
		{{Pos: 0, Value: false}, {Pos: 17, Value: true}, {Pos: 69, Value: true}},
		{{Pos: 5, Value: true}, {Pos: 6, Value: true}, {Pos: 7, Value: false}, {Pos: 64, Value: false}},
	}

	var got, want []Codeword
	for _, care := range slices {
		careW, valueW := SliceMasks(m, care)
		want = append(want, EncodeSliceMask(m, careW, valueW)...)
		before := len(got)
		got = AppendEncodeSliceMask(got, m, careW, valueW)
		if !reflect.DeepEqual(got[:before], want[:before]) {
			t.Fatalf("append disturbed the existing prefix (%d codewords)", before)
		}
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("accumulated stream differs:\n got %v\nwant %v", got, want)
	}
}
