// Word-mask forms of the slice codec. Instead of a sorted []CareBit,
// a slice is described by two word planes packed LSB first:
//
//	care[i]  — bit p set iff slice position p is specified
//	value[i] — bit p set iff position p is specified as 1
//
// with position p at bit p%64 of word p/64, value ⊆ care, and all bits
// at positions >= m zero. This is the layout the core evaluator builds
// directly from wrapper stimulus maps, so slice pricing is popcounts
// and masks over whole words — no per-bit loops and no sorting.
package selenc

import (
	"fmt"
	"math/bits"
)

// ChooseFillMask is ChooseFill on word masks: the majority value among
// the care bits, ties preferring 0.
func ChooseFillMask(care, value []uint64) bool {
	careCount, ones := 0, 0
	for i, c := range care {
		careCount += bits.OnesCount64(c)
		ones += bits.OnesCount64(value[i] & c)
	}
	return ones*2 > careCount
}

// SliceCostMask returns the number of codewords EncodeSliceMask emits
// for a slice of width m: one header plus min(t, 2) codewords per group
// with t target bits. It is the mask form of SliceCost and agrees with
// it exactly (fuzz-verified). The planes must satisfy the layout
// contract above; len(care) and len(value) must cover m bits.
func SliceCostMask(m int, care, value []uint64) int {
	fill := ChooseFillMask(care, value)
	var fillMask uint64
	if fill {
		fillMask = ^uint64(0)
	}
	k := PayloadBits(m)
	cost := 1
	group := -1
	inGroup := 0
	nw := (m + 63) / 64
	for wi := 0; wi < nw; wi++ {
		// Target bits: specified positions whose value differs from fill.
		t := care[wi] & (value[wi] ^ fillMask)
		base := wi << 6
		for t != 0 {
			g := (base + bits.TrailingZeros64(t)) / k
			t &= t - 1
			if g != group {
				cost += flushGroupCost(inGroup)
				group = g
				inGroup = 0
			}
			inGroup++
		}
	}
	return cost + flushGroupCost(inGroup)
}

// SliceOpsMask prices one slice row held as care/value word masks
// without its header codeword: per group of k payload bits holding t
// target bits, min(t, 2) operation codewords — or t single-bit
// codewords each when group-copy encoding is disabled. Targets are the
// care bits whose value differs from the row's majority fill
// (ChooseFillMask). This is the append-form costing kernel the core
// evaluator runs per slice against shared window planes, so it takes
// the payload width k directly instead of re-deriving it from m;
// for any m-bit row,
//
//	SliceCostMask(m, care, value) == 1 + SliceOpsMask(PayloadBits(m), true, care, value)
//
// (cross-checked by TestSliceOpsMaskAgreesWithCost). The planes must
// satisfy the layout contract above; bits past the row width must be
// zero in care.
func SliceOpsMask(k int64, groupCopy bool, care, value []uint64) int64 {
	careCount, ones := 0, 0
	for i, c := range care {
		careCount += bits.OnesCount64(c)
		ones += bits.OnesCount64(value[i] & c)
	}
	if careCount == 0 {
		return 0
	}
	var fillMask uint64
	if ones*2 > careCount {
		fillMask = ^uint64(0)
	}
	if !groupCopy {
		// Without group copy every target bit is one single-bit
		// codeword: a pure popcount.
		var ops int64
		for i, c := range care {
			ops += int64(bits.OnesCount64(c & (value[i] ^ fillMask)))
		}
		return ops
	}
	var ops int64
	group := int64(-1)
	inGroup := 0
	for wi, c := range care {
		t := c & (value[wi] ^ fillMask)
		base := wi << 6
		for t != 0 {
			g := int64(base+bits.TrailingZeros64(t)) / k
			t &= t - 1
			if g != group {
				ops += int64(flushGroupCost(inGroup))
				group = g
				inGroup = 0
			}
			inGroup++
		}
	}
	return ops + int64(flushGroupCost(inGroup))
}

// EncodeSliceMask encodes one slice of width m from word masks. It
// produces exactly the codeword stream EncodeSlice produces for the
// equivalent []CareBit input: group classification (all-X or
// fill-agreeing / single target / literal group copy) is a
// popcount-and-mask over the GroupCount(m) k-bit segments of the
// planes.
func EncodeSliceMask(m int, care, value []uint64) []Codeword {
	return AppendEncodeSliceMask(nil, m, care, value)
}

// AppendEncodeSliceMask is EncodeSliceMask in append form: the slice's
// codewords are appended to dst and the extended slice returned, so a
// streaming consumer encoding many slices can accumulate one codeword
// buffer instead of allocating per slice.
func AppendEncodeSliceMask(dst []Codeword, m int, care, value []uint64) []Codeword {
	if need := (m + 63) / 64; len(care) < need || len(value) < need {
		panic(fmt.Sprintf("selenc: mask planes too short for width %d", m))
	}
	fill := ChooseFillMask(care, value)
	var fillMask uint64
	if fill {
		fillMask = ^uint64(0)
	}
	k := PayloadBits(m)

	header := Codeword{Prefix: PrefixHeader}
	if fill {
		header.Payload |= headerFillBit
	}
	out := append(dst, header)

	for g, n := 0, GroupCount(m); g < n; g++ {
		base := g * k
		width := k
		if m-base < width {
			width = m - base
		}
		widthMask := uint64(1)<<uint(width) - 1
		cseg := readGroupBits(care, base, width, m)
		vseg := readGroupBits(value, base, width, m) & cseg
		tseg := cseg & (vseg ^ (fillMask & widthMask))
		switch bits.OnesCount64(tseg) {
		case 0:
			// Every care bit agrees with the fill; nothing to transmit.
		case 1:
			out = append(out, Codeword{
				Prefix:  PrefixSingle,
				Payload: uint32(base + bits.TrailingZeros64(tseg)),
			})
		default:
			// Literal: care bits as specified, don't-cares at fill.
			lit := vseg | (fillMask &^ cseg & widthMask)
			out = append(out,
				Codeword{Prefix: PrefixGroup, Payload: uint32(g)},
				Codeword{Prefix: PrefixData, Payload: uint32(lit)})
		}
	}
	return out
}

// readGroupBits reads width bits at pos from a plane covering m bits,
// tolerating planes whose word count is exactly ceil(m/64) even when
// the read would straddle past the last word.
func readGroupBits(words []uint64, pos, width, m int) uint64 {
	wi, off := pos>>6, uint(pos&63)
	w := words[wi] >> off
	if off+uint(width) > 64 && wi+1 < len(words) {
		w |= words[wi+1] << (64 - off)
	}
	return w & (uint64(1)<<uint(width) - 1)
}

// SliceMasks converts a sorted []CareBit into freshly allocated care
// and value planes for width m — the bridge used by tests and the fuzz
// harness to compare the mask kernels against the legacy care-bit path.
func SliceMasks(m int, care []CareBit) (careW, valueW []uint64) {
	nw := (m + 63) / 64
	careW = make([]uint64, nw)
	valueW = make([]uint64, nw)
	for _, cb := range care {
		careW[cb.Pos>>6] |= 1 << uint(cb.Pos&63)
		if cb.Value {
			valueW[cb.Pos>>6] |= 1 << uint(cb.Pos&63)
		}
	}
	return careW, valueW
}
