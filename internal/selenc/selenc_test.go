package selenc

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"soctap/internal/bitvec"
)

func TestPayloadAndCodewordWidth(t *testing.T) {
	cases := []struct{ m, k, w int }{
		{1, 1, 3},
		{2, 2, 4},
		{3, 2, 4},
		{4, 3, 5},
		{7, 3, 5},
		{8, 4, 6},
		{127, 7, 9},
		{128, 8, 10},
		{255, 8, 10},
		{256, 9, 11},
	}
	for _, c := range cases {
		if got := PayloadBits(c.m); got != c.k {
			t.Errorf("PayloadBits(%d) = %d, want %d", c.m, got, c.k)
		}
		if got := CodewordWidth(c.m); got != c.w {
			t.Errorf("CodewordWidth(%d) = %d, want %d", c.m, got, c.w)
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("PayloadBits(0) did not panic")
		}
	}()
	PayloadBits(0)
}

func TestMBand(t *testing.T) {
	// Paper's Figure 2: w = 10 covers exactly m in [128, 255].
	lo, hi, err := MBand(10)
	if err != nil || lo != 128 || hi != 255 {
		t.Errorf("MBand(10) = [%d,%d],%v want [128,255]", lo, hi, err)
	}
	lo, hi, err = MBand(3)
	if err != nil || lo != 1 || hi != 1 {
		t.Errorf("MBand(3) = [%d,%d],%v want [1,1]", lo, hi, err)
	}
	if _, _, err := MBand(2); err == nil {
		t.Error("MBand(2) accepted")
	}
	// Band consistency: every m in a band maps back to w.
	for w := 3; w <= 12; w++ {
		lo, hi, _ := MBand(w)
		for _, m := range []int{lo, (lo + hi) / 2, hi} {
			if CodewordWidth(m) != w {
				t.Errorf("CodewordWidth(%d) = %d, want %d", m, CodewordWidth(m), w)
			}
		}
		if lo > 1 && CodewordWidth(lo-1) == w {
			t.Errorf("band start %d not tight for w=%d", lo, w)
		}
		if CodewordWidth(hi+1) == w {
			t.Errorf("band end %d not tight for w=%d", hi, w)
		}
	}
}

func TestChooseFill(t *testing.T) {
	if ChooseFill(nil) != false {
		t.Error("empty care should fill 0")
	}
	if ChooseFill([]CareBit{{0, true}, {1, false}}) != false {
		t.Error("tie should fill 0")
	}
	if ChooseFill([]CareBit{{0, true}, {1, true}, {2, false}}) != true {
		t.Error("majority ones should fill 1")
	}
}

func TestEncodeEmptySlice(t *testing.T) {
	cws := EncodeSlice(16, nil)
	if len(cws) != 1 || cws[0].Prefix != PrefixHeader {
		t.Fatalf("empty slice encoded as %v", cws)
	}
	if cws[0].Payload&headerFillBit != 0 {
		t.Error("empty slice should fill with 0")
	}
	slices, err := DecodeStream(16, cws)
	if err != nil {
		t.Fatal(err)
	}
	if len(slices) != 1 || slices[0].OnesCount() != 0 {
		t.Error("empty slice should decode to all zeros")
	}
}

func TestEncodeAllFillOnes(t *testing.T) {
	// All care bits are 1 -> fill = 1, all-fill header only.
	care := []CareBit{{2, true}, {5, true}, {9, true}}
	cws := EncodeSlice(16, care)
	if len(cws) != 1 {
		t.Fatalf("all-ones care slice used %d codewords, want 1", len(cws))
	}
	slices, err := DecodeStream(16, cws)
	if err != nil {
		t.Fatal(err)
	}
	if slices[0].OnesCount() != 16 {
		t.Errorf("decoded %d ones, want 16 (fill=1)", slices[0].OnesCount())
	}
}

func TestEncodeSingleBitMode(t *testing.T) {
	// One isolated target among majority-zero care bits: header + one
	// single-bit codeword. (A lone {7,true} would make fill=1 and cost a
	// single all-fill header instead.)
	care := []CareBit{{7, true}, {20, false}, {40, false}}
	cws := EncodeSlice(64, care)
	if len(cws) != 2 {
		t.Fatalf("%d codewords, want 2", len(cws))
	}
	if cws[1].Prefix != PrefixSingle || cws[1].Payload != 7 {
		t.Errorf("single-bit codeword = %+v", cws[1])
	}
	slices, err := DecodeStream(64, cws)
	if err != nil {
		t.Fatal(err)
	}
	if !slices[0].Get(7) || slices[0].OnesCount() != 1 {
		t.Error("decode mismatch")
	}
	// And the lone-1 case really is a single all-fill header.
	if got := EncodeSlice(64, []CareBit{{7, true}}); len(got) != 1 {
		t.Errorf("lone one-valued care bit used %d codewords, want 1", len(got))
	}
}

func TestEncodeGroupCopyMode(t *testing.T) {
	// m=64 -> k=7, group 0 covers bits 0..6. Three targets in group 0
	// must use group-copy (2 codewords), not 3 singles.
	care := []CareBit{{0, true}, {3, true}, {5, true}, {20, false}}
	cws := EncodeSlice(64, care)
	// fill = majority(3 ones, 1 zero) = 1... that changes targets. Use
	// explicit zeros to keep fill = 0.
	care = []CareBit{{0, true}, {3, true}, {5, true}, {20, false}, {21, false}, {22, false}, {23, false}}
	cws = EncodeSlice(64, care)
	// fill = 0 (4 zeros vs 3 ones); targets = bits 0,3,5 all in group 0.
	if len(cws) != 3 {
		t.Fatalf("%d codewords, want 3 (header + group + data): %+v", len(cws), cws)
	}
	if cws[1].Prefix != PrefixGroup || cws[1].Payload != 0 {
		t.Errorf("group codeword = %+v", cws[1])
	}
	if cws[2].Prefix != PrefixData {
		t.Errorf("data codeword = %+v", cws[2])
	}
	slices, err := DecodeStream(64, cws)
	if err != nil {
		t.Fatal(err)
	}
	for _, cb := range care {
		if slices[0].Get(cb.Pos) != cb.Value {
			t.Errorf("bit %d = %v, want %v", cb.Pos, slices[0].Get(cb.Pos), cb.Value)
		}
	}
}

func TestSliceCostMatchesEncode(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 500; trial++ {
		m := rng.Intn(300) + 1
		care := randomCare(rng, m, rng.Float64())
		if got, want := SliceCost(m, care), len(EncodeSlice(m, care)); got != want {
			t.Fatalf("m=%d care=%v: SliceCost %d != encoded %d", m, care, got, want)
		}
	}
}

func randomCare(rng *rand.Rand, m int, density float64) []CareBit {
	var care []CareBit
	for pos := 0; pos < m; pos++ {
		if rng.Float64() < density {
			care = append(care, CareBit{Pos: pos, Value: rng.Intn(2) == 1})
		}
	}
	return care
}

// Property: decode(encode(slice)) reproduces every care bit, fills every
// X with the chosen fill value, and the cost formula holds.
func TestQuickRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := rng.Intn(500) + 1
		care := randomCare(rng, m, rng.Float64()*0.6)
		cws := EncodeSlice(m, care)
		slices, err := DecodeStream(m, cws)
		if err != nil || len(slices) != 1 {
			return false
		}
		got := slices[0]
		fill := ChooseFill(care)
		careAt := make(map[int]bool, len(care))
		for _, cb := range care {
			careAt[cb.Pos] = true
			if got.Get(cb.Pos) != cb.Value {
				return false
			}
		}
		for pos := 0; pos < m; pos++ {
			if !careAt[pos] && got.Get(pos) != fill {
				return false
			}
		}
		return len(cws) == SliceCost(m, care)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: multi-slice streams decode back slice-by-slice.
func TestQuickMultiSliceStream(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := rng.Intn(120) + 1
		nSlices := rng.Intn(20) + 1
		var stream []Codeword
		var wantCare [][]CareBit
		for s := 0; s < nSlices; s++ {
			care := randomCare(rng, m, rng.Float64()*0.3)
			wantCare = append(wantCare, care)
			stream = append(stream, EncodeSlice(m, care)...)
		}
		slices, err := DecodeStream(m, stream)
		if err != nil || len(slices) != nSlices {
			return false
		}
		for s, care := range wantCare {
			for _, cb := range care {
				if slices[s].Get(cb.Pos) != cb.Value {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: pack/unpack is the identity on codeword streams.
func TestQuickPackUnpack(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := rng.Intn(400) + 1
		care := randomCare(rng, m, rng.Float64()*0.4)
		cws := EncodeSlice(m, care)
		v := PackStream(m, cws)
		if v.Len() != len(cws)*CodewordWidth(m) {
			return false
		}
		back, err := UnpackStream(m, v)
		if err != nil || len(back) != len(cws) {
			return false
		}
		for i := range cws {
			if cws[i] != back[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestUnpackStreamLengthError(t *testing.T) {
	// m=16 -> w=7; a 8-bit stream is misaligned.
	if _, err := UnpackStream(16, bitvec.New(8)); err == nil {
		t.Error("UnpackStream accepted misaligned stream")
	}
}

func TestDecodeStreamErrors(t *testing.T) {
	cases := []struct {
		name   string
		m      int
		stream []Codeword
	}{
		{"single before header", 8, []Codeword{{Prefix: PrefixSingle, Payload: 0}}},
		{"group before header", 8, []Codeword{{Prefix: PrefixGroup, Payload: 0}}},
		{"stray data", 8, []Codeword{{Prefix: PrefixHeader}, {Prefix: PrefixData}}},
		{"group not followed by data", 8, []Codeword{
			{Prefix: PrefixHeader}, {Prefix: PrefixGroup, Payload: 0}, {Prefix: PrefixSingle, Payload: 1}}},
		{"dangling group", 8, []Codeword{{Prefix: PrefixHeader}, {Prefix: PrefixGroup, Payload: 0}}},
		{"target out of range", 8, []Codeword{{Prefix: PrefixHeader}, {Prefix: PrefixSingle, Payload: 8}}},
		{"group out of range", 8, []Codeword{{Prefix: PrefixHeader}, {Prefix: PrefixGroup, Payload: 99}}},
	}
	for _, c := range cases {
		if _, err := DecodeStream(c.m, c.stream); err == nil {
			t.Errorf("%s: DecodeStream accepted invalid stream", c.name)
		}
	}
}

func TestEncodeSliceValidation(t *testing.T) {
	for _, f := range []func(){
		func() { EncodeSlice(8, []CareBit{{-1, true}}) },
		func() { EncodeSlice(8, []CareBit{{8, true}}) },
		func() { EncodeSlice(8, []CareBit{{3, true}, {3, false}}) },
		func() { EncodeSlice(8, []CareBit{{5, true}, {2, false}}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic on invalid care list")
				}
			}()
			f()
		}()
	}
}

func TestCompressionRegime(t *testing.T) {
	// At industrial care densities (2%), the compressed stream must be
	// far smaller than the raw slices; at ISCAS densities (50%) the
	// advantage shrinks drastically.
	rng := rand.New(rand.NewSource(99))
	measure := func(density float64) float64 {
		m := 200
		totalCw := 0
		slices := 400
		for s := 0; s < slices; s++ {
			care := randomCare(rng, m, density)
			totalCw += SliceCost(m, care)
		}
		compressed := float64(totalCw * CodewordWidth(m))
		raw := float64(slices * m)
		return raw / compressed
	}
	sparse := measure(0.02)
	dense := measure(0.5)
	if sparse < 3 {
		t.Errorf("sparse compression ratio %.2f, want >= 3", sparse)
	}
	if dense > sparse/2 {
		t.Errorf("dense ratio %.2f not clearly below sparse ratio %.2f", dense, sparse)
	}
}

func TestGroupCount(t *testing.T) {
	cases := []struct{ m, want int }{
		{1, 1},    // k=1
		{7, 3},    // k=3 -> ceil(7/3)
		{8, 2},    // k=4 -> 2
		{255, 32}, // k=8 -> ceil(255/8) = 32
	}
	for _, c := range cases {
		if got := GroupCount(c.m); got != c.want {
			t.Errorf("GroupCount(%d) = %d, want %d", c.m, got, c.want)
		}
	}
}

// Property: cost never exceeds the single-bit-only upper bound and never
// drops below the information-theoretic floor of 1 codeword.
func TestQuickCostBounds(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := rng.Intn(256) + 1
		care := randomCare(rng, m, rng.Float64())
		fill := ChooseFill(care)
		targets := 0
		for _, cb := range care {
			if cb.Value != fill {
				targets++
			}
		}
		cost := SliceCost(m, care)
		upper := 1 + targets         // all-singles
		lower := 1                   // header only
		if targets > 0 && cost < 2 { // at least one op codeword
			return false
		}
		return cost >= lower && cost <= upper
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestDeterministicEncoding(t *testing.T) {
	care := []CareBit{{1, true}, {4, false}, {9, true}, {10, true}, {11, true}, {40, false}}
	sort.Slice(care, func(i, j int) bool { return care[i].Pos < care[j].Pos })
	a := EncodeSlice(64, care)
	b := EncodeSlice(64, care)
	if len(a) != len(b) {
		t.Fatal("nondeterministic length")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("nondeterministic codewords")
		}
	}
}

func BenchmarkEncodeSlice200(b *testing.B) {
	rng := rand.New(rand.NewSource(5))
	care := randomCare(rng, 200, 0.02)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = EncodeSlice(200, care)
	}
}

func BenchmarkSliceCost200(b *testing.B) {
	rng := rand.New(rand.NewSource(5))
	care := randomCare(rng, 200, 0.02)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = SliceCost(200, care)
	}
}
