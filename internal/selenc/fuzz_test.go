package selenc

import (
	"testing"

	"soctap/internal/bitvec"
)

// FuzzDecodeStream asserts the decoder never panics on arbitrary bit
// streams: every input either errors cleanly or yields well-formed
// slices of the right width.
func FuzzDecodeStream(f *testing.F) {
	f.Add(uint16(16), []byte{0x00, 0x01, 0x02})
	f.Add(uint16(1), []byte{0xff})
	f.Add(uint16(200), []byte{0xaa, 0x55, 0xaa, 0x55, 0x00})
	f.Add(uint16(7), []byte{})
	f.Fuzz(func(t *testing.T, mRaw uint16, raw []byte) {
		m := int(mRaw%512) + 1
		w := CodewordWidth(m)
		// Build a bit vector from the raw bytes, truncated to whole
		// codewords so UnpackStream accepts it.
		nBits := (len(raw) * 8 / w) * w
		v := bitvec.New(nBits)
		for i := 0; i < nBits; i++ {
			if raw[i/8]&(1<<uint(i%8)) != 0 {
				v.Set(i, true)
			}
		}
		cws, err := UnpackStream(m, v)
		if err != nil {
			t.Fatalf("aligned stream rejected: %v", err)
		}
		slices, err := DecodeStream(m, cws)
		if err != nil {
			return // malformed streams must error, not panic
		}
		for _, s := range slices {
			if s.Len() != m {
				t.Fatalf("decoded slice width %d, want %d", s.Len(), m)
			}
		}
	})
}

// FuzzEncodeDecodeRoundTrip asserts the encode/decode pair is lossless
// for arbitrary care patterns derived from fuzz input.
func FuzzEncodeDecodeRoundTrip(f *testing.F) {
	f.Add(uint16(8), []byte{0x01, 0x80})
	f.Add(uint16(64), []byte{0xff, 0x00, 0x12, 0x34})
	f.Fuzz(func(t *testing.T, mRaw uint16, raw []byte) {
		m := int(mRaw%300) + 1
		var care []CareBit
		seen := map[int]bool{}
		for i := 0; i+1 < len(raw); i += 2 {
			pos := int(raw[i]) % m
			if seen[pos] {
				continue
			}
			seen[pos] = true
			care = append(care, CareBit{Pos: pos, Value: raw[i+1]&1 == 1})
		}
		// EncodeSlice requires sorted care lists.
		for i := 1; i < len(care); i++ {
			for j := i; j > 0 && care[j-1].Pos > care[j].Pos; j-- {
				care[j-1], care[j] = care[j], care[j-1]
			}
		}
		cws := EncodeSlice(m, care)
		if len(cws) != SliceCost(m, care) {
			t.Fatal("cost model diverged from encoder")
		}
		// The mask kernels must agree with the legacy care-bit path on
		// arbitrary slices: same cost, same codeword stream.
		careW, valueW := SliceMasks(m, care)
		if got := SliceCostMask(m, careW, valueW); got != len(cws) {
			t.Fatalf("SliceCostMask = %d, legacy SliceCost = %d", got, len(cws))
		}
		maskCws := EncodeSliceMask(m, careW, valueW)
		if len(maskCws) != len(cws) {
			t.Fatalf("EncodeSliceMask emitted %d codewords, legacy %d", len(maskCws), len(cws))
		}
		for i := range cws {
			if maskCws[i] != cws[i] {
				t.Fatalf("codeword %d: mask %+v, legacy %+v", i, maskCws[i], cws[i])
			}
		}
		slices, err := DecodeStream(m, cws)
		if err != nil || len(slices) != 1 {
			t.Fatalf("decode failed: %v", err)
		}
		for _, cb := range care {
			if slices[0].Get(cb.Pos) != cb.Value {
				t.Fatalf("care bit %d corrupted", cb.Pos)
			}
		}
	})
}
