// Package selenc implements selective encoding of scan slices, the test
// data compression scheme of Wang & Chakrabarty (ITC'05) used as the
// core-level codec in the DATE'08 paper reproduced by this library.
//
// A scan slice is the m-bit vector fed to m wrapper chains in one scan
// clock cycle. Slices are delivered to the on-chip decompressor as a
// stream of fixed-width codewords of
//
//	w = ceil(log2(m+1)) + 2
//
// bits each: a 2-bit prefix and a k = ceil(log2(m+1))-bit payload. Per
// DESIGN.md, the exact code is a documented reconstruction that satisfies
// every constraint published in the papers:
//
//   - Header (prefix 10): starts a slice. Payload bit 0 carries the
//     slice's fill value. A slice whose care bits all equal the fill
//     value costs a single codeword — the next header (or the end of
//     the stream) delimits it.
//   - Single-bit mode (prefix 00): payload is the index of one target
//     bit (a care bit that differs from the fill value); the decompressor
//     sets that bit to the complement of the fill.
//   - Group-copy mode (prefix 01 then 11): the slice is divided into
//     ceil(m/k) groups of k bits. The first codeword's payload is the
//     group index, the second codeword (prefix 11) carries the k literal
//     data bits. Used whenever a group holds two or more target bits.
//
// The encoder and decoder are bit-exact inverses at the stimulus level:
// decoding reproduces every care bit and fills every don't-care with the
// slice's fill value.
package selenc

import (
	"fmt"
	"math/bits"

	"soctap/internal/bitvec"
)

// Codeword prefixes.
const (
	PrefixSingle uint8 = 0 // 00: single-bit mode, payload = target index
	PrefixGroup  uint8 = 1 // 01: group-copy mode, payload = group index
	PrefixHeader uint8 = 2 // 10: slice header, payload bit 0 = fill value
	PrefixData   uint8 = 3 // 11: literal data for the preceding group codeword
)

// Header payload flag bits. Only bit 0 is used: the payload must fit
// k = ceil(log2(m+1)) bits, which is a single bit at m = 1.
const headerFillBit = 1 << 0

// Codeword is one fixed-width symbol of the compressed stream.
type Codeword struct {
	Prefix  uint8
	Payload uint32
}

// PayloadBits returns k = ceil(log2(m+1)), the payload width for slices
// of m bits. m must be >= 1.
func PayloadBits(m int) int {
	if m < 1 {
		panic(fmt.Sprintf("selenc: invalid slice width %d", m))
	}
	return bits.Len(uint(m)) // ceil(log2(m+1)) for m >= 1
}

// CodewordWidth returns w = ceil(log2(m+1)) + 2, the number of TAM wires
// (equivalently, bits per codeword) required to drive a decompressor
// with m outputs.
func CodewordWidth(m int) int { return PayloadBits(m) + 2 }

// MBand returns the inclusive range [lo, hi] of decompressor output
// widths m that share the codeword width w; that is, all m with
// CodewordWidth(m) == w. The smallest valid w is 3 (m = 1).
func MBand(w int) (lo, hi int, err error) {
	if w < 3 {
		return 0, 0, fmt.Errorf("selenc: codeword width %d below minimum 3", w)
	}
	k := w - 2
	lo = 1 << uint(k-1)
	hi = 1<<uint(k) - 1
	if k == 1 {
		lo = 1
	}
	return lo, hi, nil
}

// GroupCount returns the number of group-copy groups for slice width m.
func GroupCount(m int) int {
	k := PayloadBits(m)
	return (m + k - 1) / k
}

// CareBit is one specified bit of a slice: position within the slice
// (which wrapper chain) and required value.
type CareBit struct {
	Pos   int
	Value bool
}

// ChooseFill returns the fill value minimizing the number of target
// bits: the majority value among the care bits (ties prefer 0, matching
// the hardware's cheaper default).
func ChooseFill(care []CareBit) bool {
	ones := 0
	for _, cb := range care {
		if cb.Value {
			ones++
		}
	}
	return ones*2 > len(care)
}

// SliceCost returns the number of codewords EncodeSlice will emit for a
// slice of width m with the given care bits: one header plus, per group
// with t target bits, min(t, 2) codewords. care must be sorted by Pos
// with no duplicates and all positions in [0, m).
func SliceCost(m int, care []CareBit) int {
	fill := ChooseFill(care)
	k := PayloadBits(m)
	cost := 1
	group := -1
	inGroup := 0
	for _, cb := range care {
		if cb.Value == fill {
			continue
		}
		g := cb.Pos / k
		if g != group {
			cost += flushGroupCost(inGroup)
			group = g
			inGroup = 0
		}
		inGroup++
	}
	cost += flushGroupCost(inGroup)
	return cost
}

func flushGroupCost(t int) int {
	if t >= 2 {
		return 2
	}
	return t
}

// EncodeSlice encodes one slice of width m. care lists the specified
// bits, sorted by position, with positions in [0, m).
func EncodeSlice(m int, care []CareBit) []Codeword {
	for i, cb := range care {
		if cb.Pos < 0 || cb.Pos >= m {
			panic(fmt.Sprintf("selenc: care position %d out of range [0,%d)", cb.Pos, m))
		}
		if i > 0 && care[i-1].Pos >= cb.Pos {
			panic("selenc: care list not strictly sorted")
		}
	}
	fill := ChooseFill(care)
	k := PayloadBits(m)

	// Bucket target bits by group.
	type group struct {
		idx     int
		targets []CareBit // care bits differing from fill
		careAll []CareBit // all care bits in the group (for literals)
	}
	var groups []group
	byIdx := make(map[int]int)
	for _, cb := range care {
		g := cb.Pos / k
		gi, ok := byIdx[g]
		if !ok {
			gi = len(groups)
			byIdx[g] = gi
			groups = append(groups, group{idx: g})
		}
		groups[gi].careAll = append(groups[gi].careAll, cb)
		if cb.Value != fill {
			groups[gi].targets = append(groups[gi].targets, cb)
		}
	}

	header := Codeword{Prefix: PrefixHeader}
	if fill {
		header.Payload |= headerFillBit
	}
	nTargets := 0
	for _, g := range groups {
		nTargets += len(g.targets)
	}
	if nTargets == 0 {
		return []Codeword{header}
	}

	out := []Codeword{header}
	for _, g := range groups {
		switch {
		case len(g.targets) == 0:
			// All care bits equal fill; nothing to transmit.
		case len(g.targets) == 1:
			out = append(out, Codeword{Prefix: PrefixSingle, Payload: uint32(g.targets[0].Pos)})
		default:
			// Group copy: literal k bits, care bits as specified,
			// don't-cares at fill.
			var lit uint32
			if fill {
				width := k
				if rem := m - g.idx*k; rem < width {
					width = rem
				}
				lit = (1 << uint(width)) - 1
			}
			base := g.idx * k
			for _, cb := range g.careAll {
				bit := uint(cb.Pos - base)
				if cb.Value {
					lit |= 1 << bit
				} else {
					lit &^= 1 << bit
				}
			}
			out = append(out,
				Codeword{Prefix: PrefixGroup, Payload: uint32(g.idx)},
				Codeword{Prefix: PrefixData, Payload: lit})
		}
	}
	return out
}

// DecodeStream expands a codeword stream back into fully-specified
// slices of width m. It returns one bit vector per encoded slice.
func DecodeStream(m int, stream []Codeword) ([]*bitvec.Vector, error) {
	k := PayloadBits(m)
	nGroups := GroupCount(m)
	var out []*bitvec.Vector
	var cur *bitvec.Vector
	pendingGroup := -1

	for i, cw := range stream {
		if pendingGroup >= 0 && cw.Prefix != PrefixData {
			return nil, fmt.Errorf("selenc: codeword %d: expected data codeword after group %d", i, pendingGroup)
		}
		switch cw.Prefix {
		case PrefixHeader:
			cur = bitvec.New(m)
			if cw.Payload&headerFillBit != 0 {
				cur.SetAll(true)
			}
			out = append(out, cur)
		case PrefixSingle:
			if cur == nil {
				return nil, fmt.Errorf("selenc: codeword %d: single-bit before any header", i)
			}
			pos := int(cw.Payload)
			if pos >= m {
				return nil, fmt.Errorf("selenc: codeword %d: target index %d out of range", i, pos)
			}
			// Target bits carry the complement of the fill value, which
			// is the current value of the (so far untouched) position.
			cur.Set(pos, !cur.Get(pos))
		case PrefixGroup:
			if cur == nil {
				return nil, fmt.Errorf("selenc: codeword %d: group-copy before any header", i)
			}
			g := int(cw.Payload)
			if g >= nGroups {
				return nil, fmt.Errorf("selenc: codeword %d: group index %d out of range", i, g)
			}
			pendingGroup = g
		case PrefixData:
			if pendingGroup < 0 {
				return nil, fmt.Errorf("selenc: codeword %d: stray data codeword", i)
			}
			base := pendingGroup * k
			width := k
			if m-base < width {
				width = m - base
			}
			cur.WriteBits(base, uint64(cw.Payload), width)
			pendingGroup = -1
		default:
			return nil, fmt.Errorf("selenc: codeword %d: invalid prefix %d", i, cw.Prefix)
		}
	}
	if pendingGroup >= 0 {
		return nil, fmt.Errorf("selenc: stream ends inside a group-copy pair")
	}
	return out, nil
}

// PackStream serializes codewords for slice width m into a bit vector,
// codeword 0 first, prefix bits before payload bits, LSB-first within
// each field. The result models the exact TAM bit traffic; its length is
// len(stream) * CodewordWidth(m).
func PackStream(m int, stream []Codeword) *bitvec.Vector {
	k := PayloadBits(m)
	w := k + 2
	v := bitvec.New(len(stream) * w)
	wr := bitvec.NewWriter(v.Words())
	for _, cw := range stream {
		wr.AppendBits(uint64(cw.Prefix)|uint64(cw.Payload)<<2, w)
	}
	return v
}

// UnpackStream parses a bit vector produced by PackStream back into
// codewords for slice width m.
func UnpackStream(m int, v *bitvec.Vector) ([]Codeword, error) {
	k := PayloadBits(m)
	w := k + 2
	if v.Len()%w != 0 {
		return nil, fmt.Errorf("selenc: stream length %d not a multiple of codeword width %d", v.Len(), w)
	}
	out := make([]Codeword, v.Len()/w)
	for i := range out {
		raw := v.ReadBits(i*w, w)
		out[i] = Codeword{Prefix: uint8(raw & 3), Payload: uint32(raw >> 2)}
	}
	return out, nil
}
