package sim

import (
	"testing"

	"soctap/internal/core"
)

func TestRunDictCoreDeliversStimulus(t *testing.T) {
	c := simCore(31)
	for _, dw := range []int{4, 16, 64} {
		rep, err := RunDictCore(c, 20, dw)
		if err != nil {
			t.Fatalf("D=%d: %v", dw, err)
		}
		if rep.Mismatches != 0 {
			t.Errorf("D=%d: %d mismatches", dw, rep.Mismatches)
		}
		if rep.Slices == 0 || rep.VolumeBits <= 0 {
			t.Errorf("D=%d: degenerate report %+v", dw, rep)
		}
	}
}

func TestDictSimMatchesAnalytic(t *testing.T) {
	c := simCore(32)
	for _, dw := range core.DefaultDictSizes {
		cfg, err := core.EvalDict(c, 20, dw)
		if err != nil {
			t.Fatal(err)
		}
		rep, err := RunDictCore(c, 20, dw)
		if err != nil {
			t.Fatal(err)
		}
		if rep.VolumeBits != cfg.Volume {
			t.Errorf("D=%d: simulated volume %d != analytic %d", dw, rep.VolumeBits, cfg.Volume)
		}
		if rep.W != cfg.Width {
			t.Errorf("D=%d: simulated width %d != analytic %d", dw, rep.W, cfg.Width)
		}
	}
}

func TestVerifyConfigDict(t *testing.T) {
	c := simCore(33)
	cfg, err := core.EvalDict(c, 20, core.DefaultDictSizes[1])
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifyConfig(c, cfg); err != nil {
		t.Errorf("valid dict config failed verification: %v", err)
	}
	bad := cfg
	bad.Volume += 7
	if err := VerifyConfig(c, bad); err == nil {
		t.Error("tampered dict volume passed verification")
	}
}
