// Package sim provides end-to-end functional simulation of the test
// delivery pipeline: test cubes are encoded into codeword streams, fed
// one codeword per cycle through the behavioral decompressor, shifted
// into modeled wrapper chains, and the delivered stimulus is checked
// bit-for-bit against every cube's care bits. It is the executable proof
// that the analytic cost model used by the optimizer corresponds to real
// hardware behaviour.
package sim

import (
	"fmt"

	"soctap/internal/bitvec"
	"soctap/internal/core"
	"soctap/internal/decomp"
	"soctap/internal/selenc"
	"soctap/internal/soc"
	"soctap/internal/wrapper"
)

// CoreReport summarizes the simulation of one core's compressed test.
type CoreReport struct {
	Core       string
	M          int // wrapper chains
	W          int // TAM wires / codeword width
	Patterns   int
	Slices     int64 // slices delivered (= patterns × scan-in depth)
	Codewords  int64 // codewords consumed (= scan-in cycles)
	VolumeBits int64 // Codewords × W
	Mismatches int   // stimulus cells that disagreed with their cube
}

// RunTDCCore simulates the complete compressed test of one core with m
// wrapper chains: every pattern is encoded slice-by-slice, decompressed
// through the cycle-accurate machine, and the reassembled stimulus is
// verified against the cube. Patterns are pulled one at a time from the
// core's cube stream and the per-pattern scratch is recycled, so the
// simulation runs at O(pattern) residency and giant cores can be
// spot-checked without materializing their test sets. An error is
// returned for structural failures; care-bit disagreements are counted
// in the report (and should always be zero).
func RunTDCCore(c *soc.Core, m int) (*CoreReport, error) {
	d, err := wrapper.New(c, m)
	if err != nil {
		return nil, err
	}
	src, err := c.TestSource()
	if err != nil {
		return nil, err
	}
	refs := d.StimulusMap()
	dec, err := decomp.New(m)
	if err != nil {
		return nil, err
	}
	rep := &CoreReport{
		Core:     c.Name,
		M:        m,
		W:        selenc.CodewordWidth(m),
		Patterns: src.Len(),
	}

	si := d.ScanIn
	slices := make([][]selenc.CareBit, si)
	delivered := make([]*bitvec.Vector, 0, si)
	for pi := 0; ; pi++ {
		cb, ok := src.Next()
		if !ok {
			break
		}
		// Assemble per-slice care lists in (chain) position order,
		// reusing each slice's backing array across patterns.
		for i := range slices {
			slices[i] = slices[i][:0]
		}
		delivered = delivered[:0]
		for _, bit := range cb.Care {
			r := refs[bit.Pos]
			slices[r.Depth] = append(slices[r.Depth], selenc.CareBit{Pos: int(r.Chain), Value: bit.Value})
		}
		// Encode and stream through the decompressor.
		for _, slice := range slices {
			insertionSort(slice)
			for _, cw := range selenc.EncodeSlice(m, slice) {
				out, err := dec.Step(cw)
				if err != nil {
					return nil, fmt.Errorf("sim: core %s pattern %d: %w", c.Name, pi, err)
				}
				if out != nil {
					delivered = append(delivered, out)
				}
			}
		}
		// The pipeline holds one slice; pattern boundaries flush it in
		// hardware via the capture-control state machine. Model that by
		// flushing here and restarting the machine's slice state.
		last, err := dec.Flush()
		if err != nil {
			return nil, fmt.Errorf("sim: core %s pattern %d: %w", c.Name, pi, err)
		}
		if last != nil {
			delivered = append(delivered, last)
		}
		if len(delivered) != si {
			return nil, fmt.Errorf("sim: core %s pattern %d: delivered %d slices, want %d",
				c.Name, pi, len(delivered), si)
		}
		rep.Slices += int64(si)

		// Verify every care bit of the cube against the delivered
		// stimulus: cell (chain, depth) receives slice[depth][chain].
		for _, bit := range cb.Care {
			r := refs[bit.Pos]
			if delivered[r.Depth].Get(int(r.Chain)) != bit.Value {
				rep.Mismatches++
			}
		}
	}
	rep.Codewords = dec.Cycles()
	rep.VolumeBits = rep.Codewords * int64(rep.W)
	return rep, nil
}

func insertionSort(care []selenc.CareBit) {
	for i := 1; i < len(care); i++ {
		for j := i; j > 0 && care[j-1].Pos > care[j].Pos; j-- {
			care[j-1], care[j] = care[j], care[j-1]
		}
	}
}

// VerifyConfig cross-checks one optimizer configuration against the
// simulator: the simulated compressed volume must equal the analytic
// volume exactly, and the stimulus must be delivered without mismatches.
func VerifyConfig(c *soc.Core, cfg core.Config) error {
	if !cfg.UseTDC {
		return nil // direct access delivers cubes verbatim by construction
	}
	if cfg.Codec == core.CodecDict {
		return verifyDictConfig(c, cfg)
	}
	rep, err := RunTDCCore(c, cfg.M)
	if err != nil {
		return err
	}
	if rep.Mismatches != 0 {
		return fmt.Errorf("sim: core %s: %d stimulus mismatches", c.Name, rep.Mismatches)
	}
	if rep.VolumeBits != cfg.Volume {
		return fmt.Errorf("sim: core %s: simulated volume %d != analytic %d",
			c.Name, rep.VolumeBits, cfg.Volume)
	}
	return nil
}

// VerifyPlan validates a complete optimization result: the schedule is
// structurally sound and every core's chosen configuration is confirmed
// by functional simulation.
func VerifyPlan(res *core.Result) error {
	if err := res.Schedule.Validate(); err != nil {
		return err
	}
	for _, ch := range res.Choices {
		c := res.SOC.CoreByName(ch.Core)
		if c == nil {
			return fmt.Errorf("sim: plan references unknown core %q", ch.Core)
		}
		if err := VerifyConfig(c, ch.Config); err != nil {
			return err
		}
	}
	return nil
}
