package sim

import (
	"testing"

	"soctap/internal/core"
	"soctap/internal/soc"
)

func simCore(seed int64) *soc.Core {
	chains := make([]int, 20)
	for i := range chains {
		chains[i] = 15
	}
	return &soc.Core{
		Name: "simcore", Inputs: 10, Outputs: 8,
		ScanChains: chains, Patterns: 12,
		CareDensity: 0.08, Clustering: 0.7, Seed: seed,
	}
}

func TestRunTDCCoreDeliversStimulus(t *testing.T) {
	c := simCore(1)
	for _, m := range []int{1, 3, 7, 20, c.MaxWrapperChains()} {
		rep, err := RunTDCCore(c, m)
		if err != nil {
			t.Fatalf("m=%d: %v", m, err)
		}
		if rep.Mismatches != 0 {
			t.Errorf("m=%d: %d stimulus mismatches", m, rep.Mismatches)
		}
		if rep.Patterns != 12 {
			t.Errorf("m=%d: %d patterns", m, rep.Patterns)
		}
		if rep.Slices%int64(rep.Patterns) != 0 {
			t.Errorf("m=%d: slices %d not a multiple of patterns", m, rep.Slices)
		}
		if rep.Codewords < rep.Slices {
			t.Errorf("m=%d: fewer codewords (%d) than slices (%d)", m, rep.Codewords, rep.Slices)
		}
		if rep.VolumeBits != rep.Codewords*int64(rep.W) {
			t.Errorf("m=%d: volume accounting wrong", m)
		}
	}
}

func TestSimMatchesAnalyticVolume(t *testing.T) {
	// The analytic cost model and the bit-level simulation must agree
	// exactly on the compressed volume.
	c := simCore(2)
	for _, m := range []int{2, 5, 11, 25} {
		cfg, err := core.EvalTDC(c, m)
		if err != nil {
			t.Fatal(err)
		}
		rep, err := RunTDCCore(c, m)
		if err != nil {
			t.Fatal(err)
		}
		if rep.VolumeBits != cfg.Volume {
			t.Errorf("m=%d: simulated %d != analytic %d", m, rep.VolumeBits, cfg.Volume)
		}
	}
}

func TestVerifyConfig(t *testing.T) {
	c := simCore(3)
	cfg, err := core.EvalTDC(c, 10)
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifyConfig(c, cfg); err != nil {
		t.Errorf("valid config failed verification: %v", err)
	}
	// Tampered volume must be caught.
	bad := cfg
	bad.Volume++
	if err := VerifyConfig(c, bad); err == nil {
		t.Error("tampered volume passed verification")
	}
	// Direct-access configs pass trivially.
	direct, _ := core.EvalNoTDC(c, 4)
	if err := VerifyConfig(c, direct); err != nil {
		t.Errorf("direct config failed: %v", err)
	}
}

func TestVerifyPlanEndToEnd(t *testing.T) {
	s := &soc.SOC{Name: "simsoc", Cores: []*soc.Core{simCore(4), simCore(5), simCore(6)}}
	// Names must be unique.
	s.Cores[1].Name = "simcore2"
	s.Cores[2].Name = "simcore3"
	res, err := core.Optimize(s, 12, core.Options{
		Style:  core.StyleTDCPerCore,
		Tables: core.TableOptions{MaxWidth: 12},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifyPlan(res); err != nil {
		t.Errorf("optimized plan failed simulation: %v", err)
	}
}

func TestVerifyPlanCatchesUnknownCore(t *testing.T) {
	s := &soc.SOC{Name: "simsoc", Cores: []*soc.Core{simCore(7)}}
	res, err := core.Optimize(s, 8, core.Options{
		Style:  core.StyleTDCPerCore,
		Tables: core.TableOptions{MaxWidth: 8},
	})
	if err != nil {
		t.Fatal(err)
	}
	res.Choices[0].Core = "nonexistent"
	if err := VerifyPlan(res); err == nil {
		t.Error("plan with unknown core verified")
	}
}

func TestRunTDCCoreErrors(t *testing.T) {
	c := simCore(8)
	if _, err := RunTDCCore(c, 0); err == nil {
		t.Error("m=0 accepted")
	}
	if _, err := RunTDCCore(c, c.MaxWrapperChains()+1); err == nil {
		t.Error("m beyond maximum accepted")
	}
}

func TestVerifyPlanAllStyles(t *testing.T) {
	s := &soc.SOC{Name: "stylesoc", Cores: []*soc.Core{simCore(41), simCore(42), simCore(43)}}
	s.Cores[1].Name = "sc2"
	s.Cores[2].Name = "sc3"
	for _, style := range []core.Style{core.StyleNoTDC, core.StyleTDCPerTAM, core.StyleTDCPerCore} {
		res, err := core.Optimize(s, 12, core.Options{
			Style:  style,
			Tables: core.TableOptions{MaxWidth: 12},
		})
		if err != nil {
			t.Fatalf("%v: %v", style, err)
		}
		if err := VerifyPlan(res); err != nil {
			t.Errorf("style %v failed verification: %v", style, err)
		}
	}
}

func TestVerifyPlanWithDict(t *testing.T) {
	s := &soc.SOC{Name: "dictsoc", Cores: []*soc.Core{simCore(44), simCore(45)}}
	s.Cores[1].Name = "sc2"
	res, err := core.Optimize(s, 12, core.Options{
		Style:      core.StyleTDCPerCore,
		Tables:     core.TableOptions{MaxWidth: 12},
		EnableDict: true, DictSizes: []int{16, 64},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifyPlan(res); err != nil {
		t.Errorf("dict-enabled plan failed verification: %v", err)
	}
}
