package sim

import (
	"fmt"

	"soctap/internal/bitvec"
	"soctap/internal/core"
	"soctap/internal/dictenc"
	"soctap/internal/selenc"
	"soctap/internal/soc"
	"soctap/internal/wrapper"
)

// RunDictCore simulates the complete dictionary-compressed test of one
// core: the dictionary is rebuilt exactly as the planner builds it, the
// whole test set is encoded to a bit stream, decoded slice by slice,
// and the delivered stimulus checked against every cube.
func RunDictCore(c *soc.Core, m, dictWords int) (*CoreReport, error) {
	d, err := wrapper.New(c, m)
	if err != nil {
		return nil, err
	}
	ts, err := c.TestSet()
	if err != nil {
		return nil, err
	}
	refs := d.StimulusMap()
	si := d.ScanIn

	// Rebuild the training set in the planner's deterministic order.
	perPattern := make([][]dictenc.Slice, ts.Len())
	var all []dictenc.Slice
	for pi, cb := range ts.Cubes {
		slices := make([]dictenc.Slice, si)
		for _, bit := range cb.Care {
			r := refs[bit.Pos]
			slices[r.Depth] = append(slices[r.Depth], selenc.CareBit{Pos: int(r.Chain), Value: bit.Value})
		}
		for _, s := range slices {
			sortSlice(s)
		}
		perPattern[pi] = slices
		all = append(all, slices...)
	}
	dict, err := dictenc.Build(m, dictWords, all)
	if err != nil {
		return nil, err
	}

	rep := &CoreReport{
		Core:     c.Name,
		M:        m,
		W:        1 + dict.IndexBits(),
		Patterns: ts.Len(),
	}
	var stream []bool
	for _, slices := range perPattern {
		for _, s := range slices {
			stream = dict.Encode(stream, s)
		}
	}
	off := 0
	for pi, cb := range ts.Cubes {
		delivered := make([]*bitvec.Vector, si)
		for sIdx := 0; sIdx < si; sIdx++ {
			v, next, err := dict.Decode(stream, off)
			if err != nil {
				return nil, fmt.Errorf("sim: core %s pattern %d slice %d: %w", c.Name, pi, sIdx, err)
			}
			delivered[sIdx] = v
			off = next
			rep.Slices++
		}
		for _, bit := range cb.Care {
			r := refs[bit.Pos]
			if delivered[r.Depth].Get(int(r.Chain)) != bit.Value {
				rep.Mismatches++
			}
		}
	}
	if off != len(stream) {
		return nil, fmt.Errorf("sim: core %s: %d of %d stream bits consumed", c.Name, off, len(stream))
	}
	// The stream plus the one-time dictionary download is the ATE
	// volume the planner charges.
	rep.VolumeBits = int64(len(stream)) + int64(len(dict.Words)*m)
	return rep, nil
}

func sortSlice(care []selenc.CareBit) {
	for i := 1; i < len(care); i++ {
		for j := i; j > 0 && care[j-1].Pos > care[j].Pos; j-- {
			care[j-1], care[j] = care[j], care[j-1]
		}
	}
}

// verifyDictConfig checks one dictionary configuration against the
// bit-level simulation. The configuration does not record the
// dictionary capacity, so verification re-derives it: the configuration
// is accepted if some explored capacity reproduces both the interface
// width and the exact volume with zero stimulus mismatches.
func verifyDictConfig(c *soc.Core, cfg core.Config) error {
	var lastErr error
	for _, dw := range core.DefaultDictSizes {
		rep, err := RunDictCore(c, cfg.M, dw)
		if err != nil {
			lastErr = err
			continue
		}
		if rep.W != cfg.Width || rep.VolumeBits != cfg.Volume {
			lastErr = fmt.Errorf("sim: core %s: dict capacity %d gives w=%d vol=%d, config has w=%d vol=%d",
				c.Name, dw, rep.W, rep.VolumeBits, cfg.Width, cfg.Volume)
			continue
		}
		if rep.Mismatches != 0 {
			return fmt.Errorf("sim: core %s: %d stimulus mismatches", c.Name, rep.Mismatches)
		}
		return nil
	}
	return fmt.Errorf("sim: core %s: no dictionary capacity reproduces the configuration: %v", c.Name, lastErr)
}
