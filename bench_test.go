// Benchmark harness: one benchmark per table and figure of the paper
// (regenerating the artifact end-to-end), plus ablation benchmarks for
// the design choices called out in DESIGN.md §5.
//
// Run with: go test -bench=. -benchmem
//
// Reproduction metrics are attached to the benchmark output via
// ReportMetric (e.g. the Table 3 time-reduction factor), so a benchmark
// run doubles as a shape check against the paper's numbers.
package soctap_test

import (
	"testing"

	"soctap"
	"soctap/internal/core"
	"soctap/internal/experiments"
	"soctap/internal/sched"
	"soctap/internal/soc"
)

// BenchmarkFig2CktSweep regenerates Figure 2: the exhaustive m sweep of
// the w=10 band on ckt-7, whose non-monotonic test time motivates the
// paper.
func BenchmarkFig2CktSweep(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig2()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.SpreadPct, "spread-%")
	}
}

// BenchmarkFig3WidthSweep regenerates Figure 3: best configuration per
// TAM width for ckt-7.
func BenchmarkFig3WidthSweep(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig3()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(r.Times[0])/float64(r.Times[len(r.Times)-1]), "narrow/wide-x")
	}
}

// BenchmarkFig4Styles regenerates Figure 4: the three architecture
// styles on the three-core industrial SOC at W_TAM = 31.
func BenchmarkFig4Styles(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig4()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(r.Results[0].TestTime)/float64(r.Results[2].TestTime), "tdc-speedup-x")
	}
}

// BenchmarkTab1ATEConstraint regenerates Table 1: d695/d2758 under ATE
// channel constraints against the [18] and [11] proxies.
func BenchmarkTab1ATEConstraint(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r, err := experiments.Tab1()
		if err != nil {
			b.Fatal(err)
		}
		var sum float64
		for _, row := range r.Rows {
			sum += row.Ratio18
		}
		b.ReportMetric(sum/float64(len(r.Rows)), "avg-ours/[18]")
	}
}

// BenchmarkTab2TAMConstraint regenerates Table 2: d695 under TAM width
// constraints against the [18] and [13] proxies.
func BenchmarkTab2TAMConstraint(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r, err := experiments.Tab2()
		if err != nil {
			b.Fatal(err)
		}
		var sum float64
		for _, row := range r.Rows {
			sum += row.Ratio18
		}
		b.ReportMetric(sum/float64(len(r.Rows)), "avg-ours/[18]")
	}
}

// BenchmarkTab3WithWithoutTDC regenerates Table 3, the paper's headline
// experiment: test time and data volume with and without compression on
// d695 and System1..System4. The reported metrics correspond to the
// paper's 15.39x (time) and 15.80x (volume) industrial averages.
func BenchmarkTab3WithWithoutTDC(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r, err := experiments.Tab3()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.AvgTimeRatioInd, "time-reduction-x")
		b.ReportMetric(r.AvgVolRatioInd, "volume-reduction-x")
	}
}

// BenchmarkAblationGroupCopy quantifies the codec's group-copy mode:
// the same core and m evaluated with the two-mode codec versus
// single-bit-only encoding.
func BenchmarkAblationGroupCopy(b *testing.B) {
	c := soc.MustIndustrialCore("ckt-9")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		with, err := soctap.EvalTDC(c, 255)
		if err != nil {
			b.Fatal(err)
		}
		without, err := core.EvalTDCNoGroupCopy(c, 255)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(without.Volume)/float64(with.Volume), "volume-saving-x")
	}
}

// BenchmarkAblationBestM compares the paper's full within-band m
// exploration against simply taking the band maximum (BandSamples=1),
// quantifying the payoff of the non-monotonicity analysis.
func BenchmarkAblationBestM(b *testing.B) {
	s := soc.MustSystem("System1")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		full, err := soctap.Optimize(s, 32, soctap.Options{
			Style:  soctap.StyleTDCPerCore,
			Tables: soctap.TableOptions{MaxWidth: 32, BandSamples: 48},
			Cache:  experiments.SharedCache(),
		})
		if err != nil {
			b.Fatal(err)
		}
		bandMax, err := soctap.Optimize(s, 32, soctap.Options{
			Style:  soctap.StyleTDCPerCore,
			Tables: soctap.TableOptions{MaxWidth: 32, BandSamples: 1},
			Cache:  experiments.SharedCache(),
		})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(bandMax.TestTime)/float64(full.TestTime), "bandmax/full-x")
	}
}

// BenchmarkAblationTAMRefine compares even TAM partitions against the
// wire-moving local search.
func BenchmarkAblationTAMRefine(b *testing.B) {
	s := soc.MustSystem("System1")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		refined, err := soctap.Optimize(s, 37, soctap.Options{
			Style:  soctap.StyleTDCPerCore,
			Tables: soctap.TableOptions{MaxWidth: 37},
			Cache:  experiments.SharedCache(),
		})
		if err != nil {
			b.Fatal(err)
		}
		even, err := soctap.Optimize(s, 37, soctap.Options{
			Style:             soctap.StyleTDCPerCore,
			Tables:            soctap.TableOptions{MaxWidth: 37},
			Cache:             experiments.SharedCache(),
			DisableRefinement: true,
		})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(even.TestTime)/float64(refined.TestTime), "even/refined-x")
	}
}

// BenchmarkAblationSchedule compares longest-first greedy scheduling
// against naive declaration-order placement.
func BenchmarkAblationSchedule(b *testing.B) {
	s := soc.MustSystem("System2")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		lpt, err := soctap.Optimize(s, 32, soctap.Options{
			Style:  soctap.StyleTDCPerCore,
			Tables: soctap.TableOptions{MaxWidth: 64},
			Cache:  experiments.SharedCache(),
		})
		if err != nil {
			b.Fatal(err)
		}
		naive, err := soctap.Optimize(s, 32, soctap.Options{
			Style:      soctap.StyleTDCPerCore,
			Tables:     soctap.TableOptions{MaxWidth: 64},
			Cache:      experiments.SharedCache(),
			NaiveOrder: true,
		})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(naive.TestTime)/float64(lpt.TestTime), "naive/lpt-x")
	}
}

// BenchmarkOptimizeD695 measures the architecture search itself on warm
// lookup tables — the CPU-time column of Table 3.
func BenchmarkOptimizeD695(b *testing.B) {
	s := soctap.D695()
	cache := experiments.SharedCache()
	// Warm the tables outside the timed region.
	if _, err := soctap.Optimize(s, 32, soctap.Options{
		Style: soctap.StyleTDCPerCore, Tables: soctap.TableOptions{MaxWidth: 64}, Cache: cache,
	}); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := soctap.Optimize(s, 32, soctap.Options{
			Style: soctap.StyleTDCPerCore, Tables: soctap.TableOptions{MaxWidth: 64}, Cache: cache,
		}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkOptimizeSearch isolates the Section 3 architecture search —
// the paper's CPU column — from table building: tables are prebuilt
// into the shared cache outside the timed region, the engine is forced
// sequential (so the duration matrix and the search-wide schedule memo
// are measured on their own, not parallelism), and MergeSearch
// exercises every search phase. The makespan metric pins the result:
// search speedups must not move it.
func BenchmarkOptimizeSearch(b *testing.B) {
	s := soctap.D695()
	opts := soctap.Options{
		Style:       soctap.StyleTDCPerCore,
		Tables:      soctap.TableOptions{MaxWidth: 64},
		Cache:       experiments.SharedCache(),
		Workers:     1,
		MergeSearch: true,
	}
	// Warm the tables outside the timed region.
	if _, err := soctap.Optimize(s, 64, opts); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := soctap.Optimize(s, 64, opts)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(res.TestTime), "makespan-cycles")
	}
}

// BenchmarkVerifyPlan measures the cycle-accurate verification of a
// complete d695 plan.
func BenchmarkVerifyPlan(b *testing.B) {
	s := soctap.D695()
	res, err := soctap.Optimize(s, 32, soctap.Options{
		Style: soctap.StyleTDCPerCore, Tables: soctap.TableOptions{MaxWidth: 64},
		Cache: experiments.SharedCache(),
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := soctap.VerifyPlan(res); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTechniqueSelection measures the per-core technique-selection
// extension (direct vs selective encoding vs dictionary) on an
// industrial core, reporting how often the dictionary wins the width
// sweep.
func BenchmarkTechniqueSelection(b *testing.B) {
	c := soc.MustIndustrialCore("ckt-6")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sel, err := soctap.SelectTechniques(c, soctap.TableOptions{MaxWidth: 16}, nil)
		if err != nil {
			b.Fatal(err)
		}
		dictWins := 0
		for u := 3; u <= 16; u++ {
			if sel.PerWidth[u].Codec == soctap.CodecDict {
				dictWins++
			}
		}
		b.ReportMetric(float64(dictWins), "dict-wins")
	}
}

// BenchmarkAblationOptimalSchedule certifies the greedy scheduler
// against the branch-and-bound oracle on a small SOC, reporting the
// optimality gap.
func BenchmarkAblationOptimalSchedule(b *testing.B) {
	s := &soc.SOC{Name: "gapcheck", Cores: soc.D695().Cores[2:8]}
	tables := make([]*soctap.Table, len(s.Cores))
	for i, c := range s.Cores {
		t, err := soctap.BuildTable(c, soctap.TableOptions{MaxWidth: 16})
		if err != nil {
			b.Fatal(err)
		}
		tables[i] = t
	}
	dur := func(c, width int) int64 {
		if width < 1 {
			return 0
		}
		if width > 16 {
			width = 16
		}
		cfg := tables[c].Best[width]
		if !cfg.Feasible {
			return 0
		}
		return cfg.Time
	}
	widths := []int{6, 5, 5}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g, err := sched.Greedy(len(s.Cores), widths, dur)
		if err != nil {
			b.Fatal(err)
		}
		o, err := sched.Optimal(len(s.Cores), widths, dur, 0)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(g.Makespan)/float64(o.Makespan), "greedy/optimal-x")
	}
}

// BenchmarkScalability24Cores stresses the architecture search on a
// 24-core SOC (twice the paper's largest system) with warm lookup
// tables, checking the paper's "CPU time under a minute" claim scales.
func BenchmarkScalability24Cores(b *testing.B) {
	s, err := soc.StressSystem(24, 3)
	if err != nil {
		b.Fatal(err)
	}
	cache := experiments.SharedCache()
	// Warm tables outside the timed region.
	if _, err := soctap.Optimize(s, 64, soctap.Options{
		Style: soctap.StyleTDCPerCore, Tables: soctap.TableOptions{MaxWidth: 64}, Cache: cache,
	}); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := soctap.Optimize(s, 64, soctap.Options{
			Style: soctap.StyleTDCPerCore, Tables: soctap.TableOptions{MaxWidth: 64}, Cache: cache,
		})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.CPUSeconds, "search-seconds")
	}
}
