GO ?= go

.PHONY: check vet build test race bench bench-short bench-smoke bench-json bench-big bench-big-smoke bench-compare telemetry-overhead kernel-equivalence fused-equivalence robustness cachefmt obs serve

# check is the tier-1 gate: everything must pass before a change lands.
# A PR that touches the kernels or the sweep should also refresh the
# dated benchmark archive with `make bench-json` and note the numbers.
check: vet build test race bench-smoke bench-big-smoke telemetry-overhead kernel-equivalence fused-equivalence robustness cachefmt obs serve

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# race re-runs the suite under the race detector; the parallel
# evaluation engine (worker pools, singleflight table cache) is
# exercised by dedicated determinism and contention tests.
race:
	$(GO) test -race ./...

# bench runs the full benchmark harness (one bench per paper artifact
# plus the engine micro-benchmarks). Slow: tab3 alone is minutes.
bench:
	$(GO) test -bench . -benchmem ./...

# bench-short runs only the fast engine benchmarks — the tdcCost
# kernel and the serial-vs-parallel table build.
bench-short:
	$(GO) test -run '^$$' -bench 'BenchmarkTDCCostKernel|BenchmarkBuildTable' -benchmem ./internal/core

# bench-smoke compiles and runs each fast benchmark exactly once — a
# regression tripwire for the benchmark code itself, cheap enough for
# the tier-1 gate (no timing is measured at -benchtime=1x).
bench-smoke:
	$(GO) test -run '^$$' -bench 'BenchmarkTDCCostKernel|BenchmarkBuildTableSerial|BenchmarkBuildTableParallel' -benchtime 1x ./internal/core
	$(GO) test -run '^$$' -bench 'BenchmarkGreedySchedule|BenchmarkGreedy50Cores' -benchtime 1x ./internal/sched
	$(GO) test -run '^$$' -bench 'BenchmarkOptimizeSearch' -benchtime 1x .

# bench-json archives the four headline benchmarks as a dated,
# machine-readable report (BENCH_<yyyy-mm-dd>.json): per-op time plus
# alloc stats and any custom metrics, parsed by cmd/benchjson.
bench-json:
	{ $(GO) test -run '^$$' -bench 'BenchmarkFig2CktSweep$$|BenchmarkTab3WithWithoutTDC$$|BenchmarkOptimizeSearch$$' -benchtime 1x -benchmem . ; \
	  $(GO) test -run '^$$' -bench 'BenchmarkGreedySchedule$$' -benchtime 1x -benchmem ./internal/sched ; \
	  $(GO) test -run '^$$' -bench 'BenchmarkDiskLoadV1VsV2|BenchmarkCacheGetParallel' -benchmem ./internal/core ; \
	  $(GO) test -run '^$$' -bench 'BenchmarkServeOptimizeWarm$$' -benchmem ./internal/serve ; } \
	| $(GO) run ./cmd/benchjson -o BENCH_$$(date +%Y-%m-%d).json
	@echo wrote BENCH_$$(date +%Y-%m-%d).json

# bench-big runs the giant-profile streaming workload: every core of a
# 48-core, million-cube design priced through the window-64 streaming
# evaluator (cubes/s, cores/s, peak heap high-water), plus the
# streamed-vs-materialized >=10x memory acceptance test. Results merge
# into the dated benchmark archive next to the bench-json headliners.
bench-big:
	SOCTAP_GIANT=1 $(GO) test -run TestStreamingPeakMemoryGiant -count=1 -v -timeout 1800s ./internal/core
	$(GO) test -run '^$$' -bench 'BenchmarkStreamGiantSweep$$|BenchmarkFusedGiantTable$$' -benchtime 1x -benchmem -timeout 1800s ./internal/core \
	| $(GO) run ./cmd/benchjson -merge -o BENCH_$$(date +%Y-%m-%d).json
	@echo merged into BENCH_$$(date +%Y-%m-%d).json

# bench-big-smoke is the tier-1 slice of bench-big: the same sweep on a
# scaled-down member of the giant family, plus the window-proportional
# peak-memory gate (streamed evaluator footprint must stay O(window),
# far under the materialized whole-set footprint) and the fused-pass
# counter gate (eval.passes / eval.fused_points / window loads must be
# identical at Workers 1 and 8 on the smoke-scale giant core).
bench-big-smoke:
	$(GO) test -run 'TestStreamingPeakMemorySmoke|TestFusedCountersWorkerInvariance' -count=1 ./internal/core
	$(GO) test -run '^$$' -bench 'BenchmarkStreamGiantSweep$$|BenchmarkFusedGiantTable$$' -benchtime 1x -short ./internal/core

# kernel-equivalence asserts the word-parallel kernel and sweep-pruning
# exactness contracts: both plane-building paths agree with each other
# and with the real encoder, pruned tables are deeply equal to unpruned
# ones on every d695/industrial core, steady-state tdcCost runs at 0
# allocs/op on both paths, tables built through the streaming window
# evaluator are deeply equal to resident builds at every window and
# worker count (including the window-boundary fuzz seeds), and the fuzz
# seed corpora for the word and codec kernels still pass.
kernel-equivalence:
	$(GO) test -run 'TestKernelPathsAgree|TestKernelSteadyStateZeroAlloc|TestBuildTablePruningGoldenEquivalence|TestEvalTDCMatchesRealEncoder' -count=1 ./internal/core
	$(GO) test -run 'TestStreamingTableEquivalence|TestStreamingEvaluatorEquivalence|TestEvalWindowValidation|TestStreamingWindowTelemetry|FuzzStreamingWindowEquivalence' -count=1 ./internal/core
	$(GO) test -run 'FuzzWordKernels' -count=1 ./internal/bitvec
	$(GO) test -run 'FuzzEncodeDecodeRoundTrip|FuzzDecodeStream' -count=1 ./internal/selenc

# fused-equivalence asserts the fused single-pass sweep's exactness
# contracts under the race detector: tables built through the fused
# streaming path are bit-identical to per-point (DisableFusion) builds
# on every d695 core plus the decay/compressible synthetics at windows
# 1/64/∞ × workers 1/8 (including multi-batch schedules), the mid-pass
# LB/UB pruning drops candidates without changing the table, every
# fused and pruning counter is worker-count invariant, the steady-state
# fused window kernel runs at 0 allocs/op, and the selenc append-form
# ops kernel the evaluator delegates to agrees with the real encoder's
# slice cost.
fused-equivalence:
	$(GO) test -race -count=1 -timeout 600s -run 'TestFusedTableEquivalence|TestFusedMidPassPruning|TestFusedCountersWorkerInvariance|TestBuildTableBandBoundaries' ./internal/core
	$(GO) test -count=1 -run 'TestFusedWindowKernelZeroAlloc|TestSliceOpsMaskAgreesWithCost' ./internal/core ./internal/selenc

# robustness asserts the failure-model contracts under the race
# detector with a tight timeout: the singleflight deadlock regression
# (a poisoned cache entry would hang here, not pass), panic containment
# at the core package boundary, prompt cancellation with no goroutine
# leaks, bit-identical results through the context-threaded entry
# points, disk-store fault injection, and malformed-design rejection.
robustness:
	$(GO) test -race -count=1 -timeout 300s -run 'TestCacheGetPanicNoDeadlock|TestCacheWaiterCancelPromptly|TestCacheDeterministicErrorCached|TestForEachEvalPanicContained|TestBuildTableContextCancelled|TestSweepTDCContextCancelled|TestOptimizeCancelMidRun|TestOptimizeContextMatchesOptimize|TestStoreDiskTableFaultInjection|TestDiskCacheShortEntryIsCorrupt' ./internal/core
	$(GO) test -race -count=1 -timeout 60s -run 'TestParseRejectsMalformedDesigns|TestValidateStructuralBounds|TestMalformedDesignNeverReachesKernels' ./internal/soc

# cachefmt asserts the cache-format and cache-tier contracts: the v2
# container round-trips byte-exactly against the checked-in golden file
# and rejects corruption (tablecodec golden/rejection/fuzz-seed tests),
# gob v1 entries migrate transparently to v2 with bit-identical tables
# on every d695/industrial core, both disk tiers honour their size
# bounds, and the sharded cache keeps singleflight/LRU semantics under
# the race detector.
cachefmt:
	$(GO) test -run 'TestGoldenV2|TestHeaderRejection|TestVerifyCatchesTruncation|TestRoundTrip|TestDecodeArbitraryPrefixNeverPanics|FuzzTableCodecRoundTrip' -count=1 ./internal/tablecodec
	$(GO) test -run 'TestDiskCacheV1Migration|TestFormatV2MatchesV1OnBenchmarks|TestDiskCacheRoundTrip|TestDiskCacheBitFlipNeverPanics|TestDiskCacheSizeBound' -count=1 ./internal/core
	$(GO) test -race -count=1 -timeout 120s -run 'TestCacheShardedConcurrency|TestCacheShardSpread|TestCacheMemBound|TestCacheMemBoundEvictsLRU' ./internal/core

# telemetry-overhead asserts the zero-overhead-when-disabled contract:
# the instrumented-but-disabled kernel and makespan paths must run at 0
# allocs/op (test-enforced), the disabled-path benchmark must still
# compile and run, and the telemetry package itself must be vet-clean.
telemetry-overhead:
	$(GO) vet ./internal/telemetry
	$(GO) test -run 'TestKernelDisabledTelemetryZeroAlloc|TestMakespanDisabledTelemetryZeroAlloc|TestNilFastPathAllocs' -count=1 ./internal/core ./internal/telemetry
	$(GO) test -run '^$$' -bench 'BenchmarkTDCCostKernelDisabled|BenchmarkTDCCostKernelTelemetry' -benchtime 1x -benchmem ./internal/core

# obs asserts the observability-plane contracts: the disabled histogram
# record path and the subscriber-free publish path run at 0 allocs/op
# (test-enforced), the /metrics exposition matches its golden
# byte-for-byte, the event bus never blocks publishers (including
# against a stalled /events client) and survives the race detector, the
# histogram observation counts are worker-count invariant on d695, and
# the benchjson compare heuristics hold.
obs:
	$(GO) test -race -count=1 -timeout 300s -run 'TestBus|TestSubscriptionCloseRace|TestEvent|TestSpanHook|TestSinkClose|TestHistogram|TestBucketBounds|TestWriteOpenMetricsGolden|TestMetricsAndHealthzEndpoints|TestShutdownCancelsStreams|TestParseKinds' ./internal/telemetry
	$(GO) test -count=1 -run 'TestHistogramEnabledZeroAlloc|TestNilFastPathAllocs|TestBusNoSubscribersIsFree' ./internal/telemetry
	$(GO) test -race -count=1 -timeout 600s -run 'TestHistogramCountInvariance' ./internal/core
	$(GO) test -count=1 ./cmd/benchjson

# serve asserts the optimization-service contracts under the race
# detector: the end-to-end socserve suite (job queue admission bounds,
# per-request deadline cancellation mid-build, per-tenant rate
# limiting, singleflight table sharing across concurrent identical
# designs, NDJSON progress streaming, graceful drain with no goroutine
# leaks) plus the HTTP/cache hardening regressions this plane stands on
# (non-Flusher event streaming, slowloris header reaping, write-timeout
# exemption for streams, disk-cache touch-error accounting).
serve:
	$(GO) test -race -count=1 -timeout 300s ./internal/serve ./cmd/socserve
	$(GO) test -race -count=1 -timeout 120s -run 'TestEventsNonFlusherWriter|TestStalledHeaderReadReaped|TestEventsStreamSurvivesWriteTimeout' ./internal/telemetry
	$(GO) test -count=1 -run 'TestDiskStoreTouchErrorCounted' ./internal/core

# bench-compare diffs the two most recent dated benchmark archives
# (BENCH_*.json at the repository root), failing on any directional
# metric that regressed by more than 10%. Run `make bench-json` first
# on both commits being compared.
bench-compare:
	@set -- $$(ls BENCH_*.json 2>/dev/null | sort | tail -2); \
	if [ $$# -lt 2 ]; then echo "bench-compare: need two BENCH_*.json archives (run make bench-json)"; exit 1; fi; \
	echo "benchjson -compare $$1 $$2"; \
	$(GO) run ./cmd/benchjson -compare $$1 $$2 -threshold 0.10
