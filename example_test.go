package soctap_test

import (
	"bytes"
	"fmt"
	"log"
	"strings"

	"soctap"
)

// ExampleOptimize shows the basic flow: load a benchmark, co-optimize
// the test architecture with per-core compression, and verify the plan
// by cycle-accurate simulation.
func ExampleOptimize() {
	design := soctap.D695()
	res, err := soctap.Optimize(design, 32, soctap.Options{
		Style: soctap.StyleTDCPerCore,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("cores planned:", len(res.Choices))
	fmt.Println("partition width:", res.Partition.TotalWidth())
	fmt.Println("schedule consistent:", res.Schedule.Validate() == nil)
	fmt.Println("bit-exact delivery:", soctap.VerifyPlan(res) == nil)
	// Output:
	// cores planned: 10
	// partition width: 32
	// schedule consistent: true
	// bit-exact delivery: true
}

// ExampleOptimize_styles contrasts the paper's three architecture
// styles on the same SOC: compression dominates direct access on
// sparse industrial cores.
func ExampleOptimize_styles() {
	design, err := soctap.System("System1")
	if err != nil {
		log.Fatal(err)
	}
	var cache soctap.Cache
	run := func(style soctap.Style) *soctap.Result {
		res, err := soctap.Optimize(design, 24, soctap.Options{Style: style, Cache: &cache})
		if err != nil {
			log.Fatal(err)
		}
		return res
	}
	direct := run(soctap.StyleNoTDC)
	perCore := run(soctap.StyleTDCPerCore)
	fmt.Println("compression at least 3x faster:", direct.TestTime > 3*perCore.TestTime)
	fmt.Println("compression shrinks ATE data:", perCore.Volume < direct.Volume)
	// Output:
	// compression at least 3x faster: true
	// compression shrinks ATE data: true
}

// ExampleSweepTDC reproduces the paper's key per-core observation: test
// time is not monotonic in the number of wrapper chains.
func ExampleSweepTDC() {
	core, err := soctap.IndustrialCore("ckt-7")
	if err != nil {
		log.Fatal(err)
	}
	cfgs, err := soctap.SweepTDC(core, 128, 255) // the w = 10 band
	if err != nil {
		log.Fatal(err)
	}
	increases := 0
	for i := 1; i < len(cfgs); i++ {
		if cfgs[i].Time > cfgs[i-1].Time {
			increases++
		}
	}
	fmt.Println("monotonic:", increases == 0)
	// Output:
	// monotonic: false
}

// ExampleParseSOC reads a design from the ITC'02-inspired text format.
func ExampleParseSOC() {
	input := `
SocName demo
Core dsp
  Inputs 10
  Outputs 8
  ScanChains 2 40 40
  Patterns 25
  CareDensity 0.05
EndCore
`
	design, err := soctap.ParseSOC(strings.NewReader(input))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(design.Name, len(design.Cores), design.Cores[0].ScanCells())
	// Output:
	// demo 1 80
}

// ExampleWritePlan exports an optimized plan as JSON for downstream
// tooling.
func ExampleWritePlan() {
	design := soctap.D695()
	res, err := soctap.Optimize(design, 16, soctap.Options{Style: soctap.StyleTDCPerCore})
	if err != nil {
		log.Fatal(err)
	}
	var buf bytes.Buffer
	if err := soctap.WritePlan(&buf, res); err != nil {
		log.Fatal(err)
	}
	fmt.Println("has design field:", strings.Contains(buf.String(), `"design": "d695"`))
	fmt.Println("has cores:", strings.Contains(buf.String(), `"core": "s38417"`))
	// Output:
	// has design field: true
	// has cores: true
}
