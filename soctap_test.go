package soctap_test

import (
	"bytes"
	"strings"
	"testing"

	"soctap"
)

// TestPublicAPIFlow exercises the documented public flow end to end:
// load, optimize, inspect, verify, round-trip to the text format.
func TestPublicAPIFlow(t *testing.T) {
	design := soctap.D695()
	if len(design.Cores) != 10 {
		t.Fatalf("d695 has %d cores", len(design.Cores))
	}

	res, err := soctap.Optimize(design, 24, soctap.Options{Style: soctap.StyleTDCPerCore})
	if err != nil {
		t.Fatal(err)
	}
	if res.TestTime <= 0 || res.Volume <= 0 {
		t.Fatalf("degenerate result: %+v", res)
	}
	if res.Partition.TotalWidth() > 24 {
		t.Errorf("partition %v over budget", res.Partition)
	}
	if err := soctap.VerifyPlan(res); err != nil {
		t.Errorf("verification failed: %v", err)
	}

	var buf bytes.Buffer
	if err := soctap.WriteSOC(&buf, design); err != nil {
		t.Fatal(err)
	}
	back, err := soctap.ParseSOC(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Name != design.Name {
		t.Errorf("round trip changed name to %q", back.Name)
	}
}

func TestPublicBenchmarks(t *testing.T) {
	m := soctap.AllBenchmarks()
	if len(m) != 6 {
		t.Errorf("%d benchmarks, want 6", len(m))
	}
	if _, err := soctap.System("System1"); err != nil {
		t.Error(err)
	}
	if _, err := soctap.System("bogus"); err == nil {
		t.Error("bogus system accepted")
	}
	if _, err := soctap.IndustrialCore("ckt-3"); err != nil {
		t.Error(err)
	}
	d := soctap.D2758()
	if !strings.HasPrefix(d.Name, "d2758") {
		t.Errorf("d2758 name %q", d.Name)
	}
}

func TestPublicPerCoreAnalysis(t *testing.T) {
	c, err := soctap.IndustrialCore("ckt-6")
	if err != nil {
		t.Fatal(err)
	}
	cfgs, err := soctap.SweepTDC(c, 32, 40)
	if err != nil {
		t.Fatal(err)
	}
	if len(cfgs) != 9 {
		t.Fatalf("%d configs", len(cfgs))
	}
	tdc, err := soctap.EvalTDC(c, 63)
	if err != nil {
		t.Fatal(err)
	}
	direct, err := soctap.EvalNoTDC(c, 8)
	if err != nil {
		t.Fatal(err)
	}
	// Same 8 TAM wires; the sparse industrial core must compress well.
	if tdc.Time >= direct.Time {
		t.Errorf("TDC %d not faster than direct %d on ckt-6", tdc.Time, direct.Time)
	}
	tab, err := soctap.BuildTable(c, soctap.TableOptions{MaxWidth: 12})
	if err != nil {
		t.Fatal(err)
	}
	if !tab.Best[12].Feasible {
		t.Error("table Best[12] infeasible")
	}
}

func TestPublicBaselines(t *testing.T) {
	s := soctap.D695()
	b18, err := soctap.VirtualTAM18(s, 16)
	if err != nil {
		t.Fatal(err)
	}
	b13, err := soctap.LFSRReseeding13(s, 16)
	if err != nil {
		t.Fatal(err)
	}
	b11, err := soctap.FixedWidth11(s, 16)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range []soctap.BaselineResult{b18, b13, b11} {
		if r.TestTime <= 0 || r.Volume <= 0 || r.Name == "" {
			t.Errorf("degenerate baseline result %+v", r)
		}
	}
}

func TestPublicTester(t *testing.T) {
	tester := soctap.Tester{Channels: 16, MemoryDepth: 1 << 20, FreqMHz: 50}
	if err := tester.Validate(); err != nil {
		t.Fatal(err)
	}
	if !tester.Fits(16 << 20) {
		t.Error("exact fit rejected")
	}
}

func TestPublicTechniqueSelection(t *testing.T) {
	c, err := soctap.IndustrialCore("ckt-6")
	if err != nil {
		t.Fatal(err)
	}
	sel, err := soctap.SelectTechniques(c, soctap.TableOptions{MaxWidth: 10}, []int{16})
	if err != nil {
		t.Fatal(err)
	}
	if !sel.PerWidth[10].Feasible {
		t.Error("no winner at width 10")
	}
	cfg, err := soctap.EvalDict(c, 32, 16)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Codec != soctap.CodecDict {
		t.Errorf("codec %q", cfg.Codec)
	}
}

func TestPublicCompaction(t *testing.T) {
	c := &soctap.Core{
		Name: "sparsecompact", Inputs: 10, ScanChains: []int{500},
		Patterns: 40, CareDensity: 0.005, Seed: 77,
	}
	ts, err := c.TestSet()
	if err != nil {
		t.Fatal(err)
	}
	out := soctap.CompactTestSet(ts)
	if out.Len() >= ts.Len() {
		t.Errorf("compaction did not shrink: %d -> %d", ts.Len(), out.Len())
	}
}
