module soctap

go 1.22
