// Industrial flow: the scenario the paper's introduction motivates — an
// SOC built from large compression-ready industrial cores whose raw test
// data (tens of Mbit here, tens of Gbit in production) blows past tester
// memory and test-time budgets.
//
// The example compares the three architecture styles of the paper's
// Figure 4 on System2, sizes the decompressor hardware, and checks the
// plan against an ATE memory budget.
//
// Run with: go run ./examples/industrial_flow   (takes ~1 minute)
package main

import (
	"fmt"
	"log"
	"os"

	"soctap"
	"soctap/internal/ate"
	"soctap/internal/report"
)

func main() {
	design, err := soctap.System("System2")
	if err != nil {
		log.Fatal(err)
	}
	vi, err := design.InitialVolume()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("design %s: %d industrial cores, %d scan cells, %s Mbit raw stimulus\n\n",
		design.Name, len(design.Cores), design.TotalScanCells(), report.Mbits(vi))

	const wtam = 32
	var cache soctap.Cache
	styles := []soctap.Style{soctap.StyleNoTDC, soctap.StyleTDCPerTAM, soctap.StyleTDCPerCore}

	tab := report.NewTable(fmt.Sprintf("architecture styles at W_TAM = %d", wtam),
		"style", "partition", "test time", "volume (Mbit)", "routed wires", "decompressors", "FFs", "gates")
	var results []*soctap.Result
	for _, style := range styles {
		res, err := soctap.Optimize(design, wtam, soctap.Options{Style: style, Cache: &cache})
		if err != nil {
			log.Fatal(err)
		}
		results = append(results, res)
		routed := res.Partition.TotalWidth()
		if style == soctap.StyleTDCPerTAM {
			routed = res.InternalWires // expanded buses cross the chip
		}
		tab.Add(style.String(), fmt.Sprint(res.Partition),
			fmt.Sprint(res.TestTime), report.Mbits(res.Volume),
			fmt.Sprint(routed), fmt.Sprint(res.Decompressors),
			fmt.Sprint(res.DecompFFs), fmt.Sprint(res.DecompGates))
	}
	if err := tab.Render(os.Stdout); err != nil {
		log.Fatal(err)
	}

	noTDC, perCore := results[0], results[2]
	fmt.Printf("\ncompression reduces test time %s and ATE data %s\n",
		report.Ratio(noTDC.TestTime, perCore.TestTime),
		report.Ratio(noTDC.Volume, perCore.Volume))
	frac := float64(perCore.DecompGates+6*perCore.DecompFFs) / float64(design.TotalGates())
	fmt.Printf("decompressor hardware: %.2f%% of the design's %s gates (paper: ~1%%)\n",
		100*frac, report.Eng(int64(design.TotalGates())))

	// ATE sizing: a modest 8 Mbit/channel tester.
	tester := ate.Tester{Channels: wtam, MemoryDepth: 8 << 20, FreqMHz: 50}
	for _, res := range []*soctap.Result{noTDC, perCore} {
		status := "fits tester memory"
		if !tester.Fits(res.Volume) {
			status = fmt.Sprintf("needs %d memory reloads", tester.Reloads(res.Volume))
		}
		fmt.Printf("%-13s %8.3f ms on the tester, %10d bits/channel  -> %s\n",
			res.Style.String()+":", tester.Seconds(res.TestTime)*1e3,
			tester.DepthPerChannel(res.Volume), status)
	}

	// Compose the actual ATE vector image for the winning plan.
	img, err := soctap.BuildVectorImage(perCore)
	if err != nil {
		log.Fatal(err)
	}
	st := img.ComputeStats()
	fmt.Printf("\nATE vector image: depth %d vectors, %s Mbit stored across %d segments (%.1f%% channel utilization)\n",
		st.Depth, report.Mbits(st.StoredBits), st.Segments, 100*st.Utilization)

	// Confidence: simulate the winning plan bit-for-bit.
	fmt.Print("verifying the per-core plan in simulation... ")
	if err := soctap.VerifyPlan(perCore); err != nil {
		log.Fatal(err)
	}
	fmt.Println("ok")
}
