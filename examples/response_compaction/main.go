// Response compaction: the paper plans stimulus delivery and scopes
// responses out ("handling of test responses is beyond the scope of
// this work"), but a deployed architecture needs the response side too
// — the "Compactor (optional)" box of its Figure 1. This example closes
// that loop with a MISR signature register and X-masking: unknown
// response bits corrupt a time-compacted signature unless masked, and
// masking costs data volume that must be weighed like stimulus volume.
//
// Run with: go run ./examples/response_compaction
package main

import (
	"fmt"
	"log"

	"soctap"
	"soctap/internal/misr"
	"soctap/internal/wrapper"
)

func main() {
	core, err := soctap.IndustrialCore("ckt-6")
	if err != nil {
		log.Fatal(err)
	}
	const m = 63 // wrapper chains feeding the compactor
	d, err := wrapper.New(core, m)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("core %s through %d wrapper chains: scan-out depth %d, %d patterns\n",
		core.Name, m, d.ScanOut, core.Patterns)

	// Synthetic responses with 0.2% unknown bits (uninitialized macros,
	// multi-cycle paths). Real flows get these from logic simulation.
	slices := misr.SyntheticResponses(d.ScanOut, m, core.Patterns, 0.002, core.Seed)

	taps := []int{0, 2, 3, 5} // x^64 + x^5 + x^3 + x^2 + 1 style feedback
	unmasked, err := misr.Compact(m, taps, slices, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nwithout X-masking: %d of %d compaction cycles contaminated -> signature unusable\n",
		unmasked.XCycles(), unmasked.Steps())

	plan, err := misr.BuildMaskPlan(slices)
	if err != nil {
		log.Fatal(err)
	}
	masked, err := misr.Compact(m, taps, slices, plan)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("with X-masking:    contaminated cycles %d, signature %s...\n",
		masked.XCycles(), masked.Signature().String()[:16])
	fmt.Printf("aliasing probability bound: %.2e\n", masked.AliasingProbability())

	// The cost side: mask data volume versus the stimulus volume the
	// compression scheme saved.
	stim, err := soctap.EvalTDC(core, m)
	if err != nil {
		log.Fatal(err)
	}
	maskBits := plan.VolumeBits()
	fmt.Printf("\nmask data: %d bits vs %d bits of compressed stimulus (%.1f%% overhead)\n",
		maskBits, stim.Volume, 100*float64(maskBits)/float64(stim.Volume))
	fmt.Println("=> per-slice masking keeps signatures deterministic at a bounded data cost;")
	fmt.Println("   response volume planning composes with the stimulus-side optimization.")
}
