// Technique selection: the extension direction of the authors' ATS'08
// follow-up paper. For each core the planner may choose direct access,
// selective encoding of scan slices, or a dictionary decompressor with
// fixed-length indices — whichever minimizes test time at the core's
// TAM width.
//
// The example contrasts two cores:
//   - a sparse industrial core, where selective encoding shines;
//   - a core with a highly repetitive test set (regular datapaths,
//     repeated functional patterns), where the dictionary wins.
//
// Run with: go run ./examples/technique_selection
package main

import (
	"fmt"
	"log"
	"os"

	"soctap"
	"soctap/internal/report"
)

func main() {
	sparse, err := soctap.IndustrialCore("ckt-6")
	if err != nil {
		log.Fatal(err)
	}
	repetitive := repetitiveCore()

	for _, c := range []*soctap.Core{sparse, repetitive} {
		sel, err := soctap.SelectTechniques(c, soctap.TableOptions{MaxWidth: 16}, nil)
		if err != nil {
			log.Fatal(err)
		}
		ts, err := c.TestSet()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("core %s: %d patterns x %d bits, %.1f%% care density\n",
			c.Name, ts.Len(), ts.NumBits, 100*ts.Density())
		tab := report.NewTable("", "TAM width", "winner", "time", "volume (bits)", "m")
		for u := 4; u <= 16; u += 2 {
			win := sel.PerWidth[u]
			name := win.Codec
			if name == soctap.CodecDirect {
				name = "direct"
			}
			tab.Add(fmt.Sprint(u), name, fmt.Sprint(win.Time), fmt.Sprint(win.Volume), fmt.Sprint(win.M))
		}
		if err := tab.Render(os.Stdout); err != nil {
			log.Fatal(err)
		}
		fmt.Println()
	}
	fmt.Println("=> no single compression technique dominates: the planner selects per core,")
	fmt.Println("   which is exactly the motivation of the authors' follow-up work (ATS'08).")
}

// repetitiveCore builds a core whose test set is 40 repetitions of 4
// distinct dense cubes — the slice-repetition regime where
// dictionary coding with fixed-length indices excels.
func repetitiveCore() *soctap.Core {
	chains := make([]int, 16)
	for i := range chains {
		chains[i] = 24
	}
	c := &soctap.Core{
		Name: "regular-datapath", Inputs: 12, Outputs: 12,
		ScanChains: chains, Patterns: 40,
		CareDensity: 0.5, Clustering: 0.1, Seed: 4242,
	}
	ts, err := c.TestSet()
	if err != nil {
		log.Fatal(err)
	}
	for i := 4; i < len(ts.Cubes); i++ {
		ts.Cubes[i] = ts.Cubes[i%4].Clone()
	}
	return c
}
