// Memory budget: when even compressed test data exceeds the tester's
// vector memory, the flow of Larsson & Edbom truncates each core's
// pattern set — keeping the leading, highest-coverage patterns — to
// maximize test quality within the budget. This example sizes an SOC's
// compressed test set, sweeps ATE memory budgets, and shows the
// quality/memory trade-off (halving memory costs far less than half the
// quality thanks to ATPG's density decay).
//
// Run with: go run ./examples/memory_budget
package main

import (
	"fmt"
	"log"
	"os"

	"soctap"
	"soctap/internal/report"
)

func main() {
	design, err := soctap.System("System1")
	if err != nil {
		log.Fatal(err)
	}

	// Plan the compressed test first: per core, the optimizer's chosen
	// configuration defines the per-pattern storage cost.
	res, err := soctap.Optimize(design, 32, soctap.Options{Style: soctap.StyleTDCPerCore})
	if err != nil {
		log.Fatal(err)
	}
	chosenM := map[string]int{}
	for _, ch := range res.Choices {
		if ch.Config.UseTDC {
			chosenM[ch.Core] = ch.Config.M
		}
	}
	perPattern := map[string][]int64{}
	for _, c := range design.Cores {
		if m, ok := chosenM[c.Name]; ok {
			bits, err := soctap.PatternBits(c, m)
			if err != nil {
				log.Fatal(err)
			}
			perPattern[c.Name] = bits
		}
	}
	cost := func(c *soctap.Core, j int) int64 {
		if bits, ok := perPattern[c.Name]; ok {
			return bits[j]
		}
		return int64(c.StimulusBits()) // uncompressed cores store raw slices
	}

	full, err := soctap.TruncateForATE(design, 1<<50, cost)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("design %s: full compressed test set = %.2f Mbit across %d cores\n\n",
		design.Name, float64(full.Bits)/1e6, len(design.Cores))

	tab := report.NewTable("test quality vs ATE memory budget",
		"budget (Mbit)", "stored (Mbit)", "avg quality", "patterns kept")
	for _, frac := range []int64{1, 2, 4, 8, 16} {
		budget := full.Bits / frac
		plan, err := soctap.TruncateForATE(design, budget, cost)
		if err != nil {
			log.Fatal(err)
		}
		kept, total := 0, 0
		for _, cb := range plan.Cores {
			kept += cb.Patterns
			total += cb.Total
		}
		tab.Add(fmt.Sprintf("%.2f", float64(budget)/1e6),
			fmt.Sprintf("%.2f", float64(plan.Bits)/1e6),
			fmt.Sprintf("%.3f", plan.Quality),
			fmt.Sprintf("%d/%d", kept, total))
	}
	if err := tab.Render(os.Stdout); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\n=> early ATPG patterns carry disproportionate coverage (density decay),")
	fmt.Println("   so every halving of memory keeps more than half the remaining quality —")
	fmt.Println("   and compression multiplies how many patterns fit in the first place.")
}
