// Custom SOC: build a design programmatically, persist it in the
// ITC'02-inspired text format, and plan its test — including the
// power-constrained scheduling extension, where a thermal budget forces
// the scheduler to serialize hot cores even when TAM wires are free.
//
// Run with: go run ./examples/custom_soc
package main

import (
	"bytes"
	"fmt"
	"log"

	"soctap"
	"soctap/internal/core"
	"soctap/internal/sched"
)

func main() {
	// Describe an SOC: two big compression-friendly cores, one dense
	// legacy core, one combinational block.
	design := &soctap.SOC{
		Name: "camera-soc",
		Cores: []*soctap.Core{
			{
				Name: "isp", Inputs: 220, Outputs: 180, Bidirs: 16,
				ScanChains: chains(300, 50), Patterns: 180,
				Gates: 240000, CareDensity: 0.02, Clustering: 0.75, DensityDecay: 0.7, Seed: 1001,
			},
			{
				Name: "dsp", Inputs: 150, Outputs: 140,
				ScanChains: chains(200, 45), Patterns: 140,
				Gates: 150000, CareDensity: 0.03, Clustering: 0.7, DensityDecay: 0.6, Seed: 1002,
			},
			{
				Name: "uart", Inputs: 40, Outputs: 36,
				ScanChains: chains(4, 60), Patterns: 90,
				Gates: 6000, CareDensity: 0.45, Clustering: 0.3, Seed: 1003,
			},
			{
				Name: "crc", Inputs: 64, Outputs: 32, Patterns: 24,
				Gates: 1800, CareDensity: 0.6, Clustering: 0.2, Seed: 1004,
			},
		},
	}

	// Round-trip through the on-disk format (what socgen/socopt use).
	var buf bytes.Buffer
	if err := soctap.WriteSOC(&buf, design); err != nil {
		log.Fatal(err)
	}
	reloaded, err := soctap.ParseSOC(&buf)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("round-tripped %s through the .soc format: %d cores\n\n",
		reloaded.Name, len(reloaded.Cores))

	// Plan the test with the proposed per-core compression scheme.
	res, err := soctap.Optimize(reloaded, 20, soctap.Options{Style: soctap.StyleTDCPerCore})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("W_TAM = 20 -> partition %v, %d cycles, %d ATE bits\n",
		res.Partition, res.TestTime, res.Volume)
	for _, ch := range res.Choices {
		fmt.Printf("  %-5s bus %d: %6d cycles (tdc=%v, m=%d)\n",
			ch.Core, ch.Bus, ch.Config.Time, ch.Config.UseTDC, ch.Config.M)
	}
	if err := soctap.VerifyPlan(res); err != nil {
		log.Fatal(err)
	}
	fmt.Println("plan verified in simulation")

	// Extension: power-constrained scheduling. Reuse the optimizer's
	// per-core lookup tables as durations and impose a power ceiling
	// that forbids testing both big cores concurrently.
	tables := make([]*soctap.Table, len(reloaded.Cores))
	for i, c := range reloaded.Cores {
		t, err := soctap.BuildTable(c, soctap.TableOptions{MaxWidth: 20})
		if err != nil {
			log.Fatal(err)
		}
		tables[i] = t
	}
	dur := func(c, width int) int64 {
		if width > 20 {
			width = 20
		}
		if width < 1 {
			return 0
		}
		return tables[c].Best[width].Time
	}
	// Derive per-core power from the delivered stimuli themselves:
	// weighted transition counts under the fill each core's codec
	// implies (scaled to small integer units).
	powerUnits := make([]int, len(reloaded.Cores))
	for i, c := range reloaded.Cores {
		m := 8
		if m > c.MaxWrapperChains() {
			m = c.MaxWrapperChains()
		}
		est, err := soctap.ScanInPower(c, m, soctap.FillSlice)
		if err != nil {
			log.Fatal(err)
		}
		powerUnits[i] = int(est.PeakWTC/1000) + 1
		fmt.Printf("  %-5s peak scan WTC %d -> %d power units\n", c.Name, est.PeakWTC, powerUnits[i])
	}
	total := 0
	for _, p := range powerUnits {
		total += p
	}
	for _, cap := range []int{total, (powerUnits[0] + powerUnits[1]) * 9 / 10} {
		s, err := sched.GreedyPower(len(reloaded.Cores), res.Partition, dur, powerUnits, cap)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("power cap %4d: makespan %d cycles\n", cap, s.Makespan)
	}
	fmt.Println("=> the tight cap forbids testing both big cores concurrently, trading time for power safety")

	// For reference, the unconstrained makespan equals the optimizer's.
	unconstrained, err := sched.Greedy(len(reloaded.Cores), res.Partition,
		func(c, w int) int64 { return dur(c, w) })
	if err != nil {
		log.Fatal(err)
	}
	_ = core.StyleTDCPerCore // (core package exported for advanced use)
	fmt.Printf("unconstrained greedy for comparison: %d cycles\n", unconstrained.Makespan)
}

func chains(n, length int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = length
	}
	return out
}
