// Quickstart: optimize the test architecture of the d695 benchmark SOC
// with core-level test data compression, print the plan, and verify it
// by cycle-accurate simulation.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"soctap"
)

func main() {
	// 1. Load a built-in benchmark (or soctap.ParseSOC for your own).
	design := soctap.D695()
	fmt.Printf("design %s: %d cores, %d scan cells total\n",
		design.Name, len(design.Cores), design.TotalScanCells())

	// 2. Co-optimize wrapper design, per-core compression, TAM
	//    partitioning and the test schedule under a 32-wire budget.
	result, err := soctap.Optimize(design, 32, soctap.Options{
		Style: soctap.StyleTDCPerCore, // the paper's proposed scheme
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("TAM partition: %v\n", result.Partition)
	fmt.Printf("SOC test time: %d cycles\n", result.TestTime)
	fmt.Printf("ATE stimulus volume: %d bits\n", result.Volume)
	for _, ch := range result.Choices {
		mode := "direct"
		if ch.Config.UseTDC {
			mode = fmt.Sprintf("compressed (w=%d -> m=%d)", ch.Config.Width, ch.Config.M)
		}
		fmt.Printf("  %-8s bus %d  start %-7d %-7d cycles  %s\n",
			ch.Core, ch.Bus, ch.Start, ch.Config.Time, mode)
	}

	// 3. How much did compression buy? Re-run without it.
	direct, err := soctap.Optimize(design, 32, soctap.Options{Style: soctap.StyleNoTDC})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("without compression: %d cycles, %d bits (TDC saves %.1f%% time)\n",
		direct.TestTime, direct.Volume,
		100*(1-float64(result.TestTime)/float64(direct.TestTime)))

	// 4. Prove the plan is real: encode, decompress, and shift every
	//    pattern through the modeled hardware, checking each care bit.
	if err := soctap.VerifyPlan(result); err != nil {
		log.Fatal(err)
	}
	fmt.Println("plan verified: bit-exact stimulus delivery confirmed")
}
